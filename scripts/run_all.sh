#!/bin/sh
# Regenerate every reproduced table/figure and the test evidence.
# Usage: scripts/run_all.sh [build-dir]
set -e
BUILD="${1:-build}"

cmake -B "$BUILD" -G Ninja
cmake --build "$BUILD"

ctest --test-dir "$BUILD" 2>&1 | tee test_output.txt

: > bench_output.txt
for b in "$BUILD"/bench/*; do
    [ -f "$b" ] && [ -x "$b" ] || continue
    echo "##### $(basename "$b")" >> bench_output.txt
    "$b" >> bench_output.txt 2>&1
done
echo "wrote test_output.txt and bench_output.txt"
