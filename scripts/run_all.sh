#!/bin/sh
# Regenerate every reproduced table/figure and the test evidence.
# Usage: scripts/run_all.sh [build-dir]
# Scenario sweeps inside each harness run on AITAX_JOBS workers
# (default: all cores); results are byte-identical for any job count.
set -e
BUILD="${1:-build}"

AITAX_JOBS="${AITAX_JOBS:-$(nproc 2>/dev/null || echo 1)}"
export AITAX_JOBS

cmake -B "$BUILD" -G Ninja
cmake --build "$BUILD"

ctest --test-dir "$BUILD" 2>&1 | tee test_output.txt

: > bench_output.txt
for b in "$BUILD"/bench/*; do
    [ -f "$b" ] && [ -x "$b" ] || continue
    case "$(basename "$b")" in
        # Host-time measurement binaries run separately below.
        micro_kernels|sweep_throughput) continue ;;
    esac
    echo "##### $(basename "$b")" >> bench_output.txt
    "$b" >> bench_output.txt 2>&1
done

# Sweep-throughput perf trajectory: records BENCH_sweep.json.
# (probe_effect above records BENCH_trace.json, the tracer trajectory.)
if [ -x "$BUILD"/bench/sweep_throughput ]; then
    "$BUILD"/bench/sweep_throughput --quick --out BENCH_sweep.json
fi
echo "wrote test_output.txt, bench_output.txt, BENCH_sweep.json" \
     "and BENCH_trace.json"
