/**
 * @file
 * Fleet-scale campaign verification (ctest -L verify).
 *
 * Proves the determinism contract one level above the thread pool:
 * the campaign aggregate report is byte-identical at any
 * --shards N x --jobs M split, survives a mid-campaign worker crash
 * (chunk re-dispatch) and a coordinator interruption + --resume with
 * the same bytes, and the mergeable StreamingDistribution sketch that
 * makes online aggregation possible is merge-order independent and
 * within its documented error of the sample-retaining Distribution.
 *
 * Campaigns here drive the real aitax_cli `sweep-serve` worker over
 * the real fork/exec pipe protocol (AITAX_CLI_PATH is baked in by the
 * build), so what this suite passes is what production campaigns run.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "sim/random.h"
#include "stats/distribution.h"
#include "stats/streaming_distribution.h"
#include "sweep/campaign.h"

namespace aitax {
namespace {

// --- StreamingDistribution: merge algebra and error bound ------------

/** Seeded latency-shaped samples (lognormal around ~30 ms). */
std::vector<double>
seededSamples(std::uint64_t seed, int n)
{
    sim::RandomStream rng(seed, "campaign-test");
    std::vector<double> out;
    out.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i)
        out.push_back(30.0 * rng.lognormalFactor(0.5));
    return out;
}

stats::StreamingDistribution
sketchOf(const std::vector<double> &xs)
{
    stats::StreamingDistribution d;
    for (double x : xs)
        d.add(x);
    return d;
}

TEST(StreamingDistribution, MergeIsAssociativeAndCommutative)
{
    const auto a = sketchOf(seededSamples(1, 400));
    const auto b = sketchOf(seededSamples(2, 700));
    const auto c = sketchOf(seededSamples(3, 150));

    // (a + b) + c
    stats::StreamingDistribution abc = a;
    abc.merge(b);
    abc.merge(c);
    // a + (b + c)
    stats::StreamingDistribution bc = b;
    bc.merge(c);
    stats::StreamingDistribution a_bc = a;
    a_bc.merge(bc);
    // c + b + a
    stats::StreamingDistribution cba = c;
    cba.merge(b);
    cba.merge(a);

    // Counters are exactly merge-order independent: count, extremes
    // and every percentile. The moment sums are only FP-commutative
    // (which is why the campaign merges in canonical chunk order for
    // byte-stable reports) — near, not bit-equal, across orders.
    for (const auto *other : {&a_bc, &cba}) {
        EXPECT_EQ(abc.count(), other->count());
        EXPECT_EQ(abc.min(), other->min());
        EXPECT_EQ(abc.max(), other->max());
        for (double p : {1.0, 25.0, 50.0, 90.0, 99.0})
            EXPECT_EQ(abc.percentile(p), other->percentile(p))
                << "p" << p;
        EXPECT_NEAR(abc.sum(), other->sum(), abc.sum() * 1e-12);
    }
    EXPECT_EQ(abc.count(), 1250u);

    // Same merge order twice IS bit-identical — the property the
    // campaign's canonical chunk-order merging relies on.
    stats::StreamingDistribution abc2 = a;
    abc2.merge(b);
    abc2.merge(c);
    EXPECT_TRUE(abc.identicalTo(abc2));

    // Merging mirrors adding every sample to one sketch.
    std::vector<double> all = seededSamples(1, 400);
    for (double x : seededSamples(2, 700))
        all.push_back(x);
    for (double x : seededSamples(3, 150))
        all.push_back(x);
    const auto whole = sketchOf(all);
    EXPECT_EQ(whole.count(), abc.count());
    EXPECT_EQ(whole.min(), abc.min());
    EXPECT_EQ(whole.max(), abc.max());
    for (double p : {1.0, 25.0, 50.0, 90.0, 99.0})
        EXPECT_EQ(whole.percentile(p), abc.percentile(p)) << "p" << p;
}

TEST(StreamingDistribution, WithinDocumentedErrorOfExactDistribution)
{
    const auto xs = seededSamples(42, 10000);
    stats::Distribution exact;
    stats::StreamingDistribution sketch;
    for (double x : xs) {
        exact.add(x);
        sketch.add(x);
    }

    // Extremes and count are exact; the mean agrees up to summation
    // order (Distribution's accumulator may sum in a different
    // association than the sketch's running sum).
    EXPECT_EQ(sketch.count(), 10000u);
    EXPECT_NEAR(sketch.mean(), exact.mean(),
                exact.mean() * 1e-9);
    EXPECT_EQ(sketch.min(), exact.min());
    EXPECT_EQ(sketch.max(), exact.max());

    // Quantiles: the sketch answers with a value within
    // kRelativeAccuracy of a sample whose rank is exact; the exact
    // Distribution interpolates between adjacent order statistics, so
    // allow twice the sketch's own bound to cover that gap.
    const double tol = 2.0 * stats::StreamingDistribution::kRelativeAccuracy;
    for (double p : {1.0, 5.0, 10.0, 25.0, 50.0, 75.0, 90.0, 95.0, 99.0}) {
        const double e = exact.percentile(p);
        const double s = sketch.percentile(p);
        EXPECT_NEAR(s, e, e * tol) << "p" << p;
    }
}

TEST(StreamingDistribution, SerializeRoundTripsBitExactly)
{
    const auto d = sketchOf(seededSamples(9, 2000));
    stats::StreamingDistribution back;
    std::string err;
    ASSERT_TRUE(stats::StreamingDistribution::deserialize(d.serialize(),
                                                          back, &err))
        << err;
    EXPECT_TRUE(back.identicalTo(d));
    EXPECT_EQ(back.serialize(), d.serialize());

    stats::StreamingDistribution empty;
    ASSERT_TRUE(stats::StreamingDistribution::deserialize(
        empty.serialize(), back, &err))
        << err;
    EXPECT_TRUE(back.identicalTo(empty));

    EXPECT_FALSE(
        stats::StreamingDistribution::deserialize("sd2 c=1", back, &err));
    EXPECT_FALSE(stats::StreamingDistribution::deserialize(
        "sd1 c=2 s=1 q=1 lo=1 hi=1 b=0:1", back, &err))
        << "bucket total disagreeing with count must be rejected";
}

// --- Campaigns over the real sweep-serve worker ----------------------

#ifndef AITAX_CLI_PATH
#error "build must define AITAX_CLI_PATH"
#endif

constexpr int kScenarios = 48;
constexpr int kChunk = 8;
constexpr std::uint64_t kSeed = 77;

sweep::CampaignConfig
campaignConfig(int shards, int jobs)
{
    sweep::CampaignConfig cfg;
    cfg.scenarios = kScenarios;
    cfg.chunk = kChunk;
    cfg.shards = shards;
    cfg.identity = "corpus=fuzz seed=" + std::to_string(kSeed) +
                   " scenarios=" + std::to_string(kScenarios) +
                   " chunk=" + std::to_string(kChunk) +
                   " faults=0 engine=fast";
    // Exercise the v2 spec handshake on every pipe campaign: the
    // worker re-resolves its corpus from this line and must produce
    // the same bytes as its argv-bound binding.
    cfg.corpusSpec = cfg.identity;
    cfg.workerCmd = {AITAX_CLI_PATH,
                     "sweep-serve",
                     "--seed",
                     std::to_string(kSeed),
                     "--jobs",
                     std::to_string(jobs)};
    return cfg;
}

std::string
reportOf(const sweep::CampaignSummary &sum,
         const sweep::CampaignConfig &cfg)
{
    return sweep::campaignReportJson(cfg.identity, sum.aggregate);
}

/** The uninterrupted single-process reference report. */
const std::string &
baselineReport()
{
    static const std::string report = [] {
        const auto cfg = campaignConfig(1, 1);
        const auto sum = sweep::runCampaign(cfg);
        EXPECT_EQ(sum.status, sweep::CampaignStatus::Ok) << sum.error;
        return reportOf(sum, cfg);
    }();
    return report;
}

TEST(Campaign, AggregateByteIdenticalAcrossShardAndJobSplits)
{
    const std::string &base = baselineReport();
    ASSERT_FALSE(base.empty());
    for (const int shards : {2, 4}) {
        for (const int jobs : {1, 8}) {
            const auto cfg = campaignConfig(shards, jobs);
            const auto sum = sweep::runCampaign(cfg);
            ASSERT_EQ(sum.status, sweep::CampaignStatus::Ok)
                << sum.error;
            EXPECT_EQ(reportOf(sum, cfg), base)
                << "shards=" << shards << " jobs=" << jobs;
            EXPECT_EQ(sum.chunksRun, kScenarios / kChunk);
        }
    }
}

TEST(Campaign, WorkerCrashIsReDispatchedByteExactly)
{
    auto cfg = campaignConfig(2, 1);
    cfg.killWorkerAfterRanges = 2; // worker 0 dies on its 2nd chunk
    const auto sum = sweep::runCampaign(cfg);
    ASSERT_EQ(sum.status, sweep::CampaignStatus::Ok) << sum.error;
    EXPECT_GE(sum.workersLost, 1);
    EXPECT_GE(sum.chunksRedispatched, 1);
    EXPECT_EQ(reportOf(sum, cfg), baselineReport());
}

TEST(Campaign, InterruptAndResumeReproducesBytes)
{
    // Interrupt at several different chunk frontiers; every resumed
    // completion must reproduce the uninterrupted bytes.
    for (const int stop_after : {1, 3}) {
        const std::string manifest =
            testing::TempDir() + "aitax_campaign_resume_" +
            std::to_string(stop_after) + ".txt";
        std::remove(manifest.c_str());

        auto cfg = campaignConfig(2, 1);
        cfg.checkpointPath = manifest;
        cfg.stopAfterChunks = stop_after;
        const auto interrupted = sweep::runCampaign(cfg);
        ASSERT_EQ(interrupted.status, sweep::CampaignStatus::Interrupted)
            << interrupted.error;
        EXPECT_GE(interrupted.chunksRun, stop_after);
        EXPECT_LT(interrupted.chunksRun, kScenarios / kChunk);

        auto resume_cfg = campaignConfig(2, 1);
        resume_cfg.checkpointPath = manifest;
        resume_cfg.resume = true;
        resume_cfg.stopAfterChunks = -1;
        const auto resumed = sweep::runCampaign(resume_cfg);
        ASSERT_EQ(resumed.status, sweep::CampaignStatus::Ok)
            << resumed.error;
        EXPECT_EQ(resumed.chunksResumed, interrupted.chunksRun);
        EXPECT_EQ(resumed.chunksRun + resumed.chunksResumed,
                  kScenarios / kChunk);
        EXPECT_EQ(reportOf(resumed, resume_cfg), baselineReport())
            << "stop_after=" << stop_after;
        std::remove(manifest.c_str());
    }
}

TEST(Campaign, ResumeRejectsForeignManifest)
{
    const std::string manifest =
        testing::TempDir() + "aitax_campaign_foreign.txt";
    std::remove(manifest.c_str());

    auto cfg = campaignConfig(1, 1);
    cfg.checkpointPath = manifest;
    cfg.stopAfterChunks = 1;
    ASSERT_EQ(sweep::runCampaign(cfg).status,
              sweep::CampaignStatus::Interrupted);

    // Same manifest, different campaign identity: must refuse rather
    // than silently merge another campaign's partials.
    auto other = campaignConfig(1, 1);
    other.identity = "corpus=fuzz seed=78 scenarios=48 chunk=8 "
                     "faults=0 engine=fast";
    other.checkpointPath = manifest;
    other.resume = true;
    const auto sum = sweep::runCampaign(other);
    EXPECT_EQ(sum.status, sweep::CampaignStatus::Error);
    EXPECT_NE(sum.error.find("different campaign"), std::string::npos)
        << sum.error;
    std::remove(manifest.c_str());
}

TEST(Campaign, AggregateSerializationRoundTrips)
{
    sweep::CampaignAggregate agg;
    for (int i = 0; i < 100; ++i) {
        sweep::ScenarioOutcome o;
        o.e2eMeanMs = 10.0 + static_cast<double>(i) * 0.37;
        o.events = 1000 + static_cast<std::uint64_t>(i);
        agg.addScenario(o);
    }
    sweep::CampaignAggregate back;
    std::string err;
    ASSERT_TRUE(sweep::CampaignAggregate::deserialize(agg.serialize(),
                                                      back, &err))
        << err;
    EXPECT_EQ(back.serialize(), agg.serialize());
    EXPECT_EQ(back.scenarios, agg.scenarios);
    EXPECT_EQ(back.events, agg.events);
    EXPECT_EQ(back.checksumMs, agg.checksumMs);
    EXPECT_TRUE(back.latencyMs.identicalTo(agg.latencyMs));
}

} // namespace
} // namespace aitax
