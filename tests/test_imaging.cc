/**
 * @file
 * Unit tests for the real pre-processing pixel algorithms.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "imaging/convert.h"
#include "imaging/crop.h"
#include "imaging/image.h"
#include "imaging/letterbox.h"
#include "imaging/normalize.h"
#include "imaging/resize.h"
#include "imaging/rotate.h"
#include "imaging/yuv.h"

namespace aitax::imaging {
namespace {

Image
solidArgb(std::int32_t w, std::int32_t h, std::uint8_t r, std::uint8_t g,
          std::uint8_t b)
{
    Image img(PixelFormat::Argb8888, w, h);
    for (std::int32_t y = 0; y < h; ++y)
        for (std::int32_t x = 0; x < w; ++x)
            img.setArgb(x, y, 0xff, r, g, b);
    return img;
}

// --- Image basics ----------------------------------------------------

TEST(Image, ByteSizes)
{
    EXPECT_EQ(imageByteSize(PixelFormat::YuvNv21, 4, 4), 24u);
    EXPECT_EQ(imageByteSize(PixelFormat::Argb8888, 4, 4), 64u);
    EXPECT_EQ(imageByteSize(PixelFormat::RgbF32, 4, 4), 192u);
}

TEST(Image, ArgbAccessorsRoundTrip)
{
    Image img(PixelFormat::Argb8888, 3, 2);
    img.setArgb(2, 1, 0xff, 10, 20, 30);
    EXPECT_EQ(img.redAt(2, 1), 10);
    EXPECT_EQ(img.greenAt(2, 1), 20);
    EXPECT_EQ(img.blueAt(2, 1), 30);
    EXPECT_EQ(img.argbAt(2, 1), 0xff0a141eu);
}

TEST(Image, RgbFloatAccessors)
{
    Image img(PixelFormat::RgbF32, 2, 2);
    img.setRgbF(1, 0, 0.5f, -0.25f, 1.0f);
    EXPECT_FLOAT_EQ(img.rAt(1, 0), 0.5f);
    EXPECT_FLOAT_EQ(img.gAt(1, 0), -0.25f);
    EXPECT_FLOAT_EQ(img.bAt(1, 0), 1.0f);
}

TEST(Image, FormatNames)
{
    EXPECT_EQ(pixelFormatName(PixelFormat::YuvNv21), "YUV_NV21");
    EXPECT_EQ(pixelFormatName(PixelFormat::Argb8888), "ARGB_8888");
}

// --- NV21 conversion --------------------------------------------------

TEST(Yuv, GrayPixelConverts)
{
    // Y=128, U=V=0 (stored as 128) is mid-gray.
    Image yuv(PixelFormat::YuvNv21, 2, 2);
    for (std::size_t i = 0; i < 4; ++i)
        yuv.data()[i] = 128;
    yuv.data()[4] = 128; // V
    yuv.data()[5] = 128; // U
    const Image rgb = nv21ToArgb(yuv);
    const int r = rgb.redAt(0, 0);
    const int g = rgb.greenAt(0, 0);
    const int b = rgb.blueAt(0, 0);
    EXPECT_NEAR(r, 130, 3);
    EXPECT_EQ(r, g);
    EXPECT_EQ(g, b);
}

TEST(Yuv, BlackAndWhiteExtremes)
{
    Image yuv(PixelFormat::YuvNv21, 2, 2);
    yuv.data()[0] = 16;  // video black
    yuv.data()[1] = 235; // video white
    yuv.data()[2] = 16;
    yuv.data()[3] = 235;
    yuv.data()[4] = 128;
    yuv.data()[5] = 128;
    const Image rgb = nv21ToArgb(yuv);
    EXPECT_LE(rgb.redAt(0, 0), 2);
    EXPECT_GE(rgb.redAt(1, 0), 250);
}

TEST(Yuv, RedChromaRaisesRed)
{
    Image yuv(PixelFormat::YuvNv21, 2, 2);
    for (std::size_t i = 0; i < 4; ++i)
        yuv.data()[i] = 128;
    yuv.data()[4] = 200; // V > 128 pushes red
    yuv.data()[5] = 128;
    const Image rgb = nv21ToArgb(yuv);
    EXPECT_GT(rgb.redAt(0, 0), rgb.blueAt(0, 0));
    EXPECT_GT(rgb.redAt(0, 0), rgb.greenAt(0, 0));
}

TEST(Yuv, OutputDimensionsMatch)
{
    const Image yuv = makeTestFrameNv21(64, 48, 1);
    const Image rgb = nv21ToArgb(yuv);
    EXPECT_EQ(rgb.width(), 64);
    EXPECT_EQ(rgb.height(), 48);
    EXPECT_EQ(rgb.format(), PixelFormat::Argb8888);
}

TEST(Yuv, TestFramesVaryWithSeed)
{
    const Image a = makeTestFrameNv21(32, 32, 1);
    const Image b = makeTestFrameNv21(32, 32, 2);
    bool differ = false;
    for (std::size_t i = 0; i < a.byteSize(); ++i)
        differ |= (a.data()[i] != b.data()[i]);
    EXPECT_TRUE(differ);
}

TEST(Yuv, CostScalesWithPixels)
{
    const auto small = nv21ToArgbCost(64, 64);
    const auto large = nv21ToArgbCost(128, 128);
    EXPECT_NEAR(large.flops / small.flops, 4.0, 1e-9);
    EXPECT_NEAR(large.bytes / small.bytes, 4.0, 1e-9);
}

TEST(Yuv, RgbToNv21RoundTripPreservesColors)
{
    // A 2x2-blocky image survives the chroma subsample round trip.
    Image src(PixelFormat::Argb8888, 4, 4);
    const std::uint8_t colors[4][3] = {
        {200, 40, 40}, {40, 200, 40}, {40, 40, 200}, {180, 180, 60}};
    for (std::int32_t by = 0; by < 2; ++by) {
        for (std::int32_t bx = 0; bx < 2; ++bx) {
            const auto &c = colors[by * 2 + bx];
            for (int dy = 0; dy < 2; ++dy)
                for (int dx = 0; dx < 2; ++dx)
                    src.setArgb(bx * 2 + dx, by * 2 + dy, 0xff, c[0],
                                c[1], c[2]);
        }
    }
    const Image yuv = argbToNv21(src);
    const Image back = nv21ToArgb(yuv);
    for (std::int32_t y = 0; y < 4; ++y) {
        for (std::int32_t x = 0; x < 4; ++x) {
            EXPECT_NEAR(back.redAt(x, y), src.redAt(x, y), 12);
            EXPECT_NEAR(back.greenAt(x, y), src.greenAt(x, y), 12);
            EXPECT_NEAR(back.blueAt(x, y), src.blueAt(x, y), 12);
        }
    }
}

TEST(Yuv, RgbToNv21ProducesStudioSwingLuma)
{
    const Image white = solidArgb(4, 4, 255, 255, 255);
    const Image yuv = argbToNv21(white);
    EXPECT_EQ(yuv.data()[0], 235); // video white
    const Image black = solidArgb(4, 4, 0, 0, 0);
    EXPECT_EQ(argbToNv21(black).data()[0], 16); // video black
}

// --- Resize -----------------------------------------------------------

TEST(Resize, IdentityPreservesSolidColor)
{
    const Image src = solidArgb(16, 16, 40, 80, 120);
    const Image out = resizeBilinear(src, 16, 16);
    EXPECT_EQ(out.redAt(8, 8), 40);
    EXPECT_EQ(out.greenAt(8, 8), 80);
    EXPECT_EQ(out.blueAt(8, 8), 120);
}

TEST(Resize, DownscaleAveragesGradient)
{
    // Horizontal ramp 0..255; downscale by 2: interior stays a ramp.
    Image src(PixelFormat::Argb8888, 256, 2);
    for (std::int32_t y = 0; y < 2; ++y)
        for (std::int32_t x = 0; x < 256; ++x)
            src.setArgb(x, y, 0xff, static_cast<std::uint8_t>(x),
                        static_cast<std::uint8_t>(x),
                        static_cast<std::uint8_t>(x));
    const Image out = resizeBilinear(src, 128, 1);
    for (std::int32_t x = 1; x < 127; ++x) {
        EXPECT_NEAR(out.redAt(x, 0), 2 * x, 2) << x;
    }
}

TEST(Resize, UpscaleBounded)
{
    const Image src = solidArgb(4, 4, 200, 100, 50);
    const Image out = resizeBilinear(src, 13, 7);
    EXPECT_EQ(out.width(), 13);
    EXPECT_EQ(out.height(), 7);
    for (std::int32_t y = 0; y < 7; ++y)
        for (std::int32_t x = 0; x < 13; ++x)
            EXPECT_EQ(out.redAt(x, y), 200);
}

TEST(Resize, CostQuadraticInOutputEdge)
{
    // The paper: bilinear run-time scales quadratically with output
    // image size.
    const auto c224 = resizeBilinearCost(224, 224);
    const auto c448 = resizeBilinearCost(448, 448);
    EXPECT_NEAR(c448.flops / c224.flops, 4.0, 1e-9);
}

// --- Crop --------------------------------------------------------------

TEST(Crop, ExtractsCenterWindow)
{
    Image src(PixelFormat::Argb8888, 8, 8);
    for (std::int32_t y = 0; y < 8; ++y)
        for (std::int32_t x = 0; x < 8; ++x)
            src.setArgb(x, y, 0xff,
                        static_cast<std::uint8_t>(x * 10 + y), 0, 0);
    const Image out = centerCrop(src, 4, 4);
    EXPECT_EQ(out.width(), 4);
    // (0,0) of the crop is (2,2) of the source.
    EXPECT_EQ(out.redAt(0, 0), 2 * 10 + 2);
    EXPECT_EQ(out.redAt(3, 3), 5 * 10 + 5);
}

TEST(Crop, FullSizeCropIsCopy)
{
    const Image src = solidArgb(6, 6, 1, 2, 3);
    const Image out = centerCrop(src, 6, 6);
    EXPECT_EQ(out.blueAt(5, 5), 3);
}

TEST(Crop, FractionUsesShortEdge)
{
    const Image src = solidArgb(100, 60, 9, 9, 9);
    const Image out = centerCropFraction(src, 0.875);
    EXPECT_EQ(out.width(), 52); // floor(60 * 0.875)
    EXPECT_EQ(out.height(), 52);
}

// --- Normalize ---------------------------------------------------------

TEST(Normalize, MapsToZeroMeanRange)
{
    const Image src = solidArgb(4, 4, 0, 127, 255);
    const Image out =
        normalizeToFloat(src, NormParams{127.5f, 127.5f});
    EXPECT_NEAR(out.rAt(0, 0), -1.0f, 1e-5);
    EXPECT_NEAR(out.gAt(0, 0), 0.0f, 0.005f);
    EXPECT_NEAR(out.bAt(0, 0), 1.0f, 1e-5);
}

TEST(Normalize, MeasureStatsOnKnownImage)
{
    Image src(PixelFormat::Argb8888, 2, 1);
    src.setArgb(0, 0, 0xff, 100, 100, 100);
    src.setArgb(1, 0, 0xff, 200, 200, 200);
    const NormParams p = measureStats(src);
    EXPECT_NEAR(p.mean, 150.0f, 1e-3);
    EXPECT_NEAR(p.stddev, 50.0f, 1e-3);
}

TEST(Normalize, NormalizedImageHasUnitStats)
{
    const Image yuv = makeTestFrameNv21(64, 64, 3);
    const Image rgb = nv21ToArgb(yuv);
    const NormParams measured = measureStats(rgb);
    const Image out = normalizeToFloat(rgb, measured);
    // Re-measure on the float image.
    double sum = 0.0;
    double sq = 0.0;
    const double n = 64.0 * 64.0 * 3.0;
    for (std::int32_t y = 0; y < 64; ++y) {
        for (std::int32_t x = 0; x < 64; ++x) {
            for (float c : {out.rAt(x, y), out.gAt(x, y),
                            out.bAt(x, y)}) {
                sum += c;
                sq += c * c;
            }
        }
    }
    EXPECT_NEAR(sum / n, 0.0, 0.02);
    EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Normalize, CostLinearInPixels)
{
    const auto a = normalizeCost(100, 100);
    const auto b = normalizeCost(200, 100);
    EXPECT_NEAR(b.flops / a.flops, 2.0, 1e-9);
}

// --- Rotate ------------------------------------------------------------

TEST(Rotate, Deg90MovesCorner)
{
    Image src(PixelFormat::Argb8888, 3, 2);
    src.setArgb(0, 0, 0xff, 255, 0, 0); // top-left marked
    const Image out = rotate(src, Rotation::Deg90);
    EXPECT_EQ(out.width(), 2);
    EXPECT_EQ(out.height(), 3);
    // Clockwise: top-left -> top-right.
    EXPECT_EQ(out.redAt(1, 0), 255);
}

TEST(Rotate, Deg180IsPointReflection)
{
    Image src(PixelFormat::Argb8888, 4, 2);
    src.setArgb(1, 0, 0xff, 77, 0, 0);
    const Image out = rotate(src, Rotation::Deg180);
    EXPECT_EQ(out.redAt(2, 1), 77);
}

TEST(Rotate, FourQuartersIsIdentity)
{
    const Image src = [&] {
        Image img(PixelFormat::Argb8888, 5, 3);
        for (std::int32_t y = 0; y < 3; ++y)
            for (std::int32_t x = 0; x < 5; ++x)
                img.setArgb(x, y, 0xff,
                            static_cast<std::uint8_t>(x * 16 + y), 0, 0);
        return img;
    }();
    Image cur = src;
    for (int i = 0; i < 4; ++i)
        cur = rotate(cur, Rotation::Deg90);
    for (std::int32_t y = 0; y < 3; ++y)
        for (std::int32_t x = 0; x < 5; ++x)
            EXPECT_EQ(cur.redAt(x, y), src.redAt(x, y));
}

TEST(Rotate, Deg270IsInverseOfDeg90)
{
    const Image src = solidArgb(4, 6, 5, 6, 7);
    const Image out = rotate(rotate(src, Rotation::Deg90),
                             Rotation::Deg270);
    EXPECT_EQ(out.width(), 4);
    EXPECT_EQ(out.height(), 6);
}

TEST(Rotate, CostQuadraticInImageSize)
{
    const auto a = rotateCost(100, 100);
    const auto b = rotateCost(200, 200);
    EXPECT_NEAR(b.flops / a.flops, 4.0, 1e-9);
}

// --- Convert -----------------------------------------------------------

TEST(Convert, FloatTensorMatchesImage)
{
    Image img(PixelFormat::RgbF32, 2, 2);
    img.setRgbF(0, 0, 0.1f, 0.2f, 0.3f);
    img.setRgbF(1, 1, -0.5f, 0.0f, 0.5f);
    const auto t = toFloatTensor(img);
    EXPECT_EQ(t.shape(), tensor::Shape::nhwc(2, 2, 3));
    EXPECT_FLOAT_EQ(t.data<float>()[0], 0.1f);
    EXPECT_FLOAT_EQ(t.data<float>()[9], -0.5f);
}

TEST(Convert, QuantizedTensorRoundTrips)
{
    Image img(PixelFormat::RgbF32, 1, 1);
    img.setRgbF(0, 0, -0.5f, 0.0f, 0.5f);
    const auto qp = tensor::chooseQuantParams(-1.0f, 1.0f);
    const auto t = toQuantizedTensor(img, qp);
    EXPECT_EQ(t.dtype(), tensor::DType::UInt8);
    EXPECT_NEAR(t.realAt(0), -0.5f, qp.scale);
    EXPECT_NEAR(t.realAt(1), 0.0f, qp.scale);
    EXPECT_NEAR(t.realAt(2), 0.5f, qp.scale);
}

TEST(Convert, QuantizedConversionCostsMore)
{
    const auto q = typeConvertCost(224, 224, true);
    const auto f = typeConvertCost(224, 224, false);
    EXPECT_GT(q.flops, f.flops);
}

// --- Letterbox ---------------------------------------------------------

TEST(Letterbox, WideImagePadsTopAndBottom)
{
    const Image src = solidArgb(200, 100, 50, 60, 70);
    LetterboxLayout layout;
    const Image out = letterbox(src, 100, 100, 0, &layout);
    EXPECT_EQ(out.width(), 100);
    EXPECT_EQ(out.height(), 100);
    EXPECT_EQ(layout.contentW, 100);
    EXPECT_EQ(layout.contentH, 50);
    EXPECT_EQ(layout.offsetY, 25);
    EXPECT_EQ(layout.offsetX, 0);
    // Center is content, top row is padding.
    EXPECT_EQ(out.redAt(50, 50), 50);
    EXPECT_EQ(out.redAt(50, 0), 0);
    EXPECT_EQ(out.redAt(50, 99), 0);
}

TEST(Letterbox, TallImagePadsSides)
{
    const Image src = solidArgb(50, 100, 9, 9, 9);
    LetterboxLayout layout;
    const Image out = letterbox(src, 100, 100, 128, &layout);
    EXPECT_EQ(layout.contentH, 100);
    EXPECT_EQ(layout.contentW, 50);
    EXPECT_EQ(layout.offsetX, 25);
    EXPECT_EQ(out.redAt(0, 50), 128);  // left padding
    EXPECT_EQ(out.redAt(50, 50), 9);   // content
    EXPECT_EQ(out.redAt(99, 50), 128); // right padding
}

TEST(Letterbox, SameAspectHasNoPadding)
{
    const Image src = solidArgb(64, 64, 3, 4, 5);
    LetterboxLayout layout;
    const Image out = letterbox(src, 32, 32, 0, &layout);
    EXPECT_EQ(layout.offsetX, 0);
    EXPECT_EQ(layout.offsetY, 0);
    EXPECT_EQ(layout.contentW, 32);
    EXPECT_EQ(out.greenAt(16, 16), 4);
}

TEST(Letterbox, LayoutMapsBackToSource)
{
    const Image src = solidArgb(200, 100, 1, 1, 1);
    LetterboxLayout layout;
    letterbox(src, 100, 100, 0, &layout);
    double sx = 0.0;
    double sy = 0.0;
    // Output center maps to source center.
    layout.toSource(50.0, 50.0, sx, sy);
    EXPECT_NEAR(sx, 100.0, 1.0);
    EXPECT_NEAR(sy, 50.0, 1.0);
}

TEST(Letterbox, CostExceedsPlainResize)
{
    EXPECT_GT(letterboxCost(300, 300).flops,
              resizeBilinearCost(300, 300).flops);
}

// --- Grayscale -----------------------------------------------------------

TEST(Grayscale, LumaWeights)
{
    Image src(PixelFormat::Argb8888, 3, 1);
    src.setArgb(0, 0, 0xff, 255, 0, 0); // red -> ~76
    src.setArgb(1, 0, 0xff, 0, 255, 0); // green -> ~150
    src.setArgb(2, 0, 0xff, 0, 0, 255); // blue -> ~29
    const Image out = toGrayscale(src);
    EXPECT_NEAR(out.redAt(0, 0), 76, 2);
    EXPECT_NEAR(out.redAt(1, 0), 150, 2);
    EXPECT_NEAR(out.redAt(2, 0), 29, 2);
    // Channels are equal after conversion.
    EXPECT_EQ(out.redAt(0, 0), out.greenAt(0, 0));
    EXPECT_EQ(out.greenAt(0, 0), out.blueAt(0, 0));
}

TEST(Grayscale, WhiteStaysWhite)
{
    const Image src = solidArgb(2, 2, 255, 255, 255);
    const Image out = toGrayscale(src);
    EXPECT_EQ(out.redAt(1, 1), 255);
}

} // namespace
} // namespace aitax::imaging
