/**
 * @file
 * Unit tests for the post-processing algorithms.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "postproc/bbox.h"
#include "postproc/keypoints.h"
#include "postproc/logits.h"
#include "postproc/mask.h"
#include "postproc/multipose.h"
#include "postproc/tokenizer.h"
#include "postproc/topk.h"

namespace aitax::postproc {
namespace {

using tensor::DType;
using tensor::Shape;
using tensor::Tensor;

// --- topK --------------------------------------------------------------

TEST(TopK, ReturnsDescendingScores)
{
    const std::vector<float> scores = {0.1f, 0.9f, 0.3f, 0.7f, 0.5f};
    const auto top = topK(std::span<const float>(scores), 3);
    ASSERT_EQ(top.size(), 3u);
    EXPECT_EQ(top[0].index, 1);
    EXPECT_EQ(top[1].index, 3);
    EXPECT_EQ(top[2].index, 4);
}

TEST(TopK, TiesBreakByLowerIndex)
{
    const std::vector<float> scores = {0.5f, 0.9f, 0.9f, 0.1f};
    const auto top = topK(std::span<const float>(scores), 2);
    EXPECT_EQ(top[0].index, 1);
    EXPECT_EQ(top[1].index, 2);
}

TEST(TopK, KLargerThanNReturnsAll)
{
    const std::vector<float> scores = {0.2f, 0.8f};
    const auto top = topK(std::span<const float>(scores), 10);
    EXPECT_EQ(top.size(), 2u);
}

TEST(TopK, ZeroKReturnsEmpty)
{
    const std::vector<float> scores = {0.2f, 0.8f};
    EXPECT_TRUE(topK(std::span<const float>(scores), 0).empty());
}

TEST(TopK, QuantizedTensorDequantizesScores)
{
    const tensor::QuantParams qp{1.0 / 255.0, 0};
    Tensor t(Shape({4}), DType::UInt8, qp);
    t.data<std::uint8_t>()[0] = 10;
    t.data<std::uint8_t>()[1] = 250;
    t.data<std::uint8_t>()[2] = 100;
    t.data<std::uint8_t>()[3] = 200;
    const auto top = topK(t, 2);
    EXPECT_EQ(top[0].index, 1);
    EXPECT_EQ(top[1].index, 3);
    EXPECT_NEAR(top[0].score, 250.0 / 255.0, 1e-5);
}

TEST(TopK, FloatTensorPath)
{
    Tensor t(Shape({3}), DType::Float32);
    t.data<float>()[0] = 0.3f;
    t.data<float>()[1] = 0.1f;
    t.data<float>()[2] = 0.6f;
    const auto top = topK(t, 1);
    EXPECT_EQ(top[0].index, 2);
}

TEST(TopK, CostGrowsWithN)
{
    EXPECT_GT(topKCost(10'000, 5).flops, topKCost(1'000, 5).flops);
    EXPECT_GT(dequantizeCost(1'000).flops, 0.0);
}

// --- mask flattening -----------------------------------------------------

TEST(Mask, ArgmaxPerPixel)
{
    Tensor logits(Shape::nhwc(2, 2, 3), DType::Float32);
    auto d = logits.data<float>();
    // Pixel (0,0): class 2 wins; (1,0): class 0; (0,1): class 1;
    // (1,1): class 2.
    const float vals[] = {0.1f, 0.2f, 0.9f, /**/ 0.8f, 0.1f, 0.1f,
                          0.2f, 0.7f, 0.1f, /**/ 0.1f, 0.2f, 0.3f};
    for (std::size_t i = 0; i < 12; ++i)
        d[i] = vals[i];
    const LabelMask mask = flattenMask(logits);
    EXPECT_EQ(mask.at(0, 0), 2);
    EXPECT_EQ(mask.at(1, 0), 0);
    EXPECT_EQ(mask.at(0, 1), 1);
    EXPECT_EQ(mask.at(1, 1), 2);
}

TEST(Mask, HistogramCounts)
{
    Tensor logits(Shape::nhwc(1, 4, 2), DType::Float32);
    auto d = logits.data<float>();
    // Classes: 1, 1, 0, 1.
    const float vals[] = {0.0f, 1.0f, 0.0f, 1.0f,
                          1.0f, 0.0f, 0.0f, 1.0f};
    for (std::size_t i = 0; i < 8; ++i)
        d[i] = vals[i];
    const auto hist = labelHistogram(flattenMask(logits), 2);
    EXPECT_EQ(hist[0], 1);
    EXPECT_EQ(hist[1], 3);
}

TEST(Mask, QuantizedLogits)
{
    const tensor::QuantParams qp{1.0, 0};
    Tensor logits(Shape::nhwc(1, 1, 3), DType::UInt8, qp);
    logits.data<std::uint8_t>()[0] = 3;
    logits.data<std::uint8_t>()[1] = 200;
    logits.data<std::uint8_t>()[2] = 50;
    EXPECT_EQ(flattenMask(logits).at(0, 0), 1);
}

TEST(Mask, CostScalesWithClasses)
{
    EXPECT_GT(flattenMaskCost(513, 513, 21).flops,
              flattenMaskCost(513, 513, 2).flops);
}

// --- keypoints -----------------------------------------------------------

TEST(Keypoints, DecodesPeakWithOffset)
{
    constexpr int parts = 2;
    Tensor heat(Shape::nhwc(4, 4, parts), DType::Float32);
    Tensor offs(Shape::nhwc(4, 4, 2 * parts), DType::Float32);
    // Part 0 peak at (y=1, x=2) with offset (dy=3, dx=-2).
    heat.data<float>()[(1 * 4 + 2) * parts + 0] = 0.9f;
    offs.data<float>()[(1 * 4 + 2) * (2 * parts) + 0] = 3.0f;
    offs.data<float>()[(1 * 4 + 2) * (2 * parts) + parts + 0] = -2.0f;
    // Part 1 peak at (y=3, x=0), zero offset.
    heat.data<float>()[(3 * 4 + 0) * parts + 1] = 0.8f;

    const auto kps = decodeKeypoints(heat, offs, 16);
    ASSERT_EQ(kps.size(), 2u);
    EXPECT_FLOAT_EQ(kps[0].y, 1 * 16 + 3.0f);
    EXPECT_FLOAT_EQ(kps[0].x, 2 * 16 - 2.0f);
    EXPECT_FLOAT_EQ(kps[0].score, 0.9f);
    EXPECT_FLOAT_EQ(kps[1].y, 3 * 16.0f);
    EXPECT_FLOAT_EQ(kps[1].x, 0.0f);
}

TEST(Keypoints, PoseScoreIsMean)
{
    std::vector<Keypoint> kps = {{0, 0, 0, 0.8f}, {1, 0, 0, 0.4f}};
    EXPECT_NEAR(poseScore(kps), 0.6f, 1e-6);
    EXPECT_FLOAT_EQ(poseScore({}), 0.0f);
}

TEST(Keypoints, CostScalesWithParts)
{
    EXPECT_GT(decodeKeypointsCost(14, 14, 17).flops,
              decodeKeypointsCost(14, 14, 1).flops);
}

// --- bbox ------------------------------------------------------------

TEST(Bbox, IouKnownValues)
{
    const Box a{0.0f, 0.0f, 1.0f, 1.0f};
    const Box b{0.0f, 0.5f, 1.0f, 1.5f};
    EXPECT_NEAR(iou(a, b), 0.5f / 1.5f, 1e-6);
    EXPECT_FLOAT_EQ(iou(a, a), 1.0f);
    const Box far{5.0f, 5.0f, 6.0f, 6.0f};
    EXPECT_FLOAT_EQ(iou(a, far), 0.0f);
}

TEST(Bbox, AnchorGridSize)
{
    const auto anchors = makeAnchorGrid(10, 10, 6);
    EXPECT_EQ(anchors.size(), 600u);
    for (const auto &a : anchors) {
        EXPECT_GT(a.cx, 0.0f);
        EXPECT_LT(a.cx, 1.0f);
        EXPECT_GT(a.h, 0.0f);
    }
}

TEST(Bbox, ZeroDeltasDecodeToAnchors)
{
    const auto anchors = makeAnchorGrid(2, 2, 1);
    std::vector<float> deltas(anchors.size() * 4, 0.0f);
    std::vector<float> scores(anchors.size() * 2, 0.0f);
    // Anchor 0 detects class 1 strongly.
    scores[0 * 2 + 1] = 0.9f;
    const auto dets =
        decodeDetections(anchors, deltas, scores, 2, 0.5f);
    ASSERT_EQ(dets.size(), 1u);
    const auto &d = dets[0];
    EXPECT_EQ(d.classIndex, 1);
    EXPECT_NEAR((d.box.xmin + d.box.xmax) / 2, anchors[0].cx, 1e-5);
    EXPECT_NEAR(d.box.ymax - d.box.ymin, anchors[0].h, 1e-5);
}

TEST(Bbox, ThresholdDropsWeakDetections)
{
    const auto anchors = makeAnchorGrid(2, 2, 1);
    std::vector<float> deltas(anchors.size() * 4, 0.0f);
    std::vector<float> scores(anchors.size() * 2, 0.3f);
    EXPECT_TRUE(
        decodeDetections(anchors, deltas, scores, 2, 0.5f).empty());
}

TEST(Bbox, NmsSuppressesOverlaps)
{
    std::vector<Detection> dets;
    dets.push_back({{0.0f, 0.0f, 1.0f, 1.0f}, 1, 0.9f});
    dets.push_back({{0.01f, 0.01f, 1.0f, 1.0f}, 1, 0.8f}); // overlap
    dets.push_back({{0.0f, 0.0f, 0.2f, 0.2f}, 1, 0.7f});   // distinct
    const auto kept = nonMaxSuppression(dets, 0.5f, 10);
    ASSERT_EQ(kept.size(), 2u);
    EXPECT_FLOAT_EQ(kept[0].score, 0.9f);
    EXPECT_FLOAT_EQ(kept[1].score, 0.7f);
}

TEST(Bbox, NmsKeepsDifferentClasses)
{
    std::vector<Detection> dets;
    dets.push_back({{0.0f, 0.0f, 1.0f, 1.0f}, 1, 0.9f});
    dets.push_back({{0.0f, 0.0f, 1.0f, 1.0f}, 2, 0.8f});
    EXPECT_EQ(nonMaxSuppression(dets, 0.5f, 10).size(), 2u);
}

TEST(Bbox, NmsRespectsMaxOut)
{
    std::vector<Detection> dets;
    for (int i = 0; i < 10; ++i) {
        const float off = static_cast<float>(i) * 0.09f;
        dets.push_back(
            {{off, off, off + 0.05f, off + 0.05f}, 1, 0.5f});
    }
    EXPECT_EQ(nonMaxSuppression(dets, 0.5f, 3).size(), 3u);
}

// --- multi-person pose ------------------------------------------------------

namespace multipose_helpers {

/** Paint a person: confident keypoints on a vertical line at column x,
 *  with consistent displacement fields along the skeleton. */
void
paintPerson(tensor::Tensor &heat, tensor::Tensor &offs,
            tensor::Tensor &disp_fwd, tensor::Tensor &disp_bwd,
            std::int64_t col, float score)
{
    (void)offs; // zero offsets: keypoints sit exactly on cell centers
    const auto &s = heat.shape();
    const std::int64_t w = s.width();
    auto hm = heat.data<float>();
    // Part p sits at row p (identity layout for easy checking).
    for (int p = 0; p < kPoseParts; ++p)
        hm[static_cast<std::size_t>((p * w + col) * kPoseParts + p)] =
            score;
    const auto &edges = poseSkeleton();
    const auto edge_count = static_cast<std::int64_t>(edges.size());
    auto fwd = disp_fwd.data<float>();
    auto bwd = disp_bwd.data<float>();
    const std::int64_t dch = 2 * edge_count;
    for (std::int64_t k = 0; k < edge_count; ++k) {
        const auto &e = edges[static_cast<std::size_t>(k)];
        // From parent cell (row parent, col) the child lies at
        // (row child, col): dy = (child - parent) * stride in pixels.
        const std::int64_t pbase =
            ((e.parent * w) + col) * dch;
        fwd[static_cast<std::size_t>(pbase + k)] =
            static_cast<float>((e.child - e.parent) * 16);
        fwd[static_cast<std::size_t>(pbase + edge_count + k)] = 0.0f;
        const std::int64_t cbase = ((e.child * w) + col) * dch;
        bwd[static_cast<std::size_t>(cbase + k)] =
            static_cast<float>((e.parent - e.child) * 16);
        bwd[static_cast<std::size_t>(cbase + edge_count + k)] = 0.0f;
    }
}

} // namespace multipose_helpers

TEST(Multipose, SkeletonIsATreeOverAllParts)
{
    const auto &edges = poseSkeleton();
    EXPECT_EQ(edges.size(), 16u); // 17 nodes, 16 edges
    std::vector<int> seen(kPoseParts, 0);
    seen[0] = 1; // root
    for (const auto &e : edges) {
        EXPECT_GE(e.parent, 0);
        EXPECT_LT(e.child, kPoseParts);
        EXPECT_TRUE(seen[static_cast<std::size_t>(e.parent)])
            << "edges must be listed parent-first";
        seen[static_cast<std::size_t>(e.child)] += 1;
    }
    for (int p = 0; p < kPoseParts; ++p)
        EXPECT_EQ(seen[static_cast<std::size_t>(p)], 1) << p;
}

TEST(Multipose, FindLocalMaximaPicksPeaks)
{
    tensor::Tensor heat(tensor::Shape::nhwc(8, 8, kPoseParts),
                        tensor::DType::Float32);
    auto d = heat.data<float>();
    auto at = [&](std::int64_t y, std::int64_t x, int p) -> float & {
        return d[static_cast<std::size_t>((y * 8 + x) * kPoseParts + p)];
    };
    at(2, 2, 0) = 0.9f;
    at(2, 3, 0) = 0.5f; // shoulder of the peak, not a max
    at(6, 6, 0) = 0.7f;
    at(4, 4, 3) = 0.8f;
    const auto maxima = findLocalMaxima(heat, 0.4f, 1);
    ASSERT_EQ(maxima.size(), 3u);
    EXPECT_FLOAT_EQ(maxima[0].score, 0.9f);
    EXPECT_EQ(maxima[0].part, 0);
    EXPECT_EQ(maxima[0].y, 2);
    EXPECT_EQ(maxima[0].x, 2);
    EXPECT_FLOAT_EQ(maxima[1].score, 0.8f);
    EXPECT_EQ(maxima[1].part, 3);
}

TEST(Multipose, ThresholdFiltersWeakPeaks)
{
    tensor::Tensor heat(tensor::Shape::nhwc(4, 4, kPoseParts),
                        tensor::DType::Float32);
    heat.data<float>()[0] = 0.3f;
    EXPECT_TRUE(findLocalMaxima(heat, 0.5f, 1).empty());
    EXPECT_EQ(findLocalMaxima(heat, 0.2f, 1).size(), 1u);
}

TEST(Multipose, DecodesTwoSeparatePeople)
{
    using multipose_helpers::paintPerson;
    const auto shape_h = tensor::Shape::nhwc(17, 24, kPoseParts);
    tensor::Tensor heat(shape_h, tensor::DType::Float32);
    tensor::Tensor offs(tensor::Shape::nhwc(17, 24, 2 * kPoseParts),
                        tensor::DType::Float32);
    tensor::Tensor fwd(tensor::Shape::nhwc(17, 24, 32),
                       tensor::DType::Float32);
    tensor::Tensor bwd(tensor::Shape::nhwc(17, 24, 32),
                       tensor::DType::Float32);
    paintPerson(heat, offs, fwd, bwd, 4, 0.9f);
    paintPerson(heat, offs, fwd, bwd, 18, 0.8f);

    const auto poses =
        decodeMultiplePoses(heat, offs, fwd, bwd, 16, 5, 0.3f, 20.0f);
    ASSERT_EQ(poses.size(), 2u);
    EXPECT_GT(poses[0].score, poses[1].score);
    // First person around column 4*16, second around 18*16.
    EXPECT_NEAR(poses[0].keypoints[0].x, 4 * 16.0f, 1.0f);
    EXPECT_NEAR(poses[1].keypoints[0].x, 18 * 16.0f, 1.0f);
    // Every part decoded at its painted row.
    for (int p = 0; p < kPoseParts; ++p) {
        EXPECT_NEAR(poses[0].keypoints[static_cast<std::size_t>(p)].y,
                    p * 16.0f, 1.0f)
            << p;
    }
}

TEST(Multipose, NmsSuppressesDuplicateRoots)
{
    using multipose_helpers::paintPerson;
    tensor::Tensor heat(tensor::Shape::nhwc(17, 24, kPoseParts),
                        tensor::DType::Float32);
    tensor::Tensor offs(tensor::Shape::nhwc(17, 24, 2 * kPoseParts),
                        tensor::DType::Float32);
    tensor::Tensor fwd(tensor::Shape::nhwc(17, 24, 32),
                       tensor::DType::Float32);
    tensor::Tensor bwd(tensor::Shape::nhwc(17, 24, 32),
                       tensor::DType::Float32);
    paintPerson(heat, offs, fwd, bwd, 10, 0.9f);
    // One person produces 17 strong candidates (one per part), but
    // they all map onto the same decoded skeleton.
    const auto poses =
        decodeMultiplePoses(heat, offs, fwd, bwd, 16, 5, 0.3f, 20.0f);
    EXPECT_EQ(poses.size(), 1u);
}

TEST(Multipose, MaxPosesCapsOutput)
{
    using multipose_helpers::paintPerson;
    tensor::Tensor heat(tensor::Shape::nhwc(17, 40, kPoseParts),
                        tensor::DType::Float32);
    tensor::Tensor offs(tensor::Shape::nhwc(17, 40, 2 * kPoseParts),
                        tensor::DType::Float32);
    tensor::Tensor fwd(tensor::Shape::nhwc(17, 40, 32),
                       tensor::DType::Float32);
    tensor::Tensor bwd(tensor::Shape::nhwc(17, 40, 32),
                       tensor::DType::Float32);
    paintPerson(heat, offs, fwd, bwd, 2, 0.9f);
    paintPerson(heat, offs, fwd, bwd, 16, 0.8f);
    paintPerson(heat, offs, fwd, bwd, 30, 0.7f);
    const auto poses =
        decodeMultiplePoses(heat, offs, fwd, bwd, 16, 2, 0.3f, 20.0f);
    EXPECT_EQ(poses.size(), 2u);
    EXPECT_NEAR(poses[0].keypoints[0].x, 2 * 16.0f, 1.0f);
    EXPECT_NEAR(poses[1].keypoints[0].x, 16 * 16.0f, 1.0f);
}

TEST(Multipose, EmptyHeatmapsDecodeToNoPoses)
{
    // All-zero network output (e.g. an empty frame): no candidates,
    // no poses, no crash.
    tensor::Tensor heat(tensor::Shape::nhwc(9, 9, kPoseParts),
                        tensor::DType::Float32);
    tensor::Tensor offs(tensor::Shape::nhwc(9, 9, 2 * kPoseParts),
                        tensor::DType::Float32);
    tensor::Tensor fwd(tensor::Shape::nhwc(9, 9, 32),
                       tensor::DType::Float32);
    tensor::Tensor bwd(tensor::Shape::nhwc(9, 9, 32),
                       tensor::DType::Float32);
    EXPECT_TRUE(findLocalMaxima(heat, 0.3f, 1).empty());
    EXPECT_TRUE(
        decodeMultiplePoses(heat, offs, fwd, bwd, 16, 5, 0.3f, 20.0f)
            .empty());
}

TEST(Multipose, LoneCandidateStillYieldsAFullSkeleton)
{
    // Only the nose fires. The zero displacement fields collapse the
    // remaining parts onto nearby cells, but the decoder must still
    // emit one pose with all 17 keypoints populated.
    tensor::Tensor heat(tensor::Shape::nhwc(8, 8, kPoseParts),
                        tensor::DType::Float32);
    tensor::Tensor offs(tensor::Shape::nhwc(8, 8, 2 * kPoseParts),
                        tensor::DType::Float32);
    tensor::Tensor fwd(tensor::Shape::nhwc(8, 8, 32),
                       tensor::DType::Float32);
    tensor::Tensor bwd(tensor::Shape::nhwc(8, 8, 32),
                       tensor::DType::Float32);
    heat.data<float>()[(3 * 8 + 3) * kPoseParts + 0] = 0.8f;

    const auto poses =
        decodeMultiplePoses(heat, offs, fwd, bwd, 16, 5, 0.3f, 20.0f);
    ASSERT_EQ(poses.size(), 1u);
    ASSERT_EQ(poses[0].keypoints.size(),
              static_cast<std::size_t>(kPoseParts));
    EXPECT_NEAR(poses[0].keypoints[0].y, 3 * 16.0f, 1e-3f);
    EXPECT_NEAR(poses[0].keypoints[0].x, 3 * 16.0f, 1e-3f);
    // Only the root contributes score; the mean reflects that.
    EXPECT_NEAR(poses[0].score, 0.8f / kPoseParts, 1e-4f);
}

TEST(Multipose, MaxPosesZeroReturnsNothing)
{
    using multipose_helpers::paintPerson;
    tensor::Tensor heat(tensor::Shape::nhwc(17, 24, kPoseParts),
                        tensor::DType::Float32);
    tensor::Tensor offs(tensor::Shape::nhwc(17, 24, 2 * kPoseParts),
                        tensor::DType::Float32);
    tensor::Tensor fwd(tensor::Shape::nhwc(17, 24, 32),
                       tensor::DType::Float32);
    tensor::Tensor bwd(tensor::Shape::nhwc(17, 24, 32),
                       tensor::DType::Float32);
    paintPerson(heat, offs, fwd, bwd, 10, 0.9f);
    EXPECT_TRUE(
        decodeMultiplePoses(heat, offs, fwd, bwd, 16, 0, 0.3f, 20.0f)
            .empty());
}

TEST(Multipose, SingleCellGridIsItsOwnMaximum)
{
    // Degenerate 1x1 feature map: the neighbourhood scan must not
    // walk off the grid, and the lone cell is trivially maximal.
    tensor::Tensor heat(tensor::Shape::nhwc(1, 1, kPoseParts),
                        tensor::DType::Float32);
    heat.data<float>()[5] = 0.7f;
    const auto maxima = findLocalMaxima(heat, 0.3f, 1);
    ASSERT_EQ(maxima.size(), 1u);
    EXPECT_EQ(maxima[0].part, 5);
    EXPECT_EQ(maxima[0].y, 0);
    EXPECT_EQ(maxima[0].x, 0);
}

TEST(Multipose, RadiusLargerThanGridKeepsOnlyGlobalMax)
{
    tensor::Tensor heat(tensor::Shape::nhwc(8, 8, kPoseParts),
                        tensor::DType::Float32);
    auto d = heat.data<float>();
    d[(2 * 8 + 2) * kPoseParts + 0] = 0.9f;
    d[(6 * 8 + 6) * kPoseParts + 0] = 0.7f;
    const auto maxima = findLocalMaxima(heat, 0.3f, 100);
    ASSERT_EQ(maxima.size(), 1u);
    EXPECT_FLOAT_EQ(maxima[0].score, 0.9f);
}

TEST(Multipose, CostScalesWithGridAndPoses)
{
    EXPECT_GT(decodeMultiplePosesCost(28, 28, 5).flops,
              decodeMultiplePosesCost(14, 14, 5).flops);
    EXPECT_GT(decodeMultiplePosesCost(14, 14, 10).flops,
              decodeMultiplePosesCost(14, 14, 1).flops);
}

// --- tokenizer -----------------------------------------------------------

TEST(Tokenizer, WrapsWithClsAndSep)
{
    WordpieceTokenizer tok;
    const auto ids = tok.tokenize("the", 8);
    ASSERT_EQ(ids.size(), 8u);
    EXPECT_EQ(ids[0], tok.clsId());
    EXPECT_EQ(tok.tokenText(ids[1]), "the");
    EXPECT_EQ(ids[2], tok.sepId());
    for (std::size_t i = 3; i < 8; ++i)
        EXPECT_EQ(ids[i], tok.padId());
}

TEST(Tokenizer, LowercasesInput)
{
    WordpieceTokenizer tok;
    const auto ids = tok.tokenize("THE", 8);
    EXPECT_EQ(tok.tokenText(ids[1]), "the");
}

TEST(Tokenizer, SplitsUnknownWordIntoPieces)
{
    WordpieceTokenizer tok;
    // "work" is in vocab; "working" should split "work" + "##ing".
    const auto ids = tok.tokenize("working", 8);
    EXPECT_EQ(tok.tokenText(ids[1]), "work");
    EXPECT_EQ(tok.tokenText(ids[2]), "##ing");
}

TEST(Tokenizer, PunctuationSeparates)
{
    WordpieceTokenizer tok;
    const auto ids = tok.tokenize("the.", 8);
    EXPECT_EQ(tok.tokenText(ids[1]), "the");
    EXPECT_EQ(tok.tokenText(ids[2]), ".");
}

TEST(Tokenizer, TruncatesAtMaxLen)
{
    WordpieceTokenizer tok;
    const auto ids =
        tok.tokenize("the the the the the the the the the the", 6);
    EXPECT_EQ(ids.size(), 6u);
    EXPECT_EQ(ids.back(), tok.sepId());
}

TEST(Tokenizer, CustomVocabulary)
{
    WordpieceTokenizer tok(
        {"[PAD]", "[UNK]", "[CLS]", "[SEP]", "hello"});
    const auto ids = tok.tokenize("hello stranger", 6);
    EXPECT_EQ(tok.tokenText(ids[1]), "hello");
    EXPECT_EQ(ids[2], tok.unkId());
}

TEST(Tokenizer, EmptyInputIsJustClsSepAndPadding)
{
    WordpieceTokenizer tok;
    const auto ids = tok.tokenize("", 8);
    ASSERT_EQ(ids.size(), 8u);
    EXPECT_EQ(ids[0], tok.clsId());
    EXPECT_EQ(ids[1], tok.sepId());
    for (std::size_t i = 2; i < 8; ++i)
        EXPECT_EQ(ids[i], tok.padId());
}

TEST(Tokenizer, WhitespaceOnlyInputHasNoPieces)
{
    WordpieceTokenizer tok;
    const auto ids = tok.tokenize("  \t\n  ", 8);
    ASSERT_EQ(ids.size(), 8u);
    EXPECT_EQ(ids[0], tok.clsId());
    EXPECT_EQ(ids[1], tok.sepId());
    EXPECT_EQ(ids[2], tok.padId());
}

TEST(Tokenizer, MinimumLengthHoldsOnlyClsAndSep)
{
    WordpieceTokenizer tok;
    const auto ids = tok.tokenize("the quick fox", 2);
    ASSERT_EQ(ids.size(), 2u);
    EXPECT_EQ(ids[0], tok.clsId());
    EXPECT_EQ(ids[1], tok.sepId());
}

TEST(Tokenizer, ExactlyFullSequenceHasNoPadding)
{
    WordpieceTokenizer tok;
    // Two pieces + CLS + SEP fill max_len = 4 exactly.
    const auto ids = tok.tokenize("the day", 4);
    ASSERT_EQ(ids.size(), 4u);
    EXPECT_EQ(ids[0], tok.clsId());
    EXPECT_EQ(tok.tokenText(ids[1]), "the");
    EXPECT_EQ(tok.tokenText(ids[2]), "day");
    EXPECT_EQ(ids.back(), tok.sepId());
}

TEST(Tokenizer, MaxLengthSequenceStaysSepTerminated)
{
    // Mobile BERT's 384-token window fed far more text than fits:
    // truncate, keep [SEP] last, and leave no padding behind.
    WordpieceTokenizer tok;
    std::string text;
    for (int i = 0; i < 500; ++i)
        text += "work ";
    const auto ids = tok.tokenize(text, 384);
    ASSERT_EQ(ids.size(), 384u);
    EXPECT_EQ(ids[0], tok.clsId());
    EXPECT_EQ(ids.back(), tok.sepId());
    for (std::int32_t id : ids)
        EXPECT_NE(id, tok.padId());
}

TEST(Tokenizer, UndecomposableWordFallsBackToUnk)
{
    WordpieceTokenizer tok;
    // 'x' matches as a first piece, but no "##y.." continuation
    // exists, so the remainder collapses to [UNK].
    const auto ids = tok.tokenize("xyz", 8);
    EXPECT_EQ(tok.tokenText(ids[1]), "x");
    EXPECT_EQ(ids[2], tok.unkId());
    EXPECT_EQ(ids[3], tok.sepId());
}

TEST(Tokenizer, CostGrowsWithText)
{
    EXPECT_GT(WordpieceTokenizer::tokenizeCost(1'000).flops,
              WordpieceTokenizer::tokenizeCost(10).flops);
}

// --- logits ----------------------------------------------------------

TEST(Logits, SoftmaxSumsToOne)
{
    const std::vector<float> in = {1.0f, 2.0f, 3.0f};
    const auto out = softmax(std::span<const float>(in));
    double sum = 0.0;
    for (float v : out)
        sum += v;
    EXPECT_NEAR(sum, 1.0, 1e-6);
    EXPECT_GT(out[2], out[1]);
    EXPECT_GT(out[1], out[0]);
}

TEST(Logits, SoftmaxHandlesLargeValues)
{
    const std::vector<float> in = {1000.0f, 1001.0f};
    const auto out = softmax(std::span<const float>(in));
    EXPECT_FALSE(std::isnan(out[0]));
    EXPECT_NEAR(out[0] + out[1], 1.0, 1e-6);
}

TEST(Logits, BestSpanPicksArgmaxPair)
{
    std::vector<float> start(10, 0.0f);
    std::vector<float> end(10, 0.0f);
    start[3] = 5.0f;
    end[6] = 4.0f;
    const auto span = bestSpan(start, end, 8);
    EXPECT_EQ(span.start, 3);
    EXPECT_EQ(span.end, 6);
    EXPECT_FLOAT_EQ(span.score, 9.0f);
}

TEST(Logits, BestSpanRespectsMaxSpan)
{
    std::vector<float> start(10, 0.0f);
    std::vector<float> end(10, 0.0f);
    start[0] = 5.0f;
    end[9] = 5.0f; // would be best but is 10 tokens away
    end[2] = 1.0f;
    const auto span = bestSpan(start, end, 4);
    EXPECT_EQ(span.start, 0);
    EXPECT_EQ(span.end, 2);
}

TEST(Logits, BestSpanStartBeforeEnd)
{
    std::vector<float> start(5, 0.0f);
    std::vector<float> end(5, 0.0f);
    start[4] = 9.0f;
    end[0] = 9.0f;
    const auto span = bestSpan(start, end, 5);
    EXPECT_LE(span.start, span.end);
}

} // namespace
} // namespace aitax::postproc
