/**
 * @file
 * Calibration locks: absolute latency anchors on the SD845 preset.
 *
 * DESIGN.md section 6 lists the paper-derived anchors the simulator is
 * calibrated against. These tests pin them with tolerance bands so
 * that future changes to cost models, drivers or the scheduler cannot
 * silently drift the reproduction away from the paper's numbers.
 */

#include <gtest/gtest.h>

#include "app/pipeline.h"
#include "soc/chipsets.h"

namespace aitax {
namespace {

using app::FrameworkKind;
using app::HarnessMode;
using core::Stage;
using tensor::DType;

double
inferenceMs(const char *model, DType dtype, FrameworkKind fw,
            HarnessMode mode = HarnessMode::CliBenchmark,
            int threads = 4)
{
    soc::SocSystem sys(soc::makeSnapdragon845(), 7);
    app::PipelineConfig cfg;
    cfg.model = models::findModel(model);
    cfg.dtype = dtype;
    cfg.framework = fw;
    cfg.mode = mode;
    cfg.threads = threads;
    app::Application application(sys, cfg);
    core::TaxReport report;
    application.scheduleRuns(50, report);
    sys.run();
    return report.stageMeanMs(Stage::Inference);
}

/** Paper anchor: Inception v3 fp32 CPU benchmark ~= 250 ms (Fig 3). */
TEST(Calibration, InceptionV3Fp32CpuBenchmark)
{
    const double ms = inferenceMs("inception_v3", DType::Float32,
                                  FrameworkKind::TfliteCpu);
    EXPECT_GT(ms, 210.0);
    EXPECT_LT(ms, 290.0);
}

/** Paper anchor: Inception v3 fp32 inside an app ~= 350 ms E2E;
 *  we require the app E2E to exceed the benchmark by tens of ms. */
TEST(Calibration, InceptionV3AppEndToEndAboveBenchmark)
{
    soc::SocSystem sys(soc::makeSnapdragon845(), 7);
    app::PipelineConfig cfg;
    cfg.model = models::findModel("inception_v3");
    cfg.dtype = DType::Float32;
    cfg.framework = FrameworkKind::TfliteCpu;
    cfg.mode = HarnessMode::AndroidApp;
    app::Application application(sys, cfg);
    core::TaxReport report;
    application.scheduleRuns(30, report);
    sys.run();
    EXPECT_GT(report.endToEndMeanMs(), 275.0);
    EXPECT_LT(report.endToEndMeanMs(), 400.0);
}

/** MobileNet v1 int8 CPU-4T: low-teens milliseconds. */
TEST(Calibration, MobileNetInt8Cpu)
{
    const double ms = inferenceMs("mobilenet_v1", DType::UInt8,
                                  FrameworkKind::TfliteCpu);
    EXPECT_GT(ms, 8.0);
    EXPECT_LT(ms, 25.0);
}

/** MobileNet v1 int8 on the DSP via SNPE: ~10 ms, faster than CPU. */
TEST(Calibration, MobileNetInt8SnpeDsp)
{
    const double ms = inferenceMs("mobilenet_v1", DType::UInt8,
                                  FrameworkKind::SnpeDsp);
    EXPECT_GT(ms, 6.0);
    EXPECT_LT(ms, 16.0);
}

/** Fig 5 anchor: NNAPI int8 EfficientNet-Lite0 ~7x CPU-1T. */
TEST(Calibration, EfficientNetNnapiSevenFold)
{
    const double nnapi = inferenceMs("efficientnet_lite0", DType::UInt8,
                                     FrameworkKind::TfliteNnapi);
    const double cpu1 =
        inferenceMs("efficientnet_lite0", DType::UInt8,
                    FrameworkKind::TfliteCpu,
                    HarnessMode::CliBenchmark, /*threads=*/1);
    const double ratio = nnapi / cpu1;
    EXPECT_GT(ratio, 5.0);
    EXPECT_LT(ratio, 9.0);
}

/** DSP cold start: session open ~15 ms dominates the first call. */
TEST(Calibration, FastRpcColdStart)
{
    soc::SocSystem sys(soc::makeSnapdragon845(), 7);
    app::PipelineConfig cfg;
    cfg.model = models::findModel("mobilenet_v1");
    cfg.dtype = DType::UInt8;
    cfg.framework = FrameworkKind::TfliteHexagon;
    cfg.mode = HarnessMode::CliBenchmark;
    app::Application application(sys, cfg);
    core::TaxReport report;
    application.scheduleRuns(20, report);
    sys.run();
    const auto &log = application.rpcLog();
    const double first = sim::nsToMs(log.front().totalNs());
    const double steady = sim::nsToMs(log.back().totalNs());
    EXPECT_GT(first, steady + 10.0);
    EXPECT_LT(first, steady + 25.0);
}

/** Fig 11 anchor: app-mode deviation reaches tens of percent. */
TEST(Calibration, AppModeVariabilityBand)
{
    soc::SocSystem sys(soc::makeSnapdragon845(), 7);
    app::PipelineConfig cfg;
    cfg.model = models::findModel("mobilenet_v1");
    cfg.dtype = DType::Float32;
    cfg.framework = FrameworkKind::TfliteCpu;
    cfg.mode = HarnessMode::AndroidApp;
    app::Application application(sys, cfg);
    core::TaxReport report;
    application.scheduleRuns(200, report);
    sys.run();
    const double dev = report.endToEnd().maxDeviationFromMedianPct();
    EXPECT_GT(dev, 15.0);
    EXPECT_LT(dev, 70.0);
}

/** Key paper claim: capture+pre ~= 2x inference for MobileNet int8. */
TEST(Calibration, QuantizedMobileNetTaxRatio)
{
    soc::SocSystem sys(soc::makeSnapdragon845(), 7);
    app::PipelineConfig cfg;
    cfg.model = models::findModel("mobilenet_v1");
    cfg.dtype = DType::UInt8;
    cfg.framework = FrameworkKind::TfliteCpu;
    cfg.mode = HarnessMode::AndroidApp;
    app::Application application(sys, cfg);
    core::TaxReport report;
    application.scheduleRuns(100, report);
    sys.run();
    const double ratio = (report.stageMeanMs(Stage::DataCapture) +
                          report.stageMeanMs(Stage::PreProcessing)) /
                         report.stageMeanMs(Stage::Inference);
    EXPECT_GT(ratio, 1.4);
    EXPECT_LT(ratio, 2.7);
}

} // namespace
} // namespace aitax
