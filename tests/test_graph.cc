/**
 * @file
 * Unit tests for the graph IR: op cost arithmetic, builder shape
 * inference and graph validation.
 */

#include <gtest/gtest.h>

#include "graph/builder.h"
#include "graph/graph.h"
#include "graph/op.h"
#include "graph/serialize.h"
#include "sim/random.h"

namespace aitax::graph {
namespace {

using tensor::DType;
using tensor::Shape;

// --- Op cost arithmetic ----------------------------------------------

TEST(OpCost, Conv2dMacs)
{
    Op op;
    op.kind = OpKind::Conv2D;
    op.inputs = {Shape::nhwc(112, 112, 32)};
    op.output = Shape::nhwc(112, 112, 64);
    op.conv = {3, 3, 1, 1, true, 1};
    // out elems (112*112*64) * k*k*inC (9*32)
    EXPECT_EQ(op.macs(), 112LL * 112 * 64 * 9 * 32);
    EXPECT_EQ(op.paramCount(), 3LL * 3 * 32 * 64 + 64);
}

TEST(OpCost, DepthwiseConvMacs)
{
    Op op;
    op.kind = OpKind::DepthwiseConv2D;
    op.inputs = {Shape::nhwc(56, 56, 128)};
    op.output = Shape::nhwc(56, 56, 128);
    op.conv = {3, 3, 1, 1, true, 1};
    EXPECT_EQ(op.macs(), 56LL * 56 * 128 * 9);
    EXPECT_EQ(op.paramCount(), 9LL * 128 + 128);
}

TEST(OpCost, FullyConnected)
{
    Op op;
    op.kind = OpKind::FullyConnected;
    op.inputs = {Shape({1, 1024})};
    op.output = Shape({1, 1000});
    EXPECT_EQ(op.macs(), 1024LL * 1000);
    EXPECT_EQ(op.paramCount(), 1024LL * 1000 + 1000);
}

TEST(OpCost, MatMul)
{
    Op op;
    op.kind = OpKind::MatMul;
    op.matmul = {2, 128, 64, 256, true};
    op.output = Shape({2, 128, 256});
    EXPECT_EQ(op.macs(), 2LL * 128 * 64 * 256);
    EXPECT_EQ(op.paramCount(), 64LL * 256);
}

TEST(OpCost, MatMulActivationOnlyHasNoParams)
{
    Op op;
    op.kind = OpKind::MatMul;
    op.matmul = {1, 128, 128, 128, false};
    EXPECT_EQ(op.paramCount(), 0);
    EXPECT_GT(op.macs(), 0);
}

TEST(OpCost, ElementwiseHasNoMacs)
{
    Op op;
    op.kind = OpKind::Relu;
    op.inputs = {Shape({1, 100})};
    op.output = Shape({1, 100});
    EXPECT_EQ(op.macs(), 0);
    EXPECT_EQ(op.flops(), 100);
    EXPECT_EQ(op.paramCount(), 0);
}

TEST(OpCost, PoolFlopsScaleWithWindow)
{
    Op op;
    op.kind = OpKind::MaxPool2D;
    op.inputs = {Shape::nhwc(8, 8, 16)};
    op.output = Shape::nhwc(4, 4, 16);
    op.conv = {3, 3, 2, 2, false, 1};
    EXPECT_EQ(op.flops(), 4LL * 4 * 16 * 9);
}

TEST(OpCost, ActivationBytes)
{
    Op op;
    op.kind = OpKind::Relu;
    op.inputs = {Shape({1, 10})};
    op.output = Shape({1, 10});
    EXPECT_EQ(op.activationBytes(4), 80); // (10 + 10) * 4
    EXPECT_EQ(op.activationBytes(1), 20);
}

TEST(OpCost, EmbeddingParamsFromTableShape)
{
    Op op;
    op.kind = OpKind::EmbeddingLookup;
    op.inputs = {Shape({1, 128}), Shape({30522, 512})};
    op.output = Shape({1, 128, 512});
    EXPECT_EQ(op.paramCount(), 30522LL * 512);
}

TEST(OpCost, KindNames)
{
    EXPECT_EQ(opKindName(OpKind::Conv2D), "Conv2D");
    EXPECT_EQ(opKindName(OpKind::Softmax), "Softmax");
    EXPECT_TRUE(isMacHeavy(OpKind::Conv2D));
    EXPECT_TRUE(isMacHeavy(OpKind::MatMul));
    EXPECT_FALSE(isMacHeavy(OpKind::Relu));
}

// --- Builder shape inference -----------------------------------------

TEST(Builder, ConvSamePaddingShape)
{
    GraphBuilder b("t", Shape::nhwc(224, 224, 3), DType::Float32);
    b.conv2d(32, 3, 2, true);
    EXPECT_EQ(b.current(), Shape::nhwc(112, 112, 32));
}

TEST(Builder, ConvValidPaddingShape)
{
    GraphBuilder b("t", Shape::nhwc(299, 299, 3), DType::Float32);
    b.conv2d(32, 3, 2, false);
    EXPECT_EQ(b.current(), Shape::nhwc(149, 149, 32));
}

TEST(Builder, RectKernelShape)
{
    GraphBuilder b("t", Shape::nhwc(17, 17, 64), DType::Float32);
    b.conv2dRect(96, 1, 7, 1, true);
    EXPECT_EQ(b.current(), Shape::nhwc(17, 17, 96));
}

TEST(Builder, DepthwisePreservesChannels)
{
    GraphBuilder b("t", Shape::nhwc(112, 112, 32), DType::Float32);
    b.dwconv2d(3, 2);
    EXPECT_EQ(b.current(), Shape::nhwc(56, 56, 32));
}

TEST(Builder, PoolShapes)
{
    GraphBuilder b("t", Shape::nhwc(112, 112, 64), DType::Float32);
    b.maxPool(3, 2, false);
    EXPECT_EQ(b.current(), Shape::nhwc(55, 55, 64));
    b.globalAvgPool();
    EXPECT_EQ(b.current(), Shape::nhwc(1, 1, 64));
}

TEST(Builder, TransposeConvUpsamples)
{
    GraphBuilder b("t", Shape::nhwc(14, 14, 64), DType::Float32);
    b.transposeConv2d(32, 3, 2);
    EXPECT_EQ(b.current(), Shape::nhwc(28, 28, 32));
}

TEST(Builder, ConcatWidensChannels)
{
    GraphBuilder b("t", Shape::nhwc(8, 8, 16), DType::Float32);
    b.concatChannels(48);
    EXPECT_EQ(b.current(), Shape::nhwc(8, 8, 64));
}

TEST(Builder, ResidualAddKeepsShape)
{
    GraphBuilder b("t", Shape::nhwc(8, 8, 16), DType::Float32);
    b.residualAdd();
    EXPECT_EQ(b.current(), Shape::nhwc(8, 8, 16));
}

TEST(Builder, FullyConnectedAndReshape)
{
    GraphBuilder b("t", Shape::nhwc(1, 1, 1024), DType::Float32);
    b.reshape(Shape({1, 1024}));
    b.fullyConnected(1000);
    EXPECT_EQ(b.current(), Shape({1, 1000}));
}

TEST(Builder, ResizeBilinear)
{
    GraphBuilder b("t", Shape::nhwc(65, 65, 21), DType::Float32);
    b.resizeBilinear(513, 513);
    EXPECT_EQ(b.current(), Shape::nhwc(513, 513, 21));
}

TEST(Builder, SetCurrentRewindsForBranches)
{
    GraphBuilder b("t", Shape::nhwc(32, 32, 8), DType::Float32);
    const Shape in = b.current();
    b.conv2d(16, 1, 1);
    b.setCurrent(in);
    b.conv2d(24, 3, 1);
    EXPECT_EQ(b.current(), Shape::nhwc(32, 32, 24));
    Graph g = b.build();
    EXPECT_EQ(g.opCount(), 2u);
}

TEST(Builder, EmbeddingShape)
{
    GraphBuilder b("t", Shape({1, 128}), DType::Float32);
    b.embedding(30522, 512, 128);
    EXPECT_EQ(b.current(), Shape({1, 128, 512}));
}

TEST(Builder, AutoNamesAreUnique)
{
    GraphBuilder b("t", Shape::nhwc(8, 8, 4), DType::Float32);
    b.relu().relu().relu();
    Graph g = b.build();
    EXPECT_NE(g.ops()[0].name, g.ops()[1].name);
    EXPECT_NE(g.ops()[1].name, g.ops()[2].name);
}

// --- Graph aggregates & validation ------------------------------------

TEST(Graph, Totals)
{
    GraphBuilder b("t", Shape::nhwc(8, 8, 3), DType::Float32);
    b.conv2d(4, 3, 1).relu();
    Graph g = b.build();
    EXPECT_EQ(g.totalMacs(), 8LL * 8 * 4 * 9 * 3);
    EXPECT_EQ(g.totalParams(), 3LL * 3 * 3 * 4 + 4);
    EXPECT_EQ(g.paramBytes(), g.totalParams() * 4);
    EXPECT_GT(g.totalFlops(), 0);
    EXPECT_GT(g.activationBytes(), 0);
}

TEST(Graph, ParamBytesTrackDtype)
{
    GraphBuilder b1("t", Shape::nhwc(8, 8, 3), DType::Float32);
    b1.conv2d(4, 3, 1);
    GraphBuilder b2("t", Shape::nhwc(8, 8, 3), DType::UInt8);
    b2.conv2d(4, 3, 1);
    Graph g1 = b1.build();
    Graph g2 = b2.build();
    EXPECT_EQ(g1.paramBytes(), 4 * g2.paramBytes());
}

TEST(Graph, ValidatePassesOnWellFormed)
{
    GraphBuilder b("t", Shape::nhwc(8, 8, 3), DType::Float32);
    b.conv2d(4, 3, 1).relu().softmax();
    EXPECT_EQ(b.build().validate(), "");
}

TEST(Graph, ValidateRejectsEmpty)
{
    Graph g("empty", Shape::nhwc(8, 8, 3), DType::Float32);
    EXPECT_NE(g.validate(), "");
}

TEST(Graph, ValidateRejectsBadConv)
{
    Graph g("bad", Shape::nhwc(8, 8, 3), DType::Float32);
    Op op;
    op.kind = OpKind::Conv2D;
    op.name = "broken";
    op.inputs = {Shape::nhwc(8, 8, 3)};
    op.output = Shape::nhwc(8, 8, 4);
    op.conv.kernelH = 0; // invalid
    g.addOp(op);
    EXPECT_NE(g.validate().find("broken"), std::string::npos);
}

TEST(Graph, OutputShapeIsLastOp)
{
    GraphBuilder b("t", Shape::nhwc(8, 8, 3), DType::Float32);
    b.conv2d(4, 3, 2);
    Graph g = b.build();
    EXPECT_EQ(g.outputShape(), Shape::nhwc(4, 4, 4));
}

// --- serialization -----------------------------------------------------

TEST(Serialize, RoundTripSmallGraph)
{
    GraphBuilder b("tiny", Shape::nhwc(8, 8, 3), DType::UInt8);
    b.conv2d(4, 3, 2, false, "stem").relu6("act");
    b.conv2dRect(8, 1, 7, 1, true, "wide");
    b.matmul(1, 4, 8, 16, true, "proj");
    const Graph g = b.build();

    const std::string text = serializeGraph(g);
    Graph parsed;
    std::string error;
    ASSERT_TRUE(parseGraph(text, parsed, error)) << error;

    EXPECT_EQ(parsed.name(), g.name());
    EXPECT_EQ(parsed.dtype(), g.dtype());
    EXPECT_EQ(parsed.inputShape(), g.inputShape());
    ASSERT_EQ(parsed.opCount(), g.opCount());
    EXPECT_EQ(parsed.totalMacs(), g.totalMacs());
    EXPECT_EQ(parsed.totalParams(), g.totalParams());
    EXPECT_EQ(parsed.activationBytes(), g.activationBytes());
    for (std::size_t i = 0; i < g.opCount(); ++i) {
        EXPECT_EQ(parsed.ops()[i].kind, g.ops()[i].kind);
        EXPECT_EQ(parsed.ops()[i].name, g.ops()[i].name);
        EXPECT_EQ(parsed.ops()[i].output, g.ops()[i].output);
    }
}

TEST(Serialize, RejectsMissingHeader)
{
    Graph g;
    std::string error;
    EXPECT_FALSE(parseGraph("op Relu name=x out=4\nend\n", g, error));
    EXPECT_NE(error.find("header"), std::string::npos);
}

TEST(Serialize, RejectsUnknownKind)
{
    Graph g;
    std::string error;
    const std::string text =
        "graph t dtype=fp32 input=1x4\nop Frobnicate name=x out=1x4\nend\n";
    EXPECT_FALSE(parseGraph(text, g, error));
    EXPECT_NE(error.find("Frobnicate"), std::string::npos);
    EXPECT_NE(error.find("line 2"), std::string::npos);
}

TEST(Serialize, RejectsMissingEnd)
{
    Graph g;
    std::string error;
    EXPECT_FALSE(parseGraph("graph t dtype=fp32 input=1x4\n", g, error));
    EXPECT_NE(error.find("end"), std::string::npos);
}

TEST(Serialize, IgnoresCommentsAndBlankLines)
{
    Graph g;
    std::string error;
    const std::string text = "# a comment\n\n"
                             "graph t dtype=int8 input=1x4\n"
                             "op Relu name=r in=1x4 out=1x4\n"
                             "end\n";
    ASSERT_TRUE(parseGraph(text, g, error)) << error;
    EXPECT_EQ(g.opCount(), 1u);
    EXPECT_EQ(g.dtype(), DType::Int8);
}

TEST(Serialize, FuzzedInputNeverCrashes)
{
    // Random byte soup must be rejected gracefully, never parsed.
    tensor::Shape dummy;
    sim::RandomStream rng(1234, "fuzz");
    for (int trial = 0; trial < 200; ++trial) {
        std::string text;
        const auto len = rng.uniformInt(0, 200);
        for (std::int64_t i = 0; i < len; ++i)
            text += static_cast<char>(rng.uniformInt(32, 126));
        Graph g;
        std::string error;
        const bool ok = parseGraph(text, g, error);
        if (!ok) {
            EXPECT_FALSE(error.empty());
        }
    }
}

TEST(Serialize, MutatedValidTextFailsCleanly)
{
    GraphBuilder b("tiny", Shape::nhwc(8, 8, 3), DType::Float32);
    b.conv2d(4, 3, 1).relu();
    const std::string good = serializeGraph(b.build());
    sim::RandomStream rng(77, "mutate");
    for (int trial = 0; trial < 100; ++trial) {
        std::string text = good;
        const auto pos = static_cast<std::size_t>(
            rng.uniformInt(0, static_cast<std::int64_t>(text.size()) - 1));
        text[pos] = static_cast<char>(rng.uniformInt(33, 126));
        Graph g;
        std::string error;
        // Either it still parses (benign mutation) or it fails with a
        // diagnostic; both are fine as long as nothing crashes.
        if (!parseGraph(text, g, error)) {
            EXPECT_NE(error.find("line"), std::string::npos);
        }
    }
}

TEST(Serialize, BadShapeDiagnostic)
{
    Graph g;
    std::string error;
    const std::string text = "graph t dtype=fp32 input=1xhello\nend\n";
    EXPECT_FALSE(parseGraph(text, g, error));
    EXPECT_NE(error.find("shape"), std::string::npos);
}

// --- negative paths: truncation, bad magic, version skew ---------------

TEST(Serialize, EveryTruncationPrefixIsRejected)
{
    // A partially-written file (interrupted dump, short read) must
    // never parse: the trailing 'end' marker is the integrity check.
    GraphBuilder b("tiny", Shape::nhwc(8, 8, 3), DType::UInt8);
    b.conv2d(4, 3, 2, false, "stem").relu6("act");
    b.matmul(1, 4, 8, 16, true, "proj");
    const std::string good = serializeGraph(b.build());

    Graph g;
    std::string error;
    ASSERT_TRUE(parseGraph(good, g, error)) << error;
    for (std::size_t len = 0; len + 1 < good.size(); ++len) {
        Graph junk;
        EXPECT_FALSE(parseGraph(good.substr(0, len), junk, error))
            << "prefix of " << len << " bytes parsed";
        EXPECT_FALSE(error.empty());
    }
}

TEST(Serialize, BadMagicIsRejectedWithDiagnostic)
{
    // First keyword is the format's magic; anything else — a typo,
    // another text format, or binary junk — fails on line 1.
    Graph g;
    std::string error;
    for (const char *text :
         {"grahp t dtype=fp32 input=1x4\nend\n",
          "GRAPH t dtype=fp32 input=1x4\nend\n",
          "{\"graph\": \"t\"}\n",
          "\x7f" "ELF\x02\x01\x01\n",
          "PK\x03\x04 zipfile\n"}) {
        EXPECT_FALSE(parseGraph(text, g, error)) << text;
        EXPECT_NE(error.find("line 1"), std::string::npos) << error;
    }
}

TEST(Serialize, WriterStampsCurrentFormatVersion)
{
    GraphBuilder b("t", Shape::nhwc(4, 4, 3), DType::Float32);
    b.relu();
    const std::string text = serializeGraph(b.build());
    EXPECT_NE(text.find(" v=1 "), std::string::npos) << text;
    Graph g;
    std::string error;
    EXPECT_TRUE(parseGraph(text, g, error)) << error;
}

TEST(Serialize, UnversionedHeaderReadsAsVersionOne)
{
    // Files written before the version key existed must keep loading.
    Graph g;
    std::string error;
    const std::string text = "graph t dtype=fp32 input=1x4\n"
                             "op Relu name=r in=1x4 out=1x4\nend\n";
    ASSERT_TRUE(parseGraph(text, g, error)) << error;
    EXPECT_EQ(g.opCount(), 1u);
}

TEST(Serialize, FutureVersionIsRejectedNotMisread)
{
    Graph g;
    std::string error;
    const std::string text =
        "graph t v=2 dtype=fp32 input=1x4\n"
        "op Relu name=r in=1x4 out=1x4\nend\n";
    EXPECT_FALSE(parseGraph(text, g, error));
    EXPECT_NE(error.find("version"), std::string::npos) << error;
    EXPECT_NE(error.find("2"), std::string::npos) << error;
}

TEST(Serialize, MalformedVersionValuesAreRejected)
{
    Graph g;
    std::string error;
    for (const char *v : {"v=", "v=0", "v=abc", "v=1.5", "v=-1",
                          "v=99999999999999999999"}) {
        const std::string text = std::string("graph t ") + v +
                                 " dtype=fp32 input=1x4\nend\n";
        EXPECT_FALSE(parseGraph(text, g, error)) << v;
        EXPECT_NE(error.find("version"), std::string::npos) << error;
    }
}

} // namespace
} // namespace aitax::graph
