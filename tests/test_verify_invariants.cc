/**
 * @file
 * Metamorphic invariant tier: the paper-derived relations of
 * src/verify/invariants.h checked across all four Table II chipsets
 * and ten of the eleven Table I models, plus direct unit coverage of
 * each checker (including that they *fail* on doctored inputs).
 */

#include <gtest/gtest.h>

#include <sstream>
#include <tuple>

#include "soc/chipsets.h"
#include "verify/invariants.h"

namespace aitax::verify {
namespace {

using app::FrameworkKind;
using app::HarnessMode;
using tensor::DType;

const char *const kModels[] = {
    "mobilenet_v1", "squeezenet",  "efficientnet_lite0", "alexnet",
    "inception_v3", "inception_v4", "deeplab_v3", "ssd_mobilenet_v2",
    "posenet",      "mobile_bert",
};

/**
 * Deterministically choose a valid framework/dtype/mode for a
 * (model, chipset) pair, rotating so the sweep exercises every path.
 */
Scenario
sweepScenario(int model_idx, int chipset_idx)
{
    static const std::pair<FrameworkKind, DType> kPaths[] = {
        {FrameworkKind::TfliteCpu, DType::Float32},
        {FrameworkKind::TfliteHexagon, DType::UInt8},
        {FrameworkKind::SnpeDsp, DType::UInt8},
        {FrameworkKind::TfliteGpu, DType::Float32},
        {FrameworkKind::TfliteNnapi, DType::Float32},
    };
    static const HarnessMode kModes[] = {
        HarnessMode::CliBenchmark,
        HarnessMode::BenchmarkApp,
        HarnessMode::AndroidApp,
    };

    Scenario s;
    s.modelId = kModels[model_idx];
    s.socName = soc::allPlatforms()[static_cast<std::size_t>(chipset_idx)]
                    .socName;
    s.mode = kModes[(model_idx + chipset_idx) % 3];
    s.runs = 5;
    s.seed = 1000 + static_cast<std::uint64_t>(model_idx * 10 +
                                               chipset_idx);
    for (int probe = 0; probe < 5; ++probe) {
        const auto &[fw, dtype] =
            kPaths[(model_idx + chipset_idx + probe) % 5];
        s.framework = fw;
        s.dtype = dtype;
        if (scenarioValid(s))
            return s;
    }
    // Every model supports the CPU fp32 path.
    s.framework = FrameworkKind::TfliteCpu;
    s.dtype = DType::Float32;
    EXPECT_TRUE(scenarioValid(s));
    return s;
}

class InvariantSweep
    : public ::testing::TestWithParam<std::tuple<int, int>>
{
};

TEST_P(InvariantSweep, AllInvariantsHold)
{
    const auto [model_idx, chipset_idx] = GetParam();
    const Scenario s = sweepScenario(model_idx, chipset_idx);
    const InvariantReport report = verifyScenario(s);
    EXPECT_GE(report.results().size(), 5u);
    if (!report.allPassed()) {
        std::ostringstream os;
        report.render(os);
        FAIL() << s.describe() << "\n" << os.str();
    }
}

INSTANTIATE_TEST_SUITE_P(
    ModelsByChipsets, InvariantSweep,
    ::testing::Combine(::testing::Range(0, 10), ::testing::Range(0, 4)),
    [](const auto &info) {
        const int model_idx = std::get<0>(info.param);
        const int chipset_idx = std::get<1>(info.param);
        std::string soc = soc::allPlatforms()[static_cast<std::size_t>(
                              chipset_idx)]
                              .socName;
        std::string digits;
        for (char c : soc)
            if (c >= '0' && c <= '9')
                digits += c;
        return std::string(kModels[model_idx]) + "_sd" + digits;
    });

// --- background-load invariant exercised with real contention ----------

TEST(Invariants, BackgroundDspLoadSlowsDspPipeline)
{
    Scenario quiet;
    quiet.modelId = "mobilenet_v1";
    quiet.dtype = DType::UInt8;
    quiet.framework = FrameworkKind::TfliteHexagon;
    quiet.mode = HarnessMode::AndroidApp;
    quiet.runs = 8;
    quiet.seed = 21;

    Scenario loaded = quiet;
    loaded.dspLoadProcesses = 2;

    const auto base = runScenario(quiet);
    const auto contended = runScenario(loaded);
    EXPECT_GT(contended.backgroundInferences, 0);
    const auto check =
        checkBackgroundMonotonic(base.report, contended.report);
    EXPECT_TRUE(check.passed) << check.detail;
    // The contention is not marginal: the DSP stalls the pipeline.
    EXPECT_GT(contended.report.endToEndMeanMs(),
              base.report.endToEndMeanMs());
}

TEST(Invariants, BackgroundCheckRejectsFabricatedSpeedup)
{
    core::StageLatencies fast;
    fast[core::Stage::Inference] = sim::msToNs(5.0);
    core::StageLatencies slow;
    slow[core::Stage::Inference] = sim::msToNs(10.0);

    core::TaxReport unloaded;
    unloaded.add(slow);
    core::TaxReport loaded;
    loaded.add(fast);
    // "Adding load halved the latency" must be flagged.
    EXPECT_FALSE(checkBackgroundMonotonic(unloaded, loaded).passed);
    EXPECT_TRUE(checkBackgroundMonotonic(loaded, unloaded).passed);
}

// --- interference suppression ------------------------------------------

TEST(Invariants, SuppressingInterferenceNeverSlower)
{
    auto run_mode = [&](bool suppress) {
        soc::SocSystem sys(soc::makeSnapdragon845(), 17);
        app::PipelineConfig cfg;
        cfg.model = models::findModel("mobilenet_v1");
        cfg.dtype = DType::Float32;
        cfg.framework = FrameworkKind::TfliteCpu;
        cfg.mode = HarnessMode::AndroidApp;
        cfg.suppressInterference = suppress;
        app::Application application(sys, cfg);
        core::TaxReport report;
        application.scheduleRuns(10, report);
        sys.run();
        return report;
    };
    const auto noisy = run_mode(false);
    const auto quiet = run_mode(true);
    const auto check = checkInterferenceSuppression(noisy, quiet);
    EXPECT_TRUE(check.passed) << check.detail;
}

// --- thermal monotonicity ----------------------------------------------

TEST(Invariants, ThermalMonotonicOnEveryChipset)
{
    for (const auto &platform : soc::allPlatforms()) {
        const auto check = checkThermalMonotonic(platform);
        EXPECT_TRUE(check.passed)
            << platform.socName << ": " << check.detail;
    }
}

// --- FastRPC linearity --------------------------------------------------

TEST(Invariants, FastRpcWarmOverheadIsStationary)
{
    Scenario s;
    s.modelId = "mobilenet_v1";
    s.dtype = DType::UInt8;
    s.framework = FrameworkKind::SnpeDsp;
    s.mode = HarnessMode::CliBenchmark;
    s.runs = 24;
    s.seed = 5;
    const auto result = runScenario(s);
    ASSERT_GE(result.rpcLog.size(), 6u);
    const auto check = checkFastRpcLinearity(result.rpcLog);
    EXPECT_TRUE(check.passed) << check.detail;
    // Only the first call pays the session open (Fig 8 cold start).
    EXPECT_GT(result.rpcLog.front().sessionOpenNs, 0);
}

TEST(Invariants, FastRpcCheckRejectsDoctoredLog)
{
    Scenario s;
    s.modelId = "mobilenet_v1";
    s.dtype = DType::UInt8;
    s.framework = FrameworkKind::SnpeDsp;
    s.mode = HarnessMode::CliBenchmark;
    s.runs = 12;
    s.seed = 5;
    auto log = runScenario(s).rpcLog;
    ASSERT_GE(log.size(), 6u);
    // Grossly inflate the tail: growth is now super-linear.
    for (std::size_t i = log.size() / 2; i < log.size(); ++i)
        log[i].queueWaitNs += sim::msToNs(500.0);
    EXPECT_FALSE(checkFastRpcLinearity(log).passed);
    // A warm call re-paying the session open is also flagged.
    auto reopened = runScenario(s).rpcLog;
    reopened.back().sessionOpenNs = sim::msToNs(15.0);
    EXPECT_FALSE(checkFastRpcLinearity(reopened).passed);
}

// --- trace determinism checker -----------------------------------------

TEST(Invariants, TraceCheckerReportsFirstDivergence)
{
    EXPECT_TRUE(checkTraceDeterminism("abcdef", "abcdef").passed);
    const auto diff = checkTraceDeterminism("abcdef", "abcXef");
    EXPECT_FALSE(diff.passed);
    EXPECT_NE(diff.detail.find("byte 3"), std::string::npos)
        << diff.detail;
}

// --- stage sanity on a hand-built report --------------------------------

TEST(Invariants, StageSanityCatchesBrokenAccounting)
{
    core::StageLatencies run;
    run[core::Stage::DataCapture] = sim::msToNs(1.0);
    run[core::Stage::Inference] = sim::msToNs(4.0);
    core::TaxReport good;
    good.add(run);
    EXPECT_TRUE(checkStageSanity(good).passed);
    EXPECT_TRUE(checkTaxFraction(good).passed);

    core::TaxReport empty;
    EXPECT_FALSE(checkStageSanity(empty).passed);

    // All-inference runs have zero tax — an accounting bug in any
    // harness mode (even benchmarks pay capture/prep time).
    core::StageLatencies inference_only;
    inference_only[core::Stage::Inference] = sim::msToNs(4.0);
    core::TaxReport no_tax;
    no_tax.add(inference_only);
    EXPECT_FALSE(checkTaxFraction(no_tax).passed);
}

} // namespace
} // namespace aitax::verify
