/**
 * @file
 * Metamorphic invariant tier: the paper-derived relations of
 * src/verify/invariants.h checked across all four Table II chipsets
 * and ten of the eleven Table I models, plus direct unit coverage of
 * each checker (including that they *fail* on doctored inputs).
 */

#include <gtest/gtest.h>

#include <sstream>
#include <tuple>

#include "soc/chipsets.h"
#include "verify/invariants.h"

namespace aitax::verify {
namespace {

using app::FrameworkKind;
using app::HarnessMode;
using tensor::DType;

const char *const kModels[] = {
    "mobilenet_v1", "squeezenet",  "efficientnet_lite0", "alexnet",
    "inception_v3", "inception_v4", "deeplab_v3", "ssd_mobilenet_v2",
    "posenet",      "mobile_bert",
};

/**
 * Deterministically choose a valid framework/dtype/mode for a
 * (model, chipset) pair, rotating so the sweep exercises every path.
 */
Scenario
sweepScenario(int model_idx, int chipset_idx)
{
    static const std::pair<FrameworkKind, DType> kPaths[] = {
        {FrameworkKind::TfliteCpu, DType::Float32},
        {FrameworkKind::TfliteHexagon, DType::UInt8},
        {FrameworkKind::SnpeDsp, DType::UInt8},
        {FrameworkKind::TfliteGpu, DType::Float32},
        {FrameworkKind::TfliteNnapi, DType::Float32},
    };
    static const HarnessMode kModes[] = {
        HarnessMode::CliBenchmark,
        HarnessMode::BenchmarkApp,
        HarnessMode::AndroidApp,
    };

    Scenario s;
    s.modelId = kModels[model_idx];
    s.socName = soc::allPlatforms()[static_cast<std::size_t>(chipset_idx)]
                    .socName;
    s.mode = kModes[(model_idx + chipset_idx) % 3];
    s.runs = 5;
    s.seed = 1000 + static_cast<std::uint64_t>(model_idx * 10 +
                                               chipset_idx);
    for (int probe = 0; probe < 5; ++probe) {
        const auto &[fw, dtype] =
            kPaths[(model_idx + chipset_idx + probe) % 5];
        s.framework = fw;
        s.dtype = dtype;
        if (scenarioValid(s))
            return s;
    }
    // Every model supports the CPU fp32 path.
    s.framework = FrameworkKind::TfliteCpu;
    s.dtype = DType::Float32;
    EXPECT_TRUE(scenarioValid(s));
    return s;
}

class InvariantSweep
    : public ::testing::TestWithParam<std::tuple<int, int>>
{
};

TEST_P(InvariantSweep, AllInvariantsHold)
{
    const auto [model_idx, chipset_idx] = GetParam();
    const Scenario s = sweepScenario(model_idx, chipset_idx);
    const InvariantReport report = verifyScenario(s);
    EXPECT_GE(report.results().size(), 5u);
    if (!report.allPassed()) {
        std::ostringstream os;
        report.render(os);
        FAIL() << s.describe() << "\n" << os.str();
    }
}

INSTANTIATE_TEST_SUITE_P(
    ModelsByChipsets, InvariantSweep,
    ::testing::Combine(::testing::Range(0, 10), ::testing::Range(0, 4)),
    [](const auto &info) {
        const int model_idx = std::get<0>(info.param);
        const int chipset_idx = std::get<1>(info.param);
        std::string soc = soc::allPlatforms()[static_cast<std::size_t>(
                              chipset_idx)]
                              .socName;
        std::string digits;
        for (char c : soc)
            if (c >= '0' && c <= '9')
                digits += c;
        return std::string(kModels[model_idx]) + "_sd" + digits;
    });

// --- background-load invariant exercised with real contention ----------

TEST(Invariants, BackgroundDspLoadSlowsDspPipeline)
{
    Scenario quiet;
    quiet.modelId = "mobilenet_v1";
    quiet.dtype = DType::UInt8;
    quiet.framework = FrameworkKind::TfliteHexagon;
    quiet.mode = HarnessMode::AndroidApp;
    quiet.runs = 8;
    quiet.seed = 21;

    Scenario loaded = quiet;
    loaded.dspLoadProcesses = 2;

    const auto base = runScenario(quiet);
    const auto contended = runScenario(loaded);
    EXPECT_GT(contended.backgroundInferences, 0);
    const auto check =
        checkBackgroundMonotonic(base.report, contended.report);
    EXPECT_TRUE(check.passed) << check.detail;
    // The contention is not marginal: the DSP stalls the pipeline.
    EXPECT_GT(contended.report.endToEndMeanMs(),
              base.report.endToEndMeanMs());
}

TEST(Invariants, BackgroundCheckRejectsFabricatedSpeedup)
{
    core::StageLatencies fast;
    fast[core::Stage::Inference] = sim::msToNs(5.0);
    core::StageLatencies slow;
    slow[core::Stage::Inference] = sim::msToNs(10.0);

    core::TaxReport unloaded;
    unloaded.add(slow);
    core::TaxReport loaded;
    loaded.add(fast);
    // "Adding load halved the latency" must be flagged.
    EXPECT_FALSE(checkBackgroundMonotonic(unloaded, loaded).passed);
    EXPECT_TRUE(checkBackgroundMonotonic(loaded, unloaded).passed);
}

// --- interference suppression ------------------------------------------

TEST(Invariants, SuppressingInterferenceNeverSlower)
{
    auto run_mode = [&](bool suppress) {
        soc::SocSystem sys(soc::makeSnapdragon845(), 17);
        app::PipelineConfig cfg;
        cfg.model = models::findModel("mobilenet_v1");
        cfg.dtype = DType::Float32;
        cfg.framework = FrameworkKind::TfliteCpu;
        cfg.mode = HarnessMode::AndroidApp;
        cfg.suppressInterference = suppress;
        app::Application application(sys, cfg);
        core::TaxReport report;
        application.scheduleRuns(10, report);
        sys.run();
        return report;
    };
    const auto noisy = run_mode(false);
    const auto quiet = run_mode(true);
    const auto check = checkInterferenceSuppression(noisy, quiet);
    EXPECT_TRUE(check.passed) << check.detail;
}

// --- thermal monotonicity ----------------------------------------------

TEST(Invariants, ThermalMonotonicOnEveryChipset)
{
    for (const auto &platform : soc::allPlatforms()) {
        const auto check = checkThermalMonotonic(platform);
        EXPECT_TRUE(check.passed)
            << platform.socName << ": " << check.detail;
    }
}

// --- FastRPC linearity --------------------------------------------------

TEST(Invariants, FastRpcWarmOverheadIsStationary)
{
    Scenario s;
    s.modelId = "mobilenet_v1";
    s.dtype = DType::UInt8;
    s.framework = FrameworkKind::SnpeDsp;
    s.mode = HarnessMode::CliBenchmark;
    s.runs = 24;
    s.seed = 5;
    const auto result = runScenario(s);
    ASSERT_GE(result.rpcLog.size(), 6u);
    const auto check = checkFastRpcLinearity(result.rpcLog);
    EXPECT_TRUE(check.passed) << check.detail;
    // Only the first call pays the session open (Fig 8 cold start).
    EXPECT_GT(result.rpcLog.front().sessionOpenNs, 0);
}

TEST(Invariants, FastRpcCheckRejectsDoctoredLog)
{
    Scenario s;
    s.modelId = "mobilenet_v1";
    s.dtype = DType::UInt8;
    s.framework = FrameworkKind::SnpeDsp;
    s.mode = HarnessMode::CliBenchmark;
    s.runs = 12;
    s.seed = 5;
    auto log = runScenario(s).rpcLog;
    ASSERT_GE(log.size(), 6u);
    // Grossly inflate the tail: growth is now super-linear.
    for (std::size_t i = log.size() / 2; i < log.size(); ++i)
        log[i].queueWaitNs += sim::msToNs(500.0);
    EXPECT_FALSE(checkFastRpcLinearity(log).passed);
    // A warm call re-paying the session open is also flagged.
    auto reopened = runScenario(s).rpcLog;
    reopened.back().sessionOpenNs = sim::msToNs(15.0);
    EXPECT_FALSE(checkFastRpcLinearity(reopened).passed);
}

// --- trace determinism checker -----------------------------------------

TEST(Invariants, TraceCheckerReportsFirstDivergence)
{
    EXPECT_TRUE(checkTraceDeterminism("abcdef", "abcdef").passed);
    const auto diff = checkTraceDeterminism("abcdef", "abcXef");
    EXPECT_FALSE(diff.passed);
    EXPECT_NE(diff.detail.find("byte 3"), std::string::npos)
        << diff.detail;
}

// --- stage sanity on a hand-built report --------------------------------

TEST(Invariants, StageSanityCatchesBrokenAccounting)
{
    core::StageLatencies run;
    run[core::Stage::DataCapture] = sim::msToNs(1.0);
    run[core::Stage::Inference] = sim::msToNs(4.0);
    core::TaxReport good;
    good.add(run);
    EXPECT_TRUE(checkStageSanity(good).passed);
    EXPECT_TRUE(checkTaxFraction(good).passed);

    core::TaxReport empty;
    EXPECT_FALSE(checkStageSanity(empty).passed);

    // All-inference runs have zero tax — an accounting bug in any
    // harness mode (even benchmarks pay capture/prep time).
    core::StageLatencies inference_only;
    inference_only[core::Stage::Inference] = sim::msToNs(4.0);
    core::TaxReport no_tax;
    no_tax.add(inference_only);
    EXPECT_FALSE(checkTaxFraction(no_tax).passed);
}

// --- fault-era checkers on hand-built witnesses -------------------------

TEST(Invariants, RpcBreakdownSanityRejectsDoctoredCalls)
{
    Scenario s;
    s.modelId = "mobilenet_v1";
    s.dtype = DType::UInt8;
    s.framework = FrameworkKind::SnpeDsp;
    s.mode = HarnessMode::CliBenchmark;
    s.runs = 6;
    s.seed = 17;
    const auto log = runScenario(s).rpcLog;
    ASSERT_FALSE(log.empty());
    EXPECT_TRUE(checkRpcBreakdownSanity(log).passed);

    // The misattribution bug's signature: a negative queue wait.
    auto negative = log;
    negative[0].queueWaitNs = -sim::usToNs(150.0);
    const auto neg = checkRpcBreakdownSanity(negative);
    EXPECT_FALSE(neg.passed);
    EXPECT_NE(neg.detail.find("queueWaitNs"), std::string::npos)
        << neg.detail;

    // Retry overhead can only appear alongside a retry count.
    auto phantom = log;
    phantom.back().retryNs = sim::msToNs(1.0);
    phantom.back().retries = 0;
    EXPECT_FALSE(checkRpcBreakdownSanity(phantom).passed);

    auto bad_count = log;
    bad_count[0].retries = -1;
    EXPECT_FALSE(checkRpcBreakdownSanity(bad_count).passed);
}

TEST(Invariants, FrameCausalityRejectsTimeTravel)
{
    std::vector<app::FrameConsume> ok = {
        {0, sim::msToNs(5.0), sim::msToNs(5.0)},
        {1, sim::msToNs(13.0), sim::msToNs(14.0)},
    };
    EXPECT_TRUE(checkFrameCausality(ok).passed);
    EXPECT_TRUE(checkFrameCausality({}).passed);

    // Frame consumed before the sensor produced it.
    std::vector<app::FrameConsume> early = ok;
    early[0].consumedAt = early[0].readyAt - 1;
    EXPECT_FALSE(checkFrameCausality(early).passed);

    // Frame indices must move strictly forward.
    std::vector<app::FrameConsume> repeat = ok;
    repeat[1].frame = 0;
    EXPECT_FALSE(checkFrameCausality(repeat).passed);
}

TEST(Invariants, FallbackMonotonicRejectsClimbing)
{
    faults::FaultStats down;
    down.fallbacks = {{faults::ChainLink::Dsp, faults::ChainLink::Gpu, 0},
                      {faults::ChainLink::Gpu, faults::ChainLink::Cpu, 1}};
    EXPECT_TRUE(checkFallbackMonotonic(down).passed);

    faults::FaultStats up;
    up.fallbacks = {{faults::ChainLink::Gpu, faults::ChainLink::Dsp, 0}};
    const auto r = checkFallbackMonotonic(up);
    EXPECT_FALSE(r.passed);
    EXPECT_NE(r.detail.find("climbs"), std::string::npos) << r.detail;
}

TEST(Invariants, DegradedAccountingChecksBothArms)
{
    core::StageLatencies run;
    run[core::Stage::DataCapture] = sim::msToNs(1.0);
    run[core::Stage::Inference] = sim::msToNs(4.0);

    // Unfaulted: any degraded sample is a leak.
    core::TaxReport clean;
    clean.add(run);
    EXPECT_TRUE(checkDegradedAccounting(clean, false).passed);
    core::TaxReport leaking;
    leaking.add(run);
    leaking.addDegraded(0.5);
    EXPECT_FALSE(checkDegradedAccounting(leaking, false).passed);

    // Faulted: exactly one sample per run, bounded by that run's wall.
    core::TaxReport faulted;
    faulted.add(run);
    faulted.addDegraded(2.0);
    EXPECT_TRUE(checkDegradedAccounting(faulted, true).passed);

    core::TaxReport missing;
    missing.add(run);
    EXPECT_FALSE(checkDegradedAccounting(missing, true).passed);

    core::TaxReport oversized;
    oversized.add(run);
    oversized.addDegraded(50.0); // exceeds the 5 ms end-to-end wall
    EXPECT_FALSE(checkDegradedAccounting(oversized, true).passed);
}

} // namespace
} // namespace aitax::verify
