/**
 * @file
 * Seeded scenario generator tests: sampling determinism, validity of
 * everything the fuzzer produces, the (master seed, index) replay
 * contract, and the witnesses runScenario collects.
 */

#include <gtest/gtest.h>

#include <set>

#include "soc/chipsets.h"
#include "verify/invariants.h"
#include "verify/scenario.h"

namespace aitax::verify {
namespace {

using app::FrameworkKind;
using app::HarnessMode;
using tensor::DType;

bool
sameScenario(const Scenario &a, const Scenario &b)
{
    return a.modelId == b.modelId && a.socName == b.socName &&
           a.dtype == b.dtype && a.framework == b.framework &&
           a.mode == b.mode && a.runs == b.runs &&
           a.dspLoadProcesses == b.dspLoadProcesses &&
           a.cpuLoadProcesses == b.cpuLoadProcesses && a.seed == b.seed;
}

TEST(ScenarioSampler, EverySampleIsValid)
{
    sim::RandomStream rng(42, "sampler-test");
    for (int i = 0; i < 200; ++i) {
        const Scenario s = sampleScenario(rng);
        EXPECT_TRUE(scenarioValid(s)) << s.describe();
        EXPECT_NE(models::findModel(s.modelId), nullptr);
        EXPECT_GE(s.runs, 1);
    }
}

TEST(ScenarioSampler, CoversTheConfigurationSpace)
{
    sim::RandomStream rng(7, "coverage-test");
    std::set<std::string> socs, model_ids;
    std::set<int> frameworks, modes;
    int with_load = 0;
    for (int i = 0; i < 300; ++i) {
        const Scenario s = sampleScenario(rng);
        socs.insert(s.socName);
        model_ids.insert(s.modelId);
        frameworks.insert(static_cast<int>(s.framework));
        modes.insert(static_cast<int>(s.mode));
        with_load += (s.dspLoadProcesses + s.cpuLoadProcesses) > 0;
    }
    EXPECT_EQ(socs.size(), 4u);
    EXPECT_GE(model_ids.size(), 10u);
    EXPECT_EQ(frameworks.size(), 5u);
    EXPECT_EQ(modes.size(), 3u);
    EXPECT_GT(with_load, 100);
}

TEST(ScenarioSampler, FuzzScenarioIsAPureFunction)
{
    for (int i = 0; i < 20; ++i) {
        const Scenario a = fuzzScenario(99, i);
        const Scenario b = fuzzScenario(99, i);
        EXPECT_TRUE(sameScenario(a, b)) << i;
    }
    // Different indices (and different master seeds) decorrelate.
    int distinct = 0;
    for (int i = 1; i < 20; ++i)
        distinct += !sameScenario(fuzzScenario(99, 0), fuzzScenario(99, i));
    EXPECT_GT(distinct, 15);
    EXPECT_FALSE(
        sameScenario(fuzzScenario(99, 0), fuzzScenario(100, 0)));
}

TEST(ScenarioSampler, ReplayCommandNamesSeedAndIndex)
{
    const std::string cmd = replayCommand(1234, 7);
    EXPECT_NE(cmd.find("--seed 1234"), std::string::npos) << cmd;
    EXPECT_NE(cmd.find("--replay 7"), std::string::npos) << cmd;
}

TEST(ScenarioLabel, IsFilesystemSafeAndDistinguishing)
{
    sim::RandomStream rng(3, "label-test");
    std::set<std::string> labels;
    for (int i = 0; i < 50; ++i) {
        const Scenario s = sampleScenario(rng);
        const std::string label = s.label();
        for (char c : label) {
            const bool ok = (c >= 'a' && c <= 'z') ||
                            (c >= 'A' && c <= 'Z') ||
                            (c >= '0' && c <= '9') || c == '_';
            EXPECT_TRUE(ok) << label;
        }
        labels.insert(label);
    }
    // Seeds alone make collisions essentially impossible.
    EXPECT_EQ(labels.size(), 50u);
}

TEST(ScenarioValidity, RejectsImpossibleCombinations)
{
    Scenario s;
    s.modelId = "no_such_model";
    EXPECT_FALSE(scenarioValid(s));

    s = Scenario{};
    s.modelId = "mobile_bert"; // no transformer kernels on SNPE
    s.framework = FrameworkKind::SnpeDsp;
    EXPECT_FALSE(scenarioValid(s));

    s = Scenario{};
    s.modelId = "posenet"; // no quantized variant in Table I
    s.dtype = DType::UInt8;
    EXPECT_FALSE(scenarioValid(s));

    s = Scenario{};
    s.modelId = "mobilenet_v1"; // Hexagon delegate is int8-only
    s.framework = FrameworkKind::TfliteHexagon;
    s.dtype = DType::Float32;
    EXPECT_FALSE(scenarioValid(s));

    s.dtype = DType::UInt8;
    EXPECT_TRUE(scenarioValid(s));

    s.runs = 0;
    EXPECT_FALSE(scenarioValid(s));
}

TEST(ScenarioRunner, CollectsReportAndWitnesses)
{
    Scenario s;
    s.modelId = "mobilenet_v1";
    s.dtype = DType::Float32;
    s.framework = FrameworkKind::TfliteCpu;
    s.mode = HarnessMode::AndroidApp;
    s.runs = 6;
    s.seed = 9;
    const auto result = runScenario(s);
    EXPECT_EQ(result.report.runs(), 6u);
    EXPECT_GT(result.endTimeNs, 0);
    EXPECT_GT(result.energyMj, 0.0);
    EXPECT_GT(result.thermalSpeedFactor, 0.0);
    EXPECT_LE(result.thermalSpeedFactor, 1.0);
    // A CPU pipeline never crosses FastRPC.
    EXPECT_TRUE(result.rpcLog.empty());
    // The trace is a JSON array with at least one CPU track.
    EXPECT_EQ(result.chromeTraceJson.front(), '[');
    EXPECT_NE(result.chromeTraceJson.find("thread_name"),
              std::string::npos);
}

TEST(ScenarioRunner, DspScenarioLogsRpcCalls)
{
    Scenario s;
    s.modelId = "mobilenet_v1";
    s.dtype = DType::UInt8;
    s.framework = FrameworkKind::SnpeDsp;
    s.mode = HarnessMode::CliBenchmark;
    s.runs = 6;
    s.seed = 9;
    const auto result = runScenario(s);
    EXPECT_FALSE(result.rpcLog.empty());
}

TEST(ScenarioRunner, BackgroundLoadActuallyRuns)
{
    Scenario s;
    s.modelId = "mobilenet_v1";
    s.dtype = DType::UInt8;
    s.framework = FrameworkKind::TfliteHexagon;
    s.mode = HarnessMode::AndroidApp;
    s.runs = 6;
    s.seed = 9;
    s.dspLoadProcesses = 1;
    s.cpuLoadProcesses = 1;
    const auto result = runScenario(s);
    EXPECT_GT(result.backgroundInferences, 0);
}

} // namespace
} // namespace aitax::verify
