/**
 * @file
 * Campaign transport and crash-consistency verification
 * (ctest -L verify).
 *
 * Proves the three contracts PR 10 adds on top of the campaign
 * determinism contract:
 *
 *  1. Byte-identity across transports: the same campaign run over
 *     fork/exec pipes and over loopback TCP (against both standalone
 *     `sweep-serve --listen` workers and the multi-campaign
 *     `aitax_cli serve` daemon) produces a byte-identical
 *     deterministic report, including the 256-scenario differential
 *     the issue names.
 *
 *  2. Manifest crash-consistency: records are fsync'd one line at a
 *     time, so a kill can tear at most the final line. Resuming from
 *     a manifest truncated at EVERY byte offset must recover to the
 *     uninterrupted bytes; a malformed *terminated* line must still
 *     hard-fail.
 *
 *  3. Worker-loss hygiene: a partial result line left in the
 *     coordinator's buffer at worker EOF is discarded with the
 *     reclaimed chunk; a hung worker is killed by the liveness
 *     deadline; SIGPIPE disposition is restored on every exit path;
 *     and all protocol numbers survive a comma-decimal locale.
 */

#include <gtest/gtest.h>

#include <clocale>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include "stats/numfmt.h"
#include "sweep/campaign.h"

#ifndef AITAX_CLI_PATH
#error "build must define AITAX_CLI_PATH"
#endif

namespace aitax {
namespace {

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
}

void
writeFile(const std::string &path, const std::string &data)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << data;
    ASSERT_TRUE(out.good()) << path;
}

/** Small campaign over the real aitax_cli sweep-serve worker. */
sweep::CampaignConfig
pipeConfig(int scenarios, int chunk, int shards, int jobs,
           std::uint64_t seed)
{
    sweep::CampaignConfig cfg;
    cfg.scenarios = scenarios;
    cfg.chunk = chunk;
    cfg.shards = shards;
    cfg.identity = "corpus=fuzz seed=" + std::to_string(seed) +
                   " scenarios=" + std::to_string(scenarios) +
                   " chunk=" + std::to_string(chunk) +
                   " faults=0 engine=fast";
    cfg.corpusSpec = cfg.identity;
    cfg.workerCmd = {AITAX_CLI_PATH,
                     "sweep-serve",
                     "--seed",
                     std::to_string(seed),
                     "--jobs",
                     std::to_string(jobs)};
    return cfg;
}

std::string
reportOf(const sweep::CampaignSummary &sum,
         const sweep::CampaignConfig &cfg)
{
    return sweep::campaignReportJson(cfg.identity, sum.aggregate);
}

std::string
mustRun(const sweep::CampaignConfig &cfg,
        sweep::CampaignSummary *out = nullptr)
{
    const auto sum = sweep::runCampaign(cfg);
    EXPECT_EQ(sum.status, sweep::CampaignStatus::Ok) << sum.error;
    if (out != nullptr)
        *out = sum;
    return sum.status == sweep::CampaignStatus::Ok ? reportOf(sum, cfg)
                                                   : std::string();
}

// ---------------------------------------------------------------
// Child-process helpers for TCP workers and the serve daemon.
// ---------------------------------------------------------------

/** fork/exec aitax_cli with the given argv tail; returns the pid. */
pid_t
spawnCli(const std::vector<std::string> &args)
{
    const pid_t pid = fork();
    if (pid != 0)
        return pid;
    std::vector<std::string> argvS;
    argvS.push_back(AITAX_CLI_PATH);
    argvS.insert(argvS.end(), args.begin(), args.end());
    std::vector<char *> argv;
    for (std::string &a : argvS)
        argv.push_back(a.data());
    argv.push_back(nullptr);
    execv(argv[0], argv.data());
    _exit(127);
}

/** Poll a --port-file until the child announces its bound port. */
int
awaitPort(const std::string &portFile)
{
    for (int i = 0; i < 200; ++i) {
        std::ifstream in(portFile);
        int port = 0;
        if (in >> port && port > 0)
            return port;
        usleep(25 * 1000);
    }
    return -1;
}

void
reapChild(pid_t pid, bool expectClean)
{
    int status = 0;
    ASSERT_EQ(waitpid(pid, &status, 0), pid);
    if (expectClean) {
        EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0)
            << "child exit status " << status;
    }
}

struct ChildGuard
{
    pid_t pid = -1;
    ~ChildGuard()
    {
        if (pid > 0) {
            ::kill(pid, SIGKILL);
            waitpid(pid, nullptr, 0);
        }
    }
    void disarm() { pid = -1; }
};

// ---------------------------------------------------------------
// 1. Transports: pipe vs TCP byte-identity, spec addressing, v1.
// ---------------------------------------------------------------

TEST(Transport, V1FallbackIsByteIdentical)
{
    auto v2 = pipeConfig(24, 4, 2, 1, 77);
    const std::string base = mustRun(v2);
    ASSERT_FALSE(base.empty());

    auto v1 = v2;
    v1.workerCmd.push_back("--protocol");
    v1.workerCmd.push_back("v1");
    EXPECT_EQ(mustRun(v1), base);
}

TEST(Transport, TcpWorkersResolveCorpusFromSpec)
{
    auto pipe_cfg = pipeConfig(24, 4, 2, 1, 77);
    const std::string base = mustRun(pipe_cfg);
    ASSERT_FALSE(base.empty());

    // Standalone TCP workers whose argv seed DISAGREES with the
    // campaign: only the spec handshake can make the bytes match, so
    // a match proves worker-side corpus addressing is load-bearing.
    std::vector<std::string> endpoints;
    ChildGuard g[2];
    for (int i = 0; i < 2; ++i) {
        const std::string portFile = testing::TempDir() +
                                     "aitax_tcp_worker_" +
                                     std::to_string(i) + ".port";
        std::remove(portFile.c_str());
        g[i].pid = spawnCli({"sweep-serve", "--seed", "123456",
                             "--jobs", "1", "--listen", "0",
                             "--accept", "1", "--port-file",
                             portFile});
        const int port = awaitPort(portFile);
        ASSERT_GT(port, 0) << "worker " << i << " never bound";
        endpoints.push_back("127.0.0.1:" + std::to_string(port));
        std::remove(portFile.c_str());
    }

    auto tcp_cfg = pipe_cfg;
    tcp_cfg.workerCmd.clear();
    tcp_cfg.workers = endpoints;
    tcp_cfg.workerDeadlineSeconds = 30.0;
    sweep::CampaignSummary sum;
    EXPECT_EQ(mustRun(tcp_cfg, &sum), base);
    EXPECT_EQ(sum.transport, "tcp");
    for (auto &c : g) {
        reapChild(c.pid, /*expectClean=*/true);
        c.disarm();
    }
}

TEST(Transport, TcpRequiresCorpusSpec)
{
    auto cfg = pipeConfig(8, 4, 1, 1, 77);
    cfg.workers = {"127.0.0.1:1"};
    cfg.corpusSpec.clear();
    const auto sum = sweep::runCampaign(cfg);
    EXPECT_EQ(sum.status, sweep::CampaignStatus::Error);
    EXPECT_NE(sum.error.find("corpus spec"), std::string::npos)
        << sum.error;
}

TEST(Transport, WorkerRejectsForeignSpec)
{
    auto cfg = pipeConfig(8, 4, 1, 1, 77);
    cfg.corpusSpec = "corpus=martian seed=1";
    const auto sum = sweep::runCampaign(cfg);
    EXPECT_EQ(sum.status, sweep::CampaignStatus::Error);
    EXPECT_NE(sum.error.find("rejected campaign spec"),
              std::string::npos)
        << sum.error;
}

TEST(Transport, DaemonServesConcurrentCampaignsInIsolation)
{
    const std::string portFile =
        testing::TempDir() + "aitax_daemon.port";
    std::remove(portFile.c_str());
    ChildGuard daemon;
    // Two campaigns x two sessions each = exactly 4 accepts.
    daemon.pid = spawnCli({"serve", "--listen", "0", "--jobs", "1",
                           "--accept", "4", "--port-file", portFile});
    const int port = awaitPort(portFile);
    ASSERT_GT(port, 0) << "daemon never bound";
    std::remove(portFile.c_str());
    const std::string ep = "127.0.0.1:" + std::to_string(port);

    const std::string base77 = mustRun(pipeConfig(24, 4, 2, 1, 77));
    const std::string base78 = mustRun(pipeConfig(24, 4, 2, 1, 78));
    ASSERT_FALSE(base77.empty());
    ASSERT_FALSE(base78.empty());

    // Both campaigns run against the one daemon concurrently; the
    // fork-per-connection sessions must not bleed state into each
    // other (different seeds -> different corpora on the same port).
    std::string got77;
    std::string got78;
    auto run = [&ep](std::uint64_t seed, std::string *out) {
        auto cfg = pipeConfig(24, 4, 2, 1, seed);
        cfg.workerCmd.clear();
        cfg.workers = {ep, ep};
        cfg.workerDeadlineSeconds = 30.0;
        const auto sum = sweep::runCampaign(cfg);
        if (sum.status == sweep::CampaignStatus::Ok)
            *out = sweep::campaignReportJson(cfg.identity,
                                             sum.aggregate);
    };
    std::thread t77(run, 77, &got77);
    std::thread t78(run, 78, &got78);
    t77.join();
    t78.join();
    EXPECT_EQ(got77, base77);
    EXPECT_EQ(got78, base78);
    reapChild(daemon.pid, /*expectClean=*/true);
    daemon.disarm();
}

TEST(Transport, PipeVsTcp256ScenarioDifferential)
{
    // The issue's acceptance differential: the same 256-scenario
    // campaign over pipes and over loopback TCP, byte-compared.
    auto pipe_cfg = pipeConfig(256, 32, 2, 2, 2021);
    const std::string pipe_report = mustRun(pipe_cfg);
    ASSERT_FALSE(pipe_report.empty());

    const std::string portFile =
        testing::TempDir() + "aitax_diff_daemon.port";
    std::remove(portFile.c_str());
    ChildGuard daemon;
    daemon.pid = spawnCli({"serve", "--listen", "0", "--jobs", "2",
                           "--accept", "2", "--port-file", portFile});
    const int port = awaitPort(portFile);
    ASSERT_GT(port, 0);
    std::remove(portFile.c_str());
    const std::string ep = "127.0.0.1:" + std::to_string(port);

    auto tcp_cfg = pipe_cfg;
    tcp_cfg.workerCmd.clear();
    tcp_cfg.workers = {ep, ep};
    tcp_cfg.workerDeadlineSeconds = 60.0;
    sweep::CampaignSummary sum;
    EXPECT_EQ(mustRun(tcp_cfg, &sum), pipe_report);
    EXPECT_EQ(sum.transport, "tcp");

    // The transport-stamped report differs ONLY by the transport line.
    const std::string stamped = sweep::campaignReportJson(
        tcp_cfg.identity, sum.aggregate, sum.transport);
    EXPECT_NE(stamped.find("\"transport\": \"tcp\""),
              std::string::npos);
    reapChild(daemon.pid, /*expectClean=*/true);
    daemon.disarm();
}

// ---------------------------------------------------------------
// 2. Manifest crash-consistency.
// ---------------------------------------------------------------

TEST(ManifestCrash, KillAtEveryByteOffsetResumesByteExactly)
{
    // Small corpus so sweeping every single truncation offset stays
    // fast; the parse paths exercised do not depend on corpus size.
    auto cfg = pipeConfig(8, 2, 1, 1, 77);
    const std::string manifest =
        testing::TempDir() + "aitax_torn_manifest.txt";
    std::remove(manifest.c_str());
    cfg.checkpointPath = manifest;
    const std::string base = mustRun(cfg);
    ASSERT_FALSE(base.empty());
    const std::string bytes = readFile(manifest);
    ASSERT_GT(bytes.size(), 0u);

    // A kill while appending leaves an arbitrary prefix of the
    // manifest (fsync-per-record rules out holes). EVERY prefix must
    // resume to the uninterrupted bytes: torn tails are truncated,
    // torn headers start fresh, clean prefixes resume the rest.
    for (std::size_t off = 0; off <= bytes.size(); ++off) {
        writeFile(manifest, bytes.substr(0, off));
        auto rcfg = cfg;
        rcfg.resume = true;
        const auto sum = sweep::runCampaign(rcfg);
        ASSERT_EQ(sum.status, sweep::CampaignStatus::Ok)
            << "offset " << off << ": " << sum.error;
        ASSERT_EQ(reportOf(sum, rcfg), base) << "offset " << off;
        ASSERT_EQ(sum.chunksResumed + sum.chunksRun, 4)
            << "offset " << off;
    }

    // Double-resume: a resume that accepted a newline-less final
    // record must restore the separator before appending, so a second
    // resume still parses. Truncate to kill just the final newline.
    writeFile(manifest, bytes.substr(0, bytes.size() - 1));
    auto r1 = cfg;
    r1.resume = true;
    r1.stopAfterChunks = -1;
    ASSERT_EQ(sweep::runCampaign(r1).status, sweep::CampaignStatus::Ok);
    const auto again = sweep::runCampaign(r1);
    ASSERT_EQ(again.status, sweep::CampaignStatus::Ok) << again.error;
    EXPECT_EQ(reportOf(again, r1), base);
    EXPECT_EQ(again.chunksResumed, 4);
    std::remove(manifest.c_str());
}

TEST(ManifestCrash, TerminatedMalformedLineHardFails)
{
    auto cfg = pipeConfig(8, 2, 1, 1, 77);
    const std::string manifest =
        testing::TempDir() + "aitax_malformed_manifest.txt";
    std::remove(manifest.c_str());
    cfg.checkpointPath = manifest;
    ASSERT_FALSE(mustRun(cfg).empty());
    const std::string bytes = readFile(manifest);

    // Corrupt a MIDDLE line but keep it newline-terminated: the
    // fsync-per-record contract rules this damage out, so it must be
    // reported as corruption, never silently truncated or skipped.
    const std::size_t firstNl = bytes.find('\n');
    const std::size_t secondNl = bytes.find('\n', firstNl + 1);
    ASSERT_NE(secondNl, std::string::npos);
    std::string corrupt = bytes.substr(0, firstNl + 1) +
                          "chunk 0 ca1 n=GARBAGE\n" +
                          bytes.substr(secondNl + 1);
    writeFile(manifest, corrupt);
    auto rcfg = cfg;
    rcfg.resume = true;
    const auto sum = sweep::runCampaign(rcfg);
    EXPECT_EQ(sum.status, sweep::CampaignStatus::Error);
    EXPECT_NE(sum.error.find("malformed manifest"), std::string::npos)
        << sum.error;
    std::remove(manifest.c_str());
}

// ---------------------------------------------------------------
// 3. Worker-loss hygiene: partial lines, hangs, SIGPIPE, locale.
// ---------------------------------------------------------------

/**
 * A worker stub that misbehaves once, then (on respawn) execs the
 * real worker. The flag file records that the first life happened.
 */
sweep::CampaignConfig
stubConfig(const std::string &misbehaveScript, const std::string &tag)
{
    auto cfg = pipeConfig(8, 2, 1, 1, 77);
    const std::string flag =
        testing::TempDir() + "aitax_stub_" + tag + ".flag";
    std::remove(flag.c_str());
    const std::string script =
        "if [ -e " + flag + " ]; then exec " + AITAX_CLI_PATH +
        " sweep-serve --seed 77 --jobs 1; fi; touch " + flag + "; " +
        misbehaveScript;
    cfg.workerCmd = {"/bin/sh", "-c", script};
    return cfg;
}

TEST(WorkerLoss, PartialResultLineIsDiscardedWithItsChunk)
{
    const std::string base = mustRun(pipeConfig(8, 2, 1, 1, 77));
    ASSERT_FALSE(base.empty());

    // First life: speak v1, accept one range, stream one whole bogus
    // result line plus HALF of a second one, then die. The torn
    // bytes sit in the coordinator's buffer at EOF and must be
    // discarded with the reclaimed chunk — any survival corrupts the
    // resumed bytes and fails the comparison below.
    auto cfg = stubConfig("printf 'aitax-sweep-worker-v1 ready\\n'; "
                          "read line; "
                          "printf 'r 0 999.5 42\\nr 1 123.'; "
                          "exit 1",
                          "partial");
    sweep::CampaignSummary sum;
    EXPECT_EQ(mustRun(cfg, &sum), base);
    EXPECT_GE(sum.workersLost, 1);
    EXPECT_GE(sum.chunksRedispatched, 1);
}

TEST(WorkerLoss, HungWorkerIsKilledByDeadline)
{
    const std::string base = mustRun(pipeConfig(8, 2, 1, 1, 77));
    ASSERT_FALSE(base.empty());

    // First life: identify, take a range, then hang without closing
    // the pipe. Only the liveness deadline can recover this.
    auto cfg = stubConfig("printf 'aitax-sweep-worker-v1 ready\\n'; "
                          "read line; exec sleep 300",
                          "hung");
    cfg.workerDeadlineSeconds = 0.5;
    sweep::CampaignSummary sum;
    EXPECT_EQ(mustRun(cfg, &sum), base);
    EXPECT_GE(sum.workersHung, 1);
    EXPECT_GE(sum.chunksRedispatched, 1);
}

volatile std::sig_atomic_t g_pipeSignals = 0;
void
countPipeSignal(int)
{
    ++g_pipeSignals;
}

TEST(WorkerLoss, SigpipeDispositionRestoredOnEveryExitPath)
{
    struct sigaction mine = {};
    mine.sa_handler = countPipeSignal;
    struct sigaction saved = {};
    ASSERT_EQ(sigaction(SIGPIPE, &mine, &saved), 0);

    const auto currentHandler = [] {
        struct sigaction cur = {};
        sigaction(SIGPIPE, nullptr, &cur);
        return cur.sa_handler;
    };

    // Success path.
    EXPECT_FALSE(mustRun(pipeConfig(8, 4, 1, 1, 77)).empty());
    EXPECT_EQ(currentHandler(), countPipeSignal) << "after ok run";

    // Early-fail path: invalid config rejected before any fork.
    sweep::CampaignConfig bad;
    bad.scenarios = -1;
    EXPECT_EQ(sweep::runCampaign(bad).status,
              sweep::CampaignStatus::Error);
    EXPECT_EQ(currentHandler(), countPipeSignal) << "after bad config";

    // Mid-campaign fail path: worker binary that cannot exec, so the
    // campaign dies after respawn exhaustion.
    auto noexec = pipeConfig(8, 2, 1, 1, 77);
    noexec.workerCmd = {"/nonexistent/aitax-worker"};
    noexec.corpusSpec.clear();
    EXPECT_EQ(sweep::runCampaign(noexec).status,
              sweep::CampaignStatus::Error);
    EXPECT_EQ(currentHandler(), countPipeSignal) << "after exec fail";

    ASSERT_EQ(sigaction(SIGPIPE, &saved, nullptr), 0);
}

// ---------------------------------------------------------------
// Locale independence.
// ---------------------------------------------------------------

/**
 * Activate a comma-decimal locale, compiling one with localedef into
 * a temp dir if the system has none installed. Returns false when no
 * comma-decimal locale can be produced (test then skips).
 */
bool
activateCommaLocale()
{
    static const std::string compiled = [] {
        for (const char *name :
             {"de_DE.UTF-8", "de_DE.utf8", "fr_FR.UTF-8"})
            if (std::setlocale(LC_ALL, name) != nullptr)
                return std::string(name);
        const std::string dir = testing::TempDir() + "aitax_locales";
        ::mkdir(dir.c_str(), 0755);
        const std::string cmd = "localedef -i de_DE -f UTF-8 " + dir +
                                "/de_DE.UTF-8 >/dev/null 2>&1";
        if (std::system(cmd.c_str()) != 0)
            return std::string();
        setenv("LOCPATH", dir.c_str(), 1);
        return std::string("de_DE.UTF-8");
    }();
    if (compiled.empty() ||
        std::setlocale(LC_ALL, compiled.c_str()) == nullptr)
        return false;
    char buf[16];
    std::snprintf(buf, sizeof(buf), "%.1f", 1.5);
    return std::strcmp(buf, "1,5") == 0; // decimal comma is active
}

/** RAII: restore the C locale however the test exits. */
struct CLocaleRestorer
{
    ~CLocaleRestorer() { std::setlocale(LC_ALL, "C"); }
};

TEST(Locale, ProtocolSurvivesCommaDecimalLocale)
{
    const std::string base = mustRun(pipeConfig(8, 2, 2, 1, 77));
    ASSERT_FALSE(base.empty());

    CLocaleRestorer restore;
    if (!activateCommaLocale())
        GTEST_SKIP() << "no comma-decimal locale available";

    // The coordinator now parses r-lines and formats the report under
    // a locale whose printf/strtod would write and read "1,5". Every
    // wire number goes through stats/numfmt.h, so the bytes must not
    // move.
    EXPECT_EQ(mustRun(pipeConfig(8, 2, 2, 1, 77)), base);
}

TEST(Locale, AggregateSerializationIsLocaleIndependent)
{
    sweep::CampaignAggregate agg;
    for (int i = 0; i < 64; ++i) {
        sweep::ScenarioOutcome o;
        o.e2eMeanMs = 10.5 + static_cast<double>(i) * 0.375;
        o.events = 500 + static_cast<std::uint64_t>(i);
        agg.addScenario(o);
    }
    const std::string c_form = agg.serialize();

    CLocaleRestorer restore;
    if (!activateCommaLocale())
        GTEST_SKIP() << "no comma-decimal locale available";

    EXPECT_EQ(agg.serialize(), c_form);
    sweep::CampaignAggregate back;
    std::string err;
    ASSERT_TRUE(
        sweep::CampaignAggregate::deserialize(c_form, back, &err))
        << err;
    EXPECT_EQ(back.serialize(), c_form);

    // numfmt primitives under the comma locale.
    EXPECT_EQ(stats::formatG17(0.5), "0.5");
    double v = 0.0;
    const char *p = "  2.5 rest";
    EXPECT_TRUE(stats::parseDouble(p, v));
    EXPECT_EQ(v, 2.5);
    // A comma is NOT a decimal separator on the wire: parsing stops
    // at it instead of consuming "1,5" as one-and-a-half.
    p = "1,5";
    EXPECT_TRUE(stats::parseDouble(p, v));
    EXPECT_EQ(v, 1.0);
    EXPECT_EQ(*p, ',');
}

} // namespace
} // namespace aitax
