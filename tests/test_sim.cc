/**
 * @file
 * Unit tests for the discrete-event simulation kernel.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "sim/event_queue.h"
#include "sim/random.h"
#include "sim/simulator.h"
#include "sim/time.h"
#include "sim/work.h"

namespace aitax::sim {
namespace {

// --- time ------------------------------------------------------------

TEST(Time, Conversions)
{
    EXPECT_EQ(msToNs(1.0), 1'000'000);
    EXPECT_EQ(usToNs(1.0), 1'000);
    EXPECT_EQ(secToNs(1.0), 1'000'000'000);
    EXPECT_DOUBLE_EQ(nsToMs(2'500'000), 2.5);
    EXPECT_DOUBLE_EQ(nsToUs(1'500), 1.5);
}

TEST(Time, FormatPicksUnit)
{
    EXPECT_EQ(formatDuration(500), "500 ns");
    EXPECT_EQ(formatDuration(1'500), "1.500 us");
    EXPECT_EQ(formatDuration(2'340'000), "2.340 ms");
    EXPECT_EQ(formatDuration(3'000'000'000), "3.000 s");
}

TEST(Time, FormatNegative)
{
    EXPECT_EQ(formatDuration(-2'000'000), "-2.000 ms");
}

// --- RandomStream ----------------------------------------------------

TEST(RandomStream, DeterministicForSameSeed)
{
    RandomStream a(42, "s");
    RandomStream b(42, "s");
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.nextU64(), b.nextU64());
}

TEST(RandomStream, DifferentStreamNamesDiffer)
{
    RandomStream a(42, "alpha");
    RandomStream b(42, "beta");
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += (a.nextU64() == b.nextU64());
    EXPECT_LT(same, 2);
}

TEST(RandomStream, DoubleInUnitInterval)
{
    RandomStream r(7);
    for (int i = 0; i < 10'000; ++i) {
        const double x = r.nextDouble();
        EXPECT_GE(x, 0.0);
        EXPECT_LT(x, 1.0);
    }
}

TEST(RandomStream, UniformRespectsBounds)
{
    RandomStream r(7);
    for (int i = 0; i < 1'000; ++i) {
        const double x = r.uniform(-3.0, 5.0);
        EXPECT_GE(x, -3.0);
        EXPECT_LT(x, 5.0);
    }
}

TEST(RandomStream, UniformIntInclusive)
{
    RandomStream r(11);
    bool saw_lo = false;
    bool saw_hi = false;
    for (int i = 0; i < 10'000; ++i) {
        const auto x = r.uniformInt(2, 5);
        EXPECT_GE(x, 2);
        EXPECT_LE(x, 5);
        saw_lo |= (x == 2);
        saw_hi |= (x == 5);
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(RandomStream, GaussianMoments)
{
    RandomStream r(13);
    double sum = 0.0;
    double sq = 0.0;
    const int n = 50'000;
    for (int i = 0; i < n; ++i) {
        const double x = r.gaussian();
        sum += x;
        sq += x * x;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.02);
    EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(RandomStream, LognormalMedianNearOne)
{
    RandomStream r(17);
    std::vector<double> xs;
    for (int i = 0; i < 10'001; ++i)
        xs.push_back(r.lognormalFactor(0.3));
    std::sort(xs.begin(), xs.end());
    EXPECT_NEAR(xs[xs.size() / 2], 1.0, 0.05);
    for (double x : xs)
        EXPECT_GT(x, 0.0);
}

TEST(RandomStream, LognormalZeroSigmaIsExactlyOne)
{
    RandomStream r(17);
    EXPECT_DOUBLE_EQ(r.lognormalFactor(0.0), 1.0);
    EXPECT_DOUBLE_EQ(r.lognormalFactor(-1.0), 1.0);
}

TEST(RandomStream, BernoulliFrequency)
{
    RandomStream r(19);
    int hits = 0;
    const int n = 20'000;
    for (int i = 0; i < n; ++i)
        hits += r.bernoulli(0.25);
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.02);
}

TEST(RandomStream, ExponentialMean)
{
    RandomStream r(23);
    double sum = 0.0;
    const int n = 50'000;
    for (int i = 0; i < n; ++i)
        sum += r.exponential(4.0);
    EXPECT_NEAR(sum / n, 4.0, 0.15);
}

TEST(RandomStream, ForkIsDeterministicAndIndependent)
{
    RandomStream a(31);
    RandomStream b(31);
    RandomStream fa = a.fork("child");
    RandomStream fb = b.fork("child");
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(fa.nextU64(), fb.nextU64());
}

// --- Work ------------------------------------------------------------

TEST(Work, Arithmetic)
{
    Work a{10.0, 20.0};
    Work b{1.0, 2.0};
    Work c = a + b;
    EXPECT_DOUBLE_EQ(c.flops, 11.0);
    EXPECT_DOUBLE_EQ(c.bytes, 22.0);
    Work d = b * 3.0;
    EXPECT_DOUBLE_EQ(d.flops, 3.0);
    EXPECT_DOUBLE_EQ(d.bytes, 6.0);
}

// --- EventQueue ------------------------------------------------------

TEST(EventQueue, FiresInTimeOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(30, [&] { order.push_back(3); });
    q.schedule(10, [&] { order.push_back(1); });
    q.schedule(20, [&] { order.push_back(2); });
    while (!q.empty())
        q.popAndRun();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, TiesAreFifo)
{
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 5; ++i)
        q.schedule(100, [&order, i] { order.push_back(i); });
    while (!q.empty())
        q.popAndRun();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, CancelPreventsExecution)
{
    EventQueue q;
    bool fired = false;
    const EventId id = q.schedule(10, [&] { fired = true; });
    q.schedule(20, [] {});
    q.cancel(id);
    EXPECT_EQ(q.size(), 1u);
    while (!q.empty())
        q.popAndRun();
    EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelUnknownIdIsNoop)
{
    EventQueue q;
    q.schedule(10, [] {});
    q.cancel(9999);
    q.cancel(0);
    EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueue, NextTimeSkipsCancelled)
{
    EventQueue q;
    const EventId id = q.schedule(10, [] {});
    q.schedule(20, [] {});
    q.cancel(id);
    EXPECT_EQ(q.nextTime(), 20);
}

TEST(EventQueue, ScheduleDuringRun)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(10, [&] {
        order.push_back(1);
        q.schedule(15, [&] { order.push_back(2); });
    });
    while (!q.empty())
        q.popAndRun();
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(EventQueue, RandomizedOrderingProperty)
{
    RandomStream rng(99);
    EventQueue q;
    std::vector<TimeNs> fired;
    for (int i = 0; i < 500; ++i) {
        const TimeNs when = rng.uniformInt(0, 1000);
        q.schedule(when, [&fired, when] { fired.push_back(when); });
    }
    while (!q.empty())
        q.popAndRun();
    ASSERT_EQ(fired.size(), 500u);
    EXPECT_TRUE(std::is_sorted(fired.begin(), fired.end()));
}

TEST(EventQueue, RandomCancellationsNeverFire)
{
    RandomStream rng(7);
    EventQueue q;
    int fired = 0;
    std::vector<EventId> ids;
    for (int i = 0; i < 200; ++i)
        ids.push_back(
            q.schedule(rng.uniformInt(0, 100), [&] { ++fired; }));
    int cancelled = 0;
    for (std::size_t i = 0; i < ids.size(); i += 3) {
        q.cancel(ids[i]);
        ++cancelled;
    }
    while (!q.empty())
        q.popAndRun();
    EXPECT_EQ(fired, 200 - cancelled);
}

TEST(EventQueue, CancelAfterFireIsNoopAcrossSlotReuse)
{
    EventQueue q;
    int fired = 0;
    const EventId stale = q.schedule(10, [&] { ++fired; });
    q.popAndRun();
    // The freed slot is recycled by the next schedule with a bumped
    // generation; the stale id must not cancel the new occupant.
    q.schedule(20, [&] { ++fired; });
    q.cancel(stale);
    EXPECT_EQ(q.size(), 1u);
    q.popAndRun();
    EXPECT_EQ(fired, 2);
    q.cancel(stale);
    EXPECT_TRUE(q.empty());
}

TEST(EventQueue, BookkeepingStaysBoundedOverMillionEvents)
{
    // Regression: the queue once kept every cancelled id in a tombstone
    // set forever, so a cancel of an already-fired event leaked for the
    // lifetime of the queue. Bookkeeping must track the *pending*
    // population, not the total event count.
    EventQueue q;
    constexpr int kEvents = 1'000'000;
    std::int64_t fired = 0;
    std::vector<EventId> retired;
    TimeNs t = 0;
    for (int i = 0; i < kEvents; ++i) {
        const EventId id = q.schedule(++t, [&] { ++fired; });
        if (i % 2 == 0)
            q.cancel(id);
        else
            q.popAndRun();
        retired.push_back(id);
        // The historic leak path: cancelling ids that already fired or
        // were already cancelled must not grow any bookkeeping.
        if (i % 7 == 0)
            q.cancel(retired[retired.size() / 2]);
        if (retired.size() > 64)
            retired.erase(retired.begin(), retired.begin() + 32);
    }
    EXPECT_EQ(q.size(), 0u);
    EXPECT_EQ(fired, kEvents / 2);
    // Peak concurrent pending population was ~1, so the slot arena and
    // heap storage must be tiny after a million schedule/retire cycles.
    EXPECT_LE(q.slotCapacity(), 16u);
    EXPECT_LE(q.heapEntries(), 2 * q.size() + 64);
}

TEST(EventQueue, CancelHeavyLoadCompactsHeap)
{
    EventQueue q;
    std::vector<EventId> ids;
    for (int i = 0; i < 100'000; ++i)
        ids.push_back(q.schedule(i, [] {}));
    for (std::size_t i = 0; i < ids.size(); ++i)
        if (i % 100 != 0)
            q.cancel(ids[i]);
    EXPECT_EQ(q.size(), 1000u);
    // Lazily-dropped stale entries are compacted away once they
    // dominate; storage stays O(live).
    EXPECT_LE(q.heapEntries(), 2 * q.size() + 64);
    TimeNs last = -1;
    while (!q.empty()) {
        const TimeNs now = q.popAndRun();
        EXPECT_GT(now, last);
        last = now;
    }
}

// --- Simulator -------------------------------------------------------

TEST(Simulator, ClockAdvances)
{
    Simulator sim;
    TimeNs seen = -1;
    sim.scheduleIn(100, [&] { seen = sim.now(); });
    sim.run();
    EXPECT_EQ(seen, 100);
    EXPECT_EQ(sim.now(), 100);
}

TEST(Simulator, NowIsEventTimestampInsideCallback)
{
    // Regression test: the clock must be advanced before the event
    // body runs, or every callback observes the previous event's time.
    Simulator sim;
    std::vector<TimeNs> seen;
    sim.scheduleIn(10, [&] { seen.push_back(sim.now()); });
    sim.scheduleIn(25, [&] { seen.push_back(sim.now()); });
    sim.run();
    EXPECT_EQ(seen, (std::vector<TimeNs>{10, 25}));
}

TEST(Simulator, RelativeSchedulingChains)
{
    Simulator sim;
    TimeNs done = 0;
    sim.scheduleIn(10, [&] {
        sim.scheduleIn(5, [&] { done = sim.now(); });
    });
    sim.run();
    EXPECT_EQ(done, 15);
}

TEST(Simulator, NegativeDelayClampsToNow)
{
    Simulator sim;
    TimeNs seen = -1;
    sim.scheduleIn(10, [&] {
        sim.scheduleIn(-50, [&] { seen = sim.now(); });
    });
    sim.run();
    EXPECT_EQ(seen, 10);
}

TEST(Simulator, RunUntilStopsAtDeadline)
{
    Simulator sim;
    int fired = 0;
    for (TimeNs t : {10, 20, 30, 40})
        sim.scheduleAt(t, [&] { ++fired; });
    sim.runUntil(25);
    EXPECT_EQ(fired, 2);
    EXPECT_FALSE(sim.idle());
    sim.run();
    EXPECT_EQ(fired, 4);
}

TEST(Simulator, RunUntilConditionStops)
{
    Simulator sim;
    int fired = 0;
    for (TimeNs t : {10, 20, 30, 40})
        sim.scheduleAt(t, [&] { ++fired; });
    sim.runUntilCondition([&] { return fired >= 3; });
    EXPECT_EQ(fired, 3);
}

TEST(Simulator, CancelledEventDoesNotFire)
{
    Simulator sim;
    bool fired = false;
    const EventId id = sim.scheduleIn(10, [&] { fired = true; });
    sim.cancel(id);
    sim.run();
    EXPECT_FALSE(fired);
}

TEST(Simulator, EventCountTracks)
{
    Simulator sim;
    for (int i = 0; i < 7; ++i)
        sim.scheduleIn(i, [] {});
    sim.run();
    EXPECT_EQ(sim.eventsExecuted(), 7u);
}

} // namespace
} // namespace aitax::sim
