/**
 * @file
 * Unit tests for the application pipeline layer and the AI-tax
 * accounting core.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "app/background_load.h"
#include "app/engine.h"
#include "app/harness.h"
#include "app/pipeline.h"
#include "core/analyzer.h"
#include "core/stage.h"
#include "core/tax_report.h"
#include "soc/chipsets.h"

namespace aitax::app {
namespace {

using core::Stage;
using core::StageLatencies;
using core::TaxReport;
using tensor::DType;

core::TaxReport
runPipeline(const char *model, DType dtype, FrameworkKind fw,
            HarnessMode mode, int runs = 20, std::uint64_t seed = 7)
{
    soc::SocSystem sys(soc::makeSnapdragon845(), seed);
    PipelineConfig cfg;
    cfg.model = models::findModel(model);
    cfg.dtype = dtype;
    cfg.framework = fw;
    cfg.mode = mode;
    Application app(sys, cfg);
    TaxReport report;
    app.scheduleRuns(runs, report);
    sys.run();
    return report;
}

// --- core: stage / report ------------------------------------------------

TEST(Stage, NamesAndTaxMembership)
{
    EXPECT_EQ(core::stageName(Stage::DataCapture), "data-capture");
    EXPECT_EQ(core::stageName(Stage::Inference), "inference");
    EXPECT_TRUE(core::isTaxStage(Stage::PreProcessing));
    EXPECT_FALSE(core::isTaxStage(Stage::Inference));
}

TEST(StageLatencies, SumsAndTax)
{
    StageLatencies lat;
    lat[Stage::DataCapture] = 10;
    lat[Stage::PreProcessing] = 20;
    lat[Stage::Inference] = 100;
    lat[Stage::PostProcessing] = 5;
    EXPECT_EQ(lat.endToEnd(), 135);
    EXPECT_EQ(lat.aiTax(), 35);
}

TEST(TaxReport, AggregatesRuns)
{
    TaxReport r("cfg");
    StageLatencies lat;
    lat[Stage::DataCapture] = sim::msToNs(10);
    lat[Stage::Inference] = sim::msToNs(30);
    r.add(lat);
    lat[Stage::DataCapture] = sim::msToNs(20);
    r.add(lat);
    EXPECT_EQ(r.runs(), 2u);
    EXPECT_NEAR(r.stageMeanMs(Stage::DataCapture), 15.0, 1e-9);
    EXPECT_NEAR(r.endToEndMeanMs(), 45.0, 1e-9);
    EXPECT_NEAR(r.aiTaxMeanMs(), 15.0, 1e-9);
    EXPECT_NEAR(r.aiTaxFraction(), 15.0 / 45.0, 1e-9);
    EXPECT_NEAR(r.stageRelativeToInference(Stage::DataCapture),
                0.5, 1e-9);
}

TEST(TaxReport, RenderMentionsStages)
{
    TaxReport r("label");
    StageLatencies lat;
    lat[Stage::Inference] = sim::msToNs(5);
    r.add(lat);
    std::ostringstream os;
    r.render(os);
    EXPECT_NE(os.str().find("pre-processing"), std::string::npos);
    EXPECT_NE(os.str().find("AI tax"), std::string::npos);
    EXPECT_NE(os.str().find("label"), std::string::npos);
}

TEST(TaxReport, CsvHasOneRowPerRun)
{
    TaxReport r("csv");
    StageLatencies lat;
    lat[Stage::DataCapture] = sim::msToNs(1);
    lat[Stage::Inference] = sim::msToNs(4);
    r.add(lat);
    lat[Stage::Inference] = sim::msToNs(6);
    r.add(lat);
    std::ostringstream os;
    r.renderCsv(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("run,data-capture_ms"), std::string::npos);
    EXPECT_NE(out.find("0,1,"), std::string::npos);
    // Two data rows + header.
    EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 3);
}

// --- core: analyzer -----------------------------------------------------

TEST(Analyzer, AdviseFrameworkPicksFastest)
{
    TaxReport a("slow");
    TaxReport b("fast");
    StageLatencies lat;
    lat[Stage::Inference] = sim::msToNs(100);
    a.add(lat);
    lat[Stage::Inference] = sim::msToNs(25);
    b.add(lat);
    const auto choice =
        core::adviseFramework({{"slow", &a}, {"fast", &b}});
    EXPECT_EQ(choice.framework, "fast");
    EXPECT_NEAR(choice.e2eMeanMs, 25.0, 1e-9);
    EXPECT_NEAR(choice.speedupVsWorst, 4.0, 1e-9);
}

TEST(Analyzer, OffloadShareSeriesDecreases)
{
    std::vector<soc::FastRpcBreakdown> calls(5);
    calls[0].sessionOpenNs = sim::msToNs(15);
    for (auto &c : calls) {
        c.userToKernelNs = sim::usToNs(30);
        c.dspExecNs = sim::msToNs(10);
    }
    const auto series = core::offloadShareSeries(calls);
    ASSERT_EQ(series.size(), 5u);
    EXPECT_GT(series[0], 0.5);
    for (std::size_t i = 1; i < series.size(); ++i)
        EXPECT_LT(series[i], series[i - 1]);
}

TEST(Analyzer, HarnessGapPct)
{
    TaxReport bench("b");
    TaxReport app_r("a");
    StageLatencies lat;
    lat[Stage::Inference] = sim::msToNs(100);
    bench.add(lat);
    lat[Stage::DataCapture] = sim::msToNs(50);
    app_r.add(lat);
    EXPECT_NEAR(core::harnessGapPct(bench, app_r), 50.0, 1e-9);
}

// --- harness profiles -----------------------------------------------------

TEST(Harness, ModeNames)
{
    EXPECT_EQ(harnessModeName(HarnessMode::CliBenchmark),
              "cli-benchmark");
    EXPECT_EQ(harnessModeName(HarnessMode::AndroidApp), "android-app");
}

TEST(Harness, ProfilesOrderedByRealism)
{
    const auto cli = HarnessProfile::forMode(HarnessMode::CliBenchmark);
    const auto bench_app =
        HarnessProfile::forMode(HarnessMode::BenchmarkApp);
    const auto app = HarnessProfile::forMode(HarnessMode::AndroidApp);
    EXPECT_FALSE(cli.usesCamera);
    EXPECT_FALSE(cli.interference);
    EXPECT_TRUE(bench_app.interference);
    EXPECT_TRUE(app.usesCamera);
    EXPECT_TRUE(app.fullPipeline);
    EXPECT_LT(cli.computeNoiseSigma, bench_app.computeNoiseSigma);
    EXPECT_LT(bench_app.computeNoiseSigma, app.computeNoiseSigma);
    EXPECT_GT(app.managedRuntimeFactor, 1.0);
}

// --- engine ------------------------------------------------------------

TEST(Engine, FrameworkNames)
{
    EXPECT_EQ(frameworkName(FrameworkKind::TfliteCpu), "tflite-cpu");
    EXPECT_EQ(frameworkName(FrameworkKind::SnpeDsp), "snpe-dsp");
}

TEST(Engine, WrapsTfliteAndSnpe)
{
    const auto *info = models::findModel("mobilenet_v1");
    InferenceEngine tfl(*info, DType::UInt8,
                        FrameworkKind::TfliteHexagon);
    EXPECT_TRUE(tfl.plan().usesAccelerator());
    InferenceEngine snpe(*info, DType::UInt8, FrameworkKind::SnpeDsp);
    EXPECT_TRUE(snpe.plan().usesAccelerator());
    EXPECT_GT(tfl.initNs(), 0);
    EXPECT_GT(snpe.initNs(), 0);
}

// --- pipeline -----------------------------------------------------------

TEST(Pipeline, AllStagesPositiveInAppMode)
{
    const auto r =
        runPipeline("mobilenet_v1", DType::UInt8,
                    FrameworkKind::TfliteCpu, HarnessMode::AndroidApp);
    EXPECT_EQ(r.runs(), 20u);
    for (Stage s : core::kAllStages)
        EXPECT_GT(r.stageMeanMs(s), 0.0) << core::stageName(s);
}

TEST(Pipeline, BenchmarkPreProcessingNegligible)
{
    const auto r =
        runPipeline("mobilenet_v1", DType::Float32,
                    FrameworkKind::TfliteCpu, HarnessMode::CliBenchmark);
    EXPECT_LT(r.stageMeanMs(Stage::PreProcessing), 0.2);
    EXPECT_EQ(r.stageMeanMs(Stage::PostProcessing), 0.0);
}

TEST(Pipeline, AppSlowerThanBenchmark)
{
    const auto bench =
        runPipeline("mobilenet_v1", DType::UInt8,
                    FrameworkKind::TfliteCpu, HarnessMode::CliBenchmark);
    const auto app =
        runPipeline("mobilenet_v1", DType::UInt8,
                    FrameworkKind::TfliteCpu, HarnessMode::AndroidApp);
    EXPECT_GT(core::harnessGapPct(bench, app), 30.0);
}

TEST(Pipeline, LabelEncodesConfiguration)
{
    const auto r =
        runPipeline("mobilenet_v1", DType::UInt8,
                    FrameworkKind::TfliteCpu, HarnessMode::AndroidApp, 3);
    EXPECT_NE(r.label().find("mobilenet_v1"), std::string::npos);
    EXPECT_NE(r.label().find("uint8"), std::string::npos);
    EXPECT_NE(r.label().find("android-app"), std::string::npos);
}

TEST(Pipeline, DeterministicForSameSeed)
{
    const auto a = runPipeline("mobilenet_v1", DType::UInt8,
                               FrameworkKind::TfliteCpu,
                               HarnessMode::AndroidApp, 5, 11);
    const auto b = runPipeline("mobilenet_v1", DType::UInt8,
                               FrameworkKind::TfliteCpu,
                               HarnessMode::AndroidApp, 5, 11);
    EXPECT_DOUBLE_EQ(a.endToEndMeanMs(), b.endToEndMeanMs());
}

TEST(Pipeline, SeedChangesAppModeResults)
{
    const auto a = runPipeline("mobilenet_v1", DType::UInt8,
                               FrameworkKind::TfliteCpu,
                               HarnessMode::AndroidApp, 5, 11);
    const auto b = runPipeline("mobilenet_v1", DType::UInt8,
                               FrameworkKind::TfliteCpu,
                               HarnessMode::AndroidApp, 5, 12);
    EXPECT_NE(a.endToEndMeanMs(), b.endToEndMeanMs());
}

TEST(Pipeline, DspFrameworkLogsRpcCalls)
{
    soc::SocSystem sys(soc::makeSnapdragon845(), 7);
    PipelineConfig cfg;
    cfg.model = models::findModel("mobilenet_v1");
    cfg.dtype = DType::UInt8;
    cfg.framework = FrameworkKind::TfliteHexagon;
    cfg.mode = HarnessMode::CliBenchmark;
    Application app(sys, cfg);
    TaxReport report;
    app.scheduleRuns(10, report);
    sys.run();
    EXPECT_EQ(app.rpcLog().size(), 10u);
    EXPECT_GT(app.rpcLog()[0].sessionOpenNs, 0);
    EXPECT_EQ(app.rpcLog()[1].sessionOpenNs, 0);
}

TEST(Pipeline, BertUsesTokenizationNotCamera)
{
    const auto r =
        runPipeline("mobile_bert", DType::Float32,
                    FrameworkKind::TfliteCpu, HarnessMode::AndroidApp, 5);
    EXPECT_GT(r.stageMeanMs(Stage::PreProcessing), 0.0);
    // Text arrival is far cheaper than camera frame waits.
    EXPECT_LT(r.stageMeanMs(Stage::DataCapture), 5.0);
}

TEST(Pipeline, PosenetRotationMakesPreProcessingHeavier)
{
    const auto pose =
        runPipeline("posenet", DType::Float32, FrameworkKind::TfliteCpu,
                    HarnessMode::AndroidApp, 10);
    const auto mobilenet =
        runPipeline("mobilenet_v1", DType::Float32,
                    FrameworkKind::TfliteCpu, HarnessMode::AndroidApp,
                    10);
    // Same input resolution, but PoseNet adds a capture-resolution
    // rotation pass.
    EXPECT_GT(pose.stageMeanMs(Stage::PreProcessing),
              mobilenet.stageMeanMs(Stage::PreProcessing) * 1.1);
}

TEST(Pipeline, SegmentationPostProcessingSignificant)
{
    const auto seg =
        runPipeline("deeplab_v3", DType::Float32,
                    FrameworkKind::TfliteCpu, HarnessMode::AndroidApp, 5);
    const auto cls =
        runPipeline("mobilenet_v1", DType::Float32,
                    FrameworkKind::TfliteCpu, HarnessMode::AndroidApp, 5);
    EXPECT_GT(seg.stageMeanMs(Stage::PostProcessing),
              10.0 * cls.stageMeanMs(Stage::PostProcessing));
}

TEST(Pipeline, ModelInitReportsColdStartCost)
{
    soc::SocSystem sys(soc::makeSnapdragon845());
    PipelineConfig cfg;
    cfg.model = models::findModel("inception_v4");
    cfg.dtype = DType::Float32;
    cfg.framework = FrameworkKind::TfliteCpu;
    cfg.mode = HarnessMode::CliBenchmark;
    Application app(sys, cfg);
    EXPECT_GT(sim::nsToMs(app.modelInitNs()), 50.0); // 171 MB of weights
}

TEST(Pipeline, StreamingCaptureShrinksCaptureStage)
{
    auto run_mode = [&](bool streaming) {
        soc::SocSystem sys(soc::makeSnapdragon845(), 7);
        PipelineConfig cfg;
        cfg.model = models::findModel("mobilenet_v1");
        cfg.dtype = DType::UInt8;
        cfg.framework = FrameworkKind::TfliteHexagon;
        cfg.mode = HarnessMode::AndroidApp;
        cfg.streamingCapture = streaming;
        Application app(sys, cfg);
        TaxReport report;
        app.scheduleRuns(40, report);
        sys.run();
        return report;
    };
    const auto on_demand = run_mode(false);
    const auto streaming = run_mode(true);
    // The pipeline is slower than the sensor, so a buffered frame is
    // almost always waiting: capture collapses to dequeue + copy.
    EXPECT_LT(streaming.stageMeanMs(Stage::DataCapture),
              on_demand.stageMeanMs(Stage::DataCapture) / 4.0);
    EXPECT_LT(streaming.endToEndMeanMs(), on_demand.endToEndMeanMs());
    // Other stages are unaffected.
    EXPECT_NEAR(streaming.stageMeanMs(Stage::PreProcessing),
                on_demand.stageMeanMs(Stage::PreProcessing),
                on_demand.stageMeanMs(Stage::PreProcessing) * 0.15);
}

TEST(Pipeline, StreamingCapturePacedBySensorWhenFaster)
{
    // A pipeline faster than the sensor cannot exceed the frame rate:
    // suppress interference and use the fastest backend.
    soc::SocSystem sys(soc::makeSnapdragon845(), 7);
    PipelineConfig cfg;
    cfg.model = models::findModel("mobilenet_v1");
    cfg.dtype = DType::UInt8;
    cfg.framework = FrameworkKind::SnpeDsp;
    cfg.mode = HarnessMode::AndroidApp;
    cfg.streamingCapture = true;
    cfg.preprocessOnDsp = true;
    cfg.suppressInterference = true;
    cfg.camera.fps = 120.0; // fast sensor: frames every 8.3 ms
    Application app(sys, cfg);
    TaxReport report;
    sim::TimeNs done = 0;
    app.scheduleRuns(60, report, [&](sim::TimeNs t) { done = t; });
    sys.run();
    // Effective period must be at least the sensor period.
    const double period_ms = sim::nsToMs(done) / 60.0;
    EXPECT_GE(period_ms, 8.3);
}

TEST(Pipeline, StreamingNeverConsumesAFrameBeforeItArrives)
{
    // Regression: with a slow sensor the stream's random phase puts
    // frame 0's arrival long after the first consume attempt. The old
    // truncating arithmetic ((now - phase) / period rounds toward
    // zero) claimed frame 0 was already "latest" and dequeued it
    // before the sensor ever produced it. The pipeline must instead
    // wait for the arrival edge.
    soc::SocSystem sys(soc::makeSnapdragon845(), 11);
    PipelineConfig cfg;
    cfg.model = models::findModel("mobilenet_v1");
    cfg.dtype = DType::UInt8;
    cfg.framework = FrameworkKind::TfliteHexagon;
    cfg.mode = HarnessMode::AndroidApp;
    cfg.streamingCapture = true;
    cfg.camera.fps = 0.2; // 5 s frame period: phase >> first consume
    Application app(sys, cfg);
    TaxReport report;
    app.scheduleRuns(3, report);
    sys.run();
    const auto &log = app.frameLog();
    ASSERT_EQ(log.size(), 3u);
    for (const auto &f : log) {
        EXPECT_GE(f.consumedAt, f.readyAt)
            << "frame " << f.frame << " consumed before arrival";
        EXPECT_GE(f.readyAt, 0);
    }
    // The first consume attempt happens within model-load + warmup
    // time, far inside the 5 s period, so the app must block until
    // the stream's first frame and take it the instant it lands.
    EXPECT_EQ(log[0].frame, 0);
    EXPECT_EQ(log[0].consumedAt, log[0].readyAt);
    // Frames are consumed in order.
    EXPECT_EQ(log[1].frame, 1);
    EXPECT_EQ(log[2].frame, 2);
}

// --- background load -------------------------------------------------------

TEST(BackgroundLoad, RunsInferencesUntilHorizon)
{
    soc::SocSystem sys(soc::makeSnapdragon845());
    BackgroundLoadConfig cfg;
    cfg.model = models::findModel("mobilenet_v1");
    cfg.dtype = DType::UInt8;
    cfg.framework = FrameworkKind::TfliteCpu;
    BackgroundInferenceLoop loop(sys, cfg);
    loop.start(sim::msToNs(200.0));
    sys.run();
    EXPECT_GT(loop.completedInferences(), 3);
}

TEST(BackgroundLoad, StopEndsLoop)
{
    soc::SocSystem sys(soc::makeSnapdragon845());
    BackgroundLoadConfig cfg;
    cfg.model = models::findModel("mobilenet_v1");
    cfg.dtype = DType::UInt8;
    cfg.framework = FrameworkKind::TfliteCpu;
    BackgroundInferenceLoop loop(sys, cfg);
    loop.start(sim::secToNs(10.0));
    sys.simulator().scheduleIn(sim::msToNs(50.0),
                               [&] { loop.stop(); });
    sys.run();
    const auto n = loop.completedInferences();
    EXPECT_GT(n, 0);
    EXPECT_LT(n, 10);
}

} // namespace
} // namespace aitax::app
