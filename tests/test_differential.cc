/**
 * @file
 * Differential harness for the fast-path simulation core: the Fast
 * engine (skip-ahead front cache, batched insertion, chained
 * interference, warm-up prefix memoization) must change NOTHING
 * observable relative to the Reference engine — not a trace byte, not
 * a CSV cell, not a fault tally — across a seeded corpus covering
 * every Table II chipset, faults on and off, and any worker count.
 *
 * Also the negative side of the memoization contract: scenarios that
 * share a warm-up prefix but diverge in streaming, faults or
 * background load must never share a snapshot, either because the
 * divergent field is part of the cache key or because the scenario is
 * classified ineligible outright.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "soc/chipsets.h"
#include "sweep/snapshot_cache.h"
#include "sweep/sweep_runner.h"
#include "verify/scenario.h"

namespace aitax::verify {
namespace {

constexpr std::uint64_t kMasterSeed = 0xD1FFBEEFu;
constexpr int kCorpusSize = 64;

/**
 * The differential corpus: >= 64 fuzz-sampled scenarios, re-pinned so
 * the chipset axis cycles through every Table II platform (scenario
 * validity never depends on the chipset, so the re-pin is safe).
 * Every third scenario is additionally pinned to the snapshot-eligible
 * CLI-benchmark class — rare under the fuzz distribution (~3%), and
 * the memoized restore path needs dense differential coverage, not a
 * lucky draw. The pinned rows cycle through the three fork-stream
 * sub-shapes (quiet, streaming capture, background-loaded) so every
 * warm-up class the cache serves is byte-compared against Reference.
 */
std::vector<Scenario>
differentialCorpus(bool faults)
{
    const auto platforms = soc::allPlatforms();
    std::vector<Scenario> out;
    out.reserve(kCorpusSize);
    for (int i = 0; i < kCorpusSize; ++i) {
        Scenario s = fuzzScenario(kMasterSeed, i);
        s.socName = platforms[static_cast<std::size_t>(i) %
                              platforms.size()]
                        .socName;
        s.faults = faults;
        if (i % 3 == 0) {
            s.mode = app::HarnessMode::CliBenchmark;
            switch ((i / 3) % 3) {
              case 0: // quiet warm-up
                s.streaming = false;
                s.dspLoadProcesses = 0;
                s.cpuLoadProcesses = 0;
                break;
              case 1: // streaming capture
                s.streaming = true;
                s.dspLoadProcesses = 0;
                s.cpuLoadProcesses = 0;
                break;
              default: // background-loaded
                s.streaming = false;
                s.dspLoadProcesses = 1;
                s.cpuLoadProcesses = 1;
                break;
            }
        }
        out.push_back(s);
    }
    return out;
}

/**
 * Serialize everything a scenario produces into one comparable byte
 * string: the TaxReport CSV, the scalar witnesses, every FastRPC
 * breakdown field, every fault tally, and the full Chrome trace.
 */
std::string
resultBytes(const ScenarioResult &r)
{
    std::ostringstream os;
    os.precision(17);
    r.report.renderCsv(os);
    os << "|end=" << r.endTimeNs << "|energy=" << r.energyMj
       << "|thermal=" << r.thermalSpeedFactor
       << "|bg=" << r.backgroundInferences;
    os << "|rpc=" << r.rpcLog.size();
    for (const auto &b : r.rpcLog) {
        os << ";" << b.sessionOpenNs << "," << b.userToKernelNs << ","
           << b.cacheFlushNs << "," << b.kernelSignalNs << ","
           << b.queueWaitNs << "," << b.dspExecNs << ","
           << b.returnPathNs << "," << b.retryNs << "," << b.retries
           << "," << b.failed;
    }
    os << "|frames=" << r.frameLog.size();
    for (const auto &f : r.frameLog)
        os << ";" << f.frame << "," << f.readyAt << "," << f.consumedAt;
    const auto &fs = r.faultStats;
    os << "|faults=" << fs.sessionLosses << "," << fs.transientFailures
       << "," << fs.watchdogKills << "," << fs.retries << ","
       << fs.permanentFailures << "," << fs.thermalEmergencies << ","
       << fs.retryOverheadNs << "," << fs.degradedExecNs;
    for (const auto &fb : fs.fallbacks)
        os << ";" << static_cast<int>(fb.from) << ">"
           << static_cast<int>(fb.to) << "@" << fb.when;
    os << "|trace=" << r.chromeTraceJson;
    return os.str();
}

void
expectCorpusIdentical(bool faults)
{
    sweep::snapshotCacheClearForTest();
    const auto corpus = differentialCorpus(faults);
    for (std::size_t i = 0; i < corpus.size(); ++i) {
        const Scenario &s = corpus[i];
        const std::string ref =
            resultBytes(runScenario(s, sim::EngineMode::Reference));
        const std::string fast =
            resultBytes(runScenario(s, sim::EngineMode::Fast));
        ASSERT_EQ(ref, fast)
            << "engine divergence at corpus index " << i << ": "
            << s.describe() << "\nreplay: " << replayCommand(kMasterSeed,
                                                            static_cast<int>(i));
    }
}

TEST(Differential, ReferenceVsFastFaultsOff)
{
    expectCorpusIdentical(/*faults=*/false);
}

TEST(Differential, ReferenceVsFastFaultsOn)
{
    expectCorpusIdentical(/*faults=*/true);
}

/**
 * Snapshot hits must replay byte-identically: run the eligible slice
 * of the corpus twice over a shared cache — first pass populates
 * (misses), second pass restores (hits) — and demand equality with a
 * cache-free Reference run each time.
 */
TEST(Differential, SnapshotHitsReplayByteIdentical)
{
    sweep::snapshotCacheClearForTest();
    std::vector<Scenario> eligible;
    for (const Scenario &s : differentialCorpus(false))
        if (classifySnapshotUse(s) == SnapshotUse::Eligible)
            eligible.push_back(s);
    // The corpus pins every third scenario to the eligible shape; an
    // empty slice would silently gut this test.
    ASSERT_GE(eligible.size(), 8u);

    std::vector<std::string> reference;
    reference.reserve(eligible.size());
    for (const Scenario &s : eligible)
        reference.push_back(
            resultBytes(runScenario(s, sim::EngineMode::Reference)));

    for (int pass = 0; pass < 2; ++pass) {
        for (std::size_t i = 0; i < eligible.size(); ++i) {
            ASSERT_EQ(reference[i],
                      resultBytes(runScenario(eligible[i],
                                              sim::EngineMode::Fast)))
                << "pass " << pass << ", " << eligible[i].describe();
        }
    }
    const auto stats = sweep::snapshotCacheStatsNow();
    EXPECT_GT(stats.hits, 0u) << "second pass never hit the cache";
}

/**
 * The --jobs invariance half of the determinism contract, on the fast
 * engine with the snapshot cache live: a parallel sweep over the
 * corpus must byte-match the serial sweep, regardless of which worker
 * wins the first-capture race for each snapshot key.
 */
void
expectJobsInvariant(bool faults)
{
    const auto corpus = differentialCorpus(faults);
    auto sweep_with = [&corpus](int jobs) {
        sweep::snapshotCacheClearForTest();
        sweep::SweepRunner runner(jobs);
        const std::vector<std::string> rows =
            runner.map<std::string>(corpus.size(), [&corpus](std::size_t i) {
                return resultBytes(
                    runScenario(corpus[i], sim::EngineMode::Fast));
            });
        std::string all;
        for (const std::string &row : rows)
            all += row + "\n";
        return all;
    };
    EXPECT_EQ(sweep_with(1), sweep_with(8));
}

TEST(Differential, JobsInvarianceFaultsOff)
{
    expectJobsInvariant(/*faults=*/false);
}

TEST(Differential, JobsInvarianceFaultsOn)
{
    expectJobsInvariant(/*faults=*/true);
}

// --- Memoization-key fuzz: divergent prefixes never share ------------

/** True when a and b could ever observe the same cache entry. */
bool
couldShareSnapshot(const Scenario &a, const Scenario &b)
{
    return classifySnapshotUse(a) == SnapshotUse::Eligible &&
           classifySnapshotUse(b) == SnapshotUse::Eligible &&
           snapshotKey(a) == snapshotKey(b);
}

TEST(SnapshotKey, AdversarialDivergentPairsNeverShare)
{
    // Hand-picked adversary: identical warm-up prefix fields, one
    // divergent axis each.
    Scenario base;
    base.mode = app::HarnessMode::CliBenchmark;
    base.streaming = false;
    base.dspLoadProcesses = 0;
    base.cpuLoadProcesses = 0;
    base.faults = false;
    ASSERT_EQ(classifySnapshotUse(base), SnapshotUse::Eligible);

    Scenario streaming = base;
    streaming.streaming = true;
    EXPECT_FALSE(couldShareSnapshot(base, streaming));

    Scenario faulted = base;
    faulted.faults = true;
    EXPECT_FALSE(couldShareSnapshot(base, faulted));

    Scenario dsp_bg = base;
    dsp_bg.dspLoadProcesses = 1;
    EXPECT_FALSE(couldShareSnapshot(base, dsp_bg));

    Scenario cpu_bg = base;
    cpu_bg.cpuLoadProcesses = 2;
    EXPECT_FALSE(couldShareSnapshot(base, cpu_bg));

    Scenario other_mode = base;
    other_mode.mode = app::HarnessMode::BenchmarkApp;
    EXPECT_FALSE(couldShareSnapshot(base, other_mode));
}

TEST(SnapshotKey, FuzzedDivergentPairsNeverShare)
{
    sim::RandomStream rng(kMasterSeed, "snapshot-key-fuzz");
    for (int i = 0; i < 256; ++i) {
        Scenario a = sampleScenario(rng);
        Scenario b = a;
        switch (rng.uniformInt(0, 4)) {
          case 0:
            b.streaming = !b.streaming;
            break;
          case 1:
            b.faults = !b.faults;
            break;
          case 2:
            b.dspLoadProcesses = a.dspLoadProcesses == 0 ? 1 : 0;
            break;
          case 3:
            b.cpuLoadProcesses = a.cpuLoadProcesses == 0 ? 2 : 0;
            break;
          default:
            b.mode = a.mode == app::HarnessMode::CliBenchmark
                         ? app::HarnessMode::AndroidApp
                         : app::HarnessMode::CliBenchmark;
            break;
        }
        EXPECT_FALSE(couldShareSnapshot(a, b))
            << "iteration " << i << ": " << a.describe() << " vs "
            << b.describe();
    }
}

TEST(SnapshotKey, SeedAndRunsIntentionallyShared)
{
    // The whole point of the cache: scenarios differing only in seed
    // or run count share the (seed-independent) warm-up prefix.
    Scenario a;
    a.mode = app::HarnessMode::CliBenchmark;
    a.seed = 1;
    a.runs = 4;
    Scenario b = a;
    b.seed = 99;
    b.runs = 12;
    ASSERT_EQ(classifySnapshotUse(a), SnapshotUse::Eligible);
    EXPECT_TRUE(couldShareSnapshot(a, b));
    EXPECT_EQ(snapshotKey(a), snapshotKey(b));
}

TEST(SnapshotKey, PureFunctionOfScenario)
{
    for (const Scenario &s : differentialCorpus(true))
        EXPECT_EQ(snapshotKey(s), snapshotKey(s));
}

/**
 * Fork-stream widening (PR 7): streaming-capture and background-loaded
 * CLI runs are snapshot-eligible and must actually restore from a
 * snapshot their quiet-warm-up twin never shares — each shape keys its
 * own entry, and a hit replays byte-identically to cache-free
 * Reference.
 */
TEST(Differential, ForkStreamShapesHitSnapshotCache)
{
    Scenario shapes[2];
    shapes[0].mode = app::HarnessMode::CliBenchmark;
    shapes[0].runs = 4;
    shapes[0].streaming = true;
    shapes[1].mode = app::HarnessMode::CliBenchmark;
    shapes[1].runs = 4;
    shapes[1].dspLoadProcesses = 1;
    shapes[1].cpuLoadProcesses = 1;
    shapes[1].seed = 7;

    for (Scenario &s : shapes) {
        sweep::snapshotCacheClearForTest();
        ASSERT_TRUE(scenarioValid(s));
        ASSERT_EQ(classifySnapshotUse(s), SnapshotUse::Eligible)
            << s.describe();
        const std::string ref =
            resultBytes(runScenario(s, sim::EngineMode::Reference));
        // First Fast run misses and publishes; the second restores.
        EXPECT_EQ(ref, resultBytes(runScenario(s, sim::EngineMode::Fast)))
            << "miss pass: " << s.describe();
        EXPECT_EQ(ref, resultBytes(runScenario(s, sim::EngineMode::Fast)))
            << "hit pass: " << s.describe();
        const auto stats = sweep::snapshotCacheStatsNow();
        EXPECT_EQ(stats.stores, 1u) << s.describe();
        EXPECT_GE(stats.hits, 1u) << s.describe();
    }
    sweep::snapshotCacheClearForTest();
}

/**
 * Back-to-back runs on one thread must settle into exactly one arena
 * block with no further block allocations — the perf contract the
 * sweep workers rely on (see sim::Arena and verify::scenarioArena).
 */
TEST(Differential, ArenaReusedAcrossBackToBackRuns)
{
    Scenario s;
    s.mode = app::HarnessMode::CliBenchmark;
    s.runs = 4;
    ASSERT_TRUE(scenarioValid(s));
    // Two priming runs establish the high-water mark and coalesce.
    runScenario(s);
    runScenario(s);
    sim::Arena &arena = scenarioArena();
    const std::uint64_t primed = arena.blockAllocs();
    const std::string a = resultBytes(runScenario(s));
    const std::string b = resultBytes(runScenario(s));
    EXPECT_EQ(a, b);
    EXPECT_EQ(arena.blockCount(), 1u);
    EXPECT_EQ(arena.blockAllocs(), primed)
        << "steady-state runs must not touch the heap for blocks";
}

/**
 * Component-local queues under fault pressure: AndroidApp mode drives
 * both interference streams and accelerator completions through
 * LocalEventQueue, and faults add watchdog kills, retries and fallback
 * rescheduling on top. The lazily-fed heap must preserve exact
 * (when, seq) tie order through all of it.
 */
TEST(Differential, LocalQueueTieOrderingUnderFaults)
{
    for (int i = 0; i < 8; ++i) {
        Scenario s = fuzzScenario(kMasterSeed ^ 0xF00Du, i);
        s.mode = app::HarnessMode::AndroidApp;
        s.faults = true;
        s.dspLoadProcesses = 1;
        ASSERT_TRUE(scenarioValid(s));
        ASSERT_EQ(resultBytes(runScenario(s, sim::EngineMode::Reference)),
                  resultBytes(runScenario(s, sim::EngineMode::Fast)))
            << s.describe();
    }
}

TEST(SnapshotCache, FirstWinsAndCountsRaces)
{
    sweep::snapshotCacheClearForTest();
    auto first = std::make_shared<const int>(1);
    auto second = std::make_shared<const int>(2);
    EXPECT_EQ(sweep::snapshotCacheLookup("k"), nullptr);
    EXPECT_EQ(sweep::snapshotCacheStore("k", first), first);
    EXPECT_EQ(sweep::snapshotCacheStore("k", second), first);
    EXPECT_EQ(sweep::snapshotCacheLookup("k"), first);
    const auto stats = sweep::snapshotCacheStatsNow();
    EXPECT_EQ(stats.misses, 1u);
    EXPECT_EQ(stats.hits, 1u);
    EXPECT_EQ(stats.stores, 1u);
    EXPECT_EQ(stats.raceDiscards, 1u);
    sweep::snapshotCacheClearForTest();
}

// snapshotCacheResetStats starts a fresh counting window (per-sweep
// hit rates in aitax_cli --stats / sweep_throughput) without dropping
// the entries themselves — resetting between runs must not force the
// next run back through a warm-up miss.
TEST(SnapshotCache, ResetStatsKeepsEntries)
{
    sweep::snapshotCacheClearForTest();
    auto value = std::make_shared<const int>(7);
    sweep::snapshotCacheStore("k", value);
    EXPECT_EQ(sweep::snapshotCacheLookup("k"), value);
    EXPECT_EQ(sweep::snapshotCacheLookup("absent"), nullptr);

    sweep::snapshotCacheResetStats();
    auto zeroed = sweep::snapshotCacheStatsNow();
    EXPECT_EQ(zeroed.hits, 0u);
    EXPECT_EQ(zeroed.misses, 0u);
    EXPECT_EQ(zeroed.stores, 0u);
    EXPECT_EQ(zeroed.raceDiscards, 0u);

    // The entry survived: the next window records a hit, not a miss.
    EXPECT_EQ(sweep::snapshotCacheLookup("k"), value);
    const auto after = sweep::snapshotCacheStatsNow();
    EXPECT_EQ(after.hits, 1u);
    EXPECT_EQ(after.misses, 0u);
    sweep::snapshotCacheClearForTest();
}

} // namespace
} // namespace aitax::verify
