/**
 * @file
 * Tests for the aitax-lint library: one bad + one clean fixture per
 * rule, suppression semantics, baseline handling, and tokenizer edge
 * cases. Fixtures live in tests/lint_fixtures/ and are linted under
 * *virtual* paths so each test can place them wherever a rule's path
 * scoping requires.
 */

#include <algorithm>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "lint/baseline.h"
#include "lint/graph_rules.h"
#include "lint/index.h"
#include "lint/linter.h"
#include "lint/rules.h"
#include "lint/taint.h"
#include "lint/token.h"

namespace {

using aitax::lint::Baseline;
using aitax::lint::BaselineEntry;
using aitax::lint::Finding;
using aitax::lint::GraphOptions;
using aitax::lint::LayerContract;
using aitax::lint::LintOptions;
using aitax::lint::lintRepo;
using aitax::lint::LintResult;
using aitax::lint::lintSource;
using aitax::lint::RepoIndex;
using aitax::lint::TokKind;
using aitax::lint::tokenize;

using SourceList = std::vector<std::pair<std::string, std::string>>;

std::string
readFixture(const std::string &name)
{
    const std::string path = std::string(AITAX_LINT_FIXTURES) + "/" + name;
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << "missing fixture " << path;
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

/** Lint fixture @p name as if it lived at @p virtualPath, optionally
 *  restricted to a single rule. */
LintResult
lintFixture(const std::string &name, const std::string &virtualPath,
            const std::vector<std::string> &rules = {})
{
    return lintSource(virtualPath, readFixture(name), rules);
}

std::multiset<int>
findingLines(const LintResult &r)
{
    std::multiset<int> lines;
    for (const Finding &f : r.findings)
        lines.insert(f.line);
    return lines;
}

void
expectAllRule(const LintResult &r, const std::string &rule)
{
    for (const Finding &f : r.findings)
        EXPECT_EQ(f.rule, rule) << f.file << ":" << f.line;
}

// --- tokenizer ---------------------------------------------------------

TEST(Tokenizer, ClassifiesCommentsStringsAndCode)
{
    const auto toks = tokenize("int x = 1; // trailing\n"
                               "/* block */ const char *s = \"lit\";\n");
    std::size_t ident = 0;
    std::size_t comment = 0;
    std::size_t str = 0;
    for (const auto &t : toks) {
        if (t.kind == TokKind::Identifier)
            ++ident;
        else if (t.kind == TokKind::Comment)
            ++comment;
        else if (t.kind == TokKind::String)
            ++str;
    }
    EXPECT_EQ(ident, 5U); // int x const char s ("lit" is a String)
    EXPECT_EQ(comment, 2U);
    EXPECT_EQ(str, 1U);
}

TEST(Tokenizer, BannedNamesInCommentsAndStringsAreNotIdentifiers)
{
    const auto toks =
        tokenize("// steady_clock::now()\n"
                 "const char *m = \"std::unordered_map<int,int>\";\n");
    for (const auto &t : toks)
        if (t.kind == TokKind::Identifier)
            EXPECT_TRUE(t.text != "steady_clock" &&
                        t.text != "unordered_map")
                << t.text;
}

TEST(Tokenizer, ScopeResolutionIsOneToken)
{
    const auto toks = tokenize("std::sort(v.begin(), v.end());");
    bool sawScope = false;
    for (const auto &t : toks)
        if (t.kind == TokKind::Punct && t.text == "::")
            sawScope = true;
    EXPECT_TRUE(sawScope);
}

TEST(Tokenizer, RawStringsSwallowFakeDelimiters)
{
    const auto toks =
        tokenize("auto s = R\"x(rand() \" mt19937)x\"; int after = 1;");
    for (const auto &t : toks)
        if (t.kind == TokKind::Identifier)
            EXPECT_TRUE(t.text != "rand" && t.text != "mt19937") << t.text;
    // Lexing continued past the raw string.
    const bool sawAfter =
        std::any_of(toks.begin(), toks.end(), [](const auto &t) {
            return t.kind == TokKind::Identifier && t.text == "after";
        });
    EXPECT_TRUE(sawAfter);
}

TEST(Tokenizer, ContinuedPreprocessorLineIsOneToken)
{
    const auto toks = tokenize("#define TWO_LINES \\\n    1\nint x;\n");
    std::size_t preproc = 0;
    for (const auto &t : toks)
        if (t.kind == TokKind::Preproc)
            ++preproc;
    EXPECT_EQ(preproc, 1U);
}

TEST(Tokenizer, UnterminatedLiteralDoesNotAbort)
{
    const auto toks = tokenize("const char *s = \"oops");
    EXPECT_FALSE(toks.empty());
}

// --- wall-clock --------------------------------------------------------

TEST(RuleWallClock, FlagsEveryClockRead)
{
    const auto r =
        lintFixture("wall_clock_bad.cc", "src/soc/x.cc", {"wall-clock"});
    expectAllRule(r, "wall-clock");
    EXPECT_EQ(findingLines(r), (std::multiset<int>{9, 10, 11, 12, 13, 15}));
}

TEST(RuleWallClock, CleanVirtualTimeCodePasses)
{
    const auto r =
        lintFixture("wall_clock_clean.cc", "src/soc/x.cc", {"wall-clock"});
    EXPECT_TRUE(r.findings.empty());
}

TEST(RuleWallClock, BenchAndSweepAreExempt)
{
    EXPECT_TRUE(lintFixture("wall_clock_bad.cc", "bench/x.cc",
                            {"wall-clock"})
                    .findings.empty());
    EXPECT_TRUE(lintFixture("wall_clock_bad.cc", "src/sweep/x.cc",
                            {"wall-clock"})
                    .findings.empty());
}

// --- raw-random --------------------------------------------------------

TEST(RuleRawRandom, FlagsUnseededRng)
{
    const auto r =
        lintFixture("raw_random_bad.cc", "src/soc/x.cc", {"raw-random"});
    expectAllRule(r, "raw-random");
    EXPECT_EQ(findingLines(r), (std::multiset<int>{8, 9, 10, 11, 12}));
}

TEST(RuleRawRandom, SeededStreamPasses)
{
    const auto r = lintFixture("raw_random_clean.cc", "src/soc/x.cc",
                               {"raw-random"});
    EXPECT_TRUE(r.findings.empty());
}

TEST(RuleRawRandom, RandomModuleItselfIsExempt)
{
    const auto r = lintFixture("raw_random_bad.cc", "src/sim/random.cc",
                               {"raw-random"});
    EXPECT_TRUE(r.findings.empty());
}

// --- unordered-container -----------------------------------------------

TEST(RuleUnordered, FlagsHashContainers)
{
    const auto r = lintFixture("unordered_bad.cc", "src/core/x.cc",
                               {"unordered-container"});
    expectAllRule(r, "unordered-container");
    EXPECT_EQ(findingLines(r), (std::multiset<int>{9, 10}));
}

TEST(RuleUnordered, OrderedContainersPass)
{
    const auto r = lintFixture("unordered_clean.cc", "src/core/x.cc",
                               {"unordered-container"});
    EXPECT_TRUE(r.findings.empty());
}

TEST(RuleUnordered, OnlySrcIsInScope)
{
    const auto r = lintFixture("unordered_bad.cc", "tools/x.cc",
                               {"unordered-container"});
    EXPECT_TRUE(r.findings.empty());
}

// --- raw-new-delete ----------------------------------------------------

TEST(RuleNewDelete, FlagsRawAllocationOnHotPaths)
{
    const auto r = lintFixture("new_delete_bad.cc", "src/sim/x.cc",
                               {"raw-new-delete"});
    expectAllRule(r, "raw-new-delete");
    EXPECT_EQ(findingLines(r), (std::multiset<int>{10, 12, 13, 14}));
}

TEST(RuleNewDelete, DeletedSpecialMembersPass)
{
    const auto r = lintFixture("new_delete_clean.cc", "src/soc/x.cc",
                               {"raw-new-delete"});
    EXPECT_TRUE(r.findings.empty());
}

TEST(RuleNewDelete, ColdPathsAreOutOfScope)
{
    const auto r = lintFixture("new_delete_bad.cc", "src/core/x.cc",
                               {"raw-new-delete"});
    EXPECT_TRUE(r.findings.empty());
}

// --- std-function ------------------------------------------------------

TEST(RuleStdFunction, FlagsStdFunctionOnHotPaths)
{
    const auto r = lintFixture("std_function_bad.cc", "src/soc/x.cc",
                               {"std-function"});
    expectAllRule(r, "std-function");
    EXPECT_EQ(findingLines(r), (std::multiset<int>{6, 10}));
}

TEST(RuleStdFunction, EventFnAndProsePass)
{
    const auto r = lintFixture("std_function_clean.cc", "src/sim/x.cc",
                               {"std-function"});
    EXPECT_TRUE(r.findings.empty());
}

// --- unstable-sort -----------------------------------------------------

TEST(RuleUnstableSort, FlagsStdSort)
{
    const auto r = lintFixture("unstable_sort_bad.cc", "src/stats/x.cc",
                               {"unstable-sort"});
    expectAllRule(r, "unstable-sort");
    EXPECT_EQ(findingLines(r), (std::multiset<int>{14}));
}

TEST(RuleUnstableSort, StableSortAndMemberSortPass)
{
    const auto r = lintFixture("unstable_sort_clean.cc", "src/stats/x.cc",
                               {"unstable-sort"});
    EXPECT_TRUE(r.findings.empty());
}

// --- float-accum -------------------------------------------------------

TEST(RuleFloatAccum, FlagsFloatAccumulatorsAndUnorderedReductions)
{
    const auto r = lintFixture("float_accum_bad.cc", "src/stats/x.cc",
                               {"float-accum"});
    expectAllRule(r, "float-accum");
    EXPECT_EQ(findingLines(r), (std::multiset<int>{11, 12}));
}

TEST(RuleFloatAccum, DoubleAccumulationPasses)
{
    const auto r = lintFixture("float_accum_clean.cc", "src/stats/x.cc",
                               {"float-accum"});
    EXPECT_TRUE(r.findings.empty());
}

TEST(RuleFloatAccum, NonReportPathsAreOutOfScope)
{
    const auto r = lintFixture("float_accum_bad.cc", "src/postproc/x.cc",
                               {"float-accum"});
    EXPECT_TRUE(r.findings.empty());
}

// --- include-hygiene ---------------------------------------------------

TEST(RuleIncludeHygiene, FlagsDuplicateDeprecatedAndAngledProject)
{
    const auto r = lintFixture("include_hygiene_bad.cc", "src/core/x.cc",
                               {"include-hygiene"});
    expectAllRule(r, "include-hygiene");
    EXPECT_EQ(findingLines(r), (std::multiset<int>{3, 4, 5}));
}

TEST(RuleIncludeHygiene, TidyIncludesPass)
{
    const auto r = lintFixture("include_hygiene_clean.cc",
                               "src/core/x.cc", {"include-hygiene"});
    EXPECT_TRUE(r.findings.empty());
}

// --- header-guard ------------------------------------------------------

TEST(RuleHeaderGuard, FlagsMissingGuard)
{
    const auto r = lintFixture("header_guard_missing.h", "src/soc/fix.h",
                               {"header-guard"});
    ASSERT_EQ(r.findings.size(), 1U);
    EXPECT_EQ(r.findings[0].rule, "header-guard");
    EXPECT_EQ(r.findings[0].line, 1);
}

TEST(RuleHeaderGuard, FlagsIfndefDefineMismatch)
{
    const auto r = lintFixture("header_guard_mismatch.h", "src/soc/fix.h",
                               {"header-guard"});
    ASSERT_EQ(r.findings.size(), 1U);
    EXPECT_NE(r.findings[0].message.find("does not match"),
              std::string::npos);
}

TEST(RuleHeaderGuard, FlagsNonCanonicalMacro)
{
    const auto r = lintFixture("header_guard_noncanonical.h",
                               "src/soc/fix.h", {"header-guard"});
    ASSERT_EQ(r.findings.size(), 1U);
    EXPECT_NE(r.findings[0].hint.find("AITAX_SOC_FIX_H"),
              std::string::npos);
}

TEST(RuleHeaderGuard, CanonicalGuardAndPragmaOncePass)
{
    EXPECT_TRUE(lintFixture("header_guard_clean.h", "src/soc/fix.h",
                            {"header-guard"})
                    .findings.empty());
    EXPECT_TRUE(lintFixture("header_guard_pragma.h", "src/soc/fix.h",
                            {"header-guard"})
                    .findings.empty());
}

TEST(RuleHeaderGuard, SourceFilesAreNotChecked)
{
    // A .cc file with no guard is fine.
    const auto r = lintSource("src/soc/fix.cc", "int x = 1;\n",
                              {"header-guard"});
    EXPECT_TRUE(r.findings.empty());
}

// --- suppressions ------------------------------------------------------

TEST(Suppression, MarkerCoversOwnAndNextLineOnly)
{
    const auto r = lintFixture("suppress_line.cc", "src/soc/x.cc",
                               {"wall-clock"});
    EXPECT_EQ(findingLines(r), (std::multiset<int>{10, 13}));
    EXPECT_EQ(r.suppressed, 2U);
}

TEST(Suppression, AllowFileCoversOnlyTheNamedRule)
{
    const auto r = lintFixture("suppress_file.cc", "src/soc/x.cc");
    ASSERT_EQ(r.findings.size(), 1U);
    EXPECT_EQ(r.findings[0].rule, "raw-random");
    EXPECT_EQ(r.findings[0].line, 12);
    EXPECT_EQ(r.suppressed, 2U);
}

// --- rule registry -----------------------------------------------------

TEST(RuleRegistry, HasAtLeastEightRulesSortedById)
{
    const auto &rules = aitax::lint::allRules();
    EXPECT_GE(rules.size(), 8U);
    for (std::size_t i = 1; i < rules.size(); ++i)
        EXPECT_LT(rules[i - 1].id, rules[i].id);
    for (const auto &rule : rules) {
        EXPECT_FALSE(rule.summary.empty()) << rule.id;
        EXPECT_FALSE(rule.rationale.empty()) << rule.id;
    }
}

TEST(RuleRegistry, FindRule)
{
    EXPECT_NE(aitax::lint::findRule("wall-clock"), nullptr);
    EXPECT_EQ(aitax::lint::findRule("no-such-rule"), nullptr);
}

// --- findings are deterministic ----------------------------------------

TEST(Determinism, FindingsAreSortedAndStableAcrossRuns)
{
    const std::string src = readFixture("wall_clock_bad.cc");
    const auto a = lintSource("src/soc/x.cc", src);
    const auto b = lintSource("src/soc/x.cc", src);
    ASSERT_EQ(a.findings.size(), b.findings.size());
    for (std::size_t i = 0; i < a.findings.size(); ++i) {
        EXPECT_EQ(a.findings[i].rule, b.findings[i].rule);
        EXPECT_EQ(a.findings[i].line, b.findings[i].line);
        if (i > 0)
            EXPECT_FALSE(a.findings[i] < a.findings[i - 1]);
    }
}

// --- baseline ----------------------------------------------------------

TEST(BaselineTest, ParseSkipsCommentsAndBlanks)
{
    const Baseline b = Baseline::parse("# header\n"
                                       "\n"
                                       "src/soc/task.h:48:std-function\n"
                                       "src/sim/simulator.cc:34:std-function\n");
    EXPECT_EQ(b.size(), 2U);
    // Entries come back sorted regardless of input order.
    EXPECT_EQ(b.entries()[0].file, "src/sim/simulator.cc");
    EXPECT_EQ(b.entries()[1].line, 48);
}

TEST(BaselineTest, RenderParseRoundTrip)
{
    std::vector<Finding> findings = {
        {"src/a.cc", 3, "wall-clock", "m", "h"},
        {"src/b.cc", 7, "raw-random", "m", "h"},
    };
    const Baseline b = Baseline::fromFindings(findings);
    const Baseline reparsed = Baseline::parse(b.render());
    EXPECT_EQ(reparsed.entries(), b.entries());
}

TEST(BaselineTest, ApplySplitsFreshAndStale)
{
    const Baseline b = Baseline::parse("src/a.cc:3:wall-clock\n"
                                       "src/gone.cc:9:raw-random\n");
    std::vector<Finding> findings = {
        {"src/a.cc", 3, "wall-clock", "m", "h"},  // baselined
        {"src/a.cc", 5, "wall-clock", "m", "h"},  // fresh
    };
    std::vector<Finding> fresh;
    const std::vector<BaselineEntry> stale = b.apply(findings, fresh);
    ASSERT_EQ(fresh.size(), 1U);
    EXPECT_EQ(fresh[0].line, 5);
    ASSERT_EQ(stale.size(), 1U);
    EXPECT_EQ(stale[0].file, "src/gone.cc");
}

TEST(BaselineTest, ContainsMatchesExactTriple)
{
    const Baseline b = Baseline::parse("src/a.cc:3:wall-clock\n");
    EXPECT_TRUE(b.contains({"src/a.cc", 3, "wall-clock", "", ""}));
    EXPECT_FALSE(b.contains({"src/a.cc", 4, "wall-clock", "", ""}));
    EXPECT_FALSE(b.contains({"src/a.cc", 3, "raw-random", "", ""}));
}

// --- RepoIndex: pass-1 construction ------------------------------------

TEST(RepoIndexTest, FilesAreSortedRegardlessOfInsertionOrder)
{
    const SourceList forward = {
        {"src/sim/a.h", "namespace aitax::sim { class A; }\n"},
        {"src/sim/b.h", "namespace aitax::sim { class B; }\n"},
        {"tools/t.cc", "int main() { return 0; }\n"},
    };
    SourceList reversed(forward.rbegin(), forward.rend());

    const RepoIndex fwd = RepoIndex::fromSources(forward);
    const RepoIndex rev = RepoIndex::fromSources(reversed);

    ASSERT_EQ(fwd.files().size(), 3U);
    ASSERT_EQ(rev.files().size(), 3U);
    for (std::size_t i = 0; i < fwd.files().size(); ++i) {
        EXPECT_EQ(fwd.files()[i].path, rev.files()[i].path);
        if (i > 0)
            EXPECT_LT(fwd.files()[i - 1].path, fwd.files()[i].path);
    }
    // The derived DOT graph is byte-identical too.
    EXPECT_EQ(fwd.dotGraph(), rev.dotGraph());
}

TEST(RepoIndexTest, ModuleOfStripsSrcPrefix)
{
    EXPECT_EQ(RepoIndex::moduleOf("src/sim/engine.cc"), "sim");
    EXPECT_EQ(RepoIndex::moduleOf("tools/aitax_cli.cc"), "tools");
    EXPECT_EQ(RepoIndex::moduleOf("bench/bench_soc.cc"), "bench");
}

TEST(RepoIndexTest, IncludeClosureAndDeclarations)
{
    const RepoIndex idx = RepoIndex::fromSources({
        {"src/sim/a.h",
         "#include \"sim/b.h\"\nnamespace aitax::sim { class A; }\n"},
        {"src/sim/b.h", "namespace aitax::sim { class B; }\n"},
        {"src/sim/lone.h", "namespace aitax::sim { class Lone; }\n"},
    });
    const int a = idx.fileIndexOf("src/sim/a.h");
    const int b = idx.fileIndexOf("src/sim/b.h");
    ASSERT_GE(a, 0);
    ASSERT_GE(b, 0);

    // Closure is self-inclusive, transitive and sorted.
    const std::vector<int> want = {std::min(a, b), std::max(a, b)};
    EXPECT_EQ(idx.includeClosure(a), want);
    EXPECT_TRUE(idx.closureDeclares(a, "B"));
    EXPECT_FALSE(idx.closureDeclares(b, "A"));
    EXPECT_FALSE(idx.closureDeclares(a, "Lone"));
    EXPECT_EQ(idx.declarersOf("B"), std::vector<int>{b});
    EXPECT_TRUE(idx.declarersOf("Nowhere").empty());
}

TEST(RepoIndexTest, FunctionDefsCallsAndSeeds)
{
    const RepoIndex idx = RepoIndex::fromSources({
        {"src/sweep/t.cc",
         "#include <chrono>\n"
         "namespace aitax::sweep {\n"
         "double helper();\n"
         "double wall()\n{\n"
         "    const auto t = std::chrono::steady_clock::now();\n"
         "    return helper() + t.time_since_epoch().count();\n"
         "}\n"
         "} // namespace aitax::sweep\n"},
    });
    ASSERT_EQ(idx.files().size(), 1U);
    const auto *refs = idx.lookupFunctions("wall");
    ASSERT_NE(refs, nullptr);
    ASSERT_EQ(refs->size(), 1U);
    const auto &def = idx.function((*refs)[0]);
    EXPECT_EQ(def.name, "wall");
    // Calls are recorded in body order; `now(` precedes `helper(`.
    const bool callsHelper =
        std::any_of(def.calls.begin(), def.calls.end(),
                    [](const auto &c) { return c.name == "helper"; });
    EXPECT_TRUE(callsHelper);
    // steady_clock seeds taint-clock at its source line.
    ASSERT_TRUE(def.seeds.count("taint-clock"));
    EXPECT_EQ(def.seeds.at("taint-clock").first, "steady_clock");
    EXPECT_EQ(def.seeds.at("taint-clock").second, 6);
    // Declarations without bodies are not definitions.
    EXPECT_EQ(idx.lookupFunctions("helper"), nullptr);
}

// --- graph rules: layering / cycles ------------------------------------

TEST(GraphRules, RegistryIsSortedAndComplete)
{
    const auto &rules = aitax::lint::allGraphRules();
    EXPECT_GE(rules.size(), 4U);
    for (std::size_t i = 1; i < rules.size(); ++i)
        EXPECT_LT(rules[i - 1].id, rules[i].id);
    EXPECT_NE(aitax::lint::findGraphRule("layering"), nullptr);
    EXPECT_NE(aitax::lint::findGraphRule("taint-clock"), nullptr);
    EXPECT_EQ(aitax::lint::findGraphRule("no-such-rule"), nullptr);
}

TEST(GraphRules, LayerContractParse)
{
    const LayerContract c =
        LayerContract::parse("# comment\n"
                             "layer sim stats\n"
                             "layer sweep\n"
                             "free core/thread_annotations.h\n");
    EXPECT_EQ(c.layerOf.at("sim"), 1);
    EXPECT_EQ(c.layerOf.at("stats"), 1);
    EXPECT_EQ(c.layerOf.at("sweep"), 2);
    EXPECT_TRUE(c.isFree("src/core/thread_annotations.h"));
    EXPECT_FALSE(c.isFree("src/core/event.h"));
}

TEST(GraphRules, IncludeCycleIsReportedOnceCanonically)
{
    const RepoIndex idx = RepoIndex::fromSources({
        {"src/sim/a.h", "#include \"sim/b.h\"\n"},
        {"src/sim/b.h", "#include \"sim/c.h\"\n"},
        {"src/sim/c.h", "#include \"sim/a.h\"\n"},
    });
    std::vector<Finding> out;
    aitax::lint::findGraphRule("layering")->check(idx, GraphOptions{},
                                                  out);
    ASSERT_EQ(out.size(), 1U);
    EXPECT_EQ(out[0].rule, "layering");
    EXPECT_EQ(out[0].file, "src/sim/a.h");
    EXPECT_NE(out[0].message.find("src/sim/a.h -> src/sim/b.h -> "
                                  "src/sim/c.h -> src/sim/a.h"),
              std::string::npos)
        << out[0].message;
}

// --- taint propagation -------------------------------------------------

/** Mutually recursive pair in src/sweep/ where fB reads the wall
 *  clock, plus a restricted caller in src/soc/. The propagation
 *  fixed point must terminate on the call-graph cycle and taint both
 *  functions. */
SourceList
taintCycleSources(const std::string &callerLine)
{
    return {
        {"src/sweep/a.cc",
         "namespace aitax::sweep {\n"
         "double fB();\n"
         "double fA()\n{\n"
         "    return fB();\n"
         "}\n"
         "} // namespace aitax::sweep\n"},
        {"src/sweep/b.cc",
         "#include <chrono>\n"
         "namespace aitax::sweep {\n"
         "double fA();\n"
         "double fB()\n{\n"
         "    const auto t = std::chrono::steady_clock::now();\n"
         "    return fA() + t.time_since_epoch().count();\n"
         "}\n"
         "} // namespace aitax::sweep\n"},
        {"src/soc/use.cc",
         "namespace aitax::soc {\n"
         "double go()\n{\n" +
             callerLine +
             "}\n"
             "} // namespace aitax::soc\n"},
    };
}

TEST(Taint, FixedPointTerminatesOnCallGraphCycle)
{
    const RepoIndex idx =
        RepoIndex::fromSources(taintCycleSources("    return fA();\n"));
    const auto *spec = aitax::lint::findTaintSpec("taint-clock");
    ASSERT_NE(spec, nullptr);
    std::vector<Finding> out;
    aitax::lint::propagateTaint(idx, *spec, out);

    // Exactly one finding: the cross-file call in restricted code.
    // The tainted-but-exempt definitions in src/sweep/ stay silent.
    ASSERT_EQ(out.size(), 1U);
    EXPECT_EQ(out[0].file, "src/soc/use.cc");
    EXPECT_EQ(out[0].line, 4);
    EXPECT_EQ(out[0].rule, "taint-clock");
    EXPECT_NE(out[0].message.find("`fA`"), std::string::npos)
        << out[0].message;
    EXPECT_NE(out[0].message.find("steady_clock"), std::string::npos)
        << out[0].message;
}

TEST(Taint, BarrierStopsPropagation)
{
    SourceList srcs = taintCycleSources("    return fA();\n");
    // Seal fA: the wall reach is reviewed and does not escape.
    srcs[0].second =
        "namespace aitax::sweep {\n"
        "double fB();\n"
        "// aitax-lint: taint-barrier(taint-clock)\n"
        "double fA()\n{\n"
        "    return fB();\n"
        "}\n"
        "} // namespace aitax::sweep\n";
    const RepoIndex idx = RepoIndex::fromSources(srcs);
    std::vector<Finding> out;
    aitax::lint::propagateTaint(
        idx, *aitax::lint::findTaintSpec("taint-clock"), out);
    EXPECT_TRUE(out.empty());
}

TEST(Taint, RegistryLookup)
{
    EXPECT_EQ(aitax::lint::taintSpecs().size(), 2U);
    EXPECT_NE(aitax::lint::findTaintSpec("taint-random"), nullptr);
    EXPECT_EQ(aitax::lint::findTaintSpec("wall-clock"), nullptr);
}

// --- cross-file findings vs suppressions and baseline ------------------

TEST(CrossFile, AllowMarkerSuppressesTaintFinding)
{
    const RepoIndex idx = RepoIndex::fromSources(taintCycleSources(
        "    // aitax-lint: allow(taint-clock) — progress line only\n"
        "    return fA();\n"));
    LintOptions opts;
    opts.ruleFilter = {"taint-clock"};
    const LintResult r = lintRepo(idx, opts);
    EXPECT_TRUE(r.findings.empty());
    EXPECT_EQ(r.suppressed, 1U);
}

TEST(CrossFile, BaselineAbsorbsTaintFindingAndGoesStale)
{
    const RepoIndex idx =
        RepoIndex::fromSources(taintCycleSources("    return fA();\n"));
    LintOptions opts;
    opts.ruleFilter = {"taint-clock"};
    const LintResult r = lintRepo(idx, opts);
    ASSERT_EQ(r.findings.size(), 1U);

    // A baseline built from the finding absorbs it...
    const Baseline b = Baseline::fromFindings(r.findings);
    std::vector<Finding> fresh;
    EXPECT_TRUE(b.apply(r.findings, fresh).empty());
    EXPECT_TRUE(fresh.empty());

    // ...and goes stale once the finding is fixed (shrink-only).
    const Baseline stale =
        Baseline::parse("src/soc/use.cc:4:taint-clock\n"
                        "src/gone.cc:1:taint-clock\n");
    fresh.clear();
    const std::vector<BaselineEntry> left = stale.apply(r.findings, fresh);
    ASSERT_EQ(left.size(), 1U);
    EXPECT_EQ(left[0].file, "src/gone.cc");
}

TEST(CrossFile, SelfContainedHeaderCheckIsStrictOnly)
{
    const RepoIndex idx = RepoIndex::fromSources({
        {"src/sim/widget.h", "namespace aitax::sim {\nclass Widget;\n}\n"},
        {"src/soc/p.h",
         "namespace aitax::soc {\nsim::Widget *get();\n}\n"},
    });
    LintOptions opts;
    opts.ruleFilter = {"include-hygiene"};
    // Low-confidence findings are dropped by default...
    EXPECT_TRUE(lintRepo(idx, opts).findings.empty());
    // ...and surface under --strict.
    opts.strict = true;
    const LintResult r = lintRepo(idx, opts);
    ASSERT_EQ(r.findings.size(), 1U);
    EXPECT_EQ(r.findings[0].file, "src/soc/p.h");
    EXPECT_EQ(r.findings[0].rule, "include-hygiene");
    EXPECT_NE(r.findings[0].message.find("sim::Widget"),
              std::string::npos);
}

// --- formatting --------------------------------------------------------

TEST(Format, FindingRendersPathLineRuleAndHint)
{
    const Finding f{"src/a.cc", 3, "wall-clock", "msg", "hint"};
    const std::string s = aitax::lint::formatFinding(f);
    EXPECT_NE(s.find("src/a.cc:3"), std::string::npos);
    EXPECT_NE(s.find("wall-clock"), std::string::npos);
    EXPECT_NE(s.find("msg"), std::string::npos);
    EXPECT_NE(s.find("hint"), std::string::npos);
}

} // namespace
