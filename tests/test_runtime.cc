/**
 * @file
 * Unit tests for the runtime layer: partitioning, plan execution and
 * the TFLite / NNAPI / SNPE front-ends.
 */

#include <gtest/gtest.h>

#include <memory>

#include "models/zoo.h"
#include "runtime/execute.h"
#include "runtime/nnapi.h"
#include "runtime/plan.h"
#include "runtime/snpe.h"
#include "runtime/tflite.h"
#include "soc/chipsets.h"
#include "soc/system.h"

namespace aitax::runtime {
namespace {

using tensor::DType;

// --- plan building -----------------------------------------------------

TEST(Plan, CpuOnlyIsSinglePartition)
{
    const auto g = models::buildGraph("mobilenet_v1", DType::Float32);
    const auto plan =
        buildPlan(g, DType::Float32, {}, drivers::tfliteCpuDriver());
    ASSERT_EQ(plan.partitions.size(), 1u);
    EXPECT_EQ(plan.partitions[0].opCount, g.opCount());
    EXPECT_EQ(plan.transitions(), 0u);
    EXPECT_FALSE(plan.usesAccelerator());
    EXPECT_DOUBLE_EQ(plan.acceleratedMacShare(), 0.0);
}

TEST(Plan, MacShareSumsToOne)
{
    const auto g = models::buildGraph("inception_v3", DType::Float32);
    const auto plan = buildPlan(g, DType::Float32,
                                {&drivers::nnapiVendorGpuDriver()},
                                drivers::nnapiCpuReferenceDriver());
    double total = 0.0;
    for (const auto &p : plan.partitions)
        total += p.macShare;
    EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(Plan, InceptionSplitsRoughlyHalfOnNnapiGpu)
{
    // The paper: Inception "runs around half of its inference on the
    // CPU" under NNAPI because of unsupported operator variants.
    const auto g = models::buildGraph("inception_v3", DType::Float32);
    const auto plan = buildPlan(g, DType::Float32,
                                {&drivers::nnapiVendorGpuDriver()},
                                drivers::nnapiCpuReferenceDriver());
    EXPECT_GT(plan.partitions.size(), 4u);
    const double accel = plan.acceleratedMacShare();
    EXPECT_GT(accel, 0.3);
    EXPECT_LT(accel, 0.85);
}

TEST(Plan, FullySupportedModelFullyAccelerated)
{
    const auto g = models::buildGraph("mobilenet_v1", DType::UInt8);
    const auto plan = buildPlan(g, DType::UInt8,
                                {&drivers::nnapiVendorDspDriver()},
                                drivers::nnapiCpuReferenceDriver());
    EXPECT_NEAR(plan.acceleratedMacShare(), 1.0, 1e-9);
    EXPECT_EQ(plan.partitions.size(), 1u);
}

TEST(Plan, DeviceOpsScaleInverseWithEfficiency)
{
    const auto g = models::buildGraph("mobilenet_v1", DType::UInt8);
    const auto &op = g.ops()[1]; // the stem conv
    const double snpe =
        deviceOpsFor(op, drivers::snpeDspDriver(), DType::UInt8);
    const double nnapi =
        deviceOpsFor(op, drivers::nnapiVendorDspDriver(), DType::UInt8);
    EXPECT_GT(nnapi, snpe);
}

TEST(Plan, SummaryMentionsNameAndPartitions)
{
    const auto g = models::buildGraph("mobilenet_v1", DType::Float32);
    const auto plan =
        buildPlan(g, DType::Float32, {}, drivers::tfliteCpuDriver());
    const auto s = plan.summary();
    EXPECT_NE(s.find("mobilenet_v1"), std::string::npos);
    EXPECT_NE(s.find("1 partition"), std::string::npos);
}

// --- execution ---------------------------------------------------------

sim::TimeNs
runPlan(soc::SocSystem &sys, const ExecutionPlan &plan,
        ExecOptions opts)
{
    auto task = std::make_shared<soc::Task>("exec");
    appendPlanExecution(sys, *task, plan, opts);
    sim::TimeNs done = 0;
    task->setOnComplete([&](sim::TimeNs t) { done = t; });
    sys.scheduler().submit(task);
    sys.run();
    return done;
}

TEST(Execute, MoreThreadsFaster)
{
    const auto g = models::buildGraph("inception_v3", DType::Float32);
    const auto plan =
        buildPlan(g, DType::Float32, {}, drivers::tfliteCpuDriver());

    soc::SocSystem s1(soc::makeSnapdragon845());
    ExecOptions o1;
    o1.cpuThreads = 1;
    const auto t1 = runPlan(s1, plan, o1);

    soc::SocSystem s4(soc::makeSnapdragon845());
    ExecOptions o4;
    o4.cpuThreads = 4;
    const auto t4 = runPlan(s4, plan, o4);

    EXPECT_LT(t4, t1);
    EXPECT_GT(static_cast<double>(t1) / t4, 2.5);
}

TEST(Execute, GpuPlanUsesGpuQueue)
{
    const auto g = models::buildGraph("mobilenet_v1", DType::Float32);
    const auto plan = buildPlan(g, DType::Float32,
                                {&drivers::tfliteGpuDelegateDriver()},
                                drivers::tfliteCpuDriver());
    soc::SocSystem sys(soc::makeSnapdragon845());
    runPlan(sys, plan, {});
    EXPECT_EQ(sys.gpu().jobsCompleted(), 1);
    EXPECT_EQ(sys.dsp().jobsCompleted(), 0);
}

TEST(Execute, DspPlanCrossesFastRpc)
{
    const auto g = models::buildGraph("mobilenet_v1", DType::UInt8);
    const auto plan =
        buildPlan(g, DType::UInt8,
                  {&drivers::tfliteHexagonDelegateDriver()},
                  drivers::tfliteCpuDriver());
    soc::SocSystem sys(soc::makeSnapdragon845());
    std::vector<soc::FastRpcBreakdown> log;
    ExecOptions opts;
    opts.rpcLog = &log;
    runPlan(sys, plan, opts);
    EXPECT_EQ(sys.dsp().jobsCompleted(), 1);
    ASSERT_EQ(log.size(), 1u);
    EXPECT_GT(log[0].sessionOpenNs, 0); // cold start
}

TEST(Execute, NoiseSigmaZeroIsDeterministic)
{
    const auto g = models::buildGraph("mobilenet_v1", DType::Float32);
    const auto plan =
        buildPlan(g, DType::Float32, {}, drivers::tfliteCpuDriver());
    auto run = [&] {
        soc::SocSystem sys(soc::makeSnapdragon845(), 3);
        return runPlan(sys, plan, {});
    };
    EXPECT_EQ(run(), run());
}

TEST(Execute, WorkForCpuNsIsCalibrated)
{
    // workForCpuNs(1e6) should take roughly 1 ms on a big core.
    soc::SocSystem sys(soc::makeSnapdragon845());
    auto task = std::make_shared<soc::Task>("cal");
    task->compute(workForCpuNs(1e6), soc::WorkClass::Scalar);
    sim::TimeNs done = 0;
    task->setOnComplete([&](sim::TimeNs t) { done = t; });
    sys.scheduler().submit(task);
    sys.run();
    EXPECT_NEAR(sim::nsToMs(done), 1.0, 0.15);
}

TEST(Execute, MultiPartitionPlanIssuesOneGpuJobPerPartition)
{
    // Inception v3 fp32 under the NNAPI vendor GPU driver fragments
    // into alternating GPU / CPU-reference partitions.
    const auto g = models::buildGraph("inception_v3", DType::Float32);
    const auto plan = buildPlan(g, DType::Float32,
                                {&drivers::nnapiVendorGpuDriver()},
                                drivers::nnapiCpuReferenceDriver());
    std::int64_t gpu_partitions = 0;
    for (const auto &p : plan.partitions)
        gpu_partitions += p.driver->isAccelerated();
    ASSERT_GT(gpu_partitions, 1);

    soc::SocSystem sys(soc::makeSnapdragon845());
    runPlan(sys, plan, {});
    EXPECT_EQ(sys.gpu().jobsCompleted(), gpu_partitions);
    EXPECT_EQ(sys.dsp().jobsCompleted(), 0);
}

TEST(Execute, BackgroundOptionRoutesWorkersToLittleCores)
{
    const auto g = models::buildGraph("mobilenet_v1", DType::Float32);
    const auto plan =
        buildPlan(g, DType::Float32, {}, drivers::tfliteCpuDriver());
    // Background execution must be slower: little cores are weaker.
    soc::SocSystem fg_sys(soc::makeSnapdragon845());
    const auto fg = runPlan(fg_sys, plan, {});
    soc::SocSystem bg_sys(soc::makeSnapdragon845());
    ExecOptions bg_opts;
    bg_opts.background = true;
    const auto bg = runPlan(bg_sys, plan, bg_opts);
    EXPECT_GT(bg, fg);
}

TEST(Execute, TightlyCoupledDspSkipsFastRpc)
{
    const auto g = models::buildGraph("mobilenet_v1", DType::UInt8);
    const auto plan =
        buildPlan(g, DType::UInt8,
                  {&drivers::tfliteHexagonDelegateDriver()},
                  drivers::tfliteCpuDriver());

    auto platform = soc::makeSnapdragon845();
    platform.dsp.tightlyCoupled = true;
    soc::SocSystem sys(platform);
    std::vector<soc::FastRpcBreakdown> log;
    ExecOptions opts;
    opts.rpcLog = &log;
    const auto tight_time = runPlan(sys, plan, opts);
    EXPECT_EQ(sys.dsp().jobsCompleted(), 1);
    EXPECT_TRUE(log.empty());                 // no FastRPC crossing
    EXPECT_EQ(sys.fastrpc().callsCompleted(), 0);

    soc::SocSystem loose_sys(soc::makeSnapdragon845());
    const auto loose_time = runPlan(loose_sys, plan, {});
    // No session open / kernel hops: tight is faster, by >= the 15 ms
    // session cost on this first invocation.
    EXPECT_LT(tight_time, loose_time - sim::msToNs(10.0));
}

// --- TFLite front-end ---------------------------------------------------

TEST(Tflite, DelegateNames)
{
    using tflite::DelegateKind;
    EXPECT_EQ(tflite::delegateName(DelegateKind::None), "cpu");
    EXPECT_EQ(tflite::delegateName(DelegateKind::Hexagon),
              "hexagon-delegate");
}

TEST(Tflite, CpuInterpreterSinglePartition)
{
    tflite::Interpreter interp(
        models::buildGraph("mobilenet_v1", DType::Float32),
        DType::Float32, {});
    EXPECT_EQ(interp.plan().partitions.size(), 1u);
    EXPECT_GT(interp.modelInitNs(), 0);
}

TEST(Tflite, GpuDelegateInitCostsMore)
{
    auto g = [&] {
        return models::buildGraph("mobilenet_v1", DType::Float32);
    };
    tflite::Interpreter cpu(g(), DType::Float32, {});
    tflite::InterpreterOptions gpu_opts;
    gpu_opts.delegate = tflite::DelegateKind::Gpu;
    tflite::Interpreter gpu(g(), DType::Float32, gpu_opts);
    EXPECT_GT(gpu.modelInitNs(), cpu.modelInitNs());
}

TEST(Tflite, InitScalesWithModelSize)
{
    tflite::Interpreter small(
        models::buildGraph("squeezenet", DType::Float32),
        DType::Float32, {});
    tflite::Interpreter large(
        models::buildGraph("inception_v4", DType::Float32),
        DType::Float32, {});
    EXPECT_GT(large.modelInitNs(), small.modelInitNs());
}

// --- NNAPI ----------------------------------------------------------------

TEST(Nnapi, QuantizedSupportedModelTargetsDsp)
{
    nnapi::Compilation comp(
        models::buildGraph("mobilenet_v1", DType::UInt8), DType::UInt8);
    EXPECT_TRUE(comp.plan().usesAccelerator());
    EXPECT_NEAR(comp.plan().acceleratedMacShare(), 1.0, 1e-9);
    EXPECT_GT(comp.compileNs(), 0);
}

TEST(Nnapi, EfficientNetInt8FallsBackEntirely)
{
    // Fig 5: the whole model lands on the CPU reference path.
    nnapi::Compilation comp(
        models::buildGraph("efficientnet_lite0", DType::UInt8),
        DType::UInt8);
    EXPECT_FALSE(comp.plan().usesAccelerator());
    ASSERT_EQ(comp.plan().partitions.size(), 1u);
    EXPECT_EQ(comp.plan().partitions[0].driver->target(),
              drivers::Target::CpuSingleThreadReference);
}

TEST(Nnapi, FloatModelsTargetGpu)
{
    nnapi::Compilation comp(
        models::buildGraph("efficientnet_lite0", DType::Float32),
        DType::Float32);
    EXPECT_TRUE(comp.plan().usesAccelerator());
}

TEST(Nnapi, InceptionFloatPartiallyOffloaded)
{
    nnapi::Compilation comp(
        models::buildGraph("inception_v3", DType::Float32),
        DType::Float32);
    const double share = comp.plan().acceleratedMacShare();
    EXPECT_GT(share, 0.3);
    EXPECT_LT(share, 0.85);
}

TEST(Nnapi, BurstPlanReducesPerOpOverhead)
{
    nnapi::Compilation comp(
        models::buildGraph("mobilenet_v1", DType::UInt8), DType::UInt8);
    sim::DurationNs plain = 0;
    sim::DurationNs burst = 0;
    for (const auto &p : comp.plan().partitions)
        plain += p.opOverheadNs;
    for (const auto &p : comp.burstPlan().partitions)
        burst += p.opOverheadNs;
    EXPECT_GT(plain, 0);
    EXPECT_LT(burst, plain / 2);
    // Everything else is unchanged.
    EXPECT_EQ(comp.burstPlan().partitions.size(),
              comp.plan().partitions.size());
    EXPECT_DOUBLE_EQ(comp.burstPlan().acceleratedMacShare(),
                     comp.plan().acceleratedMacShare());
}

TEST(Nnapi, BurstExecutionIsFaster)
{
    auto run = [&](bool burst) {
        tflite::InterpreterOptions opts;
        opts.delegate = tflite::DelegateKind::Nnapi;
        opts.useNnapiBurst = burst;
        tflite::Interpreter interp(
            models::buildGraph("mobilenet_v1", DType::UInt8),
            DType::UInt8, opts);
        soc::SocSystem sys(soc::makeSnapdragon845(), 3);
        auto task = std::make_shared<soc::Task>("burst_test");
        interp.appendInvoke(sys, *task, {});
        sim::TimeNs done = 0;
        task->setOnComplete([&](sim::TimeNs t) { done = t; });
        sys.scheduler().submit(task);
        sys.run();
        return done;
    };
    EXPECT_LT(run(true), run(false));
}

TEST(Nnapi, CompileCostGrowsWithPartitions)
{
    nnapi::Compilation one(
        models::buildGraph("mobilenet_v1", DType::UInt8), DType::UInt8);
    nnapi::Compilation many(
        models::buildGraph("inception_v3", DType::Float32),
        DType::Float32);
    EXPECT_GT(many.compileNs(), one.compileNs());
}

// --- graceful degradation ---------------------------------------------

TEST(Degradation, ChainStepsDownAndTerminates)
{
    using drivers::Target;
    // DSP work falls to the GPU, then to optimized CPU kernels.
    const auto from_dsp = degradationChainAfter(Target::Dsp);
    ASSERT_EQ(from_dsp.size(), 2u);
    EXPECT_EQ(from_dsp[0], Target::Gpu);
    EXPECT_EQ(from_dsp[1], Target::CpuThreads);
    // GPU work has only the CPU left.
    const auto from_gpu = degradationChainAfter(Target::Gpu);
    ASSERT_EQ(from_gpu.size(), 1u);
    EXPECT_EQ(from_gpu[0], Target::CpuThreads);
    // CPU work has nowhere to go: the chain must terminate.
    EXPECT_TRUE(degradationChainAfter(Target::CpuThreads).empty());
    EXPECT_TRUE(
        degradationChainAfter(Target::CpuSingleThreadReference).empty());
}

TEST(Nnapi, FallbackPlanIsAllCpuReference)
{
    // The last-resort recompilation target must never itself depend
    // on an accelerator, whatever the primary plan looked like.
    nnapi::Compilation comp(
        models::buildGraph("mobilenet_v1", DType::UInt8), DType::UInt8);
    EXPECT_TRUE(comp.plan().usesAccelerator());
    const auto &fb = comp.fallbackPlan();
    EXPECT_FALSE(fb.usesAccelerator());
    ASSERT_EQ(fb.partitions.size(), 1u);
    EXPECT_EQ(fb.partitions[0].driver->target(),
              drivers::Target::CpuSingleThreadReference);
    EXPECT_EQ(fb.partitions[0].opCount,
              models::buildGraph("mobilenet_v1", DType::UInt8).opCount());
}

// --- SNPE -------------------------------------------------------------

TEST(Snpe, DspTargetFullyAccelerated)
{
    snpe::Network net(models::buildGraph("mobilenet_v1", DType::UInt8),
                      DType::UInt8);
    EXPECT_EQ(net.target(), snpe::RuntimeTarget::Dsp);
    EXPECT_NEAR(net.plan().acceleratedMacShare(), 1.0, 1e-9);
    EXPECT_GT(net.initNs(), 0);
}

TEST(Snpe, HandlesEfficientNetOnDsp)
{
    // Unlike the NNAPI vendor driver, SNPE runs all of
    // EfficientNet-Lite0's ops on the DSP.
    snpe::Network net(
        models::buildGraph("efficientnet_lite0", DType::UInt8),
        DType::UInt8);
    EXPECT_NEAR(net.plan().acceleratedMacShare(), 1.0, 1e-9);
}

TEST(Snpe, CpuTargetStaysOnCpu)
{
    snpe::Network net(models::buildGraph("mobilenet_v1", DType::UInt8),
                      DType::UInt8, snpe::RuntimeTarget::Cpu);
    EXPECT_FALSE(net.plan().usesAccelerator());
}

TEST(Snpe, FloatModelRunsAsFp16OnDsp)
{
    snpe::Network net(
        models::buildGraph("mobilenet_v1", DType::Float32),
        DType::Float32);
    EXPECT_TRUE(net.plan().usesAccelerator());
    // Executes without assertion failures (fp32 jobs map to fp16).
    soc::SocSystem sys(soc::makeSnapdragon845());
    auto task = std::make_shared<soc::Task>("snpe_fp");
    net.appendInvoke(sys, *task, {});
    sys.scheduler().submit(task);
    sys.run();
    EXPECT_EQ(sys.dsp().jobsCompleted(), 1);
}

} // namespace
} // namespace aitax::runtime
