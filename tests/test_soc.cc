/**
 * @file
 * Unit tests for the SoC substrate: scheduler, accelerators, FastRPC,
 * thermal model, interference and chipset presets.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "soc/accelerator.h"
#include "soc/chipsets.h"
#include "soc/dvfs.h"
#include "soc/energy.h"
#include "soc/fastrpc.h"
#include "soc/interference.h"
#include "soc/memory.h"
#include "soc/scheduler.h"
#include "soc/system.h"
#include "soc/task.h"
#include "soc/thermal.h"

namespace aitax::soc {
namespace {

using tensor::DType;

SocConfig
testConfig()
{
    return makeSnapdragon845();
}

// --- configs / chipsets ------------------------------------------------

TEST(CpuCoreConfig, OpsPerCycleByClass)
{
    CpuCoreConfig c;
    c.scalarOpsPerCycle = 1.0;
    c.f32OpsPerCycle = 4.0;
    c.i8OpsPerCycle = 8.0;
    EXPECT_DOUBLE_EQ(c.opsPerCycle(WorkClass::Scalar), 1.0);
    EXPECT_DOUBLE_EQ(c.opsPerCycle(WorkClass::VectorF32), 4.0);
    EXPECT_DOUBLE_EQ(c.opsPerCycle(WorkClass::VectorI8), 8.0);
}

TEST(Chipsets, FourTableIIPlatforms)
{
    const auto all = allPlatforms();
    ASSERT_EQ(all.size(), 4u);
    EXPECT_EQ(all[0].socName, "Snapdragon 835");
    EXPECT_EQ(all[3].socName, "Snapdragon 865");
    EXPECT_EQ(all[1].name, "Google Pixel 3");
    EXPECT_EQ(all[1].gpu.name, "Adreno 630");
    EXPECT_EQ(all[1].dsp.name, "Hexagon 685");
}

TEST(Chipsets, EightCoreBigLittle)
{
    const auto cfg = testConfig();
    ASSERT_EQ(cfg.cluster.cores.size(), 8u);
    int bigs = 0;
    for (const auto &c : cfg.cluster.cores)
        bigs += c.big;
    EXPECT_EQ(bigs, 4);
}

TEST(Chipsets, GenerationalPerformanceMonotonic)
{
    const auto all = allPlatforms();
    for (std::size_t i = 1; i < all.size(); ++i) {
        EXPECT_GT(all[i].dsp.i8OpsPerSec, all[i - 1].dsp.i8OpsPerSec);
        EXPECT_GT(all[i].gpu.f32OpsPerSec, all[i - 1].gpu.f32OpsPerSec);
    }
}

TEST(Chipsets, DspHasNoNativeFp32)
{
    for (const auto &cfg : allPlatforms()) {
        EXPECT_EQ(cfg.dsp.f32OpsPerSec, 0.0) << cfg.socName;
        EXPECT_GT(cfg.dsp.i8OpsPerSec, 0.0);
    }
}

TEST(Chipsets, LookupByName)
{
    EXPECT_EQ(platformByName("Snapdragon 855").gpu.name, "Adreno 640");
}

// --- thermal -----------------------------------------------------------

TEST(Thermal, DisabledAlwaysFullSpeed)
{
    sim::Simulator sim;
    ThermalConfig cfg;
    cfg.enabled = false;
    ThermalModel t(cfg, sim);
    t.addHeat(100.0);
    EXPECT_DOUBLE_EQ(t.speedFactor(), 1.0);
}

TEST(Thermal, HeatsAndThrottles)
{
    sim::Simulator sim;
    ThermalConfig cfg;
    cfg.enabled = true;
    cfg.heatPerBusySec = 1.0;
    cfg.throttleThreshold = 2.0;
    cfg.throttledFactor = 0.7;
    ThermalModel t(cfg, sim);
    t.addHeat(1.0);
    EXPECT_DOUBLE_EQ(t.speedFactor(), 1.0); // below threshold
    t.addHeat(3.0);                          // heat = 4 = 2x threshold
    EXPECT_NEAR(t.speedFactor(), 0.7, 1e-9);
    t.addHeat(100.0);
    EXPECT_NEAR(t.speedFactor(), 0.7, 1e-9); // clamped
}

TEST(Thermal, EmergencyEnablesAndThrottles)
{
    sim::Simulator sim;
    ThermalConfig cfg; // enabled = false, like most presets
    cfg.throttleThreshold = 2.0;
    cfg.throttledFactor = 0.7;
    ThermalModel t(cfg, sim);
    t.addHeat(100.0);
    EXPECT_DOUBLE_EQ(t.speedFactor(), 1.0); // disabled: no effect
    // An injected emergency force-enables the model and throttles
    // even platforms whose preset keeps thermal off.
    t.triggerEmergency(100.0);
    EXPECT_NEAR(t.speedFactor(), 0.7, 1e-9);
}

TEST(Thermal, CoolsOverTime)
{
    sim::Simulator sim;
    ThermalConfig cfg;
    cfg.enabled = true;
    cfg.coolingTauSec = 1.0;
    ThermalModel t(cfg, sim);
    t.addHeat(4.0);
    const double hot = t.heatLevel();
    sim.scheduleIn(sim::secToNs(2.0), [] {});
    sim.run();
    EXPECT_LT(t.heatLevel(), hot * 0.2); // two time constants
}

TEST(Thermal, ResetClears)
{
    sim::Simulator sim;
    ThermalConfig cfg;
    cfg.enabled = true;
    ThermalModel t(cfg, sim);
    t.addHeat(10.0);
    t.reset();
    EXPECT_DOUBLE_EQ(t.heatLevel(), 0.0);
}

// --- scheduler -----------------------------------------------------------

TEST(Scheduler, SingleComputeTaskTiming)
{
    SocSystem sys(testConfig());
    // 3.64e6 scalar ops at 2.8 GHz x 1.3 ops/cycle = 1 ms on a big core.
    auto task = std::make_shared<Task>("t");
    task->compute({3.64e6, 0.0}, WorkClass::Scalar);
    sim::TimeNs done = 0;
    task->setOnComplete([&](sim::TimeNs t) { done = t; });
    sys.scheduler().submit(task);
    sys.run();
    // 5 us context switch + ~1 ms compute.
    EXPECT_NEAR(sim::nsToMs(done), 1.005, 0.01);
    EXPECT_EQ(task->state(), TaskState::Done);
}

TEST(Scheduler, ForegroundPrefersBigCore)
{
    SocSystem sys(testConfig());
    auto task = std::make_shared<Task>("fg");
    task->compute({1e6, 0.0}, WorkClass::Scalar);
    sys.scheduler().submit(task);
    sys.run();
    // Big cores are indices 4..7.
    EXPECT_GE(task->lastCore(), 4);
}

TEST(Scheduler, BackgroundPrefersLittleCore)
{
    SocSystem sys(testConfig());
    auto task = std::make_shared<Task>("bg", /*background=*/true);
    task->compute({1e6, 0.0}, WorkClass::Scalar);
    sys.scheduler().submit(task);
    sys.run();
    EXPECT_LT(task->lastCore(), 4);
}

TEST(Scheduler, ParallelTasksUseSeparateCores)
{
    SocSystem sys(testConfig());
    // Two 1 ms tasks should finish in ~1 ms, not ~2 ms.
    sim::TimeNs last = 0;
    for (int i = 0; i < 2; ++i) {
        auto task = std::make_shared<Task>("p" + std::to_string(i));
        task->compute({3.64e6, 0.0}, WorkClass::Scalar);
        task->setOnComplete(
            [&](sim::TimeNs t) { last = std::max(last, t); });
        sys.scheduler().submit(task);
    }
    sys.run();
    EXPECT_LT(sim::nsToMs(last), 1.2);
}

TEST(Scheduler, OversubscriptionSharesWithRoundRobin)
{
    // 9 foreground tasks on 8 cores: at least one pair must share, so
    // completion of the last task takes roughly twice one task's time.
    SocSystem sys(testConfig());
    sim::TimeNs last = 0;
    for (int i = 0; i < 9; ++i) {
        auto task = std::make_shared<Task>("q" + std::to_string(i));
        // 13 ms on a big core (several time slices).
        task->compute({3.64e6 * 13, 0.0}, WorkClass::Scalar);
        task->setOnComplete(
            [&](sim::TimeNs t) { last = std::max(last, t); });
        sys.scheduler().submit(task);
    }
    sys.run();
    EXPECT_GT(sys.scheduler().contextSwitches(), 0);
    // Little cores are ~3.6x slower on scalar work; the shared pair on
    // a big core finishes around 26 ms, stragglers on little cores
    // around 37 ms. It must exceed a single task's isolated time.
    EXPECT_GT(sim::nsToMs(last), 20.0);
}

TEST(Scheduler, MarkersFireInOrderWithTimestamps)
{
    SocSystem sys(testConfig());
    std::vector<sim::TimeNs> ts;
    auto task = std::make_shared<Task>("m");
    task->marker([&](sim::TimeNs t) { ts.push_back(t); });
    task->compute({3.64e6, 0.0}, WorkClass::Scalar);
    task->marker([&](sim::TimeNs t) { ts.push_back(t); });
    task->compute({3.64e6, 0.0}, WorkClass::Scalar);
    task->marker([&](sim::TimeNs t) { ts.push_back(t); });
    sys.scheduler().submit(task);
    sys.run();
    ASSERT_EQ(ts.size(), 3u);
    EXPECT_LT(ts[0], ts[1]);
    EXPECT_LT(ts[1], ts[2]);
    EXPECT_NEAR(sim::nsToMs(ts[1] - ts[0]), 1.0, 0.02);
}

TEST(Scheduler, SleepReleasesCore)
{
    SocSystem sys(testConfig());
    auto sleeper = std::make_shared<Task>("sleeper");
    sleeper->sleep(sim::msToNs(10.0));
    sim::TimeNs sleeper_done = 0;
    sleeper->setOnComplete([&](sim::TimeNs t) { sleeper_done = t; });
    sys.scheduler().submit(sleeper);
    sys.run();
    EXPECT_NEAR(sim::nsToMs(sleeper_done), 10.0, 0.1);
}

TEST(Scheduler, BlockStepResumes)
{
    SocSystem sys(testConfig());
    auto task = std::make_shared<Task>("blocker");
    bool external_ran = false;
    task->block([&](Task &, std::function<void()> resume) {
        external_ran = true;
        sys.simulator().scheduleIn(sim::msToNs(5.0), resume);
    });
    task->compute({3.64e6, 0.0}, WorkClass::Scalar);
    sim::TimeNs done = 0;
    task->setOnComplete([&](sim::TimeNs t) { done = t; });
    sys.scheduler().submit(task);
    sys.run();
    EXPECT_TRUE(external_ran);
    EXPECT_NEAR(sim::nsToMs(done), 6.0, 0.1);
}

TEST(Scheduler, MemoryBoundWorkUsesByteRate)
{
    SocSystem sys(testConfig());
    // 6.5e6 bytes at 6.5 GB/s = 1 ms, with negligible flops.
    auto task = std::make_shared<Task>("memcpyish");
    task->compute({10.0, 6.5e6}, WorkClass::Scalar);
    sim::TimeNs done = 0;
    task->setOnComplete([&](sim::TimeNs t) { done = t; });
    sys.scheduler().submit(task);
    sys.run();
    EXPECT_NEAR(sim::nsToMs(done), 1.005, 0.02);
}

TEST(Scheduler, TracksCoreIntervals)
{
    SocSystem sys(testConfig());
    auto task = std::make_shared<Task>("traced");
    task->compute({3.64e6, 0.0}, WorkClass::Scalar);
    sys.scheduler().submit(task);
    sys.run();
    bool found = false;
    for (const auto &name : sys.tracer().trackNames())
        for (const auto &iv : sys.tracer().intervals(name))
            found |= (iv.label == "traced");
    EXPECT_TRUE(found);
}

TEST(Scheduler, VectorClassesRunFasterThanScalar)
{
    SocSystem sys(testConfig());
    sim::TimeNs scalar_done = 0;
    sim::TimeNs vector_done = 0;
    auto s = std::make_shared<Task>("s");
    s->compute({10e6, 0.0}, WorkClass::Scalar);
    s->setOnComplete([&](sim::TimeNs t) { scalar_done = t; });
    auto v = std::make_shared<Task>("v");
    v->compute({10e6, 0.0}, WorkClass::VectorI8);
    v->setOnComplete([&](sim::TimeNs t) { vector_done = t; });
    sys.scheduler().submit(s);
    sys.scheduler().submit(v);
    sys.run();
    EXPECT_LT(vector_done, scalar_done);
}

TEST(Scheduler, LoadBalanceMigrationsAreDeterministic)
{
    auto run_once = [] {
        SocSystem sys(testConfig(), 5);
        // One long-running lone task: migration churn comes only from
        // the load balancer's seeded RNG.
        auto task = std::make_shared<Task>("lone");
        task->compute({3.64e6 * 200, 0.0}, WorkClass::Scalar);
        sys.scheduler().submit(task);
        sys.run();
        return sys.scheduler().migrations();
    };
    const auto a = run_once();
    EXPECT_GT(a, 0); // ~200 ms of slices at p=0.12
    EXPECT_EQ(a, run_once());
}

// --- accelerator -----------------------------------------------------------

TEST(Accelerator, FormatSupport)
{
    sim::Simulator sim;
    trace::Tracer tracer;
    Accelerator dsp(sim, testConfig().dsp, tracer);
    EXPECT_FALSE(dsp.supportsFormat(DType::Float32));
    EXPECT_TRUE(dsp.supportsFormat(DType::Float16));
    EXPECT_TRUE(dsp.supportsFormat(DType::UInt8));

    Accelerator gpu(sim, testConfig().gpu, tracer);
    EXPECT_TRUE(gpu.supportsFormat(DType::Float32));
}

TEST(Accelerator, ExecDurationRoofline)
{
    sim::Simulator sim;
    trace::Tracer tracer;
    auto cfg = testConfig().dsp; // 110 Gops int8, 80 us overhead
    Accelerator dsp(sim, cfg, tracer);
    const auto d = dsp.execDuration(110e6, 0.0, DType::UInt8);
    EXPECT_NEAR(sim::nsToMs(d), 1.0 + 0.08, 0.01);
    // Byte-bound job: 12e6 bytes at 12 GB/s = 1 ms.
    const auto b = dsp.execDuration(10.0, 12e6, DType::UInt8);
    EXPECT_NEAR(sim::nsToMs(b), 1.0 + 0.08, 0.01);
}

TEST(Accelerator, FifoQueueing)
{
    sim::Simulator sim;
    trace::Tracer tracer;
    Accelerator dsp(sim, testConfig().dsp, tracer);
    std::vector<sim::TimeNs> completions;
    for (int i = 0; i < 3; ++i) {
        AccelJob job;
        job.name = "j" + std::to_string(i);
        job.ops = 110e6; // ~1.08 ms each
        job.format = DType::UInt8;
        job.onDone = [&](const AccelCompletion &c) {
            completions.push_back(c.finishedAt);
        };
        dsp.submit(std::move(job));
    }
    EXPECT_EQ(dsp.queueDepth(), 2u);
    sim.run();
    ASSERT_EQ(completions.size(), 3u);
    // Serialized: roughly 1.08, 2.16, 3.24 ms.
    EXPECT_NEAR(sim::nsToMs(completions[1] - completions[0]),
                sim::nsToMs(completions[0]), 0.01);
    EXPECT_EQ(dsp.jobsCompleted(), 3);
    EXPECT_FALSE(dsp.busy());
}

// --- FastRPC -----------------------------------------------------------

TEST(FastRpc, FirstCallPaysSessionOpen)
{
    sim::Simulator sim;
    trace::Tracer tracer;
    Accelerator dsp(sim, testConfig().dsp, tracer);
    FastRpcChannel rpc(sim, testConfig().fastrpc, dsp);

    std::vector<FastRpcBreakdown> log;
    for (int i = 0; i < 2; ++i) {
        AccelJob job;
        job.ops = 110e6;
        job.format = DType::UInt8;
        rpc.call(1, 1e6, std::move(job),
                 [&](const FastRpcBreakdown &b) { log.push_back(b); });
        sim.run();
    }
    ASSERT_EQ(log.size(), 2u);
    EXPECT_EQ(log[0].sessionOpenNs, sim::msToNs(15.0));
    EXPECT_EQ(log[1].sessionOpenNs, 0);
    EXPECT_GT(log[0].overheadNs(), log[1].overheadNs());
    EXPECT_GT(log[1].dspExecNs, 0);
    EXPECT_EQ(log[1].totalNs(),
              log[1].overheadNs() + log[1].dspExecNs);
}

TEST(FastRpc, SessionsArePerProcess)
{
    sim::Simulator sim;
    trace::Tracer tracer;
    Accelerator dsp(sim, testConfig().dsp, tracer);
    FastRpcChannel rpc(sim, testConfig().fastrpc, dsp);
    std::vector<FastRpcBreakdown> log;
    auto call = [&](std::int32_t pid) {
        AccelJob job;
        job.ops = 1e6;
        job.format = DType::UInt8;
        rpc.call(pid, 1e3, std::move(job),
                 [&](const FastRpcBreakdown &b) { log.push_back(b); });
        sim.run();
    };
    call(1);
    call(2);
    ASSERT_EQ(log.size(), 2u);
    EXPECT_GT(log[1].sessionOpenNs, 0); // new process pays again
    EXPECT_TRUE(rpc.sessionOpen(1));
    EXPECT_TRUE(rpc.sessionOpen(2));
    rpc.closeSession(1);
    EXPECT_FALSE(rpc.sessionOpen(1));
}

TEST(FastRpc, CacheFlushScalesWithPayload)
{
    sim::Simulator sim;
    trace::Tracer tracer;
    Accelerator dsp(sim, testConfig().dsp, tracer);
    FastRpcChannel rpc(sim, testConfig().fastrpc, dsp);
    std::vector<FastRpcBreakdown> log;
    auto call = [&](double payload) {
        AccelJob job;
        job.ops = 1e6;
        job.format = DType::UInt8;
        rpc.call(1, payload, std::move(job),
                 [&](const FastRpcBreakdown &b) { log.push_back(b); });
        sim.run();
    };
    call(8e6);  // 1 ms at 8 GB/s
    call(16e6); // 2 ms
    EXPECT_NEAR(sim::nsToMs(log[0].cacheFlushNs), 1.0, 0.01);
    EXPECT_NEAR(sim::nsToMs(log[1].cacheFlushNs), 2.0, 0.01);
}

/**
 * Regression for the offload-tax misattribution bug: queue wait used
 * to be derived as (elapsed - exec estimate), with the estimate taken
 * at *enqueue* time. Under fabric contention the estimate embeds the
 * derate of the moment the job is queued; if contention clears before
 * the job dispatches, the actual execution is faster than estimated
 * and the residual "queue wait" goes negative. The fixed accounting
 * uses the accelerator's observed dispatch/completion times.
 *
 * Timeline (all values exact):
 *   t=0      GPU job G dispatches alone (800 KB @ 10 GB/s = 80 us) and
 *            DSP job A dispatches (1e8 ops @ 1e12 ops/s = 100 us,
 *            ops-bound so the derate does not matter).
 *   t=0      rpc.call(B) starts its CPU stages (30 + 20 = 50 us).
 *   t=50us   B lands in the DSP queue behind A. Clients active: G, A
 *            -> derate 1/(1 + 2.0 * 1) = 1/3; the old estimate for the
 *            memory-bound B was 1 MB / (10 GB/s / 3) = 300 us.
 *   t=80us   G finishes; the fabric clears.
 *   t=100us  A finishes, B dispatches alone: actual exec 100 us.
 *   t=200us  B finishes. Old accounting: queueWait = (200 - 50)
 *            - 300 = -150 us. Fixed: queueWait = 100 - 50 = 50 us.
 */
TEST(FastRpc, QueueWaitNonNegativeUnderFabricContention)
{
    sim::Simulator sim;
    trace::Tracer tracer;
    MemoryFabricConfig fabric_cfg;
    fabric_cfg.contentionEnabled = true;
    fabric_cfg.deratePerClient = 2.0;
    fabric_cfg.minFactor = 0.1;
    MemoryFabric fabric(fabric_cfg);

    AcceleratorConfig gpu_cfg;
    gpu_cfg.name = "gpu";
    gpu_cfg.kind = AcceleratorKind::Gpu;
    gpu_cfg.f32OpsPerSec = 1e12;
    gpu_cfg.memBytesPerSec = 10e9;
    gpu_cfg.perJobOverheadNs = 0;
    Accelerator gpu(sim, gpu_cfg, tracer, nullptr, &fabric);

    AcceleratorConfig dsp_cfg;
    dsp_cfg.name = "dsp";
    dsp_cfg.i8OpsPerSec = 1e12;
    dsp_cfg.memBytesPerSec = 10e9;
    dsp_cfg.perJobOverheadNs = 0;
    Accelerator dsp(sim, dsp_cfg, tracer, nullptr, &fabric);

    FastRpcConfig rpc_cfg;
    rpc_cfg.sessionOpenNs = 0;
    rpc_cfg.userToKernelNs = sim::usToNs(30.0);
    rpc_cfg.kernelSignalNs = sim::usToNs(20.0);
    FastRpcChannel rpc(sim, rpc_cfg, dsp);

    AccelJob g;
    g.name = "G";
    g.ops = 10.0;
    g.bytes = 800e3;
    g.format = DType::Float32;
    gpu.submit(std::move(g));

    AccelJob a;
    a.name = "A";
    a.ops = 1e8;
    a.format = DType::UInt8;
    dsp.submit(std::move(a));

    AccelJob b;
    b.name = "B";
    b.ops = 1.0;
    b.bytes = 1e6;
    b.format = DType::UInt8;
    std::vector<FastRpcBreakdown> log;
    rpc.call(1, 0.0, std::move(b),
             [&](const FastRpcBreakdown &bd) { log.push_back(bd); });
    sim.run();

    ASSERT_EQ(log.size(), 1u);
    EXPECT_GE(log[0].queueWaitNs, 0);
    EXPECT_EQ(log[0].queueWaitNs, sim::usToNs(50.0));
    EXPECT_EQ(log[0].dspExecNs, sim::usToNs(100.0));
    EXPECT_EQ(log[0].totalNs(),
              log[0].overheadNs() + log[0].dspExecNs);
}

TEST(FastRpc, DropAllSessionsForcesReopen)
{
    sim::Simulator sim;
    trace::Tracer tracer;
    Accelerator dsp(sim, testConfig().dsp, tracer);
    FastRpcChannel rpc(sim, testConfig().fastrpc, dsp);
    std::vector<FastRpcBreakdown> log;
    auto call = [&] {
        AccelJob job;
        job.ops = 1e6;
        job.format = DType::UInt8;
        rpc.call(1, 1e3, std::move(job),
                 [&](const FastRpcBreakdown &b) { log.push_back(b); });
        sim.run();
    };
    call();
    rpc.dropAllSessions(); // injected DSP subsystem restart
    EXPECT_FALSE(rpc.sessionOpen(1));
    call();
    ASSERT_EQ(log.size(), 2u);
    EXPECT_GT(log[0].sessionOpenNs, 0);
    EXPECT_GT(log[1].sessionOpenNs, 0); // cold start re-paid (Fig 8)
}

// Misconfigured rate parameters must abort in every build mode: under
// NDEBUG a zero rate reaches a division and the inf -> int64 cast is
// undefined behaviour, so construction fails loudly instead.

TEST(AcceleratorDeathTest, RejectsConfigWithNoComputeRate)
{
    auto cfg = testConfig().dsp;
    cfg.f32OpsPerSec = 0.0;
    cfg.f16OpsPerSec = 0.0;
    cfg.i8OpsPerSec = 0.0;
    EXPECT_DEATH(
        {
            sim::Simulator sim;
            trace::Tracer tracer;
            Accelerator dsp(sim, cfg, tracer);
        },
        "no positive ops rate");
}

TEST(AcceleratorDeathTest, RejectsNonPositiveMemoryBandwidth)
{
    auto cfg = testConfig().dsp;
    cfg.memBytesPerSec = 0.0;
    EXPECT_DEATH(
        {
            sim::Simulator sim;
            trace::Tracer tracer;
            Accelerator dsp(sim, cfg, tracer);
        },
        "non-positive memBytesPerSec");
}

TEST(FastRpcDeathTest, RejectsNonPositiveCacheFlushRate)
{
    auto cfg = testConfig();
    cfg.fastrpc.cacheFlushBytesPerSec = 0.0;
    EXPECT_DEATH(
        {
            sim::Simulator sim;
            trace::Tracer tracer;
            Accelerator dsp(sim, cfg.dsp, tracer);
            FastRpcChannel rpc(sim, cfg.fastrpc, dsp);
        },
        "non-positive cacheFlushBytesPerSec");
}

TEST(FastRpc, QueueWaitWhenDspBusy)
{
    sim::Simulator sim;
    trace::Tracer tracer;
    Accelerator dsp(sim, testConfig().dsp, tracer);
    FastRpcChannel rpc(sim, testConfig().fastrpc, dsp);
    std::vector<FastRpcBreakdown> log;
    auto issue = [&] {
        AccelJob job;
        job.ops = 110e6;
        job.format = DType::UInt8;
        rpc.call(1, 1e3, std::move(job),
                 [&](const FastRpcBreakdown &b) { log.push_back(b); });
    };
    // Warm the session so both measured calls enqueue concurrently.
    issue();
    sim.run();
    issue();
    issue();
    sim.run();
    ASSERT_EQ(log.size(), 3u);
    EXPECT_LT(log[1].queueWaitNs, sim::usToNs(100.0));
    EXPECT_GT(log[2].queueWaitNs, sim::usToNs(500.0));
    EXPECT_EQ(rpc.callsCompleted(), 3);
}

// --- interference ----------------------------------------------------------

TEST(Interference, InjectsTasks)
{
    SocSystem sys(testConfig());
    InterferenceConfig cfg;
    cfg.daemonRatePerSec = 100.0;
    InterferenceGenerator gen(sys.simulator(), sys.scheduler(), cfg,
                              sim::RandomStream(5, "i"));
    gen.start(sim::secToNs(0.5));
    sys.run();
    // ~30 UI frames + ~50 daemons.
    EXPECT_GT(gen.tasksInjected(), 40);
    EXPECT_LT(gen.tasksInjected(), 120);
}

TEST(Interference, DisabledInjectsNothing)
{
    SocSystem sys(testConfig());
    InterferenceConfig cfg;
    cfg.enabled = false;
    InterferenceGenerator gen(sys.simulator(), sys.scheduler(), cfg,
                              sim::RandomStream(5, "i"));
    gen.start(sim::secToNs(1.0));
    sys.run();
    EXPECT_EQ(gen.tasksInjected(), 0);
}

TEST(Interference, DeterministicAcrossRuns)
{
    auto run = [] {
        SocSystem sys(testConfig(), 9);
        InterferenceConfig cfg;
        InterferenceGenerator gen(sys.simulator(), sys.scheduler(), cfg,
                                  sim::RandomStream(9, "i"));
        gen.start(sim::secToNs(0.3));
        sys.run();
        return gen.tasksInjected();
    };
    EXPECT_EQ(run(), run());
}


// --- energy ------------------------------------------------------------

TEST(Energy, DomainNames)
{
    EXPECT_EQ(powerDomainName(PowerDomain::BigCpu), "big-cpu");
    EXPECT_EQ(powerDomainName(PowerDomain::Dsp), "dsp");
}

TEST(Energy, DynamicEnergyArithmetic)
{
    EnergyConfig cfg;
    cfg.bigCpuPjPerOp = 100.0;
    EnergyMeter meter(cfg);
    meter.addDynamic(PowerDomain::BigCpu, 1e9); // 1e9 ops * 100 pJ
    EXPECT_NEAR(meter.domainMj(PowerDomain::BigCpu), 100.0, 1e-9);
    EXPECT_NEAR(meter.totalMj(), 100.0, 1e-9);
}

TEST(Energy, StaticEnergyArithmetic)
{
    EnergyConfig cfg;
    cfg.dspStaticMw = 60.0;
    EnergyMeter meter(cfg);
    meter.addStatic(PowerDomain::Dsp, sim::secToNs(2.0)); // 120 mJ
    EXPECT_NEAR(meter.domainMj(PowerDomain::Dsp), 120.0, 1e-9);
}

TEST(Energy, DomainsAreIndependent)
{
    EnergyMeter meter;
    meter.addDynamic(PowerDomain::Gpu, 1e9);
    EXPECT_GT(meter.domainMj(PowerDomain::Gpu), 0.0);
    EXPECT_DOUBLE_EQ(meter.domainMj(PowerDomain::BigCpu), 0.0);
    meter.reset();
    EXPECT_DOUBLE_EQ(meter.totalMj(), 0.0);
}

TEST(Energy, DefaultEfficiencyOrdering)
{
    const EnergyConfig cfg;
    EXPECT_LT(cfg.dspPjPerOp, cfg.gpuPjPerOp);
    EXPECT_LT(cfg.gpuPjPerOp, cfg.littleCpuPjPerOp);
    EXPECT_LT(cfg.littleCpuPjPerOp, cfg.bigCpuPjPerOp);
}

TEST(Energy, SchedulerChargesCpuWork)
{
    SocSystem sys(testConfig());
    auto task = std::make_shared<Task>("hot");
    task->compute({1e9, 0.0}, WorkClass::VectorF32);
    sys.scheduler().submit(task);
    sys.run();
    EXPECT_GT(sys.energy().domainMj(PowerDomain::BigCpu), 0.0);
    EXPECT_DOUBLE_EQ(sys.energy().domainMj(PowerDomain::Dsp), 0.0);
}

TEST(Energy, AcceleratorChargesItsDomain)
{
    SocSystem sys(testConfig());
    AccelJob job;
    job.ops = 1e9;
    job.format = DType::UInt8;
    sys.dsp().submit(std::move(job));
    sys.run();
    EXPECT_GT(sys.energy().domainMj(PowerDomain::Dsp), 0.0);
    EXPECT_DOUBLE_EQ(sys.energy().domainMj(PowerDomain::Gpu), 0.0);
}

// --- task state machine -----------------------------------------------------

TEST(Task, EmptyTaskCompletesImmediately)
{
    SocSystem sys(testConfig());
    auto task = std::make_shared<Task>("empty");
    sim::TimeNs done = -1;
    task->setOnComplete([&](sim::TimeNs t) { done = t; });
    sys.scheduler().submit(task);
    sys.run();
    // Only the dispatch context-switch elapses.
    EXPECT_NEAR(sim::nsToUs(done), 5.0, 0.5);
}

TEST(Task, NullMarkerAndMissingCompletionAreHarmless)
{
    SocSystem sys(testConfig());
    auto task = std::make_shared<Task>("quiet");
    task->marker({}); // no callback
    task->compute({1e3, 0.0}, WorkClass::Scalar);
    // No onComplete set.
    sys.scheduler().submit(task);
    sys.run();
    EXPECT_EQ(task->state(), TaskState::Done);
}

TEST(Task, StepsCanBeAppendedWhileRunning)
{
    SocSystem sys(testConfig());
    auto task = std::make_shared<Task>("self_extend");
    int phase = 0;
    task->compute({3.64e6, 0.0}, WorkClass::Scalar);
    task->marker([&](sim::TimeNs) {
        phase = 1;
        // Self-extending program: append more work mid-flight.
        task->compute({3.64e6, 0.0}, WorkClass::Scalar);
        task->marker([&](sim::TimeNs) { phase = 2; });
    });
    sys.scheduler().submit(task);
    sys.run();
    EXPECT_EQ(phase, 2);
    EXPECT_EQ(task->state(), TaskState::Done);
}

// --- memory fabric ---------------------------------------------------------

TEST(MemoryFabric, DisabledNeverDerates)
{
    MemoryFabric fabric;
    fabric.onClientChange(+5);
    EXPECT_DOUBLE_EQ(fabric.derateFactor(), 1.0);
}

TEST(MemoryFabric, DeratesWithClients)
{
    MemoryFabricConfig cfg;
    cfg.contentionEnabled = true;
    cfg.deratePerClient = 0.15;
    MemoryFabric fabric(cfg);
    EXPECT_DOUBLE_EQ(fabric.derateFactor(), 1.0); // idle
    fabric.onClientChange(+1);
    EXPECT_DOUBLE_EQ(fabric.derateFactor(), 1.0); // alone
    fabric.onClientChange(+1);
    EXPECT_NEAR(fabric.derateFactor(), 1.0 / 1.15, 1e-9);
    fabric.onClientChange(+2);
    EXPECT_NEAR(fabric.derateFactor(), 1.0 / 1.45, 1e-9);
    fabric.onClientChange(-3);
    EXPECT_DOUBLE_EQ(fabric.derateFactor(), 1.0);
}

TEST(MemoryFabric, FactorIsFloored)
{
    MemoryFabricConfig cfg;
    cfg.contentionEnabled = true;
    cfg.deratePerClient = 1.0;
    cfg.minFactor = 0.45;
    MemoryFabric fabric(cfg);
    fabric.onClientChange(+50);
    EXPECT_DOUBLE_EQ(fabric.derateFactor(), 0.45);
}

TEST(MemoryFabric, ContentionSlowsMemoryBoundWork)
{
    auto run_once = [&](bool contention) {
        auto cfg = testConfig();
        cfg.fabric.contentionEnabled = contention;
        SocSystem sys(cfg);
        // Two concurrent memory-bound tasks.
        sim::TimeNs last = 0;
        for (int i = 0; i < 2; ++i) {
            auto task =
                std::make_shared<Task>("mem" + std::to_string(i));
            task->compute({10.0, 6.5e6}, WorkClass::Scalar);
            task->setOnComplete(
                [&](sim::TimeNs t) { last = std::max(last, t); });
            sys.scheduler().submit(task);
        }
        sys.run();
        return last;
    };
    EXPECT_GT(run_once(true), run_once(false));
}

// --- DVFS ----------------------------------------------------------------

TEST(Dvfs, DisabledIsAlwaysFullSpeed)
{
    sim::Simulator sim;
    DvfsGovernor gov({}, sim);
    EXPECT_DOUBLE_EQ(gov.factor(true), 1.0);
    EXPECT_DOUBLE_EQ(gov.factor(false), 1.0);
}

TEST(Dvfs, StartsAtFloorAndRampsWhileBusy)
{
    sim::Simulator sim;
    DvfsConfig cfg;
    cfg.enabled = true;
    cfg.minFactor = 0.5;
    cfg.rampUpTauNs = sim::msToNs(10.0);
    DvfsGovernor gov(cfg, sim);
    EXPECT_NEAR(gov.factor(true), 0.5, 1e-9);
    gov.onBusyChange(true, +1);
    sim.scheduleIn(sim::msToNs(30.0), [] {});
    sim.run();
    // Three time constants in: ~95% of the way to 1.0.
    EXPECT_GT(gov.factor(true), 0.95);
}

TEST(Dvfs, DecaysWhenIdle)
{
    sim::Simulator sim;
    DvfsConfig cfg;
    cfg.enabled = true;
    cfg.minFactor = 0.5;
    cfg.rampUpTauNs = sim::msToNs(5.0);
    cfg.decayTauNs = sim::msToNs(50.0);
    DvfsGovernor gov(cfg, sim);
    gov.onBusyChange(false, +1);
    sim.scheduleIn(sim::msToNs(50.0), [] {});
    sim.run();
    const double hot = gov.factor(false);
    gov.onBusyChange(false, -1);
    sim.scheduleIn(sim::msToNs(200.0), [] {});
    sim.run();
    EXPECT_LT(gov.factor(false), hot);
    EXPECT_GE(gov.factor(false), cfg.minFactor);
}

TEST(Dvfs, TiersAreIndependent)
{
    sim::Simulator sim;
    DvfsConfig cfg;
    cfg.enabled = true;
    cfg.minFactor = 0.5;
    cfg.rampUpTauNs = sim::msToNs(5.0);
    DvfsGovernor gov(cfg, sim);
    gov.onBusyChange(true, +1); // only the big tier heats up
    sim.scheduleIn(sim::msToNs(30.0), [] {});
    sim.run();
    EXPECT_GT(gov.factor(true), 0.9);
    EXPECT_NEAR(gov.factor(false), 0.5, 1e-6);
}

TEST(Dvfs, ResetClearsBusyCounters)
{
    sim::Simulator sim;
    DvfsConfig cfg;
    cfg.enabled = true;
    cfg.minFactor = 0.5;
    cfg.rampUpTauNs = sim::msToNs(5.0);
    DvfsGovernor gov(cfg, sim);
    gov.onBusyChange(true, +1);
    // Regression: reset() used to leave busyCores stale, so a freshly
    // reset governor kept ramping toward 1.0 as if still loaded.
    gov.reset();
    sim.scheduleIn(sim::msToNs(50.0), [] {});
    sim.run();
    EXPECT_NEAR(gov.factor(true), 0.5, 1e-6);
    // Busy accounting still works after the reset.
    gov.onBusyChange(true, +1);
    sim.scheduleIn(sim::msToNs(50.0), [] {});
    sim.run();
    EXPECT_GT(gov.factor(true), 0.95);
}

TEST(Dvfs, GovernorSlowsColdStartInScheduler)
{
    auto run_once = [&](bool enabled) {
        auto cfg = testConfig();
        cfg.dvfs.enabled = enabled;
        SocSystem sys(cfg);
        auto task = std::make_shared<Task>("cold");
        task->compute({3.64e6, 0.0}, WorkClass::Scalar);
        sim::TimeNs done = 0;
        task->setOnComplete([&](sim::TimeNs t) { done = t; });
        sys.scheduler().submit(task);
        sys.run();
        return done;
    };
    EXPECT_GT(run_once(true), run_once(false));
}

// --- system ------------------------------------------------------------


TEST(SocSystem, ComponentsWired)
{
    SocSystem sys(testConfig(), 42);
    EXPECT_EQ(sys.config().socName, "Snapdragon 845");
    EXPECT_EQ(sys.scheduler().coreCount(), 8u);
    EXPECT_EQ(sys.dsp().name(), "Hexagon 685");
    EXPECT_EQ(sys.gpu().name(), "Adreno 630");
    EXPECT_TRUE(sys.simulator().idle());
}

} // namespace
} // namespace aitax::soc
