/**
 * @file
 * Equivalence tests for the interned/columnar tracer.
 *
 * The tracer overhaul must be invisible to every consumer: the
 * streaming chrome-trace writer has to match the legacy
 * string-concatenating ostream writer byte for byte (the golden
 * traces were recorded with it), and a scenario recorded through the
 * id-based overloads has to produce identical serialized output and
 * identical utilization/counterRate/countEvents analytics as the same
 * scenario recorded through the legacy string API.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "trace/chrome_trace.h"
#include "trace/tracer.h"

namespace aitax::trace {
namespace {

/**
 * Verbatim replica of the pre-overhaul writeChromeTrace (ostream <<
 * double formatting and all), kept here as the byte-format oracle.
 */
std::string
legacyJsonEscape(const std::string &s)
{
    std::string out;
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          default:
            out += c;
        }
    }
    return out;
}

void
legacyWriteChromeTrace(std::ostream &os, const Tracer &tracer)
{
    os << "[\n";
    bool first = true;
    auto sep = [&] {
        if (!first)
            os << ",\n";
        first = false;
    };

    std::map<std::string, int> tids;
    int next_tid = 1;
    for (const auto &track : tracer.trackNames()) {
        tids[track] = next_tid++;
        sep();
        os << R"({"name":"thread_name","ph":"M","pid":1,"tid":)"
           << tids[track] << R"(,"args":{"name":")"
           << legacyJsonEscape(track) << R"("}})";
    }

    for (const auto &track : tracer.trackNames()) {
        const int tid = tids[track];
        for (const auto &iv : tracer.intervals(track)) {
            sep();
            os << R"({"name":")" << legacyJsonEscape(iv.label)
               << R"(","ph":"X","pid":1,"tid":)" << tid << R"(,"ts":)"
               << static_cast<double>(iv.begin) / 1e3 << R"(,"dur":)"
               << static_cast<double>(iv.end - iv.begin) / 1e3 << "}";
        }
    }

    for (const auto &event : tracer.events()) {
        sep();
        os << R"({"name":")" << legacyJsonEscape(event.kind)
           << R"(","ph":"i","s":"g","pid":1,"tid":0,"ts":)"
           << static_cast<double>(event.when) / 1e3 << R"(,"args":{)"
           << R"("detail":")" << legacyJsonEscape(event.detail)
           << R"("}})";
    }

    os << "\n]\n";
}

/** Tiny deterministic LCG so the scenario covers awkward timestamps. */
struct Lcg
{
    std::uint64_t s = 0x9E3779B97F4A7C15ull;
    std::uint64_t
    next()
    {
        s = s * 6364136223846793005ull + 1442695040888963407ull;
        return s >> 16;
    }
};

struct Op
{
    int track;
    int label;
    sim::TimeNs begin;
    sim::TimeNs end;
    int kind;       // -1 = no event
    double counter; // <= 0 = no counter sample
};

std::vector<Op>
makeScenario()
{
    const int kTracks = 6, kLabels = 12, kKinds = 2;
    Lcg rng;
    std::vector<Op> ops;
    sim::TimeNs now = 0;
    for (int i = 0; i < 4000; ++i) {
        Op op;
        op.track = static_cast<int>(rng.next() % kTracks);
        op.label = static_cast<int>(rng.next() % kLabels);
        // Sub-microsecond offsets exercise the %g fractional cases.
        now += static_cast<sim::TimeNs>(rng.next() % 9973);
        op.begin = now;
        op.end = now + 1 + static_cast<sim::TimeNs>(rng.next() % 74321);
        op.kind = (i % 7 == 0)
                      ? static_cast<int>(rng.next() % kKinds)
                      : -1;
        op.counter = (i % 5 == 0)
                         ? static_cast<double>(rng.next() % 100000)
                         : 0.0;
        ops.push_back(op);
    }
    return ops;
}

std::string
trackName(int i)
{
    return "core" + std::to_string(i);
}

std::string
labelName(int i)
{
    // Mix in escape-needing labels.
    if (i % 4 == 0)
        return "job\"q\\" + std::to_string(i);
    return "job_" + std::to_string(i);
}

const char *
kindName(int i)
{
    return i == 0 ? "context_switch" : "migration";
}

void
recordViaStringApi(Tracer &t, const std::vector<Op> &ops)
{
    for (const Op &op : ops) {
        t.recordInterval(trackName(op.track), labelName(op.label),
                         op.begin, op.end);
        if (op.kind >= 0)
            t.recordEvent(kindName(op.kind), labelName(op.label),
                          op.begin);
        if (op.counter > 0)
            t.recordCounter("axi_bytes", op.begin, op.counter);
    }
}

void
recordViaIdApi(Tracer &t, const std::vector<Op> &ops)
{
    std::vector<TrackId> tracks;
    for (int i = 0; i < 6; ++i)
        tracks.push_back(t.internTrack(trackName(i)));
    std::vector<LabelId> labels;
    for (int i = 0; i < 12; ++i)
        labels.push_back(t.internLabel(labelName(i)));
    const EventKindId kinds[2] = {t.internEventKind(kindName(0)),
                                  t.internEventKind(kindName(1))};
    const CounterId axi = t.internCounter("axi_bytes");

    for (const Op &op : ops) {
        t.recordInterval(tracks[static_cast<std::size_t>(op.track)],
                         labels[static_cast<std::size_t>(op.label)],
                         op.begin, op.end);
        if (op.kind >= 0)
            t.recordEvent(kinds[op.kind],
                          labels[static_cast<std::size_t>(op.label)],
                          op.begin);
        if (op.counter > 0)
            t.recordCounter(axi, op.begin, op.counter);
    }
}

TEST(TraceEquiv, StreamingWriterMatchesLegacyBytes)
{
    Tracer t;
    recordViaStringApi(t, makeScenario());
    std::ostringstream legacy;
    legacyWriteChromeTrace(legacy, t);
    EXPECT_EQ(legacy.str(), chromeTraceString(t));
}

TEST(TraceEquiv, IdApiMatchesStringApiBytes)
{
    const auto ops = makeScenario();
    Tracer via_string;
    recordViaStringApi(via_string, ops);
    Tracer via_id;
    recordViaIdApi(via_id, ops);
    EXPECT_EQ(chromeTraceString(via_string), chromeTraceString(via_id));
}

TEST(TraceEquiv, IdApiMatchesStringApiAnalytics)
{
    const auto ops = makeScenario();
    Tracer via_string;
    recordViaStringApi(via_string, ops);
    Tracer via_id;
    recordViaIdApi(via_id, ops);

    sim::TimeNs t1 = 0;
    for (const Op &op : ops)
        t1 = std::max(t1, op.end);

    for (int i = 0; i < 6; ++i) {
        const std::string track = trackName(i);
        const auto ua = via_string.utilization(track, 0, t1, 97);
        const auto ub = via_id.utilization(track, 0, t1, 97);
        ASSERT_EQ(ua.size(), ub.size());
        for (std::size_t k = 0; k < ua.size(); ++k)
            EXPECT_DOUBLE_EQ(ua[k], ub[k]) << track << " bucket " << k;
    }
    const auto ra = via_string.counterRate("axi_bytes", 0, t1, 64);
    const auto rb = via_id.counterRate("axi_bytes", 0, t1, 64);
    for (std::size_t k = 0; k < ra.size(); ++k)
        EXPECT_DOUBLE_EQ(ra[k], rb[k]);

    EXPECT_EQ(via_string.countEvents("context_switch"),
              via_id.countEvents("context_switch"));
    EXPECT_EQ(via_string.countEvents("migration"),
              via_id.countEvents("migration"));
    EXPECT_EQ(via_string.intervalCount(), via_id.intervalCount());
    EXPECT_EQ(via_string.eventCount(), via_id.eventCount());
}

TEST(TraceEquiv, UtilizationMatchesBruteForceOverlap)
{
    // The closed-form bucket coverage must agree with the old
    // per-bucket overlap loop to within FP noise.
    const auto ops = makeScenario();
    Tracer t;
    recordViaStringApi(t, ops);

    sim::TimeNs t1 = 0;
    for (const Op &op : ops)
        t1 = std::max(t1, op.end);

    const std::size_t buckets = 53;
    const double bucket_ns =
        static_cast<double>(t1) / static_cast<double>(buckets);
    for (int i = 0; i < 6; ++i) {
        const std::string track = trackName(i);
        std::vector<double> expect(buckets, 0.0);
        for (const auto &iv : t.intervals(track)) {
            for (std::size_t k = 0; k < buckets; ++k) {
                const double b0 =
                    static_cast<double>(k) * bucket_ns;
                const double b1 = b0 + bucket_ns;
                const double lo =
                    std::max(b0, static_cast<double>(iv.begin));
                const double hi =
                    std::min(b1, static_cast<double>(iv.end));
                if (hi > lo)
                    expect[k] += (hi - lo) / bucket_ns;
            }
        }
        const auto got = t.utilization(track, 0, t1, buckets);
        for (std::size_t k = 0; k < buckets; ++k)
            EXPECT_NEAR(got[k], std::min(expect[k], 1.0), 1e-6)
                << track << " bucket " << k;
    }
}

} // namespace
} // namespace aitax::trace
