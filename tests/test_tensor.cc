/**
 * @file
 * Unit tests for tensors, shapes and quantization.
 */

#include <gtest/gtest.h>

#include <vector>

#include "tensor/dtype.h"
#include "tensor/quantization.h"
#include "tensor/shape.h"
#include "tensor/tensor.h"

namespace aitax::tensor {
namespace {

// --- DType -----------------------------------------------------------

TEST(DType, Sizes)
{
    EXPECT_EQ(dtypeSize(DType::Float32), 4u);
    EXPECT_EQ(dtypeSize(DType::Float16), 2u);
    EXPECT_EQ(dtypeSize(DType::Int8), 1u);
    EXPECT_EQ(dtypeSize(DType::UInt8), 1u);
    EXPECT_EQ(dtypeSize(DType::Int32), 4u);
    EXPECT_EQ(dtypeSize(DType::Int64), 8u);
}

TEST(DType, Predicates)
{
    EXPECT_TRUE(isQuantized(DType::Int8));
    EXPECT_TRUE(isQuantized(DType::UInt8));
    EXPECT_FALSE(isQuantized(DType::Float32));
    EXPECT_TRUE(isFloat(DType::Float32));
    EXPECT_TRUE(isFloat(DType::Float16));
    EXPECT_FALSE(isFloat(DType::Int32));
}

TEST(DType, Names)
{
    EXPECT_EQ(dtypeName(DType::Float32), "fp32");
    EXPECT_EQ(dtypeName(DType::UInt8), "uint8");
}

// --- Shape -----------------------------------------------------------

TEST(Shape, ElementCount)
{
    EXPECT_EQ(Shape({2, 3, 4}).elementCount(), 24);
    EXPECT_EQ(Shape{}.elementCount(), 1); // scalar
    EXPECT_EQ(Shape({5}).elementCount(), 5);
}

TEST(Shape, NhwcAccessors)
{
    const Shape s = Shape::nhwc(224, 112, 3);
    EXPECT_EQ(s.rank(), 4u);
    EXPECT_EQ(s.batch(), 1);
    EXPECT_EQ(s.height(), 224);
    EXPECT_EQ(s.width(), 112);
    EXPECT_EQ(s.channels(), 3);
}

TEST(Shape, Equality)
{
    EXPECT_EQ(Shape({1, 2}), Shape({1, 2}));
    EXPECT_NE(Shape({1, 2}), Shape({2, 1}));
}

TEST(Shape, ToString)
{
    EXPECT_EQ(Shape({1, 224, 224, 3}).toString(), "[1x224x224x3]");
    EXPECT_EQ(Shape{}.toString(), "[]");
}

// --- Quantization ----------------------------------------------------

TEST(Quantization, ScalarRoundTrip)
{
    const QuantParams qp{1.0 / 128.0, 128};
    for (float v : {-0.99f, -0.5f, 0.0f, 0.25f, 0.99f}) {
        const auto q = quantizeU8(v, qp);
        EXPECT_NEAR(dequantizeU8(q, qp), v, qp.scale / 2 + 1e-6);
    }
}

TEST(Quantization, Saturates)
{
    const QuantParams qp{1.0 / 128.0, 128};
    EXPECT_EQ(quantizeU8(100.0f, qp), 255);
    EXPECT_EQ(quantizeU8(-100.0f, qp), 0);
    EXPECT_EQ(quantizeS8(100.0f, qp), 127);
}

TEST(Quantization, ZeroIsExactAtZeroPoint)
{
    const QuantParams qp{0.05, 17};
    EXPECT_EQ(quantizeU8(0.0f, qp), 17);
    EXPECT_FLOAT_EQ(dequantizeU8(17, qp), 0.0f);
}

TEST(Quantization, ChooseParamsCoversRange)
{
    const QuantParams qp = chooseQuantParams(-1.0f, 1.0f);
    EXPECT_NEAR(qp.scale, 2.0 / 255.0, 1e-9);
    // -1 should land near 0, +1 near 255.
    EXPECT_LE(quantizeU8(-1.0f, qp), 1);
    EXPECT_GE(quantizeU8(1.0f, qp), 254);
}

TEST(Quantization, ChooseParamsWidensToIncludeZero)
{
    const QuantParams qp = chooseQuantParams(0.5f, 2.0f);
    // Range must include 0, so dequantized 0-code is <= 0.
    EXPECT_LE(dequantizeU8(0, qp), 0.0f + 1e-6);
}

TEST(Quantization, ChooseParamsDegenerate)
{
    const QuantParams qp = chooseQuantParams(0.0f, 0.0f);
    EXPECT_GT(qp.scale, 0.0);
}

TEST(Quantization, BufferRoundTrip)
{
    const QuantParams qp = chooseQuantParams(-2.0f, 2.0f);
    std::vector<float> in = {-1.9f, -0.3f, 0.0f, 0.7f, 1.9f};
    std::vector<std::uint8_t> q(in.size());
    std::vector<float> out(in.size());
    quantizeBuffer(in, qp, q);
    dequantizeBuffer(q, qp, out);
    for (std::size_t i = 0; i < in.size(); ++i)
        EXPECT_NEAR(out[i], in[i], qp.scale);
}

/** Quantization error must be bounded by scale/2 across the range. */
class QuantSweep : public ::testing::TestWithParam<float>
{
};

TEST_P(QuantSweep, ErrorBounded)
{
    const QuantParams qp = chooseQuantParams(-4.0f, 4.0f);
    const float v = GetParam();
    const float rt = dequantizeU8(quantizeU8(v, qp), qp);
    EXPECT_NEAR(rt, v, qp.scale / 2 + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Range, QuantSweep,
                         ::testing::Values(-3.9f, -2.5f, -1.0f, -0.1f,
                                           0.0f, 0.1f, 0.5f, 1.5f, 2.7f,
                                           3.9f));

// --- Tensor ----------------------------------------------------------

TEST(Tensor, AllocatesZeroed)
{
    Tensor t(Shape({2, 3}), DType::Float32);
    EXPECT_EQ(t.byteSize(), 24u);
    for (float v : t.data<float>())
        EXPECT_EQ(v, 0.0f);
}

TEST(Tensor, FillFloat)
{
    Tensor t(Shape({4}), DType::Float32);
    t.fillFloat(2.5f);
    for (float v : t.data<float>())
        EXPECT_EQ(v, 2.5f);
}

TEST(Tensor, RealAtFloat)
{
    Tensor t(Shape({3}), DType::Float32);
    t.data<float>()[1] = 7.0f;
    EXPECT_FLOAT_EQ(t.realAt(1), 7.0f);
}

TEST(Tensor, RealAtQuantized)
{
    const QuantParams qp{0.5, 10};
    Tensor t(Shape({3}), DType::UInt8, qp);
    t.data<std::uint8_t>()[2] = 14; // (14 - 10) * 0.5 = 2.0
    EXPECT_FLOAT_EQ(t.realAt(2), 2.0f);
}

TEST(Tensor, QuantParamsStored)
{
    const QuantParams qp{0.25, 3};
    Tensor t(Shape({1}), DType::Int8, qp);
    EXPECT_EQ(t.quantParams(), qp);
}

TEST(Tensor, ElementCountMatchesShape)
{
    Tensor t(Shape::nhwc(8, 8, 3), DType::UInt8);
    EXPECT_EQ(t.elementCount(), 192);
    EXPECT_EQ(t.byteSize(), 192u);
}

} // namespace
} // namespace aitax::tensor
