/**
 * @file
 * Sweep-engine tests: work-stealing pool semantics, the shared
 * model-graph cache, and the determinism contract — the golden suite
 * and a fuzz batch must be byte-identical at --jobs 1 and --jobs 8.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "graph/graph.h"
#include "models/zoo.h"
#include "sweep/sweep_runner.h"
#include "verify/golden.h"
#include "verify/scenario.h"

namespace {

using namespace aitax;

// --- SweepRunner -----------------------------------------------------

TEST(SweepRunner, MapPreservesSubmissionOrder)
{
    sweep::SweepRunner runner(8);
    const auto out =
        runner.map<std::size_t>(257, [](std::size_t i) { return i * i; });
    ASSERT_EQ(out.size(), 257u);
    for (std::size_t i = 0; i < out.size(); ++i)
        EXPECT_EQ(out[i], i * i);
}

TEST(SweepRunner, ForEachVisitsEveryIndexExactlyOnce)
{
    sweep::SweepRunner runner(8);
    std::vector<std::atomic<int>> hits(1024);
    runner.forEach(hits.size(), [&](std::size_t i) { ++hits[i]; });
    for (std::size_t i = 0; i < hits.size(); ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(SweepRunner, FirstExceptionPropagatesToCaller)
{
    sweep::SweepRunner runner(4);
    EXPECT_THROW(runner.forEach(100,
                                [](std::size_t i) {
                                    if (i == 37)
                                        throw std::runtime_error("boom");
                                }),
                 std::runtime_error);
}

TEST(SweepRunner, SingleJobRunsInlineOnCallingThread)
{
    sweep::SweepRunner runner(1);
    const auto caller = std::this_thread::get_id();
    runner.forEach(4, [&](std::size_t) {
        EXPECT_EQ(std::this_thread::get_id(), caller);
    });
}

TEST(SweepRunner, MoreJobsThanWorkIsFine)
{
    sweep::SweepRunner runner(16);
    const auto out =
        runner.map<int>(3, [](std::size_t i) { return static_cast<int>(i); });
    EXPECT_EQ(out, (std::vector<int>{0, 1, 2}));
}

TEST(SweepRunner, EffectiveJobsResolution)
{
    EXPECT_EQ(sweep::effectiveJobs(3), 3);
    EXPECT_EQ(sweep::effectiveJobs(1), 1);
    EXPECT_GE(sweep::effectiveJobs(0), 1);
    EXPECT_GE(sweep::effectiveJobs(-5), 1);
}

// --- shared model-graph cache ----------------------------------------

TEST(GraphCache, PointerIdenticalAcrossThreads)
{
    constexpr int kThreads = 8;
    std::vector<std::shared_ptr<const graph::Graph>> seen(kThreads);
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t)
        threads.emplace_back([&seen, t] {
            seen[static_cast<std::size_t>(t)] = models::cachedGraph(
                "inception_v3", tensor::DType::Float32);
        });
    for (auto &th : threads)
        th.join();
    ASSERT_NE(seen[0], nullptr);
    for (int t = 1; t < kThreads; ++t)
        EXPECT_EQ(seen[static_cast<std::size_t>(t)].get(), seen[0].get());
}

TEST(GraphCache, DistinctCellsPerModelAndDtype)
{
    const auto a =
        models::cachedGraph("mobilenet_v1", tensor::DType::Float32);
    const auto b =
        models::cachedGraph("mobilenet_v1", tensor::DType::UInt8);
    const auto c =
        models::cachedGraph("squeezenet", tensor::DType::Float32);
    EXPECT_NE(a.get(), b.get());
    EXPECT_NE(a.get(), c.get());
    EXPECT_EQ(
        a.get(),
        models::cachedGraph("mobilenet_v1", tensor::DType::Float32).get());
}

TEST(GraphCache, MatchesUncachedBuild)
{
    const auto cached =
        models::cachedGraph("mobilenet_v1", tensor::DType::Float32);
    const auto built =
        models::buildGraph("mobilenet_v1", tensor::DType::Float32);
    EXPECT_EQ(cached->opCount(), built.opCount());
}

// --- determinism contract --------------------------------------------
// Parallelism is across simulations, never inside one: any --jobs
// count must reproduce the serial output byte for byte.

std::vector<std::string>
goldenJsonAtJobs(int jobs)
{
    const auto &scenarios = verify::goldenScenarios();
    sweep::SweepRunner runner(jobs);
    return runner.map<std::string>(
        scenarios.size(), [&](std::size_t i) {
            const auto &s = scenarios[i];
            return verify::toJson(
                verify::snapshot(s, verify::runScenario(s)));
        });
}

TEST(SweepDeterminism, GoldenSuiteByteIdenticalAcrossJobCounts)
{
    const auto serial = goldenJsonAtJobs(1);
    const auto parallel = goldenJsonAtJobs(8);
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i)
        EXPECT_EQ(serial[i], parallel[i])
            << verify::goldenScenarios()[i].label();
}

std::vector<std::string>
fuzzTracesAtJobs(int jobs, int count)
{
    sweep::SweepRunner runner(jobs);
    return runner.map<std::string>(
        static_cast<std::size_t>(count), [&](std::size_t i) {
            const auto s =
                verify::fuzzScenario(20260807, static_cast<int>(i));
            return verify::runScenario(s).chromeTraceJson;
        });
}

TEST(SweepDeterminism, FuzzBatchTracesByteIdenticalAcrossJobCounts)
{
    const auto serial = fuzzTracesAtJobs(1, 32);
    const auto parallel = fuzzTracesAtJobs(8, 32);
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i)
        EXPECT_EQ(serial[i], parallel[i]) << "fuzz index " << i;
}

} // namespace
