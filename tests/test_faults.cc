/**
 * @file
 * Fault-injection subsystem tests: plan determinism, spec parsing,
 * injected session loss / transient retries / watchdog kills /
 * thermal emergencies, graceful degradation along the NNAPI chain,
 * and the degraded-mode accounting column.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "app/pipeline.h"
#include "faults/fault_plan.h"
#include "faults/injector.h"
#include "soc/chipsets.h"
#include "soc/system.h"
#include "trace/chrome_trace.h"

namespace aitax::faults {
namespace {

using tensor::DType;

// --- fault plans -------------------------------------------------------

TEST(FaultPlan, DisabledPlanDrawsNothing)
{
    FaultConfig cfg; // enabled = false
    cfg.thermalEmergencies = 5;
    sim::RandomStream rng(1, "faults");
    const FaultPlan plan = makeFaultPlan(cfg, rng);
    EXPECT_TRUE(plan.thermalEmergencyAtNs.empty());
    // The stream was not consumed: a fresh fork sees identical draws.
    sim::RandomStream probe(1, "faults");
    EXPECT_EQ(rng.nextU64(), probe.nextU64());
}

TEST(FaultPlan, DeterministicFromSeed)
{
    FaultConfig cfg = FaultConfig::fuzzDefaults();
    cfg.thermalEmergencies = 3;
    auto draw = [&](std::uint64_t seed) {
        sim::RandomStream rng(seed, "faults");
        return makeFaultPlan(cfg, rng).describe();
    };
    EXPECT_EQ(draw(42), draw(42));
    EXPECT_NE(draw(42), draw(43));
}

TEST(FaultPlan, EmergencyTimesAreStrictlyIncreasing)
{
    FaultConfig cfg = FaultConfig::fuzzDefaults();
    cfg.thermalEmergencies = 8;
    sim::RandomStream rng(7, "faults");
    const FaultPlan plan = makeFaultPlan(cfg, rng);
    ASSERT_EQ(plan.thermalEmergencyAtNs.size(), 8u);
    sim::TimeNs last = 0;
    for (sim::TimeNs t : plan.thermalEmergencyAtNs) {
        EXPECT_GT(t, last);
        last = t;
    }
}

// --- spec parsing ------------------------------------------------------

TEST(FaultSpec, NamedPresets)
{
    FaultConfig cfg;
    std::string error;
    ASSERT_TRUE(parseFaultSpec("default", &cfg, &error));
    EXPECT_TRUE(cfg.enabled);
    EXPECT_DOUBLE_EQ(cfg.sessionLossProb, 0.04);
    ASSERT_TRUE(parseFaultSpec("fuzz", &cfg, &error));
    EXPECT_DOUBLE_EQ(cfg.transientFailureProb, 0.08);
}

TEST(FaultSpec, KeyValueListWithUnits)
{
    FaultConfig cfg;
    std::string error;
    ASSERT_TRUE(parseFaultSpec(
        "session-loss=0.5,transient=0.25,max-attempts=4,detect-us=40,"
        "backoff-us=100,hang=0.1,stall-ms=3,watchdog-ms=1.5,"
        "thermal=2,thermal-gap-ms=50,thermal-heat=6",
        &cfg, &error))
        << error;
    EXPECT_TRUE(cfg.enabled);
    EXPECT_DOUBLE_EQ(cfg.sessionLossProb, 0.5);
    EXPECT_DOUBLE_EQ(cfg.transientFailureProb, 0.25);
    EXPECT_EQ(cfg.maxAttempts, 4);
    EXPECT_EQ(cfg.transientDetectNs, sim::usToNs(40.0));
    EXPECT_EQ(cfg.retryBackoffBaseNs, sim::usToNs(100.0));
    EXPECT_DOUBLE_EQ(cfg.hangProb, 0.1);
    EXPECT_EQ(cfg.hangStallNs, sim::msToNs(3.0));
    EXPECT_EQ(cfg.watchdogTimeoutNs, sim::msToNs(1.5));
    EXPECT_EQ(cfg.thermalEmergencies, 2);
    EXPECT_EQ(cfg.thermalEmergencyGapNs, sim::msToNs(50.0));
    EXPECT_DOUBLE_EQ(cfg.thermalEmergencyHeat, 6.0);
}

TEST(FaultSpec, RejectsMalformedInput)
{
    FaultConfig cfg;
    std::string error;
    EXPECT_FALSE(parseFaultSpec("session-loss", &cfg, &error));
    EXPECT_NE(error.find("key=value"), std::string::npos);
    EXPECT_FALSE(parseFaultSpec("no-such-key=1", &cfg, &error));
    EXPECT_FALSE(parseFaultSpec("transient=1.5", &cfg, &error)); // > 1
    EXPECT_FALSE(parseFaultSpec("max-attempts=0", &cfg, &error));
    EXPECT_FALSE(parseFaultSpec("stall-ms=abc", &cfg, &error));
}

// --- arming ------------------------------------------------------------

TEST(ArmFaults, DisabledConfigIsANoop)
{
    soc::SocSystem sys(soc::makeSnapdragon845(), 5);
    sys.armFaults(FaultConfig{}); // enabled = false
    EXPECT_EQ(sys.faults(), nullptr);
}

TEST(ArmFaults, DisabledArmLeavesTraceByteIdentical)
{
    auto run = [](bool arm_disabled) {
        soc::SocSystem sys(soc::makeSnapdragon845(), 5);
        if (arm_disabled)
            sys.armFaults(FaultConfig{});
        soc::AccelJob job;
        job.name = "probe";
        job.ops = 1e8;
        job.format = DType::UInt8;
        sys.dsp().submit(std::move(job));
        sys.run();
        std::ostringstream os;
        trace::writeChromeTrace(os, sys.tracer());
        return os.str();
    };
    EXPECT_EQ(run(false), run(true));
}

// --- injected faults ---------------------------------------------------

/** Injector wired to a raw accelerator + channel for focused tests. */
struct RpcRig
{
    sim::Simulator sim;
    trace::Tracer tracer;
    soc::Accelerator dsp;
    soc::FastRpcChannel rpc;
    FaultInjector injector;

    explicit RpcRig(const FaultConfig &cfg, std::uint64_t seed = 11)
        : dsp(sim, soc::makeSnapdragon845().dsp, tracer),
          rpc(sim, soc::makeSnapdragon845().fastrpc, dsp),
          injector(makePlan(cfg, seed), sim::RandomStream(seed, "flt"),
                   &tracer)
    {
        dsp.setFaultInjector(&injector);
        rpc.setFaultInjector(&injector);
    }

    static FaultPlan makePlan(const FaultConfig &cfg, std::uint64_t seed)
    {
        sim::RandomStream rng(seed, "plan");
        return makeFaultPlan(cfg, rng);
    }

    soc::FastRpcBreakdown callOnce()
    {
        std::vector<soc::FastRpcBreakdown> log;
        soc::AccelJob job;
        job.ops = 1e6;
        job.format = DType::UInt8;
        rpc.call(1, 1e3, std::move(job),
                 [&](const soc::FastRpcBreakdown &b) {
                     log.push_back(b);
                 });
        sim.run();
        EXPECT_EQ(log.size(), 1u);
        return log.empty() ? soc::FastRpcBreakdown{} : log.front();
    }
};

TEST(Faults, SessionLossRepaysSessionOpen)
{
    FaultConfig cfg;
    cfg.enabled = true;
    cfg.sessionLossProb = 1.0; // every call loses the session
    RpcRig rig(cfg);
    const auto first = rig.callOnce();
    const auto second = rig.callOnce();
    EXPECT_GT(first.sessionOpenNs, 0);
    EXPECT_GT(second.sessionOpenNs, 0); // Fig 8 cold start re-paid
    EXPECT_EQ(rig.injector.stats().sessionLosses, 2);
}

TEST(Faults, TransientFailuresRetryThenFailPermanently)
{
    FaultConfig cfg;
    cfg.enabled = true;
    cfg.transientFailureProb = 1.0; // every attempt dies
    cfg.maxAttempts = 3;
    cfg.transientDetectNs = sim::usToNs(80.0);
    cfg.retryBackoffBaseNs = sim::usToNs(200.0);
    RpcRig rig(cfg);

    bool inner_done_fired = false;
    std::vector<soc::FastRpcBreakdown> log;
    soc::AccelJob job;
    job.ops = 1e6;
    job.format = DType::UInt8;
    job.onDone = [&](const soc::AccelCompletion &) {
        inner_done_fired = true;
    };
    rig.rpc.call(1, 1e3, std::move(job),
                 [&](const soc::FastRpcBreakdown &b) {
                     log.push_back(b);
                 });
    rig.sim.run();

    ASSERT_EQ(log.size(), 1u);
    const auto &b = log[0];
    EXPECT_TRUE(b.failed);
    EXPECT_FALSE(inner_done_fired); // failed call never ran the job
    EXPECT_EQ(b.retries, 2);
    EXPECT_EQ(b.dspExecNs, 0);
    // 3 detects (80 us each) + backoffs 200 us and 400 us.
    EXPECT_EQ(b.retryNs, sim::usToNs(3 * 80.0 + 200.0 + 400.0));
    EXPECT_EQ(b.totalNs(), b.overheadNs());

    const FaultStats &st = rig.injector.stats();
    EXPECT_EQ(st.transientFailures, 3);
    EXPECT_EQ(st.retries, 2);
    EXPECT_EQ(st.permanentFailures, 1);
}

TEST(Faults, WatchdogKillsGuaranteedHang)
{
    FaultConfig cfg;
    cfg.enabled = true;
    cfg.hangProb = 1.0;
    cfg.hangStallNs = sim::msToNs(10.0);    // min stall 5 ms ...
    cfg.watchdogTimeoutNs = sim::msToNs(1.0); // ... >> watchdog
    RpcRig rig(cfg);

    std::vector<soc::AccelCompletion> completions;
    soc::AccelJob job;
    job.name = "hung";
    job.ops = 1e6;
    job.format = DType::UInt8;
    job.onDone = [&](const soc::AccelCompletion &c) {
        completions.push_back(c);
    };
    rig.dsp.submit(std::move(job));
    rig.sim.run();

    ASSERT_EQ(completions.size(), 1u);
    EXPECT_TRUE(completions[0].failed);
    EXPECT_EQ(completions[0].execNs, 0);
    EXPECT_EQ(completions[0].finishedAt - completions[0].startedAt,
              sim::msToNs(1.0)); // killed exactly at the timeout
    EXPECT_EQ(rig.dsp.jobsCompleted(), 0); // produced no work
    EXPECT_EQ(rig.injector.stats().watchdogKills, 1);
}

TEST(Faults, SubWatchdogStallJustFinishesLate)
{
    FaultConfig cfg;
    cfg.enabled = true;
    cfg.hangProb = 1.0;
    cfg.hangStallNs = sim::msToNs(1.0);       // max stall 1.5 ms ...
    cfg.watchdogTimeoutNs = sim::msToNs(2.4); // ... < watchdog
    RpcRig rig(cfg);

    const sim::DurationNs nominal =
        rig.dsp.execDuration(1e6, 0.0, DType::UInt8);
    std::vector<soc::AccelCompletion> completions;
    soc::AccelJob job;
    job.name = "slow";
    job.ops = 1e6;
    job.format = DType::UInt8;
    job.onDone = [&](const soc::AccelCompletion &c) {
        completions.push_back(c);
    };
    rig.dsp.submit(std::move(job));
    rig.sim.run();

    ASSERT_EQ(completions.size(), 1u);
    EXPECT_FALSE(completions[0].failed);
    EXPECT_GE(completions[0].execNs, nominal + sim::msToNs(0.5));
    EXPECT_EQ(rig.dsp.jobsCompleted(), 1);
    EXPECT_EQ(rig.injector.stats().watchdogKills, 0);
}

TEST(Faults, ThermalEmergenciesFireOnSchedule)
{
    FaultConfig cfg;
    cfg.enabled = true;
    cfg.thermalEmergencies = 2;
    cfg.thermalEmergencyGapNs = sim::msToNs(10.0);
    cfg.thermalEmergencyHeat = 100.0;
    soc::SocSystem sys(soc::makeSnapdragon845(), 5);
    sys.armFaults(cfg);
    ASSERT_NE(sys.faults(), nullptr);
    ASSERT_EQ(sys.faults()->plan().thermalEmergencyAtNs.size(), 2u);
    sys.run(); // drains the scheduled emergencies
    EXPECT_EQ(sys.faults()->stats().thermalEmergencies, 2);
    // The spike throttles even though the SD845 preset keeps the
    // thermal model disabled.
    EXPECT_LT(sys.thermal().speedFactor(), 1.0);
}

// --- graceful degradation end to end -----------------------------------

TEST(Degradation, PermanentDspFailureFallsDownTheChain)
{
    FaultConfig cfg;
    cfg.enabled = true;
    cfg.transientFailureProb = 1.0; // every offload fails permanently
    cfg.maxAttempts = 2;

    soc::SocSystem sys(soc::makeSnapdragon845(), 21);
    sys.armFaults(cfg);

    app::PipelineConfig pc;
    pc.model = models::findModel("mobilenet_v1");
    pc.dtype = DType::UInt8;
    pc.framework = app::FrameworkKind::SnpeDsp;
    pc.mode = app::HarnessMode::CliBenchmark;
    app::Application application(sys, pc);

    core::TaxReport report;
    application.scheduleRuns(4, report);
    sys.run();

    // Every run completed despite the dead DSP path.
    EXPECT_EQ(report.runs(), 4u);
    const FaultStats &st = sys.faults()->stats();
    EXPECT_GT(st.permanentFailures, 0);
    ASSERT_FALSE(st.fallbacks.empty());
    for (const auto &fb : st.fallbacks)
        EXPECT_GT(static_cast<int>(fb.to), static_cast<int>(fb.from));
    // One degraded-mode sample per run, none exceeding its e2e wall.
    ASSERT_EQ(report.degradedMode().count(), 4u);
    for (std::size_t i = 0; i < 4; ++i) {
        EXPECT_GT(report.degradedMode().raw()[i], 0.0);
        EXPECT_LE(report.degradedMode().raw()[i],
                  report.endToEnd().raw()[i]);
    }
}

TEST(Degradation, UnfaultedReportHasNoDegradedColumn)
{
    soc::SocSystem sys(soc::makeSnapdragon845(), 21);
    app::PipelineConfig pc;
    pc.model = models::findModel("mobilenet_v1");
    pc.dtype = DType::UInt8;
    pc.framework = app::FrameworkKind::SnpeDsp;
    pc.mode = app::HarnessMode::CliBenchmark;
    app::Application application(sys, pc);
    core::TaxReport report;
    application.scheduleRuns(4, report);
    sys.run();
    EXPECT_EQ(report.degradedMode().count(), 0u);
    std::ostringstream os;
    report.render(os);
    EXPECT_EQ(os.str().find("degraded"), std::string::npos);
}

TEST(Degradation, FaultedRunsAreDeterministic)
{
    auto run = [] {
        FaultConfig cfg = FaultConfig::fuzzDefaults();
        soc::SocSystem sys(soc::makeSnapdragon845(), 77);
        sys.armFaults(cfg);
        app::PipelineConfig pc;
        pc.model = models::findModel("mobilenet_v1");
        pc.dtype = DType::UInt8;
        pc.framework = app::FrameworkKind::TfliteHexagon;
        pc.mode = app::HarnessMode::AndroidApp;
        app::Application application(sys, pc);
        core::TaxReport report;
        application.scheduleRuns(6, report);
        sys.run();
        std::ostringstream os;
        trace::writeChromeTrace(os, sys.tracer());
        return os.str();
    };
    const std::string a = run();
    EXPECT_EQ(a, run());
    EXPECT_NE(a.find("fault"), std::string::npos)
        << "fuzz defaults injected nothing over 6 runs";
}

} // namespace
} // namespace aitax::faults
