/**
 * @file
 * Property tests: invariants that must hold across the whole
 * configuration space (every model x format x framework x platform),
 * exercised with parameterized sweeps.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "app/pipeline.h"
#include "core/analyzer.h"
#include "runtime/nnapi.h"
#include "runtime/plan.h"
#include "soc/chipsets.h"

namespace aitax {
namespace {

using app::FrameworkKind;
using app::HarnessMode;
using core::Stage;
using tensor::DType;

bool
comboValid(const models::ModelInfo &m, DType dtype, FrameworkKind fw)
{
    if (tensor::isQuantized(dtype) && !m.cpuInt8)
        return false;
    if (fw == FrameworkKind::TfliteNnapi && !m.supports(true, dtype))
        return false;
    if (fw == FrameworkKind::SnpeDsp &&
        m.task == models::Task::LanguageProcessing)
        return false; // SNPE has no transformer kernels
    return true;
}

core::TaxReport
runCombo(const models::ModelInfo &m, DType dtype, FrameworkKind fw,
         HarnessMode mode, int runs, std::uint64_t seed)
{
    soc::SocSystem sys(soc::makeSnapdragon845(), seed);
    app::PipelineConfig cfg;
    cfg.model = &m;
    cfg.dtype = dtype;
    cfg.framework = fw;
    cfg.mode = mode;
    app::Application application(sys, cfg);
    core::TaxReport report;
    application.scheduleRuns(runs, report);
    sys.run();
    return report;
}

// --- sweep: every model x format x framework ---------------------------

using ComboParam = std::tuple<int, DType, FrameworkKind>;

class PipelineSweep : public ::testing::TestWithParam<ComboParam>
{
  protected:
    const models::ModelInfo &
    model() const
    {
        return models::allModels()[static_cast<std::size_t>(
            std::get<0>(GetParam()))];
    }
    DType dtype() const { return std::get<1>(GetParam()); }
    FrameworkKind framework() const { return std::get<2>(GetParam()); }
};

TEST_P(PipelineSweep, StageLatenciesWellFormed)
{
    if (!comboValid(model(), dtype(), framework()))
        GTEST_SKIP();
    const auto r = runCombo(model(), dtype(), framework(),
                            HarnessMode::AndroidApp, 4, 11);
    ASSERT_EQ(r.runs(), 4u);
    // Inference always takes time; no stage may be negative; the
    // end-to-end mean must equal the sum of stage means.
    EXPECT_GT(r.stageMeanMs(Stage::Inference), 0.0);
    double sum = 0.0;
    for (Stage s : core::kAllStages) {
        EXPECT_GE(r.stage(s).min(), 0.0) << core::stageName(s);
        sum += r.stageMeanMs(s);
    }
    EXPECT_NEAR(sum, r.endToEndMeanMs(), 1e-6);
    // AI tax identity: tax = e2e - inference.
    EXPECT_NEAR(r.aiTaxMeanMs(),
                r.endToEndMeanMs() - r.stageMeanMs(Stage::Inference),
                1e-6);
    EXPECT_GE(r.aiTaxFraction(), 0.0);
    EXPECT_LT(r.aiTaxFraction(), 1.0);
}

TEST_P(PipelineSweep, DeterministicGivenSeed)
{
    if (!comboValid(model(), dtype(), framework()))
        GTEST_SKIP();
    const auto a = runCombo(model(), dtype(), framework(),
                            HarnessMode::CliBenchmark, 3, 5);
    const auto b = runCombo(model(), dtype(), framework(),
                            HarnessMode::CliBenchmark, 3, 5);
    EXPECT_DOUBLE_EQ(a.endToEndMeanMs(), b.endToEndMeanMs());
    for (Stage s : core::kAllStages)
        EXPECT_DOUBLE_EQ(a.stageMeanMs(s), b.stageMeanMs(s));
}

TEST_P(PipelineSweep, AppModeNeverFasterThanBenchmark)
{
    if (!comboValid(model(), dtype(), framework()))
        GTEST_SKIP();
    const auto bench = runCombo(model(), dtype(), framework(),
                                HarnessMode::CliBenchmark, 4, 7);
    const auto app = runCombo(model(), dtype(), framework(),
                              HarnessMode::AndroidApp, 4, 7);
    EXPECT_GT(app.endToEndMeanMs(), bench.endToEndMeanMs() * 0.98);
}

INSTANTIATE_TEST_SUITE_P(
    AllCombos, PipelineSweep,
    ::testing::Combine(::testing::Range(0, 11),
                       ::testing::Values(DType::Float32, DType::UInt8),
                       ::testing::Values(FrameworkKind::TfliteCpu,
                                         FrameworkKind::TfliteNnapi,
                                         FrameworkKind::SnpeDsp)),
    [](const auto &info) {
        const auto &m = models::allModels()[static_cast<std::size_t>(
            std::get<0>(info.param))];
        std::string name = m.id;
        name += "_";
        name += tensor::dtypeName(std::get<1>(info.param));
        name += "_";
        name += app::frameworkName(std::get<2>(info.param));
        for (auto &c : name)
            if (c == '-')
                c = '_';
        return name;
    });

// --- plan invariants ---------------------------------------------------

class PlanSweep : public ::testing::TestWithParam<std::tuple<int, DType>>
{
};

TEST_P(PlanSweep, PartitionInvariants)
{
    const auto &m = models::allModels()[static_cast<std::size_t>(
        std::get<0>(GetParam()))];
    const DType dtype = std::get<1>(GetParam());
    const auto g = models::buildGraph(m, dtype);
    runtime::nnapi::Compilation comp(g, dtype);
    const auto &plan = comp.plan();

    ASSERT_FALSE(plan.partitions.empty());
    double mac_share = 0.0;
    std::size_t ops = 0;
    for (std::size_t i = 0; i < plan.partitions.size(); ++i) {
        const auto &p = plan.partitions[i];
        EXPECT_NE(p.driver, nullptr);
        EXPECT_GT(p.opCount, 0u);
        EXPECT_GE(p.deviceOps, 0.0);
        EXPECT_GE(p.bytes, 0.0);
        EXPECT_GE(p.inputBytes, 0.0);
        EXPECT_GE(p.macShare, 0.0);
        EXPECT_LE(p.macShare, 1.0 + 1e-9);
        // Adjacent partitions must use different drivers (coalescing).
        if (i > 0) {
            EXPECT_NE(p.driver, plan.partitions[i - 1].driver);
        }
        mac_share += p.macShare;
        ops += p.opCount;
    }
    EXPECT_NEAR(mac_share, 1.0, 1e-9);
    EXPECT_EQ(ops, g.opCount());
    EXPECT_GE(plan.acceleratedMacShare(), 0.0);
    EXPECT_LE(plan.acceleratedMacShare(), 1.0 + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    AllModels, PlanSweep,
    ::testing::Combine(::testing::Range(0, 11),
                       ::testing::Values(DType::Float32, DType::UInt8)),
    [](const auto &info) {
        const auto &m = models::allModels()[static_cast<std::size_t>(
            std::get<0>(info.param))];
        return m.id + "_" +
               std::string(tensor::dtypeName(std::get<1>(info.param)));
    });

// --- platform sweep ------------------------------------------------------

class PlatformSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(PlatformSweep, EveryPlatformRunsEveryFramework)
{
    const auto platform = soc::allPlatforms()[static_cast<std::size_t>(
        GetParam())];
    for (FrameworkKind fw :
         {FrameworkKind::TfliteCpu, FrameworkKind::TfliteHexagon,
          FrameworkKind::SnpeDsp}) {
        soc::SocSystem sys(platform, 3);
        app::PipelineConfig cfg;
        cfg.model = models::findModel("mobilenet_v1");
        cfg.dtype = DType::UInt8;
        cfg.framework = fw;
        cfg.mode = HarnessMode::CliBenchmark;
        app::Application application(sys, cfg);
        core::TaxReport report;
        application.scheduleRuns(3, report);
        sys.run();
        EXPECT_GT(report.stageMeanMs(Stage::Inference), 0.0)
            << platform.socName << "/" << app::frameworkName(fw);
    }
}

INSTANTIATE_TEST_SUITE_P(TableII, PlatformSweep, ::testing::Range(0, 4));

// --- cross-cutting invariants ---------------------------------------------

TEST(Properties, OffloadShareSeriesBoundedAndMonotone)
{
    soc::SocSystem sys(soc::makeSnapdragon845(), 7);
    app::PipelineConfig cfg;
    cfg.model = models::findModel("mobilenet_v1");
    cfg.dtype = DType::UInt8;
    cfg.framework = FrameworkKind::TfliteHexagon;
    cfg.mode = HarnessMode::CliBenchmark;
    app::Application application(sys, cfg);
    core::TaxReport report;
    application.scheduleRuns(30, report);
    sys.run();
    const auto series = core::offloadShareSeries(application.rpcLog());
    for (std::size_t i = 0; i < series.size(); ++i) {
        EXPECT_GE(series[i], 0.0);
        EXPECT_LT(series[i], 1.0);
        if (i > 0) {
            EXPECT_LE(series[i], series[i - 1] + 1e-12);
        }
    }
}

TEST(Properties, BusyTimeNeverExceedsWallClockPerCore)
{
    soc::SocSystem sys(soc::makeSnapdragon845(), 7);
    app::PipelineConfig cfg;
    cfg.model = models::findModel("mobilenet_v1");
    cfg.dtype = DType::Float32;
    cfg.framework = FrameworkKind::TfliteCpu;
    cfg.mode = HarnessMode::AndroidApp;
    app::Application application(sys, cfg);
    core::TaxReport report;
    application.scheduleRuns(10, report);
    const sim::TimeNs end = sys.run();

    for (const auto &track : sys.tracer().trackNames()) {
        sim::DurationNs busy = 0;
        sim::TimeNs last_end = 0;
        for (const auto &iv : sys.tracer().intervals(track)) {
            EXPECT_LE(iv.begin, iv.end) << track;
            // Intervals on one resource must not overlap.
            EXPECT_GE(iv.begin, last_end) << track;
            last_end = iv.end;
            busy += iv.end - iv.begin;
        }
        EXPECT_LE(busy, end) << track;
    }
}

TEST(Properties, EnergyAccumulatesAndSplitsByDomain)
{
    auto run_energy = [&](FrameworkKind fw, int runs) {
        soc::SocSystem sys(soc::makeSnapdragon845(), 7);
        app::PipelineConfig cfg;
        cfg.model = models::findModel("mobilenet_v1");
        cfg.dtype = DType::UInt8;
        cfg.framework = fw;
        cfg.mode = HarnessMode::CliBenchmark;
        app::Application application(sys, cfg);
        core::TaxReport report;
        application.scheduleRuns(runs, report);
        sys.run();
        struct Out
        {
            double total, big, dsp;
        };
        return Out{sys.energy().totalMj(),
                   sys.energy().domainMj(soc::PowerDomain::BigCpu),
                   sys.energy().domainMj(soc::PowerDomain::Dsp)};
    };

    const auto cpu_small = run_energy(FrameworkKind::TfliteCpu, 5);
    const auto cpu_large = run_energy(FrameworkKind::TfliteCpu, 20);
    EXPECT_GT(cpu_small.total, 0.0);
    EXPECT_GT(cpu_large.total, cpu_small.total);
    EXPECT_DOUBLE_EQ(cpu_small.dsp, 0.0);

    const auto dsp = run_energy(FrameworkKind::SnpeDsp, 20);
    EXPECT_GT(dsp.dsp, 0.0);
    // Offloaded inference must be more energy-efficient than CPU
    // inference end to end (the paper's motivating premise).
    EXPECT_LT(dsp.total, cpu_large.total);
}

TEST(Properties, DspPreprocessingShrinksPreStage)
{
    auto run_pre = [&](bool on_dsp) {
        soc::SocSystem sys(soc::makeSnapdragon845(), 7);
        app::PipelineConfig cfg;
        cfg.model = models::findModel("mobilenet_v1");
        cfg.dtype = DType::UInt8;
        cfg.framework = FrameworkKind::TfliteCpu;
        cfg.mode = HarnessMode::AndroidApp;
        cfg.preprocessOnDsp = on_dsp;
        app::Application application(sys, cfg);
        core::TaxReport report;
        application.scheduleRuns(20, report);
        sys.run();
        return report;
    };
    const auto cpu = run_pre(false);
    const auto dsp = run_pre(true);
    EXPECT_LT(dsp.stageMeanMs(Stage::PreProcessing),
              cpu.stageMeanMs(Stage::PreProcessing) / 5.0);
    EXPECT_LT(dsp.endToEndMeanMs(), cpu.endToEndMeanMs());
    // Inference unchanged: the DSP work happens in the pre stage.
    EXPECT_NEAR(dsp.stageMeanMs(Stage::Inference),
                cpu.stageMeanMs(Stage::Inference),
                cpu.stageMeanMs(Stage::Inference) * 0.1);
}

TEST(Properties, SustainedSpeedPreferenceAvoidsDspForQuantized)
{
    const auto g =
        models::buildGraph("mobilenet_v1", DType::UInt8);
    runtime::nnapi::Compilation fast(
        g, DType::UInt8,
        runtime::nnapi::ExecutionPreference::FastSingleAnswer);
    runtime::nnapi::Compilation sustained(
        g, DType::UInt8,
        runtime::nnapi::ExecutionPreference::SustainedSpeed);
    // FAST_SINGLE_ANSWER picks the DSP; SUSTAINED_SPEED prefers the
    // GPU driver first (thermally safer) — but the GPU driver cannot
    // run quantized ops, so the DSP still executes the model.
    EXPECT_TRUE(fast.plan().usesAccelerator());
    EXPECT_TRUE(sustained.plan().usesAccelerator());
}

TEST(Properties, ThermalThrottlingSlowsSustainedInference)
{
    auto run_thermal = [&](bool enabled) {
        auto platform = soc::makeSnapdragon845();
        platform.thermal.enabled = enabled;
        platform.thermal.heatPerBusySec = 0.3;
        platform.thermal.coolingTauSec = 20.0;
        platform.thermal.throttleThreshold = 1.0;
        soc::SocSystem sys(platform, 7);
        app::PipelineConfig cfg;
        cfg.model = models::findModel("inception_v3");
        cfg.dtype = DType::Float32;
        cfg.framework = FrameworkKind::TfliteCpu;
        cfg.mode = HarnessMode::CliBenchmark;
        app::Application application(sys, cfg);
        core::TaxReport report;
        application.scheduleRuns(25, report);
        sys.run();
        return report.stageMeanMs(Stage::Inference);
    };
    EXPECT_GT(run_thermal(true), run_thermal(false) * 1.1);
}

} // namespace
} // namespace aitax
