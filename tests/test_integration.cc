/**
 * @file
 * Integration tests: miniature replicas of every experiment in the
 * paper's evaluation, asserting the *shape* of each result — who wins,
 * by roughly what factor, and in which direction effects move.
 */

#include <gtest/gtest.h>

#include "app/background_load.h"
#include "app/pipeline.h"
#include "core/analyzer.h"
#include "soc/chipsets.h"
#include "trace/render.h"

namespace aitax {
namespace {

using app::Application;
using app::FrameworkKind;
using app::HarnessMode;
using app::PipelineConfig;
using core::Stage;
using core::TaxReport;
using tensor::DType;

TaxReport
run(const char *model, DType dtype, FrameworkKind fw, HarnessMode mode,
    int runs = 30, std::uint64_t seed = 7, int threads = 4)
{
    soc::SocSystem sys(soc::makeSnapdragon845(), seed);
    PipelineConfig cfg;
    cfg.model = models::findModel(model);
    cfg.dtype = dtype;
    cfg.framework = fw;
    cfg.mode = mode;
    cfg.threads = threads;
    Application app(sys, cfg);
    TaxReport report;
    app.scheduleRuns(runs, report);
    sys.run();
    return report;
}

// --- Fig 3: benchmark vs app end-to-end gap -----------------------------

TEST(Fig3, AppsSlowerThanBenchmarksAcrossModels)
{
    for (const char *model :
         {"mobilenet_v1", "efficientnet_lite0", "inception_v3"}) {
        const auto bench = run(model, DType::Float32,
                               FrameworkKind::TfliteCpu,
                               HarnessMode::CliBenchmark, 15);
        const auto app = run(model, DType::Float32,
                             FrameworkKind::TfliteCpu,
                             HarnessMode::AndroidApp, 15);
        EXPECT_GT(app.endToEndMeanMs(), bench.endToEndMeanMs() * 1.1)
            << model;
    }
}

TEST(Fig3, InceptionV3AppGapTensOfMs)
{
    // Paper: app ~350 ms vs benchmark ~250 ms for Inception V3 fp32.
    const auto bench =
        run("inception_v3", DType::Float32, FrameworkKind::TfliteCpu,
            HarnessMode::CliBenchmark, 15);
    const auto app =
        run("inception_v3", DType::Float32, FrameworkKind::TfliteCpu,
            HarnessMode::AndroidApp, 15);
    EXPECT_NEAR(bench.endToEndMeanMs(), 250.0, 60.0);
    EXPECT_GT(app.endToEndMeanMs() - bench.endToEndMeanMs(), 20.0);
}

TEST(Fig3, BenchmarkAppSitsBetweenCliAndRealApp)
{
    const auto cli = run("mobilenet_v1", DType::UInt8,
                         FrameworkKind::TfliteCpu,
                         HarnessMode::CliBenchmark, 15);
    const auto bench_app = run("mobilenet_v1", DType::UInt8,
                               FrameworkKind::TfliteCpu,
                               HarnessMode::BenchmarkApp, 15);
    const auto app = run("mobilenet_v1", DType::UInt8,
                         FrameworkKind::TfliteCpu,
                         HarnessMode::AndroidApp, 15);
    EXPECT_LE(cli.endToEndMeanMs(), bench_app.endToEndMeanMs() * 1.1);
    EXPECT_LT(bench_app.endToEndMeanMs(), app.endToEndMeanMs());
}

// --- Fig 4: capture + pre-processing vs inference -----------------------

TEST(Fig4, QuantizedMobileNetTaxApproachesTwiceInference)
{
    // "Models such as quantized MobileNet v1 spent up to two times as
    // much time acquiring and processing data than performing
    // inference."
    const auto app = run("mobilenet_v1", DType::UInt8,
                         FrameworkKind::TfliteCpu,
                         HarnessMode::AndroidApp, 40);
    const double ratio = (app.stageMeanMs(Stage::DataCapture) +
                          app.stageMeanMs(Stage::PreProcessing)) /
                         app.stageMeanMs(Stage::Inference);
    EXPECT_GT(ratio, 1.0);
    EXPECT_LT(ratio, 3.0);
}

TEST(Fig4, InferenceDominatesOnlyForInception)
{
    const auto inception = run("inception_v3", DType::Float32,
                               FrameworkKind::TfliteCpu,
                               HarnessMode::AndroidApp, 15);
    EXPECT_GT(inception.stageMeanMs(Stage::Inference),
              inception.aiTaxMeanMs());

    const auto mobilenet = run("mobilenet_v1", DType::UInt8,
                               FrameworkKind::TfliteCpu,
                               HarnessMode::AndroidApp, 15);
    EXPECT_LT(mobilenet.stageMeanMs(Stage::Inference),
              mobilenet.aiTaxMeanMs());
}

TEST(Fig4, BenchmarkCaptureNegligibleForFloatNotInt)
{
    // Random real generation is nearly free under libc++; integer
    // generation is not (Section IV-A's stdlib trap).
    const auto f = run("mobilenet_v1", DType::Float32,
                       FrameworkKind::TfliteCpu,
                       HarnessMode::CliBenchmark, 15);
    const auto q = run("mobilenet_v1", DType::UInt8,
                       FrameworkKind::TfliteCpu,
                       HarnessMode::CliBenchmark, 15);
    EXPECT_LT(f.stageMeanMs(Stage::DataCapture), 1.0);
    EXPECT_GT(q.stageMeanMs(Stage::DataCapture),
              3.0 * f.stageMeanMs(Stage::DataCapture));
}

TEST(Fig4, AiTaxCanReachHalfOfEndToEnd)
{
    // Key claim #2 of the paper: the tax can consume ~50% of E2E time.
    const auto app = run("mobilenet_v1", DType::UInt8,
                         FrameworkKind::TfliteCpu,
                         HarnessMode::AndroidApp, 40);
    EXPECT_GT(app.aiTaxFraction(), 0.45);
}

// --- Fig 5: NNAPI INT8 fallback ------------------------------------------

TEST(Fig5, NnapiInt8EfficientNetDegradesSevenFold)
{
    const auto cpu1 =
        run("efficientnet_lite0", DType::UInt8, FrameworkKind::TfliteCpu,
            HarnessMode::CliBenchmark, 15, 7, /*threads=*/1);
    const auto nnapi =
        run("efficientnet_lite0", DType::UInt8,
            FrameworkKind::TfliteNnapi, HarnessMode::CliBenchmark, 15);
    const double slowdown = nnapi.stageMeanMs(Stage::Inference) /
                            cpu1.stageMeanMs(Stage::Inference);
    EXPECT_GT(slowdown, 4.0);
    EXPECT_LT(slowdown, 10.0);
}

TEST(Fig5, FloatEfficientNetDoesNotShowTheBug)
{
    // "Interestingly this does not occur in the floating-point model."
    const auto cpu = run("efficientnet_lite0", DType::Float32,
                         FrameworkKind::TfliteCpu,
                         HarnessMode::CliBenchmark, 15);
    const auto nnapi = run("efficientnet_lite0", DType::Float32,
                           FrameworkKind::TfliteNnapi,
                           HarnessMode::CliBenchmark, 15);
    EXPECT_LT(nnapi.stageMeanMs(Stage::Inference),
              cpu.stageMeanMs(Stage::Inference) * 1.5);
}

TEST(Fig5, HexagonDelegateBeatsCpuForInt8)
{
    const auto cpu = run("efficientnet_lite0", DType::UInt8,
                         FrameworkKind::TfliteCpu,
                         HarnessMode::CliBenchmark, 15);
    const auto hex = run("efficientnet_lite0", DType::UInt8,
                         FrameworkKind::TfliteHexagon,
                         HarnessMode::CliBenchmark, 15);
    EXPECT_LT(hex.stageMeanMs(Stage::Inference),
              cpu.stageMeanMs(Stage::Inference));
}

// --- Section IV-B: NNAPI-DSP vs CPU vs SNPE -------------------------------

TEST(FrameworkStudy, NnapiDspSlowerThanCpuExceptInceptionV4)
{
    struct Case
    {
        const char *model;
        bool nnapi_wins;
    };
    const Case cases[] = {
        {"mobilenet_v1", false},
        {"ssd_mobilenet_v2", false},
        {"inception_v3", false},
        {"inception_v4", true},
    };
    for (const auto &c : cases) {
        const auto cpu = run(c.model, DType::UInt8,
                             FrameworkKind::TfliteCpu,
                             HarnessMode::CliBenchmark, 10);
        const auto nnapi = run(c.model, DType::UInt8,
                               FrameworkKind::TfliteNnapi,
                               HarnessMode::CliBenchmark, 10);
        const bool nnapi_wins = nnapi.stageMeanMs(Stage::Inference) <
                                cpu.stageMeanMs(Stage::Inference);
        EXPECT_EQ(nnapi_wins, c.nnapi_wins) << c.model;
    }
}

TEST(FrameworkStudy, SnpeDspAlwaysBeatsCpu)
{
    for (const char *model :
         {"mobilenet_v1", "inception_v3", "inception_v4"}) {
        const auto cpu = run(model, DType::UInt8,
                             FrameworkKind::TfliteCpu,
                             HarnessMode::CliBenchmark, 10);
        const auto snpe = run(model, DType::UInt8,
                              FrameworkKind::SnpeDsp,
                              HarnessMode::CliBenchmark, 10);
        EXPECT_LT(snpe.stageMeanMs(Stage::Inference),
                  cpu.stageMeanMs(Stage::Inference))
            << model;
    }
}

TEST(FrameworkStudy, AdvisorRecommendsSnpeForQuantizedMobileNet)
{
    const auto cpu = run("mobilenet_v1", DType::UInt8,
                         FrameworkKind::TfliteCpu,
                         HarnessMode::CliBenchmark, 10);
    const auto nnapi = run("mobilenet_v1", DType::UInt8,
                           FrameworkKind::TfliteNnapi,
                           HarnessMode::CliBenchmark, 10);
    const auto snpe = run("mobilenet_v1", DType::UInt8,
                          FrameworkKind::SnpeDsp,
                          HarnessMode::CliBenchmark, 10);
    const auto choice = core::adviseFramework(
        {{"cpu", &cpu}, {"nnapi", &nnapi}, {"snpe", &snpe}});
    EXPECT_EQ(choice.framework, "snpe");
    EXPECT_GT(choice.speedupVsWorst, 1.0);
}

// --- Fig 8: offload amortization ------------------------------------------

TEST(Fig8, OffloadOverheadAmortizesOverConsecutiveInferences)
{
    soc::SocSystem sys(soc::makeSnapdragon845(), 7);
    PipelineConfig cfg;
    cfg.model = models::findModel("mobilenet_v1");
    cfg.dtype = DType::UInt8;
    cfg.framework = FrameworkKind::TfliteHexagon;
    cfg.mode = HarnessMode::CliBenchmark;
    Application app(sys, cfg);
    TaxReport report;
    app.scheduleRuns(50, report);
    sys.run();

    const auto series = core::offloadShareSeries(app.rpcLog());
    ASSERT_EQ(series.size(), 50u);
    // Cold start dominates the first call...
    EXPECT_GT(series[0], 0.4);
    // ...and amortizes away.
    EXPECT_LT(series[49], series[0] / 3.0);
    for (std::size_t i = 1; i < series.size(); ++i)
        EXPECT_LE(series[i], series[i - 1] + 1e-12);
}

// --- Fig 9 / 10: multi-tenancy --------------------------------------------

TaxReport
runWithBackground(FrameworkKind bg_framework, int bg_processes,
                  std::uint64_t seed = 7)
{
    soc::SocSystem sys(soc::makeSnapdragon845(), seed);
    PipelineConfig cfg;
    cfg.model = models::findModel("mobilenet_v1");
    cfg.dtype = DType::UInt8;
    cfg.framework = FrameworkKind::TfliteHexagon; // app uses the DSP
    cfg.mode = HarnessMode::AndroidApp;
    Application app(sys, cfg);

    std::vector<std::unique_ptr<app::BackgroundInferenceLoop>> loops;
    for (int i = 0; i < bg_processes; ++i) {
        app::BackgroundLoadConfig bg;
        bg.model = models::findModel("mobilenet_v1");
        bg.dtype = DType::UInt8;
        bg.framework = bg_framework;
        bg.processId = 100 + i;
        loops.push_back(
            std::make_unique<app::BackgroundInferenceLoop>(sys, bg));
        loops.back()->start(sim::secToNs(30.0));
    }

    TaxReport report;
    app.scheduleRuns(15, report, [&](sim::TimeNs) {
        for (auto &loop : loops)
            loop->stop();
    });
    sys.run();
    return report;
}

TEST(Fig9, DspContentionGrowsInferenceLinearly)
{
    const auto r0 = runWithBackground(FrameworkKind::TfliteHexagon, 0);
    const auto r2 = runWithBackground(FrameworkKind::TfliteHexagon, 2);
    const auto r4 = runWithBackground(FrameworkKind::TfliteHexagon, 4);
    // Inference stalls on the single DSP.
    EXPECT_GT(r2.stageMeanMs(Stage::Inference),
              r0.stageMeanMs(Stage::Inference) * 1.5);
    EXPECT_GT(r4.stageMeanMs(Stage::Inference),
              r2.stageMeanMs(Stage::Inference) * 1.2);
    // Pre-processing stays approximately constant (CPU unaffected).
    EXPECT_LT(r4.stageMeanMs(Stage::PreProcessing),
              r0.stageMeanMs(Stage::PreProcessing) * 1.5);
}

TEST(Fig10, CpuContentionGrowsPreProcessingNotInference)
{
    const auto r0 = runWithBackground(FrameworkKind::TfliteCpu, 0);
    const auto r4 = runWithBackground(FrameworkKind::TfliteCpu, 4);
    // Capture+pre-processing compete with background CPU inference.
    const double pre0 = r0.stageMeanMs(Stage::DataCapture) +
                        r0.stageMeanMs(Stage::PreProcessing);
    const double pre4 = r4.stageMeanMs(Stage::DataCapture) +
                        r4.stageMeanMs(Stage::PreProcessing);
    EXPECT_GT(pre4, pre0 * 1.15);
    // Inference stays approximately constant (DSP uncontended).
    EXPECT_LT(r4.stageMeanMs(Stage::Inference),
              r0.stageMeanMs(Stage::Inference) * 1.35);
}

TEST(Fig9Extension, DspPreprocessingInheritsDspContention)
{
    // With pre-processing offloaded to the DSP (the intro's proposal),
    // background DSP inferences now stall the *pre-processing* stage
    // too — the tax follows the placement.
    auto run_cfg = [&](int bg_processes) {
        soc::SocSystem sys(soc::makeSnapdragon845(), 7);
        PipelineConfig cfg;
        cfg.model = models::findModel("mobilenet_v1");
        cfg.dtype = DType::UInt8;
        cfg.framework = FrameworkKind::TfliteHexagon;
        cfg.mode = HarnessMode::AndroidApp;
        cfg.preprocessOnDsp = true;
        Application app(sys, cfg);
        std::vector<std::unique_ptr<app::BackgroundInferenceLoop>>
            loops;
        for (int i = 0; i < bg_processes; ++i) {
            app::BackgroundLoadConfig bg;
            bg.model = models::findModel("mobilenet_v1");
            bg.dtype = DType::UInt8;
            bg.framework = FrameworkKind::TfliteHexagon;
            bg.processId = 100 + i;
            loops.push_back(
                std::make_unique<app::BackgroundInferenceLoop>(sys,
                                                               bg));
            loops.back()->start(sim::secToNs(30.0));
        }
        TaxReport report;
        app.scheduleRuns(15, report, [&](sim::TimeNs) {
            for (auto &loop : loops)
                loop->stop();
        });
        sys.run();
        return report;
    };
    const auto quiet = run_cfg(0);
    const auto contended = run_cfg(4);
    EXPECT_GT(contended.stageMeanMs(Stage::PreProcessing),
              quiet.stageMeanMs(Stage::PreProcessing) * 3.0);
    EXPECT_GT(contended.stageMeanMs(Stage::Inference),
              quiet.stageMeanMs(Stage::Inference) * 2.0);
}

// --- Fig 11: run-to-run variability ----------------------------------------

TEST(Fig11, AppDistributionMuchWiderThanBenchmark)
{
    const auto bench = run("mobilenet_v1", DType::Float32,
                           FrameworkKind::TfliteCpu,
                           HarnessMode::CliBenchmark, 60);
    const auto app = run("mobilenet_v1", DType::Float32,
                         FrameworkKind::TfliteCpu,
                         HarnessMode::AndroidApp, 60);
    EXPECT_LT(bench.endToEnd().cv(), 0.05);
    EXPECT_GT(app.endToEnd().cv(), 2.0 * bench.endToEnd().cv());
    // Deviations up to tens of percent from the median (paper: ~30%).
    EXPECT_GT(app.endToEnd().maxDeviationFromMedianPct(), 10.0);
}

// --- Section III-D: probe effect --------------------------------------------

TEST(ProbeEffect, InstrumentationSlowsAcceleratedInferenceOnly)
{
    auto run_instr = [&](bool instrument, FrameworkKind fw,
                         DType dtype) {
        soc::SocSystem sys(soc::makeSnapdragon845(), 7);
        PipelineConfig cfg;
        cfg.model = models::findModel("mobilenet_v1");
        cfg.dtype = dtype;
        cfg.framework = fw;
        cfg.mode = HarnessMode::CliBenchmark;
        cfg.instrumentationEnabled = instrument;
        Application app(sys, cfg);
        TaxReport report;
        app.scheduleRuns(30, report);
        sys.run();
        return report.stageMeanMs(Stage::Inference);
    };

    const double dsp_off = run_instr(false, FrameworkKind::TfliteHexagon,
                                     DType::UInt8);
    const double dsp_on = run_instr(true, FrameworkKind::TfliteHexagon,
                                    DType::UInt8);
    const double ratio = dsp_on / dsp_off;
    EXPECT_GT(ratio, 1.02);
    EXPECT_LT(ratio, 1.09);

    const double cpu_off =
        run_instr(false, FrameworkKind::TfliteCpu, DType::UInt8);
    const double cpu_on =
        run_instr(true, FrameworkKind::TfliteCpu, DType::UInt8);
    EXPECT_NEAR(cpu_on / cpu_off, 1.0, 0.02);
}

// --- Table II: platform generations ----------------------------------------

TEST(TableII, NewerChipsetsAreFaster)
{
    double prev = 1e18;
    for (const auto &platform : soc::allPlatforms()) {
        soc::SocSystem sys(platform, 7);
        PipelineConfig cfg;
        cfg.model = models::findModel("mobilenet_v1");
        cfg.dtype = DType::UInt8;
        cfg.framework = FrameworkKind::SnpeDsp;
        cfg.mode = HarnessMode::CliBenchmark;
        Application app(sys, cfg);
        TaxReport report;
        app.scheduleRuns(10, report);
        sys.run();
        EXPECT_LT(report.stageMeanMs(Stage::Inference), prev)
            << platform.socName;
        prev = report.stageMeanMs(Stage::Inference);
    }
}

// --- Fig 6: profiler timeline ------------------------------------------------

TEST(Fig6, NnapiFallbackShowsSingleThreadedCpuAndMigrations)
{
    soc::SocSystem sys(soc::makeSnapdragon845(), 7);
    PipelineConfig cfg;
    cfg.model = models::findModel("efficientnet_lite0");
    cfg.dtype = DType::UInt8;
    cfg.framework = FrameworkKind::TfliteNnapi;
    cfg.mode = HarnessMode::BenchmarkApp; // UI interference present
    Application app(sys, cfg);
    TaxReport report;
    app.scheduleRuns(10, report);
    sys.run();

    // The DSP never runs the model...
    EXPECT_EQ(sys.dsp().jobsCompleted(), 0);
    // ...the CPU does, with scheduler migrations from UI interference.
    EXPECT_GT(sys.scheduler().migrations(), 0);
    // The render path produces a non-empty timeline.
    std::ostringstream os;
    trace::renderTimeline(os, sys.tracer(), 0, sys.simulator().now());
    EXPECT_NE(os.str().find("cpu4"), std::string::npos);
}

TEST(Fig6, HexagonRunShowsDspUtilization)
{
    soc::SocSystem sys(soc::makeSnapdragon845(), 7);
    PipelineConfig cfg;
    cfg.model = models::findModel("efficientnet_lite0");
    cfg.dtype = DType::UInt8;
    cfg.framework = FrameworkKind::TfliteHexagon;
    cfg.mode = HarnessMode::CliBenchmark;
    Application app(sys, cfg);
    TaxReport report;
    app.scheduleRuns(10, report);
    sys.run();
    EXPECT_EQ(sys.dsp().jobsCompleted(), 10);
    EXPECT_FALSE(sys.tracer().intervals("Hexagon 685").empty());
    // AXI counter saw traffic.
    EXPECT_FALSE(sys.tracer().counter("axi_bytes").empty());
}

} // namespace
} // namespace aitax
