/**
 * @file
 * Model zoo tests: Table I registry contents and per-model structural
 * checks (MAC / parameter budgets against published figures).
 */

#include <gtest/gtest.h>

#include <set>

#include "graph/serialize.h"
#include "models/zoo.h"

namespace aitax::models {
namespace {

using tensor::DType;

// --- Registry (Table I) ----------------------------------------------

TEST(Zoo, HasElevenTableIModels)
{
    EXPECT_EQ(allModels().size(), 11u);
}

TEST(Zoo, IdsAreUnique)
{
    std::set<std::string> ids;
    for (const auto &m : allModels())
        EXPECT_TRUE(ids.insert(m.id).second) << m.id;
}

TEST(Zoo, FindModel)
{
    ASSERT_NE(findModel("mobilenet_v1"), nullptr);
    EXPECT_EQ(findModel("mobilenet_v1")->displayName, "MobileNet 1.0 v1");
    EXPECT_EQ(findModel("nonexistent"), nullptr);
}

TEST(Zoo, TableIResolutions)
{
    EXPECT_EQ(findModel("mobilenet_v1")->inputH, 224);
    EXPECT_EQ(findModel("nasnet_mobile")->inputH, 331);
    EXPECT_EQ(findModel("squeezenet")->inputH, 227);
    EXPECT_EQ(findModel("efficientnet_lite0")->inputH, 224);
    EXPECT_EQ(findModel("alexnet")->inputH, 256);
    EXPECT_EQ(findModel("inception_v4")->inputH, 299);
    EXPECT_EQ(findModel("inception_v3")->inputH, 299);
    EXPECT_EQ(findModel("deeplab_v3")->inputH, 513);
    EXPECT_EQ(findModel("ssd_mobilenet_v2")->inputH, 300);
    EXPECT_EQ(findModel("posenet")->inputH, 224);
    EXPECT_EQ(findModel("mobile_bert")->inputH, 0);
    EXPECT_EQ(findModel("mobile_bert")->seqLen, 128);
}

TEST(Zoo, TableISupportMatrix)
{
    // Spot-check the paper's support columns.
    const auto *mobilenet = findModel("mobilenet_v1");
    EXPECT_TRUE(mobilenet->nnapiFp32 && mobilenet->nnapiInt8 &&
                mobilenet->cpuFp32 && mobilenet->cpuInt8);

    const auto *nasnet = findModel("nasnet_mobile");
    EXPECT_TRUE(nasnet->nnapiFp32 && nasnet->cpuFp32);
    EXPECT_FALSE(nasnet->nnapiInt8 || nasnet->cpuInt8);

    const auto *alexnet = findModel("alexnet");
    EXPECT_FALSE(alexnet->nnapiFp32 || alexnet->nnapiInt8);
    EXPECT_TRUE(alexnet->cpuFp32 && alexnet->cpuInt8);

    const auto *posenet = findModel("posenet");
    EXPECT_TRUE(posenet->nnapiFp32 && posenet->cpuFp32);
    EXPECT_FALSE(posenet->nnapiInt8);
}

TEST(Zoo, SupportsHelper)
{
    const auto *m = findModel("nasnet_mobile");
    EXPECT_TRUE(m->supports(true, DType::Float32));
    EXPECT_FALSE(m->supports(true, DType::UInt8));
    EXPECT_TRUE(m->supports(false, DType::Float32));
}

TEST(Zoo, PreProcessingTasksMatchTableI)
{
    using enum PreTask;
    EXPECT_EQ(findModel("mobilenet_v1")->preTasks,
              (std::vector<PreTask>{Scale, Crop, Normalize}));
    EXPECT_EQ(findModel("deeplab_v3")->preTasks,
              (std::vector<PreTask>{Scale, Normalize}));
    EXPECT_EQ(findModel("posenet")->preTasks,
              (std::vector<PreTask>{Scale, Crop, Normalize, Rotate}));
    EXPECT_EQ(findModel("mobile_bert")->preTasks,
              (std::vector<PreTask>{Tokenize}));
}

TEST(Zoo, PostProcessingTasksMatchTableI)
{
    using enum PostTask;
    EXPECT_EQ(findModel("squeezenet")->postTasks,
              (std::vector<PostTask>{TopK, Dequantize}));
    EXPECT_EQ(findModel("deeplab_v3")->postTasks,
              (std::vector<PostTask>{MaskFlatten}));
    EXPECT_EQ(findModel("posenet")->postTasks,
              (std::vector<PostTask>{Keypoints}));
}

TEST(Zoo, TaskNames)
{
    EXPECT_EQ(taskName(Task::Classification), "Classification");
    EXPECT_EQ(taskName(Task::LanguageProcessing), "Language Processing");
    EXPECT_EQ(preTaskName(PreTask::Scale), "scale");
    EXPECT_EQ(postTaskName(PostTask::TopK), "topK");
}

// --- Graph structural checks -----------------------------------------

struct ModelBudget
{
    const char *id;
    double min_gmacs;
    double max_gmacs;
    double min_mparams;
    double max_mparams;
};

/**
 * Published-complexity envelopes. Exact published numbers where they
 * exist (MobileNet 0.569 GMACs / 4.2 M; Inception v3 5.7 G / 23.8 M;
 * Inception v4 12.3 G / 42.7 M; SqueezeNet 1.25 M params; AlexNet
 * ~62 M params), with tolerant bands for architectures we linearize.
 */
class ModelBudgetTest : public ::testing::TestWithParam<ModelBudget>
{
};

TEST_P(ModelBudgetTest, MacsAndParamsInBand)
{
    const auto &b = GetParam();
    const auto g = buildGraph(b.id, DType::Float32);
    const double gmacs = static_cast<double>(g.totalMacs()) / 1e9;
    const double mparams = static_cast<double>(g.totalParams()) / 1e6;
    EXPECT_GE(gmacs, b.min_gmacs) << b.id;
    EXPECT_LE(gmacs, b.max_gmacs) << b.id;
    EXPECT_GE(mparams, b.min_mparams) << b.id;
    EXPECT_LE(mparams, b.max_mparams) << b.id;
}

INSTANTIATE_TEST_SUITE_P(
    Budgets, ModelBudgetTest,
    ::testing::Values(
        ModelBudget{"mobilenet_v1", 0.50, 0.65, 3.8, 4.6},
        ModelBudget{"nasnet_mobile", 0.4, 1.4, 2.0, 7.0},
        ModelBudget{"squeezenet", 0.7, 0.95, 1.0, 1.5},
        ModelBudget{"efficientnet_lite0", 0.30, 0.50, 4.0, 5.5},
        ModelBudget{"alexnet", 0.9, 1.3, 55.0, 68.0},
        ModelBudget{"inception_v3", 5.2, 6.2, 22.0, 26.0},
        ModelBudget{"inception_v4", 11.0, 13.5, 40.0, 46.0},
        ModelBudget{"deeplab_v3", 2.0, 4.0, 1.5, 3.5},
        ModelBudget{"ssd_mobilenet_v2", 0.55, 0.95, 4.5, 7.5},
        ModelBudget{"posenet", 0.6, 1.1, 2.5, 4.5},
        ModelBudget{"mobile_bert", 1.5, 3.5, 20.0, 40.0}),
    [](const auto &info) { return std::string(info.param.id); });

/** Every model must validate and build at both formats it supports. */
class ModelValidation
    : public ::testing::TestWithParam<std::tuple<int, DType>>
{
};

TEST_P(ModelValidation, BuildsAndValidates)
{
    const auto &info = allModels()[static_cast<std::size_t>(
        std::get<0>(GetParam()))];
    const DType dtype = std::get<1>(GetParam());
    const auto g = buildGraph(info, dtype);
    EXPECT_EQ(g.validate(), "") << info.id;
    EXPECT_EQ(g.dtype(), dtype);
    EXPECT_GT(g.opCount(), 5u);
}

INSTANTIATE_TEST_SUITE_P(
    AllModels, ModelValidation,
    ::testing::Combine(::testing::Range(0, 11),
                       ::testing::Values(DType::Float32, DType::UInt8)),
    [](const auto &info) {
        const auto &m =
            allModels()[static_cast<std::size_t>(std::get<0>(info.param))];
        return m.id + "_" +
               std::string(tensor::dtypeName(std::get<1>(info.param)));
    });

TEST(ZooGraphs, QuantizedGraphsCarryBoundaryOps)
{
    const auto g = buildGraph("mobilenet_v1", DType::UInt8);
    EXPECT_EQ(g.ops().front().kind, graph::OpKind::Quantize);
    EXPECT_EQ(g.ops().back().kind, graph::OpKind::Dequantize);

    const auto gf = buildGraph("mobilenet_v1", DType::Float32);
    EXPECT_NE(gf.ops().front().kind, graph::OpKind::Quantize);
}

TEST(ZooGraphs, InputShapesMatchTableI)
{
    for (const auto &m : allModels()) {
        const auto g = buildGraph(m, DType::Float32);
        if (m.task == Task::LanguageProcessing) {
            EXPECT_EQ(g.inputShape(), tensor::Shape({1, 128}));
            continue;
        }
        // AlexNet consumes the center-cropped 227 view of its 256
        // capture; everything else consumes Table I's resolution.
        const std::int64_t expect_h =
            (m.id == "alexnet") ? 227 : m.inputH;
        EXPECT_EQ(g.inputShape().height(), expect_h) << m.id;
        EXPECT_EQ(g.inputShape().channels(), 3) << m.id;
    }
}

TEST(ZooGraphs, ClassifierOutputsClassCounts)
{
    EXPECT_EQ(buildGraph("mobilenet_v1", DType::Float32)
                  .outputShape()
                  .elementCount(),
              1001);
    EXPECT_EQ(buildGraph("squeezenet", DType::Float32)
                  .outputShape()
                  .elementCount(),
              1000);
}

TEST(ZooGraphs, DeeplabOutputsDenseMask)
{
    const auto g = buildGraph("deeplab_v3", DType::Float32);
    EXPECT_EQ(g.outputShape(), tensor::Shape::nhwc(513, 513, 21));
}

TEST(ZooGraphs, InceptionV4IsLargestConvNet)
{
    const auto v4 = buildGraph("inception_v4", DType::Float32);
    for (const auto &m : allModels()) {
        if (m.id == "inception_v4")
            continue;
        const auto g = buildGraph(m, DType::Float32);
        EXPECT_LT(g.totalMacs(), v4.totalMacs()) << m.id;
    }
}

TEST(ZooGraphs, Int8HalvesNothingButBytes)
{
    // MACs are format-independent; parameter bytes shrink 4x.
    const auto f = buildGraph("inception_v3", DType::Float32);
    const auto q = buildGraph("inception_v3", DType::UInt8);
    EXPECT_EQ(f.totalMacs(), q.totalMacs());
    EXPECT_EQ(f.paramBytes(), 4 * q.paramBytes());
}

TEST(ZooGraphs, EveryModelSerializesAndRoundTrips)
{
    for (const auto &m : allModels()) {
        const auto g = buildGraph(m, DType::Float32);
        const std::string text = graph::serializeGraph(g);
        graph::Graph parsed;
        std::string error;
        ASSERT_TRUE(graph::parseGraph(text, parsed, error))
            << m.id << ": " << error;
        EXPECT_EQ(parsed.opCount(), g.opCount()) << m.id;
        EXPECT_EQ(parsed.totalMacs(), g.totalMacs()) << m.id;
        EXPECT_EQ(parsed.totalParams(), g.totalParams()) << m.id;
        EXPECT_EQ(parsed.validate(), "") << m.id;
    }
}

} // namespace
} // namespace aitax::models
