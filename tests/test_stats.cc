/**
 * @file
 * Unit tests for the statistics module.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <sstream>

#include "stats/accumulator.h"
#include "stats/distribution.h"
#include "stats/numfmt.h"
#include "stats/table.h"

namespace aitax::stats {
namespace {

// --- Accumulator -----------------------------------------------------

TEST(Accumulator, EmptyIsZero)
{
    Accumulator a;
    EXPECT_EQ(a.count(), 0u);
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
    EXPECT_DOUBLE_EQ(a.stddev(), 0.0);
    EXPECT_DOUBLE_EQ(a.min(), 0.0);
    EXPECT_DOUBLE_EQ(a.max(), 0.0);
}

TEST(Accumulator, BasicMoments)
{
    Accumulator a;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        a.add(x);
    EXPECT_EQ(a.count(), 8u);
    EXPECT_DOUBLE_EQ(a.mean(), 5.0);
    EXPECT_DOUBLE_EQ(a.variance(), 4.0); // population
    EXPECT_NEAR(a.sampleVariance(), 32.0 / 7.0, 1e-12);
    EXPECT_DOUBLE_EQ(a.min(), 2.0);
    EXPECT_DOUBLE_EQ(a.max(), 9.0);
    EXPECT_DOUBLE_EQ(a.sum(), 40.0);
}

TEST(Accumulator, SingleSample)
{
    Accumulator a;
    a.add(3.5);
    EXPECT_DOUBLE_EQ(a.mean(), 3.5);
    EXPECT_DOUBLE_EQ(a.variance(), 0.0);
    EXPECT_DOUBLE_EQ(a.stddev(), 0.0);
}

TEST(Accumulator, MergeMatchesCombined)
{
    Accumulator all;
    Accumulator a;
    Accumulator b;
    for (int i = 0; i < 100; ++i) {
        const double x = std::sin(i) * 10.0 + i * 0.1;
        all.add(x);
        (i % 2 ? a : b).add(x);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
    EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
    EXPECT_DOUBLE_EQ(a.min(), all.min());
    EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(Accumulator, MergeWithEmpty)
{
    Accumulator a;
    a.add(1.0);
    a.add(3.0);
    Accumulator empty;
    a.merge(empty);
    EXPECT_EQ(a.count(), 2u);
    EXPECT_DOUBLE_EQ(a.mean(), 2.0);

    Accumulator c;
    c.merge(a);
    EXPECT_EQ(c.count(), 2u);
    EXPECT_DOUBLE_EQ(c.mean(), 2.0);
}

TEST(Accumulator, CoefficientOfVariation)
{
    Accumulator a;
    for (double x : {9.0, 10.0, 11.0})
        a.add(x);
    EXPECT_NEAR(a.cv(), 1.0 / 10.0, 1e-12);
}

TEST(Accumulator, Reset)
{
    Accumulator a;
    a.add(5.0);
    a.reset();
    EXPECT_EQ(a.count(), 0u);
    a.add(2.0);
    EXPECT_DOUBLE_EQ(a.mean(), 2.0);
}

// --- Distribution ----------------------------------------------------

TEST(Distribution, PercentilesOnKnownData)
{
    Distribution d;
    for (int i = 1; i <= 100; ++i)
        d.add(static_cast<double>(i));
    EXPECT_DOUBLE_EQ(d.percentile(0.0), 1.0);
    EXPECT_DOUBLE_EQ(d.percentile(100.0), 100.0);
    EXPECT_NEAR(d.median(), 50.5, 1e-9);
    EXPECT_NEAR(d.percentile(25.0), 25.75, 1e-9);
    EXPECT_NEAR(d.p95(), 95.05, 1e-9);
}

TEST(Distribution, SingleSamplePercentiles)
{
    Distribution d;
    d.add(7.0);
    EXPECT_DOUBLE_EQ(d.median(), 7.0);
    EXPECT_DOUBLE_EQ(d.p99(), 7.0);
}

TEST(Distribution, EmptyIsSafe)
{
    Distribution d;
    EXPECT_DOUBLE_EQ(d.median(), 0.0);
    EXPECT_DOUBLE_EQ(d.mad(), 0.0);
    EXPECT_DOUBLE_EQ(d.maxDeviationFromMedianPct(), 0.0);
    EXPECT_TRUE(d.histogram(4).empty());
}

TEST(Distribution, MedianAbsoluteDeviation)
{
    Distribution d;
    for (double x : {1.0, 1.0, 2.0, 2.0, 4.0, 6.0, 9.0})
        d.add(x);
    // median = 2, |x - 2| = {1,1,0,0,2,4,7}, median of that = 1.
    EXPECT_DOUBLE_EQ(d.mad(), 1.0);
}

TEST(Distribution, MaxDeviationFromMedian)
{
    Distribution d;
    for (double x : {10.0, 10.0, 10.0, 13.0})
        d.add(x);
    // median 10, worst |13-10|/10 = 30%.
    EXPECT_NEAR(d.maxDeviationFromMedianPct(), 30.0, 1e-9);
}

TEST(Distribution, HistogramCountsAllSamples)
{
    Distribution d;
    for (int i = 0; i < 100; ++i)
        d.add(static_cast<double>(i % 10));
    const auto bins = d.histogram(5);
    ASSERT_EQ(bins.size(), 5u);
    std::size_t total = 0;
    for (const auto &b : bins) {
        EXPECT_LT(b.lo, b.hi);
        total += b.count;
    }
    EXPECT_EQ(total, 100u);
}

TEST(Distribution, HistogramDegenerateRange)
{
    Distribution d;
    d.add(5.0);
    d.add(5.0);
    const auto bins = d.histogram(3);
    ASSERT_EQ(bins.size(), 3u);
    std::size_t total = 0;
    for (const auto &b : bins)
        total += b.count;
    EXPECT_EQ(total, 2u);
}

TEST(Distribution, MeanConfidenceInterval)
{
    Distribution d;
    for (int i = 0; i < 100; ++i)
        d.add(10.0 + (i % 2 ? 1.0 : -1.0)); // mean 10, s ~= 1.005
    const double ci = d.meanConfidence95();
    EXPECT_NEAR(ci, 1.96 * d.stddev() / 10.0, 1e-12);
    EXPECT_GT(ci, 0.15);
    EXPECT_LT(ci, 0.25);
    Distribution single;
    single.add(5.0);
    EXPECT_DOUBLE_EQ(single.meanConfidence95(), 0.0);
}

TEST(Distribution, ConfidenceShrinksWithSamples)
{
    Distribution small;
    Distribution large;
    for (int i = 0; i < 10; ++i)
        small.add(i % 3);
    for (int i = 0; i < 1000; ++i)
        large.add(i % 3);
    EXPECT_LT(large.meanConfidence95(), small.meanConfidence95());
}

TEST(Distribution, IqrAndCv)
{
    Distribution d;
    for (int i = 1; i <= 100; ++i)
        d.add(static_cast<double>(i));
    EXPECT_NEAR(d.iqr(), 49.5, 1e-9);
    EXPECT_GT(d.cv(), 0.0);
}

TEST(Distribution, AddAfterQueryInvalidatesCache)
{
    Distribution d;
    d.add(1.0);
    d.add(3.0);
    EXPECT_DOUBLE_EQ(d.median(), 2.0);
    d.add(100.0);
    EXPECT_DOUBLE_EQ(d.median(), 3.0);
}

TEST(Distribution, SummaryMentionsCount)
{
    Distribution d;
    d.add(1.0);
    d.add(2.0);
    EXPECT_NE(d.summary().find("n=2"), std::string::npos);
}

// --- Table -----------------------------------------------------------

TEST(Table, RendersAlignedColumns)
{
    Table t({"name", "value"});
    t.addRow({"alpha", "1"});
    t.addRow({"b", "22"});
    std::ostringstream os;
    t.render(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("| name  | value |"), std::string::npos);
    EXPECT_NE(out.find("| alpha | 1     |"), std::string::npos);
    EXPECT_NE(out.find("| b     | 22    |"), std::string::npos);
}

TEST(Table, NumberFormatting)
{
    EXPECT_EQ(Table::num(3.14159, 2), "3.14");
    EXPECT_EQ(Table::num(static_cast<std::int64_t>(42)), "42");
    EXPECT_EQ(Table::pct(12.345, 1), "12.3%");
}

TEST(Table, CsvEscapesSpecials)
{
    Table t({"a", "b"});
    t.addRow({"plain", "has,comma"});
    t.addRow({"has\"quote", "x"});
    std::ostringstream os;
    t.renderCsv(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("\"has,comma\""), std::string::npos);
    EXPECT_NE(out.find("\"has\"\"quote\""), std::string::npos);
}

TEST(Table, CountsRowsAndColumns)
{
    Table t({"x", "y", "z"});
    EXPECT_EQ(t.columns(), 3u);
    EXPECT_EQ(t.rows(), 0u);
    t.addRow({"1", "2", "3"});
    EXPECT_EQ(t.rows(), 1u);
}

// --- Locale-free number formatting (stats/numfmt.h) ------------------

TEST(NumFmt, FormatG17MatchesPrintfG17)
{
    // The campaign wire format and goldens were written with C-locale
    // "%.17g"; formatG17 must reproduce those bytes exactly, forever,
    // in any locale.
    for (const double v :
         {0.0, 0.5, 0.1, 1.0 / 3.0, 62.183374463145633, -2586.9076671,
          1e-300, 1.7976931348623157e308, 292522.0}) {
        char ref[64];
        std::snprintf(ref, sizeof(ref), "%.17g", v);
        EXPECT_EQ(formatG17(v), ref) << v;
    }
}

TEST(NumFmt, ParseRoundTripsAndStopsAtDelimiters)
{
    double d = 0.0;
    const char *p = "  187.7437407078001 tail";
    EXPECT_TRUE(parseDouble(p, d));
    EXPECT_EQ(d, 187.7437407078001);
    EXPECT_STREQ(p, " tail");

    // Never a decimal comma, regardless of LC_NUMERIC.
    p = "3,5";
    EXPECT_TRUE(parseDouble(p, d));
    EXPECT_EQ(d, 3.0);
    EXPECT_STREQ(p, ",5");

    p = "nope";
    EXPECT_FALSE(parseDouble(p, d));

    std::uint64_t u = 0;
    p = " 18446744073709551615 x";
    EXPECT_TRUE(parseU64(p, u));
    EXPECT_EQ(u, 18446744073709551615ull);

    int i = 0;
    p = "12345678901"; // overflows int32
    EXPECT_FALSE(parseInt(p, i));
    p = " -42)";
    EXPECT_TRUE(parseInt(p, i));
    EXPECT_EQ(i, -42);
    EXPECT_STREQ(p, ")");
}

TEST(NumFmt, FormatParseRoundTripIsExact)
{
    for (const double v : {1.0 / 3.0, 0.1, 62.183374463145633,
                           4060.1275090281924, 1e-17}) {
        const std::string s = formatG17(v);
        const char *p = s.c_str();
        double back = 0.0;
        ASSERT_TRUE(parseDouble(p, back)) << s;
        EXPECT_EQ(back, v) << s;
    }
}

} // namespace
} // namespace aitax::stats
