/**
 * @file
 * Unit tests for the data-capture models: camera pacing and the
 * benchmark utility's random input generation.
 */

#include <gtest/gtest.h>

#include "capture/camera.h"
#include "capture/random_source.h"

namespace aitax::capture {
namespace {

using tensor::DType;

// --- camera ------------------------------------------------------------

TEST(Camera, FramePeriodFromFps)
{
    CameraConfig cfg;
    cfg.fps = 30.0;
    CameraModel cam(cfg);
    EXPECT_NEAR(sim::nsToMs(cam.framePeriodNs()), 33.33, 0.01);
}

TEST(Camera, FrameBytesAreNv21)
{
    CameraConfig cfg;
    cfg.width = 640;
    cfg.height = 480;
    CameraModel cam(cfg);
    EXPECT_DOUBLE_EQ(cam.frameBytes(), 640.0 * 480.0 * 1.5);
}

TEST(Camera, PhaseLockedWaitCoversRestOfPeriod)
{
    CameraConfig cfg;
    cfg.fps = 30.0;
    cfg.jitterMeanNs = 0;
    cfg.phaseLocked = true;
    CameraModel cam(cfg);
    sim::RandomStream rng(1);
    // At t=0, the next frame is a full period away.
    EXPECT_EQ(cam.waitForFrameNs(0, rng), cam.framePeriodNs());
    // Mid-period, only the remainder.
    const auto period = cam.framePeriodNs();
    EXPECT_EQ(cam.waitForFrameNs(period / 2, rng),
              period - period / 2);
}

TEST(Camera, FreeRunningWaitIsUniformOverPeriod)
{
    CameraConfig cfg;
    cfg.fps = 30.0;
    cfg.jitterMeanNs = 0;
    CameraModel cam(cfg);
    sim::RandomStream rng(1);
    double sum = 0.0;
    const int n = 4000;
    for (int i = 0; i < n; ++i) {
        const auto w = cam.waitForFrameNs(0, rng);
        EXPECT_GT(w, 0);
        EXPECT_LE(w, cam.framePeriodNs());
        sum += static_cast<double>(w);
    }
    // Mean of a uniform wait is half the frame period.
    EXPECT_NEAR(sum / n,
                static_cast<double>(cam.framePeriodNs()) / 2.0,
                static_cast<double>(cam.framePeriodNs()) * 0.05);
}

TEST(Camera, JitterIsNonNegative)
{
    CameraConfig cfg;
    CameraModel cam(cfg);
    sim::RandomStream rng(7);
    for (int i = 0; i < 100; ++i) {
        const auto w = cam.waitForFrameNs(i * 1'000'000, rng);
        EXPECT_GT(w, 0);
    }
}

TEST(Camera, GlueWorkScalesWithFrameSize)
{
    CameraConfig small;
    small.width = 320;
    small.height = 240;
    CameraConfig big;
    big.width = 1280;
    big.height = 720;
    EXPECT_GT(CameraModel(big).frameGlueWork().flops,
              CameraModel(small).frameGlueWork().flops);
}

TEST(Camera, CaptureFrameIsValidNv21)
{
    CameraConfig cfg;
    cfg.width = 64;
    cfg.height = 48;
    CameraModel cam(cfg);
    const auto frame = cam.captureFrame(0);
    EXPECT_EQ(frame.format(), imaging::PixelFormat::YuvNv21);
    EXPECT_EQ(frame.width(), 64);
    EXPECT_EQ(frame.byteSize(), 64u * 48u * 3u / 2u);
}

// --- random source -------------------------------------------------------

TEST(RandomSource, LibcppFloatsFasterThanInts)
{
    // Section IV-A: libc++ generates real numbers significantly faster
    // than integers.
    RandomInputSource src(StdlibFlavor::Libcpp);
    const auto f = src.generationWork(1000, DType::Float32);
    const auto i = src.generationWork(1000, DType::UInt8);
    EXPECT_LT(f.flops, i.flops);
}

TEST(RandomSource, LibstdcxxShowsOppositeBehaviour)
{
    // "Using a different standard library (libstdc++), we observed the
    // exact opposite behavior."
    RandomInputSource src(StdlibFlavor::Libstdcxx);
    const auto f = src.generationWork(1000, DType::Float32);
    const auto i = src.generationWork(1000, DType::UInt8);
    EXPECT_GT(f.flops, i.flops);
}

TEST(RandomSource, WorkScalesLinearlyWithElements)
{
    RandomInputSource src;
    const auto a = src.generationWork(1000, DType::Float32);
    const auto b = src.generationWork(2000, DType::Float32);
    EXPECT_NEAR(b.flops / a.flops, 2.0, 1e-9);
}

TEST(RandomSource, FillsFloatTensorInRange)
{
    RandomInputSource src;
    tensor::Tensor t(tensor::Shape({1000}), DType::Float32);
    sim::RandomStream rng(3);
    src.fill(t, rng);
    bool nonzero = false;
    for (float v : t.data<float>()) {
        EXPECT_GE(v, -1.0f);
        EXPECT_LE(v, 1.0f);
        nonzero |= (v != 0.0f);
    }
    EXPECT_TRUE(nonzero);
}

TEST(RandomSource, FillsQuantizedTensor)
{
    RandomInputSource src;
    tensor::Tensor t(tensor::Shape({1000}), DType::UInt8);
    sim::RandomStream rng(3);
    src.fill(t, rng);
    bool varied = false;
    const auto d = t.data<std::uint8_t>();
    for (std::size_t i = 1; i < d.size(); ++i)
        varied |= (d[i] != d[0]);
    EXPECT_TRUE(varied);
}

TEST(RandomSource, FlavorNames)
{
    EXPECT_EQ(stdlibFlavorName(StdlibFlavor::Libcpp), "libc++");
    EXPECT_EQ(stdlibFlavorName(StdlibFlavor::Libstdcxx), "libstdc++");
}

} // namespace
} // namespace aitax::capture
