/**
 * @file
 * Determinism tier: identical seeds must yield *byte-identical*
 * chrome-trace output on every Table II chipset — the property that
 * makes golden snapshots and seed replay trustworthy. Any ordering
 * leak (unordered-map iteration, uninitialized field, pointer-keyed
 * container) shows up here as a trace divergence.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "app/background_load.h"
#include "app/pipeline.h"
#include "soc/chipsets.h"
#include "trace/chrome_trace.h"
#include "verify/invariants.h"

namespace aitax::verify {
namespace {

using app::FrameworkKind;
using app::HarnessMode;
using tensor::DType;

/** Run the full pipeline and return the chrome-trace bytes. */
std::string
traceBytes(const soc::SocConfig &platform, FrameworkKind fw, DType dtype,
           std::uint64_t seed, int bg_processes)
{
    soc::SocSystem sys(platform, seed);
    app::PipelineConfig cfg;
    cfg.model = models::findModel("mobilenet_v1");
    cfg.dtype = dtype;
    cfg.framework = fw;
    cfg.mode = HarnessMode::AndroidApp;
    cfg.instrumentationEnabled = true;
    app::Application application(sys, cfg);

    std::vector<std::unique_ptr<app::BackgroundInferenceLoop>> loops;
    for (int i = 0; i < bg_processes; ++i) {
        app::BackgroundLoadConfig bg;
        bg.model = models::findModel("mobilenet_v1");
        bg.dtype = DType::UInt8;
        bg.framework = FrameworkKind::TfliteHexagon;
        bg.processId = 100 + i;
        loops.push_back(
            std::make_unique<app::BackgroundInferenceLoop>(sys, bg));
        loops.back()->start(sim::secToNs(30.0));
    }

    core::TaxReport report;
    application.scheduleRuns(8, report, [&](sim::TimeNs) {
        for (auto &loop : loops)
            loop->stop();
    });
    sys.run();

    std::ostringstream os;
    trace::writeChromeTrace(os, sys.tracer());
    return os.str();
}

class ChipsetDeterminism : public ::testing::TestWithParam<int>
{
  protected:
    soc::SocConfig
    platform() const
    {
        return soc::allPlatforms()[static_cast<std::size_t>(GetParam())];
    }
};

TEST_P(ChipsetDeterminism, CpuPipelineTraceIsByteIdentical)
{
    const auto a =
        traceBytes(platform(), FrameworkKind::TfliteCpu, DType::Float32,
                   31, 0);
    const auto b =
        traceBytes(platform(), FrameworkKind::TfliteCpu, DType::Float32,
                   31, 0);
    const auto check = checkTraceDeterminism(a, b);
    EXPECT_TRUE(check.passed)
        << platform().socName << ": " << check.detail;
    EXPECT_FALSE(a.empty());
}

TEST_P(ChipsetDeterminism, OffloadedContendedTraceIsByteIdentical)
{
    // The hardest case: FastRPC offload plus multi-tenant DSP
    // contention exercises the scheduler, channel and accelerator
    // queue orderings.
    const auto a = traceBytes(platform(), FrameworkKind::TfliteHexagon,
                              DType::UInt8, 47, 2);
    const auto b = traceBytes(platform(), FrameworkKind::TfliteHexagon,
                              DType::UInt8, 47, 2);
    const auto check = checkTraceDeterminism(a, b);
    EXPECT_TRUE(check.passed)
        << platform().socName << ": " << check.detail;
}

TEST_P(ChipsetDeterminism, DifferentSeedsDiverge)
{
    // The converse: seeds must actually matter, or the noise models
    // are dead and the variability results (Fig 11) are vacuous.
    const auto a =
        traceBytes(platform(), FrameworkKind::TfliteCpu, DType::Float32,
                   31, 0);
    const auto b =
        traceBytes(platform(), FrameworkKind::TfliteCpu, DType::Float32,
                   32, 0);
    EXPECT_NE(a, b) << platform().socName;
}

INSTANTIATE_TEST_SUITE_P(TableII, ChipsetDeterminism,
                         ::testing::Range(0, 4), [](const auto &info) {
                             std::string soc =
                                 soc::allPlatforms()
                                     [static_cast<std::size_t>(
                                          info.param)]
                                         .socName;
                             std::string digits;
                             for (char c : soc)
                                 if (c >= '0' && c <= '9')
                                     digits += c;
                             return "sd" + digits;
                         });

TEST(Determinism, ScenarioRunnerIsDeterministicForFuzzedConfigs)
{
    // End-to-end over the fuzzer itself: ten random scenarios, each
    // replayed, must reproduce their traces bit-exactly.
    for (int i = 0; i < 10; ++i) {
        const Scenario s = fuzzScenario(321, i);
        const auto a = runScenario(s);
        const auto b = runScenario(s);
        const auto check =
            checkTraceDeterminism(a.chromeTraceJson, b.chromeTraceJson);
        EXPECT_TRUE(check.passed) << s.describe() << ": " << check.detail;
        EXPECT_EQ(a.report.endToEndMeanMs(), b.report.endToEndMeanMs());
        EXPECT_EQ(a.energyMj, b.energyMj);
        EXPECT_EQ(a.endTimeNs, b.endTimeNs);
    }
}

} // namespace
} // namespace aitax::verify
