// Fixture: unordered containers in report-feeding code.
#include <string>
#include <unordered_map>
#include <unordered_set>

int
tally()
{
    std::unordered_map<std::string, int> counts;  // flagged
    std::unordered_set<int> seen;                 // flagged
    counts["x"] = 1;
    seen.insert(1);
    return static_cast<int>(counts.size() + seen.size());
}
