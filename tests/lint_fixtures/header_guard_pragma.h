// Fixture: #pragma once is an accepted guard.
#pragma once

struct PragmaGuarded
{
    int v;
};
