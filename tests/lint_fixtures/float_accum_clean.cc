// Fixture: double accumulation with a fixed order; must NOT trip
// float-accum.
#include <numeric>
#include <vector>

double
summarize(const std::vector<double> &xs)
{
    double total = 0.0;
    for (double x : xs)
        total += x;
    // std::accumulate is left-to-right: order is fixed.
    double r = std::accumulate(xs.begin(), xs.end(), 0.0);
    // float values are fine when they are not accumulators.
    float scale = 2.0F;
    return (total + r) * scale;
}
