# Self-check for the cross-file lint rules: runs aitax_lint over the
# bad and clean fixture trees and asserts the exact expected finding
# set, so rule regressions fail CI even when the main tree is clean.
#
# Invoked by ctest (see tests/CMakeLists.txt):
#   cmake -DLINT_CLI=<path> -DFIXTURES=<dir> -P check_fixture_trees.cmake

if(NOT DEFINED LINT_CLI OR NOT DEFINED FIXTURES)
    message(FATAL_ERROR "pass -DLINT_CLI=... and -DFIXTURES=...")
endif()

# --- tree_bad: exact findings, exit 1 ----------------------------------
execute_process(
    COMMAND "${LINT_CLI}" --root "${FIXTURES}/tree_bad" --strict -q
    OUTPUT_VARIABLE got_bad
    RESULT_VARIABLE rc_bad)
if(NOT rc_bad EQUAL 1)
    message(FATAL_ERROR "tree_bad: expected exit 1, got ${rc_bad}")
endif()
file(READ "${FIXTURES}/tree_bad_expected.txt" want_bad)
if(NOT got_bad STREQUAL want_bad)
    message(FATAL_ERROR "tree_bad: finding set drifted.\n"
                        "--- got ---\n${got_bad}"
                        "--- want ---\n${want_bad}")
endif()

# --- tree_clean: no findings, exit 0 -----------------------------------
execute_process(
    COMMAND "${LINT_CLI}" --root "${FIXTURES}/tree_clean" --strict -q
    OUTPUT_VARIABLE got_clean
    RESULT_VARIABLE rc_clean)
if(NOT rc_clean EQUAL 0)
    message(FATAL_ERROR "tree_clean: expected exit 0, got ${rc_clean}:\n"
                        "${got_clean}")
endif()

# --- --graph determinism: byte-identical across two runs ---------------
execute_process(
    COMMAND "${LINT_CLI}" --root "${FIXTURES}/tree_bad" --graph
    OUTPUT_VARIABLE dot1
    RESULT_VARIABLE rc_dot1)
execute_process(
    COMMAND "${LINT_CLI}" --root "${FIXTURES}/tree_bad" --graph
    OUTPUT_VARIABLE dot2
    RESULT_VARIABLE rc_dot2)
if(NOT rc_dot1 EQUAL 0 OR NOT rc_dot2 EQUAL 0)
    message(FATAL_ERROR "--graph failed (${rc_dot1}/${rc_dot2})")
endif()
if(NOT dot1 STREQUAL dot2)
    message(FATAL_ERROR "--graph output is not deterministic")
endif()

# --- --format json: well-formed counts, same verdict -------------------
execute_process(
    COMMAND "${LINT_CLI}" --root "${FIXTURES}/tree_bad" --strict
            --format json
    OUTPUT_VARIABLE json_bad
    RESULT_VARIABLE rc_json)
if(NOT rc_json EQUAL 1)
    message(FATAL_ERROR "json run: expected exit 1, got ${rc_json}")
endif()
if(NOT json_bad MATCHES "\"schema\": \"aitax-lint-report/1\"")
    message(FATAL_ERROR "json run: missing schema header:\n${json_bad}")
endif()
if(NOT json_bad MATCHES "\"counts\": {\"findings\": 5,")
    message(FATAL_ERROR "json run: expected 5 findings:\n${json_bad}")
endif()

message(STATUS "lint fixture trees: ok")
