// Fixture: value semantics and deleted special members; must NOT
// trip raw-new-delete (`= delete` is not deallocation).
#include <vector>

class Pool
{
  public:
    Pool() = default;
    Pool(const Pool &) = delete;
    Pool &operator=(const Pool &) = delete;

    int
    take()
    {
        if (free_.empty())
            free_.push_back(0);
        const int v = free_.back();
        free_.pop_back();
        return v;
    }

  private:
    std::vector<int> free_; // "a new slot" in prose is fine
};
