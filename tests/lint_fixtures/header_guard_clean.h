// Fixture: canonical guard for virtual path src/soc/fix.h.
#ifndef AITAX_SOC_FIX_H
#define AITAX_SOC_FIX_H

struct Guarded
{
    int v;
};

#endif
