// Fixture: std::sort without a total order.
#include <algorithm>
#include <vector>

struct Sample
{
    double score;
    int id;
};

void
rank(std::vector<Sample> &v)
{
    std::sort(v.begin(), v.end(), // flagged
              [](const Sample &a, const Sample &b) {
                  return a.score > b.score; // ties unordered!
              });
}
