// Fixture: #ifndef and #define name different macros.
#ifndef AITAX_SOC_FIX_H
#define AITAX_SOC_FIXX_H

struct Mismatched
{
    int v;
};

#endif
