// Fixture: EventFn instead of std::function; must NOT trip
// std-function. The word `function` alone (prose, member names) is
// not a match either.
#include "sim/inline_function.h"

struct Timer
{
    aitax::sim::EventFn onFire;
};

void
arm(Timer &t, aitax::sim::EventFn fn)
{
    // this function assigns a callback
    t.onFire = std::move(fn);
}
