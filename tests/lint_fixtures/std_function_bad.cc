// Fixture: std::function on a (pretend) sim hot path.
#include <functional>

struct Timer
{
    std::function<void()> onFire; // flagged
};

void
arm(Timer &t, std::function<void()> fn) // flagged
{
    t.onFire = std::move(fn);
}
