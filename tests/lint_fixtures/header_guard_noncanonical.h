// Fixture: consistent guard, but not the canonical AITAX_* name.
#ifndef FIX_H_INCLUDED
#define FIX_H_INCLUDED

struct NonCanonical
{
    int v;
};

#endif
