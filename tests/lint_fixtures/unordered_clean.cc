// Fixture: ordered containers; must NOT trip unordered-container.
#include <map>
#include <set>
#include <string>

int
tally()
{
    std::map<std::string, int> counts;
    std::set<int> seen;
    counts["x"] = 1;
    seen.insert(1);
    return static_cast<int>(counts.size() + seen.size());
}
