// Fixture: every form of wall-clock read the rule must catch.
// Not compiled; linted by tests/test_lint.cc under src/soc/.
#include <chrono>
#include <ctime>

long
sampleLatency()
{
    auto a = std::chrono::steady_clock::now();    // flagged
    auto b = std::chrono::system_clock::now();    // flagged
    auto c = std::chrono::high_resolution_clock::now(); // flagged
    std::time_t t = time(nullptr);                // flagged
    std::clock_t k = clock();                     // flagged
    struct timespec ts;
    clock_gettime(0, &ts);                        // flagged
    (void)a; (void)b; (void)c; (void)t; (void)k;
    return ts.tv_nsec;
}
