// Fixture: tidy includes; must NOT trip include-hygiene.
#include "sim/simulator.h"

#include <cstdlib>
#include <vector>

int
size()
{
    std::vector<int> v;
    (void)std::getenv("HOME");
    return static_cast<int>(v.size());
}
