/** Fixture: mutex-holding class with an unannotated guarded member. */

#ifndef AITAX_SWEEP_POOL_H
#define AITAX_SWEEP_POOL_H

#include <mutex>

namespace aitax::sweep {

struct JobPool
{
    std::mutex m;
    int pending = 0;
};

} // namespace aitax::sweep

#endif // AITAX_SWEEP_POOL_H
