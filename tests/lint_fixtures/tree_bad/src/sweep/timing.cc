/** Fixture: a 3-deep call chain whose bottom reads the wall clock.
 *  Legal here — src/sweep/ may read wall time — but taint-clock
 *  propagates the reach to restricted callers in other files. */

#include <chrono>

namespace aitax::sweep {

double
chainBottom()
{
    const auto t = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(t.time_since_epoch()).count();
}

double
chainMid()
{
    return chainBottom();
}

double
chainTop()
{
    return chainMid();
}

} // namespace aitax::sweep
