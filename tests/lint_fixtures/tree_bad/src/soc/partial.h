/** Fixture: not self-contained — references sim::Widget but never
 *  includes sim/widget.h. */

#ifndef AITAX_SOC_PARTIAL_H
#define AITAX_SOC_PARTIAL_H

namespace aitax::soc {

sim::Widget *borrowWidget();

} // namespace aitax::soc

#endif // AITAX_SOC_PARTIAL_H
