/** Fixture: restricted code (src/soc/) reaching the wall clock three
 *  calls deep through the sweep helpers in timing.cc. */

namespace aitax::soc {

double
consume()
{
    return chainTop();
}

} // namespace aitax::soc
