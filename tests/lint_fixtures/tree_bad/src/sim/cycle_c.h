/** Fixture: back edge closing the 3-file include cycle. */

#ifndef AITAX_SIM_CYCLE_C_H
#define AITAX_SIM_CYCLE_C_H

#include "sim/cycle_a.h"

namespace aitax::sim {
struct CycleC
{
    CycleA *next = nullptr;
};
} // namespace aitax::sim

#endif // AITAX_SIM_CYCLE_C_H
