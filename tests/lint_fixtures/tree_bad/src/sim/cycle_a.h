/** Fixture: first hop of a 3-file include cycle. */

#ifndef AITAX_SIM_CYCLE_A_H
#define AITAX_SIM_CYCLE_A_H

#include "sim/cycle_b.h"

namespace aitax::sim {
struct CycleA
{
    CycleB *next = nullptr;
};
} // namespace aitax::sim

#endif // AITAX_SIM_CYCLE_A_H
