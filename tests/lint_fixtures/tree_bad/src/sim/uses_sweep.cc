/** Fixture: illegal upward edge — sim (layer 1) includes sweep
 *  (layer 2). */

#include "sweep/pool.h"

namespace aitax::sim {

int
pump()
{
    return 1;
}

} // namespace aitax::sim
