// Fixture: header with no guard at all (flagged at line 1).

struct Unguarded
{
    int v;
};
