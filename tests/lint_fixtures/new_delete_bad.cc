// Fixture: raw allocation on a (pretend) sim hot path.
struct Node
{
    int v;
};

int
churn()
{
    Node *n = new Node{1};    // flagged
    int v = n->v;
    delete n;                 // flagged
    int *arr = new int[8];    // flagged
    delete[] arr;             // flagged
    return v;
}
