// Fixture: one of each include-hygiene violation.
#include <vector>
#include <stdlib.h>          // flagged: deprecated C header
#include <sim/simulator.h>   // flagged: project header in <>
#include <vector>            // flagged: duplicate include

int
size()
{
    std::vector<int> v;
    return static_cast<int>(v.size());
}
