// Fixture: single-precision accumulation + unordered reductions in
// (pretend) report code.
#include <numeric>
#include <vector>

double
summarize(const std::vector<double> &xs)
{
    float total = 0.0F;
    for (double x : xs)
        total += static_cast<float>(x); // flagged: float accumulator
    double r = std::reduce(xs.begin(), xs.end()); // flagged: unordered
    return total + r;
}
