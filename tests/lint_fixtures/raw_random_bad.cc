// Fixture: non-reproducible randomness the rule must catch.
#include <cstdlib>
#include <random>

int
noisy()
{
    std::random_device rd;                        // flagged
    std::mt19937 gen(rd());                       // flagged
    std::uniform_int_distribution<int> d(0, 9);   // flagged
    srand(42);                                    // flagged
    return d(gen) + rand();                       // flagged (rand)
}
