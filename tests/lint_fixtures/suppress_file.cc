// Fixture: file-scoped suppression covers every occurrence of the
// named rule, but no other rule.
// aitax-lint: allow-file(wall-clock)
#include <chrono>
#include <cstdlib>

long
stamps()
{
    auto a = std::chrono::steady_clock::now(); // suppressed (file scope)
    auto b = std::chrono::system_clock::now(); // suppressed (file scope)
    srand(7);                                  // raw-random still fires
    return (a.time_since_epoch() + b.time_since_epoch()).count();
}
