// Fixture: stable_sort (and a non-std sort identifier); must NOT
// trip unstable-sort.
#include <algorithm>
#include <vector>

struct Sample
{
    double score;
    int id;
};

void
rank(std::vector<Sample> &v)
{
    std::stable_sort(v.begin(), v.end(),
                     [](const Sample &a, const Sample &b) {
                         return a.score > b.score;
                     });
}

// A member/free function merely named `sort` is not std::sort.
struct Bucket
{
    void sort();
};

void
bucketSort(Bucket &b)
{
    b.sort();
}
