/** Fixture: middle of the chain; no back edge. */

#ifndef AITAX_SIM_CYCLE_B_H
#define AITAX_SIM_CYCLE_B_H

#include "sim/cycle_c.h"

namespace aitax::sim {
struct CycleB
{
    CycleC *next = nullptr;
};
} // namespace aitax::sim

#endif // AITAX_SIM_CYCLE_B_H
