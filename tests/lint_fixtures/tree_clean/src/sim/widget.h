/** Fixture: the declaration src/soc/partial.h properly includes. */

#ifndef AITAX_SIM_WIDGET_H
#define AITAX_SIM_WIDGET_H

namespace aitax::sim {
struct Widget
{
    int id = 0;
};
} // namespace aitax::sim

#endif // AITAX_SIM_WIDGET_H
