/** Fixture: chain bottom; forward declaration instead of a cycle. */

#ifndef AITAX_SIM_CYCLE_C_H
#define AITAX_SIM_CYCLE_C_H

namespace aitax::sim {

struct CycleA;

struct CycleC
{
    CycleA *next = nullptr;
};

} // namespace aitax::sim

#endif // AITAX_SIM_CYCLE_C_H
