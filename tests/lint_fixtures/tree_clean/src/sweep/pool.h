/** Fixture: mutex-holding class with annotated guarded state. */

#ifndef AITAX_SWEEP_POOL_H
#define AITAX_SWEEP_POOL_H

#include "core/thread_annotations.h"

namespace aitax::sweep {

struct JobPool
{
    core::Mutex m;
    int pending AITAX_GUARDED_BY(m) = 0;
};

} // namespace aitax::sweep

#endif // AITAX_SWEEP_POOL_H
