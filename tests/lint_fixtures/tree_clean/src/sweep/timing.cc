/** Fixture: the tree_bad chain, sealed with a reviewed barrier —
 *  chainTop's wall reach is observability-only and stops here. */

#include <chrono>

namespace aitax::sweep {

double
chainBottom()
{
    const auto t = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(t.time_since_epoch()).count();
}

double
chainMid()
{
    return chainBottom();
}

// Wall seconds feed the human progress line only; nothing derived
// from them reaches deterministic outputs.
// aitax-lint: taint-barrier(taint-clock)
double
chainTop()
{
    return chainMid();
}

} // namespace aitax::sweep
