/** Fixture: same caller as tree_bad; clean because chainTop is a
 *  declared taint barrier. */

namespace aitax::soc {

double
consume()
{
    return chainTop();
}

} // namespace aitax::soc
