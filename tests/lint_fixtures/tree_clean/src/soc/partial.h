/** Fixture: self-contained — includes what it references. */

#ifndef AITAX_SOC_PARTIAL_H
#define AITAX_SOC_PARTIAL_H

#include "sim/widget.h"

namespace aitax::soc {

sim::Widget *borrowWidget();

} // namespace aitax::soc

#endif // AITAX_SOC_PARTIAL_H
