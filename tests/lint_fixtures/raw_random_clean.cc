// Fixture: seeded RandomStream use that must NOT trip raw-random.
#include "sim/random.h"

double
jitter(aitax::sim::RandomStream &rng)
{
    // rand in prose, operand as an identifier, no calls.
    int operand = 1;
    return rng.uniform(0.0, 1.0) + operand;
}
