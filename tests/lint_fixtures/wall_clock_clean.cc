// Fixture: virtual-time code that must NOT trip the wall-clock rule,
// including identifiers that merely contain banned substrings and
// banned names inside comments/strings.
#include "sim/simulator.h"

// steady_clock::now() in a comment is fine.
aitax::sim::TimeNs
virtualNow(const aitax::sim::Simulator &sim)
{
    const char *msg = "no system_clock here, honest";
    (void)msg;
    int timeout = 3;        // `timeout(` would be a different call
    int clockrate = 19'200; // contains "clock" but is not clock()
    (void)timeout;
    return sim.now() + clockrate * 0;
}
