// Fixture: line-scoped suppressions. The marker covers its own line
// and the next line only.
#include <chrono>

long
mixed()
{
    // aitax-lint: allow(wall-clock)
    auto a = std::chrono::steady_clock::now(); // suppressed
    auto b = std::chrono::steady_clock::now(); // NOT suppressed
    auto c = std::chrono::steady_clock::now(); // aitax-lint: allow(wall-clock)
    // aitax-lint: allow(raw-random) -- wrong rule, does not cover next line
    auto d = std::chrono::steady_clock::now(); // NOT suppressed
    return (a - b + (c - d)).count();
}
