/**
 * @file
 * Allocation contract of the simulation fast path.
 *
 * Overrides global operator new to count heap allocations (the
 * technique of tests/test_trace_alloc.cc) and asserts the two perf
 * guarantees PR 7 documents in docs/PERFORMANCE.md:
 *
 *  1. The steady-state event loop is allocation-free: once the event
 *     queue's slot arena and the local queues' FIFO buffers have grown
 *     to capacity, scheduling and firing inline-capture events touches
 *     the heap zero times, in both engine modes.
 *
 *  2. A scenario run draws all of its run state from one arena block:
 *     after a warm-up run has established the high-water mark and
 *     reset() has coalesced, back-to-back identical runs keep exactly
 *     one block and never allocate another.
 *
 * This lives in its own test binary so the operator new override
 * cannot perturb other suites.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "sim/arena.h"
#include "sim/local_queue.h"
#include "sim/simulator.h"
#include "verify/scenario.h"

namespace {

std::atomic<std::size_t> g_allocCount{0};
std::atomic<bool> g_counting{false};

} // namespace

void *
operator new(std::size_t size)
{
    if (g_counting.load(std::memory_order_relaxed))
        g_allocCount.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(size ? size : 1))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t size)
{
    return ::operator new(size);
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

namespace aitax::sim {
namespace {

constexpr int kEvents = 50000;

struct CountingScope
{
    CountingScope()
    {
        g_allocCount.store(0, std::memory_order_relaxed);
        g_counting.store(true, std::memory_order_relaxed);
    }
    ~CountingScope() { g_counting.store(false, std::memory_order_relaxed); }
    std::size_t
    count() const
    {
        return g_allocCount.load(std::memory_order_relaxed);
    }
};

/** Self-chaining tick: the canonical steady-state event-loop shape. */
void
runChain(Simulator &sim, int events)
{
    int remaining = events;
    // The capture (two pointers) stays inside EventFn's inline buffer.
    struct Chain
    {
        Simulator *sim;
        int *remaining;
        void
        operator()() const
        {
            if (--*remaining > 0)
                sim->scheduleIn(100, Chain{sim, remaining});
        }
    };
    sim.scheduleIn(100, Chain{&sim, &remaining});
    sim.run();
    ASSERT_EQ(remaining, 0);
}

void
expectSteadyStateAllocationFree(EngineMode mode)
{
    Simulator sim(mode);
    // Warm-up pass: grows the event queue's slot arena to capacity.
    runChain(sim, kEvents);

    CountingScope scope;
    runChain(sim, kEvents);
    EXPECT_EQ(scope.count(), 0u)
        << "steady-state event loop allocated on the heap";
}

TEST(SimAlloc, FastEventLoopSteadyStateIsAllocationFree)
{
    expectSteadyStateAllocationFree(EngineMode::Fast);
}

TEST(SimAlloc, ReferenceEventLoopSteadyStateIsAllocationFree)
{
    expectSteadyStateAllocationFree(EngineMode::Reference);
}

TEST(SimAlloc, LocalQueueSteadyStateIsAllocationFree)
{
    Simulator sim(EngineMode::Fast);
    LocalEventQueue queue(sim, 2);

    auto drive = [&](int events) {
        int fired = 0;
        struct Tick
        {
            int *fired;
            void
            operator()() const
            {
                ++*fired;
            }
        };
        for (int i = 0; i < events; ++i)
            queue.push(static_cast<std::size_t>(i % 2),
                       sim.now() + 100 * (i + 1), Tick{&fired});
        sim.run();
        ASSERT_EQ(fired, events);
    };

    drive(1000); // warm-up: grows both stream buffers
    CountingScope scope;
    drive(1000);
    EXPECT_EQ(scope.count(), 0u)
        << "local-queue push/fire cycle allocated in steady state";
}

} // namespace
} // namespace aitax::sim

namespace aitax::verify {
namespace {

TEST(SimAlloc, ScenarioRunsReuseOneArenaBlock)
{
    Scenario s;
    s.mode = app::HarnessMode::CliBenchmark;
    s.runs = 4;
    ASSERT_TRUE(scenarioValid(s));

    // Warm-up runs: establish the high-water mark; the trailing reset
    // coalesces any spill chain into a single right-sized block.
    runScenario(s);
    runScenario(s);

    sim::Arena &arena = scenarioArena();
    ASSERT_EQ(arena.blockCount(), 1u);
    const std::uint64_t primed = arena.blockAllocs();
    const std::size_t high_water = arena.highWaterBytes();

    for (int i = 0; i < 3; ++i)
        runScenario(s);

    EXPECT_EQ(arena.blockCount(), 1u)
        << "steady-state run spilled past one arena block";
    EXPECT_EQ(arena.blockAllocs(), primed)
        << "steady-state run allocated a fresh arena block";
    EXPECT_EQ(arena.highWaterBytes(), high_water)
        << "identical runs must not grow the high-water mark";
}

} // namespace
} // namespace aitax::verify
