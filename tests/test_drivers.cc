/**
 * @file
 * Unit tests for the vendor driver capability tables — the encoded
 * "not all frameworks are created equal" findings of Section IV-B.
 */

#include <gtest/gtest.h>

#include "drivers/driver.h"
#include "drivers/instrumentation.h"
#include "models/zoo.h"

namespace aitax::drivers {
namespace {

using graph::Op;
using graph::OpKind;
using tensor::DType;
using tensor::Shape;

Op
conv(std::int32_t kh, std::int32_t kw)
{
    Op op;
    op.kind = OpKind::Conv2D;
    op.inputs = {Shape::nhwc(16, 16, 8)};
    op.output = Shape::nhwc(16, 16, 8);
    op.conv = {kh, kw, 1, 1, true, 1};
    return op;
}

Op
dwconv(std::int32_t k)
{
    Op op;
    op.kind = OpKind::DepthwiseConv2D;
    op.inputs = {Shape::nhwc(16, 16, 8)};
    op.output = Shape::nhwc(16, 16, 8);
    op.conv = {k, k, 1, 1, true, 1};
    return op;
}

Op
simpleOp(OpKind kind)
{
    Op op;
    op.kind = kind;
    op.inputs = {Shape({1, 16})};
    op.output = Shape({1, 16});
    return op;
}

TEST(TfliteCpu, SupportsEverything)
{
    const Driver &d = tfliteCpuDriver();
    EXPECT_EQ(d.target(), Target::CpuThreads);
    EXPECT_FALSE(d.isAccelerated());
    for (OpKind k : {OpKind::Conv2D, OpKind::EmbeddingLookup,
                     OpKind::LayerNorm, OpKind::Gelu, OpKind::MatMul}) {
        EXPECT_TRUE(d.supportsOp(simpleOp(k), DType::Float32));
        EXPECT_TRUE(d.supportsOp(simpleOp(k), DType::UInt8));
    }
    EXPECT_DOUBLE_EQ(d.efficiency(conv(3, 3), DType::Float32), 1.0);
}

TEST(GpuDelegate, FloatOnly)
{
    const Driver &d = tfliteGpuDelegateDriver();
    EXPECT_EQ(d.target(), Target::Gpu);
    EXPECT_TRUE(d.isAccelerated());
    EXPECT_TRUE(d.supportsOp(conv(3, 3), DType::Float32));
    EXPECT_FALSE(d.supportsOp(conv(3, 3), DType::UInt8));
}

TEST(GpuDelegate, NoTransformerOps)
{
    const Driver &d = tfliteGpuDelegateDriver();
    EXPECT_FALSE(
        d.supportsOp(simpleOp(OpKind::EmbeddingLookup), DType::Float32));
    EXPECT_FALSE(
        d.supportsOp(simpleOp(OpKind::LayerNorm), DType::Float32));
}

TEST(GpuDelegate, DepthwiseLessEfficient)
{
    const Driver &d = tfliteGpuDelegateDriver();
    EXPECT_LT(d.efficiency(dwconv(3), DType::Float32),
              d.efficiency(conv(3, 3), DType::Float32));
}

TEST(HexagonDelegate, QuantizedOnly)
{
    const Driver &d = tfliteHexagonDelegateDriver();
    EXPECT_EQ(d.target(), Target::Dsp);
    EXPECT_TRUE(d.supportsOp(conv(3, 3), DType::UInt8));
    EXPECT_FALSE(d.supportsOp(conv(3, 3), DType::Float32));
}

TEST(NnapiDsp, LaggingInt8DepthwiseCoverage)
{
    // The Fig 5 root cause: 5x5 INT8 depthwise convolutions (as in
    // EfficientNet-Lite0) are not supported; 3x3 ones are.
    const Driver &d = nnapiVendorDspDriver();
    EXPECT_TRUE(d.supportsOp(dwconv(3), DType::UInt8));
    EXPECT_FALSE(d.supportsOp(dwconv(5), DType::UInt8));
    EXPECT_FALSE(d.supportsOp(dwconv(3), DType::Float32));
}

TEST(NnapiDsp, RejectsEfficientNetButAcceptsMobileNet)
{
    const Driver &d = nnapiVendorDspDriver();
    const auto mobilenet =
        models::buildGraph("mobilenet_v1", DType::UInt8);
    EXPECT_TRUE(d.supportsAll(mobilenet.ops(), DType::UInt8));
    const auto efficientnet =
        models::buildGraph("efficientnet_lite0", DType::UInt8);
    EXPECT_FALSE(d.supportsAll(efficientnet.ops(), DType::UInt8));
}

TEST(NnapiGpu, NoRectangularKernels)
{
    // Inception's 1x7/7x1 factorizations fall back to the CPU, which
    // is why the paper sees Inception only partially offloaded.
    const Driver &d = nnapiVendorGpuDriver();
    EXPECT_TRUE(d.supportsOp(conv(3, 3), DType::Float32));
    EXPECT_FALSE(d.supportsOp(conv(1, 7), DType::Float32));
    EXPECT_FALSE(d.supportsOp(conv(7, 1), DType::Float32));
}

TEST(NnapiReference, SlowSingleThreadedFallback)
{
    const Driver &d = nnapiCpuReferenceDriver();
    EXPECT_EQ(d.target(), Target::CpuSingleThreadReference);
    EXPECT_TRUE(d.supportsOp(simpleOp(OpKind::Gelu), DType::UInt8));
    EXPECT_LT(d.efficiency(conv(3, 3), DType::UInt8), 0.3);
}

TEST(SnpeDsp, TunedKernelsBeatOpenSourceDelegates)
{
    const Driver &snpe = snpeDspDriver();
    const Driver &hexagon = tfliteHexagonDelegateDriver();
    const Driver &nnapi = nnapiVendorDspDriver();
    for (const Op &op : {conv(3, 3), dwconv(3)}) {
        EXPECT_GE(snpe.efficiency(op, DType::UInt8),
                  hexagon.efficiency(op, DType::UInt8));
        EXPECT_GT(snpe.efficiency(op, DType::UInt8),
                  nnapi.efficiency(op, DType::UInt8));
    }
}

TEST(SnpeDsp, SupportsFiveByFiveDepthwise)
{
    EXPECT_TRUE(snpeDspDriver().supportsOp(dwconv(5), DType::UInt8));
}

TEST(AllDrivers, EfficienciesInUnitRange)
{
    const Driver *drivers[] = {
        &tfliteCpuDriver(),          &tfliteGpuDelegateDriver(),
        &tfliteHexagonDelegateDriver(), &nnapiVendorDspDriver(),
        &nnapiVendorGpuDriver(),     &nnapiCpuReferenceDriver(),
        &snpeDspDriver(),
    };
    for (const Driver *d : drivers) {
        for (DType dt : {DType::Float32, DType::UInt8}) {
            for (const Op &op : {conv(3, 3), dwconv(3),
                                 simpleOp(OpKind::Relu)}) {
                if (!d->supportsOp(op, dt))
                    continue;
                const double e = d->efficiency(op, dt);
                EXPECT_GT(e, 0.0) << d->name();
                EXPECT_LE(e, 1.0) << d->name();
            }
        }
        EXPECT_GE(d->perOpOverheadNs(), 0);
        EXPECT_FALSE(d->name().empty());
    }
}

TEST(NnapiDsp, HighestPerOpOverhead)
{
    // The NNAPI HAL adds scheduling cost per operation relative to the
    // direct delegate path.
    EXPECT_GT(nnapiVendorDspDriver().perOpOverheadNs(),
              tfliteHexagonDelegateDriver().perOpOverheadNs());
}

// --- instrumentation (probe effect, Section III-D) ---------------------

TEST(Instrumentation, DisabledIsExactlyNeutral)
{
    Instrumentation instr;
    sim::RandomStream rng(1);
    EXPECT_DOUBLE_EQ(instr.acceleratedSlowdown(rng), 1.0);
    EXPECT_DOUBLE_EQ(instr.cpuSlowdown(), 1.0);
}

TEST(Instrumentation, EnabledAddsFourToSevenPercent)
{
    Instrumentation instr;
    instr.enable(true);
    sim::RandomStream rng(1);
    for (int i = 0; i < 1000; ++i) {
        const double s = instr.acceleratedSlowdown(rng);
        EXPECT_GE(s, 1.04);
        EXPECT_LE(s, 1.07);
    }
    EXPECT_DOUBLE_EQ(instr.cpuSlowdown(), 1.0);
}

} // namespace
} // namespace aitax::drivers
