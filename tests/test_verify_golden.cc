/**
 * @file
 * Golden-trace regression tier.
 *
 * Replays every committed scenario under tests/golden/ and compares
 * the per-stage tax breakdown against its snapshot within per-metric
 * relative tolerances. Rebuild the snapshots with
 * `cmake -DAITAX_UPDATE_GOLDEN=ON` + rerunning this test, or with
 * `aitax_cli verify --update`.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <set>

#include "verify/golden.h"

#ifndef AITAX_GOLDEN_DIR
#define AITAX_GOLDEN_DIR "tests/golden"
#endif

namespace aitax::verify {
namespace {

std::string
goldenPath(const Scenario &s)
{
    return std::string(AITAX_GOLDEN_DIR) + "/" + goldenFileName(s);
}

class GoldenScenario : public ::testing::TestWithParam<int>
{
  protected:
    const Scenario &
    scenario() const
    {
        return goldenScenarios()[static_cast<std::size_t>(GetParam())];
    }
};

TEST_P(GoldenScenario, MatchesCommittedSnapshot)
{
    const Scenario &s = scenario();
    ASSERT_TRUE(scenarioValid(s)) << s.describe();
    const auto result = runScenario(s);
    const auto actual = snapshot(s, result);

#ifdef AITAX_UPDATE_GOLDEN
    ASSERT_TRUE(writeGoldenFile(goldenPath(s), actual))
        << "cannot write " << goldenPath(s);
    GTEST_SKIP() << "recorded " << goldenPath(s);
#else
    GoldenSnapshot expected;
    std::string error;
    ASSERT_TRUE(readGoldenFile(goldenPath(s), expected, error))
        << error << " — regenerate with -DAITAX_UPDATE_GOLDEN=ON or "
        << "`aitax_cli verify --update`";
    EXPECT_EQ(expected.scenario, actual.scenario);
    const auto diffs = compare(expected, actual);
    for (const auto &d : diffs)
        ADD_FAILURE() << s.label() << ": " << d.metric << " expected "
                      << d.expected << " got " << d.actual
                      << " (rel err " << d.relError * 100.0 << "%)";
#endif
}

INSTANTIATE_TEST_SUITE_P(
    AllSnapshots, GoldenScenario,
    ::testing::Range(0, static_cast<int>(goldenScenarios().size())),
    [](const auto &info) {
        return goldenScenarios()[static_cast<std::size_t>(info.param)]
            .label();
    });

// --- snapshot scope ------------------------------------------------------

TEST(GoldenSet, CoversChipsetsModelsModesAndFrameworks)
{
    std::set<std::string> socs, model_ids;
    std::set<int> modes, frameworks;
    for (const auto &s : goldenScenarios()) {
        socs.insert(s.socName);
        model_ids.insert(s.modelId);
        modes.insert(static_cast<int>(s.mode));
        frameworks.insert(static_cast<int>(s.framework));
    }
    EXPECT_EQ(socs.size(), 4u);        // every Table II chipset
    EXPECT_GE(model_ids.size(), 8u);   // >= 8 of the 11 Table I models
    EXPECT_EQ(modes.size(), 3u);       // every harness mode
    EXPECT_EQ(frameworks.size(), 5u);  // every framework path
}

// --- serialization -------------------------------------------------------

TEST(GoldenJson, RoundTripIsBitIdentical)
{
    const Scenario &s = goldenScenarios().front();
    const auto g = snapshot(s, runScenario(s));
    const std::string json = toJson(g);

    GoldenSnapshot parsed;
    std::string error;
    ASSERT_TRUE(fromJson(json, parsed, error)) << error;
    EXPECT_EQ(parsed.scenario, g.scenario);
    ASSERT_EQ(parsed.metrics.size(), g.metrics.size());
    for (const auto &[key, value] : g.metrics) {
        ASSERT_TRUE(parsed.metrics.count(key)) << key;
        // %.17g round-trips doubles exactly.
        EXPECT_EQ(parsed.metrics.at(key), value) << key;
    }
    EXPECT_EQ(toJson(parsed), json);
}

TEST(GoldenJson, ParserRejectsMalformedInput)
{
    GoldenSnapshot out;
    std::string error;
    EXPECT_FALSE(fromJson("", out, error));
    EXPECT_FALSE(fromJson("{", out, error));
    EXPECT_FALSE(fromJson("{\"scenario\": \"x\"}", out, error));
    EXPECT_FALSE(
        fromJson("{\"schema\": 99, \"scenario\": \"x\", "
                 "\"metrics\": {}}",
                 out, error));
    EXPECT_NE(error.find("schema"), std::string::npos);
    EXPECT_FALSE(fromJson("{\"schema\": 1, \"scenario\": \"x\", "
                          "\"metrics\": {\"a\": }}",
                          out, error));
    // Truncated file (e.g. interrupted write).
    const Scenario &s = goldenScenarios().front();
    const std::string json = toJson(snapshot(s, runScenario(s)));
    EXPECT_FALSE(fromJson(json.substr(0, json.size() / 2), out, error));
}

// --- comparison ----------------------------------------------------------

TEST(GoldenCompare, FivePercentStagePerturbationIsCaught)
{
    const Scenario &s = goldenScenarios().front();
    const auto expected = snapshot(s, runScenario(s));

    auto perturbed = expected;
    perturbed.metrics["stage_inference_mean_ms"] *= 1.05;
    const auto diffs = compare(expected, perturbed);
    ASSERT_EQ(diffs.size(), 1u);
    EXPECT_EQ(diffs[0].metric, "stage_inference_mean_ms");
    EXPECT_NEAR(diffs[0].relError, 0.05, 1e-9);
}

TEST(GoldenCompare, WithinToleranceWobblePasses)
{
    const Scenario &s = goldenScenarios().front();
    const auto expected = snapshot(s, runScenario(s));
    auto wobbled = expected;
    for (auto &[key, value] : wobbled.metrics)
        value *= 1.004; // 0.4% — cross-toolchain noise territory
    EXPECT_TRUE(compare(expected, wobbled).empty());
}

TEST(GoldenCompare, MissingAndExtraMetricsAreDiffs)
{
    GoldenSnapshot expected;
    expected.scenario = "x";
    expected.metrics["a"] = 1.0;
    expected.metrics["b"] = 2.0;
    GoldenSnapshot actual;
    actual.scenario = "x";
    actual.metrics["a"] = 1.0;
    actual.metrics["c"] = 3.0;
    const auto diffs = compare(expected, actual);
    ASSERT_EQ(diffs.size(), 2u);
    for (const auto &d : diffs)
        EXPECT_TRUE(std::isinf(d.relError)) << d.metric;
}

TEST(GoldenCompare, PerMetricToleranceOverridesDefault)
{
    GoldenSnapshot expected;
    expected.scenario = "x";
    expected.metrics["loose"] = 100.0;
    expected.metrics["tight"] = 100.0;
    GoldenSnapshot actual = expected;
    actual.metrics["loose"] = 108.0;
    actual.metrics["tight"] = 108.0;
    CompareOptions opts;
    opts.perMetricTol["loose"] = 0.10;
    const auto diffs = compare(expected, actual, opts);
    ASSERT_EQ(diffs.size(), 1u);
    EXPECT_EQ(diffs[0].metric, "tight");
}

} // namespace
} // namespace aitax::verify
