/**
 * @file
 * Zero-allocation contract of the tracer's id-based record path.
 *
 * Overrides global operator new to count heap allocations, then
 * asserts that steady-state recording (ids resolved, vector capacity
 * grown via a warm-up pass + clear()) performs none. This is the
 * probe-effect guarantee docs/PERFORMANCE.md documents: once a
 * component has interned its ids, tracing costs three array appends
 * per record.
 *
 * This lives in its own test binary so the operator new override
 * cannot perturb other suites.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "trace/tracer.h"

namespace {

std::atomic<std::size_t> g_allocCount{0};
std::atomic<bool> g_counting{false};

} // namespace

void *
operator new(std::size_t size)
{
    if (g_counting.load(std::memory_order_relaxed))
        g_allocCount.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(size ? size : 1))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t size)
{
    return ::operator new(size);
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

namespace aitax::trace {
namespace {

constexpr int kEvents = 50000;

struct CountingScope
{
    CountingScope()
    {
        g_allocCount.store(0, std::memory_order_relaxed);
        g_counting.store(true, std::memory_order_relaxed);
    }
    ~CountingScope() { g_counting.store(false, std::memory_order_relaxed); }
    std::size_t
    count() const
    {
        return g_allocCount.load(std::memory_order_relaxed);
    }
};

void
recordBurst(Tracer &t, TrackId track, LabelId label, EventKindId kind,
            CounterId ctr)
{
    sim::TimeNs now = 0;
    for (int i = 0; i < kEvents; ++i) {
        t.recordInterval(track, label, now, now + 100);
        t.recordEvent(kind, label, now + 50);
        t.recordCounter(ctr, now + 50, 64.0);
        now += 200;
    }
}

TEST(TraceAlloc, SteadyStateIdPathIsAllocationFree)
{
    Tracer t;
    const TrackId track = t.internTrack("cpu0");
    const LabelId label = t.internLabel("job");
    const EventKindId kind = t.internEventKind("context_switch");
    const CounterId ctr = t.internCounter("axi_bytes");

    // Warm-up: grow every store to full capacity, then drop the data.
    // clear() keeps the capacity and the interned ids.
    recordBurst(t, track, label, kind, ctr);
    t.clear();

    CountingScope scope;
    recordBurst(t, track, label, kind, ctr);
    EXPECT_EQ(scope.count(), 0u)
        << "id-based record path allocated in steady state";
    EXPECT_EQ(t.intervalCount(), static_cast<std::size_t>(kEvents));
}

TEST(TraceAlloc, ArenaBackedColumnGrowthIsHeapFree)
{
    // An arena-backed tracer must keep even *cold* column growth off
    // the heap: every reallocation while capacity grows from zero is
    // served by the arena. Pre-size the arena (its own blocks come
    // from operator new) with a throwaway burst, then reset — the
    // arena coalesces to one block at its high-water mark, so the
    // measured burst needs no new blocks.
    sim::Arena arena;
    {
        Tracer warm(&arena);
        recordBurst(warm, warm.internTrack("cpu0"),
                    warm.internLabel("job"),
                    warm.internEventKind("context_switch"),
                    warm.internCounter("axi_bytes"));
    }
    arena.reset();

    Tracer t(&arena);
    const TrackId track = t.internTrack("cpu0");
    const LabelId label = t.internLabel("job");
    const EventKindId kind = t.internEventKind("context_switch");
    const CounterId ctr = t.internCounter("axi_bytes");

    CountingScope scope;
    recordBurst(t, track, label, kind, ctr);
    EXPECT_EQ(scope.count(), 0u)
        << "arena-backed column growth touched the heap";
    EXPECT_EQ(t.intervalCount(), static_cast<std::size_t>(kEvents));
    EXPECT_GT(arena.usedBytes(), 0u);
}

TEST(TraceAlloc, CloneToHeapTracerLeavesArenaBehind)
{
    // A warm-up snapshot's tracer is heap-owned and outlives per-run
    // arenas; cloneFrom must therefore deep-copy arena-backed columns
    // into heap storage. Destroy the arena before reading the clone —
    // a leaked arena pointer would show up under ASan here.
    Tracer snapshot;
    {
        sim::Arena arena;
        Tracer live(&arena);
        recordBurst(live, live.internTrack("cpu0"),
                    live.internLabel("job"),
                    live.internEventKind("context_switch"),
                    live.internCounter("axi_bytes"));
        snapshot.cloneFrom(live);
        arena.reset();
    }
    EXPECT_EQ(snapshot.intervalCount(),
              static_cast<std::size_t>(kEvents));
    EXPECT_EQ(snapshot.events().size(), static_cast<std::size_t>(kEvents));
    const auto samples = snapshot.counter("axi_bytes");
    ASSERT_EQ(samples.size(), static_cast<std::size_t>(kEvents));
    EXPECT_EQ(samples.front().value, 64.0);
}

TEST(TraceAlloc, DisabledRecordingIsAllocationFree)
{
    // Disabled tracing must be free even through the string API — the
    // wrappers check the enabled flag before touching the interner.
    Tracer t;
    t.setEnabled(false);
    CountingScope scope;
    for (int i = 0; i < 1000; ++i) {
        t.recordInterval("cpu0", "job", i, i + 10);
        t.recordEvent("migration", "job", i);
        t.recordCounter("axi_bytes", i, 1.0);
    }
    EXPECT_EQ(scope.count(), 0u);
    EXPECT_EQ(t.intervalCount(), 0u);
}

} // namespace
} // namespace aitax::trace
