/**
 * @file
 * Negative tests for the runtime determinism auditors (src/sim/audit.h):
 * prove the EventQueue tie auditor and the Simulator/Tracer ownership
 * sentinels actually fire, and that clean runs stay silent. A
 * recording handler replaces the default abort() handler for the
 * duration of each test.
 */

#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "sim/audit.h"
#include "sim/engine_mode.h"
#include "sim/event_queue.h"
#include "sim/simulator.h"
#include "trace/tracer.h"

namespace {

using aitax::sim::EngineMode;
using aitax::sim::EventQueue;
using aitax::sim::OwnershipSentinel;
using aitax::sim::setAuditHandler;
using aitax::sim::Simulator;
using aitax::trace::Tracer;

/** Violations recorded by the test handler. The handler is a plain
 *  function pointer, so the store is file-static; tests here never run
 *  concurrently with each other. */
std::vector<std::string> g_violations;

void
recordViolation(const char *what, const char *detail)
{
    g_violations.push_back(std::string(what) + ": " + detail);
}

/** Installs the recording handler for one test, restores on exit. */
class AuditRecorder
{
  public:
    AuditRecorder()
    {
        g_violations.clear();
        prev_ = setAuditHandler(&recordViolation);
    }
    ~AuditRecorder() { setAuditHandler(prev_); }
    AuditRecorder(const AuditRecorder &) = delete;
    AuditRecorder &operator=(const AuditRecorder &) = delete;

  private:
    aitax::sim::AuditHandler prev_;
};

// --- tie auditor (always compiled in) ----------------------------------

TEST(TieAuditor, CleanFifoTiesAreSilent)
{
    AuditRecorder rec;
    EventQueue q;
    int order = 0;
    int first = -1;
    int second = -1;
    q.schedule(5, [&] { first = order++; });
    q.schedule(5, [&] { second = order++; });
    q.popAndRun();
    q.popAndRun();
    EXPECT_EQ(first, 0);
    EXPECT_EQ(second, 1);
    EXPECT_TRUE(g_violations.empty());
}

TEST(TieAuditor, FiresOnFabricatedSeqCollision)
{
    AuditRecorder rec;
    EventQueue q;
    q.schedule(5, [] {});
    // Force the second event to reuse seq 0: the tie at when=5 is now
    // genuinely unordered, which is exactly what the auditor polices.
    q.debugSetNextSeq(0);
    q.schedule(5, [] {});
    q.popAndRun();
    EXPECT_TRUE(g_violations.empty());
    q.popAndRun();
    ASSERT_EQ(g_violations.size(), 1U);
    EXPECT_NE(g_violations[0].find("tie"), std::string::npos);
}

TEST(TieAuditor, FiresOnBackwardsSeqAcrossTimestamps)
{
    AuditRecorder rec;
    EventQueue q;
    q.schedule(5, [] {});
    q.schedule(5, [] {});
    q.popAndRun(); // (5, seq 0)
    // Replay an earlier seq at the same timestamp.
    q.debugSetNextSeq(0);
    q.schedule(5, [] {});
    q.popAndRun(); // (5, seq 0) again -> strictly-increasing violated
    ASSERT_FALSE(g_violations.empty());
}

TEST(TieAuditor, FiresOnSeqCollisionScheduledDuringDispatch)
{
    // Fast engine: events scheduled inside a callback land in the
    // per-dispatch batch buffer, not the heap. The auditor runs at pop
    // time, after the buffer flushes — a forged collision must not
    // hide behind the batching.
    AuditRecorder rec;
    EventQueue q(EngineMode::Fast);
    q.schedule(5, [&q] {
        q.debugSetNextSeq(0);
        q.schedule(5, [] {}); // batched (5, seq 0) duplicate
    });
    q.popAndRun(); // (5, seq 0), legitimate
    EXPECT_TRUE(g_violations.empty());
    q.popAndRun(); // flushed duplicate (5, seq 0) -> must fire
    ASSERT_EQ(g_violations.size(), 1U);
    EXPECT_NE(g_violations[0].find("tie"), std::string::npos);
}

TEST(TieAuditor, TracksStateAcrossSkipAheadTimeJumps)
{
    // Fast engine: with a near-empty queue, pops are served from the
    // one-slot front cache and the clock jumps straight between
    // far-apart events without touching the heap. The audit watermark
    // must ride along — a later event forged into the past has to
    // fire even though no heap ordering was ever consulted.
    AuditRecorder rec;
    EventQueue q(EngineMode::Fast);
    q.schedule(10, [] {});
    q.schedule(1000000000, [] {}); // ~1s skip-ahead jump
    q.popAndRun();
    q.popAndRun();
    EXPECT_TRUE(g_violations.empty());
    EXPECT_GT(q.frontCacheHits(), 0U);
    q.debugSetNextSeq(0);
    q.schedule(10, [] {}); // in the past relative to the last pop
    q.popAndRun();
    ASSERT_EQ(g_violations.size(), 1U);
    EXPECT_NE(g_violations[0].find("tie"), std::string::npos);
}

// --- OwnershipSentinel primitive ---------------------------------------

TEST(Ownership, BindsLazilyAndAcceptsOwnerTouches)
{
    AuditRecorder rec;
    OwnershipSentinel s;
    EXPECT_FALSE(s.bound());
    s.check("Widget");
    EXPECT_TRUE(s.bound());
    s.check("Widget");
    s.check("Widget");
    EXPECT_TRUE(g_violations.empty());
}

TEST(Ownership, FiresOnForeignThreadTouch)
{
    AuditRecorder rec;
    OwnershipSentinel s;
    s.check("Widget"); // main thread claims ownership
    std::thread intruder([&] { s.check("Widget"); });
    intruder.join();
    ASSERT_EQ(g_violations.size(), 1U);
    EXPECT_NE(g_violations[0].find("Widget"), std::string::npos);
    EXPECT_NE(g_violations[0].find("does not own"), std::string::npos);
}

TEST(Ownership, ReleaseAllowsDeliberateHandoff)
{
    AuditRecorder rec;
    OwnershipSentinel s;
    s.check("Widget");
    s.release();
    EXPECT_FALSE(s.bound());
    std::thread successor([&] {
        s.check("Widget"); // rebinds to this thread
        s.check("Widget");
    });
    successor.join();
    EXPECT_TRUE(g_violations.empty());
}

TEST(Ownership, FirstTouchFromWorkerThreadBindsWorker)
{
    AuditRecorder rec;
    OwnershipSentinel s;
    // Built on main, first touched by a worker: worker becomes owner
    // (the SweepRunner pattern).
    std::thread worker([&] { s.check("Widget"); });
    worker.join();
    EXPECT_TRUE(s.bound());
    s.check("Widget"); // main is now the intruder
    ASSERT_EQ(g_violations.size(), 1U);
}

// --- Simulator / Tracer integration (needs AITAX_RUNTIME_AUDITS) ------

TEST(OwnershipIntegration, SimulatorScheduleFromForeignThreadFires)
{
#if AITAX_RUNTIME_AUDITS
    AuditRecorder rec;
    Simulator sim;
    sim.scheduleIn(10, [] {}); // main claims the simulator
    std::thread intruder([&] { sim.scheduleAt(20, [] {}); });
    intruder.join();
    ASSERT_FALSE(g_violations.empty());
    EXPECT_NE(g_violations[0].find("Simulator"), std::string::npos);
#else
    GTEST_SKIP() << "built without AITAX_RUNTIME_AUDITS";
#endif
}

TEST(OwnershipIntegration, SimulatorSingleThreadRunIsSilent)
{
#if AITAX_RUNTIME_AUDITS
    AuditRecorder rec;
    Simulator sim;
    int fired = 0;
    sim.scheduleIn(10, [&] { ++fired; });
    sim.scheduleIn(20, [&] { ++fired; });
    sim.run();
    EXPECT_EQ(fired, 2);
    EXPECT_TRUE(g_violations.empty());
#else
    GTEST_SKIP() << "built without AITAX_RUNTIME_AUDITS";
#endif
}

TEST(OwnershipIntegration, SimulatorReleaseSupportsHandoff)
{
#if AITAX_RUNTIME_AUDITS
    AuditRecorder rec;
    Simulator sim;
    sim.scheduleIn(10, [] {});
    sim.auditReleaseOwner();
    std::thread worker([&] {
        sim.scheduleIn(20, [] {});
        sim.run();
    });
    worker.join();
    EXPECT_TRUE(g_violations.empty());
#else
    GTEST_SKIP() << "built without AITAX_RUNTIME_AUDITS";
#endif
}

TEST(OwnershipIntegration, TracerInternFromForeignThreadFires)
{
#if AITAX_RUNTIME_AUDITS
    AuditRecorder rec;
    Tracer tracer;
    (void)tracer.internTrack("npu"); // main claims the tracer
    std::thread intruder([&] { (void)tracer.internTrack("dsp"); });
    intruder.join();
    ASSERT_FALSE(g_violations.empty());
    EXPECT_NE(g_violations[0].find("Tracer"), std::string::npos);
#else
    GTEST_SKIP() << "built without AITAX_RUNTIME_AUDITS";
#endif
}

TEST(OwnershipIntegration, TracerSingleThreadUseIsSilent)
{
#if AITAX_RUNTIME_AUDITS
    AuditRecorder rec;
    Tracer tracer;
    const auto track = tracer.internTrack("npu");
    const auto label = tracer.internLabel("conv");
    tracer.recordInterval(track, label, 0, 100);
    EXPECT_TRUE(g_violations.empty());
#else
    GTEST_SKIP() << "built without AITAX_RUNTIME_AUDITS";
#endif
}

} // namespace
