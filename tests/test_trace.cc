/**
 * @file
 * Unit tests for the execution tracer and timeline renderer.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "trace/chrome_trace.h"
#include "trace/render.h"
#include "trace/tracer.h"

namespace aitax::trace {
namespace {

TEST(Tracer, RecordsIntervals)
{
    Tracer t;
    t.recordInterval("cpu0", "task", 100, 200);
    t.recordInterval("cpu0", "task2", 300, 400);
    t.recordInterval("cpu1", "other", 0, 50);
    EXPECT_EQ(t.intervals("cpu0").size(), 2u);
    EXPECT_EQ(t.intervals("cpu1").size(), 1u);
    EXPECT_TRUE(t.intervals("gpu").empty());
}

TEST(Tracer, DropsEmptyIntervals)
{
    Tracer t;
    t.recordInterval("cpu0", "x", 100, 100);
    t.recordInterval("cpu0", "y", 100, 90);
    EXPECT_TRUE(t.intervals("cpu0").empty());
}

TEST(Tracer, DisabledCollectsNothing)
{
    Tracer t;
    t.setEnabled(false);
    t.recordInterval("cpu0", "x", 0, 10);
    t.recordEvent("migration", "x", 5);
    t.recordCounter("axi_bytes", 5, 100.0);
    EXPECT_TRUE(t.intervals("cpu0").empty());
    EXPECT_TRUE(t.events().empty());
    EXPECT_TRUE(t.counter("axi_bytes").empty());
}

TEST(Tracer, TrackNamesSorted)
{
    Tracer t;
    t.recordInterval("zeta", "x", 0, 1);
    t.recordInterval("alpha", "x", 0, 1);
    const auto names = t.trackNames();
    ASSERT_EQ(names.size(), 2u);
    EXPECT_EQ(names[0], "alpha");
    EXPECT_EQ(names[1], "zeta");
}

TEST(Tracer, CountEvents)
{
    Tracer t;
    t.recordEvent("migration", "a", 1);
    t.recordEvent("migration", "b", 2);
    t.recordEvent("context_switch", "c", 3);
    EXPECT_EQ(t.countEvents("migration"), 2);
    EXPECT_EQ(t.countEvents("context_switch"), 1);
    EXPECT_EQ(t.countEvents("nothing"), 0);
}

TEST(Tracer, UtilizationFullyBusy)
{
    Tracer t;
    t.recordInterval("cpu0", "x", 0, 1000);
    const auto u = t.utilization("cpu0", 0, 1000, 4);
    ASSERT_EQ(u.size(), 4u);
    for (double v : u)
        EXPECT_NEAR(v, 1.0, 1e-9);
}

TEST(Tracer, UtilizationHalfBusy)
{
    Tracer t;
    t.recordInterval("cpu0", "x", 0, 500);
    const auto u = t.utilization("cpu0", 0, 1000, 2);
    EXPECT_NEAR(u[0], 1.0, 1e-9);
    EXPECT_NEAR(u[1], 0.0, 1e-9);
}

TEST(Tracer, UtilizationPartialBucketOverlap)
{
    Tracer t;
    t.recordInterval("cpu0", "x", 250, 750);
    const auto u = t.utilization("cpu0", 0, 1000, 2);
    EXPECT_NEAR(u[0], 0.5, 1e-9);
    EXPECT_NEAR(u[1], 0.5, 1e-9);
}

TEST(Tracer, UtilizationClampsOverlappingIntervals)
{
    Tracer t;
    t.recordInterval("cpu0", "a", 0, 1000);
    t.recordInterval("cpu0", "b", 0, 1000);
    const auto u = t.utilization("cpu0", 0, 1000, 2);
    for (double v : u)
        EXPECT_LE(v, 1.0);
}

TEST(Tracer, CounterRateBuckets)
{
    Tracer t;
    t.recordCounter("axi_bytes", 100, 10.0);
    t.recordCounter("axi_bytes", 150, 5.0);
    t.recordCounter("axi_bytes", 900, 7.0);
    const auto r = t.counterRate("axi_bytes", 0, 1000, 2);
    EXPECT_DOUBLE_EQ(r[0], 15.0);
    EXPECT_DOUBLE_EQ(r[1], 7.0);
}

TEST(Tracer, CounterIgnoresOutOfWindow)
{
    Tracer t;
    t.recordCounter("axi_bytes", 2000, 99.0);
    const auto r = t.counterRate("axi_bytes", 0, 1000, 2);
    EXPECT_DOUBLE_EQ(r[0] + r[1], 0.0);
}

TEST(Tracer, ClearResets)
{
    Tracer t;
    t.recordInterval("cpu0", "x", 0, 10);
    t.recordEvent("migration", "x", 1);
    t.clear();
    EXPECT_TRUE(t.intervals("cpu0").empty());
    EXPECT_TRUE(t.events().empty());
}

TEST(Render, TimelineShowsTracksAndCounts)
{
    Tracer t;
    t.recordInterval("cpu0", "x", 0, 500'000);
    t.recordInterval("cDSP", "job", 250'000, 750'000);
    t.recordEvent("context_switch", "x", 100);
    t.recordEvent("migration", "x", 200);
    std::ostringstream os;
    renderTimeline(os, t, 0, 1'000'000, {.buckets = 10});
    const std::string out = os.str();
    EXPECT_NE(out.find("cpu0"), std::string::npos);
    EXPECT_NE(out.find("cDSP"), std::string::npos);
    EXPECT_NE(out.find("context switches: 1"), std::string::npos);
    EXPECT_NE(out.find("migrations: 1"), std::string::npos);
}

TEST(Render, TimelineShowsCounterRow)
{
    Tracer t;
    t.recordInterval("cpu0", "x", 0, 100);
    t.recordCounter("axi_bytes", 50, 1e6);
    std::ostringstream os;
    renderTimeline(os, t, 0, 100, {.buckets = 4});
    EXPECT_NE(os.str().find("axi_bytes"), std::string::npos);
}

TEST(Render, OptionsCanSuppressCountersAndEvents)
{
    Tracer t;
    t.recordInterval("cpu0", "x", 0, 100);
    t.recordCounter("axi_bytes", 50, 1e6);
    t.recordEvent("migration", "x", 10);
    std::ostringstream os;
    RenderOptions opts;
    opts.buckets = 4;
    opts.showCounters = false;
    opts.showEventCounts = false;
    renderTimeline(os, t, 0, 100, opts);
    EXPECT_EQ(os.str().find("axi_bytes"), std::string::npos);
    EXPECT_EQ(os.str().find("migrations"), std::string::npos);
}

TEST(Render, CsvListsIntervals)
{
    Tracer t;
    t.recordInterval("cpu0", "taskA", 1, 2);
    std::ostringstream os;
    renderIntervalsCsv(os, t);
    EXPECT_NE(os.str().find("cpu0,taskA,1,2"), std::string::npos);
}

TEST(ChromeTrace, EmitsValidEventArray)
{
    Tracer t;
    t.recordInterval("cpu0", "taskA", 1000, 3000);
    t.recordEvent("migration", "taskA", 1500);
    std::ostringstream os;
    writeChromeTrace(os, t);
    const std::string out = os.str();
    EXPECT_EQ(out.front(), '[');
    EXPECT_EQ(out[out.size() - 2], ']');
    EXPECT_NE(out.find("\"name\":\"taskA\""), std::string::npos);
    EXPECT_NE(out.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(out.find("\"dur\":2"), std::string::npos); // 2 us
    EXPECT_NE(out.find("\"migration\""), std::string::npos);
    EXPECT_NE(out.find("thread_name"), std::string::npos);
}

TEST(ChromeTrace, EscapesSpecialCharacters)
{
    Tracer t;
    t.recordInterval("cpu0", "with\"quote", 0, 10);
    std::ostringstream os;
    writeChromeTrace(os, t);
    EXPECT_NE(os.str().find("with\\\"quote"), std::string::npos);
}

TEST(ChromeTrace, EmptyTracerProducesEmptyArray)
{
    Tracer t;
    std::ostringstream os;
    writeChromeTrace(os, t);
    EXPECT_NE(os.str().find("["), std::string::npos);
    EXPECT_NE(os.str().find("]"), std::string::npos);
}

TEST(ChromeTrace, EscapesControlCharacters)
{
    // Raw \t, \r and other sub-0x20 bytes in a label used to pass
    // through unescaped, emitting invalid JSON.
    Tracer t;
    t.recordInterval("cpu0", "tab\there", 0, 10);
    t.recordInterval("cpu0", "cr\rlf\n", 20, 30);
    t.recordInterval("cpu0", std::string("ctl\x01\x1f"), 40, 50);
    const std::string out = chromeTraceString(t);
    EXPECT_NE(out.find("tab\\there"), std::string::npos);
    EXPECT_NE(out.find("cr\\rlf\\n"), std::string::npos);
    EXPECT_NE(out.find("ctl\\u0001\\u001f"), std::string::npos);
    // No raw control characters survive anywhere in the document.
    for (char c : out)
        EXPECT_FALSE(static_cast<unsigned char>(c) < 0x20 &&
                     c != '\n')
            << "raw control char in output: " << static_cast<int>(c);
}

TEST(ChromeTrace, StringAndStreamWritersAgree)
{
    Tracer t;
    t.recordInterval("cpu0", "x", 1234, 5678901);
    t.recordEvent("migration", "x", 42);
    std::ostringstream os;
    writeChromeTrace(os, t);
    EXPECT_EQ(os.str(), chromeTraceString(t));
}

TEST(TracerIntern, SameNameSameId)
{
    Tracer t;
    const TrackId a = t.internTrack("cpu0");
    const TrackId b = t.internTrack("cpu0");
    EXPECT_EQ(a, b);
    EXPECT_NE(t.internTrack("cpu1"), a);
    EXPECT_EQ(t.internLabel("x"), t.internLabel("x"));
    EXPECT_EQ(t.internEventKind("migration"),
              t.internEventKind("migration"));
    EXPECT_EQ(t.internCounter("axi_bytes"),
              t.internCounter("axi_bytes"));
}

TEST(TracerIntern, FindDoesNotCreate)
{
    Tracer t;
    EXPECT_FALSE(t.findTrack("cpu0").valid());
    const TrackId id = t.internTrack("cpu0");
    EXPECT_TRUE(t.findTrack("cpu0").valid());
    EXPECT_EQ(t.findTrack("cpu0"), id);
    EXPECT_FALSE(t.findCounter("axi_bytes").valid());
    EXPECT_FALSE(t.findEventKind("migration").valid());
}

TEST(TracerIntern, EmptyTracksHiddenFromReaders)
{
    // Components intern their tracks at construction; a track that
    // never records must not appear in trackNames() or the chrome
    // trace (goldens predate construction-time interning).
    Tracer t;
    t.internTrack("idle-core");
    t.recordInterval("cpu0", "x", 0, 10);
    const auto names = t.trackNames();
    ASSERT_EQ(names.size(), 1u);
    EXPECT_EQ(names[0], "cpu0");
    EXPECT_EQ(chromeTraceString(t).find("idle-core"),
              std::string::npos);
    EXPECT_TRUE(t.sortedNonEmptyTracks().size() == 1);
}

TEST(TracerIntern, IdOverloadsRecord)
{
    Tracer t;
    const TrackId track = t.internTrack("cpu0");
    const LabelId label = t.internLabel("job");
    const EventKindId kind = t.internEventKind("migration");
    const CounterId ctr = t.internCounter("axi_bytes");

    t.recordInterval(track, label, 100, 200);
    t.recordEvent(kind, label, 150);
    t.recordCounter(ctr, 150, 64.0);

    const auto ivs = t.intervals("cpu0");
    ASSERT_EQ(ivs.size(), 1u);
    EXPECT_EQ(ivs[0].label, "job");
    EXPECT_EQ(t.countEvents("migration"), 1);
    EXPECT_EQ(t.counter("axi_bytes").size(), 1u);
}

TEST(TracerIntern, IdOverloadsHonorDisabledAndEmpty)
{
    Tracer t;
    const TrackId track = t.internTrack("cpu0");
    const LabelId label = t.internLabel("job");
    t.recordInterval(track, label, 100, 100); // empty -> dropped
    t.setEnabled(false);
    t.recordInterval(track, label, 100, 200);
    t.recordEvent(t.internEventKind("m"), label, 5);
    t.recordCounter(t.internCounter("c"), 5, 1.0);
    EXPECT_EQ(t.intervalCount(), 0u);
    EXPECT_EQ(t.eventCount(), 0u);
    EXPECT_EQ(t.counterSampleCount(), 0u);
}

TEST(TracerIntern, ClearKeepsIdsValid)
{
    Tracer t;
    const TrackId track = t.internTrack("cpu0");
    const LabelId label = t.internLabel("job");
    t.recordInterval(track, label, 0, 10);
    t.recordEvent("migration", "job", 5);
    t.clear();
    EXPECT_EQ(t.intervalCount(), 0u);
    EXPECT_EQ(t.countEvents("migration"), 0);
    // Ids interned before clear() still record correctly after.
    t.recordInterval(track, label, 20, 30);
    const auto ivs = t.intervals("cpu0");
    ASSERT_EQ(ivs.size(), 1u);
    EXPECT_EQ(ivs[0].begin, 20);
    EXPECT_EQ(t.findTrack("cpu0"), track);
}

} // namespace
} // namespace aitax::trace
