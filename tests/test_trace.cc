/**
 * @file
 * Unit tests for the execution tracer and timeline renderer.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "trace/chrome_trace.h"
#include "trace/render.h"
#include "trace/tracer.h"

namespace aitax::trace {
namespace {

TEST(Tracer, RecordsIntervals)
{
    Tracer t;
    t.recordInterval("cpu0", "task", 100, 200);
    t.recordInterval("cpu0", "task2", 300, 400);
    t.recordInterval("cpu1", "other", 0, 50);
    EXPECT_EQ(t.intervals("cpu0").size(), 2u);
    EXPECT_EQ(t.intervals("cpu1").size(), 1u);
    EXPECT_TRUE(t.intervals("gpu").empty());
}

TEST(Tracer, DropsEmptyIntervals)
{
    Tracer t;
    t.recordInterval("cpu0", "x", 100, 100);
    t.recordInterval("cpu0", "y", 100, 90);
    EXPECT_TRUE(t.intervals("cpu0").empty());
}

TEST(Tracer, DisabledCollectsNothing)
{
    Tracer t;
    t.setEnabled(false);
    t.recordInterval("cpu0", "x", 0, 10);
    t.recordEvent("migration", "x", 5);
    t.recordCounter("axi_bytes", 5, 100.0);
    EXPECT_TRUE(t.intervals("cpu0").empty());
    EXPECT_TRUE(t.events().empty());
    EXPECT_TRUE(t.counter("axi_bytes").empty());
}

TEST(Tracer, TrackNamesSorted)
{
    Tracer t;
    t.recordInterval("zeta", "x", 0, 1);
    t.recordInterval("alpha", "x", 0, 1);
    const auto names = t.trackNames();
    ASSERT_EQ(names.size(), 2u);
    EXPECT_EQ(names[0], "alpha");
    EXPECT_EQ(names[1], "zeta");
}

TEST(Tracer, CountEvents)
{
    Tracer t;
    t.recordEvent("migration", "a", 1);
    t.recordEvent("migration", "b", 2);
    t.recordEvent("context_switch", "c", 3);
    EXPECT_EQ(t.countEvents("migration"), 2);
    EXPECT_EQ(t.countEvents("context_switch"), 1);
    EXPECT_EQ(t.countEvents("nothing"), 0);
}

TEST(Tracer, UtilizationFullyBusy)
{
    Tracer t;
    t.recordInterval("cpu0", "x", 0, 1000);
    const auto u = t.utilization("cpu0", 0, 1000, 4);
    ASSERT_EQ(u.size(), 4u);
    for (double v : u)
        EXPECT_NEAR(v, 1.0, 1e-9);
}

TEST(Tracer, UtilizationHalfBusy)
{
    Tracer t;
    t.recordInterval("cpu0", "x", 0, 500);
    const auto u = t.utilization("cpu0", 0, 1000, 2);
    EXPECT_NEAR(u[0], 1.0, 1e-9);
    EXPECT_NEAR(u[1], 0.0, 1e-9);
}

TEST(Tracer, UtilizationPartialBucketOverlap)
{
    Tracer t;
    t.recordInterval("cpu0", "x", 250, 750);
    const auto u = t.utilization("cpu0", 0, 1000, 2);
    EXPECT_NEAR(u[0], 0.5, 1e-9);
    EXPECT_NEAR(u[1], 0.5, 1e-9);
}

TEST(Tracer, UtilizationClampsOverlappingIntervals)
{
    Tracer t;
    t.recordInterval("cpu0", "a", 0, 1000);
    t.recordInterval("cpu0", "b", 0, 1000);
    const auto u = t.utilization("cpu0", 0, 1000, 2);
    for (double v : u)
        EXPECT_LE(v, 1.0);
}

TEST(Tracer, CounterRateBuckets)
{
    Tracer t;
    t.recordCounter("axi_bytes", 100, 10.0);
    t.recordCounter("axi_bytes", 150, 5.0);
    t.recordCounter("axi_bytes", 900, 7.0);
    const auto r = t.counterRate("axi_bytes", 0, 1000, 2);
    EXPECT_DOUBLE_EQ(r[0], 15.0);
    EXPECT_DOUBLE_EQ(r[1], 7.0);
}

TEST(Tracer, CounterIgnoresOutOfWindow)
{
    Tracer t;
    t.recordCounter("axi_bytes", 2000, 99.0);
    const auto r = t.counterRate("axi_bytes", 0, 1000, 2);
    EXPECT_DOUBLE_EQ(r[0] + r[1], 0.0);
}

TEST(Tracer, ClearResets)
{
    Tracer t;
    t.recordInterval("cpu0", "x", 0, 10);
    t.recordEvent("migration", "x", 1);
    t.clear();
    EXPECT_TRUE(t.intervals("cpu0").empty());
    EXPECT_TRUE(t.events().empty());
}

TEST(Render, TimelineShowsTracksAndCounts)
{
    Tracer t;
    t.recordInterval("cpu0", "x", 0, 500'000);
    t.recordInterval("cDSP", "job", 250'000, 750'000);
    t.recordEvent("context_switch", "x", 100);
    t.recordEvent("migration", "x", 200);
    std::ostringstream os;
    renderTimeline(os, t, 0, 1'000'000, {.buckets = 10});
    const std::string out = os.str();
    EXPECT_NE(out.find("cpu0"), std::string::npos);
    EXPECT_NE(out.find("cDSP"), std::string::npos);
    EXPECT_NE(out.find("context switches: 1"), std::string::npos);
    EXPECT_NE(out.find("migrations: 1"), std::string::npos);
}

TEST(Render, TimelineShowsCounterRow)
{
    Tracer t;
    t.recordInterval("cpu0", "x", 0, 100);
    t.recordCounter("axi_bytes", 50, 1e6);
    std::ostringstream os;
    renderTimeline(os, t, 0, 100, {.buckets = 4});
    EXPECT_NE(os.str().find("axi_bytes"), std::string::npos);
}

TEST(Render, OptionsCanSuppressCountersAndEvents)
{
    Tracer t;
    t.recordInterval("cpu0", "x", 0, 100);
    t.recordCounter("axi_bytes", 50, 1e6);
    t.recordEvent("migration", "x", 10);
    std::ostringstream os;
    RenderOptions opts;
    opts.buckets = 4;
    opts.showCounters = false;
    opts.showEventCounts = false;
    renderTimeline(os, t, 0, 100, opts);
    EXPECT_EQ(os.str().find("axi_bytes"), std::string::npos);
    EXPECT_EQ(os.str().find("migrations"), std::string::npos);
}

TEST(Render, CsvListsIntervals)
{
    Tracer t;
    t.recordInterval("cpu0", "taskA", 1, 2);
    std::ostringstream os;
    renderIntervalsCsv(os, t);
    EXPECT_NE(os.str().find("cpu0,taskA,1,2"), std::string::npos);
}

TEST(ChromeTrace, EmitsValidEventArray)
{
    Tracer t;
    t.recordInterval("cpu0", "taskA", 1000, 3000);
    t.recordEvent("migration", "taskA", 1500);
    std::ostringstream os;
    writeChromeTrace(os, t);
    const std::string out = os.str();
    EXPECT_EQ(out.front(), '[');
    EXPECT_EQ(out[out.size() - 2], ']');
    EXPECT_NE(out.find("\"name\":\"taskA\""), std::string::npos);
    EXPECT_NE(out.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(out.find("\"dur\":2"), std::string::npos); // 2 us
    EXPECT_NE(out.find("\"migration\""), std::string::npos);
    EXPECT_NE(out.find("thread_name"), std::string::npos);
}

TEST(ChromeTrace, EscapesSpecialCharacters)
{
    Tracer t;
    t.recordInterval("cpu0", "with\"quote", 0, 10);
    std::ostringstream os;
    writeChromeTrace(os, t);
    EXPECT_NE(os.str().find("with\\\"quote"), std::string::npos);
}

TEST(ChromeTrace, EmptyTracerProducesEmptyArray)
{
    Tracer t;
    std::ostringstream os;
    writeChromeTrace(os, t);
    EXPECT_NE(os.str().find("["), std::string::npos);
    EXPECT_NE(os.str().find("]"), std::string::npos);
}

} // namespace
} // namespace aitax::trace
