/**
 * @file
 * Numeric element types for tensors.
 *
 * The paper studies two deployment formats — 32-bit floating point and
 * 8-bit quantized integers — plus 16-bit floats as an emerging option;
 * we also carry the integer accumulator types models need internally.
 */

#ifndef AITAX_TENSOR_DTYPE_H
#define AITAX_TENSOR_DTYPE_H

#include <cstddef>
#include <string_view>

namespace aitax::tensor {

/** Element type of a tensor. */
enum class DType
{
    Float32,
    Float16,
    Int8,
    UInt8,
    Int32,
    Int64,
};

/** Size in bytes of one element. */
constexpr std::size_t
dtypeSize(DType t)
{
    switch (t) {
      case DType::Float32: return 4;
      case DType::Float16: return 2;
      case DType::Int8: return 1;
      case DType::UInt8: return 1;
      case DType::Int32: return 4;
      case DType::Int64: return 8;
    }
    return 0;
}

/** True for Int8/UInt8 quantized formats. */
constexpr bool
isQuantized(DType t)
{
    return t == DType::Int8 || t == DType::UInt8;
}

/** True for floating-point formats. */
constexpr bool
isFloat(DType t)
{
    return t == DType::Float32 || t == DType::Float16;
}

/** Human-readable name, e.g. "fp32" or "int8". */
std::string_view dtypeName(DType t);

} // namespace aitax::tensor

#endif // AITAX_TENSOR_DTYPE_H
