/**
 * @file
 * Tensor shapes (NHWC convention for image tensors).
 */

#ifndef AITAX_TENSOR_SHAPE_H
#define AITAX_TENSOR_SHAPE_H

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

namespace aitax::tensor {

/**
 * An immutable-ish dimension list.
 *
 * Image tensors use NHWC layout: {batch, height, width, channels}.
 */
class Shape
{
  public:
    Shape() = default;
    Shape(std::initializer_list<std::int64_t> dims);
    explicit Shape(std::vector<std::int64_t> dims);

    /** Convenience constructor for a batch-1 NHWC image tensor. */
    static Shape nhwc(std::int64_t h, std::int64_t w, std::int64_t c);

    std::size_t rank() const { return dims_.size(); }
    std::int64_t dim(std::size_t i) const;
    std::int64_t operator[](std::size_t i) const { return dim(i); }

    /** Total element count; 1 for a scalar (rank 0). */
    std::int64_t elementCount() const;

    /** NHWC accessors; valid only for rank-4 shapes. */
    std::int64_t batch() const { return dim(0); }
    std::int64_t height() const { return dim(1); }
    std::int64_t width() const { return dim(2); }
    std::int64_t channels() const { return dim(3); }

    bool operator==(const Shape &other) const = default;

    const std::vector<std::int64_t> &dims() const { return dims_; }

    /** e.g. "[1x224x224x3]". */
    std::string toString() const;

  private:
    std::vector<std::int64_t> dims_;
};

} // namespace aitax::tensor

#endif // AITAX_TENSOR_SHAPE_H
