#include "tensor/dtype.h"

namespace aitax::tensor {

std::string_view
dtypeName(DType t)
{
    switch (t) {
      case DType::Float32: return "fp32";
      case DType::Float16: return "fp16";
      case DType::Int8: return "int8";
      case DType::UInt8: return "uint8";
      case DType::Int32: return "int32";
      case DType::Int64: return "int64";
    }
    return "unknown";
}

} // namespace aitax::tensor
