/**
 * @file
 * Affine quantization parameters and scalar (de)quantization helpers.
 *
 * Quantized models in the paper follow the TFLite scheme:
 * real = scale * (q - zero_point).
 */

#ifndef AITAX_TENSOR_QUANTIZATION_H
#define AITAX_TENSOR_QUANTIZATION_H

#include <cstdint>
#include <span>
#include <vector>

namespace aitax::tensor {

/** Affine quantization parameters for a tensor. */
struct QuantParams
{
    double scale = 1.0;
    std::int32_t zeroPoint = 0;

    bool operator==(const QuantParams &other) const = default;
};

/** Quantize one real value to uint8 with saturation. */
std::uint8_t quantizeU8(float real, const QuantParams &qp);

/** Quantize one real value to int8 with saturation. */
std::int8_t quantizeS8(float real, const QuantParams &qp);

/** Dequantize one uint8 value. */
float dequantizeU8(std::uint8_t q, const QuantParams &qp);

/** Dequantize one int8 value. */
float dequantizeS8(std::int8_t q, const QuantParams &qp);

/** Quantize a buffer of floats to uint8. */
void quantizeBuffer(std::span<const float> in, const QuantParams &qp,
                    std::span<std::uint8_t> out);

/** Dequantize a buffer of uint8 to floats. */
void dequantizeBuffer(std::span<const std::uint8_t> in,
                      const QuantParams &qp, std::span<float> out);

/**
 * Choose quantization parameters that cover [lo, hi] with uint8.
 * The range is widened to include 0 so zero is exactly representable.
 */
QuantParams chooseQuantParams(float lo, float hi);

} // namespace aitax::tensor

#endif // AITAX_TENSOR_QUANTIZATION_H
