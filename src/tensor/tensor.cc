#include "tensor/tensor.h"

#include <cassert>

namespace aitax::tensor {

Tensor::Tensor(Shape shape, DType dtype)
    : shape_(std::move(shape)), dtype_(dtype),
      bytes(static_cast<std::size_t>(shape_.elementCount()) *
                dtypeSize(dtype),
            0)
{
}

Tensor::Tensor(Shape shape, DType dtype, QuantParams qp)
    : Tensor(std::move(shape), dtype)
{
    qp_ = qp;
}

void
Tensor::fillFloat(float v)
{
    assert(dtype_ == DType::Float32);
    for (auto &x : data<float>())
        x = v;
}

float
Tensor::realAt(std::int64_t flat_index) const
{
    assert(flat_index >= 0 && flat_index < elementCount());
    const auto i = static_cast<std::size_t>(flat_index);
    switch (dtype_) {
      case DType::Float32:
        return data<float>()[i];
      case DType::UInt8:
        return dequantizeU8(data<std::uint8_t>()[i], qp_);
      case DType::Int8:
        return dequantizeS8(data<std::int8_t>()[i], qp_);
      default:
        assert(false && "realAt: unsupported dtype");
        return 0.0f;
    }
}

} // namespace aitax::tensor
