#include "tensor/quantization.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace aitax::tensor {

namespace {

std::int32_t
quantizeRaw(float real, const QuantParams &qp)
{
    const double q = std::nearbyint(real / qp.scale) + qp.zeroPoint;
    return static_cast<std::int32_t>(q);
}

} // namespace

std::uint8_t
quantizeU8(float real, const QuantParams &qp)
{
    return static_cast<std::uint8_t>(std::clamp(quantizeRaw(real, qp), 0, 255));
}

std::int8_t
quantizeS8(float real, const QuantParams &qp)
{
    return static_cast<std::int8_t>(
        std::clamp(quantizeRaw(real, qp), -128, 127));
}

float
dequantizeU8(std::uint8_t q, const QuantParams &qp)
{
    return static_cast<float>(qp.scale *
                              (static_cast<std::int32_t>(q) - qp.zeroPoint));
}

float
dequantizeS8(std::int8_t q, const QuantParams &qp)
{
    return static_cast<float>(qp.scale *
                              (static_cast<std::int32_t>(q) - qp.zeroPoint));
}

void
quantizeBuffer(std::span<const float> in, const QuantParams &qp,
               std::span<std::uint8_t> out)
{
    assert(in.size() == out.size());
    for (std::size_t i = 0; i < in.size(); ++i)
        out[i] = quantizeU8(in[i], qp);
}

void
dequantizeBuffer(std::span<const std::uint8_t> in, const QuantParams &qp,
                 std::span<float> out)
{
    assert(in.size() == out.size());
    for (std::size_t i = 0; i < in.size(); ++i)
        out[i] = dequantizeU8(in[i], qp);
}

QuantParams
chooseQuantParams(float lo, float hi)
{
    lo = std::min(lo, 0.0f);
    hi = std::max(hi, 0.0f);
    if (hi == lo)
        hi = lo + 1.0f;
    QuantParams qp;
    qp.scale = (static_cast<double>(hi) - lo) / 255.0;
    // Zero-point such that real 'lo' maps to q=0.
    const double zp = -lo / qp.scale;
    qp.zeroPoint =
        static_cast<std::int32_t>(std::clamp(std::nearbyint(zp), 0.0, 255.0));
    return qp;
}

} // namespace aitax::tensor
