#include "tensor/shape.h"

#include <cassert>

namespace aitax::tensor {

Shape::Shape(std::initializer_list<std::int64_t> dims)
    : dims_(dims)
{
    for (auto d : dims_)
        assert(d >= 0);
}

Shape::Shape(std::vector<std::int64_t> dims)
    : dims_(std::move(dims))
{
    for (auto d : dims_)
        assert(d >= 0);
}

Shape
Shape::nhwc(std::int64_t h, std::int64_t w, std::int64_t c)
{
    return Shape{1, h, w, c};
}

std::int64_t
Shape::dim(std::size_t i) const
{
    assert(i < dims_.size());
    return dims_[i];
}

std::int64_t
Shape::elementCount() const
{
    std::int64_t n = 1;
    for (auto d : dims_)
        n *= d;
    return n;
}

std::string
Shape::toString() const
{
    std::string out = "[";
    for (std::size_t i = 0; i < dims_.size(); ++i) {
        if (i)
            out += "x";
        out += std::to_string(dims_[i]);
    }
    out += "]";
    return out;
}

} // namespace aitax::tensor
