/**
 * @file
 * A shaped, typed data buffer — the currency between pipeline stages.
 */

#ifndef AITAX_TENSOR_TENSOR_H
#define AITAX_TENSOR_TENSOR_H

#include <cstdint>
#include <span>
#include <vector>

#include "tensor/dtype.h"
#include "tensor/quantization.h"
#include "tensor/shape.h"

namespace aitax::tensor {

/**
 * Dense tensor with owned storage.
 *
 * Storage is a raw byte vector; typed views are obtained through
 * data<T>(). Quantized tensors carry affine QuantParams.
 */
class Tensor
{
  public:
    Tensor() = default;

    /** Allocate a zero-initialized tensor. */
    Tensor(Shape shape, DType dtype);

    /** Allocate a zero-initialized quantized tensor. */
    Tensor(Shape shape, DType dtype, QuantParams qp);

    const Shape &shape() const { return shape_; }
    DType dtype() const { return dtype_; }
    const QuantParams &quantParams() const { return qp_; }
    void setQuantParams(const QuantParams &qp) { qp_ = qp; }

    std::int64_t elementCount() const { return shape_.elementCount(); }
    std::size_t byteSize() const { return bytes.size(); }

    std::uint8_t *rawData() { return bytes.data(); }
    const std::uint8_t *rawData() const { return bytes.data(); }

    /** Typed mutable view. T must match dtype size. */
    template <typename T>
    std::span<T>
    data()
    {
        return {reinterpret_cast<T *>(bytes.data()),
                bytes.size() / sizeof(T)};
    }

    /** Typed const view. */
    template <typename T>
    std::span<const T>
    data() const
    {
        return {reinterpret_cast<const T *>(bytes.data()),
                bytes.size() / sizeof(T)};
    }

    /** Fill a float tensor with a constant. */
    void fillFloat(float v);

    /**
     * Element at flat index as a real value, dequantizing if needed.
     * Supports Float32, UInt8 and Int8 tensors.
     */
    float realAt(std::int64_t flat_index) const;

  private:
    Shape shape_;
    DType dtype_ = DType::Float32;
    QuantParams qp_;
    std::vector<std::uint8_t> bytes;
};

} // namespace aitax::tensor

#endif // AITAX_TENSOR_TENSOR_H
