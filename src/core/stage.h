/**
 * @file
 * The ML pipeline stages of Section II — the axes along which AI tax
 * is accounted.
 */

#ifndef AITAX_CORE_STAGE_H
#define AITAX_CORE_STAGE_H

#include <array>
#include <string_view>

namespace aitax::core {

/** Pipeline stages, in execution order. */
enum class Stage
{
    DataCapture,
    PreProcessing,
    Inference,
    PostProcessing,
};

constexpr std::array<Stage, 4> kAllStages = {
    Stage::DataCapture,
    Stage::PreProcessing,
    Stage::Inference,
    Stage::PostProcessing,
};

constexpr std::string_view
stageName(Stage s)
{
    switch (s) {
      case Stage::DataCapture: return "data-capture";
      case Stage::PreProcessing: return "pre-processing";
      case Stage::Inference: return "inference";
      case Stage::PostProcessing: return "post-processing";
    }
    return "unknown";
}

/** AI tax membership: every stage except model inference. */
constexpr bool
isTaxStage(Stage s)
{
    return s != Stage::Inference;
}

} // namespace aitax::core

#endif // AITAX_CORE_STAGE_H
