#include "core/tax_report.h"

#include <cassert>

#include "stats/table.h"

namespace aitax::core {

namespace {

constexpr std::size_t
stageIndex(Stage s)
{
    return static_cast<std::size_t>(s);
}

} // namespace

sim::DurationNs &
StageLatencies::operator[](Stage s)
{
    return ns[stageIndex(s)];
}

sim::DurationNs
StageLatencies::operator[](Stage s) const
{
    return ns[stageIndex(s)];
}

sim::DurationNs
StageLatencies::endToEnd() const
{
    sim::DurationNs total = 0;
    for (auto v : ns)
        total += v;
    return total;
}

sim::DurationNs
StageLatencies::aiTax() const
{
    return endToEnd() - (*this)[Stage::Inference];
}

TaxReport::TaxReport(std::string config_label)
    : label_(std::move(config_label))
{
}

void
TaxReport::add(const StageLatencies &run)
{
    for (Stage s : kAllStages)
        stages[stageIndex(s)].add(sim::nsToMs(run[s]));
    e2e.add(sim::nsToMs(run.endToEnd()));
    tax.add(sim::nsToMs(run.aiTax()));
}

const stats::Distribution &
TaxReport::stage(Stage s) const
{
    return stages[stageIndex(s)];
}

double
TaxReport::stageMeanMs(Stage s) const
{
    return stages[stageIndex(s)].mean();
}

double
TaxReport::aiTaxFraction() const
{
    const double total = e2e.mean();
    if (total <= 0.0)
        return 0.0;
    return tax.mean() / total;
}

double
TaxReport::stageRelativeToInference(Stage s) const
{
    const double inf = stageMeanMs(Stage::Inference);
    if (inf <= 0.0)
        return 0.0;
    return stageMeanMs(s) / inf;
}

void
TaxReport::render(std::ostream &os) const
{
    os << "AI tax report: " << label_ << " (" << runs() << " runs)\n";
    stats::Table table({"stage", "mean ms", "median ms", "p95 ms",
                        "share of E2E", "vs inference"});
    const double total = endToEndMeanMs();
    for (Stage s : kAllStages) {
        const auto &d = stage(s);
        table.addRow({std::string(stageName(s)),
                      stats::Table::num(d.mean()),
                      stats::Table::num(d.median()),
                      stats::Table::num(d.p95()),
                      stats::Table::pct(total > 0
                                            ? d.mean() / total * 100.0
                                            : 0.0),
                      stats::Table::num(stageRelativeToInference(s))});
    }
    table.addRow({"end-to-end", stats::Table::num(e2e.mean()),
                  stats::Table::num(e2e.median()),
                  stats::Table::num(e2e.p95()), "100.0%", "-"});
    table.addRow({"AI tax", stats::Table::num(tax.mean()),
                  stats::Table::num(tax.median()),
                  stats::Table::num(tax.p95()),
                  stats::Table::pct(aiTaxFraction() * 100.0), "-"});
    // Degraded-mode column appears only for fault-injected runs, so
    // plain reports render exactly as before.
    if (degraded_.count() > 0) {
        table.addRow(
            {"degraded mode", stats::Table::num(degraded_.mean()),
             stats::Table::num(degraded_.median()),
             stats::Table::num(degraded_.p95()),
             stats::Table::pct(total > 0
                                   ? degraded_.mean() / total * 100.0
                                   : 0.0),
             "-"});
    }
    table.render(os);
}

void
TaxReport::renderCsv(std::ostream &os) const
{
    os << "run";
    for (Stage s : kAllStages)
        os << "," << stageName(s) << "_ms";
    os << ",e2e_ms,ai_tax_ms\n";
    const std::size_t n = e2e.count();
    for (std::size_t i = 0; i < n; ++i) {
        os << i;
        for (Stage s : kAllStages)
            os << "," << stage(s).raw()[i];
        os << "," << e2e.raw()[i] << "," << tax.raw()[i] << "\n";
    }
}

} // namespace aitax::core
