#include "core/analyzer.h"

#include <cassert>

namespace aitax::core {

FrameworkChoice
adviseFramework(
    const std::vector<std::pair<std::string, const TaxReport *>>
        &candidates)
{
    assert(!candidates.empty());
    FrameworkChoice best;
    double worst = 0.0;
    for (const auto &[name, report] : candidates) {
        const double e2e = report->endToEndMeanMs();
        worst = std::max(worst, e2e);
        if (best.framework.empty() || e2e < best.e2eMeanMs) {
            best.framework = name;
            best.e2eMeanMs = e2e;
        }
    }
    best.speedupVsWorst =
        best.e2eMeanMs > 0.0 ? worst / best.e2eMeanMs : 1.0;
    return best;
}

std::vector<double>
offloadShareSeries(const std::vector<soc::FastRpcBreakdown> &calls)
{
    std::vector<double> out;
    out.reserve(calls.size());
    double overhead = 0.0;
    double total = 0.0;
    for (const auto &c : calls) {
        overhead += static_cast<double>(c.overheadNs());
        total += static_cast<double>(c.totalNs());
        out.push_back(total > 0.0 ? overhead / total : 0.0);
    }
    return out;
}

double
harnessGapPct(const TaxReport &benchmark, const TaxReport &application)
{
    const double bench = benchmark.endToEndMeanMs();
    if (bench <= 0.0)
        return 0.0;
    return (application.endToEndMeanMs() - bench) / bench * 100.0;
}

} // namespace aitax::core
