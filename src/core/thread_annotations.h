/**
 * @file
 * Thread-safety annotation vocabulary for the whole repository.
 *
 * The macros expand to clang's thread-safety attributes (checked by
 * `-Wthread-safety`, promoted to an error under AITAX_WERROR in the
 * clang CI job) and to nothing on other compilers. They give the
 * "parallelism across simulations, never inside one" contract a
 * compiler-checked form: every mutex-guarded member says *which* mutex
 * guards it, and aitax-lint's `guarded-mutex` rule requires the
 * annotation on every class in src/sweep/ that declares a mutex.
 *
 * Because libstdc++'s std::mutex / std::lock_guard carry no
 * capability attributes, the analysis cannot credit a std::lock_guard
 * with holding anything. Code that wants checked locking uses the
 * annotated core::Mutex / core::MutexLock wrappers below instead;
 * they are zero-cost forwarding shims over std::mutex.
 *
 * This header is deliberately dependency-free vocabulary (macros plus
 * two inline wrapper classes over <mutex>); tools/lint_layers.txt
 * declares it `free`, usable from any layer.
 */

#ifndef AITAX_CORE_THREAD_ANNOTATIONS_H
#define AITAX_CORE_THREAD_ANNOTATIONS_H

#include <mutex>

#if defined(__clang__) && defined(__has_attribute)
#define AITAX_THREAD_ATTR(x) __attribute__((x))
#else
#define AITAX_THREAD_ATTR(x)
#endif

/** Marks a type as a lockable capability ("mutex"). */
#define AITAX_CAPABILITY(name) AITAX_THREAD_ATTR(capability(name))
/** RAII type that acquires a capability for its own lifetime. */
#define AITAX_SCOPED_CAPABILITY AITAX_THREAD_ATTR(scoped_lockable)
/** Data member readable/writable only while holding @p mu. */
#define AITAX_GUARDED_BY(mu) AITAX_THREAD_ATTR(guarded_by(mu))
/** Pointer member whose *pointee* is guarded by @p mu. */
#define AITAX_PT_GUARDED_BY(mu) AITAX_THREAD_ATTR(pt_guarded_by(mu))
/** Function that must be called with the capabilities already held. */
#define AITAX_REQUIRES(...) \
    AITAX_THREAD_ATTR(requires_capability(__VA_ARGS__))
/** Function that acquires the capabilities and returns holding them. */
#define AITAX_ACQUIRE(...) \
    AITAX_THREAD_ATTR(acquire_capability(__VA_ARGS__))
/** Function that releases the capabilities. */
#define AITAX_RELEASE(...) \
    AITAX_THREAD_ATTR(release_capability(__VA_ARGS__))
/** Function that must NOT be called while holding the capabilities. */
#define AITAX_EXCLUDES(...) AITAX_THREAD_ATTR(locks_excluded(__VA_ARGS__))
/** Opt a function out of the analysis (rare; justify in a comment). */
#define AITAX_NO_THREAD_SAFETY_ANALYSIS \
    AITAX_THREAD_ATTR(no_thread_safety_analysis)

namespace aitax::core {

/**
 * std::mutex with capability attributes so clang's thread-safety
 * analysis can track lock/unlock through it.
 */
class AITAX_CAPABILITY("mutex") Mutex
{
  public:
    Mutex() = default;
    Mutex(const Mutex &) = delete;
    Mutex &operator=(const Mutex &) = delete;

    void lock() AITAX_ACQUIRE() { m_.lock(); }
    void unlock() AITAX_RELEASE() { m_.unlock(); }

  private:
    std::mutex m_;
};

/**
 * Annotated scope lock: the analysis-visible equivalent of
 * std::lock_guard<core::Mutex>.
 */
class AITAX_SCOPED_CAPABILITY MutexLock
{
  public:
    explicit MutexLock(Mutex &mu) AITAX_ACQUIRE(mu) : mu_(mu)
    {
        mu_.lock();
    }
    ~MutexLock() AITAX_RELEASE() { mu_.unlock(); }

    MutexLock(const MutexLock &) = delete;
    MutexLock &operator=(const MutexLock &) = delete;

  private:
    Mutex &mu_;
};

} // namespace aitax::core

#endif // AITAX_CORE_THREAD_ANNOTATIONS_H
