/**
 * @file
 * AI tax accounting: per-stage latency distributions over repeated
 * pipeline runs, and the derived tax metrics of Section IV.
 */

#ifndef AITAX_CORE_TAX_REPORT_H
#define AITAX_CORE_TAX_REPORT_H

#include <array>
#include <cstdint>
#include <ostream>
#include <string>

#include "core/stage.h"
#include "sim/time.h"
#include "stats/distribution.h"

namespace aitax::core {

/** One run's stage latencies (virtual nanoseconds). */
struct StageLatencies
{
    std::array<sim::DurationNs, kAllStages.size()> ns{};

    sim::DurationNs &operator[](Stage s);
    sim::DurationNs operator[](Stage s) const;

    /** End-to-end latency: sum of all stages. */
    sim::DurationNs endToEnd() const;

    /** AI tax: everything but inference. */
    sim::DurationNs aiTax() const;
};

/**
 * Aggregated report over many runs of one configuration.
 */
class TaxReport
{
  public:
    TaxReport() = default;
    explicit TaxReport(std::string config_label);

    const std::string &label() const { return label_; }
    void setLabel(std::string l) { label_ = std::move(l); }

    /** Record one run. */
    void add(const StageLatencies &run);

    /**
     * Record one run's degraded-mode overhead (retry/backoff time and
     * fallback-device execution, in ms). Only recorded under fault
     * injection; the time is *contained* in the stage walls, so this
     * is an attribution column, not an additional stage.
     */
    void addDegraded(double ms) { degraded_.add(ms); }

    std::size_t runs() const { return e2e.count(); }

    /** Distribution of a stage's latency in milliseconds. */
    const stats::Distribution &stage(Stage s) const;

    /** Distribution of end-to-end latency in milliseconds. */
    const stats::Distribution &endToEnd() const { return e2e; }

    /** Distribution of per-run AI tax in milliseconds. */
    const stats::Distribution &aiTax() const { return tax; }

    /** Per-run degraded-mode overhead (ms); empty without faults. */
    const stats::Distribution &degradedMode() const
    {
        return degraded_;
    }

    /** Mean stage latency in milliseconds. */
    double stageMeanMs(Stage s) const;

    double endToEndMeanMs() const { return e2e.mean(); }
    double aiTaxMeanMs() const { return tax.mean(); }

    /** Mean AI tax as a fraction of mean end-to-end latency (0..1). */
    double aiTaxFraction() const;

    /** Mean stage latency relative to mean inference latency. */
    double stageRelativeToInference(Stage s) const;

    /** Render a one-report breakdown table. */
    void render(std::ostream &os) const;

    /** Emit one CSV row per run with per-stage latencies (ms). */
    void renderCsv(std::ostream &os) const;

  private:
    std::string label_;
    std::array<stats::Distribution, kAllStages.size()> stages;
    stats::Distribution e2e;
    stats::Distribution tax;
    stats::Distribution degraded_;
};

} // namespace aitax::core

#endif // AITAX_CORE_TAX_REPORT_H
