/**
 * @file
 * Cross-report analyses: framework advice, offload amortization and
 * benchmark-vs-application gaps — the quantitative arguments of
 * Section IV.
 */

#ifndef AITAX_CORE_ANALYZER_H
#define AITAX_CORE_ANALYZER_H

#include <string>
#include <utility>
#include <vector>

#include "core/tax_report.h"
#include "soc/fastrpc.h"

namespace aitax::core {

/** Result of comparing frameworks for one model. */
struct FrameworkChoice
{
    std::string framework;
    double e2eMeanMs = 0.0;
    /** Speedup over the worst candidate. */
    double speedupVsWorst = 1.0;
};

/**
 * Pick the framework with the lowest mean end-to-end latency.
 * This encodes the paper's advice that developers must profile their
 * models per framework per SoC before deployment.
 */
FrameworkChoice adviseFramework(
    const std::vector<std::pair<std::string, const TaxReport *>>
        &candidates);

/**
 * Cumulative offload-overhead share after each consecutive call:
 * entry k = total overhead / total time over calls 0..k (Fig 8).
 */
std::vector<double> offloadShareSeries(
    const std::vector<soc::FastRpcBreakdown> &calls);

/**
 * Relative end-to-end gap of the application versus the benchmark,
 * in percent (positive = application is slower).
 */
double harnessGapPct(const TaxReport &benchmark,
                     const TaxReport &application);

} // namespace aitax::core

#endif // AITAX_CORE_ANALYZER_H
