#include "stats/streaming_distribution.h"

#include "stats/numfmt.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace aitax::stats {

namespace {

/**
 * Bucket geometry, computed once. Bucket i (an absolute, possibly
 * negative index) covers values in (gamma^(i-1), gamma^i] with
 * gamma = (1+a)/(1-a); any value in the bucket is within a of the
 * bucket's representative gamma^i * 2/(1+gamma). The index range is
 * fixed by the trackable value range, so the bucket array has a fixed
 * size (~2100 entries at a=1%) — the sketch's fixed-memory bound.
 */
struct Geometry
{
    double gamma;
    double logGamma;
    double representativeScale; ///< 2 / (1 + gamma)
    int minIndex;               ///< bucket of kMinTrackable
    int maxIndex;               ///< bucket of kMaxTrackable
    std::size_t bucketCount;

    Geometry()
    {
        const double a = StreamingDistribution::kRelativeAccuracy;
        gamma = (1.0 + a) / (1.0 - a);
        logGamma = std::log(gamma);
        representativeScale = 2.0 / (1.0 + gamma);
        minIndex = static_cast<int>(std::ceil(
            std::log(StreamingDistribution::kMinTrackable) / logGamma));
        maxIndex = static_cast<int>(std::ceil(
            std::log(StreamingDistribution::kMaxTrackable) / logGamma));
        bucketCount = static_cast<std::size_t>(maxIndex - minIndex + 1);
    }
};

const Geometry &
geometry()
{
    static const Geometry g;
    return g;
}

/** Absolute bucket index for @p x, clamped to the trackable range. */
int
bucketIndex(double x)
{
    const Geometry &g = geometry();
    if (!(x > StreamingDistribution::kMinTrackable))
        return g.minIndex;
    if (x >= StreamingDistribution::kMaxTrackable)
        return g.maxIndex;
    const int i = static_cast<int>(std::ceil(std::log(x) / g.logGamma));
    return std::clamp(i, g.minIndex, g.maxIndex);
}

/** Representative value of absolute bucket @p i (mid-bucket). */
double
bucketValue(int i)
{
    const Geometry &g = geometry();
    return std::exp(g.logGamma * static_cast<double>(i)) *
           g.representativeScale;
}

} // namespace

void
StreamingDistribution::ensureBuckets()
{
    if (buckets_.empty())
        buckets_.assign(geometry().bucketCount, 0);
}

void
StreamingDistribution::add(double x)
{
    ensureBuckets();
    const std::size_t slot =
        static_cast<std::size_t>(bucketIndex(x) - geometry().minIndex);
    ++buckets_[slot];
    if (count_ == 0) {
        min_ = x;
        max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++count_;
    sum_ += x;
    sumSq_ += x * x;
}

void
StreamingDistribution::merge(const StreamingDistribution &other)
{
    if (other.count_ == 0)
        return;
    ensureBuckets();
    assert(buckets_.size() == other.buckets_.size());
    for (std::size_t i = 0; i < buckets_.size(); ++i)
        buckets_[i] += other.buckets_[i];
    if (count_ == 0) {
        min_ = other.min_;
        max_ = other.max_;
    } else {
        min_ = std::min(min_, other.min_);
        max_ = std::max(max_, other.max_);
    }
    count_ += other.count_;
    sum_ += other.sum_;
    sumSq_ += other.sumSq_;
}

void
StreamingDistribution::reset()
{
    buckets_.clear();
    count_ = 0;
    sum_ = 0.0;
    sumSq_ = 0.0;
    min_ = 0.0;
    max_ = 0.0;
}

double
StreamingDistribution::mean() const
{
    return count_ > 0 ? sum_ / static_cast<double>(count_) : 0.0;
}

double
StreamingDistribution::stddev() const
{
    if (count_ < 2)
        return 0.0;
    const double n = static_cast<double>(count_);
    const double var = (sumSq_ - sum_ * sum_ / n) / (n - 1.0);
    return var > 0.0 ? std::sqrt(var) : 0.0;
}

double
StreamingDistribution::cv() const
{
    const double m = mean();
    return m != 0.0 ? stddev() / m : 0.0;
}

double
StreamingDistribution::min() const
{
    return count_ > 0 ? min_ : 0.0;
}

double
StreamingDistribution::max() const
{
    return count_ > 0 ? max_ : 0.0;
}

double
StreamingDistribution::percentile(double p) const
{
    if (count_ == 0)
        return 0.0;
    p = std::clamp(p, 0.0, 100.0);
    // Rank convention matches Distribution::percentile: p maps onto
    // [0, n-1]. The sketch answers with the bucket holding that rank,
    // so the rank is exact and only the value is approximated.
    const double rank =
        p / 100.0 * static_cast<double>(count_ - 1);
    const auto target = static_cast<std::uint64_t>(rank);
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        cum += buckets_[i];
        if (cum > target) {
            const double v =
                bucketValue(static_cast<int>(i) + geometry().minIndex);
            // The observed extremes are exact; clamping the bucket
            // representative into [min, max] only ever reduces error.
            return std::clamp(v, min_, max_);
        }
    }
    return max_;
}

double
StreamingDistribution::maxDeviationFromMedianPct() const
{
    if (count_ == 0)
        return 0.0;
    const double med = median();
    if (med == 0.0)
        return 0.0;
    const double worst =
        std::max(std::abs(max_ - med), std::abs(min_ - med));
    return worst / med * 100.0;
}

std::string
StreamingDistribution::serialize() const
{
    char buf[128];
    std::string out = "sd1 c=";
    out += std::to_string(count_);
    if (count_ == 0)
        return out;
    // Locale-independent formatting (numfmt.h): identical bytes to the
    // historical C-locale "%.17g" regardless of LC_NUMERIC.
    out += " s=";
    appendG17(out, sum_);
    out += " q=";
    appendG17(out, sumSq_);
    out += " lo=";
    appendG17(out, min_);
    out += " hi=";
    appendG17(out, max_);
    out += " b=";
    bool first = true;
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        if (buckets_[i] == 0)
            continue;
        if (!first)
            out += ',';
        first = false;
        std::snprintf(buf, sizeof(buf), "%d:%llu",
                      static_cast<int>(i) + geometry().minIndex,
                      static_cast<unsigned long long>(buckets_[i]));
        out += buf;
    }
    return out;
}

bool
StreamingDistribution::deserialize(std::string_view text,
                                   StreamingDistribution &out,
                                   std::string *error)
{
    auto fail = [&](const char *why) {
        if (error != nullptr)
            *error = why;
        return false;
    };
    StreamingDistribution d;
    if (text.substr(0, 4) != "sd1 ")
        return fail("missing sd1 header");
    const std::string s(text.substr(4));
    const char *p = s.c_str();

    auto expect = [&p](const char *tag) {
        const std::size_t n = std::char_traits<char>::length(tag);
        while (*p == ' ')
            ++p;
        if (std::string_view(p, n) != tag)
            return false;
        p += n;
        return true;
    };

    if (!expect("c="))
        return fail("missing c= field");
    char *end = nullptr;
    d.count_ = std::strtoull(p, &end, 10);
    if (end == p)
        return fail("bad count");
    p = end;
    if (d.count_ == 0) {
        out = d;
        return true;
    }

    auto readDouble = [&](const char *tag, double &slot) {
        // parseDouble is locale-independent; strtod would stop at the
        // '.' under a comma-decimal LC_NUMERIC and corrupt the moment.
        return expect(tag) && parseDouble(p, slot);
    };
    if (!readDouble("s=", d.sum_) || !readDouble("q=", d.sumSq_) ||
        !readDouble("lo=", d.min_) || !readDouble("hi=", d.max_))
        return fail("bad moment field");

    if (!expect("b="))
        return fail("missing b= field");
    d.ensureBuckets();
    const Geometry &g = geometry();
    std::uint64_t total = 0;
    for (;;) {
        const long idx = std::strtol(p, &end, 10);
        if (end == p || *end != ':')
            return fail("bad bucket entry");
        p = end + 1;
        const std::uint64_t cnt = std::strtoull(p, &end, 10);
        if (end == p)
            return fail("bad bucket count");
        p = end;
        if (idx < g.minIndex || idx > g.maxIndex)
            return fail("bucket index out of range");
        d.buckets_[static_cast<std::size_t>(idx - g.minIndex)] += cnt;
        total += cnt;
        if (*p != ',')
            break;
        ++p;
    }
    if (total != d.count_)
        return fail("bucket counts disagree with c=");
    out = std::move(d);
    return true;
}

bool
StreamingDistribution::identicalTo(const StreamingDistribution &o) const
{
    if (count_ != o.count_)
        return false;
    if (count_ == 0)
        return true;
    return sum_ == o.sum_ && sumSq_ == o.sumSq_ && min_ == o.min_ &&
           max_ == o.max_ && buckets_ == o.buckets_;
}

std::string
StreamingDistribution::summary() const
{
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "n=%llu mean=%.3f p50=%.3f p99=%.3f min=%.3f "
                  "max=%.3f cv=%.3f",
                  static_cast<unsigned long long>(count_), mean(),
                  median(), p99(), min(), max(), cv());
    return buf;
}

} // namespace aitax::stats
