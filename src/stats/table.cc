#include "stats/table.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdint>

namespace aitax::stats {

Table::Table(std::vector<std::string> header)
    : head(std::move(header))
{
    assert(!head.empty());
}

void
Table::addRow(std::vector<std::string> cells)
{
    assert(cells.size() == head.size());
    body.push_back(std::move(cells));
}

std::string
Table::num(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::string
Table::num(std::int64_t v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    return buf;
}

std::string
Table::pct(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%%", precision, v);
    return buf;
}

void
Table::render(std::ostream &os) const
{
    std::vector<std::size_t> widths(head.size());
    for (std::size_t c = 0; c < head.size(); ++c)
        widths[c] = head[c].size();
    for (const auto &row : body)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto print_row = [&](const std::vector<std::string> &row) {
        os << "|";
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << " " << row[c];
            for (std::size_t p = row[c].size(); p < widths[c]; ++p)
                os << ' ';
            os << " |";
        }
        os << "\n";
    };

    print_row(head);
    os << "|";
    for (std::size_t c = 0; c < head.size(); ++c) {
        for (std::size_t p = 0; p < widths[c] + 2; ++p)
            os << '-';
        os << "|";
    }
    os << "\n";
    for (const auto &row : body)
        print_row(row);
}

void
Table::renderCsv(std::ostream &os) const
{
    auto emit = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            if (c)
                os << ',';
            const bool quote =
                row[c].find_first_of(",\"\n") != std::string::npos;
            if (quote) {
                os << '"';
                for (char ch : row[c]) {
                    if (ch == '"')
                        os << '"';
                    os << ch;
                }
                os << '"';
            } else {
                os << row[c];
            }
        }
        os << "\n";
    };
    emit(head);
    for (const auto &row : body)
        emit(row);
}

} // namespace aitax::stats
