/**
 * @file
 * Locale-independent number formatting/parsing for wire protocols.
 *
 * The campaign protocol and the checkpoint manifest round-trip doubles
 * as text. printf("%.17g") and strtod/sscanf("%lf") are both sensitive
 * to LC_NUMERIC: under a comma-decimal locale (de_DE et al.) the
 * formatter emits "1,5" and the parser stops at the comma, silently
 * corrupting aggregates. Every protocol/manifest number therefore goes
 * through these helpers, which use std::to_chars/std::from_chars — the
 * only standard facilities guaranteed to ignore the global locale.
 *
 * formatG17 is byte-compatible with the historical "%.17g" format in
 * the C locale (to_chars with chars_format::general and precision 17
 * is specified to print "as if by printf %.17g" with '.' as the
 * decimal point), so manifests written by earlier versions parse
 * unchanged and goldens keep their exact bytes.
 */

#ifndef AITAX_STATS_NUMFMT_H
#define AITAX_STATS_NUMFMT_H

#include <charconv>
#include <cstdint>
#include <cstring>
#include <string>
#include <system_error>

namespace aitax::stats {

/** Shortest-17-significant-digit form of @p v; C-locale bytes. */
inline std::string
formatG17(double v)
{
    char buf[64];
    const auto r = std::to_chars(buf, buf + sizeof(buf), v,
                                 std::chars_format::general, 17);
    return std::string(buf, r.ptr);
}

/** Append formatG17(@p v) to @p out without a temporary string. */
inline void
appendG17(std::string &out, double v)
{
    char buf[64];
    const auto r = std::to_chars(buf, buf + sizeof(buf), v,
                                 std::chars_format::general, 17);
    out.append(buf, r.ptr);
}

/**
 * Parse a double at @p p (skipping leading spaces), advancing @p p
 * past the consumed token. Locale-independent: only '.' is a decimal
 * point, so "1,5" parses as 1.0 leaving ",5" — exactly the C-locale
 * strtod behaviour the protocol was specified against.
 * @return false (leaving @p p at the token start) on no parse.
 */
inline bool
parseDouble(const char *&p, double &out)
{
    while (*p == ' ')
        ++p;
    const char *end = p + std::strlen(p);
    const auto r =
        std::from_chars(p, end, out, std::chars_format::general);
    if (r.ec != std::errc())
        return false;
    p = r.ptr;
    return true;
}

/** Integer flavours of parseDouble (from_chars, base 10). */
inline bool
parseU64(const char *&p, std::uint64_t &out)
{
    while (*p == ' ')
        ++p;
    const char *end = p + std::strlen(p);
    const auto r = std::from_chars(p, end, out, 10);
    if (r.ec != std::errc())
        return false;
    p = r.ptr;
    return true;
}

inline bool
parseI64(const char *&p, std::int64_t &out)
{
    while (*p == ' ')
        ++p;
    const char *end = p + std::strlen(p);
    const auto r = std::from_chars(p, end, out, 10);
    if (r.ec != std::errc())
        return false;
    p = r.ptr;
    return true;
}

inline bool
parseInt(const char *&p, int &out)
{
    std::int64_t wide = 0;
    const char *save = p;
    if (!parseI64(p, wide) || wide < INT32_MIN || wide > INT32_MAX) {
        p = save;
        return false;
    }
    out = static_cast<int>(wide);
    return true;
}

} // namespace aitax::stats

#endif // AITAX_STATS_NUMFMT_H
