#include "stats/accumulator.h"

#include <algorithm>
#include <cmath>

namespace aitax::stats {

void
Accumulator::add(double x)
{
    ++n;
    total += x;
    const double delta = x - mu;
    mu += delta / static_cast<double>(n);
    m2 += delta * (x - mu);
    lo = std::min(lo, x);
    hi = std::max(hi, x);
}

void
Accumulator::merge(const Accumulator &other)
{
    if (other.n == 0)
        return;
    if (n == 0) {
        *this = other;
        return;
    }
    const double delta = other.mu - mu;
    const auto na = static_cast<double>(n);
    const auto nb = static_cast<double>(other.n);
    const double nt = na + nb;
    mu += delta * nb / nt;
    m2 += other.m2 + delta * delta * na * nb / nt;
    n += other.n;
    total += other.total;
    lo = std::min(lo, other.lo);
    hi = std::max(hi, other.hi);
}

void
Accumulator::reset()
{
    *this = Accumulator();
}

double
Accumulator::variance() const
{
    if (n < 2)
        return 0.0;
    return m2 / static_cast<double>(n);
}

double
Accumulator::sampleVariance() const
{
    if (n < 2)
        return 0.0;
    return m2 / static_cast<double>(n - 1);
}

double
Accumulator::stddev() const
{
    return std::sqrt(sampleVariance());
}

double
Accumulator::cv() const
{
    if (n == 0 || mu == 0.0)
        return 0.0;
    return stddev() / mu;
}

} // namespace aitax::stats
