/**
 * @file
 * Sample-retaining distribution for percentile and variability analysis.
 *
 * The paper (Section IV-C, Fig 11) argues that mobile AI performance
 * must be reported as a distribution, not a single number; this class
 * is the library's vehicle for doing so.
 */

#ifndef AITAX_STATS_DISTRIBUTION_H
#define AITAX_STATS_DISTRIBUTION_H

#include <cstddef>
#include <string>
#include <vector>

#include "stats/accumulator.h"

namespace aitax::stats {

/** A histogram bucket: [lo, hi) with a sample count. */
struct HistogramBin
{
    double lo;
    double hi;
    std::size_t count;
};

/**
 * Retains every sample; answers order-statistics queries.
 */
class Distribution
{
  public:
    void add(double x);
    void reserve(std::size_t n) { samples.reserve(n); }
    void reset();

    std::size_t count() const { return samples.size(); }
    bool empty() const { return samples.empty(); }

    double mean() const { return acc.mean(); }
    double stddev() const { return acc.stddev(); }
    double min() const { return acc.min(); }
    double max() const { return acc.max(); }
    double cv() const { return acc.cv(); }

    /**
     * Linear-interpolated percentile.
     * @param p percentile in [0, 100].
     */
    double percentile(double p) const;

    double median() const { return percentile(50.0); }
    double p95() const { return percentile(95.0); }
    double p99() const { return percentile(99.0); }

    /** Interquartile range (p75 - p25). */
    double iqr() const;

    /**
     * Half-width of the ~95% confidence interval of the mean
     * (normal approximation, 1.96 * s / sqrt(n)); 0 for n < 2.
     */
    double meanConfidence95() const;

    /** Median absolute deviation. */
    double mad() const;

    /**
     * Maximum relative deviation from the median, in percent.
     *
     * This is the paper's "latency can vary by as much as 30% from the
     * median" metric (Fig 11 discussion).
     */
    double maxDeviationFromMedianPct() const;

    /** Fixed-width histogram over [min, max] with @p bins buckets. */
    std::vector<HistogramBin> histogram(std::size_t bins) const;

    /** Read-only access to raw samples (unsorted, insertion order). */
    const std::vector<double> &raw() const { return samples; }

    /** One-line summary, e.g. for logging. */
    std::string summary() const;

  private:
    std::vector<double> samples;
    mutable std::vector<double> sorted;
    mutable bool sortedValid = false;
    Accumulator acc;

    const std::vector<double> &sortedSamples() const;
};

} // namespace aitax::stats

#endif // AITAX_STATS_DISTRIBUTION_H
