/**
 * @file
 * Streaming statistics accumulator (Welford's algorithm).
 */

#ifndef AITAX_STATS_ACCUMULATOR_H
#define AITAX_STATS_ACCUMULATOR_H

#include <cstdint>
#include <limits>

namespace aitax::stats {

/**
 * Single-pass accumulator for count/mean/variance/min/max.
 *
 * Uses Welford's online algorithm so the variance is numerically
 * stable regardless of magnitude.
 */
class Accumulator
{
  public:
    /** Add one sample. */
    void add(double x);

    /** Merge another accumulator into this one (parallel Welford). */
    void merge(const Accumulator &other);

    /** Remove all samples. */
    void reset();

    std::uint64_t count() const { return n; }
    double sum() const { return total; }
    double mean() const { return n ? mu : 0.0; }

    /** Population variance. Zero for fewer than two samples. */
    double variance() const;

    /** Sample (Bessel-corrected) variance. */
    double sampleVariance() const;

    double stddev() const;
    double min() const { return n ? lo : 0.0; }
    double max() const { return n ? hi : 0.0; }

    /** Coefficient of variation (stddev / mean); 0 when mean is 0. */
    double cv() const;

  private:
    std::uint64_t n = 0;
    double mu = 0.0;
    double m2 = 0.0;
    double total = 0.0;
    double lo = std::numeric_limits<double>::infinity();
    double hi = -std::numeric_limits<double>::infinity();
};

} // namespace aitax::stats

#endif // AITAX_STATS_ACCUMULATOR_H
