/**
 * @file
 * Plain-text table writer used by the benchmark harnesses to print the
 * rows/series corresponding to the paper's tables and figures.
 */

#ifndef AITAX_STATS_TABLE_H
#define AITAX_STATS_TABLE_H

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

namespace aitax::stats {

/**
 * Column-aligned ASCII table.
 *
 * Cells are strings; helpers format doubles with a fixed precision.
 * Rendering pads every column to its widest cell.
 */
class Table
{
  public:
    explicit Table(std::vector<std::string> header);

    /** Append a row; must match the header width. */
    void addRow(std::vector<std::string> cells);

    /** Format a double with @p precision decimals. */
    static std::string num(double v, int precision = 2);

    /** Format an integer. */
    static std::string num(std::int64_t v);

    /** Format a percentage, e.g. "42.0%". */
    static std::string pct(double v, int precision = 1);

    std::size_t rows() const { return body.size(); }
    std::size_t columns() const { return head.size(); }

    /** Render with column separators and a header rule. */
    void render(std::ostream &os) const;

    /** Render as CSV (comma-separated, quoted when needed). */
    void renderCsv(std::ostream &os) const;

  private:
    std::vector<std::string> head;
    std::vector<std::vector<std::string>> body;
};

} // namespace aitax::stats

#endif // AITAX_STATS_TABLE_H
