/**
 * @file
 * Fixed-memory mergeable distribution sketch for fleet-scale sweeps.
 *
 * stats::Distribution retains every sample, which is the right tool
 * for one figure's worth of data but cannot aggregate a
 * million-scenario campaign online. StreamingDistribution is the
 * campaign-side companion: a log-bucketed histogram in the DDSketch
 * family (geometric bucket boundaries with relative accuracy
 * kRelativeAccuracy) plus exact count/sum/min/max moments, in a few
 * tens of kilobytes regardless of how many samples are added.
 *
 * Merge semantics are the whole point: merging two sketches adds
 * bucket counters element-wise, so quantiles, count, min and max are
 * *exactly* merge-order independent (associative and commutative),
 * which is what lets a campaign coordinator combine per-chunk partial
 * aggregates in canonical chunk order and produce byte-identical
 * output at any --shards x --jobs split, including kill-and-resume
 * (serialize()/deserialize() round-trip the state losslessly;
 * doubles travel as "%.17g"). Mean/stddev merge by summing moments,
 * which is FP-commutative; the campaign keeps them byte-stable by
 * always merging chunks in ascending chunk order.
 *
 * Error bound: for samples inside [kMinTrackable, kMaxTrackable],
 * percentile(p) returns a value within kRelativeAccuracy (1%) of some
 * sample whose rank is exact for the bucketed population — i.e. the
 * quantile *value* has bounded relative error while the quantile
 * *rank* is exact. tests/test_campaign.cc checks this against the
 * sample-retaining Distribution on seeded data. Samples outside the
 * trackable range clamp into the edge buckets (count/min/max stay
 * exact; their quantile contribution saturates).
 */

#ifndef AITAX_STATS_STREAMING_DISTRIBUTION_H
#define AITAX_STATS_STREAMING_DISTRIBUTION_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace aitax::stats {

class StreamingDistribution
{
  public:
    /** Guaranteed relative accuracy of percentile() values. */
    static constexpr double kRelativeAccuracy = 0.01;
    /** Trackable value range; outside values clamp to the edges. */
    static constexpr double kMinTrackable = 1e-6;
    static constexpr double kMaxTrackable = 1e12;

    void add(double x);

    /**
     * Fold @p other into this sketch. Element-wise counter addition:
     * exactly associative and commutative for count/min/max and every
     * percentile; mean/stddev are commutative up to FP rounding (the
     * campaign layer merges in canonical chunk order so aggregate
     * reports stay byte-identical).
     */
    void merge(const StreamingDistribution &other);

    void reset();

    std::uint64_t count() const { return count_; }
    bool empty() const { return count_ == 0; }

    double sum() const { return sum_; }
    double mean() const;
    /** Sample standard deviation (n-1 denominator), from moments. */
    double stddev() const;
    /** Coefficient of variation (stddev / mean); 0 if mean is 0. */
    double cv() const;
    double min() const;
    double max() const;

    /**
     * Quantile with exact rank and <= kRelativeAccuracy value error.
     * @param p percentile in [0, 100].
     */
    double percentile(double p) const;
    double median() const { return percentile(50.0); }
    double p95() const { return percentile(95.0); }
    double p99() const { return percentile(99.0); }

    /**
     * The paper's Fig 11 variability metric, approximated from the
     * sketch: worst-case deviation of the observed extremes from the
     * median, in percent of the median.
     */
    double maxDeviationFromMedianPct() const;

    /**
     * Lossless single-line text form ("sd1 ..."): exact counters plus
     * "%.17g" moments, so deserialize(serialize()) reproduces the
     * sketch bit-for-bit. Used by the campaign checkpoint manifest.
     */
    std::string serialize() const;

    /**
     * Parse a serialize() line. @return false (with @p error set when
     * non-null) on malformed input; @p out is untouched on failure.
     */
    static bool deserialize(std::string_view text,
                            StreamingDistribution &out,
                            std::string *error = nullptr);

    /**
     * Exact state equality — counters and bit-identical moments. The
     * determinism tests use this to prove merge-order independence.
     */
    bool identicalTo(const StreamingDistribution &other) const;

    /** One-line summary, e.g. for logging. */
    std::string summary() const;

  private:
    /** Dense bucket array, allocated on first add; empty until then. */
    std::vector<std::uint64_t> buckets_;
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double sumSq_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;

    void ensureBuckets();
};

} // namespace aitax::stats

#endif // AITAX_STATS_STREAMING_DISTRIBUTION_H
