#include "stats/distribution.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>

namespace aitax::stats {

void
Distribution::add(double x)
{
    samples.push_back(x);
    acc.add(x);
    sortedValid = false;
}

void
Distribution::reset()
{
    samples.clear();
    sorted.clear();
    sortedValid = false;
    acc.reset();
}

const std::vector<double> &
Distribution::sortedSamples() const
{
    if (!sortedValid) {
        sorted = samples;
        // Plain doubles under operator< — a total order (latency
        // samples are finite). aitax-lint: allow(unstable-sort)
        std::sort(sorted.begin(), sorted.end());
        sortedValid = true;
    }
    return sorted;
}

double
Distribution::percentile(double p) const
{
    const auto &s = sortedSamples();
    if (s.empty())
        return 0.0;
    if (s.size() == 1)
        return s.front();
    p = std::clamp(p, 0.0, 100.0);
    const double rank = p / 100.0 * static_cast<double>(s.size() - 1);
    const auto lo_idx = static_cast<std::size_t>(rank);
    const double frac = rank - static_cast<double>(lo_idx);
    if (lo_idx + 1 >= s.size())
        return s.back();
    return s[lo_idx] + frac * (s[lo_idx + 1] - s[lo_idx]);
}

double
Distribution::iqr() const
{
    return percentile(75.0) - percentile(25.0);
}

double
Distribution::meanConfidence95() const
{
    if (count() < 2)
        return 0.0;
    return 1.96 * stddev() / std::sqrt(static_cast<double>(count()));
}

double
Distribution::mad() const
{
    if (samples.empty())
        return 0.0;
    const double med = median();
    std::vector<double> dev;
    dev.reserve(samples.size());
    for (double x : samples)
        dev.push_back(std::abs(x - med));
    // Plain doubles; see sortedSamples(). aitax-lint: allow(unstable-sort)
    std::sort(dev.begin(), dev.end());
    const std::size_t n = dev.size();
    if (n % 2 == 1)
        return dev[n / 2];
    return 0.5 * (dev[n / 2 - 1] + dev[n / 2]);
}

double
Distribution::maxDeviationFromMedianPct() const
{
    if (samples.empty())
        return 0.0;
    const double med = median();
    if (med == 0.0)
        return 0.0;
    double worst = 0.0;
    for (double x : samples)
        worst = std::max(worst, std::abs(x - med) / med);
    return worst * 100.0;
}

std::vector<HistogramBin>
Distribution::histogram(std::size_t bins) const
{
    std::vector<HistogramBin> out;
    if (samples.empty() || bins == 0)
        return out;
    const double lo = min();
    const double hi = max();
    const double width = (hi > lo) ? (hi - lo) / static_cast<double>(bins)
                                   : 1.0;
    out.resize(bins);
    for (std::size_t i = 0; i < bins; ++i) {
        out[i].lo = lo + width * static_cast<double>(i);
        out[i].hi = out[i].lo + width;
        out[i].count = 0;
    }
    for (double x : samples) {
        auto idx = static_cast<std::size_t>((x - lo) / width);
        if (idx >= bins)
            idx = bins - 1;
        ++out[idx].count;
    }
    return out;
}

std::string
Distribution::summary() const
{
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "n=%zu mean=%.3f median=%.3f p95=%.3f min=%.3f max=%.3f "
                  "cv=%.3f",
                  count(), mean(), median(), p95(), min(), max(), cv());
    return buf;
}

} // namespace aitax::stats
