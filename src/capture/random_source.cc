#include "capture/random_source.h"

namespace aitax::capture {

std::string_view
stdlibFlavorName(StdlibFlavor f)
{
    switch (f) {
      case StdlibFlavor::Libcpp: return "libc++";
      case StdlibFlavor::Libstdcxx: return "libstdc++";
    }
    return "unknown";
}

RandomInputSource::RandomInputSource(StdlibFlavor flavor)
    : flavor_(flavor)
{
}

sim::Work
RandomInputSource::generationWork(std::int64_t elements,
                                  tensor::DType dtype) const
{
    const double n = static_cast<double>(elements);
    const bool integral = tensor::isQuantized(dtype);
    // Ops per element for uniform_real/uniform_int distributions.
    double ops_per_elem;
    if (flavor_ == StdlibFlavor::Libcpp)
        ops_per_elem = integral ? 60.0 : 8.0;
    else
        ops_per_elem = integral ? 10.0 : 45.0;
    return {n * ops_per_elem,
            n * static_cast<double>(tensor::dtypeSize(dtype))};
}

void
RandomInputSource::fill(tensor::Tensor &t, sim::RandomStream &rng) const
{
    switch (t.dtype()) {
      case tensor::DType::Float32:
        for (auto &x : t.data<float>())
            x = static_cast<float>(rng.uniform(-1.0, 1.0));
        break;
      case tensor::DType::UInt8:
      case tensor::DType::Int8:
        for (auto &x : t.data<std::uint8_t>())
            x = static_cast<std::uint8_t>(rng.uniformInt(0, 255));
        break;
      case tensor::DType::Int32:
        for (auto &x : t.data<std::int32_t>())
            x = static_cast<std::int32_t>(rng.uniformInt(0, 30521));
        break;
      default:
        for (auto &x : t.data<std::uint8_t>())
            x = static_cast<std::uint8_t>(rng.uniformInt(0, 255));
        break;
    }
}

} // namespace aitax::capture
