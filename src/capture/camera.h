/**
 * @file
 * Camera sensor model: paced frame delivery plus the supporting-code
 * cost of getting a frame into the application ("the supporting code
 * around data capture contributed a large share of overall
 * application latency", Section II-A).
 */

#ifndef AITAX_CAPTURE_CAMERA_H
#define AITAX_CAPTURE_CAMERA_H

#include <cstdint>

#include "imaging/image.h"
#include "sim/random.h"
#include "sim/time.h"
#include "sim/work.h"

namespace aitax::capture {

/** Camera configuration. */
struct CameraConfig
{
    std::int32_t width = 640;
    std::int32_t height = 480;
    double fps = 30.0;
    /** Delivery jitter (interrupt handling, HAL queueing). */
    sim::DurationNs jitterMeanNs = sim::usToNs(400.0);
    /**
     * When true, frames arrive on exact period boundaries and the
     * wait is the remainder of the current period (an app whose loop
     * is synchronized to the sensor). When false (default), the app
     * loop and the sensor free-run relative to each other and the
     * wait is uniform over a period.
     */
    bool phaseLocked = false;
    /** CPU ops per frame byte for buffer copy + callback glue. */
    double glueOpsPerByte = 1.8;
};

/**
 * A preview-stream camera.
 */
class CameraModel
{
  public:
    explicit CameraModel(CameraConfig cfg);

    const CameraConfig &config() const { return cfg; }

    sim::DurationNs framePeriodNs() const;

    /** Frame bytes in the NV21 delivery format. */
    double frameBytes() const;

    /**
     * Wait until the next frame is delivered, given current time:
     * remainder of the frame period plus exponential jitter.
     */
    sim::DurationNs waitForFrameNs(sim::TimeNs now,
                                   sim::RandomStream &rng) const;

    /** CPU work to copy the frame buffer and run app callbacks. */
    sim::Work frameGlueWork() const;

    /** Synthesize the frame an application would receive. */
    imaging::Image captureFrame(std::uint32_t frame_index) const;

  private:
    CameraConfig cfg;
};

} // namespace aitax::capture

#endif // AITAX_CAPTURE_CAMERA_H
