#include "capture/camera.h"

#include <cassert>
#include <cmath>

#include "imaging/yuv.h"

namespace aitax::capture {

CameraModel::CameraModel(CameraConfig cfg)
    : cfg(cfg)
{
    assert(cfg.fps > 0.0);
    assert(cfg.width > 0 && cfg.height > 0);
}

sim::DurationNs
CameraModel::framePeriodNs() const
{
    return static_cast<sim::DurationNs>(1e9 / cfg.fps);
}

double
CameraModel::frameBytes() const
{
    return static_cast<double>(imaging::imageByteSize(
        imaging::PixelFormat::YuvNv21, cfg.width, cfg.height));
}

sim::DurationNs
CameraModel::waitForFrameNs(sim::TimeNs now,
                            sim::RandomStream &rng) const
{
    const sim::DurationNs period = framePeriodNs();
    sim::DurationNs to_tick;
    if (cfg.phaseLocked) {
        const sim::DurationNs phase = now % period;
        to_tick = period - phase;
    } else {
        to_tick = static_cast<sim::DurationNs>(
            rng.uniform(1.0, static_cast<double>(period)));
    }
    const auto jitter = static_cast<sim::DurationNs>(
        rng.exponential(static_cast<double>(cfg.jitterMeanNs)));
    return to_tick + jitter;
}

sim::Work
CameraModel::frameGlueWork() const
{
    const double bytes = frameBytes();
    // Copy out of the HAL buffer plus callback/JNI glue.
    return {bytes * cfg.glueOpsPerByte, bytes * 2.0};
}

imaging::Image
CameraModel::captureFrame(std::uint32_t frame_index) const
{
    return imaging::makeTestFrameNv21(cfg.width, cfg.height, frame_index);
}

} // namespace aitax::capture
