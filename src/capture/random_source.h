/**
 * @file
 * Random input generation — how the TFLite command-line benchmark
 * "captures data".
 *
 * The paper flags a subtle trap here (Section IV-A): the cost of
 * generating random inputs depends on the C++ standard library. The
 * libc++ the benchmark was built against generates real numbers
 * significantly faster than integers; libstdc++ shows the exact
 * opposite. We model both flavors.
 */

#ifndef AITAX_CAPTURE_RANDOM_SOURCE_H
#define AITAX_CAPTURE_RANDOM_SOURCE_H

#include <cstdint>
#include <string_view>

#include "sim/random.h"
#include "sim/work.h"
#include "tensor/tensor.h"

namespace aitax::capture {

/** Which C++ standard library the benchmark binary links. */
enum class StdlibFlavor
{
    Libcpp,    ///< LLVM libc++: fast reals, slow integers
    Libstdcxx, ///< GNU libstdc++: fast integers, slow reals
};

std::string_view stdlibFlavorName(StdlibFlavor f);

/**
 * Random tensor source for benchmark harnesses.
 */
class RandomInputSource
{
  public:
    explicit RandomInputSource(StdlibFlavor flavor = StdlibFlavor::Libcpp);

    StdlibFlavor flavor() const { return flavor_; }

    /** Modelled cost of generating @p elements of @p dtype. */
    sim::Work generationWork(std::int64_t elements,
                             tensor::DType dtype) const;

    /** Actually fill a tensor with pseudorandom data. */
    void fill(tensor::Tensor &t, sim::RandomStream &rng) const;

  private:
    StdlibFlavor flavor_;
};

} // namespace aitax::capture

#endif // AITAX_CAPTURE_RANDOM_SOURCE_H
