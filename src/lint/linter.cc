#include "lint/linter.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "lint/graph_rules.h"

namespace aitax::lint {

namespace {

bool
ruleSelected(const std::vector<std::string> &filter, std::string_view id)
{
    return filter.empty() ||
           std::find(filter.begin(), filter.end(), std::string(id)) !=
               filter.end();
}

/** Apply strictness filtering and suppressions to raw findings. */
void
settle(std::vector<Finding> raw, const RepoIndex *idx,
       const SuppressionSet *singleSup, bool strict, LintResult &res)
{
    for (Finding &f : raw) {
        if (f.lowConfidence && !strict)
            continue;
        const SuppressionSet *sup = singleSup;
        if (sup == nullptr && idx != nullptr) {
            const int at = idx->fileIndexOf(f.file);
            if (at >= 0)
                sup = &idx->files()[static_cast<std::size_t>(at)].sup;
        }
        if (sup != nullptr && sup->covers(f))
            ++res.suppressed;
        else
            res.findings.push_back(std::move(f));
    }
    std::stable_sort(res.findings.begin(), res.findings.end());
}

void
jsonEscape(std::ostringstream &os, std::string_view s)
{
    for (char c : s) {
        switch (c) {
          case '"':
            os << "\\\"";
            break;
          case '\\':
            os << "\\\\";
            break;
          case '\n':
            os << "\\n";
            break;
          case '\t':
            os << "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                os << buf;
            } else {
                os << c;
            }
        }
    }
}

} // namespace

LintResult
lintSource(std::string_view virtualPath, std::string_view content,
           const std::vector<std::string> &ruleFilter)
{
    const FileRecord rec = indexSource(virtualPath, content);

    std::vector<Finding> raw;
    for (const Rule &r : allRules()) {
        if (!ruleSelected(ruleFilter, r.id))
            continue;
        r.check(rec.ctx, raw);
    }

    LintResult res;
    res.filesScanned = 1;
    settle(std::move(raw), nullptr, &rec.sup, /*strict=*/false, res);
    return res;
}

LintResult
lintFile(const std::string &diskPath, std::string_view virtualPath,
         const std::vector<std::string> &ruleFilter)
{
    std::ifstream in(diskPath, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    return lintSource(virtualPath, buf.str(), ruleFilter);
}

LintResult
lintRepo(const RepoIndex &idx, const LintOptions &opts)
{
    std::vector<Finding> raw;
    for (const FileRecord &rec : idx.files())
        for (const Rule &r : allRules())
            if (ruleSelected(opts.ruleFilter, r.id))
                r.check(rec.ctx, raw);

    GraphOptions gopts;
    gopts.layersPath = opts.layersPath;
    gopts.strict = opts.strict;
    for (const GraphRule &r : allGraphRules())
        if (ruleSelected(opts.ruleFilter, r.id))
            r.check(idx, gopts, raw);

    LintResult res;
    res.filesScanned = idx.files().size();
    settle(std::move(raw), &idx, nullptr, opts.strict, res);
    return res;
}

LintResult
lintTree(const std::string &root, const LintOptions &opts)
{
    namespace fs = std::filesystem;
    const RepoIndex idx = RepoIndex::build(root);
    LintOptions effective = opts;
    if (effective.layersPath.empty())
        effective.layersPath =
            (fs::path(root) / "tools" / "lint_layers.txt").string();
    return lintRepo(idx, effective);
}

std::string
formatFinding(const Finding &f, bool withHint)
{
    std::ostringstream os;
    os << f.file << ':' << f.line << ": [" << f.rule << "] "
       << f.message;
    if (withHint && !f.hint.empty())
        os << "\n    hint: " << f.hint;
    return os.str();
}

std::string
renderJson(const std::vector<Finding> &fresh, std::size_t filesScanned,
           std::size_t baselined, std::size_t suppressed,
           const std::vector<BaselineEntry> &stale)
{
    std::ostringstream os;
    os << "{\n";
    os << "  \"schema\": \"aitax-lint-report/1\",\n";
    os << "  \"files_scanned\": " << filesScanned << ",\n";
    os << "  \"counts\": {\"findings\": " << fresh.size()
       << ", \"baselined\": " << baselined
       << ", \"suppressed\": " << suppressed
       << ", \"stale_baseline\": " << stale.size() << "},\n";
    os << "  \"findings\": [";
    for (std::size_t i = 0; i < fresh.size(); ++i) {
        const Finding &f = fresh[i];
        os << (i == 0 ? "\n" : ",\n");
        os << "    {\"file\": \"";
        jsonEscape(os, f.file);
        os << "\", \"line\": " << f.line << ", \"rule\": \"";
        jsonEscape(os, f.rule);
        os << "\", \"confidence\": \""
           << (f.lowConfidence ? "low" : "normal")
           << "\", \"message\": \"";
        jsonEscape(os, f.message);
        os << "\", \"hint\": \"";
        jsonEscape(os, f.hint);
        os << "\"}";
    }
    os << (fresh.empty() ? "],\n" : "\n  ],\n");
    os << "  \"stale_baseline\": [";
    for (std::size_t i = 0; i < stale.size(); ++i) {
        const BaselineEntry &e = stale[i];
        os << (i == 0 ? "\n" : ",\n");
        os << "    {\"file\": \"";
        jsonEscape(os, e.file);
        os << "\", \"line\": " << e.line << ", \"rule\": \"";
        jsonEscape(os, e.rule);
        os << "\"}";
    }
    os << (stale.empty() ? "]\n" : "\n  ]\n");
    os << "}\n";
    return os.str();
}

} // namespace aitax::lint
