#include "lint/linter.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

namespace aitax::lint {

namespace {

/** Parsed suppression state for one file. */
struct Suppressions
{
    /** rule -> set of lines it is allowed on. */
    std::map<std::string, std::set<int>> lines;
    /** rules allowed for the whole file. */
    std::set<std::string> fileWide;

    bool
    covers(const Finding &f) const
    {
        if (fileWide.count(f.rule))
            return true;
        auto it = lines.find(f.rule);
        return it != lines.end() && it->second.count(f.line) > 0;
    }
};

/** Split a comma-separated rule list. */
std::vector<std::string>
splitRules(std::string_view list)
{
    std::vector<std::string> out;
    std::string cur;
    for (char c : list) {
        if (c == ',') {
            if (!cur.empty())
                out.push_back(cur);
            cur.clear();
        } else if (!std::isspace(static_cast<unsigned char>(c))) {
            cur.push_back(c);
        }
    }
    if (!cur.empty())
        out.push_back(cur);
    return out;
}

/**
 * Extract `aitax-lint: allow(...)` / `allow-file(...)` markers from a
 * comment token. A marker covers the comment's starting line and the
 * line after it.
 */
void
parseMarkers(const Token &comment, Suppressions &sup)
{
    static constexpr std::string_view kTag = "aitax-lint:";
    std::string_view text = comment.text;
    std::size_t at = text.find(kTag);
    while (at != std::string_view::npos) {
        std::string_view rest = text.substr(at + kTag.size());
        const std::size_t ws = rest.find_first_not_of(" \t");
        if (ws != std::string_view::npos) {
            rest.remove_prefix(ws);
            const bool fileWide = rest.substr(0, 10) == "allow-file";
            const bool lineWise = !fileWide && rest.substr(0, 5) == "allow";
            if (fileWide || lineWise) {
                const std::size_t open = rest.find('(');
                const std::size_t close = rest.find(')', open + 1);
                if (open != std::string_view::npos &&
                    close != std::string_view::npos) {
                    for (const std::string &r : splitRules(
                             rest.substr(open + 1, close - open - 1))) {
                        if (fileWide) {
                            sup.fileWide.insert(r);
                        } else {
                            sup.lines[r].insert(comment.line);
                            sup.lines[r].insert(comment.line + 1);
                        }
                    }
                }
            }
        }
        at = text.find(kTag, at + kTag.size());
    }
}

bool
hasSuffix(std::string_view s, std::string_view suffix)
{
    return s.size() >= suffix.size() &&
           s.substr(s.size() - suffix.size()) == suffix;
}

} // namespace

LintResult
lintSource(std::string_view virtualPath, std::string_view content,
           const std::vector<std::string> &ruleFilter)
{
    FileContext ctx;
    ctx.path = std::string(virtualPath);
    ctx.isHeader = hasSuffix(ctx.path, ".h");

    Suppressions sup;
    for (Token &t : tokenize(content)) {
        switch (t.kind) {
          case TokKind::Comment:
            parseMarkers(t, sup);
            break;
          case TokKind::Preproc:
            ctx.preproc.push_back(t);
            ctx.code.push_back(std::move(t));
            break;
          default:
            ctx.code.push_back(std::move(t));
            break;
        }
    }
    // Preproc tokens sit in `code` too so rules see one stream, but
    // identifier scans skip them by kind.

    std::vector<Finding> raw;
    for (const Rule &r : allRules()) {
        if (!ruleFilter.empty() &&
            std::find(ruleFilter.begin(), ruleFilter.end(),
                      std::string(r.id)) == ruleFilter.end())
            continue;
        r.check(ctx, raw);
    }

    LintResult res;
    res.filesScanned = 1;
    for (Finding &f : raw) {
        if (sup.covers(f))
            ++res.suppressed;
        else
            res.findings.push_back(std::move(f));
    }
    std::stable_sort(res.findings.begin(), res.findings.end());
    return res;
}

LintResult
lintFile(const std::string &diskPath, std::string_view virtualPath,
         const std::vector<std::string> &ruleFilter)
{
    std::ifstream in(diskPath, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    return lintSource(virtualPath, buf.str(), ruleFilter);
}

LintResult
lintTree(const std::string &root,
         const std::vector<std::string> &ruleFilter)
{
    namespace fs = std::filesystem;
    static const std::vector<std::string_view> kSubdirs = {
        "src", "tools", "bench"};

    std::vector<std::string> rel; // repo-relative, '/' separators
    for (std::string_view sub : kSubdirs) {
        const fs::path dir = fs::path(root) / sub;
        if (!fs::exists(dir))
            continue;
        for (const auto &entry : fs::recursive_directory_iterator(dir)) {
            if (!entry.is_regular_file())
                continue;
            const std::string p = entry.path().generic_string();
            if (hasSuffix(p, ".h") || hasSuffix(p, ".cc"))
                rel.push_back(
                    fs::relative(entry.path(), root).generic_string());
        }
    }
    // Directory iteration order is unspecified; the linter holds
    // itself to the same ordered-output rule it enforces.
    std::stable_sort(rel.begin(), rel.end());

    LintResult res;
    for (const std::string &r : rel) {
        LintResult one =
            lintFile((fs::path(root) / r).string(), r, ruleFilter);
        res.suppressed += one.suppressed;
        res.filesScanned += 1;
        for (Finding &f : one.findings)
            res.findings.push_back(std::move(f));
    }
    std::stable_sort(res.findings.begin(), res.findings.end());
    return res;
}

std::string
formatFinding(const Finding &f, bool withHint)
{
    std::ostringstream os;
    os << f.file << ':' << f.line << ": [" << f.rule << "] "
       << f.message;
    if (withHint && !f.hint.empty())
        os << "\n    hint: " << f.hint;
    return os.str();
}

} // namespace aitax::lint
