/**
 * @file
 * Cross-file (pass 2) rules over the RepoIndex.
 *
 * `layering` enforces the declared layer contract in
 * tools/lint_layers.txt: modules may include only strictly lower
 * layers (or themselves), `free` paths are dependency-free vocabulary
 * usable from anywhere, and include cycles are reported with the full
 * offending path. `taint-clock` / `taint-random` delegate to the
 * propagation engine in taint.h. The graph-level half of
 * `include-hygiene` flags headers that are not self-contained within
 * the index (low confidence; emitted under --strict only).
 *
 * Contract file format (tools/lint_layers.txt), one directive per
 * line, `#` comments:
 *
 *   layer <module> [<module>...]   # one line per layer, lowest first
 *   free <repo-relative-prefix>    # usable from any layer
 *
 * All output is deterministic: the index is path-sorted, cycle paths
 * are canonicalized before reporting, and findings get the global
 * (file, line, rule) sort in the linter.
 */

#ifndef AITAX_LINT_GRAPH_RULES_H
#define AITAX_LINT_GRAPH_RULES_H

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "lint/index.h"

namespace aitax::lint {

/** Parsed layer contract. */
struct LayerContract
{
    /** module -> 1-based layer (higher may include lower). */
    std::map<std::string, int, std::less<>> layerOf;
    /** repo-relative path prefixes usable from any layer. */
    std::vector<std::string> freePrefixes;
    bool loaded = false;

    static LayerContract load(const std::string &path);
    static LayerContract parse(std::string_view text);

    /** True if @p path matches a `free` prefix. */
    bool isFree(std::string_view path) const;
};

/** Options shared by all graph rules. */
struct GraphOptions
{
    /** Layer contract path; "" or missing file disables `layering`
     *  edge checks (cycle detection still runs). */
    std::string layersPath;
    bool strict = false;
};

/** A registered cross-file rule. */
struct GraphRule
{
    std::string_view id;
    std::string_view summary;
    std::string_view rationale;
    void (*check)(const RepoIndex &, const GraphOptions &,
                  std::vector<Finding> &);
};

/** All registered graph rules, sorted by id. */
const std::vector<GraphRule> &allGraphRules();

/** Look up a graph rule by id; nullptr if unknown. */
const GraphRule *findGraphRule(std::string_view id);

} // namespace aitax::lint

#endif // AITAX_LINT_GRAPH_RULES_H
