#include "lint/token.h"

#include <cctype>

namespace aitax::lint {

namespace {

bool
isIdentStart(char c)
{
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool
isIdentChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/** Cursor over the source buffer with line tracking. */
struct Cursor
{
    std::string_view src;
    std::size_t pos = 0;
    int line = 1;

    bool done() const { return pos >= src.size(); }
    char peek(std::size_t ahead = 0) const
    {
        return pos + ahead < src.size() ? src[pos + ahead] : '\0';
    }
    char
    advance()
    {
        const char c = src[pos++];
        if (c == '\n')
            ++line;
        return c;
    }
};

/** Consume a quoted literal body, honouring backslash escapes. */
void
skipQuoted(Cursor &c, char quote)
{
    while (!c.done()) {
        const char ch = c.advance();
        if (ch == '\\' && !c.done()) {
            c.advance();
            continue;
        }
        if (ch == quote)
            return;
    }
}

/** Consume a raw string body: `R"delim( ... )delim"`. The opening
 *  `R"` has already been consumed. */
void
skipRawString(Cursor &c)
{
    std::string delim;
    while (!c.done() && c.peek() != '(' && delim.size() < 16)
        delim.push_back(c.advance());
    if (!c.done())
        c.advance(); // '('
    const std::string close = ")" + delim + "\"";
    while (!c.done()) {
        if (c.src.compare(c.pos, close.size(), close) == 0) {
            for (std::size_t i = 0; i < close.size(); ++i)
                c.advance();
            return;
        }
        c.advance();
    }
}

bool
isRawStringPrefix(std::string_view ident)
{
    return ident == "R" || ident == "u8R" || ident == "uR" ||
           ident == "UR" || ident == "LR";
}

} // namespace

std::vector<Token>
tokenize(std::string_view src)
{
    std::vector<Token> out;
    Cursor c{src};
    bool atLineStart = true;

    while (!c.done()) {
        const char ch = c.peek();

        if (ch == '\n' || std::isspace(static_cast<unsigned char>(ch))) {
            if (ch == '\n')
                atLineStart = true;
            c.advance();
            continue;
        }

        const int startLine = c.line;
        const std::size_t start = c.pos;

        // Preprocessor directive: '#' first on its line; join
        // backslash continuations into one token.
        if (ch == '#' && atLineStart) {
            c.advance(); // '#'
            std::string text;
            while (!c.done()) {
                const char d = c.peek();
                if (d == '\\' && c.peek(1) == '\n') {
                    c.advance();
                    c.advance();
                    text.push_back(' ');
                    continue;
                }
                if (d == '\n')
                    break;
                text.push_back(c.advance());
            }
            out.push_back({TokKind::Preproc, std::move(text), startLine});
            continue;
        }
        atLineStart = false;

        // Comments.
        if (ch == '/' && c.peek(1) == '/') {
            c.advance();
            c.advance();
            const std::size_t body = c.pos;
            while (!c.done() && c.peek() != '\n')
                c.advance();
            out.push_back({TokKind::Comment,
                           std::string(src.substr(body, c.pos - body)),
                           startLine});
            continue;
        }
        if (ch == '/' && c.peek(1) == '*') {
            c.advance();
            c.advance();
            const std::size_t body = c.pos;
            std::size_t bodyEnd = src.size();
            while (!c.done()) {
                if (c.peek() == '*' && c.peek(1) == '/') {
                    bodyEnd = c.pos;
                    c.advance();
                    c.advance();
                    break;
                }
                c.advance();
            }
            out.push_back({TokKind::Comment,
                           std::string(src.substr(body, bodyEnd - body)),
                           startLine});
            continue;
        }

        // String / char literals (prefix-less).
        if (ch == '"') {
            c.advance();
            skipQuoted(c, '"');
            out.push_back({TokKind::String,
                           std::string(src.substr(start, c.pos - start)),
                           startLine});
            continue;
        }
        if (ch == '\'') {
            c.advance();
            skipQuoted(c, '\'');
            out.push_back({TokKind::CharLit,
                           std::string(src.substr(start, c.pos - start)),
                           startLine});
            continue;
        }

        // Numbers (handles digit separators and suffixes; a leading
        // '.' digit form like `.5` lexes as Punct + Number, which is
        // fine for our rules).
        if (std::isdigit(static_cast<unsigned char>(ch))) {
            while (!c.done()) {
                const char d = c.peek();
                if (std::isalnum(static_cast<unsigned char>(d)) ||
                    d == '.' || d == '\'') {
                    c.advance();
                    continue;
                }
                // Exponent signs: 1e+9, 0x1p-3.
                if ((d == '+' || d == '-') && c.pos > start) {
                    const char prev = src[c.pos - 1];
                    if (prev == 'e' || prev == 'E' || prev == 'p' ||
                        prev == 'P') {
                        c.advance();
                        continue;
                    }
                }
                break;
            }
            out.push_back({TokKind::Number,
                           std::string(src.substr(start, c.pos - start)),
                           startLine});
            continue;
        }

        // Identifiers; raw/encoded string prefixes fold into the
        // literal that follows them.
        if (isIdentStart(ch)) {
            while (!c.done() && isIdentChar(c.peek()))
                c.advance();
            std::string_view ident = src.substr(start, c.pos - start);
            if (c.peek() == '"') {
                c.advance(); // opening quote
                if (isRawStringPrefix(ident))
                    skipRawString(c);
                else
                    skipQuoted(c, '"'); // u8"...", L"..."
                out.push_back(
                    {TokKind::String,
                     std::string(src.substr(start, c.pos - start)),
                     startLine});
                continue;
            }
            out.push_back({TokKind::Identifier, std::string(ident),
                           startLine});
            continue;
        }

        // Punctuation; merge `::` so scope patterns are two tokens.
        c.advance();
        if (ch == ':' && c.peek() == ':') {
            c.advance();
            out.push_back({TokKind::Punct, "::", startLine});
            continue;
        }
        out.push_back({TokKind::Punct, std::string(1, ch), startLine});
    }

    return out;
}

int
lineCount(std::string_view src)
{
    int n = 1;
    for (char c : src)
        if (c == '\n')
            ++n;
    return n;
}

} // namespace aitax::lint
