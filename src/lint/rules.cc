#include "lint/rules.h"

#include <algorithm>
#include <cctype>
#include <set>
#include <string>

#include "lint/taint.h"

namespace aitax::lint {

bool
FileContext::startsWith(std::string_view prefix) const
{
    return path.size() >= prefix.size() &&
           std::string_view(path).substr(0, prefix.size()) == prefix;
}

bool
FileContext::startsWithAny(
    const std::vector<std::string_view> &prefixes) const
{
    for (std::string_view p : prefixes)
        if (startsWith(p))
            return true;
    return false;
}

namespace {

void
emit(std::vector<Finding> &out, const FileContext &f, int line,
     std::string_view rule, std::string message, std::string hint)
{
    // One finding per (line, rule): several matches on a line are one
    // violation to fix.
    for (const Finding &prev : out)
        if (prev.line == line && prev.rule == rule)
            return;
    out.push_back({f.path, line, std::string(rule), std::move(message),
                   std::move(hint)});
}

bool
isIdent(const Token &t, std::string_view name)
{
    return t.kind == TokKind::Identifier && t.text == name;
}

/** True if code[i] is identifier @p name qualified as `std::name`
 *  (or unqualified when @p requireStd is false). */
bool
matchesScoped(const std::vector<Token> &code, std::size_t i,
              std::string_view name, bool requireStd)
{
    if (!isIdent(code[i], name))
        return false;
    if (!requireStd)
        return true;
    return i >= 2 && code[i - 1].kind == TokKind::Punct &&
           code[i - 1].text == "::" && isIdent(code[i - 2], "std");
}

/** True if the token after code[i] is the punctuator @p p. */
bool
nextIs(const std::vector<Token> &code, std::size_t i, std::string_view p)
{
    return i + 1 < code.size() && code[i + 1].kind == TokKind::Punct &&
           code[i + 1].text == p;
}

// --- wall-clock --------------------------------------------------------

const std::vector<std::string_view> kWallClockAllowed = {
    "src/sweep/",
    "bench/",
};

void
checkWallClock(const FileContext &f, std::vector<Finding> &out)
{
    if (f.startsWithAny(kWallClockAllowed))
        return;
    // Name tables shared with the taint-clock seeds (taint.h).
    const auto &banned = wallClockBanned();
    const auto &callOnly = wallClockCallOnly();
    const auto &code = f.code;
    for (std::size_t i = 0; i < code.size(); ++i) {
        const Token &t = code[i];
        if (t.kind != TokKind::Identifier)
            continue;
        if (banned.count(t.text) ||
            (callOnly.count(t.text) && nextIs(code, i, "("))) {
            emit(out, f, t.line, "wall-clock",
                 "wall-clock read `" + t.text +
                     "` outside src/sweep//bench/",
                 "simulation code must use virtual time (sim::TimeNs / "
                 "Simulator::now()); wall time is run-to-run "
                 "nondeterministic");
        }
    }
}

// --- raw-random --------------------------------------------------------

void
checkRawRandom(const FileContext &f, std::vector<Finding> &out)
{
    if (f.startsWith("src/sim/random."))
        return;
    // Name tables shared with the taint-random seeds (taint.h).
    // `rand` is call-only so a field named rand does not count.
    const auto &banned = rawRandomBanned();
    const auto &callOnly = rawRandomCallOnly();
    for (std::size_t i = 0; i < f.code.size(); ++i) {
        const Token &t = f.code[i];
        if (t.kind != TokKind::Identifier)
            continue;
        if (!banned.count(t.text) &&
            !(callOnly.count(t.text) && nextIs(f.code, i, "(")))
            continue;
        emit(out, f, t.line, "raw-random",
             "unseeded/non-reproducible RNG `" + t.text +
                 "` outside src/sim/random",
             "draw from sim::RandomStream (seeded, bit-reproducible "
             "across stdlibs); std distributions are not "
             "implementation-stable");
    }
}

// --- unordered-container -----------------------------------------------

void
checkUnordered(const FileContext &f, std::vector<Finding> &out)
{
    if (!f.startsWith("src/"))
        return;
    static const std::set<std::string_view> banned = {
        "unordered_map", "unordered_set", "unordered_multimap",
        "unordered_multiset",
    };
    for (const Token &t : f.code) {
        if (t.kind != TokKind::Identifier || !banned.count(t.text))
            continue;
        emit(out, f, t.line, "unordered-container",
             "`std::" + t.text + "` in simulator/report code",
             "iteration order is hash/libc-dependent and can leak into "
             "traces, tax reports or serialized output; use std::map, "
             "a sorted vector, or suppress with a proven "
             "never-iterated rationale");
    }
}

// --- raw-new-delete ----------------------------------------------------

const std::vector<std::string_view> kHotPaths = {
    "src/sim/",
    "src/soc/",
};

void
checkNewDelete(const FileContext &f, std::vector<Finding> &out)
{
    if (!f.startsWithAny(kHotPaths))
        return;
    const auto &code = f.code;
    for (std::size_t i = 0; i < code.size(); ++i) {
        const Token &t = code[i];
        if (t.kind != TokKind::Identifier)
            continue;
        if (t.text != "new" && t.text != "delete")
            continue;
        // `= delete;` declarations are not deallocation (but `= new T`
        // is very much an allocation).
        if (t.text == "delete" && i > 0 &&
            code[i - 1].kind == TokKind::Punct && code[i - 1].text == "=")
            continue;
        emit(out, f, t.line, "raw-new-delete",
             "raw `" + t.text + "` on a simulator hot path",
             "per-event allocations dominate sim cost; use value "
             "members, arenas/free lists (see EventQueue slots) or "
             "sim::EventFn's inline buffer");
    }
}

// --- std-function ------------------------------------------------------

void
checkStdFunction(const FileContext &f, std::vector<Finding> &out)
{
    if (!f.startsWithAny(kHotPaths))
        return;
    for (std::size_t i = 0; i < f.code.size(); ++i) {
        if (!matchesScoped(f.code, i, "function", true))
            continue;
        emit(out, f, f.code[i].line, "std-function",
             "`std::function` on a simulator hot path",
             "std::function heap-allocates typical simulator captures; "
             "use sim::EventFn (src/sim/inline_function.h) for "
             "callbacks scheduled per event");
    }
}

// --- guarded-mutex -----------------------------------------------------

/** Non-preproc view of the code stream. */
std::vector<const Token *>
pureCode(const std::vector<Token> &code)
{
    std::vector<const Token *> v;
    v.reserve(code.size());
    for (const Token &t : code)
        if (t.kind != TokKind::Preproc)
            v.push_back(&t);
    return v;
}

bool
viewPunct(const std::vector<const Token *> &v, std::size_t i,
          std::string_view p)
{
    return i < v.size() && v[i]->kind == TokKind::Punct &&
           v[i]->text == p;
}

/** Index just past the token matching the opener at @p open. */
std::size_t
viewSkip(const std::vector<const Token *> &v, std::size_t open,
         std::string_view opener, std::string_view closer)
{
    int depth = 0;
    std::size_t i = open;
    for (; i < v.size(); ++i) {
        if (viewPunct(v, i, opener))
            ++depth;
        else if (viewPunct(v, i, closer) && --depth == 0)
            return i + 1;
    }
    return i;
}

/** One data member of a class under inspection. */
struct MemberInfo
{
    std::string name;
    int line = 0;
    bool isMutex = false;
    bool isAtomic = false;
    bool isConst = false;
    bool annotated = false;
};

/** Classify one `...;` statement at class-body depth. */
bool
classifyMember(const std::vector<const Token *> &stmt, MemberInfo &m)
{
    static const std::set<std::string_view> kSkipLead = {
        "using", "typedef", "friend",  "static", "enum",
        "class", "struct",  "template", "operator", "union",
    };
    static const std::set<std::string_view> kMutexNames = {
        "mutex", "Mutex", "shared_mutex", "recursive_mutex",
    };
    // Strip AITAX_* annotation macros (and their argument lists) so
    // their parentheses do not read as a function declarator.
    std::vector<const Token *> stripped;
    for (std::size_t i = 0; i < stmt.size(); ++i) {
        const Token &t = *stmt[i];
        if (t.kind == TokKind::Identifier &&
            t.text.rfind("AITAX_", 0) == 0) {
            if (t.text == "AITAX_GUARDED_BY" ||
                t.text == "AITAX_PT_GUARDED_BY")
                m.annotated = true;
            if (i + 1 < stmt.size() && viewPunct(stmt, i + 1, "(")) {
                int depth = 0;
                ++i;
                for (; i < stmt.size(); ++i) {
                    if (viewPunct(stmt, i, "("))
                        ++depth;
                    else if (viewPunct(stmt, i, ")") && --depth == 0)
                        break;
                }
            }
            continue;
        }
        stripped.push_back(stmt[i]);
    }
    if (stripped.empty())
        return false;
    if (stripped[0]->kind == TokKind::Identifier &&
        kSkipLead.count(stripped[0]->text))
        return false;
    std::string lastIdent;
    int lastLine = 0;
    int angleDepth = 0;
    for (std::size_t i = 0; i < stripped.size(); ++i) {
        const Token &t = *stripped[i];
        if (t.kind == TokKind::Punct &&
            (t.text == "=" || t.text == "{"))
            break; // default member initializer
        if (t.text == "(")
            return false; // function declaration / paren declarator
        if (t.kind == TokKind::Punct) {
            if (t.text == "<")
                ++angleDepth;
            else if (t.text == ">")
                --angleDepth;
            continue;
        }
        if (t.kind != TokKind::Identifier)
            continue;
        if (kMutexNames.count(t.text))
            m.isMutex = true;
        else if (t.text == "atomic")
            m.isAtomic = true;
        else if ((t.text == "const" || t.text == "constexpr") &&
                 angleDepth == 0)
            // `const` inside template arguments (shared_ptr<const T>)
            // does not make the member immutable.
            m.isConst = true;
        lastIdent = t.text;
        lastLine = t.line;
    }
    if (lastIdent.empty())
        return false;
    m.name = lastIdent;
    m.line = lastLine;
    return true;
}

void
checkGuardedMutex(const FileContext &f, std::vector<Finding> &out)
{
    if (!f.startsWith("src/sweep/"))
        return;
    const std::vector<const Token *> v = pureCode(f.code);
    std::size_t i = 0;
    while (i < v.size()) {
        const Token &t = *v[i];
        if (t.kind != TokKind::Identifier ||
            (t.text != "class" && t.text != "struct")) {
            ++i;
            continue;
        }
        std::size_t j = i + 1;
        // Attribute-style macros between the keyword and the name.
        while (j + 1 < v.size() && v[j]->kind == TokKind::Identifier &&
               viewPunct(v, j + 1, "("))
            j = viewSkip(v, j + 1, "(", ")");
        if (j >= v.size() || v[j]->kind != TokKind::Identifier) {
            i = j;
            continue;
        }
        const std::string className(v[j]->text);
        // Find the body `{` (or `;` for a forward declaration).
        std::size_t k = j + 1;
        while (k < v.size() && !viewPunct(v, k, "{") &&
               !viewPunct(v, k, ";"))
            ++k;
        if (k >= v.size() || viewPunct(v, k, ";")) {
            i = k + 1;
            continue;
        }
        const std::size_t bodyEnd = viewSkip(v, k, "{", "}");
        // Collect member statements at body depth; nested braces
        // (inline methods, nested types) are skipped wholesale.
        std::vector<MemberInfo> members;
        std::vector<const Token *> stmt;
        std::size_t p = k + 1;
        while (p + 1 < bodyEnd) {
            if (viewPunct(v, p, "{")) {
                p = viewSkip(v, p, "{", "}");
                stmt.clear();
                continue;
            }
            if (viewPunct(v, p, ";")) {
                MemberInfo m;
                if (classifyMember(stmt, m))
                    members.push_back(std::move(m));
                stmt.clear();
                ++p;
                continue;
            }
            if (viewPunct(v, p, ":") && stmt.size() == 1 &&
                stmt[0]->kind == TokKind::Identifier) {
                stmt.clear(); // access specifier
                ++p;
                continue;
            }
            stmt.push_back(v[p]);
            ++p;
        }
        bool hasMutex = false;
        for (const MemberInfo &m : members)
            hasMutex = hasMutex || m.isMutex;
        if (hasMutex) {
            for (const MemberInfo &m : members) {
                if (m.isMutex || m.isAtomic || m.isConst || m.annotated)
                    continue;
                emit(out, f, m.line, "guarded-mutex",
                     "member `" + m.name + "` of mutex-holding "
                     "class `" + className + "` has no guard "
                     "annotation",
                     "say which mutex guards it: `AITAX_GUARDED_BY(" +
                         std::string("<mutex>") + ")` from "
                         "core/thread_annotations.h (use core::Mutex "
                         "so clang -Wthread-safety checks it), or "
                         "make it std::atomic/const if lock-free");
            }
        }
        i = bodyEnd;
    }
}

// --- unstable-sort -----------------------------------------------------

void
checkUnstableSort(const FileContext &f, std::vector<Finding> &out)
{
    if (!f.startsWith("src/"))
        return;
    for (std::size_t i = 0; i < f.code.size(); ++i) {
        if (!matchesScoped(f.code, i, "sort", true))
            continue;
        emit(out, f, f.code[i].line, "unstable-sort",
             "`std::sort` on simulation-ordered data",
             "equal keys come back in unspecified order; use "
             "std::stable_sort, or suppress with a comparator proven "
             "to be a total order over the element (full tie-break "
             "chain)");
    }
}

// --- float-accum -------------------------------------------------------

const std::vector<std::string_view> kReportPaths = {
    "src/core/", "src/stats/", "src/trace/", "src/verify/",
    "src/graph/",
};

void
checkFloatAccum(const FileContext &f, std::vector<Finding> &out)
{
    if (!f.startsWithAny(kReportPaths))
        return;
    const auto &code = f.code;
    // Pass 1: identifiers declared with single-precision type.
    std::set<std::string> floats;
    for (std::size_t i = 0; i + 1 < code.size(); ++i) {
        if (isIdent(code[i], "float") &&
            code[i + 1].kind == TokKind::Identifier)
            floats.insert(code[i + 1].text);
    }
    for (std::size_t i = 0; i + 1 < code.size(); ++i) {
        const Token &t = code[i];
        // Pass 2a: `x += ...` where x was declared float.
        if (t.kind == TokKind::Identifier && floats.count(t.text) &&
            code[i + 1].kind == TokKind::Punct &&
            code[i + 1].text == "+" && i + 2 < code.size() &&
            code[i + 2].kind == TokKind::Punct &&
            code[i + 2].text == "=") {
            emit(out, f, t.line, "float-accum",
                 "single-precision accumulation into `" + t.text + "`",
                 "report fields must accumulate in double (or "
                 "stats::Distribution) with a fixed reduction order; "
                 "float sums reorder visibly across refactors");
        }
        // Pass 2b: nondeterministic-order reductions.
        if (matchesScoped(code, i, "reduce", true) ||
            matchesScoped(code, i, "transform_reduce", true) ||
            (isIdent(t, "execution") && i >= 2 &&
             code[i - 1].text == "::" && isIdent(code[i - 2], "std"))) {
            emit(out, f, t.line, "float-accum",
                 "unordered reduction (`std::reduce`/std::execution) "
                 "in report code",
                 "reduction order must be fixed for byte-identical "
                 "reports; use std::accumulate or an explicit loop");
        }
    }
}

// --- header-guard ------------------------------------------------------

std::string
canonicalGuard(std::string_view path)
{
    std::string_view p = path;
    if (p.substr(0, 4) == "src/")
        p.remove_prefix(4);
    std::string guard = "AITAX_";
    for (char c : p) {
        if (std::isalnum(static_cast<unsigned char>(c)))
            guard.push_back(static_cast<char>(
                std::toupper(static_cast<unsigned char>(c))));
        else
            guard.push_back('_');
    }
    // "..._H_H" would result from ".h"; trim the extension part.
    if (guard.size() >= 2 && guard.substr(guard.size() - 2) == "_H")
        return guard;
    return guard + "_H";
}

/** First whitespace-delimited word of a directive body. */
std::string
directiveWord(std::string_view text, std::string_view *rest = nullptr)
{
    std::size_t b = text.find_first_not_of(" \t");
    if (b == std::string_view::npos)
        return "";
    std::size_t e = b;
    while (e < text.size() &&
           !std::isspace(static_cast<unsigned char>(text[e])))
        ++e;
    if (rest != nullptr)
        *rest = text.substr(e);
    return std::string(text.substr(b, e - b));
}

void
checkHeaderGuard(const FileContext &f, std::vector<Finding> &out)
{
    if (!f.isHeader)
        return;
    const auto &pp = f.preproc;
    for (const Token &t : pp)
        if (directiveWord(t.text) == "pragma" &&
            t.text.find("once") != std::string::npos)
            return;
    if (pp.size() < 2) {
        emit(out, f, 1, "header-guard",
             "header has no include guard",
             "add `#ifndef " + canonicalGuard(f.path) + "` / `#define` "
             "or `#pragma once`");
        return;
    }
    std::string_view rest0;
    std::string_view rest1;
    const std::string w0 = directiveWord(pp[0].text, &rest0);
    const std::string w1 = directiveWord(pp[1].text, &rest1);
    if (w0 != "ifndef" || w1 != "define") {
        emit(out, f, pp[0].line, "header-guard",
             "header does not open with an include guard",
             "the first two directives must be `#ifndef` + `#define` "
             "of the guard macro (or use `#pragma once`)");
        return;
    }
    const std::string m0 = directiveWord(rest0);
    const std::string m1 = directiveWord(rest1);
    const std::string want = canonicalGuard(f.path);
    if (m0 != m1) {
        emit(out, f, pp[1].line, "header-guard",
             "include-guard `#ifndef " + m0 + "` does not match "
             "`#define " + m1 + "`",
             "both must name " + want);
    } else if (m0 != want) {
        emit(out, f, pp[0].line, "header-guard",
             "include-guard macro `" + m0 + "` is not canonical",
             "expected `" + want + "` (AITAX_ + path, uppercased)");
    }
}

// --- include-hygiene ---------------------------------------------------

/** First-level project module dirs: includes of these must be quoted. */
const std::set<std::string_view> kModules = {
    "app",    "capture", "core",  "drivers", "faults", "graph",
    "imaging", "lint",  "models",  "postproc", "runtime", "sim",
    "soc",    "stats",  "sweep",   "tensor", "trace",   "verify",
    "bench",
};

const std::set<std::string_view> kDeprecatedCHeaders = {
    "assert.h", "ctype.h",  "errno.h",  "float.h",  "limits.h",
    "locale.h", "math.h",   "setjmp.h", "signal.h", "stdarg.h",
    "stddef.h", "stdint.h", "stdio.h",  "stdlib.h", "string.h",
    "time.h",
};

void
checkIncludeHygiene(const FileContext &f, std::vector<Finding> &out)
{
    std::set<std::string> seen;
    for (const Token &t : f.preproc) {
        std::string_view rest;
        if (directiveWord(t.text, &rest) != "include")
            continue;
        const std::size_t b = rest.find_first_not_of(" \t");
        if (b == std::string_view::npos)
            continue;
        const char open = rest[b];
        if (open != '<' && open != '"')
            continue; // computed include; out of scope
        const char close = open == '<' ? '>' : '"';
        const std::size_t e = rest.find(close, b + 1);
        if (e == std::string_view::npos)
            continue;
        const std::string target(rest.substr(b + 1, e - b - 1));

        if (!seen.insert(target).second) {
            emit(out, f, t.line, "include-hygiene",
                 "duplicate include of `" + target + "`",
                 "remove the repeated #include");
            continue;
        }
        if (open == '<' && kDeprecatedCHeaders.count(target)) {
            emit(out, f, t.line, "include-hygiene",
                 "deprecated C header `<" + target + "`>",
                 "use the <c...> C++ header instead");
            continue;
        }
        const std::size_t slash = target.find('/');
        if (open == '<' && slash != std::string::npos &&
            kModules.count(target.substr(0, slash))) {
            emit(out, f, t.line, "include-hygiene",
                 "project header `" + target +
                     "` included with angle brackets",
                 "use `#include \"" + target + "\"` for in-repo "
                 "headers");
        }
    }
}

const std::vector<Rule> kRules = {
    {"float-accum",
     "no float accumulation / unordered reductions in report fields",
     "single-precision or reduction-order-dependent sums change "
     "byte-for-byte when code is reordered, breaking golden traces",
     checkFloatAccum},
    {"guarded-mutex",
     "mutex-holding classes in src/sweep/ annotate guarded state",
     "the sweep tier is the only place threads touch shared state; "
     "AITAX_GUARDED_BY makes the lock protocol explicit and lets "
     "clang -Wthread-safety verify every access",
     checkGuardedMutex},
    {"header-guard",
     "headers carry a canonical AITAX_* include guard or #pragma once",
     "duplicate/mismatched guards cause ODR surprises and silently "
     "skipped declarations",
     checkHeaderGuard},
    {"include-hygiene",
     "no duplicate includes, no deprecated C headers, quoted project "
     "includes",
     "keeps the include graph predictable so tooling (and this "
     "linter) can reason about what each TU sees",
     checkIncludeHygiene},
    {"raw-new-delete",
     "no raw new/delete in src/sim// src/soc/ hot paths",
     "per-event heap traffic is the probe-effect tax the paper warns "
     "about; arenas and inline buffers keep the hot path "
     "allocation-free",
     checkNewDelete},
    {"raw-random",
     "no rand()/std::random_device/std distributions outside "
     "src/sim/random",
     "unseeded or implementation-defined RNG breaks replay from a "
     "root seed (the paper hit libc++ vs libstdc++ divergence)",
     checkRawRandom},
    {"std-function",
     "no std::function in src/sim// src/soc/ hot paths",
     "std::function heap-allocates typical captures; sim::EventFn "
     "keeps per-event callbacks in situ",
     checkStdFunction},
    {"unordered-container",
     "no std::unordered_* in src/ without a never-iterated rationale",
     "hash-map iteration order is libc- and size-dependent; iterating "
     "one into a trace/report/serializer makes output "
     "implementation-defined",
     checkUnordered},
    {"unstable-sort",
     "std::sort needs a total order or stable_sort",
     "equal-key order from std::sort is unspecified; ties leak "
     "nondeterminism into rendered reports",
     checkUnstableSort},
    {"wall-clock",
     "no wall-clock reads outside src/sweep/ and bench/",
     "wall time varies run to run; simulated latencies must come from "
     "virtual time so traces replay bit-identically",
     checkWallClock},
};

} // namespace

const std::vector<Rule> &
allRules()
{
    return kRules;
}

const Rule *
findRule(std::string_view id)
{
    for (const Rule &r : kRules)
        if (r.id == id)
            return &r;
    return nullptr;
}

} // namespace aitax::lint
