#include "lint/rules.h"

#include <algorithm>
#include <cctype>
#include <set>
#include <string>

namespace aitax::lint {

bool
FileContext::startsWith(std::string_view prefix) const
{
    return path.size() >= prefix.size() &&
           std::string_view(path).substr(0, prefix.size()) == prefix;
}

bool
FileContext::startsWithAny(
    const std::vector<std::string_view> &prefixes) const
{
    for (std::string_view p : prefixes)
        if (startsWith(p))
            return true;
    return false;
}

namespace {

void
emit(std::vector<Finding> &out, const FileContext &f, int line,
     std::string_view rule, std::string message, std::string hint)
{
    // One finding per (line, rule): several matches on a line are one
    // violation to fix.
    for (const Finding &prev : out)
        if (prev.line == line && prev.rule == rule)
            return;
    out.push_back({f.path, line, std::string(rule), std::move(message),
                   std::move(hint)});
}

bool
isIdent(const Token &t, std::string_view name)
{
    return t.kind == TokKind::Identifier && t.text == name;
}

/** True if code[i] is identifier @p name qualified as `std::name`
 *  (or unqualified when @p requireStd is false). */
bool
matchesScoped(const std::vector<Token> &code, std::size_t i,
              std::string_view name, bool requireStd)
{
    if (!isIdent(code[i], name))
        return false;
    if (!requireStd)
        return true;
    return i >= 2 && code[i - 1].kind == TokKind::Punct &&
           code[i - 1].text == "::" && isIdent(code[i - 2], "std");
}

/** True if the token after code[i] is the punctuator @p p. */
bool
nextIs(const std::vector<Token> &code, std::size_t i, std::string_view p)
{
    return i + 1 < code.size() && code[i + 1].kind == TokKind::Punct &&
           code[i + 1].text == p;
}

// --- wall-clock --------------------------------------------------------

const std::vector<std::string_view> kWallClockAllowed = {
    "src/sweep/",
    "bench/",
};

void
checkWallClock(const FileContext &f, std::vector<Finding> &out)
{
    if (f.startsWithAny(kWallClockAllowed))
        return;
    static const std::set<std::string_view> banned = {
        "system_clock",   "steady_clock", "high_resolution_clock",
        "gettimeofday",   "clock_gettime", "timespec_get",
        "ftime",          "localtime",     "gmtime",
    };
    const auto &code = f.code;
    for (std::size_t i = 0; i < code.size(); ++i) {
        const Token &t = code[i];
        if (t.kind != TokKind::Identifier)
            continue;
        const bool call_only = t.text == "time" || t.text == "clock";
        if (banned.count(t.text) || (call_only && nextIs(code, i, "("))) {
            emit(out, f, t.line, "wall-clock",
                 "wall-clock read `" + t.text +
                     "` outside src/sweep//bench/",
                 "simulation code must use virtual time (sim::TimeNs / "
                 "Simulator::now()); wall time is run-to-run "
                 "nondeterministic");
        }
    }
}

// --- raw-random --------------------------------------------------------

void
checkRawRandom(const FileContext &f, std::vector<Finding> &out)
{
    if (f.startsWith("src/sim/random."))
        return;
    static const std::set<std::string_view> banned = {
        "rand",          "srand",      "rand_r",
        "drand48",       "random_device",
        "mt19937",       "mt19937_64", "default_random_engine",
        "minstd_rand",   "minstd_rand0",
        "uniform_int_distribution",  "uniform_real_distribution",
        "normal_distribution",       "bernoulli_distribution",
        "poisson_distribution",      "exponential_distribution",
    };
    for (std::size_t i = 0; i < f.code.size(); ++i) {
        const Token &t = f.code[i];
        if (t.kind != TokKind::Identifier || !banned.count(t.text))
            continue;
        // `rand` must be a call to count (avoid e.g. a field named rand).
        if (t.text == "rand" && !nextIs(f.code, i, "("))
            continue;
        emit(out, f, t.line, "raw-random",
             "unseeded/non-reproducible RNG `" + t.text +
                 "` outside src/sim/random",
             "draw from sim::RandomStream (seeded, bit-reproducible "
             "across stdlibs); std distributions are not "
             "implementation-stable");
    }
}

// --- unordered-container -----------------------------------------------

void
checkUnordered(const FileContext &f, std::vector<Finding> &out)
{
    if (!f.startsWith("src/"))
        return;
    static const std::set<std::string_view> banned = {
        "unordered_map", "unordered_set", "unordered_multimap",
        "unordered_multiset",
    };
    for (const Token &t : f.code) {
        if (t.kind != TokKind::Identifier || !banned.count(t.text))
            continue;
        emit(out, f, t.line, "unordered-container",
             "`std::" + t.text + "` in simulator/report code",
             "iteration order is hash/libc-dependent and can leak into "
             "traces, tax reports or serialized output; use std::map, "
             "a sorted vector, or suppress with a proven "
             "never-iterated rationale");
    }
}

// --- raw-new-delete ----------------------------------------------------

const std::vector<std::string_view> kHotPaths = {
    "src/sim/",
    "src/soc/",
};

void
checkNewDelete(const FileContext &f, std::vector<Finding> &out)
{
    if (!f.startsWithAny(kHotPaths))
        return;
    const auto &code = f.code;
    for (std::size_t i = 0; i < code.size(); ++i) {
        const Token &t = code[i];
        if (t.kind != TokKind::Identifier)
            continue;
        if (t.text != "new" && t.text != "delete")
            continue;
        // `= delete;` declarations are not deallocation (but `= new T`
        // is very much an allocation).
        if (t.text == "delete" && i > 0 &&
            code[i - 1].kind == TokKind::Punct && code[i - 1].text == "=")
            continue;
        emit(out, f, t.line, "raw-new-delete",
             "raw `" + t.text + "` on a simulator hot path",
             "per-event allocations dominate sim cost; use value "
             "members, arenas/free lists (see EventQueue slots) or "
             "sim::EventFn's inline buffer");
    }
}

// --- std-function ------------------------------------------------------

void
checkStdFunction(const FileContext &f, std::vector<Finding> &out)
{
    if (!f.startsWithAny(kHotPaths))
        return;
    for (std::size_t i = 0; i < f.code.size(); ++i) {
        if (!matchesScoped(f.code, i, "function", true))
            continue;
        emit(out, f, f.code[i].line, "std-function",
             "`std::function` on a simulator hot path",
             "std::function heap-allocates typical simulator captures; "
             "use sim::EventFn (src/sim/inline_function.h) for "
             "callbacks scheduled per event");
    }
}

// --- unstable-sort -----------------------------------------------------

void
checkUnstableSort(const FileContext &f, std::vector<Finding> &out)
{
    if (!f.startsWith("src/"))
        return;
    for (std::size_t i = 0; i < f.code.size(); ++i) {
        if (!matchesScoped(f.code, i, "sort", true))
            continue;
        emit(out, f, f.code[i].line, "unstable-sort",
             "`std::sort` on simulation-ordered data",
             "equal keys come back in unspecified order; use "
             "std::stable_sort, or suppress with a comparator proven "
             "to be a total order over the element (full tie-break "
             "chain)");
    }
}

// --- float-accum -------------------------------------------------------

const std::vector<std::string_view> kReportPaths = {
    "src/core/", "src/stats/", "src/trace/", "src/verify/",
    "src/graph/",
};

void
checkFloatAccum(const FileContext &f, std::vector<Finding> &out)
{
    if (!f.startsWithAny(kReportPaths))
        return;
    const auto &code = f.code;
    // Pass 1: identifiers declared with single-precision type.
    std::set<std::string> floats;
    for (std::size_t i = 0; i + 1 < code.size(); ++i) {
        if (isIdent(code[i], "float") &&
            code[i + 1].kind == TokKind::Identifier)
            floats.insert(code[i + 1].text);
    }
    for (std::size_t i = 0; i + 1 < code.size(); ++i) {
        const Token &t = code[i];
        // Pass 2a: `x += ...` where x was declared float.
        if (t.kind == TokKind::Identifier && floats.count(t.text) &&
            code[i + 1].kind == TokKind::Punct &&
            code[i + 1].text == "+" && i + 2 < code.size() &&
            code[i + 2].kind == TokKind::Punct &&
            code[i + 2].text == "=") {
            emit(out, f, t.line, "float-accum",
                 "single-precision accumulation into `" + t.text + "`",
                 "report fields must accumulate in double (or "
                 "stats::Distribution) with a fixed reduction order; "
                 "float sums reorder visibly across refactors");
        }
        // Pass 2b: nondeterministic-order reductions.
        if (matchesScoped(code, i, "reduce", true) ||
            matchesScoped(code, i, "transform_reduce", true) ||
            (isIdent(t, "execution") && i >= 2 &&
             code[i - 1].text == "::" && isIdent(code[i - 2], "std"))) {
            emit(out, f, t.line, "float-accum",
                 "unordered reduction (`std::reduce`/std::execution) "
                 "in report code",
                 "reduction order must be fixed for byte-identical "
                 "reports; use std::accumulate or an explicit loop");
        }
    }
}

// --- header-guard ------------------------------------------------------

std::string
canonicalGuard(std::string_view path)
{
    std::string_view p = path;
    if (p.substr(0, 4) == "src/")
        p.remove_prefix(4);
    std::string guard = "AITAX_";
    for (char c : p) {
        if (std::isalnum(static_cast<unsigned char>(c)))
            guard.push_back(static_cast<char>(
                std::toupper(static_cast<unsigned char>(c))));
        else
            guard.push_back('_');
    }
    // "..._H_H" would result from ".h"; trim the extension part.
    if (guard.size() >= 2 && guard.substr(guard.size() - 2) == "_H")
        return guard;
    return guard + "_H";
}

/** First whitespace-delimited word of a directive body. */
std::string
directiveWord(std::string_view text, std::string_view *rest = nullptr)
{
    std::size_t b = text.find_first_not_of(" \t");
    if (b == std::string_view::npos)
        return "";
    std::size_t e = b;
    while (e < text.size() &&
           !std::isspace(static_cast<unsigned char>(text[e])))
        ++e;
    if (rest != nullptr)
        *rest = text.substr(e);
    return std::string(text.substr(b, e - b));
}

void
checkHeaderGuard(const FileContext &f, std::vector<Finding> &out)
{
    if (!f.isHeader)
        return;
    const auto &pp = f.preproc;
    for (const Token &t : pp)
        if (directiveWord(t.text) == "pragma" &&
            t.text.find("once") != std::string::npos)
            return;
    if (pp.size() < 2) {
        emit(out, f, 1, "header-guard",
             "header has no include guard",
             "add `#ifndef " + canonicalGuard(f.path) + "` / `#define` "
             "or `#pragma once`");
        return;
    }
    std::string_view rest0;
    std::string_view rest1;
    const std::string w0 = directiveWord(pp[0].text, &rest0);
    const std::string w1 = directiveWord(pp[1].text, &rest1);
    if (w0 != "ifndef" || w1 != "define") {
        emit(out, f, pp[0].line, "header-guard",
             "header does not open with an include guard",
             "the first two directives must be `#ifndef` + `#define` "
             "of the guard macro (or use `#pragma once`)");
        return;
    }
    const std::string m0 = directiveWord(rest0);
    const std::string m1 = directiveWord(rest1);
    const std::string want = canonicalGuard(f.path);
    if (m0 != m1) {
        emit(out, f, pp[1].line, "header-guard",
             "include-guard `#ifndef " + m0 + "` does not match "
             "`#define " + m1 + "`",
             "both must name " + want);
    } else if (m0 != want) {
        emit(out, f, pp[0].line, "header-guard",
             "include-guard macro `" + m0 + "` is not canonical",
             "expected `" + want + "` (AITAX_ + path, uppercased)");
    }
}

// --- include-hygiene ---------------------------------------------------

/** First-level project module dirs: includes of these must be quoted. */
const std::set<std::string_view> kModules = {
    "app",    "capture", "core",  "drivers", "faults", "graph",
    "imaging", "lint",  "models",  "postproc", "runtime", "sim",
    "soc",    "stats",  "sweep",   "tensor", "trace",   "verify",
    "bench",
};

const std::set<std::string_view> kDeprecatedCHeaders = {
    "assert.h", "ctype.h",  "errno.h",  "float.h",  "limits.h",
    "locale.h", "math.h",   "setjmp.h", "signal.h", "stdarg.h",
    "stddef.h", "stdint.h", "stdio.h",  "stdlib.h", "string.h",
    "time.h",
};

void
checkIncludeHygiene(const FileContext &f, std::vector<Finding> &out)
{
    std::set<std::string> seen;
    for (const Token &t : f.preproc) {
        std::string_view rest;
        if (directiveWord(t.text, &rest) != "include")
            continue;
        const std::size_t b = rest.find_first_not_of(" \t");
        if (b == std::string_view::npos)
            continue;
        const char open = rest[b];
        if (open != '<' && open != '"')
            continue; // computed include; out of scope
        const char close = open == '<' ? '>' : '"';
        const std::size_t e = rest.find(close, b + 1);
        if (e == std::string_view::npos)
            continue;
        const std::string target(rest.substr(b + 1, e - b - 1));

        if (!seen.insert(target).second) {
            emit(out, f, t.line, "include-hygiene",
                 "duplicate include of `" + target + "`",
                 "remove the repeated #include");
            continue;
        }
        if (open == '<' && kDeprecatedCHeaders.count(target)) {
            emit(out, f, t.line, "include-hygiene",
                 "deprecated C header `<" + target + "`>",
                 "use the <c...> C++ header instead");
            continue;
        }
        const std::size_t slash = target.find('/');
        if (open == '<' && slash != std::string::npos &&
            kModules.count(target.substr(0, slash))) {
            emit(out, f, t.line, "include-hygiene",
                 "project header `" + target +
                     "` included with angle brackets",
                 "use `#include \"" + target + "\"` for in-repo "
                 "headers");
        }
    }
}

const std::vector<Rule> kRules = {
    {"float-accum",
     "no float accumulation / unordered reductions in report fields",
     "single-precision or reduction-order-dependent sums change "
     "byte-for-byte when code is reordered, breaking golden traces",
     checkFloatAccum},
    {"header-guard",
     "headers carry a canonical AITAX_* include guard or #pragma once",
     "duplicate/mismatched guards cause ODR surprises and silently "
     "skipped declarations",
     checkHeaderGuard},
    {"include-hygiene",
     "no duplicate includes, no deprecated C headers, quoted project "
     "includes",
     "keeps the include graph predictable so tooling (and this "
     "linter) can reason about what each TU sees",
     checkIncludeHygiene},
    {"raw-new-delete",
     "no raw new/delete in src/sim// src/soc/ hot paths",
     "per-event heap traffic is the probe-effect tax the paper warns "
     "about; arenas and inline buffers keep the hot path "
     "allocation-free",
     checkNewDelete},
    {"raw-random",
     "no rand()/std::random_device/std distributions outside "
     "src/sim/random",
     "unseeded or implementation-defined RNG breaks replay from a "
     "root seed (the paper hit libc++ vs libstdc++ divergence)",
     checkRawRandom},
    {"std-function",
     "no std::function in src/sim// src/soc/ hot paths",
     "std::function heap-allocates typical captures; sim::EventFn "
     "keeps per-event callbacks in situ",
     checkStdFunction},
    {"unordered-container",
     "no std::unordered_* in src/ without a never-iterated rationale",
     "hash-map iteration order is libc- and size-dependent; iterating "
     "one into a trace/report/serializer makes output "
     "implementation-defined",
     checkUnordered},
    {"unstable-sort",
     "std::sort needs a total order or stable_sort",
     "equal-key order from std::sort is unspecified; ties leak "
     "nondeterminism into rendered reports",
     checkUnstableSort},
    {"wall-clock",
     "no wall-clock reads outside src/sweep/ and bench/",
     "wall time varies run to run; simulated latencies must come from "
     "virtual time so traces replay bit-identically",
     checkWallClock},
};

} // namespace

const std::vector<Rule> &
allRules()
{
    return kRules;
}

const Rule *
findRule(std::string_view id)
{
    for (const Rule &r : kRules)
        if (r.id == id)
            return &r;
    return nullptr;
}

} // namespace aitax::lint
