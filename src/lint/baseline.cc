#include "lint/baseline.h"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace aitax::lint {

Baseline
Baseline::parse(const std::string &text)
{
    Baseline b;
    std::istringstream in(text);
    std::string line;
    while (std::getline(in, line)) {
        const std::size_t hash = line.find('#');
        if (hash != std::string::npos)
            line.erase(hash);
        while (!line.empty() &&
               (line.back() == ' ' || line.back() == '\t' ||
                line.back() == '\r'))
            line.pop_back();
        if (line.empty())
            continue;
        // file:line:rule — split on the *last* two colons so paths
        // with colons would still parse.
        const std::size_t c2 = line.rfind(':');
        if (c2 == std::string::npos || c2 == 0)
            continue;
        const std::size_t c1 = line.rfind(':', c2 - 1);
        if (c1 == std::string::npos)
            continue;
        BaselineEntry e;
        e.file = line.substr(0, c1);
        e.line = std::atoi(line.substr(c1 + 1, c2 - c1 - 1).c_str());
        e.rule = line.substr(c2 + 1);
        if (!e.file.empty() && e.line > 0 && !e.rule.empty())
            b.entries_.push_back(std::move(e));
    }
    std::stable_sort(b.entries_.begin(), b.entries_.end());
    b.entries_.erase(
        std::unique(b.entries_.begin(), b.entries_.end()),
        b.entries_.end());
    return b;
}

Baseline
Baseline::load(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return Baseline{};
    std::ostringstream buf;
    buf << in.rdbuf();
    return parse(buf.str());
}

std::string
Baseline::render() const
{
    std::ostringstream os;
    os << "# aitax-lint baseline: pre-existing findings tolerated by "
          "--strict.\n"
       << "# One `file:line:rule` per line. Regenerate with "
          "`aitax_lint --fix-baseline`;\n"
       << "# entries whose violation no longer exists make --strict "
          "fail as stale,\n"
       << "# so this file only ever shrinks.\n";
    for (const BaselineEntry &e : entries_)
        os << e.file << ':' << e.line << ':' << e.rule << '\n';
    return os.str();
}

Baseline
Baseline::fromFindings(const std::vector<Finding> &findings)
{
    Baseline b;
    b.entries_.reserve(findings.size());
    for (const Finding &f : findings)
        b.entries_.push_back({f.file, f.line, f.rule});
    std::stable_sort(b.entries_.begin(), b.entries_.end());
    b.entries_.erase(
        std::unique(b.entries_.begin(), b.entries_.end()),
        b.entries_.end());
    return b;
}

bool
Baseline::contains(const Finding &f) const
{
    const BaselineEntry probe{f.file, f.line, f.rule};
    return std::binary_search(entries_.begin(), entries_.end(), probe);
}

std::vector<BaselineEntry>
Baseline::apply(const std::vector<Finding> &findings,
                std::vector<Finding> &fresh) const
{
    std::vector<bool> hit(entries_.size(), false);
    for (const Finding &f : findings) {
        const BaselineEntry probe{f.file, f.line, f.rule};
        const auto it = std::lower_bound(entries_.begin(),
                                         entries_.end(), probe);
        if (it != entries_.end() && *it == probe)
            hit[static_cast<std::size_t>(it - entries_.begin())] = true;
        else
            fresh.push_back(f);
    }
    std::vector<BaselineEntry> stale;
    for (std::size_t i = 0; i < entries_.size(); ++i)
        if (!hit[i])
            stale.push_back(entries_[i]);
    return stale;
}

} // namespace aitax::lint
