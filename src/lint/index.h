/**
 * @file
 * RepoIndex: the shared pass-1 product of whole-repo analysis.
 *
 * Pass 1 tokenizes every file exactly once and records, per file:
 * the token stream (FileContext), the parsed suppression markers, the
 * resolved in-repo include edges, a token-approximated set of
 * function/method definitions with the calls inside each body, and
 * the names the file declares at namespace scope. Pass 2 (graph
 * rules, taint propagation — see graph_rules.h / taint.h) runs over
 * this index instead of re-reading the tree.
 *
 * Everything is deterministic by construction: files are sorted by
 * path before indexing, every lookup table is an ordered std::map,
 * and derived artifacts (the DOT dump, include closures) are emitted
 * in sorted order — the index obeys the same contract it exists to
 * enforce.
 *
 * Approximations (documented in docs/LINTING.md): function
 * definitions are recognized by the token shape `name (params) {`
 * (qualified names joined over `::`), calls by `name (` inside a
 * body, and call resolution is by unqualified name — deliberately an
 * over-approximation, tuned by taint barriers and suppressions.
 */

#ifndef AITAX_LINT_INDEX_H
#define AITAX_LINT_INDEX_H

#include <map>
#include <set>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "lint/rules.h"

namespace aitax::lint {

/** Parsed `aitax-lint: allow(...)` / `allow-file(...)` markers. */
struct SuppressionSet
{
    /** rule -> set of lines it is allowed on. */
    std::map<std::string, std::set<int>> lines;
    /** rules allowed for the whole file. */
    std::set<std::string> fileWide;

    bool covers(const Finding &f) const;
};

/** One `#include` directive, resolved against the index. */
struct IncludeEdge
{
    std::string target; ///< text between the delimiters
    int line = 0;
    bool angled = false;
    int resolved = -1; ///< index of the in-repo file, -1 if external
};

/** One `name(` occurrence inside a function body. */
struct CallSite
{
    std::string name; ///< unqualified callee name
    int line = 0;
};

/** One token-approximated function/method definition. */
struct FunctionDef
{
    std::string name;      ///< last identifier of the declarator
    std::string qualified; ///< `Class::name` when spelled that way
    int line = 0;
    std::vector<CallSite> calls; ///< in body order
    /**
     * Taint rules this function is a declared barrier for
     * (`// aitax-lint: taint-barrier(rule)` on the line immediately
     * above or on the definition line itself). Sorted.
     */
    std::vector<std::string> barriers;
    /**
     * Determinism-relevant primitives the body touches directly,
     * keyed by taint rule id ("taint-clock", "taint-random") ->
     * (identifier, line) of the first occurrence.
     */
    std::map<std::string, std::pair<std::string, int>> seeds;

    bool isBarrierFor(std::string_view rule) const;
};

/** Everything pass 1 learned about one file. */
struct FileRecord
{
    std::string path; ///< repo-relative, '/' separators
    FileContext ctx;
    SuppressionSet sup;
    std::vector<IncludeEdge> includes;
    std::vector<FunctionDef> functions;
    /** Names declared at namespace scope (classes, enums, usings,
     *  typedefs, functions, macros). Sorted, unique. */
    std::vector<std::string> declares;
};

class RepoIndex
{
  public:
    /**
     * Index the repo tree rooted at @p root: every .h/.cc under
     * src/, tools/ and bench/, sorted by repo-relative path.
     */
    static RepoIndex build(const std::string &root);

    /**
     * Index in-memory sources: (repo-relative path, content) pairs.
     * Input order is irrelevant; files are sorted by path first.
     */
    static RepoIndex fromSources(
        const std::vector<std::pair<std::string, std::string>> &sources);

    const std::vector<FileRecord> &files() const { return files_; }

    /** @return index into files(), or -1 if @p path is not indexed. */
    int fileIndexOf(std::string_view path) const;

    /**
     * Module key of a repo-relative path: first segment under src/
     * ("sim" for src/sim/...), else the first segment itself
     * ("tools", "bench").
     */
    static std::string moduleOf(std::string_view path);

    /** A function's location in the index. */
    struct FuncRef
    {
        int file = -1;
        int fn = -1;

        friend bool
        operator<(const FuncRef &a, const FuncRef &b)
        {
            if (a.file != b.file)
                return a.file < b.file;
            return a.fn < b.fn;
        }
    };

    /** All definitions sharing unqualified @p name (sorted), or
     *  nullptr when the name defines nothing in the repo. */
    const std::vector<FuncRef> *lookupFunctions(
        std::string_view name) const;

    const FunctionDef &
    function(const FuncRef &ref) const
    {
        return files_[static_cast<std::size_t>(ref.file)]
            .functions[static_cast<std::size_t>(ref.fn)];
    }

    /**
     * Include closure of file @p fileIdx: sorted indices of every
     * in-repo file transitively reachable over resolved includes,
     * including @p fileIdx itself. Memoized.
     */
    const std::vector<int> &includeClosure(int fileIdx) const;

    /** True if any file in @p fileIdx's include closure declares
     *  @p name at namespace scope. */
    bool closureDeclares(int fileIdx, std::string_view name) const;

    /** Files (sorted indices) that declare @p name. Empty if none. */
    std::vector<int> declarersOf(std::string_view name) const;

    /**
     * Deterministic DOT rendering of the in-repo include graph:
     * module clusters and files sorted by name, edges in (file,
     * include-line) order. Byte-identical across runs and machines.
     */
    std::string dotGraph() const;

  private:
    void finalize(); ///< sort, resolve includes, build lookup tables

    std::vector<FileRecord> files_;
    std::map<std::string, int, std::less<>> pathIndex_;
    std::map<std::string, std::vector<FuncRef>, std::less<>>
        functionsByName_;
    mutable std::vector<std::vector<int>> closures_;
    mutable std::vector<bool> closureReady_;
};

/**
 * Build a FileRecord from one source buffer: tokenize, parse
 * suppression markers, and extract includes / function definitions /
 * declared names. Include edges are left unresolved (resolved = -1);
 * RepoIndex::finalize links them.
 */
FileRecord indexSource(std::string_view virtualPath,
                       std::string_view content);

} // namespace aitax::lint

#endif // AITAX_LINT_INDEX_H
