/**
 * @file
 * Committed-baseline support for incremental lint adoption.
 *
 * A baseline records pre-existing findings as `file:line:rule` lines
 * so a new rule can land without a flag day: old debt is suppressed
 * but inventoried, while any new finding fails `--strict`. Entries
 * whose violation disappears (fixed code, moved line) become *stale*
 * and also fail `--strict`, which forces the baseline to shrink
 * monotonically instead of rotting.
 */

#ifndef AITAX_LINT_BASELINE_H
#define AITAX_LINT_BASELINE_H

#include <string>
#include <vector>

#include "lint/rules.h"

namespace aitax::lint {

/** One baseline entry. */
struct BaselineEntry
{
    std::string file;
    int line = 0;
    std::string rule;

    friend bool
    operator<(const BaselineEntry &a, const BaselineEntry &b)
    {
        if (a.file != b.file)
            return a.file < b.file;
        if (a.line != b.line)
            return a.line < b.line;
        return a.rule < b.rule;
    }
    friend bool
    operator==(const BaselineEntry &a, const BaselineEntry &b)
    {
        return a.file == b.file && a.line == b.line && a.rule == b.rule;
    }
};

class Baseline
{
  public:
    /** Parse `file:line:rule` lines; '#' comments and blanks skipped. */
    static Baseline parse(const std::string &text);

    /** Load from disk; missing file yields an empty baseline. */
    static Baseline load(const std::string &path);

    /** Serialize sorted entries with a self-describing header. */
    std::string render() const;

    /** Build a baseline covering exactly @p findings. */
    static Baseline fromFindings(const std::vector<Finding> &findings);

    bool contains(const Finding &f) const;

    /**
     * Split @p findings against the baseline.
     * @param fresh receives findings not covered by the baseline.
     * @return stale entries: baseline lines matching no finding.
     */
    std::vector<BaselineEntry>
    apply(const std::vector<Finding> &findings,
          std::vector<Finding> &fresh) const;

    std::size_t size() const { return entries_.size(); }
    const std::vector<BaselineEntry> &entries() const { return entries_; }

  private:
    std::vector<BaselineEntry> entries_; ///< kept sorted + unique
};

} // namespace aitax::lint

#endif // AITAX_LINT_BASELINE_H
