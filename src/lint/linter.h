/**
 * @file
 * aitax-lint driver: pass 1 builds the RepoIndex (every file
 * tokenized exactly once), pass 2 runs the file-local rule registry
 * per file plus the cross-file graph rules over the index, then
 * applies inline suppressions.
 *
 * Suppressions:
 *   `// aitax-lint: allow(rule-a, rule-b)` — suppresses those rules
 *   on the comment's own line and on the following line (so the
 *   annotation can trail the offending code or sit just above it).
 *   `// aitax-lint: allow-file(rule-a)` — suppresses a rule for the
 *   whole file. Always pair either form with a written rationale.
 *   Both forms apply to cross-file findings (layering, taint-*) at
 *   the line the finding is reported on.
 *   `// aitax-lint: taint-barrier(rule)` — stops taint propagation
 *   through the function defined on the next line (see taint.h).
 *
 * Everything here is deterministic by construction: directory walks
 * are sorted, findings are sorted by (file, line, rule), and the tool
 * itself is linted by the same rules it enforces.
 */

#ifndef AITAX_LINT_LINTER_H
#define AITAX_LINT_LINTER_H

#include <string>
#include <string_view>
#include <vector>

#include "lint/baseline.h"
#include "lint/index.h"
#include "lint/rules.h"

namespace aitax::lint {

/** Result of linting one file or tree. */
struct LintResult
{
    std::vector<Finding> findings;   ///< sorted, unsuppressed
    std::size_t suppressed = 0;      ///< count removed by allow()
    std::size_t filesScanned = 0;
};

/** Knobs shared by lintRepo / lintTree. */
struct LintOptions
{
    /** If non-empty, only these rule ids run (file-local + graph). */
    std::vector<std::string> ruleFilter;
    /** Emit low-confidence findings (and, in the CLI, fail on stale
     *  baseline entries). */
    bool strict = false;
    /** Layer contract path. Empty means <root>/tools/lint_layers.txt
     *  when linting a tree; a missing file disables layer-edge
     *  checks (cycle detection still runs). */
    std::string layersPath;
};

/**
 * Lint one in-memory source buffer as if it lived at @p virtualPath
 * (repo-relative, '/' separators). File-local rules only — cross-file
 * rules need an index; see lintRepo. Path scoping of the rules keys
 * off @p virtualPath, which lets tests lint fixtures under any path.
 *
 * @param ruleFilter if non-empty, only these rule ids run.
 */
LintResult lintSource(std::string_view virtualPath,
                      std::string_view content,
                      const std::vector<std::string> &ruleFilter = {});

/**
 * Lint an on-disk file. @p diskPath is read; findings are reported
 * against @p virtualPath. File-local rules only.
 */
LintResult lintFile(const std::string &diskPath,
                    std::string_view virtualPath,
                    const std::vector<std::string> &ruleFilter = {});

/**
 * Run both passes over a prebuilt index: file-local rules per file,
 * graph rules across files, suppressions applied to everything.
 */
LintResult lintRepo(const RepoIndex &idx, const LintOptions &opts = {});

/**
 * Lint the repo tree rooted at @p root: every .h/.cc file under
 * src/, tools/ and bench/, in sorted path order (pass 1), then the
 * cross-file rules (pass 2).
 */
LintResult lintTree(const std::string &root,
                    const LintOptions &opts = {});

/** Render a finding as `file:line: [rule] message` + hint line. */
std::string formatFinding(const Finding &f, bool withHint = true);

/**
 * Machine-readable report (stable field order, deterministic bytes).
 * @p fresh are post-baseline findings; @p baselined the count the
 * baseline absorbed; @p stale baseline entries with no live finding.
 */
std::string renderJson(const std::vector<Finding> &fresh,
                       std::size_t filesScanned, std::size_t baselined,
                       std::size_t suppressed,
                       const std::vector<BaselineEntry> &stale);

} // namespace aitax::lint

#endif // AITAX_LINT_LINTER_H
