/**
 * @file
 * aitax-lint driver: tokenizes source, runs the rule registry, and
 * applies inline suppressions.
 *
 * Suppressions:
 *   `// aitax-lint: allow(rule-a, rule-b)` — suppresses those rules
 *   on the comment's own line and on the following line (so the
 *   annotation can trail the offending code or sit just above it).
 *   `// aitax-lint: allow-file(rule-a)` — suppresses a rule for the
 *   whole file. Always pair either form with a written rationale.
 *
 * Everything here is deterministic by construction: directory walks
 * are sorted, findings are sorted by (file, line, rule), and the tool
 * itself is linted by the same rules it enforces.
 */

#ifndef AITAX_LINT_LINTER_H
#define AITAX_LINT_LINTER_H

#include <string>
#include <string_view>
#include <vector>

#include "lint/rules.h"

namespace aitax::lint {

/** Result of linting one file or tree. */
struct LintResult
{
    std::vector<Finding> findings;   ///< sorted, unsuppressed
    std::size_t suppressed = 0;      ///< count removed by allow()
    std::size_t filesScanned = 0;
};

/**
 * Lint one in-memory source buffer as if it lived at @p virtualPath
 * (repo-relative, '/' separators). Path scoping of the rules keys off
 * @p virtualPath, which lets tests lint fixtures under any path.
 *
 * @param ruleFilter if non-empty, only these rule ids run.
 */
LintResult lintSource(std::string_view virtualPath,
                      std::string_view content,
                      const std::vector<std::string> &ruleFilter = {});

/**
 * Lint an on-disk file. @p diskPath is read; findings are reported
 * against @p virtualPath.
 */
LintResult lintFile(const std::string &diskPath,
                    std::string_view virtualPath,
                    const std::vector<std::string> &ruleFilter = {});

/**
 * Lint the repo tree rooted at @p root: every .h/.cc file under
 * src/, tools/ and bench/, in sorted path order.
 */
LintResult lintTree(const std::string &root,
                    const std::vector<std::string> &ruleFilter = {});

/** Render a finding as `file:line: [rule] message` + hint line. */
std::string formatFinding(const Finding &f, bool withHint = true);

} // namespace aitax::lint

#endif // AITAX_LINT_LINTER_H
