#include "lint/graph_rules.h"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <set>
#include <sstream>

#include "lint/taint.h"

namespace aitax::lint {

namespace {

bool
startsWith(std::string_view s, std::string_view prefix)
{
    return s.size() >= prefix.size() &&
           s.substr(0, prefix.size()) == prefix;
}

std::vector<std::string>
splitWords(std::string_view line)
{
    std::vector<std::string> words;
    std::string cur;
    for (char c : line) {
        if (std::isspace(static_cast<unsigned char>(c))) {
            if (!cur.empty())
                words.push_back(cur);
            cur.clear();
        } else {
            cur.push_back(c);
        }
    }
    if (!cur.empty())
        words.push_back(cur);
    return words;
}

// --- layering ----------------------------------------------------------

/** Include line in @p rec whose resolved edge points at @p target. */
int
edgeLine(const FileRecord &rec, int target)
{
    for (const IncludeEdge &e : rec.includes)
        if (e.resolved == target)
            return e.line;
    return 1;
}

/** DFS cycle finder over resolved include edges. Cycle paths are
 *  canonicalized (rotated to the smallest file index) and deduped, so
 *  the report is independent of traversal entry points. */
struct CycleFinder
{
    const RepoIndex &idx;
    std::vector<Finding> &out;
    std::vector<int> color; ///< 0 unvisited, 1 on stack, 2 done
    std::vector<int> path;
    std::set<std::string> reported;

    CycleFinder(const RepoIndex &i, std::vector<Finding> &o)
        : idx(i), out(o), color(i.files().size(), 0)
    {
    }

    void
    report(int backTo)
    {
        const auto &files = idx.files();
        const auto pos = std::find(path.begin(), path.end(), backTo);
        std::vector<int> cycle(pos, path.end());
        const auto minIt = std::min_element(cycle.begin(), cycle.end());
        std::rotate(cycle.begin(), minIt, cycle.end());
        std::ostringstream key;
        for (int c : cycle)
            key << c << ',';
        if (!reported.insert(key.str()).second)
            return;
        std::ostringstream msg;
        msg << "include cycle: ";
        for (int c : cycle)
            msg << files[static_cast<std::size_t>(c)].path << " -> ";
        msg << files[static_cast<std::size_t>(cycle.front())].path;
        const FileRecord &first =
            files[static_cast<std::size_t>(cycle.front())];
        Finding fd;
        fd.file = first.path;
        fd.line = edgeLine(first, cycle.size() > 1
                                      ? cycle[1]
                                      : cycle.front());
        fd.rule = "layering";
        fd.message = msg.str();
        fd.hint = "break the cycle: move the shared declarations into "
                  "a lower-layer header or forward-declare instead of "
                  "including";
        out.push_back(std::move(fd));
    }

    void
    visit(int node)
    {
        color[static_cast<std::size_t>(node)] = 1;
        path.push_back(node);
        for (const IncludeEdge &e :
             idx.files()[static_cast<std::size_t>(node)].includes) {
            if (e.resolved < 0)
                continue;
            const int c = color[static_cast<std::size_t>(e.resolved)];
            if (c == 1)
                report(e.resolved);
            else if (c == 0)
                visit(e.resolved);
        }
        path.pop_back();
        color[static_cast<std::size_t>(node)] = 2;
    }
};

void
reportCycles(const RepoIndex &idx, std::vector<Finding> &out)
{
    CycleFinder finder(idx, out);
    for (std::size_t f = 0; f < idx.files().size(); ++f)
        if (finder.color[f] == 0)
            finder.visit(static_cast<int>(f));
}

void
checkLayering(const RepoIndex &idx, const GraphOptions &opts,
              std::vector<Finding> &out)
{
    const LayerContract contract =
        opts.layersPath.empty() ? LayerContract{}
                                : LayerContract::load(opts.layersPath);
    const auto &files = idx.files();

    if (contract.loaded) {
        std::set<std::string> unlistedReported;
        for (const FileRecord &rec : files) {
            const std::string modA = RepoIndex::moduleOf(rec.path);
            const bool freeSource = contract.isFree(rec.path);
            for (const IncludeEdge &e : rec.includes) {
                if (e.resolved < 0)
                    continue;
                const FileRecord &tgt =
                    files[static_cast<std::size_t>(e.resolved)];
                if (freeSource) {
                    if (!contract.isFree(tgt.path)) {
                        Finding fd;
                        fd.file = rec.path;
                        fd.line = e.line;
                        fd.rule = "layering";
                        fd.message =
                            "`free` header includes in-repo header `" +
                            tgt.path + "`";
                        fd.hint =
                            "free headers are dependency-free "
                            "vocabulary usable from any layer; they "
                            "may not pull in repo code";
                        out.push_back(std::move(fd));
                    }
                    continue;
                }
                if (contract.isFree(tgt.path))
                    continue;
                const std::string modB = RepoIndex::moduleOf(tgt.path);
                if (modA == modB)
                    continue;
                const auto la = contract.layerOf.find(modA);
                const auto lb = contract.layerOf.find(modB);
                if (la == contract.layerOf.end() ||
                    lb == contract.layerOf.end()) {
                    const std::string missing =
                        la == contract.layerOf.end() ? modA : modB;
                    if (unlistedReported.insert(missing).second) {
                        Finding fd;
                        fd.file = rec.path;
                        fd.line = e.line;
                        fd.rule = "layering";
                        fd.message = "module `" + missing +
                                     "` has no layer assignment";
                        fd.hint = "add it to a `layer` line in the "
                                  "contract file (tools/"
                                  "lint_layers.txt)";
                        out.push_back(std::move(fd));
                    }
                    continue;
                }
                if (la->second <= lb->second) {
                    Finding fd;
                    fd.file = rec.path;
                    fd.line = e.line;
                    fd.rule = "layering";
                    fd.message =
                        "illegal layer edge `" + modA + " -> " + modB +
                        "`: " + rec.path + " (layer " +
                        std::to_string(la->second) + ") includes " +
                        tgt.path + " (layer " +
                        std::to_string(lb->second) + ")";
                    fd.hint =
                        "modules may include strictly lower layers "
                        "only; move the shared piece down a layer or "
                        "invert the dependency";
                    out.push_back(std::move(fd));
                }
            }
        }
    }
    reportCycles(idx, out);
}

// --- taint -------------------------------------------------------------

void
checkTaintClock(const RepoIndex &idx, const GraphOptions &,
                std::vector<Finding> &out)
{
    propagateTaint(idx, *findTaintSpec("taint-clock"), out);
}

void
checkTaintRandom(const RepoIndex &idx, const GraphOptions &,
                 std::vector<Finding> &out)
{
    propagateTaint(idx, *findTaintSpec("taint-random"), out);
}

// --- include-hygiene (self-contained headers) --------------------------

/** Module directories that double as namespace names. */
const std::set<std::string_view> kModuleNamespaces = {
    "app",    "capture", "core",   "drivers",  "faults",  "graph",
    "imaging", "lint",   "models", "postproc", "runtime", "sim",
    "soc",    "stats",   "sweep",  "tensor",   "trace",   "verify",
};

void
checkSelfContained(const RepoIndex &idx, const GraphOptions &,
                   std::vector<Finding> &out)
{
    const auto &files = idx.files();
    for (std::size_t f = 0; f < files.size(); ++f) {
        const FileRecord &rec = files[f];
        if (!rec.ctx.isHeader)
            continue;
        std::set<std::string> flagged;
        const auto &code = rec.ctx.code;
        for (std::size_t i = 0; i + 2 < code.size(); ++i) {
            const Token &ns = code[i];
            if (ns.kind != TokKind::Identifier ||
                kModuleNamespaces.count(ns.text) == 0)
                continue;
            if (code[i + 1].kind != TokKind::Punct ||
                code[i + 1].text != "::")
                continue;
            // Chain start only: `sim::...`, not `aitax::sim::...`
            // resolved mid-chain twice.
            if (i >= 1 && code[i - 1].kind == TokKind::Punct &&
                code[i - 1].text == "::")
                continue;
            // Walk to the last identifier of the qualified chain.
            std::size_t j = i + 2;
            while (j + 1 < code.size() &&
                   code[j].kind == TokKind::Identifier &&
                   code[j + 1].kind == TokKind::Punct &&
                   code[j + 1].text == "::")
                j += 2;
            if (j >= code.size() ||
                code[j].kind != TokKind::Identifier)
                continue;
            const std::string &name = code[j].text;
            if (flagged.count(name))
                continue;
            // Only names the repo actually declares somewhere: an
            // unknown name is more likely a tokenizer blind spot
            // than a missing include.
            if (idx.declarersOf(name).empty())
                continue;
            if (idx.closureDeclares(static_cast<int>(f), name))
                continue;
            flagged.insert(name);
            Finding fd;
            fd.file = rec.path;
            fd.line = code[j].line;
            fd.rule = "include-hygiene";
            fd.message = "header references `" + ns.text +
                         "::" + name + "` but nothing in its include "
                         "closure declares `" + name + "`";
            fd.hint = "headers must be self-contained: add the "
                      "#include that declares it (token-level check, "
                      "low confidence; suppress with "
                      "allow(include-hygiene) if spurious)";
            fd.lowConfidence = true;
            out.push_back(std::move(fd));
        }
    }
}

const std::vector<GraphRule> kGraphRules = {
    {"include-hygiene",
     "headers are self-contained within the repo include graph",
     "a header that compiles only because every includer happens to "
     "pull its dependencies first breaks under include reordering — "
     "the exact freedom the layering contract relies on",
     checkSelfContained},
    {"layering",
     "include edges obey tools/lint_layers.txt; no include cycles",
     "the determinism argument is per-layer (sim below soc below "
     "runtime...); an upward or cyclic include dissolves the "
     "boundary the audits reason about",
     checkLayering},
    {"taint-clock",
     "no transitive wall-clock reach from simulation code",
     "a helper that reads wall time two modules away is as "
     "nondeterministic as a direct read; only the call graph sees "
     "the leak",
     checkTaintClock},
    {"taint-random",
     "no transitive raw-RNG reach outside src/sim/random",
     "replay from a root seed breaks the moment any transitive "
     "callee draws from an unseeded generator",
     checkTaintRandom},
};

} // namespace

LayerContract
LayerContract::parse(std::string_view text)
{
    LayerContract c;
    c.loaded = true;
    int level = 0;
    std::size_t pos = 0;
    while (pos <= text.size()) {
        const std::size_t nl = text.find('\n', pos);
        std::string_view line =
            text.substr(pos, nl == std::string_view::npos ? text.size() - pos
                                                          : nl - pos);
        pos = nl == std::string_view::npos ? text.size() + 1 : nl + 1;
        const std::size_t hash = line.find('#');
        if (hash != std::string_view::npos)
            line = line.substr(0, hash);
        const std::vector<std::string> words = splitWords(line);
        if (words.empty())
            continue;
        if (words[0] == "layer") {
            ++level;
            for (std::size_t i = 1; i < words.size(); ++i)
                c.layerOf.emplace(words[i], level);
        } else if (words[0] == "free") {
            for (std::size_t i = 1; i < words.size(); ++i)
                c.freePrefixes.push_back(words[i]);
        }
    }
    return c;
}

LayerContract
LayerContract::load(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return {};
    std::ostringstream buf;
    buf << in.rdbuf();
    return parse(buf.str());
}

bool
LayerContract::isFree(std::string_view path) const
{
    if (startsWith(path, "src/"))
        path.remove_prefix(4);
    for (const std::string &p : freePrefixes)
        if (startsWith(path, p))
            return true;
    return false;
}

const std::vector<GraphRule> &
allGraphRules()
{
    return kGraphRules;
}

const GraphRule *
findGraphRule(std::string_view id)
{
    for (const GraphRule &r : kGraphRules)
        if (r.id == id)
            return &r;
    return nullptr;
}

} // namespace aitax::lint
