#include "lint/taint.h"

#include <algorithm>
#include <map>
#include <sstream>

#include "lint/index.h"

namespace aitax::lint {

namespace {

bool
startsWith(std::string_view s, std::string_view prefix)
{
    return s.size() >= prefix.size() &&
           s.substr(0, prefix.size()) == prefix;
}

bool
clockRestricted(std::string_view path)
{
    return !startsWith(path, "src/sweep/") && !startsWith(path, "bench/");
}

bool
noImplicitBarrier(std::string_view)
{
    return false;
}

bool
randomRestricted(std::string_view path)
{
    return !startsWith(path, "src/sim/random.");
}

bool
randomImplicitBarrier(std::string_view path)
{
    return startsWith(path, "src/sim/random.");
}

/**
 * bench/ and tools/ translation units are leaves: nothing links src/
 * against them, so their functions may only taint callers in the same
 * top-level directory.
 */
bool
compatibleLink(std::string_view callerPath, std::string_view calleePath)
{
    for (std::string_view leaf : {"bench/", "tools/"})
        if (startsWith(calleePath, leaf))
            return startsWith(callerPath, leaf);
    return true;
}

const std::vector<TaintSpec> &
specs()
{
    static const std::vector<TaintSpec> kSpecs = {
        {"taint-clock", "wall-clock read", &wallClockBanned(),
         &wallClockCallOnly(), clockRestricted, noImplicitBarrier,
         "no transitive wall-clock reach from simulation code",
         "a helper that reads wall time two modules away is as "
         "nondeterministic as a direct read; the call graph is the "
         "only place the leak is visible",
         "route timing through virtual time (sim::TimeNs / "
         "Simulator::now()), or mark a reviewed observability-only "
         "function with `// aitax-lint: taint-barrier(taint-clock)`"},
        {"taint-random", "raw RNG use", &rawRandomBanned(),
         &rawRandomCallOnly(), randomRestricted, randomImplicitBarrier,
         "no transitive raw-RNG reach outside src/sim/random",
         "replay from a root seed breaks the moment any transitive "
         "callee draws from an unseeded or implementation-defined "
         "generator",
         "draw through sim::RandomStream, or mark a reviewed function "
         "with `// aitax-lint: taint-barrier(taint-random)`"},
    };
    return kSpecs;
}

} // namespace

const std::set<std::string_view> &
wallClockBanned()
{
    static const std::set<std::string_view> kSet = {
        "system_clock",   "steady_clock", "high_resolution_clock",
        "gettimeofday",   "clock_gettime", "timespec_get",
        "ftime",          "localtime",     "gmtime",
    };
    return kSet;
}

const std::set<std::string_view> &
wallClockCallOnly()
{
    static const std::set<std::string_view> kSet = {"time", "clock"};
    return kSet;
}

const std::set<std::string_view> &
rawRandomBanned()
{
    static const std::set<std::string_view> kSet = {
        "srand",         "rand_r",
        "drand48",       "random_device",
        "mt19937",       "mt19937_64", "default_random_engine",
        "minstd_rand",   "minstd_rand0",
        "uniform_int_distribution",  "uniform_real_distribution",
        "normal_distribution",       "bernoulli_distribution",
        "poisson_distribution",      "exponential_distribution",
    };
    return kSet;
}

const std::set<std::string_view> &
rawRandomCallOnly()
{
    static const std::set<std::string_view> kSet = {"rand"};
    return kSet;
}

const std::vector<TaintSpec> &
taintSpecs()
{
    return specs();
}

const TaintSpec *
findTaintSpec(std::string_view id)
{
    for (const TaintSpec &s : specs())
        if (s.rule == id)
            return &s;
    return nullptr;
}

void
propagateTaint(const RepoIndex &idx, const TaintSpec &spec,
               std::vector<Finding> &out)
{
    using FuncRef = RepoIndex::FuncRef;
    const std::string ruleId(spec.rule);
    const auto &files = idx.files();

    const auto pathOf = [&](const FuncRef &r) -> const std::string & {
        return files[static_cast<std::size_t>(r.file)].path;
    };
    const auto isBarrier = [&](const FuncRef &r) {
        return spec.implicitBarrier(pathOf(r)) ||
               idx.function(r).isBarrierFor(spec.rule);
    };

    // Reverse call edges: callee name -> every function containing a
    // call of that name. Built in (sorted file, body) order.
    std::map<std::string, std::vector<FuncRef>, std::less<>> callersOf;
    for (std::size_t f = 0; f < files.size(); ++f) {
        for (std::size_t g = 0; g < files[f].functions.size(); ++g) {
            const FuncRef ref{static_cast<int>(f), static_cast<int>(g)};
            std::set<std::string> seen;
            for (const CallSite &c : files[f].functions[g].calls)
                if (seen.insert(c.name).second)
                    callersOf[c.name].push_back(ref);
        }
    }

    // Fixed point: start from seeded roots, flow callee -> caller.
    // nextHop records the callee through which taint arrived
    // ({-1, -1} for roots) so findings can print the chain. The
    // sorted worklist makes discovery order — and therefore the
    // chains — deterministic.
    std::map<FuncRef, FuncRef> nextHop;
    std::set<FuncRef> work;
    for (std::size_t f = 0; f < files.size(); ++f) {
        for (std::size_t g = 0; g < files[f].functions.size(); ++g) {
            const FuncRef ref{static_cast<int>(f), static_cast<int>(g)};
            if (files[f].functions[g].seeds.count(ruleId) == 0)
                continue;
            if (isBarrier(ref))
                continue;
            nextHop.emplace(ref, FuncRef{-1, -1});
            work.insert(ref);
        }
    }
    while (!work.empty()) {
        const FuncRef cur = *work.begin();
        work.erase(work.begin());
        const auto it = callersOf.find(idx.function(cur).name);
        if (it == callersOf.end())
            continue;
        for (const FuncRef &caller : it->second) {
            if (nextHop.count(caller))
                continue;
            if (!compatibleLink(pathOf(caller), pathOf(cur)))
                continue;
            if (isBarrier(caller))
                continue;
            nextHop.emplace(caller, cur);
            work.insert(caller);
        }
    }

    const auto chainString = [&](FuncRef start) {
        std::ostringstream os;
        FuncRef cur = start;
        for (int hop = 0; hop < 8; ++hop) {
            const FunctionDef &fn = idx.function(cur);
            os << '`' << fn.name << "` [" << pathOf(cur) << ':'
               << fn.line << ']';
            const FuncRef next = nextHop.at(cur);
            if (next.file < 0) {
                const auto seed = fn.seeds.find(ruleId);
                if (seed != fn.seeds.end())
                    os << " -> " << spec.sourceLabel << " `"
                       << seed->second.first << "` [" << pathOf(cur)
                       << ':' << seed->second.second << ']';
                return os.str();
            }
            os << " -> ";
            cur = next;
        }
        os << "...";
        return os.str();
    };

    // Findings: cross-file call sites of tainted functions inside
    // restricted, non-barrier callers.
    for (std::size_t f = 0; f < files.size(); ++f) {
        const FileRecord &rec = files[f];
        if (!spec.restricted(rec.path))
            continue;
        std::set<int> linesDone;
        for (std::size_t g = 0; g < rec.functions.size(); ++g) {
            const FunctionDef &fn = rec.functions[g];
            if (spec.implicitBarrier(rec.path) ||
                fn.isBarrierFor(spec.rule))
                continue;
            for (const CallSite &c : fn.calls) {
                if (linesDone.count(c.line))
                    continue;
                const auto *targets = idx.lookupFunctions(c.name);
                if (targets == nullptr)
                    continue;
                for (const FuncRef &t : *targets) {
                    if (t.file == static_cast<int>(f))
                        continue; // same-file chains are local news
                    if (!compatibleLink(rec.path, pathOf(t)))
                        continue;
                    if (!nextHop.count(t))
                        continue;
                    Finding fd;
                    fd.file = rec.path;
                    fd.line = c.line;
                    fd.rule = ruleId;
                    fd.message = "call to `" + c.name + "` reaches " +
                                 std::string(spec.sourceLabel) +
                                 ": " + chainString(t);
                    fd.hint = std::string(spec.hint);
                    out.push_back(std::move(fd));
                    linesDone.insert(c.line);
                    break;
                }
            }
        }
    }
}

} // namespace aitax::lint
