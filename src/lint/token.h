/**
 * @file
 * Minimal C++ tokenizer for aitax-lint.
 *
 * This is not a compiler front end: it only needs to classify source
 * text well enough to tell identifiers apart from comments, string
 * literals and preprocessor directives, so that determinism rules can
 * match identifier patterns without false positives from prose. It
 * understands line/block comments, (raw) string and char literals,
 * digit separators, `::` as a single punctuator, and backslash-
 * continued preprocessor lines.
 */

#ifndef AITAX_LINT_TOKEN_H
#define AITAX_LINT_TOKEN_H

#include <string>
#include <string_view>
#include <vector>

namespace aitax::lint {

enum class TokKind
{
    Identifier, ///< identifiers and keywords
    Number,     ///< numeric literal (incl. digit separators, suffixes)
    String,     ///< string literal, including raw strings
    CharLit,    ///< character literal
    Punct,      ///< punctuation; `::` is one token
    Comment,    ///< `// ...` or `/* ... */`, text without delimiters
    Preproc,    ///< whole directive, text after `#`, continuations joined
};

/** One lexed token. @p text views into the source buffer except for
 *  Preproc tokens with continuations, which own joined storage. */
struct Token
{
    TokKind kind;
    std::string text;
    int line; ///< 1-based line where the token starts
};

/**
 * Tokenize @p src. Never fails: unterminated literals/comments are
 * closed at end of input so the linter degrades gracefully on
 * malformed files instead of aborting a CI run.
 */
std::vector<Token> tokenize(std::string_view src);

/** Number of lines in @p src (1 + count of '\n'). */
int lineCount(std::string_view src);

} // namespace aitax::lint

#endif // AITAX_LINT_TOKEN_H
