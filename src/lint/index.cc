#include "lint/index.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "lint/taint.h"

namespace aitax::lint {

namespace {

bool
hasSuffix(std::string_view s, std::string_view suffix)
{
    return s.size() >= suffix.size() &&
           s.substr(s.size() - suffix.size()) == suffix;
}

/** Split a comma-separated rule list. */
std::vector<std::string>
splitRules(std::string_view list)
{
    std::vector<std::string> out;
    std::string cur;
    for (char c : list) {
        if (c == ',') {
            if (!cur.empty())
                out.push_back(cur);
            cur.clear();
        } else if (!std::isspace(static_cast<unsigned char>(c))) {
            cur.push_back(c);
        }
    }
    if (!cur.empty())
        out.push_back(cur);
    return out;
}

/**
 * Extract `aitax-lint:` markers from a comment token.
 * allow()/allow-file() feed the SuppressionSet; taint-barrier()
 * entries are collected per line for attachment to function
 * definitions (the marker's own line plus the two following lines,
 * tolerating the repo's return-type-on-its-own-line style).
 */
void
parseMarkers(const Token &comment, SuppressionSet &sup,
             std::map<int, std::vector<std::string>> &barriers)
{
    static constexpr std::string_view kTag = "aitax-lint:";
    std::string_view text = comment.text;
    std::size_t at = text.find(kTag);
    while (at != std::string_view::npos) {
        std::string_view rest = text.substr(at + kTag.size());
        const std::size_t ws = rest.find_first_not_of(" \t");
        if (ws != std::string_view::npos) {
            rest.remove_prefix(ws);
            const bool fileWide = rest.substr(0, 10) == "allow-file";
            const bool barrier = rest.substr(0, 13) == "taint-barrier";
            const bool lineWise =
                !fileWide && !barrier && rest.substr(0, 5) == "allow";
            if (fileWide || lineWise || barrier) {
                const std::size_t open = rest.find('(');
                const std::size_t close = rest.find(')', open + 1);
                if (open != std::string_view::npos &&
                    close != std::string_view::npos) {
                    for (const std::string &r : splitRules(
                             rest.substr(open + 1, close - open - 1))) {
                        if (fileWide) {
                            sup.fileWide.insert(r);
                        } else if (barrier) {
                            barriers[comment.line].push_back(r);
                        } else {
                            sup.lines[r].insert(comment.line);
                            sup.lines[r].insert(comment.line + 1);
                        }
                    }
                }
            }
        }
        at = text.find(kTag, at + kTag.size());
    }
}

/** First whitespace-delimited word of a directive body. */
std::string
directiveWord(std::string_view text, std::string_view *rest = nullptr)
{
    std::size_t b = text.find_first_not_of(" \t");
    if (b == std::string_view::npos)
        return "";
    std::size_t e = b;
    while (e < text.size() &&
           !std::isspace(static_cast<unsigned char>(text[e])))
        ++e;
    if (rest != nullptr)
        *rest = text.substr(e);
    return std::string(text.substr(b, e - b));
}

/** Keywords that can precede `(` without naming a call or function. */
bool
isNonCallKeyword(std::string_view s)
{
    static const std::set<std::string_view> kw = {
        "if",       "for",     "while",    "switch",  "catch",
        "return",   "sizeof",  "alignof",  "alignas", "decltype",
        "throw",    "new",     "delete",   "case",    "static_assert",
        "noexcept", "operator", "void",    "requires", "co_return",
        "co_await", "co_yield", "typeid",  "defined",
    };
    return kw.count(s) > 0;
}

bool
isPunct(const Token &t, std::string_view p)
{
    return t.kind == TokKind::Punct && t.text == p;
}

/**
 * The code token stream with Preproc tokens filtered out, as
 * (token, original position) — rules and the extractor both want a
 * pure code view.
 */
std::vector<const Token *>
codeView(const std::vector<Token> &code)
{
    std::vector<const Token *> v;
    v.reserve(code.size());
    for (const Token &t : code)
        if (t.kind != TokKind::Preproc)
            v.push_back(&t);
    return v;
}

/** Index just past the `)` matching the `(` at @p open. */
std::size_t
skipParens(const std::vector<const Token *> &v, std::size_t open)
{
    int depth = 0;
    std::size_t i = open;
    for (; i < v.size(); ++i) {
        if (isPunct(*v[i], "("))
            ++depth;
        else if (isPunct(*v[i], ")") && --depth == 0)
            return i + 1;
    }
    return i;
}

/** Index just past the `}` matching the `{` at @p open. */
std::size_t
skipBraces(const std::vector<const Token *> &v, std::size_t open)
{
    int depth = 0;
    std::size_t i = open;
    for (; i < v.size(); ++i) {
        if (isPunct(*v[i], "{"))
            ++depth;
        else if (isPunct(*v[i], "}") && --depth == 0)
            return i + 1;
    }
    return i;
}

/**
 * Decide whether the parenthesized declarator ending just before
 * @p after opens a function body, and report where that body's `{`
 * sits. Understands cv/ref qualifiers, noexcept(...), trailing
 * return types, and constructor initializer lists.
 */
bool
findBodyBrace(const std::vector<const Token *> &v, std::size_t after,
              std::size_t &braceAt)
{
    std::size_t j = after;
    bool sawColon = false;
    while (j < v.size()) {
        const Token &t = *v[j];
        if (isPunct(t, "{")) {
            braceAt = j;
            return true;
        }
        if (sawColon) {
            // Constructor initializer list: skip member(...)/{...}
            // initializers and commas until the body brace.
            if (isPunct(t, "(")) {
                j = skipParens(v, j);
                continue;
            }
            if (t.kind == TokKind::Identifier || isPunct(t, ",") ||
                isPunct(t, "::") || isPunct(t, "<") || isPunct(t, ">")) {
                ++j;
                continue;
            }
            return false;
        }
        if (t.kind == TokKind::Identifier &&
            (t.text == "const" || t.text == "noexcept" ||
             t.text == "override" || t.text == "final" ||
             t.text == "mutable" || t.text == "volatile" ||
             t.text == "try" || t.text == "requires")) {
            ++j;
            if (j < v.size() && isPunct(*v[j], "("))
                j = skipParens(v, j);
            continue;
        }
        if (isPunct(t, "&") || isPunct(t, "&&")) {
            ++j;
            continue;
        }
        if (isPunct(t, ":")) {
            sawColon = true;
            ++j;
            continue;
        }
        if (isPunct(t, "-") && j + 1 < v.size() && isPunct(*v[j + 1], ">")) {
            // Trailing return type: consume type tokens.
            j += 2;
            while (j < v.size() &&
                   (v[j]->kind == TokKind::Identifier ||
                    isPunct(*v[j], "::") || isPunct(*v[j], "<") ||
                    isPunct(*v[j], ">") || isPunct(*v[j], "*") ||
                    isPunct(*v[j], "&")))
                ++j;
            continue;
        }
        return false;
    }
    return false;
}

/** Walk back over `Class ::` pairs to build a qualified name. */
std::string
qualifiedNameAt(const std::vector<const Token *> &v, std::size_t nameIdx)
{
    std::string q(v[nameIdx]->text);
    std::size_t i = nameIdx;
    while (i >= 2 && isPunct(*v[i - 1], "::") &&
           v[i - 2]->kind == TokKind::Identifier) {
        q = v[i - 2]->text + "::" + q;
        i -= 2;
    }
    return q;
}

/**
 * Record calls and taint seeds inside a body span [begin, end).
 * A call is `name(` with name not a keyword; seeds are the banned
 * identifier sets of each registered taint rule.
 */
void
scanBody(const std::vector<const Token *> &v, std::size_t begin,
         std::size_t end, FunctionDef &def)
{
    for (std::size_t i = begin; i < end; ++i) {
        const Token &t = *v[i];
        if (t.kind != TokKind::Identifier)
            continue;
        const bool calls = i + 1 < end && isPunct(*v[i + 1], "(");
        if (calls && !isNonCallKeyword(t.text))
            def.calls.push_back({t.text, t.line});
        for (const TaintSpec &spec : taintSpecs()) {
            if (def.seeds.count(std::string(spec.rule)))
                continue;
            const bool banned =
                spec.banned->count(t.text) > 0 ||
                (calls && spec.callOnlyNames->count(t.text) > 0);
            if (banned)
                def.seeds.emplace(std::string(spec.rule),
                                  std::make_pair(t.text, t.line));
        }
    }
}

/**
 * Extract function definitions (with their calls and seeds) and
 * namespace-scope declared names from the pure-code token view.
 */
void
extractFunctionsAndDeclares(
    const std::vector<const Token *> &v,
    const std::map<int, std::vector<std::string>> &barrierLines,
    FileRecord &rec)
{
    std::set<std::string> declares;
    std::size_t i = 0;
    while (i < v.size()) {
        const Token &t = *v[i];
        if (t.kind != TokKind::Identifier) {
            ++i;
            continue;
        }
        // Type and alias declarations.
        if (t.text == "class" || t.text == "struct" ||
            t.text == "union" || t.text == "enum") {
            std::size_t j = i + 1;
            if (j < v.size() && v[j]->kind == TokKind::Identifier &&
                v[j]->text == "class")
                ++j; // enum class
            // Skip attribute-style macros (`class AITAX_CAPABILITY("m")
            // Name`, `struct alignas(64) Name`).
            while (j + 1 < v.size() &&
                   v[j]->kind == TokKind::Identifier &&
                   isPunct(*v[j + 1], "("))
                j = skipParens(v, j + 1);
            if (j < v.size() && v[j]->kind == TokKind::Identifier &&
                !isNonCallKeyword(v[j]->text))
                declares.insert(v[j]->text);
            i = j + 1;
            continue;
        }
        if (t.text == "using" && i + 2 < v.size() &&
            v[i + 1]->kind == TokKind::Identifier &&
            isPunct(*v[i + 2], "=")) {
            declares.insert(v[i + 1]->text);
            i += 3;
            continue;
        }
        if (t.text == "typedef") {
            std::size_t j = i + 1;
            std::string last;
            while (j < v.size() && !isPunct(*v[j], ";")) {
                if (v[j]->kind == TokKind::Identifier)
                    last = v[j]->text;
                ++j;
            }
            if (!last.empty())
                declares.insert(last);
            i = j + 1;
            continue;
        }
        // Candidate function declarator: `name (`.
        if (!isNonCallKeyword(t.text) && i + 1 < v.size() &&
            isPunct(*v[i + 1], "(")) {
            const std::size_t afterParams = skipParens(v, i + 1);
            std::size_t braceAt = 0;
            if (findBodyBrace(v, afterParams, braceAt)) {
                FunctionDef def;
                def.name = t.text;
                def.qualified = qualifiedNameAt(v, i);
                def.line = t.line;
                // A marker covers its own line and the two after it
                // (the repo style puts return types on their own line).
                for (int probe = def.line; probe >= def.line - 2;
                     --probe) {
                    const auto it = barrierLines.find(probe);
                    if (it == barrierLines.end())
                        continue;
                    for (const std::string &r : it->second)
                        def.barriers.push_back(r);
                }
                std::stable_sort(def.barriers.begin(),
                                 def.barriers.end());
                const std::size_t bodyEnd = skipBraces(v, braceAt);
                scanBody(v, braceAt + 1,
                         bodyEnd > 0 ? bodyEnd - 1 : braceAt + 1, def);
                declares.insert(def.name);
                rec.functions.push_back(std::move(def));
                i = bodyEnd;
                continue;
            }
            // `name (params) ;` — a declaration still declares name.
            if (afterParams < v.size() && isPunct(*v[afterParams], ";"))
                declares.insert(t.text);
            i = afterParams;
            continue;
        }
        ++i;
    }
    rec.declares.assign(declares.begin(), declares.end());
}

} // namespace

bool
SuppressionSet::covers(const Finding &f) const
{
    if (fileWide.count(f.rule))
        return true;
    const auto it = lines.find(f.rule);
    return it != lines.end() && it->second.count(f.line) > 0;
}

bool
FunctionDef::isBarrierFor(std::string_view rule) const
{
    return std::find(barriers.begin(), barriers.end(), rule) !=
           barriers.end();
}

FileRecord
indexSource(std::string_view virtualPath, std::string_view content)
{
    FileRecord rec;
    rec.path = std::string(virtualPath);
    rec.ctx.path = rec.path;
    rec.ctx.isHeader = hasSuffix(rec.path, ".h");

    std::map<int, std::vector<std::string>> barrierLines;
    for (Token &t : tokenize(content)) {
        switch (t.kind) {
          case TokKind::Comment:
            parseMarkers(t, rec.sup, barrierLines);
            break;
          case TokKind::Preproc:
            rec.ctx.preproc.push_back(t);
            rec.ctx.code.push_back(std::move(t));
            break;
          default:
            rec.ctx.code.push_back(std::move(t));
            break;
        }
    }

    for (const Token &t : rec.ctx.preproc) {
        std::string_view rest;
        if (directiveWord(t.text, &rest) == "include") {
            const std::size_t b = rest.find_first_not_of(" \t");
            if (b == std::string_view::npos)
                continue;
            const char open = rest[b];
            if (open != '<' && open != '"')
                continue;
            const char close = open == '<' ? '>' : '"';
            const std::size_t e = rest.find(close, b + 1);
            if (e == std::string_view::npos)
                continue;
            IncludeEdge edge;
            edge.target = std::string(rest.substr(b + 1, e - b - 1));
            edge.line = t.line;
            edge.angled = open == '<';
            rec.includes.push_back(std::move(edge));
        } else if (directiveWord(t.text) == "define") {
            std::string_view rest2;
            directiveWord(t.text, &rest2);
            std::string name = directiveWord(rest2);
            const std::size_t paren = name.find('(');
            if (paren != std::string::npos)
                name = name.substr(0, paren);
            if (!name.empty()) {
                rec.declares.push_back(name); // merged below
            }
        }
    }

    std::vector<std::string> macroNames = std::move(rec.declares);
    rec.declares.clear();
    const std::vector<const Token *> v = codeView(rec.ctx.code);
    extractFunctionsAndDeclares(v, barrierLines, rec);
    rec.declares.insert(rec.declares.end(), macroNames.begin(),
                        macroNames.end());
    std::stable_sort(rec.declares.begin(), rec.declares.end());
    rec.declares.erase(
        std::unique(rec.declares.begin(), rec.declares.end()),
        rec.declares.end());
    return rec;
}

int
RepoIndex::fileIndexOf(std::string_view path) const
{
    const auto it = pathIndex_.find(path);
    return it == pathIndex_.end() ? -1 : it->second;
}

std::string
RepoIndex::moduleOf(std::string_view path)
{
    if (path.substr(0, 4) == "src/")
        path.remove_prefix(4);
    const std::size_t slash = path.find('/');
    return std::string(slash == std::string_view::npos
                           ? path
                           : path.substr(0, slash));
}

const std::vector<RepoIndex::FuncRef> *
RepoIndex::lookupFunctions(std::string_view name) const
{
    const auto it = functionsByName_.find(name);
    return it == functionsByName_.end() ? nullptr : &it->second;
}

void
RepoIndex::finalize()
{
    std::stable_sort(files_.begin(), files_.end(),
                     [](const FileRecord &a, const FileRecord &b) {
                         return a.path < b.path;
                     });
    pathIndex_.clear();
    for (std::size_t i = 0; i < files_.size(); ++i)
        pathIndex_.emplace(files_[i].path, static_cast<int>(i));

    for (FileRecord &rec : files_) {
        const std::string dir =
            rec.path.find('/') == std::string::npos
                ? std::string()
                : rec.path.substr(0, rec.path.rfind('/') + 1);
        for (IncludeEdge &edge : rec.includes) {
            edge.resolved = fileIndexOf("src/" + edge.target);
            if (edge.resolved < 0)
                edge.resolved = fileIndexOf(edge.target);
            if (edge.resolved < 0 && !dir.empty())
                edge.resolved = fileIndexOf(dir + edge.target);
        }
    }

    functionsByName_.clear();
    for (std::size_t f = 0; f < files_.size(); ++f)
        for (std::size_t g = 0; g < files_[f].functions.size(); ++g)
            functionsByName_[files_[f].functions[g].name].push_back(
                {static_cast<int>(f), static_cast<int>(g)});

    closures_.assign(files_.size(), {});
    closureReady_.assign(files_.size(), false);
}

RepoIndex
RepoIndex::build(const std::string &root)
{
    namespace fs = std::filesystem;
    static const std::vector<std::string_view> kSubdirs = {
        "src", "tools", "bench"};

    std::vector<std::string> rel;
    for (std::string_view sub : kSubdirs) {
        const fs::path dir = fs::path(root) / sub;
        if (!fs::exists(dir))
            continue;
        for (const auto &entry : fs::recursive_directory_iterator(dir)) {
            if (!entry.is_regular_file())
                continue;
            const std::string p = entry.path().generic_string();
            if (hasSuffix(p, ".h") || hasSuffix(p, ".cc"))
                rel.push_back(
                    fs::relative(entry.path(), root).generic_string());
        }
    }
    // Directory iteration order is unspecified; sort for determinism.
    std::stable_sort(rel.begin(), rel.end());

    RepoIndex idx;
    for (const std::string &r : rel) {
        std::ifstream in((fs::path(root) / r).string(),
                         std::ios::binary);
        std::ostringstream buf;
        buf << in.rdbuf();
        idx.files_.push_back(indexSource(r, buf.str()));
    }
    idx.finalize();
    return idx;
}

RepoIndex
RepoIndex::fromSources(
    const std::vector<std::pair<std::string, std::string>> &sources)
{
    RepoIndex idx;
    for (const auto &[path, content] : sources)
        idx.files_.push_back(indexSource(path, content));
    idx.finalize();
    return idx;
}

const std::vector<int> &
RepoIndex::includeClosure(int fileIdx) const
{
    auto &slot = closures_[static_cast<std::size_t>(fileIdx)];
    if (closureReady_[static_cast<std::size_t>(fileIdx)])
        return slot;
    std::set<int> seen;
    std::vector<int> stack = {fileIdx};
    while (!stack.empty()) {
        const int cur = stack.back();
        stack.pop_back();
        if (!seen.insert(cur).second)
            continue;
        for (const IncludeEdge &e :
             files_[static_cast<std::size_t>(cur)].includes)
            if (e.resolved >= 0)
                stack.push_back(e.resolved);
    }
    slot.assign(seen.begin(), seen.end());
    closureReady_[static_cast<std::size_t>(fileIdx)] = true;
    return slot;
}

bool
RepoIndex::closureDeclares(int fileIdx, std::string_view name) const
{
    for (int f : includeClosure(fileIdx)) {
        const auto &d = files_[static_cast<std::size_t>(f)].declares;
        if (std::binary_search(d.begin(), d.end(), name))
            return true;
    }
    return false;
}

std::vector<int>
RepoIndex::declarersOf(std::string_view name) const
{
    std::vector<int> out;
    for (std::size_t f = 0; f < files_.size(); ++f) {
        const auto &d = files_[f].declares;
        if (std::binary_search(d.begin(), d.end(), name))
            out.push_back(static_cast<int>(f));
    }
    return out;
}

std::string
RepoIndex::dotGraph() const
{
    std::ostringstream os;
    os << "digraph aitax_include_graph {\n";
    os << "  rankdir=LR;\n";
    os << "  node [shape=box, fontsize=9];\n";

    // Module clusters, modules and member files both in sorted order
    // (files_ is path-sorted, so grouping preserves that order).
    std::map<std::string, std::vector<const FileRecord *>> byModule;
    for (const FileRecord &rec : files_)
        byModule[moduleOf(rec.path)].push_back(&rec);
    for (const auto &[module, members] : byModule) {
        os << "  subgraph \"cluster_" << module << "\" {\n";
        os << "    label=\"" << module << "\";\n";
        for (const FileRecord *rec : members)
            os << "    \"" << rec->path << "\";\n";
        os << "  }\n";
    }
    for (const FileRecord &rec : files_)
        for (const IncludeEdge &e : rec.includes)
            if (e.resolved >= 0)
                os << "  \"" << rec.path << "\" -> \""
                   << files_[static_cast<std::size_t>(e.resolved)].path
                   << "\";\n";
    os << "}\n";
    return os.str();
}

} // namespace aitax::lint
