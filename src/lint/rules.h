/**
 * @file
 * aitax-lint rule registry.
 *
 * Each rule turns one of the repo's determinism/hygiene conventions
 * into a machine-checked invariant (see docs/LINTING.md for the full
 * rationale of every rule). Rules are pure functions over a tokenized
 * file; suppression (`// aitax-lint: allow(<rule>)`) and baselining
 * are applied by the Linter on top of raw rule output.
 */

#ifndef AITAX_LINT_RULES_H
#define AITAX_LINT_RULES_H

#include <string>
#include <string_view>
#include <vector>

#include "lint/token.h"

namespace aitax::lint {

/** One rule violation at a specific source location. */
struct Finding
{
    std::string file; ///< repo-relative path, '/' separators
    int line = 0;
    std::string rule;
    std::string message;
    std::string hint; ///< suggested fix
    /**
     * Low-confidence findings come from heuristics with a known
     * false-positive tail (e.g. the self-contained-header check);
     * the linter emits them under --strict only.
     */
    bool lowConfidence = false;

    /** Ordering for deterministic reports: (file, line, rule). */
    friend bool
    operator<(const Finding &a, const Finding &b)
    {
        if (a.file != b.file)
            return a.file < b.file;
        if (a.line != b.line)
            return a.line < b.line;
        return a.rule < b.rule;
    }
};

/** A tokenized file presented to rules. */
struct FileContext
{
    std::string path;          ///< repo-relative, '/' separators
    std::vector<Token> code;   ///< comment tokens stripped
    std::vector<Token> preproc; ///< preprocessor directives only
    bool isHeader = false;

    /** True if path starts with @p prefix. */
    bool startsWith(std::string_view prefix) const;
    /** True if path starts with any prefix in @p prefixes. */
    bool
    startsWithAny(const std::vector<std::string_view> &prefixes) const;
};

/** A named, documented lint rule. */
struct Rule
{
    std::string_view id;        ///< stable kebab-case id
    std::string_view summary;   ///< one-line description
    std::string_view rationale; ///< why this preserves determinism
    void (*check)(const FileContext &, std::vector<Finding> &);
};

/** All registered rules, sorted by id. */
const std::vector<Rule> &allRules();

/** Look up a rule by id; nullptr if unknown. */
const Rule *findRule(std::string_view id);

} // namespace aitax::lint

#endif // AITAX_LINT_RULES_H
