/**
 * @file
 * Cross-TU taint propagation for the determinism rules.
 *
 * The file-local `wall-clock` and `raw-random` rules catch direct
 * touches of nondeterministic primitives. The taint rules
 * (`taint-clock`, `taint-random`) close the transitive gap: a
 * sanctioned-module helper that reaches `steady_clock` three calls
 * deep still fires at the call site inside restricted code, with the
 * full call chain spelled out in the finding message.
 *
 * Semantics (deliberate over-approximation, see docs/LINTING.md):
 *  - A function is a taint *root* if its body touches a banned
 *    primitive directly.
 *  - Taint flows from callee to caller over the token-approximated
 *    call graph (calls resolve by unqualified name — every same-name
 *    definition is a candidate).
 *  - `// aitax-lint: taint-barrier(<rule>)` on or just above a
 *    definition stops propagation through that function: the marker
 *    asserts the function's nondeterminism has been reviewed and does
 *    not leak into simulation-visible state. src/sim/random.* is an
 *    implicit barrier for taint-random (it IS the sanctioned RNG).
 *  - Findings fire only at *cross-file* call sites in restricted
 *    files (same-file chains are already visible to the file-local
 *    rules and the reader).
 *  - Functions defined under bench/ or tools/ taint only callers in
 *    the same top-level directory: nothing links src/ against those
 *    translation units, so a same-name collision with a bench helper
 *    must not taint simulator code.
 *
 * Ordinary `allow(...)` suppressions and the shrink-only baseline
 * apply to taint findings exactly as to file-local ones.
 */

#ifndef AITAX_LINT_TAINT_H
#define AITAX_LINT_TAINT_H

#include <set>
#include <string_view>
#include <vector>

#include "lint/rules.h"

namespace aitax::lint {

class RepoIndex;

/** One transitively-propagated determinism rule. */
struct TaintSpec
{
    std::string_view rule;        ///< finding id ("taint-clock")
    std::string_view sourceLabel; ///< "wall-clock read" etc.
    /** Identifiers that seed taint wherever they appear. */
    const std::set<std::string_view> *banned;
    /** Identifiers that seed taint only when called (`name(`). */
    const std::set<std::string_view> *callOnlyNames;
    /** True if findings may fire in this file. */
    bool (*restricted)(std::string_view path);
    /** True if functions defined here never carry taint. */
    bool (*implicitBarrier)(std::string_view path);
    std::string_view summary;
    std::string_view rationale;
    std::string_view hint;
};

/** All taint rules, sorted by id. */
const std::vector<TaintSpec> &taintSpecs();

/** Look up a taint rule by id; nullptr if unknown. */
const TaintSpec *findTaintSpec(std::string_view id);

/**
 * Run taint propagation for @p spec over the index and append raw
 * findings (suppressions/baseline are applied by the caller).
 * Deterministic: fixed-point is computed over sorted worklists and
 * findings follow file/body order before the final global sort.
 */
void propagateTaint(const RepoIndex &idx, const TaintSpec &spec,
                    std::vector<Finding> &out);

// Shared banned-name tables (single source of truth for the
// file-local rules in rules.cc and the taint seeds in index.cc).

/** Wall-clock identifiers banned wherever they appear. */
const std::set<std::string_view> &wallClockBanned();
/** Wall-clock identifiers banned only as calls (`time(`, `clock(`). */
const std::set<std::string_view> &wallClockCallOnly();
/** Raw-RNG identifiers banned wherever they appear. */
const std::set<std::string_view> &rawRandomBanned();
/** Raw-RNG identifiers banned only as calls (`rand(`). */
const std::set<std::string_view> &rawRandomCallOnly();

} // namespace aitax::lint

#endif // AITAX_LINT_TAINT_H
