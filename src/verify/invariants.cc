#include "verify/invariants.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "sim/simulator.h"
#include "soc/chipsets.h"
#include "soc/thermal.h"

namespace aitax::verify {

namespace {

CheckResult
pass(std::string name)
{
    return {std::move(name), true, ""};
}

CheckResult
fail(std::string name, const std::string &detail)
{
    return {std::move(name), false, detail};
}

std::string
fmt(double v)
{
    std::ostringstream os;
    os << v;
    return os.str();
}

} // namespace

bool
InvariantReport::allPassed() const
{
    return failures() == 0;
}

std::size_t
InvariantReport::failures() const
{
    std::size_t n = 0;
    for (const auto &r : results_)
        if (!r.passed)
            ++n;
    return n;
}

void
InvariantReport::render(std::ostream &os) const
{
    for (const auto &r : results_) {
        os << "  [" << (r.passed ? "PASS" : "FAIL") << "] " << r.name;
        if (!r.passed)
            os << " — " << r.detail;
        os << "\n";
    }
}

CheckResult
checkStageSanity(const core::TaxReport &r)
{
    const char *name = "stage-sanity";
    if (r.runs() == 0)
        return fail(name, "report holds no runs");
    const auto &e2e = r.endToEnd().raw();
    const auto &inf = r.stage(core::Stage::Inference).raw();
    for (core::Stage s : core::kAllStages) {
        if (r.stage(s).min() < 0.0)
            return fail(name, std::string(core::stageName(s)) +
                                  " has a negative latency sample");
    }
    for (std::size_t i = 0; i < e2e.size(); ++i) {
        double sum = 0.0;
        for (core::Stage s : core::kAllStages)
            sum += r.stage(s).raw()[i];
        if (std::abs(sum - e2e[i]) > 1e-6)
            return fail(name, "run " + std::to_string(i) +
                                  ": stage sum " + fmt(sum) +
                                  " != e2e " + fmt(e2e[i]));
        if (e2e[i] + 1e-9 < inf[i])
            return fail(name, "run " + std::to_string(i) + ": e2e " +
                                  fmt(e2e[i]) + " ms < inference " +
                                  fmt(inf[i]) + " ms");
    }
    if (r.endToEndMeanMs() + 1e-9 < r.stageMeanMs(core::Stage::Inference))
        return fail(name, "mean e2e below mean inference");
    return pass(name);
}

CheckResult
checkTaxFraction(const core::TaxReport &r)
{
    const char *name = "tax-fraction-unit-interval";
    const double f = r.aiTaxFraction();
    if (!(f >= 0.0) || !(f < 1.0))
        return fail(name, "aiTaxFraction = " + fmt(f));
    // Every pipeline spends *some* non-inference time (capture or
    // framework prep), so a full run set with zero tax is an
    // accounting bug.
    if (r.runs() > 0 && r.aiTaxMeanMs() <= 0.0)
        return fail(name, "mean AI tax is zero over " +
                              std::to_string(r.runs()) + " runs");
    return pass(name);
}

CheckResult
checkTraceDeterminism(const std::string &trace_a,
                      const std::string &trace_b)
{
    const char *name = "seed-determinism";
    if (trace_a == trace_b)
        return pass(name);
    // Locate the first divergence for the diagnostic.
    std::size_t i = 0;
    const std::size_t n = std::min(trace_a.size(), trace_b.size());
    while (i < n && trace_a[i] == trace_b[i])
        ++i;
    return fail(name, "traces diverge at byte " + std::to_string(i) +
                          " (sizes " + std::to_string(trace_a.size()) +
                          " vs " + std::to_string(trace_b.size()) + ")");
}

CheckResult
checkBackgroundMonotonic(const core::TaxReport &unloaded,
                         const core::TaxReport &loaded, double slack_pct)
{
    const char *name = "background-load-monotonic";
    const double base = unloaded.endToEndMeanMs();
    const double with_load = loaded.endToEndMeanMs();
    if (with_load < base * (1.0 - slack_pct / 100.0))
        return fail(name, "loaded e2e " + fmt(with_load) +
                              " ms beats unloaded " + fmt(base) + " ms");
    return pass(name);
}

CheckResult
checkThermalMonotonic(const soc::SocConfig &platform)
{
    const char *name = "thermal-throttle-monotonic";
    soc::ThermalConfig cfg = platform.thermal;
    cfg.enabled = true; // probe the model even on presets that keep it off
    sim::Simulator sim;
    soc::ThermalModel model(cfg, sim);
    double last = model.speedFactor();
    if (!(last > 0.0) || last > 1.0)
        return fail(name, "cold speed factor " + fmt(last));
    // Pump heat in steps; the clock multiplier must never rise while
    // heat accumulates (time is frozen, so no cooling happens).
    for (int step = 0; step < 40; ++step) {
        model.addHeat(cfg.throttleThreshold / 8.0);
        const double f = model.speedFactor();
        if (!(f > 0.0) || f > 1.0)
            return fail(name, "speed factor " + fmt(f) + " outside (0,1]");
        if (f > last + 1e-12)
            return fail(name, "heating raised the clock: " + fmt(last) +
                                  " -> " + fmt(f));
        last = f;
    }
    if (last >= 1.0)
        return fail(name, "saturated heat did not throttle");
    return pass(name);
}

CheckResult
checkFastRpcLinearity(const std::vector<soc::FastRpcBreakdown> &calls,
                      double tolerance_pct)
{
    const char *name = "fastrpc-linear-in-calls";
    if (calls.size() < 6)
        return pass(name); // not enough calls to regress
    // Only the first call of a process may pay the session open.
    for (std::size_t i = 1; i < calls.size(); ++i) {
        if (calls[i].sessionOpenNs > 0)
            return fail(name, "warm call " + std::to_string(i) +
                                  " paid session open again");
    }
    // Warm overhead must be stationary: the first half of the warm
    // calls accounts for ~half the total warm overhead.
    double total = 0.0;
    for (std::size_t i = 1; i < calls.size(); ++i)
        total += static_cast<double>(calls[i].overheadNs());
    if (total <= 0.0)
        return fail(name, "offloaded calls report zero overhead");
    const std::size_t half = 1 + (calls.size() - 1) / 2;
    double first_half = 0.0;
    for (std::size_t i = 1; i < half; ++i)
        first_half += static_cast<double>(calls[i].overheadNs());
    const double expected =
        total * static_cast<double>(half - 1) /
        static_cast<double>(calls.size() - 1);
    const double rel = std::abs(first_half - expected) / expected;
    if (rel > tolerance_pct / 100.0)
        return fail(name, "warm overhead drifts " + fmt(rel * 100.0) +
                              "% from linear growth");
    return pass(name);
}

CheckResult
checkInterferenceSuppression(const core::TaxReport &with_interference,
                             const core::TaxReport &suppressed,
                             double slack_pct)
{
    const char *name = "interference-suppression";
    const double noisy = with_interference.endToEndMeanMs();
    const double quiet = suppressed.endToEndMeanMs();
    if (quiet > noisy * (1.0 + slack_pct / 100.0))
        return fail(name, "suppressed e2e " + fmt(quiet) +
                              " ms slower than interfered " + fmt(noisy) +
                              " ms");
    return pass(name);
}

CheckResult
checkRpcBreakdownSanity(const std::vector<soc::FastRpcBreakdown> &calls)
{
    const char *name = "rpc-breakdown-sanity";
    for (std::size_t i = 0; i < calls.size(); ++i) {
        const auto &c = calls[i];
        const struct
        {
            const char *field;
            sim::DurationNs v;
        } stages[] = {
            {"sessionOpenNs", c.sessionOpenNs},
            {"userToKernelNs", c.userToKernelNs},
            {"cacheFlushNs", c.cacheFlushNs},
            {"kernelSignalNs", c.kernelSignalNs},
            {"queueWaitNs", c.queueWaitNs},
            {"dspExecNs", c.dspExecNs},
            {"returnPathNs", c.returnPathNs},
            {"retryNs", c.retryNs},
        };
        sim::DurationNs sum = 0;
        for (const auto &st : stages) {
            if (st.v < 0)
                return fail(name, "call " + std::to_string(i) + ": " +
                                      st.field + " = " +
                                      std::to_string(st.v) + " < 0");
            sum += st.v;
        }
        if (sum != c.totalNs())
            return fail(name, "call " + std::to_string(i) +
                                  ": stage sum " + std::to_string(sum) +
                                  " ns != total " +
                                  std::to_string(c.totalNs()) + " ns");
        if (c.retries < 0)
            return fail(name, "call " + std::to_string(i) +
                                  ": negative retry count");
        if (c.retries == 0 && c.retryNs > 0)
            return fail(name, "call " + std::to_string(i) +
                                  ": retry time without retries");
    }
    return pass(name);
}

CheckResult
checkFrameCausality(const std::vector<app::FrameConsume> &frames)
{
    const char *name = "frame-causality";
    for (std::size_t i = 0; i < frames.size(); ++i) {
        const auto &f = frames[i];
        if (f.consumedAt < f.readyAt)
            return fail(name,
                        "frame " + std::to_string(f.frame) +
                            " consumed at " + std::to_string(f.consumedAt) +
                            " ns before its arrival at " +
                            std::to_string(f.readyAt) + " ns");
        if (i > 0 && f.frame <= frames[i - 1].frame)
            return fail(name, "frame index not strictly increasing at "
                              "witness " +
                                  std::to_string(i));
    }
    return pass(name);
}

CheckResult
checkFallbackMonotonic(const faults::FaultStats &stats)
{
    const char *name = "fallback-chain-monotonic";
    for (const auto &fb : stats.fallbacks) {
        if (static_cast<int>(fb.to) <= static_cast<int>(fb.from))
            return fail(name,
                        std::string("fallback climbs the chain: ") +
                            faults::chainLinkName(fb.from) + " -> " +
                            faults::chainLinkName(fb.to));
    }
    return pass(name);
}

CheckResult
checkDegradedAccounting(const core::TaxReport &r, bool faulted)
{
    const char *name = "degraded-mode-accounting";
    const auto &d = r.degradedMode();
    if (!faulted) {
        if (d.count() != 0)
            return fail(name, "unfaulted report carries " +
                                  std::to_string(d.count()) +
                                  " degraded samples");
        return pass(name);
    }
    if (d.count() != r.runs())
        return fail(name, "expected one degraded sample per run, got " +
                              std::to_string(d.count()) + " for " +
                              std::to_string(r.runs()) + " runs");
    const auto &e2e = r.endToEnd().raw();
    for (std::size_t i = 0; i < d.raw().size(); ++i) {
        if (d.raw()[i] < 0.0)
            return fail(name, "run " + std::to_string(i) +
                                  ": negative degraded time");
        if (d.raw()[i] > e2e[i] + 1e-9)
            return fail(name, "run " + std::to_string(i) +
                                  ": degraded time " + fmt(d.raw()[i]) +
                                  " ms exceeds e2e " + fmt(e2e[i]) +
                                  " ms");
    }
    return pass(name);
}

InvariantReport
verifyScenario(const Scenario &s)
{
    return verifyScenario(s, sim::EngineMode::Fast);
}

InvariantReport
verifyScenario(const Scenario &s, sim::EngineMode engine)
{
    InvariantReport report;

    const ScenarioResult base = runScenario(s, engine);
    report.add(checkStageSanity(base.report));
    report.add(checkTaxFraction(base.report));

    // I3: identical seed, identical trace. Holds with faults armed
    // too — the fault schedule is part of the seeded state.
    const ScenarioResult rerun = runScenario(s, engine);
    report.add(
        checkTraceDeterminism(base.chromeTraceJson, rerun.chromeTraceJson));

    // I4: contrast against the other side of the load axis. Skipped
    // under faults: the injected schedule differs across variants, so
    // the monotonicity premise does not hold.
    if (!s.faults) {
        Scenario contrast = s;
        const bool has_load =
            s.dspLoadProcesses > 0 || s.cpuLoadProcesses > 0;
        if (has_load) {
            contrast.dspLoadProcesses = 0;
            contrast.cpuLoadProcesses = 0;
            const ScenarioResult unloaded = runScenario(contrast, engine);
            report.add(
                checkBackgroundMonotonic(unloaded.report, base.report));
        } else {
            contrast.dspLoadProcesses = 2;
            contrast.cpuLoadProcesses = 1;
            const ScenarioResult loaded = runScenario(contrast, engine);
            report.add(
                checkBackgroundMonotonic(base.report, loaded.report));
        }
    }

    // I5: thermal model of this scenario's platform.
    report.add(
        checkThermalMonotonic(soc::platformByName(s.socName)));

    // I6: FastRPC linearity whenever the scenario offloaded. Retries
    // and session losses make warm overhead non-stationary, so the
    // check only applies without faults.
    if (!s.faults && !base.rpcLog.empty())
        report.add(checkFastRpcLinearity(base.rpcLog));

    // I8/I9: per-call and per-frame sanity (trivially pass when the
    // scenario produced no offloads / no streaming witnesses).
    report.add(checkRpcBreakdownSanity(base.rpcLog));
    report.add(checkFrameCausality(base.frameLog));

    // Fault-specific invariants.
    if (s.faults)
        report.add(checkFallbackMonotonic(base.faultStats));
    report.add(checkDegradedAccounting(base.report, s.faults));

    // Scenario-level sanity on the witnesses themselves.
    CheckResult wit{"witness-sanity", true, ""};
    if (base.endTimeNs <= 0)
        wit = {"witness-sanity", false, "simulation ended at t=0"};
    else if (base.energyMj <= 0.0)
        wit = {"witness-sanity", false, "no energy accounted"};
    else if (!(base.thermalSpeedFactor > 0.0) ||
             base.thermalSpeedFactor > 1.0)
        wit = {"witness-sanity", false, "thermal factor outside (0,1]"};
    report.add(wit);

    return report;
}

} // namespace aitax::verify
