/**
 * @file
 * Metamorphic invariant checks: relations derived from the paper's
 * figures that must hold for *every* simulated configuration, not just
 * the ones unit tests pin. Each check returns a CheckResult; the
 * scenario driver composes them into an InvariantReport with a replay
 * hint, so a violation found by fuzzing is reproducible from its seed.
 */

#ifndef AITAX_VERIFY_INVARIANTS_H
#define AITAX_VERIFY_INVARIANTS_H

#include <ostream>
#include <string>
#include <vector>

#include "verify/scenario.h"

namespace aitax::verify {

/** Outcome of one invariant check. */
struct CheckResult
{
    std::string name;
    bool passed = true;
    /** Populated on failure: what was observed vs expected. */
    std::string detail;
};

/** Collection of check outcomes for one scenario (or suite). */
class InvariantReport
{
  public:
    void add(CheckResult r) { results_.push_back(std::move(r)); }

    const std::vector<CheckResult> &results() const { return results_; }

    bool allPassed() const;
    std::size_t failures() const;

    /** One line per check; failures carry their detail. */
    void render(std::ostream &os) const;

  private:
    std::vector<CheckResult> results_;
};

// --- individual metamorphic invariants (paper-derived rules) -----------

/**
 * I1 (Fig 3): stage accounting is sane — every stage latency is
 * non-negative, each run's end-to-end latency equals the sum of its
 * stages, and end-to-end always dominates inference alone.
 */
CheckResult checkStageSanity(const core::TaxReport &r);

/** I2 (Sec IV): AI tax fraction lies in (0, 1) whenever tax exists. */
CheckResult checkTaxFraction(const core::TaxReport &r);

/**
 * I3 (Sec IV-A): identical seeds yield bit-identical event traces.
 * Pass the chrome-trace JSON of two runs of the same scenario.
 */
CheckResult checkTraceDeterminism(const std::string &trace_a,
                                  const std::string &trace_b);

/**
 * I4 (Fig 9/10): adding background load never reduces mean end-to-end
 * latency. @p slack_pct tolerates measurement noise on loosely-coupled
 * resources (a loaded DSP does not slow a CPU-only pipeline).
 */
CheckResult checkBackgroundMonotonic(const core::TaxReport &unloaded,
                                     const core::TaxReport &loaded,
                                     double slack_pct = 2.0);

/**
 * I5: thermal throttling never raises frequency — the speed factor is
 * in (0, 1] and is non-increasing as heat accumulates.
 */
CheckResult checkThermalMonotonic(const soc::SocConfig &platform);

/**
 * I6 (Fig 7/8): FastRPC cost grows linearly in call count — warm-call
 * overhead is stationary, so the first half of the call log accounts
 * for ~half the total warm overhead, and only the first call pays the
 * session open.
 */
CheckResult checkFastRpcLinearity(
    const std::vector<soc::FastRpcBreakdown> &calls,
    double tolerance_pct = 30.0);

/**
 * I7 (Fig 11): suppressing background interference never makes the
 * pipeline slower.
 */
CheckResult checkInterferenceSuppression(
    const core::TaxReport &with_interference,
    const core::TaxReport &suppressed, double slack_pct = 2.0);

/**
 * I8 (Fig 7): every FastRPC breakdown is internally consistent — all
 * stages (including queue wait and retry overhead) are non-negative
 * and sum exactly to the call's total. Catches the queue-wait
 * misattribution class of bug, where an estimate-based accounting can
 * go negative under fabric contention.
 */
CheckResult checkRpcBreakdownSanity(
    const std::vector<soc::FastRpcBreakdown> &calls);

/**
 * I9: streaming-capture causality — no frame is consumed before the
 * sensor produced it (consumedAt >= readyAt for every witness).
 */
CheckResult checkFrameCausality(
    const std::vector<app::FrameConsume> &frames);

/**
 * I10: graceful degradation only moves *down* the NNAPI preference
 * chain (DSP -> GPU -> CPU); a fallback that climbs back up would be
 * a scheduling bug.
 */
CheckResult checkFallbackMonotonic(const faults::FaultStats &stats);

/**
 * Degraded-mode accounting: without faults the report's degraded
 * column must be empty; with faults armed it carries one non-negative
 * sample per run, each no larger than that run's end-to-end wall.
 */
CheckResult checkDegradedAccounting(const core::TaxReport &r,
                                    bool faulted);

// --- the composed scenario verifier ------------------------------------

/**
 * Run @p s (plus the derived variants the relational checks need) and
 * evaluate every applicable invariant.
 *
 * Derived runs: an identical-seed re-run (I3), a background-load
 * contrast (I4: against a zero-load variant when s carries load, or
 * a loaded variant otherwise), and the thermal model probe (I5).
 * I6 applies when the scenario offloads through FastRPC.
 *
 * Under fault injection (s.faults) the relational checks whose
 * premises faults break are skipped: I4's load contrast (a fault
 * schedule is not comparable across load levels) and I6's linearity
 * (retries make warm-call overhead non-stationary). Determinism (I3),
 * breakdown sanity (I8), frame causality (I9), fallback monotonicity
 * (I10) and degraded-mode accounting are enforced instead.
 */
InvariantReport verifyScenario(const Scenario &s);

/**
 * Same checks, pinned to one simulation engine. `aitax_cli verify
 * --engine reference` uses this to diff a suspect fast-path replay
 * against the reference event loop (see docs/PERFORMANCE.md).
 */
InvariantReport verifyScenario(const Scenario &s, sim::EngineMode engine);

} // namespace aitax::verify

#endif // AITAX_VERIFY_INVARIANTS_H
