/**
 * @file
 * Golden-trace regression harness.
 *
 * Serializes the per-stage tax breakdown of a scenario run
 * (core::TaxReport plus offload/energy witnesses) to a flat JSON
 * snapshot under tests/golden/. Snapshots are written with full
 * round-trip precision ("%.17g"), so a record pass on an unchanged
 * simulator regenerates every file bit-identically; the compare pass
 * applies per-metric relative tolerances so a legitimate cross-toolchain
 * wobble passes while a real cost change (>= a few percent) fails.
 */

#ifndef AITAX_VERIFY_GOLDEN_H
#define AITAX_VERIFY_GOLDEN_H

#include <map>
#include <string>
#include <vector>

#include "verify/scenario.h"

namespace aitax::verify {

/** Flat snapshot: a scenario label plus named scalar metrics. */
struct GoldenSnapshot
{
    std::string scenario;
    /** std::map: deterministic serialization order. */
    std::map<std::string, double> metrics;
};

/** Distill a scenario result into its golden metrics. */
GoldenSnapshot snapshot(const Scenario &s, const ScenarioResult &result);

/** Serialize; stable key order, round-trip-exact doubles. */
std::string toJson(const GoldenSnapshot &g);

/**
 * Parse a snapshot previously produced by toJson.
 * @return true on success; on failure @p error carries a diagnostic.
 */
bool fromJson(const std::string &text, GoldenSnapshot &out,
              std::string &error);

/** One metric that fell outside tolerance. */
struct GoldenDiff
{
    std::string metric;
    double expected = 0.0;
    double actual = 0.0;
    /** |actual - expected| / max(|expected|, floor). */
    double relError = 0.0;
};

/** Comparison tolerances. */
struct CompareOptions
{
    /** Default relative tolerance per metric. */
    double relTol = 0.02;
    /** Absolute floor below which differences are ignored. */
    double absFloor = 1e-6;
    /** Per-metric overrides (exact metric name -> relative tolerance). */
    std::map<std::string, double> perMetricTol;
};

/**
 * Compare @p actual against @p expected.
 * Missing or extra metrics are reported as diffs (relError = infinity).
 */
std::vector<GoldenDiff> compare(const GoldenSnapshot &expected,
                                const GoldenSnapshot &actual,
                                const CompareOptions &opts = {});

/** Golden file name for a scenario (label + ".json"). */
std::string goldenFileName(const Scenario &s);

/** Write @p g to @p path. @return false on I/O failure. */
bool writeGoldenFile(const std::string &path, const GoldenSnapshot &g);

/** Read a snapshot from @p path. */
bool readGoldenFile(const std::string &path, GoldenSnapshot &out,
                    std::string &error);

/**
 * The committed golden scenario set: fixed seeds spanning all four
 * Table II chipsets, eight-plus Table I models, every harness mode and
 * every framework path (CPU, GPU, Hexagon, NNAPI, SNPE), with and
 * without background load.
 */
const std::vector<Scenario> &goldenScenarios();

} // namespace aitax::verify

#endif // AITAX_VERIFY_GOLDEN_H
