/**
 * @file
 * Seeded scenario sampling for the verification subsystem.
 *
 * A Scenario is one fully-specified experiment: a (model x chipset x
 * framework x harness mode x background load) point with its own root
 * seed. Scenarios are sampled deterministically from a master seed, so
 * any failing configuration found by the fuzzer can be replayed
 * bit-exactly from the (master seed, index) pair it prints.
 */

#ifndef AITAX_VERIFY_SCENARIO_H
#define AITAX_VERIFY_SCENARIO_H

#include <cstdint>
#include <string>
#include <vector>

#include "app/pipeline.h"
#include "core/tax_report.h"
#include "faults/injector.h"
#include "sim/arena.h"
#include "sim/random.h"
#include "soc/fastrpc.h"

namespace aitax::verify {

/** One fully-specified verification experiment. */
struct Scenario
{
    std::string modelId = "mobilenet_v1";
    std::string socName = "Snapdragon 845";
    tensor::DType dtype = tensor::DType::Float32;
    app::FrameworkKind framework = app::FrameworkKind::TfliteCpu;
    app::HarnessMode mode = app::HarnessMode::AndroidApp;
    /** Pipeline iterations to schedule. */
    int runs = 10;
    /** Background inference processes contending for the DSP. */
    int dspLoadProcesses = 0;
    /** Background inference processes contending for the CPU. */
    int cpuLoadProcesses = 0;
    /** Streaming camera capture (depth-1 buffer) instead of on-demand. */
    bool streaming = false;
    /**
     * Arm the seeded fault injector (FaultConfig::fuzzDefaults()).
     * Never sampled — only `aitax_cli verify --faults` sets it, so the
     * plain fuzz corpus and the goldens are untouched.
     */
    bool faults = false;
    /** Root seed of the simulated system. */
    std::uint64_t seed = 1;

    /** Filesystem-safe identifier (also the golden file stem). */
    std::string label() const;

    /** One human-readable description line. */
    std::string describe() const;
};

/**
 * True if the combination is runnable: the model must support the
 * requested format/framework (Table I support matrix) and the SNPE
 * path has no transformer kernels.
 */
bool scenarioValid(const Scenario &s);

/**
 * Sample a random valid scenario (rejection sampling over the zoo,
 * the Table II chipsets, frameworks, harness modes and background
 * load levels).
 */
Scenario sampleScenario(sim::RandomStream &rng);

/**
 * The deterministic fuzz scenario @p index for @p master_seed.
 * fuzzScenario(s, i) is a pure function — the replay contract.
 */
Scenario fuzzScenario(std::uint64_t master_seed, int index);

/** The replay command for fuzz scenario @p index of @p master_seed. */
std::string replayCommand(std::uint64_t master_seed, int index);

/** Everything a scenario run produces that checks may need. */
struct ScenarioResult
{
    core::TaxReport report;
    std::vector<soc::FastRpcBreakdown> rpcLog;
    /** Full chrome://tracing JSON of the run (determinism witness). */
    std::string chromeTraceJson;
    /** Simulated time at quiescence. */
    sim::TimeNs endTimeNs = 0;
    /** Total energy over the run. */
    double energyMj = 0.0;
    /** Thermal clock multiplier at the end of the run, in (0, 1]. */
    double thermalSpeedFactor = 1.0;
    /** Background inferences completed across all load processes. */
    std::int64_t backgroundInferences = 0;
    /** Streaming-capture consumption witnesses (empty when off). */
    std::vector<app::FrameConsume> frameLog;
    /** Fault-injection tallies (all zero when faults are unarmed). */
    faults::FaultStats faultStats;
    /** Simulation events executed — campaign throughput numerator. */
    std::uint64_t eventsExecuted = 0;
};

/**
 * Whether a scenario may use the warm-up prefix snapshot cache, and if
 * not, why. Every CLI-benchmark run qualifies — including streaming
 * and background-load configurations: the warm-up prefix is quiet by
 * construction (background loops start only after the warm-up
 * completes, and streaming capture draws its arrival phase at
 * application construction, not during warm-up events), so the prefix
 * is a pure function of the cache key. The app-mode harnesses stay
 * ineligible because their interference interleaves with the warm-up.
 * Faulted runs stay eligible — the fault flag is part of the cache
 * key, and a snapshot is only applied when every emergency in the
 * run's own plan fires after the snapshot.
 */
enum class SnapshotUse
{
    Eligible,
    IneligibleMode, ///< harness mode schedules warm-up interference
};

SnapshotUse classifySnapshotUse(const Scenario &s);

/**
 * Canonical warm-up snapshot cache key (keying discipline of
 * models::cachedGraph): every scenario field that can influence the
 * post-warm-up state is in the key. The seed and run count are
 * deliberately absent — the warm-up prefix is seed-independent (only
 * the fixed-seed load-balance RNG draws before the first frame) and
 * run-count-independent (init work does not depend on n) — which is
 * exactly what makes the cache pay off across a fuzz corpus.
 */
std::string snapshotKey(const Scenario &s);

/**
 * Execute one scenario: build the platform, run the pipeline with any
 * configured background load, and collect the report plus witnesses.
 * Runs the Fast engine with warm-up memoization where eligible.
 */
ScenarioResult runScenario(const Scenario &s);

/**
 * Engine-explicit variant, the differential-test hook: Reference runs
 * the heap-only loop with no memoization; Fast runs the skip-ahead
 * engine with the snapshot cache. Both produce byte-identical results.
 */
ScenarioResult runScenario(const Scenario &s, sim::EngineMode engine);

/**
 * The calling thread's scenario arena: runScenario() bump-allocates
 * all per-run state (SocSystem, Application, tasks, background loops,
 * the fault injector) from it and resets it as the run ends, so
 * back-to-back runs on one thread — sweep workers, the fuzz loop —
 * reuse a single coalesced block with zero heap traffic. Exposed for
 * the allocation-regression test and --stats reporting.
 */
sim::Arena &scenarioArena();

} // namespace aitax::verify

#endif // AITAX_VERIFY_SCENARIO_H
