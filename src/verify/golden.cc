#include "verify/golden.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>

namespace aitax::verify {

namespace {

constexpr int kSchemaVersion = 1;

/** Round-trip-exact double literal. */
std::string
numberToken(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    return buf;
}

std::string
metricKey(core::Stage s)
{
    std::string key = "stage_";
    for (char c : core::stageName(s))
        key += c == '-' ? '_' : c;
    return key + "_mean_ms";
}

/** Minimal cursor over the snapshot's JSON subset. */
struct Cursor
{
    const std::string &text;
    std::size_t pos = 0;
    std::string error;

    void
    skipWs()
    {
        while (pos < text.size() &&
               std::isspace(static_cast<unsigned char>(text[pos])))
            ++pos;
    }

    bool
    fail(const std::string &msg)
    {
        error = msg + " at offset " + std::to_string(pos);
        return false;
    }

    bool
    expect(char c)
    {
        skipWs();
        if (pos >= text.size() || text[pos] != c)
            return fail(std::string("expected '") + c + "'");
        ++pos;
        return true;
    }

    bool
    parseString(std::string &out)
    {
        skipWs();
        if (pos >= text.size() || text[pos] != '"')
            return fail("expected string");
        ++pos;
        out.clear();
        while (pos < text.size() && text[pos] != '"') {
            if (text[pos] == '\\') {
                ++pos;
                if (pos >= text.size())
                    return fail("bad escape");
            }
            out += text[pos++];
        }
        if (pos >= text.size())
            return fail("unterminated string");
        ++pos;
        return true;
    }

    bool
    parseNumber(double &out)
    {
        skipWs();
        const char *start = text.c_str() + pos;
        char *end = nullptr;
        out = std::strtod(start, &end);
        if (end == start)
            return fail("expected number");
        pos += static_cast<std::size_t>(end - start);
        return true;
    }
};

} // namespace

GoldenSnapshot
snapshot(const Scenario &s, const ScenarioResult &result)
{
    GoldenSnapshot g;
    g.scenario = s.label();
    const auto &r = result.report;

    g.metrics["runs"] = static_cast<double>(r.runs());
    for (core::Stage st : core::kAllStages)
        g.metrics[metricKey(st)] = r.stageMeanMs(st);
    g.metrics["e2e_mean_ms"] = r.endToEndMeanMs();
    g.metrics["e2e_p50_ms"] = r.endToEnd().median();
    g.metrics["e2e_p95_ms"] = r.endToEnd().p95();
    g.metrics["tax_mean_ms"] = r.aiTaxMeanMs();
    g.metrics["tax_fraction"] = r.aiTaxFraction();

    g.metrics["rpc_calls"] = static_cast<double>(result.rpcLog.size());
    double overhead_ns = 0.0;
    for (const auto &call : result.rpcLog)
        overhead_ns += static_cast<double>(call.overheadNs());
    g.metrics["rpc_overhead_total_ms"] = overhead_ns / 1e6;

    g.metrics["energy_mj"] = result.energyMj;
    g.metrics["end_time_ms"] = sim::nsToMs(result.endTimeNs);
    g.metrics["background_inferences"] =
        static_cast<double>(result.backgroundInferences);
    return g;
}

std::string
toJson(const GoldenSnapshot &g)
{
    std::ostringstream os;
    os << "{\n";
    os << "  \"schema\": " << kSchemaVersion << ",\n";
    os << "  \"scenario\": \"" << g.scenario << "\",\n";
    os << "  \"metrics\": {\n";
    std::size_t i = 0;
    for (const auto &[key, value] : g.metrics) {
        os << "    \"" << key << "\": " << numberToken(value);
        if (++i < g.metrics.size())
            os << ",";
        os << "\n";
    }
    os << "  }\n";
    os << "}\n";
    return os.str();
}

bool
fromJson(const std::string &text, GoldenSnapshot &out, std::string &error)
{
    Cursor c{text, 0, {}};
    out = GoldenSnapshot{};
    double schema = 0.0;
    bool saw_schema = false;

    auto propagate = [&] {
        error = c.error;
        return false;
    };

    if (!c.expect('{'))
        return propagate();
    for (;;) {
        std::string key;
        if (!c.parseString(key) || !c.expect(':'))
            return propagate();
        if (key == "schema") {
            if (!c.parseNumber(schema))
                return propagate();
            saw_schema = true;
        } else if (key == "scenario") {
            if (!c.parseString(out.scenario))
                return propagate();
        } else if (key == "metrics") {
            if (!c.expect('{'))
                return propagate();
            c.skipWs();
            if (c.pos < text.size() && text[c.pos] == '}') {
                ++c.pos;
            } else {
                for (;;) {
                    std::string mkey;
                    double mval = 0.0;
                    if (!c.parseString(mkey) || !c.expect(':') ||
                        !c.parseNumber(mval))
                        return propagate();
                    out.metrics[mkey] = mval;
                    c.skipWs();
                    if (c.pos < text.size() && text[c.pos] == ',') {
                        ++c.pos;
                        continue;
                    }
                    break;
                }
                if (!c.expect('}'))
                    return propagate();
            }
        } else {
            error = "unknown key '" + key + "'";
            return false;
        }
        c.skipWs();
        if (c.pos < text.size() && text[c.pos] == ',') {
            ++c.pos;
            continue;
        }
        break;
    }
    if (!c.expect('}'))
        return propagate();
    if (!saw_schema || schema != kSchemaVersion) {
        error = "unsupported golden schema " + std::to_string(schema);
        return false;
    }
    if (out.scenario.empty()) {
        error = "snapshot has no scenario label";
        return false;
    }
    error.clear();
    return true;
}

std::vector<GoldenDiff>
compare(const GoldenSnapshot &expected, const GoldenSnapshot &actual,
        const CompareOptions &opts)
{
    std::vector<GoldenDiff> diffs;
    const double inf = std::numeric_limits<double>::infinity();

    for (const auto &[key, want] : expected.metrics) {
        const auto it = actual.metrics.find(key);
        if (it == actual.metrics.end()) {
            diffs.push_back({key, want, 0.0, inf});
            continue;
        }
        const double got = it->second;
        const double delta = std::abs(got - want);
        if (delta <= opts.absFloor)
            continue;
        const double rel =
            delta / std::max(std::abs(want), opts.absFloor);
        const auto tol_it = opts.perMetricTol.find(key);
        const double tol =
            tol_it != opts.perMetricTol.end() ? tol_it->second : opts.relTol;
        if (rel > tol)
            diffs.push_back({key, want, got, rel});
    }
    for (const auto &[key, got] : actual.metrics) {
        if (expected.metrics.find(key) == expected.metrics.end())
            diffs.push_back({key, 0.0, got, inf});
    }
    return diffs;
}

std::string
goldenFileName(const Scenario &s)
{
    return s.label() + ".json";
}

bool
writeGoldenFile(const std::string &path, const GoldenSnapshot &g)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out)
        return false;
    out << toJson(g);
    return static_cast<bool>(out);
}

bool
readGoldenFile(const std::string &path, GoldenSnapshot &out,
               std::string &error)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        error = "cannot open " + path;
        return false;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    return fromJson(buf.str(), out, error);
}

const std::vector<Scenario> &
goldenScenarios()
{
    using app::FrameworkKind;
    using app::HarnessMode;
    using tensor::DType;

    static const std::vector<Scenario> scenarios = [] {
        std::vector<Scenario> v;
        auto add = [&](const std::string &model, const std::string &soc,
                       DType dtype, FrameworkKind fw, HarnessMode mode,
                       int runs, std::uint64_t seed, int dsp_load = 0,
                       int cpu_load = 0) {
            Scenario s;
            s.modelId = model;
            s.socName = soc;
            s.dtype = dtype;
            s.framework = fw;
            s.mode = mode;
            s.runs = runs;
            s.seed = seed;
            s.dspLoadProcesses = dsp_load;
            s.cpuLoadProcesses = cpu_load;
            v.push_back(std::move(s));
        };

        // Ten Table I models across all four Table II chipsets, every
        // harness mode and every framework path.
        add("mobilenet_v1", "Snapdragon 845", DType::UInt8,
            FrameworkKind::TfliteHexagon, HarnessMode::AndroidApp, 12,
            101);
        add("mobilenet_v1", "Snapdragon 835", DType::Float32,
            FrameworkKind::TfliteCpu, HarnessMode::CliBenchmark, 12, 102);
        add("inception_v3", "Snapdragon 855", DType::Float32,
            FrameworkKind::TfliteGpu, HarnessMode::BenchmarkApp, 10, 103);
        add("inception_v4", "Snapdragon 865", DType::UInt8,
            FrameworkKind::SnpeDsp, HarnessMode::AndroidApp, 10, 104);
        add("efficientnet_lite0", "Snapdragon 845", DType::UInt8,
            FrameworkKind::TfliteNnapi, HarnessMode::AndroidApp, 12, 105);
        add("squeezenet", "Snapdragon 835", DType::Float32,
            FrameworkKind::TfliteNnapi, HarnessMode::CliBenchmark, 12,
            106);
        add("deeplab_v3", "Snapdragon 855", DType::Float32,
            FrameworkKind::TfliteCpu, HarnessMode::AndroidApp, 8, 107);
        add("ssd_mobilenet_v2", "Snapdragon 865", DType::UInt8,
            FrameworkKind::TfliteHexagon, HarnessMode::AndroidApp, 10,
            108);
        add("posenet", "Snapdragon 845", DType::Float32,
            FrameworkKind::TfliteGpu, HarnessMode::AndroidApp, 8, 109);
        add("mobile_bert", "Snapdragon 855", DType::Float32,
            FrameworkKind::TfliteCpu, HarnessMode::CliBenchmark, 6, 110);
        add("alexnet", "Snapdragon 835", DType::UInt8,
            FrameworkKind::TfliteCpu, HarnessMode::BenchmarkApp, 10, 111);
        // Multi-tenancy snapshots: DSP and CPU contention.
        add("mobilenet_v1", "Snapdragon 845", DType::UInt8,
            FrameworkKind::SnpeDsp, HarnessMode::AndroidApp, 10, 112, 2,
            0);
        add("inception_v3", "Snapdragon 865", DType::Float32,
            FrameworkKind::TfliteCpu, HarnessMode::AndroidApp, 8, 113, 0,
            2);
        return v;
    }();
    return scenarios;
}

} // namespace aitax::verify
