#include "verify/scenario.h"

#include <cassert>
#include <memory>
#include <sstream>

#include "app/background_load.h"
#include "soc/chipsets.h"
#include "trace/chrome_trace.h"

namespace aitax::verify {

namespace {

/** "Snapdragon 845" -> "sd845" (filesystem-safe platform tag). */
std::string
socTag(const std::string &soc_name)
{
    std::string digits;
    for (char c : soc_name)
        if (c >= '0' && c <= '9')
            digits += c;
    return digits.empty() ? std::string("soc") : "sd" + digits;
}

} // namespace

std::string
Scenario::label() const
{
    std::ostringstream os;
    os << modelId << "_" << socTag(socName) << "_"
       << tensor::dtypeName(dtype) << "_" << app::frameworkName(framework)
       << "_" << app::harnessModeName(mode) << "_r" << runs;
    if (dspLoadProcesses > 0)
        os << "_dsp" << dspLoadProcesses;
    if (cpuLoadProcesses > 0)
        os << "_cpu" << cpuLoadProcesses;
    if (streaming)
        os << "_stream";
    if (faults)
        os << "_flt";
    os << "_s" << seed;
    std::string out = os.str();
    for (char &c : out)
        if (c == '-')
            c = '_';
    return out;
}

std::string
Scenario::describe() const
{
    std::ostringstream os;
    os << modelId << " on " << socName << ", "
       << tensor::dtypeName(dtype) << "/" << app::frameworkName(framework)
       << ", mode=" << app::harnessModeName(mode) << ", runs=" << runs
       << ", bg(dsp=" << dspLoadProcesses << ",cpu=" << cpuLoadProcesses
       << ")";
    if (streaming)
        os << ", streaming";
    if (faults)
        os << ", faults";
    os << ", seed=" << seed;
    return os.str();
}

bool
scenarioValid(const Scenario &s)
{
    const auto *m = models::findModel(s.modelId);
    if (m == nullptr || s.runs <= 0)
        return false;
    if (tensor::isQuantized(s.dtype) && !m->cpuInt8)
        return false;
    if (s.framework == app::FrameworkKind::TfliteNnapi &&
        !m->supports(true, s.dtype))
        return false;
    // SNPE has no transformer kernels.
    if (s.framework == app::FrameworkKind::SnpeDsp &&
        m->task == models::Task::LanguageProcessing)
        return false;
    // The Hexagon delegate only ingests quantized graphs.
    if (s.framework == app::FrameworkKind::TfliteHexagon &&
        !tensor::isQuantized(s.dtype))
        return false;
    return true;
}

Scenario
sampleScenario(sim::RandomStream &rng)
{
    static const app::FrameworkKind kFrameworks[] = {
        app::FrameworkKind::TfliteCpu,     app::FrameworkKind::TfliteGpu,
        app::FrameworkKind::TfliteHexagon, app::FrameworkKind::TfliteNnapi,
        app::FrameworkKind::SnpeDsp,
    };
    static const app::HarnessMode kModes[] = {
        app::HarnessMode::CliBenchmark,
        app::HarnessMode::BenchmarkApp,
        app::HarnessMode::AndroidApp,
    };

    const auto &zoo = models::allModels();
    const auto platforms = soc::allPlatforms();

    for (;;) {
        Scenario s;
        s.modelId = zoo[static_cast<std::size_t>(rng.uniformInt(
                            0, static_cast<std::int64_t>(zoo.size()) - 1))]
                        .id;
        s.socName =
            platforms[static_cast<std::size_t>(rng.uniformInt(
                          0,
                          static_cast<std::int64_t>(platforms.size()) - 1))]
                .socName;
        s.dtype = rng.bernoulli(0.5) ? tensor::DType::Float32
                                     : tensor::DType::UInt8;
        s.framework = kFrameworks[rng.uniformInt(0, 4)];
        s.mode = kModes[rng.uniformInt(0, 2)];
        s.runs = static_cast<int>(rng.uniformInt(4, 12));
        s.dspLoadProcesses = static_cast<int>(rng.uniformInt(0, 2));
        s.cpuLoadProcesses = static_cast<int>(rng.uniformInt(0, 2));
        s.streaming = rng.bernoulli(0.25);
        s.seed = rng.nextU64() >> 1;
        if (scenarioValid(s))
            return s;
    }
}

Scenario
fuzzScenario(std::uint64_t master_seed, int index)
{
    sim::RandomStream rng(master_seed,
                          "verify-fuzz-" + std::to_string(index));
    return sampleScenario(rng);
}

std::string
replayCommand(std::uint64_t master_seed, int index)
{
    std::ostringstream os;
    os << "aitax_cli verify --seed " << master_seed << " --replay "
       << index;
    return os.str();
}

ScenarioResult
runScenario(const Scenario &s)
{
    assert(scenarioValid(s));
    soc::SocSystem sys(soc::platformByName(s.socName), s.seed);
    // Arm faults before any component forks the system RNG, so the
    // fault schedule is a pure function of (platform, seed).
    if (s.faults)
        sys.armFaults(faults::FaultConfig::fuzzDefaults());

    app::PipelineConfig cfg;
    cfg.model = models::findModel(s.modelId);
    cfg.dtype = s.dtype;
    cfg.framework = s.framework;
    cfg.mode = s.mode;
    cfg.streamingCapture = s.streaming;
    app::Application application(sys, cfg);

    std::vector<std::unique_ptr<app::BackgroundInferenceLoop>> loops;
    auto add_loops = [&](int count, app::FrameworkKind fw, int base_pid) {
        for (int i = 0; i < count; ++i) {
            app::BackgroundLoadConfig bg;
            bg.model = models::findModel("mobilenet_v1");
            bg.dtype = tensor::DType::UInt8;
            bg.framework = fw;
            bg.processId = base_pid + i;
            loops.push_back(
                std::make_unique<app::BackgroundInferenceLoop>(sys, bg));
            loops.back()->start(sim::secToNs(60.0));
        }
    };
    add_loops(s.dspLoadProcesses, app::FrameworkKind::TfliteHexagon, 100);
    add_loops(s.cpuLoadProcesses, app::FrameworkKind::TfliteCpu, 200);

    ScenarioResult out;
    application.scheduleRuns(s.runs, out.report, [&](sim::TimeNs) {
        for (auto &loop : loops)
            loop->stop();
    });
    out.endTimeNs = sys.run();

    out.rpcLog = application.rpcLog();
    out.frameLog = application.frameLog();
    if (sys.faults() != nullptr)
        out.faultStats = sys.faults()->stats();
    out.energyMj = sys.energy().totalMj();
    out.thermalSpeedFactor = sys.thermal().speedFactor();
    for (const auto &loop : loops)
        out.backgroundInferences += loop->completedInferences();

    std::ostringstream trace;
    trace::writeChromeTrace(trace, sys.tracer());
    out.chromeTraceJson = trace.str();
    return out;
}

} // namespace aitax::verify
