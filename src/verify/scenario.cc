#include "verify/scenario.h"

#include <cassert>
#include <memory>
#include <sstream>

#include "app/background_load.h"
#include "soc/chipsets.h"
#include "sweep/snapshot_cache.h"
#include "trace/chrome_trace.h"

namespace aitax::verify {

namespace {

/** "Snapdragon 845" -> "sd845" (filesystem-safe platform tag). */
std::string
socTag(const std::string &soc_name)
{
    std::string digits;
    for (char c : soc_name)
        if (c >= '0' && c <= '9')
            digits += c;
    return digits.empty() ? std::string("soc") : "sd" + digits;
}

} // namespace

std::string
Scenario::label() const
{
    std::ostringstream os;
    os << modelId << "_" << socTag(socName) << "_"
       << tensor::dtypeName(dtype) << "_" << app::frameworkName(framework)
       << "_" << app::harnessModeName(mode) << "_r" << runs;
    if (dspLoadProcesses > 0)
        os << "_dsp" << dspLoadProcesses;
    if (cpuLoadProcesses > 0)
        os << "_cpu" << cpuLoadProcesses;
    if (streaming)
        os << "_stream";
    if (faults)
        os << "_flt";
    os << "_s" << seed;
    std::string out = os.str();
    for (char &c : out)
        if (c == '-')
            c = '_';
    return out;
}

std::string
Scenario::describe() const
{
    std::ostringstream os;
    os << modelId << " on " << socName << ", "
       << tensor::dtypeName(dtype) << "/" << app::frameworkName(framework)
       << ", mode=" << app::harnessModeName(mode) << ", runs=" << runs
       << ", bg(dsp=" << dspLoadProcesses << ",cpu=" << cpuLoadProcesses
       << ")";
    if (streaming)
        os << ", streaming";
    if (faults)
        os << ", faults";
    os << ", seed=" << seed;
    return os.str();
}

bool
scenarioValid(const Scenario &s)
{
    const auto *m = models::findModel(s.modelId);
    if (m == nullptr || s.runs <= 0)
        return false;
    if (tensor::isQuantized(s.dtype) && !m->cpuInt8)
        return false;
    if (s.framework == app::FrameworkKind::TfliteNnapi &&
        !m->supports(true, s.dtype))
        return false;
    // SNPE has no transformer kernels.
    if (s.framework == app::FrameworkKind::SnpeDsp &&
        m->task == models::Task::LanguageProcessing)
        return false;
    // The Hexagon delegate only ingests quantized graphs.
    if (s.framework == app::FrameworkKind::TfliteHexagon &&
        !tensor::isQuantized(s.dtype))
        return false;
    return true;
}

Scenario
sampleScenario(sim::RandomStream &rng)
{
    static const app::FrameworkKind kFrameworks[] = {
        app::FrameworkKind::TfliteCpu,     app::FrameworkKind::TfliteGpu,
        app::FrameworkKind::TfliteHexagon, app::FrameworkKind::TfliteNnapi,
        app::FrameworkKind::SnpeDsp,
    };
    static const app::HarnessMode kModes[] = {
        app::HarnessMode::CliBenchmark,
        app::HarnessMode::BenchmarkApp,
        app::HarnessMode::AndroidApp,
    };

    const auto &zoo = models::allModels();
    const auto platforms = soc::allPlatforms();

    for (;;) {
        Scenario s;
        s.modelId = zoo[static_cast<std::size_t>(rng.uniformInt(
                            0, static_cast<std::int64_t>(zoo.size()) - 1))]
                        .id;
        s.socName =
            platforms[static_cast<std::size_t>(rng.uniformInt(
                          0,
                          static_cast<std::int64_t>(platforms.size()) - 1))]
                .socName;
        s.dtype = rng.bernoulli(0.5) ? tensor::DType::Float32
                                     : tensor::DType::UInt8;
        s.framework = kFrameworks[rng.uniformInt(0, 4)];
        s.mode = kModes[rng.uniformInt(0, 2)];
        s.runs = static_cast<int>(rng.uniformInt(4, 12));
        s.dspLoadProcesses = static_cast<int>(rng.uniformInt(0, 2));
        s.cpuLoadProcesses = static_cast<int>(rng.uniformInt(0, 2));
        s.streaming = rng.bernoulli(0.25);
        s.seed = rng.nextU64() >> 1;
        if (scenarioValid(s))
            return s;
    }
}

Scenario
fuzzScenario(std::uint64_t master_seed, int index)
{
    sim::RandomStream rng(master_seed,
                          "verify-fuzz-" + std::to_string(index));
    return sampleScenario(rng);
}

std::string
replayCommand(std::uint64_t master_seed, int index)
{
    std::ostringstream os;
    os << "aitax_cli verify --seed " << master_seed << " --replay "
       << index;
    return os.str();
}

SnapshotUse
classifySnapshotUse(const Scenario &s)
{
    // Streaming and background-load runs are deliberately NOT excluded:
    // their warm-up prefix is identical to the quiet one (loops start
    // post-warm-up, stream phase is drawn at construction), and the key
    // still separates them so unlike configurations never share an
    // entry.
    if (s.mode != app::HarnessMode::CliBenchmark)
        return SnapshotUse::IneligibleMode;
    return SnapshotUse::Eligible;
}

std::string
snapshotKey(const Scenario &s)
{
    std::ostringstream os;
    os << "warmup-v2|soc=" << s.socName << "|model=" << s.modelId
       << "|dtype=" << tensor::dtypeName(s.dtype)
       << "|fw=" << app::frameworkName(s.framework)
       << "|mode=" << app::harnessModeName(s.mode)
       << "|stream=" << (s.streaming ? 1 : 0)
       << "|dspload=" << s.dspLoadProcesses
       << "|cpuload=" << s.cpuLoadProcesses
       << "|faults=" << (s.faults ? 1 : 0);
    return os.str();
}

sim::Arena &
scenarioArena()
{
    static thread_local sim::Arena arena;
    return arena;
}

namespace {

app::PipelineConfig
pipelineConfigFor(const Scenario &s)
{
    app::PipelineConfig cfg;
    cfg.model = models::findModel(s.modelId);
    cfg.dtype = s.dtype;
    cfg.framework = s.framework;
    cfg.mode = s.mode;
    cfg.streamingCapture = s.streaming;
    return cfg;
}

/**
 * Arena-construct the scenario's background inference loops (not
 * started — the caller decides when, which is what keeps the warm-up
 * prefix load-independent). Construction is inert: no RNG draws, no
 * event scheduling, so building them before the warm-up changes
 * nothing observable.
 */
std::vector<app::BackgroundInferenceLoop *>
buildLoops(sim::Arena &arena, soc::SocSystem &sys, const Scenario &s)
{
    std::vector<app::BackgroundInferenceLoop *> loops;
    auto add = [&](int count, app::FrameworkKind fw, int base_pid) {
        for (int i = 0; i < count; ++i) {
            app::BackgroundLoadConfig bg;
            bg.model = models::findModel("mobilenet_v1");
            bg.dtype = tensor::DType::UInt8;
            bg.framework = fw;
            bg.processId = base_pid + i;
            loops.push_back(
                arena.create<app::BackgroundInferenceLoop>(sys, bg));
        }
    };
    add(s.dspLoadProcesses, app::FrameworkKind::TfliteHexagon, 100);
    add(s.cpuLoadProcesses, app::FrameworkKind::TfliteCpu, 200);
    return loops;
}

/** Everything after quiescence: witnesses, meters, the trace. */
void
collectResult(soc::SocSystem &sys, app::Application &application,
              ScenarioResult &out)
{
    out.rpcLog = application.rpcLog();
    out.frameLog = application.frameLog();
    if (sys.faults() != nullptr)
        out.faultStats = sys.faults()->stats();
    out.energyMj = sys.energy().totalMj();
    out.thermalSpeedFactor = sys.thermal().speedFactor();
    out.eventsExecuted = sys.simulator().eventsExecuted();
    std::ostringstream trace;
    trace::writeChromeTrace(trace, sys.tracer());
    out.chromeTraceJson = trace.str();
}

/**
 * True when @p snap can stand in for this system's own warm-up: every
 * thermal emergency in the armed plan must fire strictly after the
 * snapshot time, otherwise the emergency would have altered (or
 * interleaved with) the warm-up this run is about to skip.
 */
bool
snapshotUsable(const faults::FaultInjector *inj,
               const soc::WarmupSnapshot &snap)
{
    if (inj == nullptr)
        return true;
    for (sim::TimeNs when : inj->plan().thermalEmergencyAtNs)
        if (when <= snap.endTimeNs)
            return false;
    return true;
}

/**
 * Fast-engine path for snapshot-eligible scenarios: restore a cached
 * post-warm-up state when one exists and fits this run's fault plan,
 * otherwise execute the warm-up via the split schedule API and publish
 * the capture. Falls back to executing the warm-up (never to wrong
 * results) whenever capture or reuse is not possible. Background
 * loops are constructed before the warm-up (inert) and started after
 * it, exactly like the Reference CLI path, so a cache hit replays the
 * same post-warm-up schedule a cache-free run would produce.
 */
ScenarioResult
runScenarioMemoized(const Scenario &s, sim::Arena &arena)
{
    const std::string key = snapshotKey(s);
    auto cached = std::static_pointer_cast<const soc::WarmupSnapshot>(
        sweep::snapshotCacheLookup(key));

    soc::SocSystem &sys = *arena.create<soc::SocSystem>(
        soc::platformByName(s.socName), s.seed, sim::EngineMode::Fast,
        &arena);
    if (s.faults)
        sys.armFaults(faults::FaultConfig::fuzzDefaults());
    // Seq watermark after fault arming, before any warm-up work: the
    // base that snapshot seqs are stored (and restored) relative to.
    const std::uint64_t seq_base = sys.simulator().seqWatermark();
    app::Application &application =
        *arena.create<app::Application>(sys, pipelineConfigFor(s));
    auto loops = buildLoops(arena, sys, s);

    ScenarioResult out;
    if (cached && snapshotUsable(sys.faults(), *cached)) {
        sys.restoreWarmup(*cached);
        application.adoptRestoredWarmup();
    } else {
        application.scheduleWarmup(s.runs, out.report);
        sys.simulator().runUntilCondition(
            [&application] { return application.warmupComplete(); });
        if (!cached) {
            auto snap = std::make_shared<soc::WarmupSnapshot>();
            if (sys.captureWarmup(*snap, seq_base))
                sweep::snapshotCacheStore(key, std::move(snap));
        }
    }
    for (auto *loop : loops)
        loop->start(sys.simulator().now() + sim::secToNs(60.0));
    application.scheduleFramesAfterWarmup(s.runs, out.report,
                                          [&loops](sim::TimeNs) {
                                              for (auto *loop : loops)
                                                  loop->stop();
                                          });
    out.endTimeNs = sys.run();
    collectResult(sys, application, out);
    for (const auto *loop : loops)
        out.backgroundInferences += loop->completedInferences();
    return out;
}

/**
 * Engine-explicit path without memoization. CLI-benchmark scenarios
 * still run the split warm-up schedule (warm-up, then background-loop
 * start, then frames) so that the Reference engine produces the exact
 * event sequence the memoized Fast path replays — the byte-compare
 * contract of the differential tier. App-mode scenarios keep the
 * single-shot schedule: their interference interleaves with the
 * warm-up by design.
 */
ScenarioResult
runScenarioDirect(const Scenario &s, sim::EngineMode engine,
                  sim::Arena &arena)
{
    soc::SocSystem &sys = *arena.create<soc::SocSystem>(
        soc::platformByName(s.socName), s.seed, engine, &arena);
    // Arm faults before any component forks the system RNG, so the
    // fault schedule is a pure function of (platform, seed).
    if (s.faults)
        sys.armFaults(faults::FaultConfig::fuzzDefaults());

    app::Application &application =
        *arena.create<app::Application>(sys, pipelineConfigFor(s));
    auto loops = buildLoops(arena, sys, s);

    ScenarioResult out;
    auto stop_loops = [&loops](sim::TimeNs) {
        for (auto *loop : loops)
            loop->stop();
    };
    if (s.mode == app::HarnessMode::CliBenchmark) {
        application.scheduleWarmup(s.runs, out.report);
        sys.simulator().runUntilCondition(
            [&application] { return application.warmupComplete(); });
        for (auto *loop : loops)
            loop->start(sys.simulator().now() + sim::secToNs(60.0));
        application.scheduleFramesAfterWarmup(s.runs, out.report,
                                              stop_loops);
    } else {
        for (auto *loop : loops)
            loop->start(sim::secToNs(60.0));
        application.scheduleRuns(s.runs, out.report, stop_loops);
    }
    out.endTimeNs = sys.run();

    collectResult(sys, application, out);
    for (const auto *loop : loops)
        out.backgroundInferences += loop->completedInferences();
    return out;
}

} // namespace

ScenarioResult
runScenario(const Scenario &s, sim::EngineMode engine)
{
    assert(scenarioValid(s));
    // All run state lives in the thread's arena; the guard resets it
    // (running registered finalizers in reverse creation order) after
    // the result — which holds no pointers into the arena — is out.
    sim::Arena &arena = scenarioArena();
    sim::ArenaResetGuard guard(arena);
    if (engine == sim::EngineMode::Fast &&
        classifySnapshotUse(s) == SnapshotUse::Eligible)
        return runScenarioMemoized(s, arena);
    return runScenarioDirect(s, engine, arena);
}

ScenarioResult
runScenario(const Scenario &s)
{
    return runScenario(s, sim::EngineMode::Fast);
}

} // namespace aitax::verify
