#include "soc/energy.h"

#include <cassert>

namespace aitax::soc {

std::string_view
powerDomainName(PowerDomain d)
{
    switch (d) {
      case PowerDomain::BigCpu: return "big-cpu";
      case PowerDomain::LittleCpu: return "little-cpu";
      case PowerDomain::Gpu: return "gpu";
      case PowerDomain::Dsp: return "dsp";
    }
    return "unknown";
}

double
EnergyConfig::pjPerOp(PowerDomain d) const
{
    switch (d) {
      case PowerDomain::BigCpu: return bigCpuPjPerOp;
      case PowerDomain::LittleCpu: return littleCpuPjPerOp;
      case PowerDomain::Gpu: return gpuPjPerOp;
      case PowerDomain::Dsp: return dspPjPerOp;
    }
    return 0.0;
}

double
EnergyConfig::staticMw(PowerDomain d) const
{
    switch (d) {
      case PowerDomain::BigCpu: return bigCpuStaticMw;
      case PowerDomain::LittleCpu: return littleCpuStaticMw;
      case PowerDomain::Gpu: return gpuStaticMw;
      case PowerDomain::Dsp: return dspStaticMw;
    }
    return 0.0;
}

EnergyMeter::EnergyMeter(EnergyConfig cfg)
    : cfg(cfg)
{
}

std::size_t
EnergyMeter::index(PowerDomain d)
{
    return static_cast<std::size_t>(d);
}

void
EnergyMeter::addDynamic(PowerDomain domain, double ops)
{
    assert(ops >= 0.0);
    joules[index(domain)] += ops * cfg.pjPerOp(domain) * 1e-12;
}

void
EnergyMeter::addStatic(PowerDomain domain, sim::DurationNs busy)
{
    assert(busy >= 0);
    const double sec = static_cast<double>(busy) / sim::kNsPerSec;
    joules[index(domain)] += cfg.staticMw(domain) * 1e-3 * sec;
}

double
EnergyMeter::domainMj(PowerDomain domain) const
{
    return joules[index(domain)] * 1e3;
}

double
EnergyMeter::totalMj() const
{
    double total = 0.0;
    for (double j : joules)
        total += j;
    return total * 1e3;
}

void
EnergyMeter::reset()
{
    joules.fill(0.0);
}

} // namespace aitax::soc
