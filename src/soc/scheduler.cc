#include "soc/scheduler.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace aitax::soc {

OsScheduler::OsScheduler(sim::Simulator &sim, const CpuClusterConfig &cfg,
                         ThermalModel &thermal, trace::Tracer &tracer,
                         EnergyMeter *energy, DvfsGovernor *dvfs,
                         MemoryFabric *fabric)
    : sim(sim), cfg(cfg), thermal(thermal), tracer(tracer),
      energy(energy), dvfs(dvfs), fabric(fabric),
      balanceRng(0xA17Au, "os-load-balance")
{
    assert(!cfg.cores.empty());
    cores.reserve(cfg.cores.size());
    for (const auto &core_cfg : cfg.cores) {
        cores.push_back(Core{core_cfg, nullptr, 0, 0, 0,
                             tracer.internTrack(core_cfg.name)});
    }
    migrationKind_ = tracer.internEventKind("migration");
    ctxSwitchKind_ = tracer.internEventKind("context_switch");
    axiCounter_ = tracer.internCounter("axi_bytes");
}

std::size_t
OsScheduler::runningCount() const
{
    std::size_t n = 0;
    for (const auto &c : cores)
        if (c.running)
            ++n;
    return n;
}

void
OsScheduler::submit(std::shared_ptr<Task> task)
{
    assert(task);
    assert(task->state() == TaskState::Created);
    makeReady(std::move(task));
}

void
OsScheduler::resumeBlocked(void *self, std::shared_ptr<Task> task)
{
    auto *sched = static_cast<OsScheduler *>(self);
    sched->sim.scheduleIn(
        0, [sched, task = std::move(task)] { sched->makeReady(task); });
}

void
OsScheduler::makeReady(std::shared_ptr<Task> task)
{
    if (task->state() == TaskState::Done)
        return;
    assert(task->state() != TaskState::Ready &&
           task->state() != TaskState::Running);
    task->setState(TaskState::Ready);
    runQueue.push_back(std::move(task));
    tryDispatch();
}

int
OsScheduler::pickCore(const Task &task) const
{
    // Foreground tasks take the fastest idle core (EAS-style up-
    // migration), background tasks the slowest; the previous core
    // breaks ties so hot caches are reused within a tier.
    int best = -1;
    double best_rate = 0.0;
    for (std::size_t i = 0; i < cores.size(); ++i) {
        if (cores[i].running)
            continue;
        const double rate =
            cores[i].cfg.freqGhz * cores[i].cfg.f32OpsPerCycle;
        bool better;
        if (best < 0) {
            better = true;
        } else if (rate != best_rate) {
            better = task.isBackground() ? rate < best_rate
                                         : rate > best_rate;
        } else {
            better = static_cast<int>(i) == task.lastCore();
        }
        if (better) {
            best = static_cast<int>(i);
            best_rate = rate;
        }
    }
    return best;
}

void
OsScheduler::tryDispatch()
{
    while (!runQueue.empty()) {
        const int core_idx = pickCore(*runQueue.front());
        if (core_idx < 0)
            return;
        auto task = std::move(runQueue.front());
        runQueue.pop_front();
        dispatch(core_idx, std::move(task));
    }
}

void
OsScheduler::dispatch(int core_idx, std::shared_ptr<Task> task)
{
    Core &core = cores[static_cast<std::size_t>(core_idx)];
    assert(!core.running);
    const bool migrated =
        task->lastCore() >= 0 && task->lastCore() != core_idx;
    if (migrated) {
        ++migrations_;
        if (tracer.isEnabled())
            tracer.recordEvent(migrationKind_, task->traceLabel(tracer),
                               sim.now());
    }
    task->setLastCore(core_idx);
    task->setState(TaskState::Running);
    core.running = std::move(task);
    core.runStart = sim.now();
    if (dvfs)
        dvfs->onBusyChange(core.cfg.big, +1);
    if (fabric)
        fabric->onClientChange(+1);

    const sim::DurationNs overhead =
        cfg.contextSwitchNs + (migrated ? cfg.migrationNs : 0);
    core.sliceEnd = sim.now() + overhead + cfg.timeSliceNs;
    core.pendingEvent =
        sim.scheduleIn(overhead, [this, core_idx] { runFront(core_idx); });
}

void
OsScheduler::leaveCore(int core_idx)
{
    Core &core = cores[static_cast<std::size_t>(core_idx)];
    assert(core.running);
    if (tracer.isEnabled())
        tracer.recordInterval(core.track,
                              core.running->traceLabel(tracer),
                              core.runStart, sim.now());
    core.running = nullptr;
    core.pendingEvent = 0;
    if (dvfs)
        dvfs->onBusyChange(core.cfg.big, -1);
    if (fabric)
        fabric->onClientChange(-1);
}

void
OsScheduler::runFront(int core_idx)
{
    Core &core = cores[static_cast<std::size_t>(core_idx)];
    auto task = core.running;
    assert(task);

    while (true) {
        if (!task->hasSteps()) {
            leaveCore(core_idx);
            task->finish(sim.now());
            tryDispatch();
            return;
        }

        TaskStep &step = task->frontStep();

        if (auto *marker = std::get_if<MarkerStep>(&step)) {
            auto fn = std::move(marker->fn);
            task->popStep();
            if (fn)
                fn(sim.now());
            continue;
        }

        if (auto *sleep = std::get_if<SleepStep>(&step)) {
            const sim::DurationNs duration = sleep->duration;
            task->popStep();
            leaveCore(core_idx);
            task->setState(TaskState::Blocked);
            sim.scheduleIn(duration, [this, task] { makeReady(task); });
            tryDispatch();
            return;
        }

        if (auto *blocked = std::get_if<BlockStep>(&step)) {
            auto start = std::move(blocked->start);
            task->popStep();
            leaveCore(core_idx);
            task->setState(TaskState::Blocked);
            // The resume token owns the task while it is blocked and
            // re-enters the scheduler via a fresh event (resumeBlocked)
            // so a synchronous resume inside start() cannot re-enter us.
            start(*task, BlockResume(&OsScheduler::resumeBlocked, this,
                                     task));
            tryDispatch();
            return;
        }

        startCompute(core_idx, std::get<ComputeStep>(step));
        return;
    }
}

sim::DurationNs
OsScheduler::computeDuration(const Core &core,
                             const ComputeStep &step) const
{
    double factor = const_cast<ThermalModel &>(thermal).speedFactor();
    if (dvfs)
        factor *= const_cast<DvfsGovernor *>(dvfs)->factor(core.cfg.big);
    const double ops_rate = core.cfg.freqGhz * 1e9 *
                            core.cfg.opsPerCycle(step.cls) * factor;
    double byte_rate = core.cfg.memBytesPerSec * factor;
    if (fabric)
        byte_rate *= fabric->derateFactor();
    const double ops = step.work.flops * step.remaining;
    const double bytes = step.work.bytes * step.remaining;
    const double sec =
        std::max(ops / ops_rate, bytes / byte_rate);
    const auto ns = static_cast<sim::DurationNs>(std::ceil(sec * 1e9));
    return std::max<sim::DurationNs>(ns, 1);
}

void
OsScheduler::startCompute(int core_idx, ComputeStep &step)
{
    Core &core = cores[static_cast<std::size_t>(core_idx)];
    auto task = core.running;
    assert(task);

    const sim::DurationNs duration = computeDuration(core, step);
    const sim::DurationNs slice_rem =
        std::max<sim::DurationNs>(core.sliceEnd - sim.now(), 0);

    if (duration <= slice_rem) {
        // Step completes within the slice.
        core.pendingEvent = sim.scheduleIn(duration, [this, core_idx,
                                                      duration] {
            finishComputeSlice(core_idx, sim.now() - duration, duration);
            Core &c = cores[static_cast<std::size_t>(core_idx)];
            auto &st = std::get<ComputeStep>(c.running->frontStep());
            st.remaining = 0.0;
            c.running->popStep();
            runFront(core_idx);
        });
        return;
    }

    // Slice expires first.
    core.pendingEvent = sim.scheduleIn(slice_rem, [this, core_idx,
                                                   duration, slice_rem] {
        finishComputeSlice(core_idx, sim.now() - slice_rem, slice_rem);
        Core &c = cores[static_cast<std::size_t>(core_idx)];
        auto task = c.running;
        auto &st = std::get<ComputeStep>(task->frontStep());
        const double frac =
            static_cast<double>(slice_rem) / static_cast<double>(duration);
        st.remaining *= std::max(0.0, 1.0 - frac);

        if (runQueue.empty()) {
            const int dest = balanceTarget(core_idx, *task);
            if (dest >= 0) {
                leaveCore(core_idx);
                task->setState(TaskState::Ready);
                dispatch(dest, std::move(task));
                return;
            }
            // Nothing else to run: renew the slice in place, free of
            // context-switch cost.
            c.sliceEnd = sim.now() + cfg.timeSliceNs;
            startCompute(core_idx, st);
            return;
        }
        ++ctxSwitches;
        if (tracer.isEnabled())
            tracer.recordEvent(ctxSwitchKind_,
                               task->traceLabel(tracer), sim.now());
        leaveCore(core_idx);
        task->setState(TaskState::Ready);
        runQueue.push_back(task);
        tryDispatch();
    });
}

void
OsScheduler::finishComputeSlice(int core_idx, sim::TimeNs started,
                                sim::DurationNs full_duration)
{
    Core &core = cores[static_cast<std::size_t>(core_idx)];
    auto task = core.running;
    assert(task);
    (void)started;

    const auto &st = std::get<ComputeStep>(task->frontStep());
    // Portion of the step's total byte traffic this slice covered.
    const sim::DurationNs total = computeDuration(core, st);
    const double frac_of_remaining =
        total > 0 ? std::min(1.0, static_cast<double>(full_duration) /
                                      static_cast<double>(total))
                  : 1.0;
    const double bytes = st.work.bytes * st.remaining * frac_of_remaining;
    if (bytes > 0)
        tracer.recordCounter(axiCounter_, sim.now(), bytes);

    if (energy) {
        const PowerDomain domain = core.cfg.big
                                       ? PowerDomain::BigCpu
                                       : PowerDomain::LittleCpu;
        energy->addDynamic(domain, st.work.flops * st.remaining *
                                       frac_of_remaining);
        energy->addStatic(domain, full_duration);
    }

    const double busy_sec =
        static_cast<double>(full_duration) / sim::kNsPerSec;
    thermal.addHeat(busy_sec * (core.cfg.big ? 1.0 : 0.4));
}


int
OsScheduler::balanceTarget(int core_idx, const Task &task)
{
    const Core &core = cores[static_cast<std::size_t>(core_idx)];
    const double my_rate = core.cfg.freqGhz * core.cfg.f32OpsPerCycle;

    // EAS-style up-migration: a foreground task displaced to a slow
    // core moves as soon as a faster core goes idle.
    if (!task.isBackground()) {
        for (std::size_t i = 0; i < cores.size(); ++i) {
            if (!cores[i].running &&
                cores[i].cfg.freqGhz * cores[i].cfg.f32OpsPerCycle >
                    my_rate) {
                return static_cast<int>(i);
            }
        }
    }

    // Kernel load balancing occasionally bounces a lone task between
    // idle cores of the same tier (Fig 6's migration churn).
    if (cfg.loadBalanceProb > 0.0 &&
        balanceRng.bernoulli(cfg.loadBalanceProb)) {
        std::vector<int> candidates;
        for (std::size_t i = 0; i < cores.size(); ++i) {
            if (static_cast<int>(i) == core_idx || cores[i].running)
                continue;
            if (cores[i].cfg.freqGhz * cores[i].cfg.f32OpsPerCycle ==
                my_rate) {
                candidates.push_back(static_cast<int>(i));
            }
        }
        if (!candidates.empty()) {
            const auto pick = balanceRng.uniformInt(
                0, static_cast<std::int64_t>(candidates.size()) - 1);
            return candidates[static_cast<std::size_t>(pick)];
        }
    }
    return -1;
}

OsScheduler::WarmupState
OsScheduler::warmupState() const
{
    assert(idle());
    WarmupState s;
    s.balanceRng = balanceRng.state();
    s.ctxSwitches = ctxSwitches;
    s.migrations = migrations_;
    s.coreTimes.reserve(cores.size());
    for (const Core &c : cores)
        s.coreTimes.emplace_back(c.runStart, c.sliceEnd);
    return s;
}

void
OsScheduler::setWarmupState(const WarmupState &s)
{
    assert(idle());
    assert(s.coreTimes.size() == cores.size());
    balanceRng.setState(s.balanceRng);
    ctxSwitches = s.ctxSwitches;
    migrations_ = s.migrations;
    for (std::size_t i = 0; i < cores.size(); ++i) {
        // pendingEvent is pure bookkeeping (nothing ever cancels
        // through it) and an idle core has no live slice event, so the
        // restored core starts with none.
        cores[i].pendingEvent = 0;
        cores[i].runStart = s.coreTimes[i].first;
        cores[i].sliceEnd = s.coreTimes[i].second;
    }
}

} // namespace aitax::soc
