#include "soc/thermal.h"

#include <algorithm>
#include <cmath>

namespace aitax::soc {

ThermalModel::ThermalModel(const ThermalConfig &cfg, sim::Simulator &sim)
    : cfg(cfg), sim(sim)
{
}

void
ThermalModel::cool()
{
    const sim::TimeNs now = sim.now();
    if (now > lastUpdate && heat > 0.0) {
        const double dt =
            static_cast<double>(now - lastUpdate) / sim::kNsPerSec;
        heat *= std::exp(-dt / cfg.coolingTauSec);
    }
    lastUpdate = now;
}

void
ThermalModel::addHeat(double busy_sec)
{
    if (!cfg.enabled)
        return;
    cool();
    heat += busy_sec * cfg.heatPerBusySec;
}

void
ThermalModel::triggerEmergency(double heat_spike)
{
    cfg.enabled = true;
    cool();
    heat += heat_spike;
}

double
ThermalModel::heatLevel()
{
    cool();
    return heat;
}

double
ThermalModel::speedFactor()
{
    if (!cfg.enabled)
        return 1.0;
    cool();
    if (heat <= cfg.throttleThreshold)
        return 1.0;
    const double excess =
        (heat - cfg.throttleThreshold) / cfg.throttleThreshold;
    const double t = std::clamp(excess, 0.0, 1.0);
    return 1.0 + t * (cfg.throttledFactor - 1.0);
}

void
ThermalModel::reset()
{
    heat = 0.0;
    lastUpdate = sim.now();
}

} // namespace aitax::soc
