/**
 * @file
 * OS CPU scheduler model.
 *
 * A round-robin, time-sliced scheduler over a big.LITTLE core complex,
 * with per-dispatch context-switch cost and a cache-warmup penalty on
 * core migration. This is deliberately simpler than CFS but reproduces
 * the behaviours the paper attributes to the Android scheduler:
 * single-thread fallback pathologies, frequent migrations under load
 * (Fig 6), and pre-processing slowdown under CPU multi-tenancy
 * (Fig 10).
 */

#ifndef AITAX_SOC_SCHEDULER_H
#define AITAX_SOC_SCHEDULER_H

#include <cstdint>
#include <deque>
#include <memory>
#include <utility>
#include <vector>

#include "sim/random.h"
#include "sim/simulator.h"
#include "soc/dvfs.h"
#include "soc/energy.h"
#include "soc/memory.h"
#include "soc/soc_config.h"
#include "soc/task.h"
#include "soc/thermal.h"
#include "trace/tracer.h"

namespace aitax::soc {

/**
 * Round-robin scheduler over the CPU cluster.
 */
class OsScheduler
{
  public:
    OsScheduler(sim::Simulator &sim, const CpuClusterConfig &cfg,
                ThermalModel &thermal, trace::Tracer &tracer,
                EnergyMeter *energy = nullptr,
                DvfsGovernor *dvfs = nullptr,
                MemoryFabric *fabric = nullptr);

    OsScheduler(const OsScheduler &) = delete;
    OsScheduler &operator=(const OsScheduler &) = delete;

    /** Submit a task for execution. */
    void submit(std::shared_ptr<Task> task);

    /** Tasks currently queued (not running, not blocked). */
    std::size_t queuedCount() const { return runQueue.size(); }

    /** Tasks currently on a core. */
    std::size_t runningCount() const;

    std::size_t coreCount() const { return cores.size(); }

    /** Lifetime counters for tests and Fig 6 annotations. */
    std::int64_t contextSwitches() const { return ctxSwitches; }
    std::int64_t migrations() const { return migrations_; }

    /** True when nothing is running or queued. */
    bool idle() const { return runningCount() == 0 && runQueue.empty(); }

    /**
     * Scheduler state carried across a warm-up prefix snapshot: the
     * load-balance RNG position (its draw sequence must continue where
     * the warm-up left off), the lifetime counters, and per-core
     * run/slice bookkeeping. Only valid while idle() — running tasks
     * and pending slice events are not snapshotable.
     */
    struct WarmupState
    {
        sim::RandomStream::State balanceRng{};
        std::int64_t ctxSwitches = 0;
        std::int64_t migrations = 0;
        /** Per-core (runStart, sliceEnd) pairs. */
        std::vector<std::pair<sim::TimeNs, sim::TimeNs>> coreTimes;
    };

    WarmupState warmupState() const;
    void setWarmupState(const WarmupState &s);

  private:
    struct Core
    {
        CpuCoreConfig cfg;
        std::shared_ptr<Task> running;
        sim::EventId pendingEvent = 0;
        sim::TimeNs runStart = 0;
        sim::TimeNs sliceEnd = 0;
        trace::TrackId track; ///< interned at construction
    };

    sim::Simulator &sim;
    CpuClusterConfig cfg;
    ThermalModel &thermal;
    trace::Tracer &tracer;
    EnergyMeter *energy;
    DvfsGovernor *dvfs;
    MemoryFabric *fabric;
    std::vector<Core> cores;
    std::deque<std::shared_ptr<Task>> runQueue;
    sim::RandomStream balanceRng;
    trace::EventKindId migrationKind_;
    trace::EventKindId ctxSwitchKind_;
    trace::CounterId axiCounter_;
    std::int64_t ctxSwitches = 0;
    std::int64_t migrations_ = 0;

    /** BlockResume thunk: schedules makeReady on a fresh event. */
    static void resumeBlocked(void *self, std::shared_ptr<Task> task);

    void makeReady(std::shared_ptr<Task> task);
    void tryDispatch();
    int pickCore(const Task &task) const;
    void dispatch(int core_idx, std::shared_ptr<Task> task);
    void runFront(int core_idx);
    void startCompute(int core_idx, ComputeStep &step);
    void finishComputeSlice(int core_idx, sim::TimeNs started,
                            sim::DurationNs full_duration);
    void leaveCore(int core_idx);
    sim::DurationNs computeDuration(const Core &core,
                                    const ComputeStep &step) const;

    /**
     * Destination for a lone task at slice expiry: a faster idle core
     * (deterministic up-migration), or with loadBalanceProb a same-
     * tier idle core (kernel load balancing). -1 = stay put.
     */
    int balanceTarget(int core_idx, const Task &task);
};

} // namespace aitax::soc

#endif // AITAX_SOC_SCHEDULER_H
