/**
 * @file
 * Energy accounting for the simulated SoC.
 *
 * The paper's opening motivation is that "AI processing on
 * general-purpose mobile processors is inefficient in terms of energy
 * and power". This extension meters dynamic energy per executed
 * operation and static energy per busy interval, per power domain, so
 * experiments can report joules-per-inference alongside latency.
 */

#ifndef AITAX_SOC_ENERGY_H
#define AITAX_SOC_ENERGY_H

#include <array>
#include <cstdint>
#include <string_view>

#include "sim/time.h"

namespace aitax::soc {

/** Power domains we meter. */
enum class PowerDomain
{
    BigCpu,
    LittleCpu,
    Gpu,
    Dsp,
};

constexpr std::array<PowerDomain, 4> kAllPowerDomains = {
    PowerDomain::BigCpu,
    PowerDomain::LittleCpu,
    PowerDomain::Gpu,
    PowerDomain::Dsp,
};

std::string_view powerDomainName(PowerDomain d);

/** Per-domain energy coefficients. */
struct EnergyConfig
{
    /**
     * Dynamic energy per executed operation, in picojoules.
     *
     * Defaults capture the well-known efficiency ordering on mobile
     * silicon: fixed-function DSP << GPU << little CPU < big CPU
     * (roughly an order of magnitude between DSP and big core).
     */
    double bigCpuPjPerOp = 350.0;
    double littleCpuPjPerOp = 160.0;
    double gpuPjPerOp = 80.0;
    double dspPjPerOp = 25.0;

    /** Static/leakage power while a unit is busy, in milliwatts. */
    double bigCpuStaticMw = 120.0;
    double littleCpuStaticMw = 40.0;
    double gpuStaticMw = 150.0;
    double dspStaticMw = 60.0;

    double pjPerOp(PowerDomain d) const;
    double staticMw(PowerDomain d) const;
};

/**
 * Accumulates energy per domain.
 */
class EnergyMeter
{
  public:
    explicit EnergyMeter(EnergyConfig cfg = {});

    const EnergyConfig &config() const { return cfg; }

    /** Charge dynamic energy for @p ops executed on @p domain. */
    void addDynamic(PowerDomain domain, double ops);

    /** Charge static energy for @p busy ns of activity. */
    void addStatic(PowerDomain domain, sim::DurationNs busy);

    /** Total energy for one domain, in millijoules. */
    double domainMj(PowerDomain domain) const;

    /** Total energy across all domains, in millijoules. */
    double totalMj() const;

    void reset();

    /** Accumulated joules per domain, for warm-up prefix snapshots. */
    using State = std::array<double, kAllPowerDomains.size()>;

    State state() const { return joules; }
    void setState(const State &s) { joules = s; }

  private:
    EnergyConfig cfg;
    std::array<double, kAllPowerDomains.size()> joules{};

    static std::size_t index(PowerDomain d);
};

} // namespace aitax::soc

#endif // AITAX_SOC_ENERGY_H
