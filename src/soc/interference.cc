#include "soc/interference.h"

#include <memory>

namespace aitax::soc {

InterferenceGenerator::InterferenceGenerator(sim::Simulator &sim,
                                             OsScheduler &sched,
                                             InterferenceConfig cfg,
                                             sim::RandomStream rng,
                                             trace::Tracer *tracer)
    : sim(sim), sched(sched), cfg(cfg), rng(std::move(rng))
{
    if (tracer) {
        uiLabel_ = tracer->internLabel("ui_frame");
        daemonLabel_ = tracer->internLabel("system_daemon");
    }
}

void
InterferenceGenerator::submitTask(const char *name, trace::LabelId label,
                                  double mean_ops, bool background)
{
    const double ops = mean_ops * rng.lognormalFactor(cfg.jitterSigma);
    auto task = std::make_shared<Task>(name, background);
    if (label.valid())
        task->setTraceLabel(label);
    task->compute({ops, ops * 2.0}, WorkClass::Scalar);
    sched.submit(std::move(task));
    ++injected;
}

void
InterferenceGenerator::start(sim::TimeNs horizon)
{
    if (!cfg.enabled)
        return;

    // UI ticks: fixed period, jittered work, foreground priority.
    for (sim::TimeNs t = cfg.uiPeriodNs; t < horizon;
         t += cfg.uiPeriodNs) {
        sim.scheduleAt(t, [this] {
            submitTask("ui_frame", uiLabel_, cfg.uiOps,
                       /*background=*/false);
        });
    }

    // Daemon/binder activity: Poisson arrivals, background priority.
    if (cfg.daemonRatePerSec > 0.0) {
        const double mean_gap_ns = 1e9 / cfg.daemonRatePerSec;
        sim::TimeNs t = 0;
        while (true) {
            t += static_cast<sim::DurationNs>(
                rng.exponential(mean_gap_ns));
            if (t >= horizon)
                break;
            sim.scheduleAt(t, [this] {
                submitTask("system_daemon", daemonLabel_, cfg.daemonOps,
                           /*background=*/true);
            });
        }
    }
}

} // namespace aitax::soc
