#include "soc/interference.h"

#include <memory>

namespace aitax::soc {

InterferenceGenerator::InterferenceGenerator(sim::Simulator &sim,
                                             OsScheduler &sched,
                                             InterferenceConfig cfg,
                                             sim::RandomStream rng,
                                             trace::Tracer *tracer)
    : sim(sim), sched(sched), cfg(cfg), rng(std::move(rng))
{
    if (tracer) {
        uiLabel_ = tracer->internLabel("ui_frame");
        daemonLabel_ = tracer->internLabel("system_daemon");
    }
}

void
InterferenceGenerator::submitTask(const char *name, trace::LabelId label,
                                  double mean_ops, bool background)
{
    const double ops = mean_ops * rng.lognormalFactor(cfg.jitterSigma);
    auto task = std::make_shared<Task>(name, background);
    if (label.valid())
        task->setTraceLabel(label);
    task->compute({ops, ops * 2.0}, WorkClass::Scalar);
    sched.submit(std::move(task));
    ++injected;
}

void
InterferenceGenerator::scheduleNextUiTick()
{
    if (uiNext_ >= uiCount_)
        return;
    const std::int64_t k = uiNext_++;
    sim.scheduleAtSeq(
        static_cast<sim::TimeNs>(k + 1) * cfg.uiPeriodNs,
        uiSeqBase_ + static_cast<std::uint64_t>(k), [this] {
            // Chain before submitting, matching the Reference seq
            // assignment (the whole band precedes any fire-time work).
            scheduleNextUiTick();
            submitTask("ui_frame", uiLabel_, cfg.uiOps,
                       /*background=*/false);
        });
}

void
InterferenceGenerator::scheduleNextDaemon()
{
    if (daemonNext_ >= daemonTimes_.size())
        return;
    const std::size_t j = daemonNext_++;
    sim.scheduleAtSeq(daemonTimes_[j], daemonSeqBase_ + j, [this] {
        scheduleNextDaemon();
        submitTask("system_daemon", daemonLabel_, cfg.daemonOps,
                   /*background=*/true);
    });
}

void
InterferenceGenerator::start(sim::TimeNs horizon)
{
    if (!cfg.enabled)
        return;

    if (sim.mode() == sim::EngineMode::Fast) {
        // Chained arrivals over a reserved seq band: identical
        // (when, seq) pairs to the Reference pre-scheduling below —
        // UI ticks claim the band first, then daemons, exactly the
        // order the Reference loop assigns seqs in. The daemon gap
        // draws happen here, up front, in the same rng order too.
        uiCount_ = 0;
        for (sim::TimeNs t = cfg.uiPeriodNs; t < horizon;
             t += cfg.uiPeriodNs)
            ++uiCount_;
        daemonTimes_.clear();
        if (cfg.daemonRatePerSec > 0.0) {
            const double mean_gap_ns = 1e9 / cfg.daemonRatePerSec;
            sim::TimeNs t = 0;
            while (true) {
                t += static_cast<sim::DurationNs>(
                    rng.exponential(mean_gap_ns));
                if (t >= horizon)
                    break;
                daemonTimes_.push_back(t);
            }
        }
        uiSeqBase_ = sim.reserveSeqs(
            static_cast<std::uint64_t>(uiCount_) + daemonTimes_.size());
        daemonSeqBase_ =
            uiSeqBase_ + static_cast<std::uint64_t>(uiCount_);
        uiNext_ = 0;
        daemonNext_ = 0;
        scheduleNextUiTick();
        scheduleNextDaemon();
        return;
    }

    // UI ticks: fixed period, jittered work, foreground priority.
    for (sim::TimeNs t = cfg.uiPeriodNs; t < horizon;
         t += cfg.uiPeriodNs) {
        sim.scheduleAt(t, [this] {
            submitTask("ui_frame", uiLabel_, cfg.uiOps,
                       /*background=*/false);
        });
    }

    // Daemon/binder activity: Poisson arrivals, background priority.
    if (cfg.daemonRatePerSec > 0.0) {
        const double mean_gap_ns = 1e9 / cfg.daemonRatePerSec;
        sim::TimeNs t = 0;
        while (true) {
            t += static_cast<sim::DurationNs>(
                rng.exponential(mean_gap_ns));
            if (t >= horizon)
                break;
            sim.scheduleAt(t, [this] {
                submitTask("system_daemon", daemonLabel_, cfg.daemonOps,
                           /*background=*/true);
            });
        }
    }
}

} // namespace aitax::soc
