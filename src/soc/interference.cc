#include "soc/interference.h"

#include <memory>

namespace aitax::soc {

InterferenceGenerator::InterferenceGenerator(sim::Simulator &sim,
                                             OsScheduler &sched,
                                             InterferenceConfig cfg,
                                             sim::RandomStream rng,
                                             trace::Tracer *tracer,
                                             sim::Arena *arena)
    : sim(sim), sched(sched), cfg(cfg), rng(std::move(rng)),
      arena_(arena), queue_(sim, kStreamCount)
{
    if (tracer) {
        uiLabel_ = tracer->internLabel("ui_frame");
        daemonLabel_ = tracer->internLabel("system_daemon");
    }
}

void
InterferenceGenerator::submitTask(const char *name, trace::LabelId label,
                                  double mean_ops, bool background)
{
    const double ops = mean_ops * rng.lognormalFactor(cfg.jitterSigma);
    auto task = makeTask(arena_, name, background);
    if (label.valid())
        task->setTraceLabel(label);
    task->compute({ops, ops * 2.0}, WorkClass::Scalar);
    sched.submit(std::move(task));
    ++injected;
}

void
InterferenceGenerator::start(sim::TimeNs horizon)
{
    if (!cfg.enabled)
        return;

    // One code path for both engines: every push reserves its seq in
    // the order the Reference loop used to assign them (the whole UI
    // band first, then daemons interleaved with their gap draws), so
    // (when, seq) pairs — and the rng call sequence — are unchanged.
    // In Reference mode the LocalEventQueue pre-schedules everything;
    // in Fast mode it parks arrivals and keeps one entry resident.

    // UI ticks: fixed period, jittered work, foreground priority.
    for (sim::TimeNs t = cfg.uiPeriodNs; t < horizon;
         t += cfg.uiPeriodNs) {
        queue_.push(kUiStream, t, [this] {
            submitTask("ui_frame", uiLabel_, cfg.uiOps,
                       /*background=*/false);
        });
    }

    // Daemon/binder activity: Poisson arrivals, background priority.
    if (cfg.daemonRatePerSec > 0.0) {
        const double mean_gap_ns = 1e9 / cfg.daemonRatePerSec;
        sim::TimeNs t = 0;
        while (true) {
            t += static_cast<sim::DurationNs>(
                rng.exponential(mean_gap_ns));
            if (t >= horizon)
                break;
            queue_.push(kDaemonStream, t, [this] {
                submitTask("system_daemon", daemonLabel_, cfg.daemonOps,
                           /*background=*/true);
            });
        }
    }
}

} // namespace aitax::soc
