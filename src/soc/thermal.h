/**
 * @file
 * Thermal throttling model.
 *
 * The paper's methodology section notes that mobile SoCs are
 * particularly susceptible to thermal throttling (their runs wait for
 * a 33 C idle temperature). This simple RC model lets experiments
 * reproduce — or deliberately avoid — that effect.
 */

#ifndef AITAX_SOC_THERMAL_H
#define AITAX_SOC_THERMAL_H

#include "sim/simulator.h"
#include "soc/soc_config.h"

namespace aitax::soc {

/**
 * Lumped thermal state with exponential cooling.
 */
class ThermalModel
{
  public:
    ThermalModel(const ThermalConfig &cfg, sim::Simulator &sim);

    /** Add heat for busy compute time (in seconds of big-core work). */
    void addHeat(double busy_sec);

    /** Current heat level (after lazy cooling). */
    double heatLevel();

    /**
     * Clock multiplier in (0, 1]; 1.0 when cool. Ramps linearly from
     * 1.0 at the throttle threshold down to throttledFactor at twice
     * the threshold.
     */
    double speedFactor();

    /**
     * Fault-injection hook: an external thermal emergency (charging,
     * sunlight, camera ISP load) dumps @p heat_spike heat units into
     * the model immediately. Force-enables the model so throttling
     * takes effect even on presets that run with thermal disabled.
     */
    void triggerEmergency(double heat_spike);

    /** Reset to cold. */
    void reset();

    /**
     * Raw model state for warm-up prefix snapshots. The enabled flag
     * is part of the state because triggerEmergency() force-enables a
     * disabled model — it is mutable at runtime, not pure config.
     */
    struct State
    {
        bool enabled = false;
        double heat = 0.0;
        sim::TimeNs lastUpdate = 0;
    };

    State state() const { return {cfg.enabled, heat, lastUpdate}; }

    void
    setState(const State &s)
    {
        cfg.enabled = s.enabled;
        heat = s.heat;
        lastUpdate = s.lastUpdate;
    }

  private:
    ThermalConfig cfg;
    sim::Simulator &sim;
    double heat = 0.0;
    sim::TimeNs lastUpdate = 0;

    void cool();
};

} // namespace aitax::soc

#endif // AITAX_SOC_THERMAL_H
