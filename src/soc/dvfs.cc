#include "soc/dvfs.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace aitax::soc {

DvfsGovernor::DvfsGovernor(DvfsConfig cfg, sim::Simulator &sim)
    : cfg(cfg), sim(sim)
{
    big.f = cfg.minFactor;
    little.f = cfg.minFactor;
}

void
DvfsGovernor::advance(Tier &t)
{
    const sim::TimeNs now = sim.now();
    if (now <= t.lastUpdate)
        return;
    const double dt = static_cast<double>(now - t.lastUpdate);
    const bool busy = t.busyCores > 0;
    const double target = busy ? 1.0 : cfg.minFactor;
    const double tau = static_cast<double>(
        busy ? cfg.rampUpTauNs : cfg.decayTauNs);
    t.f = target + (t.f - target) * std::exp(-dt / tau);
    t.f = std::clamp(t.f, cfg.minFactor, 1.0);
    t.lastUpdate = now;
}

void
DvfsGovernor::onBusyChange(bool big_tier, int delta)
{
    if (!cfg.enabled)
        return;
    Tier &t = tier(big_tier);
    advance(t); // settle the factor under the old busy state first
    t.busyCores += delta;
    assert(t.busyCores >= 0);
}

double
DvfsGovernor::factor(bool big_tier)
{
    if (!cfg.enabled)
        return 1.0;
    Tier &t = tier(big_tier);
    advance(t);
    return t.f;
}

void
DvfsGovernor::reset()
{
    big.f = cfg.minFactor;
    little.f = cfg.minFactor;
    big.lastUpdate = sim.now();
    little.lastUpdate = sim.now();
    // A mid-run reset must also forget the busy census: a stale
    // count left the governor pinned ramping toward 1.0 (or firing
    // the negative-count assert) forever after.
    big.busyCores = 0;
    little.busyCores = 0;
}

} // namespace aitax::soc
