/**
 * @file
 * Loosely coupled accelerator model (GPU / DSP).
 *
 * A single-context FIFO server: one job executes at a time and later
 * arrivals queue — the structural property behind the paper's
 * multi-tenancy result (Fig 9: "there is only one DSP available for
 * ML model acceleration on this particular SoC").
 */

#ifndef AITAX_SOC_ACCELERATOR_H
#define AITAX_SOC_ACCELERATOR_H

#include <cstdint>
#include <deque>
#include <functional>
#include <string>

#include "faults/injector.h"
#include "sim/local_queue.h"
#include "sim/simulator.h"
#include "soc/energy.h"
#include "soc/memory.h"
#include "soc/soc_config.h"
#include "tensor/dtype.h"
#include "trace/tracer.h"

namespace aitax::soc {

/**
 * What actually happened to a job, reported to its completion
 * callback. Offload accounting (FastRPC queue wait vs execution) is
 * derived from these observed times, never from durations estimated
 * at enqueue time — fabric derate can change while a job is queued.
 */
struct AccelCompletion
{
    sim::TimeNs startedAt = 0;
    sim::TimeNs finishedAt = 0;
    /** Busy time actually spent executing (0 for a watchdog kill). */
    sim::DurationNs execNs = 0;
    /** True when the watchdog killed a hung job before completion. */
    bool failed = false;
};

/** A unit of accelerator work. */
struct AccelJob
{
    std::string name;
    /**
     * Interned trace label for @ref name. Submitters on a hot path
     * (pipelines) pre-resolve it; left invalid, submit() interns once.
     */
    trace::LabelId label;
    double ops = 0.0;
    double bytes = 0.0;
    tensor::DType format = tensor::DType::Float32;
    /** Called at completion (or watchdog-kill) time. */
    // aitax-lint: allow(std-function) -- public callback seam; cold path
    std::function<void(const AccelCompletion &)> onDone;
};

/**
 * FIFO accelerator server.
 */
class Accelerator
{
  public:
    Accelerator(sim::Simulator &sim, AcceleratorConfig cfg,
                trace::Tracer &tracer, EnergyMeter *energy = nullptr,
                MemoryFabric *fabric = nullptr);

    Accelerator(const Accelerator &) = delete;
    Accelerator &operator=(const Accelerator &) = delete;

    const AcceleratorConfig &config() const { return cfg; }
    const std::string &name() const { return cfg.name; }

    /** True if the device can execute the format natively. */
    bool supportsFormat(tensor::DType format) const;

    /** Execution time for a job, excluding queueing. */
    sim::DurationNs execDuration(double ops, double bytes,
                                 tensor::DType format) const;

    /** Enqueue a job; onDone fires when it completes. */
    void submit(AccelJob job);

    /**
     * Attach a fault injector: each dispatched job may draw an
     * injected busy-hang stall; stalls reaching the watchdog timeout
     * kill the job (completion.failed). Null detaches.
     */
    void setFaultInjector(faults::FaultInjector *injector)
    {
        faults_ = injector;
    }

    bool busy() const { return busy_; }
    std::size_t queueDepth() const { return queue.size(); }
    std::int64_t jobsCompleted() const { return completed; }

    /** Completion-event local queue (lazy heap feed) counters. */
    const sim::LocalEventQueue &completionQueue() const
    {
        return completions_;
    }

  private:
    sim::Simulator &sim;
    AcceleratorConfig cfg;
    trace::Tracer &tracer;
    EnergyMeter *energy;
    MemoryFabric *fabric;
    faults::FaultInjector *faults_ = nullptr;
    /**
     * Completion events route through a single-stream LocalEventQueue:
     * one completion in flight at a time (FIFO server), so exactly one
     * entry is ever resident in the global heap, and the seq reserved
     * at push time matches what a direct schedule() would have used.
     */
    sim::LocalEventQueue completions_;
    std::deque<AccelJob> queue;
    bool busy_ = false;
    std::int64_t completed = 0;
    trace::TrackId track_;
    trace::CounterId axi_;

    double opsPerSec(tensor::DType format) const;
    void startNext();
};

} // namespace aitax::soc

#endif // AITAX_SOC_ACCELERATOR_H
