/**
 * @file
 * Configuration structs describing a mobile SoC: CPU cluster, GPU,
 * DSP, FastRPC channel, memory fabric and thermal envelope.
 *
 * Throughput figures are *effective* rates for NN-style kernels (i.e.
 * they fold in typical kernel efficiency), calibrated so the SD845
 * preset lands in the latency ranges the paper reports.
 */

#ifndef AITAX_SOC_SOC_CONFIG_H
#define AITAX_SOC_SOC_CONFIG_H

#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.h"
#include "soc/dvfs.h"
#include "soc/memory.h"

namespace aitax::soc {

/** Work classes map to different core throughputs. */
enum class WorkClass
{
    Scalar,  ///< branchy supporting code (capture glue, decode)
    VectorF32, ///< NEON fp32 NN kernels
    VectorI8,  ///< NEON int8 NN kernels
};

/** One CPU core. */
struct CpuCoreConfig
{
    std::string name = "core";
    double freqGhz = 2.0;
    bool big = true;
    /** Effective ops per cycle by work class. */
    double scalarOpsPerCycle = 1.2;
    double f32OpsPerCycle = 4.0;
    double i8OpsPerCycle = 8.0;
    /** Sustained memory bandwidth for this core's streams. */
    double memBytesPerSec = 6.0e9;

    double opsPerCycle(WorkClass cls) const;
};

/** The CPU complex plus OS scheduler parameters. */
struct CpuClusterConfig
{
    std::vector<CpuCoreConfig> cores;
    sim::DurationNs timeSliceNs = sim::msToNs(4.0);
    sim::DurationNs contextSwitchNs = sim::usToNs(5.0);
    /** Cache-warmup penalty applied when a task changes cores. */
    sim::DurationNs migrationNs = sim::usToNs(30.0);
    /**
     * Probability, per expired time slice, that the kernel's load
     * balancer moves a lone task to another idle core of the same
     * tier — the source of the "frequent CPU migrations" the paper
     * observes in Fig 6.
     */
    double loadBalanceProb = 0.12;
};

/** Kinds of loosely coupled accelerators. */
enum class AcceleratorKind
{
    Gpu,
    Dsp,
};

/** An on-chip accelerator (own queue; see `tightlyCoupled`). */
struct AcceleratorConfig
{
    std::string name = "accel";
    AcceleratorKind kind = AcceleratorKind::Dsp;
    /**
     * Integration model (Section II-D of the paper): loosely coupled
     * accelerators (the Snapdragon DSPs, the default) sit behind a
     * kernel driver — every invocation crosses FastRPC with a cache
     * flush. A tightly coupled accelerator shares the CPU's cache
     * hierarchy: invocations skip the kernel round trip entirely.
     */
    bool tightlyCoupled = false;
    /** Effective ops/s by numeric format; 0 = unsupported natively. */
    double f32OpsPerSec = 0.0;
    double f16OpsPerSec = 0.0;
    double i8OpsPerSec = 0.0;
    double memBytesPerSec = 10.0e9;
    /** Fixed dispatch overhead added to every job. */
    sim::DurationNs perJobOverheadNs = sim::usToNs(50.0);
};

/** FastRPC channel parameters (Fig 7 stages). */
struct FastRpcConfig
{
    /** One-time session open: process mapping, library load. */
    sim::DurationNs sessionOpenNs = sim::msToNs(15.0);
    sim::DurationNs userToKernelNs = sim::usToNs(30.0);
    /** Kernel driver signalling the DSP-side driver. */
    sim::DurationNs kernelSignalNs = sim::usToNs(20.0);
    /** Cache flush for coherency, proportional to payload bytes. */
    double cacheFlushBytesPerSec = 8.0e9;
    /** Return path (DSP driver -> kernel -> user). */
    sim::DurationNs returnPathNs = sim::usToNs(50.0);
    /**
     * Record a per-call "FastRPC" trace interval spanning the CPU-side
     * stages. Off by default: golden traces predate this channel
     * instrumentation and must stay byte-identical.
     */
    bool traceStages = false;
};

/** Shared memory fabric. */
struct MemoryConfig
{
    double axiBytesPerSec = 20.0e9;
};

/** Thermal throttling envelope (simple RC model). */
struct ThermalConfig
{
    bool enabled = false;
    /** Heat units added per core-second of busy big-core time. */
    double heatPerBusySec = 1.0;
    /** Exponential cooling time constant. */
    double coolingTauSec = 10.0;
    /** Heat level at which throttling starts. */
    double throttleThreshold = 2.0;
    /** Clock multiplier when fully throttled. */
    double throttledFactor = 0.7;
};

/** A full SoC platform (one Table II row). */
struct SocConfig
{
    std::string name;    ///< e.g. "Google Pixel 3"
    std::string socName; ///< e.g. "Snapdragon 845"
    CpuClusterConfig cluster;
    AcceleratorConfig gpu;
    AcceleratorConfig dsp;
    FastRpcConfig fastrpc;
    MemoryConfig memory;
    MemoryFabricConfig fabric;
    ThermalConfig thermal;
    DvfsConfig dvfs;
};

} // namespace aitax::soc

#endif // AITAX_SOC_SOC_CONFIG_H
