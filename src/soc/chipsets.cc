#include "soc/chipsets.h"

#include <cassert>
#include <cstdio>
#include <cstdlib>

namespace aitax::soc {

namespace {

/**
 * Build a Snapdragon-style 4+4 configuration.
 *
 * @param perf overall generational scale factor (1.0 = SD845).
 */
SocConfig
makeSnapdragon(const std::string &system, const std::string &soc,
               const std::string &gpu_name, const std::string &dsp_name,
               double big_ghz, double little_ghz, double perf)
{
    SocConfig cfg;
    cfg.name = system;
    cfg.socName = soc;

    for (int i = 0; i < 4; ++i) {
        CpuCoreConfig core;
        core.name = "cpu" + std::to_string(i);
        core.big = false;
        core.freqGhz = little_ghz;
        core.scalarOpsPerCycle = 0.9;
        core.f32OpsPerCycle = 1.8;
        core.i8OpsPerCycle = 3.0;
        core.memBytesPerSec = 3.0e9 * perf;
        cfg.cluster.cores.push_back(core);
    }
    for (int i = 4; i < 8; ++i) {
        CpuCoreConfig core;
        core.name = "cpu" + std::to_string(i);
        core.big = true;
        core.freqGhz = big_ghz;
        core.scalarOpsPerCycle = 1.3;
        core.f32OpsPerCycle = 4.8;
        core.i8OpsPerCycle = 8.0;
        core.memBytesPerSec = 6.5e9 * perf;
        cfg.cluster.cores.push_back(core);
    }

    cfg.gpu.name = gpu_name;
    cfg.gpu.kind = AcceleratorKind::Gpu;
    cfg.gpu.f32OpsPerSec = 80.0e9 * perf;
    cfg.gpu.f16OpsPerSec = 160.0e9 * perf;
    cfg.gpu.i8OpsPerSec = 160.0e9 * perf;
    cfg.gpu.memBytesPerSec = 14.0e9 * perf;
    cfg.gpu.perJobOverheadNs = sim::msToNs(1.2);

    cfg.dsp.name = dsp_name;
    cfg.dsp.kind = AcceleratorKind::Dsp;
    // HVX is a fixed-point vector engine: no native fp32; fp16 runs at
    // a fraction of the int8 rate.
    cfg.dsp.f32OpsPerSec = 0.0;
    cfg.dsp.f16OpsPerSec = 30.0e9 * perf;
    cfg.dsp.i8OpsPerSec = 110.0e9 * perf;
    cfg.dsp.memBytesPerSec = 12.0e9 * perf;
    cfg.dsp.perJobOverheadNs = sim::usToNs(80.0);

    cfg.memory.axiBytesPerSec = 20.0e9 * perf;
    return cfg;
}

} // namespace

SocConfig
makeSnapdragon835()
{
    return makeSnapdragon("Open-Q 835 uSOM", "Snapdragon 835",
                          "Adreno 540", "Hexagon 682", 2.45, 1.90, 0.72);
}

SocConfig
makeSnapdragon845()
{
    return makeSnapdragon("Google Pixel 3", "Snapdragon 845",
                          "Adreno 630", "Hexagon 685", 2.80, 1.77, 1.0);
}

SocConfig
makeSnapdragon855()
{
    return makeSnapdragon("Snapdragon 855 HDK", "Snapdragon 855",
                          "Adreno 640", "Hexagon 690", 2.84, 1.78, 1.35);
}

SocConfig
makeSnapdragon865()
{
    return makeSnapdragon("Snapdragon 865 HDK", "Snapdragon 865",
                          "Adreno 650", "Hexagon 698", 2.84, 1.80, 1.75);
}

std::vector<SocConfig>
allPlatforms()
{
    return {makeSnapdragon835(), makeSnapdragon845(),
            makeSnapdragon855(), makeSnapdragon865()};
}

SocConfig
platformByName(std::string_view soc_name)
{
    for (auto &cfg : allPlatforms())
        if (cfg.socName == soc_name)
            return cfg;
    std::fprintf(stderr, "unknown platform: %.*s\n",
                 static_cast<int>(soc_name.size()), soc_name.data());
    std::abort();
}

} // namespace aitax::soc
