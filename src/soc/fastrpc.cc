#include "soc/fastrpc.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <utility>

namespace aitax::soc {

sim::DurationNs
FastRpcBreakdown::overheadNs() const
{
    return sessionOpenNs + userToKernelNs + cacheFlushNs +
           kernelSignalNs + queueWaitNs + retryNs + returnPathNs;
}

sim::DurationNs
FastRpcBreakdown::totalNs() const
{
    return overheadNs() + dspExecNs;
}

/**
 * State of one logical call, shared by its (possibly several)
 * attempts. The original job parameters are kept here so a retry can
 * resubmit an identical AccelJob after a transient failure or
 * watchdog kill consumed the previous one.
 */
struct FastRpcChannel::CallState
{
    std::shared_ptr<FastRpcBreakdown> breakdown;
    std::string jobName;
    trace::LabelId jobLabel;
    double ops = 0.0;
    double bytes = 0.0;
    tensor::DType format = tensor::DType::Float32;
    // aitax-lint: allow(std-function) -- per-call seam, not per-event
    std::function<void(const AccelCompletion &)> innerDone;
    // aitax-lint: allow(std-function) -- per-call seam, not per-event
    std::function<void(const FastRpcBreakdown &)> onDone;
    int attempt = 1;
    AccelCompletion completion;
};

namespace {

/** Fail loudly on configs that would divide by zero under NDEBUG. */
void
validateFastRpcConfig(const FastRpcConfig &cfg)
{
    if (!(cfg.cacheFlushBytesPerSec > 0.0)) {
        std::fprintf(stderr,
                     "aitax: FastRPC config has non-positive "
                     "cacheFlushBytesPerSec (%g)\n",
                     cfg.cacheFlushBytesPerSec);
        std::abort();
    }
    if (cfg.sessionOpenNs < 0 || cfg.userToKernelNs < 0 ||
        cfg.kernelSignalNs < 0 || cfg.returnPathNs < 0) {
        std::fprintf(stderr,
                     "aitax: FastRPC config has a negative stage "
                     "duration\n");
        std::abort();
    }
}

} // namespace

FastRpcChannel::FastRpcChannel(sim::Simulator &sim, FastRpcConfig cfg,
                               Accelerator &dsp, trace::Tracer *tracer)
    : sim(sim), cfg(cfg), dsp(dsp), tracer(tracer)
{
    validateFastRpcConfig(this->cfg);
    if (this->tracer && this->cfg.traceStages) {
        track_ = this->tracer->internTrack("FastRPC");
        callLabel_ = this->tracer->internLabel("fastrpc_call");
    }
}

bool
FastRpcChannel::sessionOpen(std::int32_t process_id) const
{
    return sessions.count(process_id) > 0;
}

void
FastRpcChannel::closeSession(std::int32_t process_id)
{
    sessions.erase(process_id);
}

void
FastRpcChannel::call(std::int32_t process_id, double payload_bytes,
                     AccelJob job,
                     // aitax-lint: allow(std-function) -- see header
                     std::function<void(const FastRpcBreakdown &)>
                         on_done)
{
    auto breakdown = std::make_shared<FastRpcBreakdown>();

    // Injected session loss: the DSP subsystem restarted since the
    // last call, so every process re-pays the Fig 8 cold start.
    if (faults_ != nullptr && faults_->drawSessionLoss()) {
        dropAllSessions();
        faults_->recordSessionLoss(sim.now());
    }

    sim::DurationNs pre = 0;
    if (!sessionOpen(process_id)) {
        sessions.insert(process_id);
        breakdown->sessionOpenNs = cfg.sessionOpenNs;
        pre += cfg.sessionOpenNs;
    }
    breakdown->userToKernelNs = cfg.userToKernelNs;
    pre += cfg.userToKernelNs;

    const auto flush_ns = static_cast<sim::DurationNs>(std::ceil(
        payload_bytes / cfg.cacheFlushBytesPerSec * 1e9));
    breakdown->cacheFlushNs = flush_ns;
    pre += flush_ns;

    breakdown->kernelSignalNs = cfg.kernelSignalNs;
    pre += cfg.kernelSignalNs;

    // Opt-in channel instrumentation: one interval per call covering
    // the CPU-side stages (session open + copy + flush + signal).
    if (tracer && cfg.traceStages)
        tracer->recordInterval(track_, callLabel_, sim.now(),
                               sim.now() + pre);

    auto state = std::make_shared<CallState>();
    state->breakdown = std::move(breakdown);
    state->jobName = std::move(job.name);
    state->jobLabel = job.label;
    state->ops = job.ops;
    state->bytes = job.bytes;
    state->format = job.format;
    state->innerDone = std::move(job.onDone);
    state->onDone = std::move(on_done);

    // After the CPU-side stages, the job lands in the DSP queue.
    sim.scheduleIn(pre, [this, state = std::move(state)]() mutable {
        startAttempt(std::move(state));
    });
}

void
FastRpcChannel::startAttempt(std::shared_ptr<CallState> state)
{
    const sim::TimeNs enqueued = sim.now();

    // Injected transient failure: the attempt dies in the driver and
    // is detected after a fixed delay without ever occupying the DSP.
    if (faults_ != nullptr && faults_->drawTransientFailure()) {
        faults_->recordTransient(enqueued);
        const sim::DurationNs detect =
            faults_->config().transientDetectNs;
        sim.scheduleIn(detect,
                       [this, state = std::move(state), detect]() mutable {
                           retryOrFail(std::move(state), detect);
                       });
        return;
    }

    AccelJob attempt;
    attempt.name = state->jobName;
    attempt.label = state->jobLabel;
    attempt.ops = state->ops;
    attempt.bytes = state->bytes;
    attempt.format = state->format;
    attempt.onDone = [this, state,
                      enqueued](const AccelCompletion &completion) {
        if (completion.failed) {
            // Watchdog kill: the whole attempt (queue wait included)
            // was wasted.
            retryOrFail(state, completion.finishedAt - enqueued);
            return;
        }
        // The accounting fix: derive queue wait and execution from
        // the *observed* dispatch/completion times rather than a
        // duration estimated at enqueue time — fabric derate may
        // have changed while the job sat in the queue.
        state->breakdown->queueWaitNs =
            completion.startedAt - enqueued;
        state->breakdown->dspExecNs = completion.execNs;
        state->completion = completion;
        finishCall(std::move(state));
    };
    dsp.submit(std::move(attempt));
}

void
FastRpcChannel::retryOrFail(std::shared_ptr<CallState> state,
                            sim::DurationNs wasted)
{
    assert(faults_ != nullptr && "retry path requires an injector");
    state->breakdown->retryNs += wasted;
    const faults::FaultConfig &fcfg = faults_->config();
    if (state->attempt >= fcfg.maxAttempts) {
        state->breakdown->failed = true;
        faults_->recordPermanentFailure(sim.now(), wasted);
        finishCall(std::move(state));
        return;
    }
    // Exponential backoff in simulated time, capped to keep the
    // shift well-defined for absurd max-attempts settings.
    const int exponent = std::min(state->attempt - 1, 16);
    const sim::DurationNs backoff = fcfg.retryBackoffBaseNs
                                    << exponent;
    state->breakdown->retryNs += backoff;
    ++state->breakdown->retries;
    ++state->attempt;
    faults_->recordRetry(sim.now(), wasted + backoff);
    sim.scheduleIn(backoff, [this, state = std::move(state)]() mutable {
        startAttempt(std::move(state));
    });
}

void
FastRpcChannel::finishCall(std::shared_ptr<CallState> state)
{
    state->breakdown->returnPathNs = cfg.returnPathNs;
    sim.scheduleIn(cfg.returnPathNs, [this,
                                      state = std::move(state)] {
        ++completed;
        // A permanently failed call never ran; only the error is
        // propagated back to the caller, which handles degradation.
        if (!state->breakdown->failed && state->innerDone)
            state->innerDone(state->completion);
        if (state->onDone)
            state->onDone(*state->breakdown);
    });
}

} // namespace aitax::soc
