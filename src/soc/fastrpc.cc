#include "soc/fastrpc.h"

#include <cassert>
#include <cmath>
#include <memory>

namespace aitax::soc {

sim::DurationNs
FastRpcBreakdown::overheadNs() const
{
    return sessionOpenNs + userToKernelNs + cacheFlushNs +
           kernelSignalNs + queueWaitNs + returnPathNs;
}

sim::DurationNs
FastRpcBreakdown::totalNs() const
{
    return overheadNs() + dspExecNs;
}

FastRpcChannel::FastRpcChannel(sim::Simulator &sim, FastRpcConfig cfg,
                               Accelerator &dsp, trace::Tracer *tracer)
    : sim(sim), cfg(cfg), dsp(dsp), tracer(tracer)
{
    if (this->tracer && this->cfg.traceStages) {
        track_ = this->tracer->internTrack("FastRPC");
        callLabel_ = this->tracer->internLabel("fastrpc_call");
    }
}

bool
FastRpcChannel::sessionOpen(std::int32_t process_id) const
{
    return sessions.count(process_id) > 0;
}

void
FastRpcChannel::closeSession(std::int32_t process_id)
{
    sessions.erase(process_id);
}

void
FastRpcChannel::call(std::int32_t process_id, double payload_bytes,
                     AccelJob job,
                     std::function<void(const FastRpcBreakdown &)> on_done)
{
    auto breakdown = std::make_shared<FastRpcBreakdown>();

    sim::DurationNs pre = 0;
    if (!sessionOpen(process_id)) {
        sessions.insert(process_id);
        breakdown->sessionOpenNs = cfg.sessionOpenNs;
        pre += cfg.sessionOpenNs;
    }
    breakdown->userToKernelNs = cfg.userToKernelNs;
    pre += cfg.userToKernelNs;

    const auto flush_ns = static_cast<sim::DurationNs>(std::ceil(
        payload_bytes / cfg.cacheFlushBytesPerSec * 1e9));
    breakdown->cacheFlushNs = flush_ns;
    pre += flush_ns;

    breakdown->kernelSignalNs = cfg.kernelSignalNs;
    pre += cfg.kernelSignalNs;

    // Opt-in channel instrumentation: one interval per call covering
    // the CPU-side stages (session open + copy + flush + signal).
    if (tracer && cfg.traceStages)
        tracer->recordInterval(track_, callLabel_, sim.now(),
                               sim.now() + pre);

    // After the CPU-side stages, the job lands in the DSP queue.
    sim.scheduleIn(pre, [this, breakdown, job = std::move(job),
                         on_done = std::move(on_done)]() mutable {
        const sim::TimeNs enqueued = sim.now();
        const sim::DurationNs exec =
            dsp.execDuration(job.ops, job.bytes, job.format);

        auto inner_done = std::move(job.onDone);
        job.onDone = [this, breakdown, enqueued, exec,
                      inner_done = std::move(inner_done),
                      on_done =
                          std::move(on_done)](sim::TimeNs done_at) {
            breakdown->dspExecNs = exec;
            breakdown->queueWaitNs = (done_at - enqueued) - exec;
            breakdown->returnPathNs = cfg.returnPathNs;
            sim.scheduleIn(cfg.returnPathNs,
                           [this, breakdown, inner_done, on_done] {
                               ++completed;
                               if (inner_done)
                                   inner_done(sim.now());
                               if (on_done)
                                   on_done(*breakdown);
                           });
        };
        dsp.submit(std::move(job));
    });
}

} // namespace aitax::soc
