#include "soc/accelerator.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace aitax::soc {

namespace {

/**
 * Reject impossible rate configs at construction. An assert is not
 * enough: under NDEBUG a zero rate flows into a division and the
 * resulting inf/NaN cast to DurationNs is undefined behaviour, so
 * misconfigured chipsets must fail loudly in every build mode.
 */
void
validateAcceleratorConfig(const AcceleratorConfig &cfg)
{
    const bool any_rate = cfg.f32OpsPerSec > 0.0 ||
                          cfg.f16OpsPerSec > 0.0 ||
                          cfg.i8OpsPerSec > 0.0;
    if (!any_rate) {
        std::fprintf(stderr,
                     "aitax: accelerator '%s' has no positive ops "
                     "rate for any format\n",
                     cfg.name.c_str());
        std::abort();
    }
    if (!(cfg.memBytesPerSec > 0.0)) {
        std::fprintf(stderr,
                     "aitax: accelerator '%s' has non-positive "
                     "memBytesPerSec (%g)\n",
                     cfg.name.c_str(), cfg.memBytesPerSec);
        std::abort();
    }
    if (cfg.perJobOverheadNs < 0) {
        std::fprintf(stderr,
                     "aitax: accelerator '%s' has negative "
                     "perJobOverheadNs\n",
                     cfg.name.c_str());
        std::abort();
    }
}

} // namespace

Accelerator::Accelerator(sim::Simulator &sim, AcceleratorConfig cfg,
                         trace::Tracer &tracer, EnergyMeter *energy,
                         MemoryFabric *fabric)
    : sim(sim), cfg(std::move(cfg)), tracer(tracer), energy(energy),
      fabric(fabric), completions_(sim, 1)
{
    validateAcceleratorConfig(this->cfg);
    track_ = tracer.internTrack(this->cfg.name);
    axi_ = tracer.internCounter("axi_bytes");
}

double
Accelerator::opsPerSec(tensor::DType format) const
{
    switch (format) {
      case tensor::DType::Float32:
        return cfg.f32OpsPerSec;
      case tensor::DType::Float16:
        return cfg.f16OpsPerSec;
      case tensor::DType::Int8:
      case tensor::DType::UInt8:
        return cfg.i8OpsPerSec;
      default:
        return 0.0;
    }
}

bool
Accelerator::supportsFormat(tensor::DType format) const
{
    return opsPerSec(format) > 0.0;
}

sim::DurationNs
Accelerator::execDuration(double ops, double bytes,
                          tensor::DType format) const
{
    const double rate = opsPerSec(format);
    assert(rate > 0.0 && "unsupported format submitted to accelerator");
    double byte_rate = cfg.memBytesPerSec;
    if (fabric)
        byte_rate *= fabric->derateFactor();
    const double sec = std::max(ops / rate, bytes / byte_rate);
    return cfg.perJobOverheadNs +
           std::max<sim::DurationNs>(
               static_cast<sim::DurationNs>(std::ceil(sec * 1e9)), 1);
}

void
Accelerator::submit(AccelJob job)
{
    if (tracer.isEnabled() && !job.label.valid())
        job.label = tracer.internLabel(job.name);
    queue.push_back(std::move(job));
    if (!busy_)
        startNext();
}

void
Accelerator::startNext()
{
    assert(!busy_);
    if (queue.empty())
        return;
    busy_ = true;
    if (fabric)
        fabric->onClientChange(+1);
    AccelJob job = std::move(queue.front());
    queue.pop_front();

    sim::DurationNs duration =
        execDuration(job.ops, job.bytes, job.format);
    const sim::TimeNs start = sim.now();

    // Injected busy-hang: the job stalls on the device. Stalls that
    // reach the watchdog timeout are killed at the timeout instead of
    // completing; shorter ones simply finish late.
    bool killed = false;
    if (faults_ != nullptr) {
        const sim::DurationNs stall = faults_->drawHangStall();
        if (stall > 0) {
            const sim::DurationNs wd =
                faults_->config().watchdogTimeoutNs;
            if (wd > 0 && stall >= wd) {
                killed = true;
                duration = wd;
            } else {
                duration += stall;
            }
        }
    }

    completions_.push(0, sim.now() + duration, [this,
                                                job = std::move(job),
                                                start, killed] {
        const sim::TimeNs now = sim.now();
        if (job.label.valid())
            tracer.recordInterval(track_, job.label, start, now);
        const PowerDomain domain = cfg.kind == AcceleratorKind::Gpu
                                       ? PowerDomain::Gpu
                                       : PowerDomain::Dsp;
        if (killed) {
            if (faults_)
                faults_->recordWatchdogKill(now);
            // A hung job leaks static power but produced no work.
            if (energy)
                energy->addStatic(domain, now - start);
        } else {
            if (job.bytes > 0)
                tracer.recordCounter(axi_, now, job.bytes);
            if (energy) {
                energy->addDynamic(domain, job.ops);
                energy->addStatic(domain, now - start);
            }
            ++completed;
        }
        busy_ = false;
        if (fabric)
            fabric->onClientChange(-1);
        if (job.onDone) {
            AccelCompletion completion;
            completion.startedAt = start;
            completion.finishedAt = now;
            completion.execNs = killed ? 0 : now - start;
            completion.failed = killed;
            job.onDone(completion);
        }
        startNext();
    });
}

} // namespace aitax::soc
