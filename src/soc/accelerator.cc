#include "soc/accelerator.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace aitax::soc {

Accelerator::Accelerator(sim::Simulator &sim, AcceleratorConfig cfg,
                         trace::Tracer &tracer, EnergyMeter *energy,
                         MemoryFabric *fabric)
    : sim(sim), cfg(std::move(cfg)), tracer(tracer), energy(energy),
      fabric(fabric)
{
    track_ = tracer.internTrack(this->cfg.name);
    axi_ = tracer.internCounter("axi_bytes");
}

double
Accelerator::opsPerSec(tensor::DType format) const
{
    switch (format) {
      case tensor::DType::Float32:
        return cfg.f32OpsPerSec;
      case tensor::DType::Float16:
        return cfg.f16OpsPerSec;
      case tensor::DType::Int8:
      case tensor::DType::UInt8:
        return cfg.i8OpsPerSec;
      default:
        return 0.0;
    }
}

bool
Accelerator::supportsFormat(tensor::DType format) const
{
    return opsPerSec(format) > 0.0;
}

sim::DurationNs
Accelerator::execDuration(double ops, double bytes,
                          tensor::DType format) const
{
    const double rate = opsPerSec(format);
    assert(rate > 0.0 && "unsupported format submitted to accelerator");
    double byte_rate = cfg.memBytesPerSec;
    if (fabric)
        byte_rate *= fabric->derateFactor();
    const double sec = std::max(ops / rate, bytes / byte_rate);
    return cfg.perJobOverheadNs +
           std::max<sim::DurationNs>(
               static_cast<sim::DurationNs>(std::ceil(sec * 1e9)), 1);
}

void
Accelerator::submit(AccelJob job)
{
    if (tracer.isEnabled() && !job.label.valid())
        job.label = tracer.internLabel(job.name);
    queue.push_back(std::move(job));
    if (!busy_)
        startNext();
}

void
Accelerator::startNext()
{
    assert(!busy_);
    if (queue.empty())
        return;
    busy_ = true;
    if (fabric)
        fabric->onClientChange(+1);
    AccelJob job = std::move(queue.front());
    queue.pop_front();

    const sim::DurationNs duration =
        execDuration(job.ops, job.bytes, job.format);
    const sim::TimeNs start = sim.now();

    sim.scheduleIn(duration, [this, job = std::move(job), start] {
        if (job.label.valid())
            tracer.recordInterval(track_, job.label, start, sim.now());
        if (job.bytes > 0)
            tracer.recordCounter(axi_, sim.now(), job.bytes);
        if (energy) {
            const PowerDomain domain =
                cfg.kind == AcceleratorKind::Gpu ? PowerDomain::Gpu
                                                 : PowerDomain::Dsp;
            energy->addDynamic(domain, job.ops);
            energy->addStatic(domain, sim.now() - start);
        }
        ++completed;
        busy_ = false;
        if (fabric)
            fabric->onClientChange(-1);
        if (job.onDone)
            job.onDone(sim.now());
        startNext();
    });
}

} // namespace aitax::soc
