/**
 * @file
 * DVFS governor model (opt-in).
 *
 * Mobile kernels run interactive/schedutil governors: clocks ramp up
 * under load and decay when idle. This is one mechanism behind the
 * paper's cold-start observation — "benchmarks ... allow for warm-up
 * time that is not necessarily representative of a real-world
 * application" (Section IV-C) — a sporadically invoked pipeline keeps
 * hitting low clocks.
 */

#ifndef AITAX_SOC_DVFS_H
#define AITAX_SOC_DVFS_H

#include "sim/simulator.h"
#include "sim/time.h"

namespace aitax::soc {

/** Governor parameters. */
struct DvfsConfig
{
    bool enabled = false;
    /** Frequency floor as a fraction of maximum. */
    double minFactor = 0.55;
    /** Time constant for ramping up while the tier is busy. */
    sim::DurationNs rampUpTauNs = sim::msToNs(30.0);
    /** Time constant for decaying while the tier is idle. */
    sim::DurationNs decayTauNs = sim::msToNs(120.0);
};

/**
 * Two-tier (big/little) frequency governor.
 *
 * Tracks the number of busy cores per tier; the tier's frequency
 * factor relaxes exponentially toward 1.0 while any core is busy and
 * toward minFactor while all are idle. Factors are advanced lazily on
 * query, so the model adds no events of its own.
 */
class DvfsGovernor
{
  public:
    DvfsGovernor(DvfsConfig cfg, sim::Simulator &sim);

    const DvfsConfig &config() const { return cfg; }

    /** A core of the tier started (delta=+1) or stopped (-1) running. */
    void onBusyChange(bool big_tier, int delta);

    /** Current frequency factor in [minFactor, 1]. */
    double factor(bool big_tier);

    /** Reset both tiers to the floor (cold clocks). */
    void reset();

    /** Both tiers' governor state, for warm-up prefix snapshots. */
    struct State
    {
        double bigF = 0.0;
        double littleF = 0.0;
        sim::TimeNs bigLastUpdate = 0;
        sim::TimeNs littleLastUpdate = 0;
        int bigBusyCores = 0;
        int littleBusyCores = 0;
    };

    State
    state() const
    {
        return {big.f,          little.f,        big.lastUpdate,
                little.lastUpdate, big.busyCores, little.busyCores};
    }

    void
    setState(const State &s)
    {
        big = {s.bigF, s.bigLastUpdate, s.bigBusyCores};
        little = {s.littleF, s.littleLastUpdate, s.littleBusyCores};
    }

  private:
    struct Tier
    {
        double f;
        sim::TimeNs lastUpdate = 0;
        int busyCores = 0;
    };

    DvfsConfig cfg;
    sim::Simulator &sim;
    Tier big;
    Tier little;

    void advance(Tier &tier);
    Tier &tier(bool big_tier) { return big_tier ? big : little; }
};

} // namespace aitax::soc

#endif // AITAX_SOC_DVFS_H
