/**
 * @file
 * Software task model: a schedulable unit of work on the CPU cluster.
 *
 * A Task is a queue of steps — compute slices, sleeps, markers and
 * blocking calls (used for accelerator offload). The OS scheduler
 * executes compute steps on cores, preempting at time-slice
 * boundaries; blocking steps take the task off the run queue until an
 * external completion resumes it.
 */

#ifndef AITAX_SOC_TASK_H
#define AITAX_SOC_TASK_H

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <variant>

#include "sim/inline_function.h"
#include "sim/time.h"
#include "sim/work.h"
#include "soc/soc_config.h"
#include "trace/tracer.h"

namespace aitax::soc {

class Task;

/** CPU work slice. */
struct ComputeStep
{
    sim::Work work;
    WorkClass cls = WorkClass::Scalar;
    /** Fraction of the step still to execute (preemption state). */
    double remaining = 1.0;
};

/** Off-CPU wait for a fixed duration. */
struct SleepStep
{
    sim::DurationNs duration = 0;
};

/** Timestamped callback for markers and task completion. */
using TimeFn = sim::InlineFunction<void(sim::TimeNs)>;

/** Instantaneous timestamp callback (stage boundaries). */
struct MarkerStep
{
    TimeFn fn;
};

/**
 * Blocking external call. The scheduler invokes @p start with a resume
 * callback; the task stays blocked until that callback runs.
 */
struct BlockStep
{
    std::function<void(Task &, std::function<void()> resume)> start;
};

using TaskStep =
    std::variant<ComputeStep, SleepStep, MarkerStep, BlockStep>;

/** Scheduler-visible task states. */
enum class TaskState
{
    Created,
    Ready,
    Running,
    Blocked,
    Done,
};

/**
 * A schedulable task.
 *
 * Steps may be pushed while the task runs (self-extending programs),
 * which is how the pipeline layer chains stages that depend on data
 * produced by earlier steps.
 */
class Task
{
  public:
    explicit Task(std::string name, bool background = false);

    const std::string &name() const { return name_; }

    /**
     * Interned label for this task's name, resolved lazily on first
     * use and cached so steady-state trace records skip the interner.
     * Pipelines that reuse task names pre-seed it via setTraceLabel().
     */
    trace::LabelId
    traceLabel(trace::Tracer &tracer) const
    {
        if (!traceLabel_.valid())
            traceLabel_ = tracer.internLabel(name_);
        return traceLabel_;
    }
    void setTraceLabel(trace::LabelId label) { traceLabel_ = label; }

    /** Background tasks never get priority pick of big cores. */
    bool isBackground() const { return background_; }

    Task &compute(sim::Work work, WorkClass cls);
    Task &sleep(sim::DurationNs duration);
    Task &marker(TimeFn fn);
    Task &block(
        std::function<void(Task &, std::function<void()> resume)> start);

    /** Called (with completion time) when the last step finishes. */
    void setOnComplete(TimeFn fn);

    // --- Scheduler interface -----------------------------------------

    TaskState state() const { return state_; }
    void setState(TaskState s) { state_ = s; }

    int lastCore() const { return lastCore_; }
    void setLastCore(int core) { lastCore_ = core; }

    bool hasSteps() const { return !steps.empty(); }
    TaskStep &frontStep();
    void popStep();

    void finish(sim::TimeNs now);

  private:
    std::string name_;
    mutable trace::LabelId traceLabel_;
    bool background_ = false;
    TaskState state_ = TaskState::Created;
    int lastCore_ = -1;
    std::deque<TaskStep> steps;
    TimeFn onComplete;
};

} // namespace aitax::soc

#endif // AITAX_SOC_TASK_H
