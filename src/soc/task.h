/**
 * @file
 * Software task model: a schedulable unit of work on the CPU cluster.
 *
 * A Task is a queue of steps — compute slices, sleeps, markers and
 * blocking calls (used for accelerator offload). The OS scheduler
 * executes compute steps on cores, preempting at time-slice
 * boundaries; blocking steps take the task off the run queue until an
 * external completion resumes it.
 */

#ifndef AITAX_SOC_TASK_H
#define AITAX_SOC_TASK_H

#include <cstdint>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "sim/arena.h"
#include "sim/inline_function.h"
#include "sim/time.h"
#include "sim/work.h"
#include "soc/soc_config.h"
#include "trace/tracer.h"

namespace aitax::soc {

class Task;

/** CPU work slice. */
struct ComputeStep
{
    sim::Work work;
    WorkClass cls = WorkClass::Scalar;
    /** Fraction of the step still to execute (preemption state). */
    double remaining = 1.0;
};

/** Off-CPU wait for a fixed duration. */
struct SleepStep
{
    sim::DurationNs duration = 0;
};

/** Timestamped callback for markers and task completion. */
using TimeFn = sim::InlineFunction<void(sim::TimeNs)>;

/** Instantaneous timestamp callback (stage boundaries). */
struct MarkerStep
{
    TimeFn fn;
};

/**
 * Copyable resume token handed to BlockStep starters.
 *
 * A blocked task is off the run queue and out of the core slot, so the
 * resume token is the only owner keeping it alive — it therefore holds
 * a shared_ptr to the task. It is deliberately copyable (unlike
 * InlineFunction) because offload paths stash it in AccelJob::onDone
 * and FastRPC completion callbacks, and allocation-free: a plain
 * function pointer plus two words, no type erasure.
 */
class BlockResume
{
  public:
    using Fn = void (*)(void *sched, std::shared_ptr<Task> task);

    BlockResume() = default;
    BlockResume(Fn fn, void *sched, std::shared_ptr<Task> task)
        : fn_(fn), sched_(sched), task_(std::move(task))
    {
    }

    explicit operator bool() const { return fn_ != nullptr; }
    void operator()() const { fn_(sched_, task_); }

  private:
    Fn fn_ = nullptr;
    void *sched_ = nullptr;
    std::shared_ptr<Task> task_;
};

/** Starter callback for a blocking external call. */
using BlockFn = sim::InlineFunction<void(Task &, BlockResume)>;

/**
 * Blocking external call. The scheduler invokes @p start with a resume
 * token; the task stays blocked until that token is invoked.
 */
struct BlockStep
{
    BlockFn start;
};

using TaskStep =
    std::variant<ComputeStep, SleepStep, MarkerStep, BlockStep>;

/** Scheduler-visible task states. */
enum class TaskState
{
    Created,
    Ready,
    Running,
    Blocked,
    Done,
};

/**
 * A schedulable task.
 *
 * Steps may be pushed while the task runs (self-extending programs),
 * which is how the pipeline layer chains stages that depend on data
 * produced by earlier steps.
 */
class Task
{
  public:
    explicit Task(std::string name, bool background = false,
                  sim::Arena *arena = nullptr);

    const std::string &name() const { return name_; }

    /**
     * Interned label for this task's name, resolved lazily on first
     * use and cached so steady-state trace records skip the interner.
     * Pipelines that reuse task names pre-seed it via setTraceLabel().
     */
    trace::LabelId
    traceLabel(trace::Tracer &tracer) const
    {
        if (!traceLabel_.valid())
            traceLabel_ = tracer.internLabel(name_);
        return traceLabel_;
    }
    void setTraceLabel(trace::LabelId label) { traceLabel_ = label; }

    /** Background tasks never get priority pick of big cores. */
    bool isBackground() const { return background_; }

    Task &compute(sim::Work work, WorkClass cls);
    Task &sleep(sim::DurationNs duration);
    Task &marker(TimeFn fn);
    Task &block(BlockFn start);

    /** Called (with completion time) when the last step finishes. */
    void setOnComplete(TimeFn fn);

    // --- Scheduler interface -----------------------------------------

    TaskState state() const { return state_; }
    void setState(TaskState s) { state_ = s; }

    int lastCore() const { return lastCore_; }
    void setLastCore(int core) { lastCore_ = core; }

    bool hasSteps() const { return front_ < steps.size(); }
    TaskStep &frontStep();
    void popStep();

    void finish(sim::TimeNs now);

  private:
    std::string name_;
    mutable trace::LabelId traceLabel_;
    bool background_ = false;
    TaskState state_ = TaskState::Created;
    int lastCore_ = -1;
    /**
     * Step program: a grow-only vector with a consume cursor instead of
     * a deque, so step storage is one contiguous allocation that can
     * come from the per-run arena (popStep() just advances front_).
     */
    std::vector<TaskStep, sim::ArenaAllocator<TaskStep>> steps;
    std::size_t front_ = 0;
    TimeFn onComplete;
};

/**
 * Create a task on @p arena when one is supplied (allocate_shared, so
 * control block and Task share one arena allocation freed by arena
 * reset), falling back to the heap otherwise. All task shared_ptrs die
 * with the owning SocSystem, which is destroyed before its arena is
 * reset.
 */
std::shared_ptr<Task> makeTask(sim::Arena *arena, std::string name,
                               bool background = false);

} // namespace aitax::soc

#endif // AITAX_SOC_TASK_H
