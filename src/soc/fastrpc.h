/**
 * @file
 * FastRPC channel model — the CPU<->DSP communication path of Fig 7.
 *
 * Every call crosses user -> kernel driver -> (cache flush for
 * coherency) -> DSP-side driver and back. The first call from a
 * process additionally pays the session-open cost (process mapping +
 * library load), the paper's DSP cold-start penalty (Fig 8).
 */

#ifndef AITAX_SOC_FASTRPC_H
#define AITAX_SOC_FASTRPC_H

#include <cstdint>
#include <functional>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "faults/injector.h"
#include "sim/simulator.h"
#include "soc/accelerator.h"
#include "soc/soc_config.h"

namespace aitax::soc {

/** Per-call latency breakdown mirroring the Fig 7 stages. */
struct FastRpcBreakdown
{
    sim::DurationNs sessionOpenNs = 0;
    sim::DurationNs userToKernelNs = 0;
    sim::DurationNs cacheFlushNs = 0;
    sim::DurationNs kernelSignalNs = 0;
    sim::DurationNs queueWaitNs = 0;
    sim::DurationNs dspExecNs = 0;
    sim::DurationNs returnPathNs = 0;
    /** Wasted attempts + backoff waits under injected faults. */
    sim::DurationNs retryNs = 0;
    /** Retries taken (0 on the happy path). */
    std::int32_t retries = 0;
    /** True when the call failed permanently after all attempts. */
    bool failed = false;

    /** Offload overhead: everything except the DSP execution itself. */
    sim::DurationNs overheadNs() const;
    sim::DurationNs totalNs() const;
};

/**
 * The FastRPC channel to one DSP.
 */
class FastRpcChannel
{
  public:
    /**
     * @param tracer optional; with cfg.traceStages set, each call
     * records a "FastRPC" interval covering the CPU-side stages.
     */
    FastRpcChannel(sim::Simulator &sim, FastRpcConfig cfg,
                   Accelerator &dsp, trace::Tracer *tracer = nullptr);

    FastRpcChannel(const FastRpcChannel &) = delete;
    FastRpcChannel &operator=(const FastRpcChannel &) = delete;

    /**
     * Issue a remote call.
     *
     * On the happy path the breakdown reports the Fig 7 stages with
     * queue wait and execution derived from the accelerator's
     * *observed* dispatch/completion times. Under an armed fault
     * injector a call may additionally lose its session (re-paying
     * session open), fail transiently and retry with exponential
     * backoff in simulated time (accumulated in retryNs), or — after
     * maxAttempts — complete with failed=true, in which case the
     * job's own onDone is never invoked and the caller is expected
     * to degrade along the fallback chain.
     *
     * @param process_id calling process (first call pays session open).
     * @param payload_bytes bytes flushed/transferred for arguments.
     * @param job the DSP work to run remotely.
     * @param on_done completion callback, given the call's breakdown.
     */
    void call(std::int32_t process_id, double payload_bytes,
              AccelJob job,
              // aitax-lint: allow(std-function) -- public callback seam
              std::function<void(const FastRpcBreakdown &)> on_done);

    /** True once a process has an open DSP session. */
    bool sessionOpen(std::int32_t process_id) const;

    /** Drop a process's session (app restart / model reload). */
    void closeSession(std::int32_t process_id);

    /** Drop every session (injected subsystem restart). */
    void dropAllSessions() { sessions.clear(); }

    /** Attach a fault injector (session loss + transient failures). */
    void setFaultInjector(faults::FaultInjector *injector)
    {
        faults_ = injector;
    }

    std::int64_t callsCompleted() const { return completed; }

  private:
    /** Per-call state shared across retry attempts. */
    struct CallState;

    sim::Simulator &sim;
    FastRpcConfig cfg;
    Accelerator &dsp;
    trace::Tracer *tracer;
    faults::FaultInjector *faults_ = nullptr;
    trace::TrackId track_;
    trace::LabelId callLabel_;
    std::set<std::int32_t> sessions;
    std::int64_t completed = 0;

    void startAttempt(std::shared_ptr<CallState> state);
    void retryOrFail(std::shared_ptr<CallState> state,
                     sim::DurationNs wasted);
    void finishCall(std::shared_ptr<CallState> state);
};

} // namespace aitax::soc

#endif // AITAX_SOC_FASTRPC_H
