#include "soc/soc_config.h"

namespace aitax::soc {

double
CpuCoreConfig::opsPerCycle(WorkClass cls) const
{
    switch (cls) {
      case WorkClass::Scalar: return scalarOpsPerCycle;
      case WorkClass::VectorF32: return f32OpsPerCycle;
      case WorkClass::VectorI8: return i8OpsPerCycle;
    }
    return 1.0;
}

} // namespace aitax::soc
