#include "soc/system.h"

namespace aitax::soc {

SocSystem::SocSystem(SocConfig cfg_in, std::uint64_t seed,
                     sim::EngineMode engine, sim::Arena *arena)
    : cfg(std::move(cfg_in)), sim_(engine), tracer_(arena),
      fabric_(cfg.fabric),
      dvfs_(cfg.dvfs, sim_), thermal_(cfg.thermal, sim_),
      sched_(sim_, cfg.cluster, thermal_, tracer_, &energy_, &dvfs_,
             &fabric_),
      gpu_(sim_, cfg.gpu, tracer_, &energy_, &fabric_),
      dsp_(sim_, cfg.dsp, tracer_, &energy_, &fabric_),
      rpc_(sim_, cfg.fastrpc, dsp_, &tracer_), rng_(seed, "soc"),
      arena_(arena)
{
}

void
SocSystem::armFaults(const faults::FaultConfig &fault_cfg)
{
    if (!fault_cfg.enabled)
        return;
    sim::RandomStream stream = rng_.fork("faults");
    faults::FaultPlan plan = faults::makeFaultPlan(fault_cfg, stream);
    if (arena_ != nullptr) {
        // Arena-resident injector: destroyed by the arena's finalizer
        // at reset, after this SocSystem is gone.
        faults_ = arena_->create<faults::FaultInjector>(
            std::move(plan), stream, &tracer_);
    } else {
        faultsOwned_ = std::make_unique<faults::FaultInjector>(
            std::move(plan), stream, &tracer_);
        faults_ = faultsOwned_.get();
    }
    dsp_.setFaultInjector(faults_);
    rpc_.setFaultInjector(faults_);
    for (sim::TimeNs when : faults_->plan().thermalEmergencyAtNs) {
        const double heat = faults_->config().thermalEmergencyHeat;
        sim_.scheduleAt(when, [this, heat] {
            thermal_.triggerEmergency(heat);
            faults_->recordThermalEmergency(sim_.now());
        });
    }
}

bool
SocSystem::captureWarmup(WarmupSnapshot &out, std::uint64_t seq_base)
{
    // Memoizable only when the system is quiescent apart from the
    // fault plan's unfired emergencies: a running/queued task would
    // need its full continuation captured, and a fired emergency bakes
    // seed-dependent heat and trace records into the snapshot.
    if (!sched_.idle())
        return false;
    if (fabric_.activeClients() != 0)
        return false;
    std::size_t pending_emergencies = 0;
    if (faults_) {
        if (faults_->stats().thermalEmergencies != 0)
            return false;
        pending_emergencies = faults_->plan().thermalEmergencyAtNs.size();
    }
    if (sim_.pendingEvents() != pending_emergencies)
        return false;

    const sim::Simulator::ClockState cs = sim_.clockState();
    if (!cs.order.poppedAny || cs.order.lastPoppedSeq < seq_base ||
        cs.order.nextSeq < seq_base)
        return false;
    out.endTimeNs = cs.now;
    out.eventsExecuted = cs.executed;
    out.relNextSeq = cs.order.nextSeq - seq_base;
    out.relLastPoppedSeq = cs.order.lastPoppedSeq - seq_base;
    out.lastPoppedWhen = cs.order.lastPoppedWhen;
    out.sched = sched_.warmupState();
    out.thermal = thermal_.state();
    out.dvfs = dvfs_.state();
    out.energy = energy_.state();
    out.tracer.cloneFrom(tracer_);
    return true;
}

void
SocSystem::restoreWarmup(const WarmupSnapshot &snap)
{
    // Rebase the snapshot's relative seqs onto this system's own
    // watermark: armFaults() already reserved seqs for this run's
    // emergencies, possibly a different count than the captured run's.
    const std::uint64_t base = sim_.seqWatermark();
    sim::Simulator::ClockState cs;
    cs.now = snap.endTimeNs;
    cs.executed = snap.eventsExecuted;
    cs.order.nextSeq = base + snap.relNextSeq;
    cs.order.lastPoppedWhen = snap.lastPoppedWhen;
    cs.order.lastPoppedSeq = base + snap.relLastPoppedSeq;
    cs.order.poppedAny = true;
    sim_.setClockState(cs);
    sched_.setWarmupState(snap.sched);
    thermal_.setState(snap.thermal);
    dvfs_.setState(snap.dvfs);
    energy_.setState(snap.energy);
    fabric_.setActiveClients(0);
    tracer_.cloneFrom(snap.tracer);
}

} // namespace aitax::soc
