#include "soc/system.h"

namespace aitax::soc {

SocSystem::SocSystem(SocConfig cfg_in, std::uint64_t seed)
    : cfg(std::move(cfg_in)), fabric_(cfg.fabric),
      dvfs_(cfg.dvfs, sim_), thermal_(cfg.thermal, sim_),
      sched_(sim_, cfg.cluster, thermal_, tracer_, &energy_, &dvfs_,
             &fabric_),
      gpu_(sim_, cfg.gpu, tracer_, &energy_, &fabric_),
      dsp_(sim_, cfg.dsp, tracer_, &energy_, &fabric_),
      rpc_(sim_, cfg.fastrpc, dsp_, &tracer_), rng_(seed, "soc")
{
}

} // namespace aitax::soc
