#include "soc/system.h"

namespace aitax::soc {

SocSystem::SocSystem(SocConfig cfg_in, std::uint64_t seed)
    : cfg(std::move(cfg_in)), fabric_(cfg.fabric),
      dvfs_(cfg.dvfs, sim_), thermal_(cfg.thermal, sim_),
      sched_(sim_, cfg.cluster, thermal_, tracer_, &energy_, &dvfs_,
             &fabric_),
      gpu_(sim_, cfg.gpu, tracer_, &energy_, &fabric_),
      dsp_(sim_, cfg.dsp, tracer_, &energy_, &fabric_),
      rpc_(sim_, cfg.fastrpc, dsp_, &tracer_), rng_(seed, "soc")
{
}

void
SocSystem::armFaults(const faults::FaultConfig &fault_cfg)
{
    if (!fault_cfg.enabled)
        return;
    sim::RandomStream stream = rng_.fork("faults");
    faults::FaultPlan plan = faults::makeFaultPlan(fault_cfg, stream);
    faults_ = std::make_unique<faults::FaultInjector>(
        std::move(plan), stream, &tracer_);
    dsp_.setFaultInjector(faults_.get());
    rpc_.setFaultInjector(faults_.get());
    for (sim::TimeNs when : faults_->plan().thermalEmergencyAtNs) {
        const double heat = faults_->config().thermalEmergencyHeat;
        sim_.scheduleAt(when, [this, heat] {
            thermal_.triggerEmergency(heat);
            faults_->recordThermalEmergency(sim_.now());
        });
    }
}

} // namespace aitax::soc
