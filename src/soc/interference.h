/**
 * @file
 * Background system activity generator.
 *
 * Real applications never run on a quiet system: UI rendering, binder
 * transactions and system daemons share the CPU complex. This module
 * injects that activity, producing the wide app-mode latency
 * distributions of Fig 11 (run-to-run variability) in contrast to the
 * tight benchmark-mode distributions.
 *
 * Arrivals flow through a sim::LocalEventQueue with one FIFO stream
 * per source (UI ticks, daemons). The Reference engine pre-schedules
 * every arrival into the global heap — thousands of entries that keep
 * the 4-ary heap deep for the entire run (profiling showed heap sift
 * work at ~50% of sweep time). The Fast engine parks arrivals locally
 * and keeps only the component's earliest entry resident in the heap;
 * every arrival still carries the exact (when, seq) pair the Reference
 * engine would have assigned (seqs are reserved at push time), so pop
 * order — and thus every trace byte and RNG draw — is unchanged.
 */

#ifndef AITAX_SOC_INTERFERENCE_H
#define AITAX_SOC_INTERFERENCE_H

#include <cstdint>

#include "sim/arena.h"
#include "sim/local_queue.h"
#include "sim/random.h"
#include "sim/simulator.h"
#include "soc/scheduler.h"

namespace aitax::soc {

/** Interference intensity knobs. */
struct InterferenceConfig
{
    bool enabled = true;
    /** UI/compositor tick (60 Hz frame handling). */
    sim::DurationNs uiPeriodNs = sim::usToNs(16667.0);
    /** Mean UI work per tick (scalar ops). */
    double uiOps = 2.0e6;
    /** Mean rate of short daemon/binder tasks, per second. */
    double daemonRatePerSec = 30.0;
    /** Mean daemon task work (scalar ops). */
    double daemonOps = 1.5e6;
    /** Log-normal sigma applied to every injected task's work. */
    double jitterSigma = 0.45;
};

/**
 * Periodically submits interference tasks to the scheduler.
 */
class InterferenceGenerator
{
  public:
    /**
     * @param tracer optional; when given, the fixed task names are
     * interned once so injected tasks trace without re-interning.
     * @param arena optional per-run arena for injected tasks.
     */
    InterferenceGenerator(sim::Simulator &sim, OsScheduler &sched,
                          InterferenceConfig cfg, sim::RandomStream rng,
                          trace::Tracer *tracer = nullptr,
                          sim::Arena *arena = nullptr);

    /** Schedule interference task arrivals up to @p horizon. */
    void start(sim::TimeNs horizon);

    std::int64_t tasksInjected() const { return injected; }

    /** Arrival-queue counters (lazy-feed observability). */
    const sim::LocalEventQueue &arrivalQueue() const { return queue_; }

  private:
    /** LocalEventQueue stream per arrival source. */
    static constexpr std::size_t kUiStream = 0;
    static constexpr std::size_t kDaemonStream = 1;
    static constexpr std::size_t kStreamCount = 2;

    sim::Simulator &sim;
    OsScheduler &sched;
    InterferenceConfig cfg;
    sim::RandomStream rng;
    sim::Arena *arena_;
    sim::LocalEventQueue queue_;
    std::int64_t injected = 0;
    trace::LabelId uiLabel_;
    trace::LabelId daemonLabel_;

    void submitTask(const char *name, trace::LabelId label,
                    double mean_ops, bool background);
};

} // namespace aitax::soc

#endif // AITAX_SOC_INTERFERENCE_H
