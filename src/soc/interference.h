/**
 * @file
 * Background system activity generator.
 *
 * Real applications never run on a quiet system: UI rendering, binder
 * transactions and system daemons share the CPU complex. This module
 * injects that activity, producing the wide app-mode latency
 * distributions of Fig 11 (run-to-run variability) in contrast to the
 * tight benchmark-mode distributions.
 *
 * Scheduling strategy depends on the engine (sim/engine_mode.h). The
 * Reference engine pre-schedules every arrival over the whole horizon
 * — thousands of heap entries that keep the 4-ary heap deep for the
 * entire run (profiling showed heap sift work at ~50% of sweep time).
 * The Fast engine reserves the identical FIFO seq band up front, then
 * feeds arrivals one at a time, each event chaining the next: the heap
 * stays shallow while every arrival keeps the exact (when, seq) pair
 * the Reference engine would have assigned, so pop order — and thus
 * every trace byte and RNG draw — is unchanged.
 */

#ifndef AITAX_SOC_INTERFERENCE_H
#define AITAX_SOC_INTERFERENCE_H

#include <cstdint>
#include <vector>

#include "sim/random.h"
#include "sim/simulator.h"
#include "soc/scheduler.h"

namespace aitax::soc {

/** Interference intensity knobs. */
struct InterferenceConfig
{
    bool enabled = true;
    /** UI/compositor tick (60 Hz frame handling). */
    sim::DurationNs uiPeriodNs = sim::usToNs(16667.0);
    /** Mean UI work per tick (scalar ops). */
    double uiOps = 2.0e6;
    /** Mean rate of short daemon/binder tasks, per second. */
    double daemonRatePerSec = 30.0;
    /** Mean daemon task work (scalar ops). */
    double daemonOps = 1.5e6;
    /** Log-normal sigma applied to every injected task's work. */
    double jitterSigma = 0.45;
};

/**
 * Periodically submits interference tasks to the scheduler.
 */
class InterferenceGenerator
{
  public:
    /**
     * @param tracer optional; when given, the fixed task names are
     * interned once so injected tasks trace without re-interning.
     */
    InterferenceGenerator(sim::Simulator &sim, OsScheduler &sched,
                          InterferenceConfig cfg, sim::RandomStream rng,
                          trace::Tracer *tracer = nullptr);

    /** Schedule interference task arrivals up to @p horizon. */
    void start(sim::TimeNs horizon);

    std::int64_t tasksInjected() const { return injected; }

  private:
    sim::Simulator &sim;
    OsScheduler &sched;
    InterferenceConfig cfg;
    sim::RandomStream rng;
    std::int64_t injected = 0;
    trace::LabelId uiLabel_;
    trace::LabelId daemonLabel_;
    // Chained-arrival state (Fast engine): each arrival schedules its
    // successor with the next seq of the band reserved at start().
    std::uint64_t uiSeqBase_ = 0;
    std::int64_t uiNext_ = 0;
    std::int64_t uiCount_ = 0;
    std::uint64_t daemonSeqBase_ = 0;
    std::size_t daemonNext_ = 0;
    std::vector<sim::TimeNs> daemonTimes_;

    void submitTask(const char *name, trace::LabelId label,
                    double mean_ops, bool background);
    void scheduleNextUiTick();
    void scheduleNextDaemon();
};

} // namespace aitax::soc

#endif // AITAX_SOC_INTERFERENCE_H
