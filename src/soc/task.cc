#include "soc/task.h"

#include <cassert>

namespace aitax::soc {

Task::Task(std::string name, bool background, sim::Arena *arena)
    : name_(std::move(name)), background_(background),
      steps(sim::ArenaAllocator<TaskStep>(arena))
{
}

Task &
Task::compute(sim::Work work, WorkClass cls)
{
    steps.push_back(ComputeStep{work, cls, 1.0});
    return *this;
}

Task &
Task::sleep(sim::DurationNs duration)
{
    steps.push_back(SleepStep{duration});
    return *this;
}

Task &
Task::marker(TimeFn fn)
{
    steps.push_back(MarkerStep{std::move(fn)});
    return *this;
}

Task &
Task::block(BlockFn start)
{
    steps.push_back(BlockStep{std::move(start)});
    return *this;
}

void
Task::setOnComplete(TimeFn fn)
{
    onComplete = std::move(fn);
}

TaskStep &
Task::frontStep()
{
    assert(hasSteps());
    return steps[front_];
}

void
Task::popStep()
{
    assert(hasSteps());
    // Grow-only storage: advance the cursor, but destroy the consumed
    // step's captures now (as the old deque's pop_front did) so resume
    // tokens and shared_ptrs don't outlive their step.
    steps[front_].emplace<SleepStep>();
    ++front_;
}

void
Task::finish(sim::TimeNs now)
{
    assert(!hasSteps());
    state_ = TaskState::Done;
    if (onComplete)
        onComplete(now);
}

std::shared_ptr<Task>
makeTask(sim::Arena *arena, std::string name, bool background)
{
    if (arena != nullptr)
        return std::allocate_shared<Task>(sim::ArenaAllocator<Task>(arena),
                                          std::move(name), background, arena);
    return std::make_shared<Task>(std::move(name), background);
}

} // namespace aitax::soc
