#include "soc/task.h"

#include <cassert>

namespace aitax::soc {

Task::Task(std::string name, bool background)
    : name_(std::move(name)), background_(background)
{
}

Task &
Task::compute(sim::Work work, WorkClass cls)
{
    steps.push_back(ComputeStep{work, cls, 1.0});
    return *this;
}

Task &
Task::sleep(sim::DurationNs duration)
{
    steps.push_back(SleepStep{duration});
    return *this;
}

Task &
Task::marker(TimeFn fn)
{
    steps.push_back(MarkerStep{std::move(fn)});
    return *this;
}

Task &
Task::block(
    std::function<void(Task &, std::function<void()> resume)> start)
{
    steps.push_back(BlockStep{std::move(start)});
    return *this;
}

void
Task::setOnComplete(TimeFn fn)
{
    onComplete = std::move(fn);
}

TaskStep &
Task::frontStep()
{
    assert(!steps.empty());
    return steps.front();
}

void
Task::popStep()
{
    assert(!steps.empty());
    steps.pop_front();
}

void
Task::finish(sim::TimeNs now)
{
    assert(steps.empty());
    state_ = TaskState::Done;
    if (onComplete)
        onComplete(now);
}

} // namespace aitax::soc
