/**
 * @file
 * Table II platform presets: the four Snapdragon systems the paper
 * characterizes, with their Adreno GPUs and Hexagon DSPs.
 */

#ifndef AITAX_SOC_CHIPSETS_H
#define AITAX_SOC_CHIPSETS_H

#include <string_view>
#include <vector>

#include "soc/soc_config.h"

namespace aitax::soc {

/** Open-Q 835 uSOM: Snapdragon 835, Adreno 540, Hexagon 682. */
SocConfig makeSnapdragon835();

/** Google Pixel 3: Snapdragon 845, Adreno 630, Hexagon 685.
 *  The paper's primary measurement platform. */
SocConfig makeSnapdragon845();

/** Snapdragon 855 HDK: Adreno 640, Hexagon 690. */
SocConfig makeSnapdragon855();

/** Snapdragon 865 HDK: Adreno 650, Hexagon 698. */
SocConfig makeSnapdragon865();

/** All four Table II platforms, oldest first. */
std::vector<SocConfig> allPlatforms();

/** Look up a platform by SoC name (e.g. "Snapdragon 845"). */
SocConfig platformByName(std::string_view soc_name);

} // namespace aitax::soc

#endif // AITAX_SOC_CHIPSETS_H
