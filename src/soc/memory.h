/**
 * @file
 * Shared memory fabric (AXI) contention model, opt-in.
 *
 * The baseline model gives every client its private sustained
 * bandwidth, which is accurate while few units are active. With
 * contention enabled, concurrently active high-bandwidth clients
 * (busy CPU cores and accelerators) derate each other — letting
 * experiments explore an interaction the paper could not isolate on
 * real hardware: DSP inference slowing under heavy CPU memory traffic
 * even though compute resources are disjoint.
 */

#ifndef AITAX_SOC_MEMORY_H
#define AITAX_SOC_MEMORY_H

#include <cassert>

namespace aitax::soc {

/** Fabric parameters. */
struct MemoryFabricConfig
{
    bool contentionEnabled = false;
    /** Derate slope per additional concurrent client. */
    double deratePerClient = 0.15;
    /** Floor on the derate factor. */
    double minFactor = 0.45;
};

/**
 * Counts active bandwidth clients and answers derate queries.
 */
class MemoryFabric
{
  public:
    explicit MemoryFabric(MemoryFabricConfig cfg = {})
        : cfg(cfg)
    {
    }

    const MemoryFabricConfig &config() const { return cfg; }

    /** A client became active (+1) or idle (-1). */
    void
    onClientChange(int delta)
    {
        clients += delta;
        assert(clients >= 0);
    }

    int activeClients() const { return clients; }

    /** Warm-up prefix snapshot restore (capture requires 0 clients). */
    void
    setActiveClients(int n)
    {
        assert(n >= 0);
        clients = n;
    }

    /**
     * Effective-bandwidth factor seen by one active client, given the
     * other concurrently active clients: 1 / (1 + slope * others),
     * floored at minFactor. Always 1.0 when contention is disabled.
     */
    double
    derateFactor() const
    {
        if (!cfg.contentionEnabled)
            return 1.0;
        const int others = clients > 0 ? clients - 1 : 0;
        const double f =
            1.0 / (1.0 + cfg.deratePerClient * static_cast<double>(others));
        return f < cfg.minFactor ? cfg.minFactor : f;
    }

  private:
    MemoryFabricConfig cfg;
    int clients = 0;
};

} // namespace aitax::soc

#endif // AITAX_SOC_MEMORY_H
