/**
 * @file
 * The assembled SoC: simulator + scheduler + accelerators + FastRPC +
 * thermal + tracer, built from a SocConfig (one Table II platform).
 */

#ifndef AITAX_SOC_SYSTEM_H
#define AITAX_SOC_SYSTEM_H

#include <cstdint>
#include <memory>

#include "faults/fault_plan.h"
#include "faults/injector.h"
#include "sim/random.h"
#include "sim/simulator.h"
#include "soc/accelerator.h"
#include "soc/dvfs.h"
#include "soc/energy.h"
#include "soc/fastrpc.h"
#include "soc/memory.h"
#include "soc/scheduler.h"
#include "soc/soc_config.h"
#include "soc/thermal.h"
#include "trace/tracer.h"

namespace aitax::soc {

/**
 * One simulated phone.
 *
 * Owns every hardware model; experiments construct a SocSystem per
 * run, submit tasks, then drive the simulator to quiescence.
 */
class SocSystem
{
  public:
    explicit SocSystem(SocConfig cfg, std::uint64_t seed = 1);

    SocSystem(const SocSystem &) = delete;
    SocSystem &operator=(const SocSystem &) = delete;

    const SocConfig &config() const { return cfg; }

    sim::Simulator &simulator() { return sim_; }
    trace::Tracer &tracer() { return tracer_; }
    ThermalModel &thermal() { return thermal_; }
    OsScheduler &scheduler() { return sched_; }
    EnergyMeter &energy() { return energy_; }
    DvfsGovernor &dvfs() { return dvfs_; }
    MemoryFabric &fabric() { return fabric_; }
    Accelerator &gpu() { return gpu_; }
    Accelerator &dsp() { return dsp_; }
    FastRpcChannel &fastrpc() { return rpc_; }
    sim::RandomStream &rng() { return rng_; }

    /**
     * Arm fault injection for this run. The plan is drawn from
     * `rng().fork("faults")`, so a fixed (seed, config) pair replays
     * the same schedule; a disabled config is a no-op and leaves the
     * simulation byte-identical to a never-armed one. Call before
     * scheduling workload — arming forks the RNG and schedules the
     * plan's thermal emergencies.
     */
    void armFaults(const faults::FaultConfig &fault_cfg);

    /** The armed injector, or nullptr when faults are disabled. */
    faults::FaultInjector *faults() { return faults_.get(); }

    /** Run the simulation until all events drain; returns end time. */
    sim::TimeNs run() { return sim_.run(); }

  private:
    SocConfig cfg;
    sim::Simulator sim_;
    trace::Tracer tracer_;
    EnergyMeter energy_;
    MemoryFabric fabric_;
    DvfsGovernor dvfs_;
    ThermalModel thermal_;
    OsScheduler sched_;
    Accelerator gpu_;
    Accelerator dsp_;
    FastRpcChannel rpc_;
    sim::RandomStream rng_;
    std::unique_ptr<faults::FaultInjector> faults_;
};

} // namespace aitax::soc

#endif // AITAX_SOC_SYSTEM_H
