/**
 * @file
 * The assembled SoC: simulator + scheduler + accelerators + FastRPC +
 * thermal + tracer, built from a SocConfig (one Table II platform).
 */

#ifndef AITAX_SOC_SYSTEM_H
#define AITAX_SOC_SYSTEM_H

#include <cstdint>
#include <memory>

#include "faults/fault_plan.h"
#include "faults/injector.h"
#include "sim/arena.h"
#include "sim/random.h"
#include "sim/simulator.h"
#include "soc/accelerator.h"
#include "soc/dvfs.h"
#include "soc/energy.h"
#include "soc/fastrpc.h"
#include "soc/memory.h"
#include "soc/scheduler.h"
#include "soc/soc_config.h"
#include "soc/thermal.h"
#include "trace/tracer.h"

namespace aitax::soc {

/**
 * One simulated phone.
 *
 * Owns every hardware model; experiments construct a SocSystem per
 * run, submit tasks, then drive the simulator to quiescence.
 */
/**
 * Post-warm-up state of a quiescent SocSystem, for warm-up prefix
 * memoization. Scenarios sharing a (chipset, model, delegate, ...)
 * prefix capture this once and restore it onto fresh systems instead
 * of re-simulating the warm-up. Event seqs are stored relative to the
 * pre-warm-up seq watermark so a restored run whose fault plan
 * reserved a different number of emergency seqs still numbers — and
 * therefore pops — its post-warm-up events identically to a run that
 * executed the warm-up itself. Not copyable (it embeds a full Tracer);
 * shared across threads behind a shared_ptr<const WarmupSnapshot>.
 */
struct WarmupSnapshot
{
    sim::TimeNs endTimeNs = 0;
    std::uint64_t eventsExecuted = 0;
    std::uint64_t relNextSeq = 0;
    std::uint64_t relLastPoppedSeq = 0;
    sim::TimeNs lastPoppedWhen = 0;
    OsScheduler::WarmupState sched;
    ThermalModel::State thermal;
    DvfsGovernor::State dvfs;
    EnergyMeter::State energy{};
    trace::Tracer tracer;
};

class SocSystem
{
  public:
    /**
     * @param arena optional per-run arena. When set, the fault
     *        injector and every task created through soc::makeTask /
     *        the pipeline layer are bump-allocated from it; the caller
     *        must destroy the SocSystem (and everything holding its
     *        tasks) before resetting the arena.
     */
    explicit SocSystem(SocConfig cfg, std::uint64_t seed = 1,
                       sim::EngineMode engine = sim::EngineMode::Fast,
                       sim::Arena *arena = nullptr);

    SocSystem(const SocSystem &) = delete;
    SocSystem &operator=(const SocSystem &) = delete;

    const SocConfig &config() const { return cfg; }

    sim::Simulator &simulator() { return sim_; }
    trace::Tracer &tracer() { return tracer_; }
    ThermalModel &thermal() { return thermal_; }
    OsScheduler &scheduler() { return sched_; }
    EnergyMeter &energy() { return energy_; }
    DvfsGovernor &dvfs() { return dvfs_; }
    MemoryFabric &fabric() { return fabric_; }
    Accelerator &gpu() { return gpu_; }
    Accelerator &dsp() { return dsp_; }
    FastRpcChannel &fastrpc() { return rpc_; }
    sim::RandomStream &rng() { return rng_; }

    /**
     * Arm fault injection for this run. The plan is drawn from
     * `rng().fork("faults")`, so a fixed (seed, config) pair replays
     * the same schedule; a disabled config is a no-op and leaves the
     * simulation byte-identical to a never-armed one. Call before
     * scheduling workload — arming forks the RNG and schedules the
     * plan's thermal emergencies.
     */
    void armFaults(const faults::FaultConfig &fault_cfg);

    /** The armed injector, or nullptr when faults are disabled. */
    faults::FaultInjector *faults() { return faults_; }

    /** The per-run arena, or nullptr for heap-backed runs. */
    sim::Arena *arena() { return arena_; }

    /** Run the simulation until all events drain; returns end time. */
    sim::TimeNs run() { return sim_.run(); }

    /**
     * Capture post-warm-up state into @p out for prefix memoization.
     *
     * @param seq_base the queue's seq watermark recorded before any
     *        warm-up work was scheduled (i.e. right after armFaults);
     *        snapshot seqs are stored relative to it.
     * @return false when the current state is not memoizable — a task
     *         still running or queued, an active fabric client, a
     *         thermal emergency already fired, or pending events other
     *         than the fault plan's unfired emergencies. Callers then
     *         simply keep the non-memoized path; refusing capture is
     *         never incorrect.
     */
    bool captureWarmup(WarmupSnapshot &out, std::uint64_t seq_base);

    /**
     * Re-apply a captured snapshot to this freshly constructed system
     * (construct, armFaults if faulted, then restore — nothing else
     * may have been scheduled). Only valid when every emergency in
     * this run's fault plan fires after snap.endTimeNs.
     */
    void restoreWarmup(const WarmupSnapshot &snap);

  private:
    SocConfig cfg;
    sim::Simulator sim_;
    trace::Tracer tracer_;
    EnergyMeter energy_;
    MemoryFabric fabric_;
    DvfsGovernor dvfs_;
    ThermalModel thermal_;
    OsScheduler sched_;
    Accelerator gpu_;
    Accelerator dsp_;
    FastRpcChannel rpc_;
    sim::RandomStream rng_;
    sim::Arena *arena_ = nullptr;
    /** Armed injector; arena-resident when arena_ is set. */
    faults::FaultInjector *faults_ = nullptr;
    /** Heap ownership of faults_ when there is no arena. */
    std::unique_ptr<faults::FaultInjector> faultsOwned_;
};

} // namespace aitax::soc

#endif // AITAX_SOC_SYSTEM_H
