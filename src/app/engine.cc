#include "app/engine.h"

#include <cassert>

namespace aitax::app {

using runtime::tflite::DelegateKind;
using runtime::tflite::Interpreter;
using runtime::tflite::InterpreterOptions;

std::string_view
frameworkName(FrameworkKind kind)
{
    switch (kind) {
      case FrameworkKind::TfliteCpu: return "tflite-cpu";
      case FrameworkKind::TfliteGpu: return "tflite-gpu";
      case FrameworkKind::TfliteHexagon: return "tflite-hexagon";
      case FrameworkKind::TfliteNnapi: return "nnapi";
      case FrameworkKind::SnpeDsp: return "snpe-dsp";
    }
    return "unknown";
}

InferenceEngine::InferenceEngine(const models::ModelInfo &info,
                                 tensor::DType dtype, FrameworkKind kind,
                                 int threads)
    : kind_(kind)
{
    // Shared immutable graph: every engine for this (model, dtype)
    // points at one cached instance instead of rebuilding it.
    auto g = models::cachedGraph(info, dtype);
    if (kind == FrameworkKind::SnpeDsp) {
        snpe_ = std::make_unique<runtime::snpe::Network>(
            std::move(g), dtype, runtime::snpe::RuntimeTarget::Dsp);
        return;
    }
    InterpreterOptions opts;
    opts.threads = threads;
    switch (kind) {
      case FrameworkKind::TfliteCpu:
        opts.delegate = DelegateKind::None;
        break;
      case FrameworkKind::TfliteGpu:
        opts.delegate = DelegateKind::Gpu;
        break;
      case FrameworkKind::TfliteHexagon:
        opts.delegate = DelegateKind::Hexagon;
        break;
      case FrameworkKind::TfliteNnapi:
        opts.delegate = DelegateKind::Nnapi;
        break;
      case FrameworkKind::SnpeDsp:
        break; // handled above
    }
    tflite_ = std::make_unique<Interpreter>(std::move(g), dtype, opts);
}

const runtime::ExecutionPlan &
InferenceEngine::plan() const
{
    return snpe_ ? snpe_->plan() : tflite_->plan();
}

sim::DurationNs
InferenceEngine::initNs() const
{
    return snpe_ ? snpe_->initNs() : tflite_->modelInitNs();
}

void
InferenceEngine::appendInvoke(soc::SocSystem &sys, soc::Task &task,
                              runtime::ExecOptions opts) const
{
    if (snpe_) {
        snpe_->appendInvoke(sys, task, std::move(opts));
        return;
    }
    tflite_->appendInvoke(sys, task, std::move(opts));
}

} // namespace aitax::app
