#include "app/harness.h"

namespace aitax::app {

std::string_view
harnessModeName(HarnessMode m)
{
    switch (m) {
      case HarnessMode::CliBenchmark: return "cli-benchmark";
      case HarnessMode::BenchmarkApp: return "benchmark-app";
      case HarnessMode::AndroidApp: return "android-app";
    }
    return "unknown";
}

HarnessProfile
HarnessProfile::forMode(HarnessMode mode)
{
    HarnessProfile p;
    switch (mode) {
      case HarnessMode::CliBenchmark:
        p.computeNoiseSigma = 0.008;
        break;
      case HarnessMode::BenchmarkApp:
        p.computeNoiseSigma = 0.02;
        p.interference = true;
        // Only UI ticks; the benchmark app keeps the screen mostly
        // static.
        p.interferenceCfg.daemonRatePerSec = 5.0;
        p.interferenceCfg.uiOps = 1.0e6;
        break;
      case HarnessMode::AndroidApp:
        p.usesCamera = true;
        p.fullPipeline = true;
        p.interference = true;
        p.computeNoiseSigma = 0.05;
        p.managedRuntimeFactor = 9.0;
        p.interferenceCfg.daemonRatePerSec = 30.0;
        p.interferenceCfg.uiOps = 2.5e6;
        break;
    }
    return p;
}

} // namespace aitax::app
