/**
 * @file
 * The end-to-end ML application pipeline (Fig 2): data capture ->
 * pre-processing -> framework/inference -> post-processing, packaged
 * in any of the three harness modes, with per-stage latency
 * accounting into a core::TaxReport.
 */

#ifndef AITAX_APP_PIPELINE_H
#define AITAX_APP_PIPELINE_H

#include <functional>
#include <memory>
#include <vector>

#include "app/engine.h"
#include "app/harness.h"
#include "capture/camera.h"
#include "capture/random_source.h"
#include "core/tax_report.h"
#include "drivers/instrumentation.h"
#include "soc/system.h"

namespace aitax::app {

/** Full pipeline configuration. */
struct PipelineConfig
{
    const models::ModelInfo *model = nullptr;
    tensor::DType dtype = tensor::DType::Float32;
    FrameworkKind framework = FrameworkKind::TfliteCpu;
    HarnessMode mode = HarnessMode::AndroidApp;
    int threads = 4;
    std::int32_t processId = 1;
    capture::CameraConfig camera;
    capture::StdlibFlavor stdlib = capture::StdlibFlavor::Libcpp;
    /** Enable the Section III-D driver instrumentation probe. */
    bool instrumentationEnabled = false;
    /**
     * Offload image pre-processing to the DSP through a FastCV-like
     * vendor vision framework instead of running it in the app's
     * managed runtime — the optimization the paper's introduction
     * suggests ("consider dropping an expensive tensor accelerator in
     * favor of a cheaper DSP that can also do pre-processing").
     * Only meaningful in AndroidApp mode with image models.
     */
    bool preprocessOnDsp = false;
    /**
     * Streaming capture: the camera delivers frames continuously into
     * a depth-1 buffer and the app consumes the latest one, instead of
     * requesting a frame and waiting a full sensor period. This is how
     * production camera apps hide capture latency; with it on, the
     * capture stage shrinks to dequeue + copy time whenever the
     * pipeline runs slower than the sensor.
     */
    bool streamingCapture = false;
    /** Disable the mode's background interference (for isolation). */
    bool suppressInterference = false;
    /** topK size for classification post-processing. */
    std::int32_t topK = 5;
};

/**
 * Witness record for one streaming-capture frame consumption: the
 * frame's sensor arrival time and when the app dequeued it. The
 * verify tier checks causality (consumedAt >= readyAt) — the app
 * must never consume a frame the sensor has not produced yet.
 */
struct FrameConsume
{
    std::int64_t frame = 0;
    sim::TimeNs readyAt = 0;
    sim::TimeNs consumedAt = 0;
};

/**
 * One application instance bound to a simulated SoC.
 */
class Application
{
  public:
    Application(soc::SocSystem &sys, PipelineConfig cfg);

    const PipelineConfig &config() const { return cfg; }
    const HarnessProfile &profile() const { return prof; }
    const InferenceEngine &engine() const { return engine_; }

    /** Framework + model initialization latency (cold start). */
    sim::DurationNs modelInitNs() const { return engine_.initNs(); }

    /**
     * Schedule model init followed by @p n pipeline runs.
     *
     * Stage latencies land in @p report as each run finishes; the
     * caller drives the simulator (sys.run()).
     */
    void scheduleRuns(int n, core::TaxReport &report,
                      std::function<void(sim::TimeNs)> on_done = {});

    // --- Split warm-up API (warm-up prefix memoization) --------------
    // scheduleWarmup() + drive to warmupComplete() + snapshot +
    // scheduleFramesAfterWarmup() is event-for-event identical to a
    // single scheduleRuns(): the only difference is that the init
    // task's completion sets a flag instead of chaining straight into
    // frame 0, and nothing observable happens in between — no RNG
    // draws, no scheduling — so frame events get the same seq numbers
    // either way.

    /** Schedule interference + model init for an @p n-run session. */
    void scheduleWarmup(int n, core::TaxReport &report);

    /** True once the warm-up init task has completed. */
    bool warmupComplete() const { return warmupComplete_; }

    /**
     * Adopt a restored warm-up snapshot (cache hit): the init task's
     * effects are already in the system state, so mark the warm-up
     * complete without scheduling anything.
     */
    void adoptRestoredWarmup() { warmupComplete_ = true; }

    /** Schedule the @p n pipeline runs after warmupComplete(). */
    void scheduleFramesAfterWarmup(
        int n, core::TaxReport &report,
        std::function<void(sim::TimeNs)> on_done = {});

    /** FastRPC breakdowns collected across runs (Fig 7/8 data). */
    const std::vector<soc::FastRpcBreakdown> &rpcLog() const
    {
        return rpcLog_;
    }

    /** Streaming-capture consumption witnesses (empty when off). */
    const std::vector<FrameConsume> &frameLog() const
    {
        return frameLog_;
    }

  private:
    soc::SocSystem &sys;
    PipelineConfig cfg;
    HarnessProfile prof;
    InferenceEngine engine_;
    drivers::Instrumentation instr;
    capture::CameraModel camera_;
    capture::RandomInputSource randomSource;
    std::vector<soc::FastRpcBreakdown> rpcLog_;
    /** Mode's interference source; arena-resident when sys has one. */
    soc::InterferenceGenerator *interference = nullptr;
    std::unique_ptr<soc::InterferenceGenerator> interferenceOwned_;
    sim::RandomStream rng;
    /** Per-frame names/labels built once instead of per startFrame. */
    std::string pipelineTaskName_;
    std::string inferLabel_;
    std::string fastcvJobName_;
    trace::LabelId pipelineLabel_;
    trace::LabelId fastcvLabel_;
    /** Streaming-capture state: arrival phase and last consumed frame. */
    sim::TimeNs streamPhaseNs = 0;
    std::int64_t lastConsumedFrame = -1;
    std::vector<FrameConsume> frameLog_;
    /** Degraded-mode time accrued by the in-flight frame. */
    sim::DurationNs frameDegradedNs_ = 0;
    bool warmupComplete_ = false;

    void ensureReportLabel(core::TaxReport &report) const;
    void scheduleInit(int n, core::TaxReport &report,
                      soc::TimeFn on_init_done);
    void startFrame(int index, int total, core::TaxReport *report,
                    std::shared_ptr<std::function<void(sim::TimeNs)>>
                        on_done);
    void appendCapture(soc::Task &task, double noise);
    void appendPreProcessing(soc::Task &task, double noise);
    void appendPostProcessing(soc::Task &task, double noise);
    std::int64_t inputElements() const;
};

} // namespace aitax::app

#endif // AITAX_APP_PIPELINE_H
