#include "app/background_load.h"

#include <cassert>

#include "runtime/execute.h"

namespace aitax::app {

BackgroundInferenceLoop::BackgroundInferenceLoop(soc::SocSystem &sys,
                                                 BackgroundLoadConfig cfg_in)
    : sys(sys), cfg(std::move(cfg_in)),
      engine(*cfg.model, cfg.dtype, cfg.framework, cfg.threads)
{
    assert(cfg.model != nullptr);
}

void
BackgroundInferenceLoop::start(sim::TimeNs horizon)
{
    horizon_ = horizon;
    next();
}

void
BackgroundInferenceLoop::next()
{
    if (stopped || sys.simulator().now() >= horizon_)
        return;

    auto task = soc::makeTask(
        sys.arena(),
        "bg_" + cfg.model->id + "_p" + std::to_string(cfg.processId),
        /*background=*/true);

    runtime::ExecOptions exec;
    exec.processId = cfg.processId;
    exec.cpuThreads = cfg.threads;
    exec.background = true;
    exec.label = "bg_infer_p" + std::to_string(cfg.processId);
    engine.appendInvoke(sys, *task, exec);

    task->setOnComplete([this](sim::TimeNs) {
        ++completed;
        next();
    });
    sys.scheduler().submit(std::move(task));
}

} // namespace aitax::app
