#include "app/pipeline.h"

#include <array>
#include <cassert>

#include "faults/injector.h"
#include "imaging/convert.h"
#include "imaging/crop.h"
#include "imaging/normalize.h"
#include "imaging/resize.h"
#include "imaging/rotate.h"
#include "imaging/yuv.h"
#include "postproc/bbox.h"
#include "postproc/keypoints.h"
#include "postproc/logits.h"
#include "postproc/mask.h"
#include "postproc/tokenizer.h"
#include "postproc/topk.h"
#include "runtime/execute.h"

namespace aitax::app {

using core::Stage;
using core::StageLatencies;
using models::PostTask;
using models::PreTask;
using soc::Task;
using soc::WorkClass;

namespace {

/** Characters of text a voice/typing interaction hands Mobile BERT. */
constexpr std::int64_t kBertInputChars = 256;

} // namespace

Application::Application(soc::SocSystem &sys, PipelineConfig cfg_in)
    : sys(sys), cfg(std::move(cfg_in)),
      prof(HarnessProfile::forMode(cfg.mode)),
      engine_(*cfg.model, cfg.dtype, cfg.framework, cfg.threads),
      camera_(cfg.camera), randomSource(cfg.stdlib),
      rng(sys.rng().fork("app:" + cfg.model->id))
{
    assert(cfg.model != nullptr);
    instr.enable(cfg.instrumentationEnabled);
    streamPhaseNs = static_cast<sim::TimeNs>(rng.uniform(
        0.0, static_cast<double>(camera_.framePeriodNs())));
    if (prof.interference && !cfg.suppressInterference) {
        if (sys.arena() != nullptr) {
            interference = sys.arena()->create<soc::InterferenceGenerator>(
                sys.simulator(), sys.scheduler(), prof.interferenceCfg,
                rng.fork("interference"), &sys.tracer(), sys.arena());
        } else {
            interferenceOwned_ =
                std::make_unique<soc::InterferenceGenerator>(
                    sys.simulator(), sys.scheduler(), prof.interferenceCfg,
                    rng.fork("interference"), &sys.tracer());
            interference = interferenceOwned_.get();
        }
    }
    pipelineTaskName_ = cfg.model->id + "_pipeline";
    inferLabel_ = cfg.model->id + "_infer";
    fastcvJobName_ = cfg.model->id + "_fastcv_pre";
    pipelineLabel_ = sys.tracer().internLabel(pipelineTaskName_);
    fastcvLabel_ = sys.tracer().internLabel(fastcvJobName_);
}

std::int64_t
Application::inputElements() const
{
    if (cfg.model->task == models::Task::LanguageProcessing)
        return cfg.model->seqLen;
    return static_cast<std::int64_t>(cfg.model->inputH) *
           cfg.model->inputW * cfg.model->inputChannels;
}

void
Application::appendCapture(Task &task, double noise)
{
    if (prof.usesCamera) {
        if (cfg.model->task == models::Task::LanguageProcessing) {
            // Text arrival: IME/ASR hand-off delay.
            task.sleep(sim::msToNs(2.0));
            task.compute({5.0e5 * noise, 1.0e5}, WorkClass::Scalar);
            return;
        }
        soc::SocSystem *system = &sys;
        if (cfg.streamingCapture) {
            // Depth-1 buffered stream: frames arrive every period at
            // streamPhaseNs + k*period; the app consumes the newest
            // one, waiting only if it outran the sensor.
            Application *self = this;
            task.block([system, self](Task &, soc::BlockResume resume) {
                const auto period = self->camera_.framePeriodNs();
                const sim::TimeNs now = system->simulator().now();
                // Newest frame the sensor has delivered by `now`, or
                // -1 before the first arrival. The naive
                // (now - phase) / period truncates toward zero, so a
                // consume *before* the phase offset would claim frame
                // 0 already exists — branch explicitly instead.
                std::int64_t latest = -1;
                if (now >= self->streamPhaseNs)
                    latest = (now - self->streamPhaseNs) / period;
                sim::DurationNs wait;
                if (latest > self->lastConsumedFrame) {
                    // A fresh frame is already buffered.
                    self->lastConsumedFrame = latest;
                    self->frameLog_.push_back(
                        {latest,
                         self->streamPhaseNs + latest * period, now});
                    wait = sim::usToNs(200.0); // dequeue latency
                } else {
                    // Outran the sensor (or its first frame): wait
                    // for the next arrival.
                    const std::int64_t next =
                        self->lastConsumedFrame + 1;
                    self->lastConsumedFrame = next;
                    const sim::TimeNs ready =
                        self->streamPhaseNs + next * period;
                    self->frameLog_.push_back({next, ready, ready});
                    wait = ready - now;
                }
                system->simulator().scheduleIn(wait, resume);
            });
            task.compute(camera_.frameGlueWork() * noise,
                         WorkClass::Scalar);
            return;
        }
        // On-demand capture: wait for the next preview frame (delivery
        // is paced by the sensor), then copy it out of the HAL buffer.
        const capture::CameraModel *cam = &camera_;
        auto *stream = &rng;
        task.block([system, cam, stream](Task &, soc::BlockResume resume) {
            const sim::DurationNs wait = cam->waitForFrameNs(
                system->simulator().now(), *stream);
            system->simulator().scheduleIn(wait, resume);
        });
        task.compute(camera_.frameGlueWork() * noise, WorkClass::Scalar);
        return;
    }

    // Benchmark modes: "capture" is random input generation.
    tensor::DType gen_dtype = cfg.dtype;
    if (cfg.model->task == models::Task::LanguageProcessing)
        gen_dtype = tensor::DType::Int32;
    task.compute(randomSource.generationWork(inputElements(), gen_dtype) *
                     noise,
                 WorkClass::Scalar);
}

void
Application::appendPreProcessing(Task &task, double noise)
{
    if (!prof.fullPipeline) {
        // Benchmarks generate inputs directly in the model's shape and
        // type; only a trivial layout check remains.
        task.compute(runtime::workForCpuNs(30.0e3) * noise,
                     WorkClass::Scalar);
        return;
    }

    const double factor = prof.managedRuntimeFactor * noise;
    const std::int32_t mw = cfg.model->inputW;
    const std::int32_t mh = cfg.model->inputH;
    const std::int32_t cw = cfg.camera.width;
    const std::int32_t ch = cfg.camera.height;

    if (cfg.model->task == models::Task::LanguageProcessing) {
        task.compute(postproc::WordpieceTokenizer::tokenizeCost(
                         kBertInputChars) *
                         factor,
                     WorkClass::Scalar);
        return;
    }

    // Bitmap formatting always precedes the Table I tasks in apps,
    // and type conversion into the input tensor closes the stage.
    std::vector<sim::Work> items;
    items.push_back(imaging::nv21ToArgbCost(cw, ch));
    for (PreTask pre : cfg.model->preTasks) {
        switch (pre) {
          case PreTask::BitmapFormat:
            items.push_back(imaging::nv21ToArgbCost(cw, ch));
            break;
          case PreTask::Scale:
            items.push_back(imaging::resizeBilinearCost(mw, mh));
            break;
          case PreTask::Crop:
            items.push_back(imaging::centerCropCost(mw, mh));
            break;
          case PreTask::Normalize:
            items.push_back(imaging::normalizeCost(mw, mh));
            break;
          case PreTask::Rotate:
            // Rotation applies at capture resolution — the quadratic
            // scaling trap the paper points out for PoseNet.
            items.push_back(imaging::rotateCost(cw, ch));
            break;
          case PreTask::TypeConvert:
            items.push_back(imaging::typeConvertCost(
                mw, mh, tensor::isQuantized(cfg.dtype)));
            break;
          case PreTask::Tokenize:
            items.push_back(postproc::WordpieceTokenizer::tokenizeCost(
                kBertInputChars));
            break;
        }
    }
    items.push_back(imaging::typeConvertCost(
        mw, mh, tensor::isQuantized(cfg.dtype)));

    if (cfg.preprocessOnDsp) {
        // FastCV-style vision offload: the whole chain runs as one
        // fused DSP job; the CPU only pays the FastRPC round trip.
        sim::Work total{};
        for (const auto &w : items)
            total += w;
        soc::AccelJob job;
        job.name = fastcvJobName_;
        job.label = fastcvLabel_;
        // Vision kernels vectorize well on HVX but not perfectly.
        job.ops = total.flops * noise / 0.8;
        job.bytes = total.bytes;
        job.format = tensor::DType::UInt8;
        const std::int32_t pid = cfg.processId;
        const double payload = camera_.frameBytes();
        soc::SocSystem *system = &sys;
        // CPU cost of the same chain if the offload fails for good
        // (managed-runtime execution, like the non-offloaded path).
        const double cpu_ops =
            total.flops * prof.managedRuntimeFactor * noise;
        const double cpu_bytes = total.bytes;
        Application *self = this;
        task.block([system, self, job = std::move(job), pid, payload,
                    cpu_ops,
                    cpu_bytes](Task &, soc::BlockResume resume) mutable {
            system->fastrpc().call(
                pid, payload, std::move(job),
                [system, self, cpu_ops, cpu_bytes,
                 resume](const soc::FastRpcBreakdown &breakdown) {
                    // Retry overhead of the vision offload is this
                    // frame's degraded time (not in rpcLog_, which
                    // holds inference calls only).
                    self->frameDegradedNs_ += breakdown.retryNs;
                    if (!breakdown.failed) {
                        resume();
                        return;
                    }
                    // Permanent failure: run the chain on the CPU.
                    faults::FaultInjector *faults = system->faults();
                    const sim::TimeNs began =
                        system->simulator().now();
                    if (faults)
                        faults->recordFallback(faults::ChainLink::Dsp,
                                               faults::ChainLink::Cpu,
                                               began);
                    auto worker = soc::makeTask(
                        system->arena(),
                        self->fastcvJobName_ + "_fallback_cpu");
                    worker->compute({cpu_ops, cpu_bytes},
                                    WorkClass::Scalar);
                    worker->setOnComplete(
                        [system, self, faults, began,
                         resume](sim::TimeNs end) {
                            const sim::DurationNs elapsed =
                                end - began;
                            if (faults)
                                faults->recordDegradedExec(elapsed);
                            self->frameDegradedNs_ += elapsed;
                            resume();
                        });
                    system->scheduler().submit(std::move(worker));
                });
        });
        return;
    }

    for (const auto &w : items)
        task.compute(w * factor, WorkClass::Scalar);
}

void
Application::appendPostProcessing(Task &task, double noise)
{
    if (cfg.mode == HarnessMode::CliBenchmark) {
        // The benchmark utility discards outputs.
        return;
    }
    const double factor =
        (cfg.mode == HarnessMode::AndroidApp ? prof.managedRuntimeFactor
                                             : 1.0) *
        noise;

    for (PostTask post : cfg.model->postTasks) {
        sim::Work work{};
        switch (post) {
          case PostTask::TopK:
            work = postproc::topKCost(cfg.model->numClasses, cfg.topK);
            break;
          case PostTask::Dequantize:
            // Table I: performed only with quantized models.
            if (!tensor::isQuantized(cfg.dtype))
                continue;
            work = postproc::dequantizeCost(cfg.model->numClasses);
            break;
          case PostTask::MaskFlatten:
            work = postproc::flattenMaskCost(cfg.model->inputH,
                                             cfg.model->inputW, 21);
            break;
          case PostTask::Keypoints:
            work = postproc::decodeKeypointsCost(
                cfg.model->inputH / 16, cfg.model->inputW / 16, 17);
            break;
          case PostTask::BBoxDecode:
            work = postproc::detectionPostprocCost(834, 91);
            break;
          case PostTask::Logits:
            work = postproc::bestSpanCost(cfg.model->seqLen, 30);
            break;
        }
        task.compute(work * factor, WorkClass::Scalar);
    }
}

void
Application::ensureReportLabel(core::TaxReport &report) const
{
    if (report.label().empty()) {
        report.setLabel(cfg.model->id + "/" +
                        std::string(tensor::dtypeName(cfg.dtype)) + "/" +
                        std::string(frameworkName(cfg.framework)) + "/" +
                        std::string(harnessModeName(cfg.mode)));
    }
}

void
Application::scheduleInit(int n, core::TaxReport &report,
                          soc::TimeFn on_init_done)
{
    assert(n > 0);
    ensureReportLabel(report);

    if (interference) {
        // Generously sized horizon; leftover interference arrivals
        // after the last frame only extend the (cheap) event loop.
        const auto estimate = static_cast<sim::DurationNs>(n) *
                                  sim::msToNs(400.0) +
                              sim::secToNs(1.0);
        interference->start(estimate);
    }

    // Model/framework initialization runs first, as CPU work.
    auto init = soc::makeTask(sys.arena(), cfg.model->id + "_init");
    init->compute(
        runtime::workForCpuNs(static_cast<double>(engine_.initNs())),
        WorkClass::Scalar);
    init->setOnComplete(std::move(on_init_done));
    sys.scheduler().submit(std::move(init));
}

void
Application::scheduleRuns(int n, core::TaxReport &report,
                          std::function<void(sim::TimeNs)> on_done)
{
    auto done =
        std::make_shared<std::function<void(sim::TimeNs)>>(
            std::move(on_done));
    scheduleInit(n, report, [this, n, &report, done](sim::TimeNs) {
        startFrame(0, n, &report, done);
    });
}

void
Application::scheduleWarmup(int n, core::TaxReport &report)
{
    warmupComplete_ = false;
    scheduleInit(n, report,
                 [this](sim::TimeNs) { warmupComplete_ = true; });
}

void
Application::scheduleFramesAfterWarmup(
    int n, core::TaxReport &report,
    std::function<void(sim::TimeNs)> on_done)
{
    assert(n > 0);
    assert(warmupComplete_);
    ensureReportLabel(report);
    auto done =
        std::make_shared<std::function<void(sim::TimeNs)>>(
            std::move(on_done));
    startFrame(0, n, &report, done);
}

void
Application::startFrame(
    int index, int total, core::TaxReport *report,
    std::shared_ptr<std::function<void(sim::TimeNs)>> on_done)
{
    auto task = soc::makeTask(sys.arena(), pipelineTaskName_);
    task->setTraceLabel(pipelineLabel_);
    using TimesArray = std::array<sim::TimeNs, 5>;
    auto times =
        sys.arena() != nullptr
            ? std::allocate_shared<TimesArray>(
                  sim::ArenaAllocator<TimesArray>(sys.arena()))
            : std::make_shared<TimesArray>();
    const std::size_t rpc_base = rpcLog_.size();

    const double noise =
        rng.lognormalFactor(prof.computeNoiseSigma);

    task->marker([times](sim::TimeNs t) { (*times)[0] = t; });
    appendCapture(*task, noise);
    task->marker([times](sim::TimeNs t) { (*times)[1] = t; });
    appendPreProcessing(*task, noise);
    task->marker([times](sim::TimeNs t) { (*times)[2] = t; });

    runtime::ExecOptions exec;
    exec.processId = cfg.processId;
    exec.cpuThreads = cfg.threads;
    exec.noiseSigma = prof.computeNoiseSigma;
    exec.instrumentation = &instr;
    exec.rpcLog = &rpcLog_;
    exec.degradedNs = &frameDegradedNs_;
    exec.label = inferLabel_;
    engine_.appendInvoke(sys, *task, exec);

    task->marker([times](sim::TimeNs t) { (*times)[3] = t; });
    appendPostProcessing(*task, noise);
    task->marker([times](sim::TimeNs t) { (*times)[4] = t; });

    task->setOnComplete([this, index, total, report, on_done, times,
                         rpc_base](sim::TimeNs end) {
        StageLatencies lat;
        lat[Stage::DataCapture] = (*times)[1] - (*times)[0];
        lat[Stage::PreProcessing] = (*times)[2] - (*times)[1];
        lat[Stage::Inference] = (*times)[3] - (*times)[2];
        lat[Stage::PostProcessing] = (*times)[4] - (*times)[3];
        report->add(lat);
        if (sys.faults() != nullptr) {
            // Degraded-mode attribution for this frame: retry
            // overhead on its FastRPC calls plus any time spent on
            // fallback devices. Included in the stage walls above —
            // this is a column of the tax, not an extra stage.
            sim::DurationNs degraded = frameDegradedNs_;
            for (std::size_t i = rpc_base; i < rpcLog_.size(); ++i)
                degraded += rpcLog_[i].retryNs;
            report->addDegraded(sim::nsToMs(degraded));
            frameDegradedNs_ = 0;
        }
        if (index + 1 < total) {
            startFrame(index + 1, total, report, on_done);
        } else if (*on_done) {
            (*on_done)(end);
        }
    });
    sys.scheduler().submit(std::move(task));
}

} // namespace aitax::app
