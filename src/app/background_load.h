/**
 * @file
 * Background inference load for the multi-tenancy experiments
 * (Fig 9/10): extra processes running back-to-back inferences on the
 * DSP (contending for the single accelerator) or on the CPU
 * (contending with capture/pre-processing).
 */

#ifndef AITAX_APP_BACKGROUND_LOAD_H
#define AITAX_APP_BACKGROUND_LOAD_H

#include <cstdint>
#include <memory>

#include "app/engine.h"
#include "soc/system.h"

namespace aitax::app {

/** Configuration of one background inference process. */
struct BackgroundLoadConfig
{
    const models::ModelInfo *model = nullptr;
    tensor::DType dtype = tensor::DType::UInt8;
    FrameworkKind framework = FrameworkKind::TfliteHexagon;
    int threads = 4;
    std::int32_t processId = 100;
};

/**
 * Runs inferences back-to-back until stopped.
 */
class BackgroundInferenceLoop
{
  public:
    BackgroundInferenceLoop(soc::SocSystem &sys,
                            BackgroundLoadConfig cfg);

    /** Begin looping; keeps going until stop() or @p horizon. */
    void start(sim::TimeNs horizon);

    /** Stop after the in-flight inference. */
    void stop() { stopped = true; }

    std::int64_t completedInferences() const { return completed; }

  private:
    soc::SocSystem &sys;
    BackgroundLoadConfig cfg;
    InferenceEngine engine;
    bool stopped = false;
    sim::TimeNs horizon_ = 0;
    std::int64_t completed = 0;

    void next();
};

} // namespace aitax::app

#endif // AITAX_APP_BACKGROUND_LOAD_H
