/**
 * @file
 * Unified handle over the inference frameworks (TFLite delegates,
 * NNAPI, SNPE) so pipelines and experiments can switch with one enum —
 * the comparison axis of the paper's framework study.
 */

#ifndef AITAX_APP_ENGINE_H
#define AITAX_APP_ENGINE_H

#include <memory>
#include <string_view>

#include "models/model_info.h"
#include "models/zoo.h"
#include "runtime/snpe.h"
#include "runtime/tflite.h"

namespace aitax::app {

/** Framework/backends under study. */
enum class FrameworkKind
{
    TfliteCpu,     ///< TFLite, optimized CPU kernels
    TfliteGpu,     ///< TFLite GPU delegate
    TfliteHexagon, ///< TFLite Hexagon delegate
    TfliteNnapi,   ///< NNAPI automatic device assignment
    SnpeDsp,       ///< vendor SNPE targeting the DSP
};

std::string_view frameworkName(FrameworkKind kind);

/**
 * A constructed framework instance for one model + format.
 */
class InferenceEngine
{
  public:
    InferenceEngine(const models::ModelInfo &info, tensor::DType dtype,
                    FrameworkKind kind, int threads = 4);

    FrameworkKind kind() const { return kind_; }
    const runtime::ExecutionPlan &plan() const;

    /** One-time framework + model initialization cost. */
    sim::DurationNs initNs() const;

    /** Append one inference invocation to @p task. */
    void appendInvoke(soc::SocSystem &sys, soc::Task &task,
                      runtime::ExecOptions opts) const;

  private:
    FrameworkKind kind_;
    std::unique_ptr<runtime::tflite::Interpreter> tflite_;
    std::unique_ptr<runtime::snpe::Network> snpe_;
};

} // namespace aitax::app

#endif // AITAX_APP_ENGINE_H
