/**
 * @file
 * Harness modes: the three ways the paper runs each model —
 * command-line benchmark, benchmark app with a UI, and a real Android
 * application (Fig 3) — and the noise/interference profile of each.
 */

#ifndef AITAX_APP_HARNESS_H
#define AITAX_APP_HARNESS_H

#include <string_view>

#include "soc/interference.h"

namespace aitax::app {

/** How the model is packaged and driven. */
enum class HarnessMode
{
    CliBenchmark, ///< TFLite command-line benchmark utility
    BenchmarkApp, ///< TFLite Android benchmark app (UI wrapper)
    AndroidApp,   ///< real application (camera + full pipeline)
};

std::string_view harnessModeName(HarnessMode m);

/** Derived behaviour parameters per mode. */
struct HarnessProfile
{
    /** Real camera capture (vs random input generation). */
    bool usesCamera = false;
    /** Full pre/post-processing chain (vs negligible benchmark prep). */
    bool fullPipeline = false;
    /** Background system interference active. */
    bool interference = false;
    /** Log-normal sigma on compute work per run. */
    double computeNoiseSigma = 0.0;
    /**
     * Slowdown of pre/post-processing code relative to optimized
     * native kernels. Real apps run the TFLite Java support library
     * through JNI; benchmarks run C++.
     */
    double managedRuntimeFactor = 1.0;
    soc::InterferenceConfig interferenceCfg;

    static HarnessProfile forMode(HarnessMode mode);
};

} // namespace aitax::app

#endif // AITAX_APP_HARNESS_H
