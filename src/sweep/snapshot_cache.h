/**
 * @file
 * Process-wide memo cache for warm-up prefix snapshots.
 *
 * Sweep scenarios that share a (chipset, model, delegate, ...) prefix
 * re-simulate an identical warm-up before diverging; this cache lets
 * the first run of each prefix publish its post-warm-up state so every
 * later run skips straight to the divergent part. It follows the
 * keying discipline of models::cachedGraph (PR 2): a canonical string
 * key derived from every input that can influence the memoized value.
 *
 * The cache lives below the soc layer (aitax_sweep links only
 * Threads), so values are type-erased shared_ptr<const void>; the
 * typed snapshot struct and its capture/restore logic stay in
 * soc::SocSystem, and the verify layer glues the two together.
 *
 * Concurrency model: lookup/store take a mutex; store is first-wins
 * and returns the published value, so racing workers that both built a
 * snapshot converge on one canonical copy. Nothing ever blocks waiting
 * for another worker to finish building — a duplicate warm-up is
 * cheaper than a cross-thread dependency, and determinism never
 * depends on who wins (any correctly captured snapshot replays
 * byte-identically).
 */

#ifndef AITAX_SWEEP_SNAPSHOT_CACHE_H
#define AITAX_SWEEP_SNAPSHOT_CACHE_H

#include <cstdint>
#include <memory>
#include <string>

namespace aitax::sweep {

/** Cumulative cache statistics (diagnostics and tests). */
struct SnapshotCacheStats
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t stores = 0;
    /** Stores that lost a first-wins race to another worker. */
    std::uint64_t raceDiscards = 0;
};

/**
 * Look up the snapshot published under @p key.
 * @return the value, or nullptr on miss. Counts a hit or miss.
 */
std::shared_ptr<const void> snapshotCacheLookup(const std::string &key);

/**
 * Publish @p value under @p key (first wins).
 * @return the canonical value for @p key — @p value if this call won,
 *         the earlier winner otherwise.
 */
std::shared_ptr<const void>
snapshotCacheStore(const std::string &key,
                   std::shared_ptr<const void> value);

/** Current statistics snapshot. */
SnapshotCacheStats snapshotCacheStatsNow();

/**
 * Zero the counters, keeping the cached entries. Lets a tool report
 * per-phase hit rates (aitax_cli --stats, sweep_throughput) without
 * throwing away the snapshots themselves.
 */
void snapshotCacheResetStats();

/** Drop all entries and zero the stats (tests only). */
void snapshotCacheClearForTest();

} // namespace aitax::sweep

#endif // AITAX_SWEEP_SNAPSHOT_CACHE_H
