#include "sweep/campaign.h"

#include <algorithm>
#include <cassert>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>

#include <poll.h>
#include <unistd.h>

#include "stats/numfmt.h"
#include "sweep/protocol.h"
#include "sweep/transport.h"

namespace aitax::sweep {

namespace {

/** Replacement workers spawned after crashes before giving up. */
constexpr int kMaxRespawns = 8;

using Clock = std::chrono::steady_clock;

} // namespace

// ---------------------------------------------------------------------
// Aggregate
// ---------------------------------------------------------------------

void
CampaignAggregate::addScenario(const ScenarioOutcome &o)
{
    latencyMs.add(o.e2eMeanMs);
    ++scenarios;
    events += o.events;
    checksumMs += o.e2eMeanMs;
}

void
CampaignAggregate::merge(const CampaignAggregate &chunk)
{
    latencyMs.merge(chunk.latencyMs);
    scenarios += chunk.scenarios;
    events += chunk.events;
    checksumMs += chunk.checksumMs;
}

std::string
CampaignAggregate::serialize() const
{
    std::string out = "ca1 n=";
    out += std::to_string(scenarios);
    out += " e=";
    out += std::to_string(events);
    out += " k=";
    stats::appendG17(out, checksumMs);
    out += " | ";
    out += latencyMs.serialize();
    return out;
}

bool
CampaignAggregate::deserialize(std::string_view text, CampaignAggregate &out,
                               std::string *error)
{
    auto fail = [&](const char *why) {
        if (error != nullptr)
            *error = why;
        return false;
    };
    CampaignAggregate a;
    const std::string s(text);
    const char *p = s.c_str();
    auto expect = [&p](const char *tag) {
        while (*p == ' ')
            ++p;
        const std::size_t n = std::strlen(tag);
        if (std::strncmp(p, tag, n) != 0)
            return false;
        p += n;
        return true;
    };
    // Locale-independent parse (numfmt.h): the manifest must
    // round-trip bit-exactly under any LC_NUMERIC.
    if (!expect("ca1") || !expect("n=") || !stats::parseU64(p, a.scenarios) ||
        !expect("e=") || !stats::parseU64(p, a.events) || !expect("k=") ||
        !stats::parseDouble(p, a.checksumMs) || !expect("|"))
        return fail("bad ca1 prefix");
    while (*p == ' ')
        ++p;
    if (!stats::StreamingDistribution::deserialize(p, a.latencyMs, error))
        return false;
    if (a.latencyMs.count() != a.scenarios)
        return fail("sketch count disagrees with n=");
    out = std::move(a);
    return true;
}

// ---------------------------------------------------------------------
// Coordinator
// ---------------------------------------------------------------------

namespace {

struct WorkerProc
{
    std::unique_ptr<WorkerChannel> ch; ///< null once reaped
    std::string buf;                   ///< undecoded protocol text
    bool sawBanner = false;
    int version = 1;
    bool awaitingSpec = false;
    bool quitSent = false;
    int chunkId = -1; ///< assigned chunk; -1 when idle
    int nextExpected = -1;
    int rangeEnd = -1;
    CampaignAggregate partial;
    /** Last protocol bytes (or command sent); deadline reference. */
    Clock::time_point lastActivity;
};

struct Coordinator
{
    const CampaignConfig &cfg;
    CampaignSummary &sum;
    std::unique_ptr<Transport> transport;
    int chunkCount = 0;
    /** Chunks awaiting dispatch, ascending; re-dispatches append. */
    std::vector<int> pendingChunks;
    std::size_t pendingHead = 0;
    /** Completed partials not yet folded into the frontier. */
    std::map<int, CampaignAggregate> completed;
    int mergeFrontier = 0;
    int completedCount = 0;
    bool stopping = false;
    int respawnsLeft = kMaxRespawns;
    std::vector<WorkerProc> workers;
    std::FILE *manifest = nullptr;
    std::string failure;

    explicit Coordinator(const CampaignConfig &c, CampaignSummary &s)
        : cfg(c), sum(s)
    {
    }

    int chunkBegin(int id) const { return id * cfg.chunk; }
    int chunkEnd(int id) const
    {
        return std::min(cfg.scenarios, (id + 1) * cfg.chunk);
    }

    bool fail(const std::string &why)
    {
        if (failure.empty())
            failure = why;
        return false;
    }

    /** A worker the deadline watches: handshake or chunk in flight. */
    static bool isBusy(const WorkerProc &w)
    {
        return !w.quitSent &&
               (!w.sawBanner || w.awaitingSpec || w.chunkId >= 0);
    }

    bool loadManifest();
    bool openManifest(bool truncate);
    bool truncateManifestTo(long offset);
    void appendManifest(int id, const CampaignAggregate &partial);
    void noteCompleted(int id, CampaignAggregate partial, bool fromResume);
    void advanceFrontier();

    bool spawnWorker(bool injectKill);
    void assignNext(WorkerProc &w);
    bool handleLine(WorkerProc &w, const std::string &line);
    void reapWorker(WorkerProc &w);
    bool eventLoop();
};

bool
Coordinator::openManifest(bool truncate)
{
    if (cfg.checkpointPath.empty())
        return true;
    manifest =
        std::fopen(cfg.checkpointPath.c_str(), truncate ? "w" : "a");
    if (manifest == nullptr)
        return fail("cannot open checkpoint manifest: " +
                    cfg.checkpointPath);
    if (truncate) {
        std::fprintf(manifest, "%s %s\n", kManifestMagic,
                     cfg.identity.c_str());
        std::fflush(manifest);
        fsync(fileno(manifest));
    }
    return true;
}

bool
Coordinator::truncateManifestTo(long offset)
{
    if (::truncate(cfg.checkpointPath.c_str(),
                   static_cast<off_t>(offset)) != 0)
        return fail("cannot truncate torn checkpoint manifest: " +
                    cfg.checkpointPath);
    return true;
}

/**
 * Crash-consistency contract (docs/ROBUSTNESS.md): every record is
 * fsync'd after its newline, so a crash can tear at most the *final*
 * line (a write() prefix, never a hole in the middle). A torn final
 * line — one with no terminating newline that fails to parse — is
 * therefore expected damage: warn, truncate it away, and resume from
 * the preceding record. Any malformed *terminated* line still
 * hard-fails, because that is corruption the contract rules out.
 */
bool
Coordinator::loadManifest()
{
    std::FILE *f = std::fopen(cfg.checkpointPath.c_str(), "rb");
    if (f == nullptr) {
        // Nothing to resume from: degrade to a fresh campaign.
        std::fprintf(stderr,
                     "campaign: --resume with no manifest at %s; "
                     "starting fresh\n",
                     cfg.checkpointPath.c_str());
        return openManifest(/*truncate=*/true);
    }
    std::string data;
    char buf[8192];
    std::size_t got = 0;
    while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0)
        data.append(buf, got);
    std::fclose(f);
    if (data.empty())
        return openManifest(/*truncate=*/true);

    const std::string expected =
        std::string(kManifestMagic) + " " + cfg.identity;
    const std::size_t hdrEnd = data.find('\n');
    if (hdrEnd == std::string::npos) {
        // Unterminated first line: if it is a prefix of our own
        // header, the crash happened during the very first write —
        // start fresh. A complete different header is still foreign.
        if (expected.compare(0, data.size(), data) == 0) {
            std::fprintf(stderr,
                         "campaign: torn manifest header at %s; "
                         "starting fresh\n",
                         cfg.checkpointPath.c_str());
            return openManifest(/*truncate=*/true);
        }
        return fail("checkpoint manifest belongs to a different "
                    "campaign: \"" +
                    data + "\" vs \"" + expected + "\"");
    }
    std::string header = data.substr(0, hdrEnd);
    if (!header.empty() && header.back() == '\r')
        header.pop_back();
    if (header != expected)
        return fail("checkpoint manifest belongs to a different "
                    "campaign: \"" +
                    header + "\" vs \"" + expected + "\"");

    std::size_t pos = hdrEnd + 1;
    bool tailMissingNewline = false;
    while (pos < data.size()) {
        const std::size_t lineStart = pos;
        const std::size_t nl = data.find('\n', pos);
        const bool unterminated = nl == std::string::npos;
        std::string text = data.substr(
            pos, unterminated ? std::string::npos : nl - pos);
        pos = unterminated ? data.size() : nl + 1;
        if (!text.empty() && text.back() == '\r')
            text.pop_back();
        if (text.empty())
            continue;

        std::string why;
        int id = -1;
        CampaignAggregate partial;
        const char *p = text.c_str();
        std::uint64_t expectN = 0;
        if (std::strncmp(p, "chunk ", 6) != 0 ||
            (p += 6, !stats::parseInt(p, id)) || id < 0 ||
            id >= chunkCount) {
            why = "malformed manifest line: " + text;
        } else if (!CampaignAggregate::deserialize(p, partial, &why)) {
            why = "malformed manifest chunk " + std::to_string(id) +
                  ": " + why;
        } else if (expectN = static_cast<std::uint64_t>(chunkEnd(id) -
                                                        chunkBegin(id)),
                   partial.scenarios != expectN) {
            why = "manifest chunk " + std::to_string(id) +
                  " has wrong scenario count";
        }
        if (!why.empty()) {
            if (unterminated) {
                std::fprintf(stderr,
                             "campaign: truncating torn manifest tail "
                             "at byte %zu of %s\n",
                             lineStart, cfg.checkpointPath.c_str());
                if (!truncateManifestTo(
                        static_cast<long>(lineStart)))
                    return false;
                break;
            }
            return fail(why);
        }
        if (completed.find(id) == completed.end())
            noteCompleted(id, std::move(partial), /*fromResume=*/true);
        // The record parsed consistently (serialization carries its
        // own count/bucket-total invariants), so losing only the
        // trailing newline loses no data — but the separator must be
        // restored before any new record is appended after it.
        tailMissingNewline = unterminated;
    }
    if (!openManifest(/*truncate=*/false))
        return false;
    if (tailMissingNewline && manifest != nullptr) {
        std::fputc('\n', manifest);
        std::fflush(manifest);
        fsync(fileno(manifest));
    }
    return true;
}

void
Coordinator::appendManifest(int id, const CampaignAggregate &partial)
{
    if (manifest == nullptr)
        return;
    std::fprintf(manifest, "chunk %d %s\n", id,
                 partial.serialize().c_str());
    std::fflush(manifest);
    // fsync per record pins the crash-consistency contract: after a
    // power cut, at most the final line is torn (a write prefix).
    fsync(fileno(manifest));
}

void
Coordinator::noteCompleted(int id, CampaignAggregate partial,
                           bool fromResume)
{
    completed.emplace(id, std::move(partial));
    ++completedCount;
    if (fromResume)
        ++sum.chunksResumed;
    else {
        ++sum.chunksRun;
        if (cfg.stopAfterChunks >= 0 && sum.chunksRun >= cfg.stopAfterChunks)
            stopping = true;
    }
    advanceFrontier();
}

void
Coordinator::advanceFrontier()
{
    // Fold completed partials into the campaign aggregate strictly in
    // ascending chunk order — the canonical merge order that makes the
    // report independent of which worker finished first.
    for (auto it = completed.find(mergeFrontier); it != completed.end();
         it = completed.find(mergeFrontier)) {
        sum.aggregate.merge(it->second);
        completed.erase(it);
        ++mergeFrontier;
    }
}

bool
Coordinator::spawnWorker(bool injectKill)
{
    std::vector<std::string> extra;
    if (injectKill) {
        extra.push_back("--exit-after");
        extra.push_back(std::to_string(cfg.killWorkerAfterRanges));
    }
    std::string err;
    std::unique_ptr<WorkerChannel> ch = transport->openWorker(extra, &err);
    if (ch == nullptr)
        return fail("cannot open worker: " + err);
    WorkerProc w;
    w.ch = std::move(ch);
    w.lastActivity = Clock::now();
    workers.push_back(std::move(w));
    return true;
}

void
Coordinator::assignNext(WorkerProc &w)
{
    if (w.quitSent)
        return;
    if (stopping || pendingHead >= pendingChunks.size()) {
        w.ch->sendLine("quit");
        w.quitSent = true;
        w.ch->closeSend();
        return;
    }
    const int id = pendingChunks[pendingHead++];
    w.chunkId = id;
    w.partial = CampaignAggregate{};
    w.nextExpected = chunkBegin(id);
    w.rangeEnd = chunkEnd(id);
    w.ch->sendLine("range " + std::to_string(chunkBegin(id)) + " " +
                   std::to_string(chunkEnd(id)));
    w.lastActivity = Clock::now();
}

bool
Coordinator::handleLine(WorkerProc &w, const std::string &line)
{
    if (!w.sawBanner) {
        if (line == kWorkerBannerV2)
            w.version = 2;
        else if (line == kWorkerBannerV1)
            w.version = 1;
        else
            return fail("worker did not identify itself: \"" + line +
                        "\"");
        w.sawBanner = true;
        if (!cfg.corpusSpec.empty()) {
            if (w.version >= 2) {
                w.ch->sendLine("spec " + cfg.corpusSpec);
                w.awaitingSpec = true;
                w.lastActivity = Clock::now();
                return true;
            }
            // A v1 worker over pipes has its corpus baked into argv —
            // the spec is redundant there. A *remote* v1 worker has no
            // way to learn the corpus at all.
            if (!cfg.workers.empty())
                return fail(
                    "remote worker speaks protocol v1; worker-side "
                    "corpus addressing requires v2");
        }
        assignNext(w);
        return true;
    }
    if (line == "spec-ok") {
        if (w.awaitingSpec) {
            w.awaitingSpec = false;
            assignNext(w);
        }
        return true;
    }
    if (line.compare(0, 8, "spec-err") == 0)
        return fail("worker rejected campaign spec: " + line);
    if (line == "hb")
        return true; // liveness only; lastActivity already advanced
    if (line.compare(0, 2, "r ") == 0) {
        int idx = 0;
        double mean = 0.0;
        std::uint64_t events = 0;
        const char *p = line.c_str() + 2;
        // numfmt parse: locale-proof against a comma-decimal host.
        if (!stats::parseInt(p, idx) || !stats::parseDouble(p, mean) ||
            !stats::parseU64(p, events))
            return fail("malformed result line: " + line);
        if (w.chunkId < 0 || idx != w.nextExpected || idx >= w.rangeEnd)
            return fail("result index " + std::to_string(idx) +
                        " outside assigned range");
        ScenarioOutcome o;
        o.e2eMeanMs = mean;
        o.events = events;
        w.partial.addScenario(o);
        ++w.nextExpected;
        return true;
    }
    if (line.compare(0, 5, "done ") == 0) {
        int begin = 0;
        int end = 0;
        std::uint64_t h = 0;
        std::uint64_t m = 0;
        std::uint64_t s = 0;
        std::uint64_t d = 0;
        const char *p = line.c_str() + 5;
        if (!stats::parseInt(p, begin) || !stats::parseInt(p, end) ||
            !stats::parseU64(p, h) || !stats::parseU64(p, m) ||
            !stats::parseU64(p, s) || !stats::parseU64(p, d))
            return fail("malformed done line: " + line);
        if (w.chunkId < 0 || begin != chunkBegin(w.chunkId) ||
            end != chunkEnd(w.chunkId) || w.nextExpected != end)
            return fail("done line disagrees with assigned chunk");
        sum.workerCache.hits += h;
        sum.workerCache.misses += m;
        sum.workerCache.stores += s;
        sum.workerCache.raceDiscards += d;
        const int id = w.chunkId;
        w.chunkId = -1;
        appendManifest(id, w.partial);
        noteCompleted(id, std::move(w.partial), /*fromResume=*/false);
        assignNext(w);
        return true;
    }
    return fail("unrecognized worker line: " + line);
}

void
Coordinator::reapWorker(WorkerProc &w)
{
    if (w.ch == nullptr)
        return;
    if (!w.buf.empty()) {
        // A worker that died mid-write leaves a partial protocol line;
        // those bytes belong to the chunk being re-dispatched, so they
        // must not survive into any later parse. Discard explicitly.
        std::fprintf(stderr,
                     "campaign: discarding %zu unparsed bytes from a "
                     "lost worker (partial line \"%.64s\")\n",
                     w.buf.size(), w.buf.c_str());
        w.buf.clear();
    }
    // Endpoint cleanliness (exit status 0 / closed socket) is
    // necessary but not sufficient: the coordinator also requires its
    // own protocol state to agree (quit acknowledged, nothing in
    // flight). An unknowable exit status (waitpid error) is unclean.
    const bool endpointClean = w.ch->finishClean();
    w.ch.reset();
    const bool clean = endpointClean && w.quitSent && w.chunkId < 0;
    if (!clean) {
        ++sum.workersLost;
        if (w.chunkId >= 0) {
            // The in-flight chunk died with the worker; any partial
            // result lines are discarded and the whole chunk is
            // re-dispatched, so re-execution stays chunk-atomic.
            pendingChunks.push_back(w.chunkId);
            ++sum.chunksRedispatched;
            w.chunkId = -1;
        }
    }
}

bool
Coordinator::eventLoop()
{
    const bool deadlineOn = cfg.workerDeadlineSeconds > 0.0;
    while (true) {
        std::vector<pollfd> fds;
        std::vector<std::size_t> owner;
        for (std::size_t i = 0; i < workers.size(); ++i) {
            if (workers[i].ch != nullptr &&
                workers[i].ch->pollFd() >= 0) {
                fds.push_back(
                    pollfd{workers[i].ch->pollFd(), POLLIN, 0});
                owner.push_back(i);
            }
        }
        if (fds.empty()) {
            // No live workers. Done, interrupted, or crashed short.
            if (completedCount == chunkCount || stopping)
                return failure.empty();
            if (pendingHead < pendingChunks.size() && respawnsLeft > 0 &&
                failure.empty()) {
                --respawnsLeft;
                if (!spawnWorker(/*injectKill=*/false))
                    return false;
                continue;
            }
            return fail("campaign incomplete: all workers exited with " +
                        std::to_string(chunkCount - completedCount) +
                        " chunks unfinished");
        }

        int timeoutMs = -1;
        if (deadlineOn) {
            const Clock::time_point now = Clock::now();
            for (const std::size_t k : owner) {
                const WorkerProc &w = workers[k];
                if (!isBusy(w))
                    continue;
                const double left =
                    cfg.workerDeadlineSeconds -
                    std::chrono::duration<double>(now - w.lastActivity)
                        .count();
                const int ms =
                    left <= 0.0
                        ? 0
                        : static_cast<int>(left * 1000.0) + 1;
                timeoutMs = timeoutMs < 0 ? ms : std::min(timeoutMs, ms);
            }
        }

        const int rc = poll(fds.data(), fds.size(), timeoutMs);
        if (rc < 0) {
            if (errno == EINTR)
                continue;
            return fail("poll() failed");
        }
        for (std::size_t i = 0; i < fds.size(); ++i) {
            if (fds[i].revents == 0)
                continue;
            WorkerProc &w = workers[owner[i]];
            if (w.ch == nullptr)
                continue;
            const int n = w.ch->readLines(w.buf);
            if (n > 0) {
                w.lastActivity = Clock::now();
                std::size_t pos = 0;
                std::size_t nl = 0;
                while ((nl = w.buf.find('\n', pos)) !=
                       std::string::npos) {
                    if (!handleLine(w, w.buf.substr(pos, nl - pos)))
                        return false;
                    pos = nl + 1;
                }
                w.buf.erase(0, pos);
            } else if (n == 0) {
                reapWorker(w);
                if (!failure.empty())
                    return false;
            }
            // n < 0: EINTR / incomplete frame — try again next round.
        }

        if (deadlineOn) {
            const Clock::time_point now = Clock::now();
            for (WorkerProc &w : workers) {
                if (w.ch == nullptr || !isBusy(w))
                    continue;
                const double idle =
                    std::chrono::duration<double>(now - w.lastActivity)
                        .count();
                if (idle < cfg.workerDeadlineSeconds)
                    continue;
                std::fprintf(stderr,
                             "campaign: worker hung (no protocol "
                             "activity for %.1fs); killing and "
                             "re-dispatching its chunk\n",
                             idle);
                ++sum.workersHung;
                w.ch->kill();
                reapWorker(w);
                if (!failure.empty())
                    return false;
            }
        }
    }
}

} // namespace

CampaignSummary
runCampaign(const CampaignConfig &cfg)
{
    CampaignSummary sum;
    const auto t0 = Clock::now();

    const bool tcp = !cfg.workers.empty();
    if (cfg.scenarios < 0 || cfg.chunk <= 0 ||
        (!tcp && (cfg.shards <= 0 || cfg.workerCmd.empty()))) {
        sum.error = "invalid campaign config";
        return sum;
    }
    if (tcp && cfg.corpusSpec.empty()) {
        sum.error = "tcp transport requires a corpus spec "
                    "(workers resolve the corpus locally)";
        return sum;
    }
    if (tcp && cfg.killWorkerAfterRanges >= 0) {
        sum.error = "crash injection is argv-based and pipe-only";
        return sum;
    }

    // A dead worker's EPIPE must surface as a failed write(), not a
    // process-killing signal; restore the caller's disposition on
    // every exit path below (there is exactly one return).
    struct sigaction ign = {};
    struct sigaction oldPipe = {};
    ign.sa_handler = SIG_IGN;
    sigaction(SIGPIPE, &ign, &oldPipe);

    Coordinator co(cfg, sum);
    co.transport = tcp ? makeTcpTransport(cfg.workers)
                       : makeProcessTransport(cfg.workerCmd);
    sum.transport = co.transport->name();
    co.chunkCount =
        cfg.chunk > 0 ? (cfg.scenarios + cfg.chunk - 1) / cfg.chunk : 0;
    sum.chunksTotal = co.chunkCount;

    bool ok = true;
    if (cfg.resume && !cfg.checkpointPath.empty())
        ok = co.loadManifest();
    else
        ok = co.openManifest(/*truncate=*/true);

    if (ok) {
        for (int id = 0; id < co.chunkCount; ++id)
            if (co.completed.find(id) == co.completed.end() &&
                id >= co.mergeFrontier)
                co.pendingChunks.push_back(id);
        const int shards =
            tcp ? static_cast<int>(cfg.workers.size()) : cfg.shards;
        const int want =
            std::min(shards,
                     std::max(1, static_cast<int>(
                                     co.pendingChunks.size())));
        for (int i = 0; ok && i < want; ++i)
            ok = co.spawnWorker(
                /*injectKill=*/!tcp && i == 0 &&
                cfg.killWorkerAfterRanges >= 0);
    }
    if (ok)
        ok = co.eventLoop();

    // Drain any workers still alive after a failure path.
    for (WorkerProc &w : co.workers) {
        if (w.ch != nullptr)
            co.reapWorker(w);
    }
    if (co.manifest != nullptr)
        std::fclose(co.manifest);
    sigaction(SIGPIPE, &oldPipe, nullptr);

    // An interrupted campaign still reports the merged prefix: fold
    // whatever completed beyond the frontier in ascending order.
    for (auto &kv : co.completed)
        sum.aggregate.merge(kv.second);
    co.completed.clear();

    const auto t1 = Clock::now();
    sum.wallSeconds =
        std::chrono::duration<double>(t1 - t0).count();
    if (sum.wallSeconds > 0.0)
        sum.eventsPerSec =
            static_cast<double>(sum.aggregate.events) / sum.wallSeconds;

    if (!ok || !co.failure.empty()) {
        sum.status = CampaignStatus::Error;
        sum.error = co.failure.empty() ? "campaign failed" : co.failure;
    } else if (co.completedCount == co.chunkCount) {
        sum.status = CampaignStatus::Ok;
    } else {
        sum.status = CampaignStatus::Interrupted;
    }
    return sum;
}

std::string
campaignReportJson(const std::string &identity,
                   const CampaignAggregate &agg)
{
    return campaignReportJson(identity, agg, std::string());
}

std::string
campaignReportJson(const std::string &identity,
                   const CampaignAggregate &agg,
                   const std::string &transport)
{
    using stats::formatG17;
    const stats::StreamingDistribution &d = agg.latencyMs;
    std::string out;
    out += "{\n";
    out += "  \"campaign\": {\n";
    out += "    \"identity\": \"" + identity + "\",\n";
    if (!transport.empty())
        out += "    \"transport\": \"" + transport + "\",\n";
    out += "    \"scenarios\": " + std::to_string(agg.scenarios) + ",\n";
    out += "    \"events\": " + std::to_string(agg.events) + ",\n";
    out += "    \"checksum_ms\": " + formatG17(agg.checksumMs) + ",\n";
    out += "    \"latency_ms\": {\n";
    out += "      \"mean\": " + formatG17(d.mean()) + ",\n";
    out += "      \"stddev\": " + formatG17(d.stddev()) + ",\n";
    out += "      \"cv\": " + formatG17(d.cv()) + ",\n";
    out += "      \"p50\": " + formatG17(d.median()) + ",\n";
    out += "      \"p90\": " + formatG17(d.percentile(90.0)) + ",\n";
    out += "      \"p95\": " + formatG17(d.p95()) + ",\n";
    out += "      \"p99\": " + formatG17(d.p99()) + ",\n";
    out += "      \"min\": " + formatG17(d.min()) + ",\n";
    out += "      \"max\": " + formatG17(d.max()) + ",\n";
    out += "      \"max_dev_from_median_pct\": " +
           formatG17(d.maxDeviationFromMedianPct()) + "\n";
    out += "    }\n";
    out += "  }\n";
    out += "}\n";
    return out;
}

std::string
selfExecutablePath(const char *argv0)
{
    char buf[4096];
    const ssize_t n = readlink("/proc/self/exe", buf, sizeof(buf) - 1);
    if (n > 0) {
        buf[n] = '\0';
        return buf;
    }
    return argv0 != nullptr ? argv0 : "";
}

} // namespace aitax::sweep
