#include "sweep/campaign.h"

#include <algorithm>
#include <cassert>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <set>

#include <poll.h>
#include <sys/wait.h>
#include <unistd.h>

#include "sweep/sweep_runner.h"

namespace aitax::sweep {

namespace {

constexpr const char *kWorkerBanner = "aitax-sweep-worker-v1 ready";
constexpr const char *kManifestMagic = "aitax-campaign-v1";

/** Replacement workers spawned after crashes before giving up. */
constexpr int kMaxRespawns = 8;

std::string
formatG17(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

} // namespace

// ---------------------------------------------------------------------
// Worker side
// ---------------------------------------------------------------------

int
runWorker(const WorkerOptions &opts, const ScenarioFn &fn)
{
    std::printf("%s\n", kWorkerBanner);
    std::fflush(stdout);

    SweepRunner pool(opts.jobs);
    SnapshotCacheStats last = snapshotCacheStatsNow();
    int rangesSeen = 0;
    char line[256];
    while (std::fgets(line, sizeof(line), stdin) != nullptr) {
        if (std::strncmp(line, "quit", 4) == 0)
            return 0;
        int begin = 0;
        int end = 0;
        if (std::sscanf(line, "range %d %d", &begin, &end) != 2 ||
            begin < 0 || end < begin) {
            std::fprintf(stderr, "sweep-serve: bad command: %s", line);
            return 2;
        }
        ++rangesSeen;
        if (opts.exitAfterRanges >= 0 && rangesSeen >= opts.exitAfterRanges)
            std::exit(7); // crash injection: drop the chunk on the floor

        const auto n = static_cast<std::size_t>(end - begin);
        const std::vector<ScenarioOutcome> results =
            pool.map<ScenarioOutcome>(n, [&](std::size_t i) {
                return fn(begin + static_cast<int>(i));
            });
        for (std::size_t i = 0; i < n; ++i)
            std::printf("r %d %s %llu\n", begin + static_cast<int>(i),
                        formatG17(results[i].e2eMeanMs).c_str(),
                        static_cast<unsigned long long>(results[i].events));

        const SnapshotCacheStats now = snapshotCacheStatsNow();
        std::printf("done %d %d %llu %llu %llu %llu\n", begin, end,
                    static_cast<unsigned long long>(now.hits - last.hits),
                    static_cast<unsigned long long>(now.misses - last.misses),
                    static_cast<unsigned long long>(now.stores - last.stores),
                    static_cast<unsigned long long>(now.raceDiscards -
                                                    last.raceDiscards));
        last = now;
        std::fflush(stdout);
    }
    return 0;
}

// ---------------------------------------------------------------------
// Aggregate
// ---------------------------------------------------------------------

void
CampaignAggregate::addScenario(const ScenarioOutcome &o)
{
    latencyMs.add(o.e2eMeanMs);
    ++scenarios;
    events += o.events;
    checksumMs += o.e2eMeanMs;
}

void
CampaignAggregate::merge(const CampaignAggregate &chunk)
{
    latencyMs.merge(chunk.latencyMs);
    scenarios += chunk.scenarios;
    events += chunk.events;
    checksumMs += chunk.checksumMs;
}

std::string
CampaignAggregate::serialize() const
{
    char buf[128];
    std::snprintf(buf, sizeof(buf), "ca1 n=%llu e=%llu k=%.17g | ",
                  static_cast<unsigned long long>(scenarios),
                  static_cast<unsigned long long>(events), checksumMs);
    return std::string(buf) + latencyMs.serialize();
}

bool
CampaignAggregate::deserialize(std::string_view text, CampaignAggregate &out,
                               std::string *error)
{
    auto fail = [&](const char *why) {
        if (error != nullptr)
            *error = why;
        return false;
    };
    CampaignAggregate a;
    unsigned long long n = 0;
    unsigned long long e = 0;
    int consumed = 0;
    const std::string s(text);
    if (std::sscanf(s.c_str(), "ca1 n=%llu e=%llu k=%lf | %n", &n, &e,
                    &a.checksumMs, &consumed) != 3 ||
        consumed == 0)
        return fail("bad ca1 prefix");
    a.scenarios = n;
    a.events = e;
    if (!stats::StreamingDistribution::deserialize(
            s.c_str() + consumed, a.latencyMs, error))
        return false;
    if (a.latencyMs.count() != a.scenarios)
        return fail("sketch count disagrees with n=");
    out = std::move(a);
    return true;
}

// ---------------------------------------------------------------------
// Coordinator
// ---------------------------------------------------------------------

namespace {

struct WorkerProc
{
    pid_t pid = -1;
    int inFd = -1;  ///< commands to the worker's stdin
    int outFd = -1; ///< results from the worker's stdout
    std::string buf;
    bool sawBanner = false;
    bool quitSent = false;
    int chunkId = -1; ///< assigned chunk; -1 when idle
    int nextExpected = -1;
    int rangeEnd = -1;
    CampaignAggregate partial;
};

struct Coordinator
{
    const CampaignConfig &cfg;
    CampaignSummary &sum;
    int chunkCount = 0;
    /** Chunks awaiting dispatch, ascending; re-dispatches append. */
    std::vector<int> pendingChunks;
    std::size_t pendingHead = 0;
    /** Completed partials not yet folded into the frontier. */
    std::map<int, CampaignAggregate> completed;
    int mergeFrontier = 0;
    int completedCount = 0;
    bool stopping = false;
    int respawnsLeft = kMaxRespawns;
    std::vector<WorkerProc> workers;
    std::FILE *manifest = nullptr;
    std::string failure;

    explicit Coordinator(const CampaignConfig &c, CampaignSummary &s)
        : cfg(c), sum(s)
    {
    }

    int chunkBegin(int id) const { return id * cfg.chunk; }
    int chunkEnd(int id) const
    {
        return std::min(cfg.scenarios, (id + 1) * cfg.chunk);
    }

    bool fail(const std::string &why)
    {
        if (failure.empty())
            failure = why;
        return false;
    }

    bool loadManifest();
    bool openManifest(bool truncate);
    void appendManifest(int id, const CampaignAggregate &partial);
    void noteCompleted(int id, CampaignAggregate partial, bool fromResume);
    void advanceFrontier();

    bool spawnWorker(bool injectKill);
    void sendCommand(WorkerProc &w, const std::string &cmd);
    void assignNext(WorkerProc &w);
    bool handleLine(WorkerProc &w, const std::string &line);
    void reapWorker(WorkerProc &w);
    bool eventLoop();
};

bool
Coordinator::openManifest(bool truncate)
{
    if (cfg.checkpointPath.empty())
        return true;
    manifest =
        std::fopen(cfg.checkpointPath.c_str(), truncate ? "w" : "a");
    if (manifest == nullptr)
        return fail("cannot open checkpoint manifest: " +
                    cfg.checkpointPath);
    if (truncate) {
        std::fprintf(manifest, "%s %s\n", kManifestMagic,
                     cfg.identity.c_str());
        std::fflush(manifest);
    }
    return true;
}

bool
Coordinator::loadManifest()
{
    std::FILE *f = std::fopen(cfg.checkpointPath.c_str(), "r");
    if (f == nullptr) {
        // Nothing to resume from: degrade to a fresh campaign.
        std::fprintf(stderr,
                     "campaign: --resume with no manifest at %s; "
                     "starting fresh\n",
                     cfg.checkpointPath.c_str());
        return openManifest(/*truncate=*/true);
    }
    char line[8192];
    if (std::fgets(line, sizeof(line), f) == nullptr) {
        std::fclose(f);
        return openManifest(/*truncate=*/true);
    }
    std::string header(line);
    while (!header.empty() &&
           (header.back() == '\n' || header.back() == '\r'))
        header.pop_back();
    const std::string expected =
        std::string(kManifestMagic) + " " + cfg.identity;
    if (header != expected) {
        std::fclose(f);
        return fail("checkpoint manifest belongs to a different "
                    "campaign: \"" +
                    header + "\" vs \"" + expected + "\"");
    }
    while (std::fgets(line, sizeof(line), f) != nullptr) {
        std::string text(line);
        while (!text.empty() &&
               (text.back() == '\n' || text.back() == '\r'))
            text.pop_back();
        if (text.empty())
            continue;
        int id = 0;
        int consumed = 0;
        if (std::sscanf(text.c_str(), "chunk %d %n", &id, &consumed) != 1 ||
            consumed == 0 || id < 0 || id >= chunkCount) {
            std::fclose(f);
            return fail("malformed manifest line: " + text);
        }
        CampaignAggregate partial;
        std::string err;
        if (!CampaignAggregate::deserialize(text.c_str() + consumed,
                                            partial, &err)) {
            std::fclose(f);
            return fail("malformed manifest chunk " + std::to_string(id) +
                        ": " + err);
        }
        const int expectN = chunkEnd(id) - chunkBegin(id);
        if (partial.scenarios != static_cast<std::uint64_t>(expectN)) {
            std::fclose(f);
            return fail("manifest chunk " + std::to_string(id) +
                        " has wrong scenario count");
        }
        if (completed.find(id) == completed.end())
            noteCompleted(id, std::move(partial), /*fromResume=*/true);
    }
    std::fclose(f);
    return openManifest(/*truncate=*/false);
}

void
Coordinator::appendManifest(int id, const CampaignAggregate &partial)
{
    if (manifest == nullptr)
        return;
    std::fprintf(manifest, "chunk %d %s\n", id,
                 partial.serialize().c_str());
    std::fflush(manifest);
}

void
Coordinator::noteCompleted(int id, CampaignAggregate partial,
                           bool fromResume)
{
    completed.emplace(id, std::move(partial));
    ++completedCount;
    if (fromResume)
        ++sum.chunksResumed;
    else {
        ++sum.chunksRun;
        if (cfg.stopAfterChunks >= 0 && sum.chunksRun >= cfg.stopAfterChunks)
            stopping = true;
    }
    advanceFrontier();
}

void
Coordinator::advanceFrontier()
{
    // Fold completed partials into the campaign aggregate strictly in
    // ascending chunk order — the canonical merge order that makes the
    // report independent of which worker finished first.
    for (auto it = completed.find(mergeFrontier); it != completed.end();
         it = completed.find(mergeFrontier)) {
        sum.aggregate.merge(it->second);
        completed.erase(it);
        ++mergeFrontier;
    }
}

bool
Coordinator::spawnWorker(bool injectKill)
{
    int toChild[2];
    int fromChild[2];
    if (pipe(toChild) != 0)
        return fail("pipe() failed");
    if (pipe(fromChild) != 0) {
        close(toChild[0]);
        close(toChild[1]);
        return fail("pipe() failed");
    }
    const pid_t pid = fork();
    if (pid < 0) {
        close(toChild[0]);
        close(toChild[1]);
        close(fromChild[0]);
        close(fromChild[1]);
        return fail("fork() failed");
    }
    if (pid == 0) {
        dup2(toChild[0], STDIN_FILENO);
        dup2(fromChild[1], STDOUT_FILENO);
        close(toChild[0]);
        close(toChild[1]);
        close(fromChild[0]);
        close(fromChild[1]);
        std::vector<std::string> argvS = cfg.workerCmd;
        if (injectKill) {
            argvS.push_back("--exit-after");
            argvS.push_back(std::to_string(cfg.killWorkerAfterRanges));
        }
        std::vector<char *> argv;
        argv.reserve(argvS.size() + 1);
        for (std::string &a : argvS)
            argv.push_back(a.data());
        argv.push_back(nullptr);
        execv(argv[0], argv.data());
        std::fprintf(stderr, "campaign worker: execv(%s) failed: %s\n",
                     argv[0], std::strerror(errno));
        _exit(127);
    }
    close(toChild[0]);
    close(fromChild[1]);
    WorkerProc w;
    w.pid = pid;
    w.inFd = toChild[1];
    w.outFd = fromChild[0];
    workers.push_back(std::move(w));
    return true;
}

void
Coordinator::sendCommand(WorkerProc &w, const std::string &cmd)
{
    // EPIPE here means the worker already died; its EOF handler will
    // reclaim the chunk, so a failed write is not itself an error.
    std::size_t off = 0;
    while (off < cmd.size()) {
        const ssize_t n =
            write(w.inFd, cmd.data() + off, cmd.size() - off);
        if (n <= 0) {
            if (n < 0 && errno == EINTR)
                continue;
            break;
        }
        off += static_cast<std::size_t>(n);
    }
}

void
Coordinator::assignNext(WorkerProc &w)
{
    if (w.quitSent)
        return;
    if (stopping || pendingHead >= pendingChunks.size()) {
        sendCommand(w, "quit\n");
        w.quitSent = true;
        close(w.inFd);
        w.inFd = -1;
        return;
    }
    const int id = pendingChunks[pendingHead++];
    w.chunkId = id;
    w.partial = CampaignAggregate{};
    w.nextExpected = chunkBegin(id);
    w.rangeEnd = chunkEnd(id);
    sendCommand(w, "range " + std::to_string(chunkBegin(id)) + " " +
                       std::to_string(chunkEnd(id)) + "\n");
}

bool
Coordinator::handleLine(WorkerProc &w, const std::string &line)
{
    if (!w.sawBanner) {
        if (line != kWorkerBanner)
            return fail("worker did not identify itself: \"" + line +
                        "\"");
        w.sawBanner = true;
        assignNext(w);
        return true;
    }
    if (line.compare(0, 2, "r ") == 0) {
        int idx = 0;
        double mean = 0.0;
        unsigned long long events = 0;
        if (std::sscanf(line.c_str(), "r %d %lf %llu", &idx, &mean,
                        &events) != 3)
            return fail("malformed result line: " + line);
        if (w.chunkId < 0 || idx != w.nextExpected || idx >= w.rangeEnd)
            return fail("result index " + std::to_string(idx) +
                        " outside assigned range");
        ScenarioOutcome o;
        o.e2eMeanMs = mean;
        o.events = events;
        w.partial.addScenario(o);
        ++w.nextExpected;
        return true;
    }
    if (line.compare(0, 5, "done ") == 0) {
        int begin = 0;
        int end = 0;
        unsigned long long h = 0;
        unsigned long long m = 0;
        unsigned long long s = 0;
        unsigned long long d = 0;
        if (std::sscanf(line.c_str(), "done %d %d %llu %llu %llu %llu",
                        &begin, &end, &h, &m, &s, &d) != 6)
            return fail("malformed done line: " + line);
        if (w.chunkId < 0 || begin != chunkBegin(w.chunkId) ||
            end != chunkEnd(w.chunkId) || w.nextExpected != end)
            return fail("done line disagrees with assigned chunk");
        sum.workerCache.hits += h;
        sum.workerCache.misses += m;
        sum.workerCache.stores += s;
        sum.workerCache.raceDiscards += d;
        const int id = w.chunkId;
        w.chunkId = -1;
        appendManifest(id, w.partial);
        noteCompleted(id, std::move(w.partial), /*fromResume=*/false);
        assignNext(w);
        return true;
    }
    return fail("unrecognized worker line: " + line);
}

void
Coordinator::reapWorker(WorkerProc &w)
{
    if (w.outFd >= 0) {
        close(w.outFd);
        w.outFd = -1;
    }
    if (w.inFd >= 0) {
        close(w.inFd);
        w.inFd = -1;
    }
    int status = 0;
    waitpid(w.pid, &status, 0);
    const bool clean = WIFEXITED(status) && WEXITSTATUS(status) == 0 &&
                       w.quitSent && w.chunkId < 0;
    if (!clean) {
        ++sum.workersLost;
        if (w.chunkId >= 0) {
            // The in-flight chunk died with the worker; any partial
            // result lines are discarded and the whole chunk is
            // re-dispatched, so re-execution stays chunk-atomic.
            pendingChunks.push_back(w.chunkId);
            ++sum.chunksRedispatched;
            w.chunkId = -1;
        }
    }
    w.pid = -1;
}

bool
Coordinator::eventLoop()
{
    while (true) {
        std::vector<pollfd> fds;
        std::vector<std::size_t> owner;
        for (std::size_t i = 0; i < workers.size(); ++i) {
            if (workers[i].pid >= 0 && workers[i].outFd >= 0) {
                fds.push_back(pollfd{workers[i].outFd, POLLIN, 0});
                owner.push_back(i);
            }
        }
        if (fds.empty()) {
            // No live workers. Done, interrupted, or crashed short.
            if (completedCount == chunkCount || stopping)
                return failure.empty();
            if (pendingHead < pendingChunks.size() && respawnsLeft > 0 &&
                failure.empty()) {
                --respawnsLeft;
                if (!spawnWorker(/*injectKill=*/false))
                    return false;
                continue;
            }
            return fail("campaign incomplete: all workers exited with " +
                        std::to_string(chunkCount - completedCount) +
                        " chunks unfinished");
        }
        const int rc = poll(fds.data(), fds.size(), -1);
        if (rc < 0) {
            if (errno == EINTR)
                continue;
            return fail("poll() failed");
        }
        for (std::size_t i = 0; i < fds.size(); ++i) {
            if (fds[i].revents == 0)
                continue;
            WorkerProc &w = workers[owner[i]];
            char buf[4096];
            const ssize_t n = read(w.outFd, buf, sizeof(buf));
            if (n > 0) {
                w.buf.append(buf, static_cast<std::size_t>(n));
                std::size_t pos = 0;
                std::size_t nl = 0;
                while ((nl = w.buf.find('\n', pos)) !=
                       std::string::npos) {
                    if (!handleLine(w, w.buf.substr(pos, nl - pos)))
                        return false;
                    pos = nl + 1;
                }
                w.buf.erase(0, pos);
            } else if (n == 0 || (n < 0 && errno != EINTR)) {
                reapWorker(w);
                if (!failure.empty())
                    return false;
            }
        }
    }
}

} // namespace

CampaignSummary
runCampaign(const CampaignConfig &cfg)
{
    CampaignSummary sum;
    const auto t0 = std::chrono::steady_clock::now();

    if (cfg.scenarios < 0 || cfg.chunk <= 0 || cfg.shards <= 0 ||
        cfg.workerCmd.empty()) {
        sum.error = "invalid campaign config";
        return sum;
    }

    // A dead worker's EPIPE must surface as a failed write(), not a
    // process-killing signal; restore the caller's disposition after.
    struct sigaction ign = {};
    struct sigaction oldPipe = {};
    ign.sa_handler = SIG_IGN;
    sigaction(SIGPIPE, &ign, &oldPipe);

    Coordinator co(cfg, sum);
    co.chunkCount =
        cfg.chunk > 0 ? (cfg.scenarios + cfg.chunk - 1) / cfg.chunk : 0;
    sum.chunksTotal = co.chunkCount;

    bool ok = true;
    if (cfg.resume && !cfg.checkpointPath.empty())
        ok = co.loadManifest();
    else
        ok = co.openManifest(/*truncate=*/true);

    if (ok) {
        for (int id = 0; id < co.chunkCount; ++id)
            if (co.completed.find(id) == co.completed.end() &&
                id >= co.mergeFrontier)
                co.pendingChunks.push_back(id);
        const int want =
            std::min(cfg.shards,
                     std::max(1, static_cast<int>(
                                     co.pendingChunks.size())));
        for (int i = 0; ok && i < want; ++i)
            ok = co.spawnWorker(
                /*injectKill=*/i == 0 && cfg.killWorkerAfterRanges >= 0);
    }
    if (ok)
        ok = co.eventLoop();

    // Drain any workers still alive after a failure path.
    for (WorkerProc &w : co.workers) {
        if (w.pid >= 0)
            co.reapWorker(w);
    }
    if (co.manifest != nullptr)
        std::fclose(co.manifest);
    sigaction(SIGPIPE, &oldPipe, nullptr);

    // An interrupted campaign still reports the merged prefix: fold
    // whatever completed beyond the frontier in ascending order.
    for (auto &kv : co.completed)
        sum.aggregate.merge(kv.second);
    co.completed.clear();

    const auto t1 = std::chrono::steady_clock::now();
    sum.wallSeconds =
        std::chrono::duration<double>(t1 - t0).count();
    if (sum.wallSeconds > 0.0)
        sum.eventsPerSec =
            static_cast<double>(sum.aggregate.events) / sum.wallSeconds;

    if (!ok || !co.failure.empty()) {
        sum.status = CampaignStatus::Error;
        sum.error = co.failure.empty() ? "campaign failed" : co.failure;
    } else if (co.completedCount == co.chunkCount) {
        sum.status = CampaignStatus::Ok;
    } else {
        sum.status = CampaignStatus::Interrupted;
    }
    return sum;
}

std::string
campaignReportJson(const std::string &identity,
                   const CampaignAggregate &agg)
{
    const stats::StreamingDistribution &d = agg.latencyMs;
    std::string out;
    out += "{\n";
    out += "  \"campaign\": {\n";
    out += "    \"identity\": \"" + identity + "\",\n";
    out += "    \"scenarios\": " + std::to_string(agg.scenarios) + ",\n";
    out += "    \"events\": " + std::to_string(agg.events) + ",\n";
    out += "    \"checksum_ms\": " + formatG17(agg.checksumMs) + ",\n";
    out += "    \"latency_ms\": {\n";
    out += "      \"mean\": " + formatG17(d.mean()) + ",\n";
    out += "      \"stddev\": " + formatG17(d.stddev()) + ",\n";
    out += "      \"cv\": " + formatG17(d.cv()) + ",\n";
    out += "      \"p50\": " + formatG17(d.median()) + ",\n";
    out += "      \"p90\": " + formatG17(d.percentile(90.0)) + ",\n";
    out += "      \"p95\": " + formatG17(d.p95()) + ",\n";
    out += "      \"p99\": " + formatG17(d.p99()) + ",\n";
    out += "      \"min\": " + formatG17(d.min()) + ",\n";
    out += "      \"max\": " + formatG17(d.max()) + ",\n";
    out += "      \"max_dev_from_median_pct\": " +
           formatG17(d.maxDeviationFromMedianPct()) + "\n";
    out += "    }\n";
    out += "  }\n";
    out += "}\n";
    return out;
}

std::string
selfExecutablePath(const char *argv0)
{
    char buf[4096];
    const ssize_t n = readlink("/proc/self/exe", buf, sizeof(buf) - 1);
    if (n > 0) {
        buf[n] = '\0';
        return buf;
    }
    return argv0 != nullptr ? argv0 : "";
}

} // namespace aitax::sweep
