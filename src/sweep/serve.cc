#include "sweep/serve.h"

#include <algorithm>
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "stats/numfmt.h"
#include "sweep/protocol.h"
#include "sweep/sweep_runner.h"

namespace aitax::sweep {

// ---------------------------------------------------------------------
// Line endpoints
// ---------------------------------------------------------------------

bool
StdioLineIO::readLine(std::string &line)
{
    line.clear();
    char buf[256];
    for (;;) {
        if (std::fgets(buf, sizeof(buf), stdin) == nullptr)
            return !line.empty();
        line += buf;
        if (!line.empty() && line.back() == '\n') {
            line.pop_back();
            if (!line.empty() && line.back() == '\r')
                line.pop_back();
            return true;
        }
    }
}

void
StdioLineIO::writeLine(std::string_view line)
{
    std::fwrite(line.data(), 1, line.size(), stdout);
    std::fputc('\n', stdout);
}

void
StdioLineIO::flush()
{
    std::fflush(stdout);
}

FrameLineIO::~FrameLineIO()
{
    if (fd_ >= 0)
        close(fd_);
}

bool
FrameLineIO::readLine(std::string &line)
{
    line.clear();
    for (;;) {
        if (raw_.size() >= 4) {
            const std::uint32_t len =
                (static_cast<std::uint32_t>(
                     static_cast<unsigned char>(raw_[0]))
                 << 24) |
                (static_cast<std::uint32_t>(
                     static_cast<unsigned char>(raw_[1]))
                 << 16) |
                (static_cast<std::uint32_t>(
                     static_cast<unsigned char>(raw_[2]))
                 << 8) |
                static_cast<std::uint32_t>(
                    static_cast<unsigned char>(raw_[3]));
            if (len > kMaxFramePayload)
                return false; // corrupt peer: drop the session
            if (raw_.size() >= 4 + static_cast<std::size_t>(len)) {
                line.assign(raw_, 4, len);
                raw_.erase(0, 4 + static_cast<std::size_t>(len));
                return true;
            }
        }
        char buf[4096];
        const ssize_t n = recv(fd_, buf, sizeof(buf), 0);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        if (n == 0)
            return false;
        raw_.append(buf, static_cast<std::size_t>(n));
    }
}

void
FrameLineIO::writeLine(std::string_view line)
{
    if (fd_ < 0)
        return;
    const auto len = static_cast<std::uint32_t>(line.size());
    char frame[4];
    frame[0] = static_cast<char>((len >> 24) & 0xff);
    frame[1] = static_cast<char>((len >> 16) & 0xff);
    frame[2] = static_cast<char>((len >> 8) & 0xff);
    frame[3] = static_cast<char>(len & 0xff);
    std::string wire(frame, 4);
    wire.append(line);
    // MSG_NOSIGNAL: a vanished coordinator surfaces as EPIPE (the next
    // readLine sees EOF), never as a fatal SIGPIPE in the worker.
    std::size_t off = 0;
    while (off < wire.size()) {
        const ssize_t n = send(fd_, wire.data() + off,
                               wire.size() - off, MSG_NOSIGNAL);
        if (n <= 0) {
            if (n < 0 && errno == EINTR)
                continue;
            return;
        }
        off += static_cast<std::size_t>(n);
    }
}

// ---------------------------------------------------------------------
// One protocol session
// ---------------------------------------------------------------------

int
serveSession(LineIO &io, const ServeOptions &opts, ScenarioFn fn,
             const SpecResolver &resolver)
{
    const bool v2 = opts.protocolVersion >= 2;
    io.writeLine(v2 ? kWorkerBannerV2 : kWorkerBannerV1);
    io.flush();

    SweepRunner pool(opts.jobs);
    SnapshotCacheStats last = snapshotCacheStatsNow();
    int rangesSeen = 0;
    std::string line;
    while (io.readLine(line)) {
        if (line.compare(0, 4, "quit") == 0)
            return 0;
        if (line.compare(0, 4, "spec") == 0) {
            const std::string spec =
                line.size() > 5 ? line.substr(5) : std::string();
            if (resolver) {
                std::string err;
                ScenarioFn resolved = resolver(spec, &err);
                if (!resolved) {
                    io.writeLine("spec-err " +
                                 (err.empty() ? "unresolvable spec"
                                              : err));
                    io.flush();
                    return 2;
                }
                fn = std::move(resolved);
            } else if (!fn) {
                io.writeLine("spec-err worker has no corpus resolver");
                io.flush();
                return 2;
            }
            // No resolver but an argv-bound corpus: the spec is
            // informative (identity already fixed at exec time).
            io.writeLine("spec-ok");
            io.flush();
            continue;
        }
        int begin = 0;
        int end = 0;
        {
            const char *p = line.c_str();
            if (line.compare(0, 6, "range ") != 0 ||
                (p += 6, !stats::parseInt(p, begin)) ||
                !stats::parseInt(p, end) || begin < 0 || end < begin) {
                std::fprintf(stderr, "sweep-serve: bad command: %s\n",
                             line.c_str());
                return 2;
            }
        }
        ++rangesSeen;
        if (opts.exitAfterRanges >= 0 &&
            rangesSeen >= opts.exitAfterRanges)
            std::exit(7); // crash injection: drop the chunk on the floor
        if (!fn) {
            std::fprintf(stderr,
                         "sweep-serve: range before corpus was bound "
                         "(spec required)\n");
            return 2;
        }
        // v2 liveness: acknowledge the range before running it, so the
        // coordinator's deadline distinguishes "working" from "hung".
        if (v2) {
            io.writeLine("hb");
            io.flush();
        }

        // Stream results in sub-slices (flushed each time): byte-wise
        // identical to emitting the whole chunk at once, but a slow
        // chunk shows continuous progress to the deadline monitor.
        const int slice = std::max(1, opts.jobs);
        for (int b = begin; b < end; b += slice) {
            const int e = std::min(end, b + slice);
            const auto n = static_cast<std::size_t>(e - b);
            const std::vector<ScenarioOutcome> results =
                pool.map<ScenarioOutcome>(n, [&](std::size_t i) {
                    return fn(b + static_cast<int>(i));
                });
            std::string out;
            for (std::size_t i = 0; i < n; ++i) {
                out = "r ";
                out += std::to_string(b + static_cast<int>(i));
                out += ' ';
                stats::appendG17(out, results[i].e2eMeanMs);
                out += ' ';
                out += std::to_string(results[i].events);
                io.writeLine(out);
            }
            io.flush();
        }

        const SnapshotCacheStats now = snapshotCacheStatsNow();
        std::string done = "done ";
        done += std::to_string(begin);
        done += ' ';
        done += std::to_string(end);
        done += ' ';
        done += std::to_string(now.hits - last.hits);
        done += ' ';
        done += std::to_string(now.misses - last.misses);
        done += ' ';
        done += std::to_string(now.stores - last.stores);
        done += ' ';
        done += std::to_string(now.raceDiscards - last.raceDiscards);
        io.writeLine(done);
        io.flush();
        last = now;
    }
    return 0;
}

int
runWorker(const WorkerOptions &opts, const ScenarioFn &fn,
          const SpecResolver &resolver)
{
    StdioLineIO io;
    ServeOptions so;
    so.jobs = opts.jobs;
    so.exitAfterRanges = opts.exitAfterRanges;
    so.protocolVersion = opts.protocolVersion;
    return serveSession(io, so, fn, resolver);
}

// ---------------------------------------------------------------------
// Socket listeners
// ---------------------------------------------------------------------

namespace {

/** Bind+listen on @p addr:@p port; returns fd or -1 (errno holds why).
 *  @p boundPort receives the actual port (ephemeral when port == 0). */
int
listenOn(const std::string &addr, int port, int *boundPort)
{
    const int fd = socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return -1;
    const int one = 1;
    setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in sa = {};
    sa.sin_family = AF_INET;
    sa.sin_port = htons(static_cast<std::uint16_t>(port));
    if (inet_pton(AF_INET, addr.c_str(), &sa.sin_addr) != 1) {
        close(fd);
        errno = EINVAL;
        return -1;
    }
    if (bind(fd, reinterpret_cast<sockaddr *>(&sa), sizeof(sa)) != 0 ||
        listen(fd, 16) != 0) {
        close(fd);
        return -1;
    }
    sockaddr_in bound = {};
    socklen_t len = sizeof(bound);
    if (getsockname(fd, reinterpret_cast<sockaddr *>(&bound), &len) ==
        0)
        *boundPort = ntohs(bound.sin_port);
    return fd;
}

void
writePortFile(const std::string &path, int port)
{
    if (path.empty())
        return;
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (f != nullptr) {
        std::fprintf(f, "%d\n", port);
        std::fclose(f);
    }
}

int
acceptRobust(int listenFd)
{
    for (;;) {
        const int conn = accept(listenFd, nullptr, nullptr);
        if (conn >= 0)
            return conn;
        if (errno == EINTR)
            continue;
        return -1;
    }
}

} // namespace

int
serveTcpWorker(const std::string &bindAddr, int port,
               const ServeOptions &opts, ScenarioFn fn,
               const SpecResolver &resolver, int acceptLimit,
               const std::string &portFile)
{
    int boundPort = port;
    const int listenFd = listenOn(bindAddr, port, &boundPort);
    if (listenFd < 0) {
        std::fprintf(stderr,
                     "sweep-serve: cannot listen on %s:%d: %s\n",
                     bindAddr.c_str(), port, std::strerror(errno));
        return 1;
    }
    std::printf("sweep-serve: listening on %s:%d\n", bindAddr.c_str(),
                boundPort);
    std::fflush(stdout);
    writePortFile(portFile, boundPort);

    int sessions = 0;
    while (acceptLimit < 0 || sessions < acceptLimit) {
        const int conn = acceptRobust(listenFd);
        if (conn < 0)
            break;
        ++sessions;
        FrameLineIO io(conn); // closes conn
        const int rc = serveSession(io, opts, fn, resolver);
        if (rc != 0)
            std::fprintf(stderr,
                         "sweep-serve: session %d ended with %d\n",
                         sessions, rc);
    }
    close(listenFd);
    return 0;
}

int
runServeDaemon(const DaemonOptions &opts, const SpecResolver &resolver)
{
    if (!resolver) {
        std::fprintf(stderr,
                     "aitax serve: a corpus resolver is required\n");
        return 1;
    }
    int boundPort = opts.port;
    const int listenFd = listenOn(opts.bindAddr, opts.port, &boundPort);
    if (listenFd < 0) {
        std::fprintf(stderr,
                     "aitax serve: cannot listen on %s:%d: %s\n",
                     opts.bindAddr.c_str(), opts.port,
                     std::strerror(errno));
        return 1;
    }
    std::printf("aitax-serve: listening on %s:%d\n",
                opts.bindAddr.c_str(), boundPort);
    std::fflush(stdout);
    writePortFile(opts.portFile, boundPort);

    // Session children are fire-and-forget; never accumulate zombies.
    signal(SIGCHLD, SIG_IGN);

    int sessions = 0;
    while (opts.acceptLimit < 0 || sessions < opts.acceptLimit) {
        const int conn = acceptRobust(listenFd);
        if (conn < 0)
            break;
        ++sessions;
        const pid_t pid = fork();
        if (pid < 0) {
            std::fprintf(stderr, "aitax serve: fork() failed: %s\n",
                         std::strerror(errno));
            close(conn);
            continue;
        }
        if (pid == 0) {
            // One process per campaign session: snapshot-cache stats,
            // pools and resolved corpora are isolated per connection.
            close(listenFd);
            ServeOptions so;
            so.jobs = opts.jobs;
            FrameLineIO io(conn);
            const int rc =
                serveSession(io, so, ScenarioFn(), resolver);
            std::_Exit(rc);
        }
        close(conn);
    }
    close(listenFd);
    return 0;
}

} // namespace aitax::sweep
