/**
 * @file
 * Shared wire constants for the campaign worker protocol.
 *
 * The grammar itself is documented in campaign.h; this header only
 * pins the literal bytes that the coordinator (campaign.cc), the
 * worker service (serve.cc) and the transports (transport.cc) must
 * agree on.
 */

#ifndef AITAX_SWEEP_PROTOCOL_H
#define AITAX_SWEEP_PROTOCOL_H

#include <cstdint>

namespace aitax::sweep {

/** v1 banner: PR 8's original protocol (no spec/hb support). */
inline constexpr const char *kWorkerBannerV1 =
    "aitax-sweep-worker-v1 ready";

/** v2 banner: adds "spec" corpus addressing and "hb" liveness. */
inline constexpr const char *kWorkerBannerV2 =
    "aitax-sweep-worker-v2 ready";

/** Checkpoint manifest header magic (identity line follows). */
inline constexpr const char *kManifestMagic = "aitax-campaign-v1";

/**
 * Upper bound on one TCP frame's payload (a single protocol line). A
 * larger length prefix means a corrupt or non-protocol peer; both
 * sides drop the connection, which the coordinator treats like any
 * other worker loss (chunk re-dispatch).
 */
inline constexpr std::uint32_t kMaxFramePayload = 1u << 20;

} // namespace aitax::sweep

#endif // AITAX_SWEEP_PROTOCOL_H
