/**
 * @file
 * Worker-side campaign protocol service: stdio sessions, socket
 * sessions, and the long-running `aitax serve` daemon.
 *
 * Protocol v2 (see campaign.h for the full grammar) adds to v1:
 *
 *  - versioned banner: "aitax-sweep-worker-v2 ready". Coordinators
 *    accept v1 banners unchanged (fallback), but corpus addressing
 *    over a remote transport requires v2.
 *  - worker-side corpus addressing: "spec <text>" binds the scenario
 *    corpus *by description* (the campaign identity line), answered
 *    with "spec-ok" or "spec-err <why>". Remote workers never receive
 *    scenario payloads — they resolve (identity, chunk) locally, so a
 *    daemon can serve many different campaigns concurrently.
 *  - liveness: "hb" acknowledges each range command before the chunk
 *    runs, and result lines stream back in sub-slices, giving the
 *    coordinator's hung-worker deadline something to observe.
 *
 * The daemon (`aitax serve`) forks one server process per accepted
 * connection: snapshot-cache counters, SweepRunner pools and any
 * resolved corpus state are per-campaign isolated by the process
 * boundary, and a session crash cannot take down the daemon or a
 * concurrent campaign.
 */

#ifndef AITAX_SWEEP_SERVE_H
#define AITAX_SWEEP_SERVE_H

#include <string>
#include <string_view>

#include "sweep/campaign.h"

namespace aitax::sweep {

/** Line-oriented protocol endpoint (framing-agnostic). */
class LineIO
{
  public:
    virtual ~LineIO() = default;
    /** Read one line, stripped of its terminator. False on EOF. */
    virtual bool readLine(std::string &line) = 0;
    /** Write one line (no trailing '\n'; the endpoint frames it). */
    virtual void writeLine(std::string_view line) = 0;
    virtual void flush() = 0;
};

/** Protocol lines over this process's stdin/stdout. */
class StdioLineIO final : public LineIO
{
  public:
    bool readLine(std::string &line) override;
    void writeLine(std::string_view line) override;
    void flush() override;
};

/**
 * Protocol lines as length-delimited frames (4-byte big-endian
 * payload length + line bytes) over a connected socket. Owns @p fd.
 */
class FrameLineIO final : public LineIO
{
  public:
    explicit FrameLineIO(int fd) : fd_(fd) {}
    ~FrameLineIO() override;
    bool readLine(std::string &line) override;
    void writeLine(std::string_view line) override;
    void flush() override {}

  private:
    int fd_;
    std::string raw_; ///< received, undecoded frame bytes
};

struct ServeOptions
{
    /** Threads for the session's in-process SweepRunner pool. */
    int jobs = 1;
    /** Crash injection (see WorkerOptions::exitAfterRanges). */
    int exitAfterRanges = -1;
    /** 1 emits the strict v1 wire (no hb, no spec support in the
     *  banner); 2 is the default. The v1 fallback tests use this. */
    int protocolVersion = 2;
};

/**
 * Serve one coordinator session over @p io until "quit" or EOF.
 *
 * @param fn corpus bound at startup (argv-addressed); may be empty if
 *        a @p resolver is supplied and the coordinator sends "spec".
 * @param resolver optional worker-side corpus addressing: maps a spec
 *        line to a ScenarioFn, or returns an empty function with
 *        *error set ("spec-err" goes back on the wire).
 * @return process exit code (0 on clean quit / EOF).
 */
int serveSession(LineIO &io, const ServeOptions &opts, ScenarioFn fn,
                 const SpecResolver &resolver);

/**
 * `aitax_cli sweep-serve --listen`: bind @p bindAddr:@p port (port 0
 * picks an ephemeral port), announce "sweep-serve: listening on
 * <addr>:<port>" on stdout (and into @p portFile when non-empty, port
 * number only), then serve sessions *sequentially* in-process.
 * @param acceptLimit exit after this many sessions; < 0 serves
 *        forever. @return exit code.
 */
int serveTcpWorker(const std::string &bindAddr, int port,
                   const ServeOptions &opts, ScenarioFn fn,
                   const SpecResolver &resolver, int acceptLimit,
                   const std::string &portFile);

struct DaemonOptions
{
    std::string bindAddr = "127.0.0.1";
    int port = 0; ///< 0 picks an ephemeral port
    /** SweepRunner threads per campaign session. */
    int jobs = 1;
    /** Exit after this many accepted connections; < 0 = forever. */
    int acceptLimit = -1;
    /** When non-empty, the bound port number is written here. */
    std::string portFile;
};

/**
 * `aitax serve`: long-running fleet worker daemon. Accepts any number
 * of concurrent campaign connections, forking one server process per
 * connection (per-campaign isolation of snapshot-cache stats and
 * corpus state). Corpora are always spec-addressed — @p resolver is
 * mandatory. Announces "aitax-serve: listening on <addr>:<port>".
 */
int runServeDaemon(const DaemonOptions &opts,
                   const SpecResolver &resolver);

} // namespace aitax::sweep

#endif // AITAX_SWEEP_SERVE_H
