#include "sweep/sweep_runner.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <deque>
#include <exception>
#include <string_view>
#include <thread>

#include "core/thread_annotations.h"

namespace aitax::sweep {

int
effectiveJobs(int requested)
{
    if (requested >= 1)
        return requested;
    if (const char *env = std::getenv("AITAX_JOBS")) {
        const int n = std::atoi(env);
        if (n >= 1)
            return n;
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw >= 1 ? static_cast<int>(hw) : 1;
}

int
consumeJobsFlag(int &argc, char **argv)
{
    int requested = 0;
    for (int i = 1; i < argc; ++i) {
        if (std::string_view(argv[i]) != "--jobs")
            continue;
        if (i + 1 < argc)
            requested = std::atoi(argv[i + 1]);
        const int removed = (i + 1 < argc) ? 2 : 1;
        for (int j = i; j + removed < argc; ++j)
            argv[j] = argv[j + removed];
        argc -= removed;
        break;
    }
    return effectiveJobs(requested);
}

SweepRunner::SweepRunner(int jobs) : jobs_(effectiveJobs(jobs)) {}

namespace {

/** One worker's run of job indices; mutex-guarded for stealing. */
struct WorkDeque
{
    core::Mutex m;
    std::deque<std::size_t> d AITAX_GUARDED_BY(m);
};

/** First exception thrown by any worker; later ones are dropped. */
struct ErrorSlot
{
    core::Mutex m;
    std::exception_ptr first AITAX_GUARDED_BY(m);
};

} // namespace

void
SweepRunner::forEach(std::size_t count,
                     const std::function<void(std::size_t)> &fn)
{
    if (count == 0)
        return;
    const auto workers = static_cast<std::size_t>(jobs_);
    if (workers <= 1 || count == 1) {
        for (std::size_t i = 0; i < count; ++i)
            fn(i);
        return;
    }

    const std::size_t n_workers = std::min(workers, count);
    std::vector<WorkDeque> deques(n_workers);
    // Contiguous blocks: neighbouring scenarios often share cached
    // graphs, and block handoff keeps steals coarse-grained. Worker w
    // owns exactly the i with i * n_workers / count == w; filling per
    // worker keeps every guarded access under its deque's mutex.
    for (std::size_t w = 0; w < n_workers; ++w) {
        const std::size_t lo =
            (w * count + n_workers - 1) / n_workers;
        const std::size_t hi =
            ((w + 1) * count + n_workers - 1) / n_workers;
        const core::MutexLock lock(deques[w].m);
        for (std::size_t i = lo; i < hi; ++i)
            deques[w].d.push_back(i);
    }

    std::atomic<bool> stop{false};
    ErrorSlot error;

    auto worker = [&](std::size_t self) {
        for (;;) {
            if (stop.load(std::memory_order_relaxed))
                return;
            std::size_t index = 0;
            bool found = false;
            {
                const core::MutexLock lock(deques[self].m);
                if (!deques[self].d.empty()) {
                    index = deques[self].d.front();
                    deques[self].d.pop_front();
                    found = true;
                }
            }
            if (!found) {
                // Steal from the back of the fullest victim.
                std::size_t victim = n_workers;
                std::size_t victim_size = 0;
                for (std::size_t v = 0; v < n_workers; ++v) {
                    if (v == self)
                        continue;
                    const core::MutexLock lock(deques[v].m);
                    if (deques[v].d.size() > victim_size) {
                        victim_size = deques[v].d.size();
                        victim = v;
                    }
                }
                if (victim == n_workers)
                    return; // every deque empty: sweep drained
                const core::MutexLock lock(deques[victim].m);
                if (deques[victim].d.empty())
                    continue; // lost the race; rescan
                index = deques[victim].d.back();
                deques[victim].d.pop_back();
            }
            try {
                fn(index);
            } catch (...) {
                const core::MutexLock lock(error.m);
                if (!error.first)
                    error.first = std::current_exception();
                stop.store(true, std::memory_order_relaxed);
                return;
            }
        }
    };

    std::vector<std::thread> threads;
    threads.reserve(n_workers);
    for (std::size_t w = 0; w < n_workers; ++w)
        threads.emplace_back(worker, w);
    for (auto &t : threads)
        t.join();

    // Workers are joined, but take the lock anyway so the access is
    // provably clean under -Wthread-safety.
    const core::MutexLock lock(error.m);
    if (error.first)
        std::rethrow_exception(error.first);
}

} // namespace aitax::sweep
