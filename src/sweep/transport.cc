#include "sweep/transport.h"

#include "sweep/protocol.h"

#include <cerrno>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <ctime>

#include <netdb.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

namespace aitax::sweep {

namespace {

// -----------------------------------------------------------------
// Process (pipe/fork) transport — PR 8's plumbing, relocated.
// -----------------------------------------------------------------

class PipeChannel final : public WorkerChannel
{
  public:
    PipeChannel(pid_t pid, int inFd, int outFd)
        : pid_(pid), in_(inFd), out_(outFd)
    {
    }

    ~PipeChannel() override
    {
        closeSend();
        if (out_ >= 0)
            close(out_);
        // Never leave a zombie or block on a live child: destruction
        // without finishClean() is an error path, so the worker's exit
        // status no longer matters — force it down and reap.
        if (pid_ > 0) {
            ::kill(pid_, SIGKILL);
            waitpidRobust(nullptr);
        }
    }

    int pollFd() const override { return out_; }

    void sendLine(std::string_view line) override
    {
        if (in_ < 0)
            return;
        std::string cmd(line);
        cmd += '\n';
        // EPIPE here means the worker already died; the read side
        // reports EOF and reclaims the chunk, so failures are ignored.
        std::size_t off = 0;
        while (off < cmd.size()) {
            const ssize_t n =
                write(in_, cmd.data() + off, cmd.size() - off);
            if (n <= 0) {
                if (n < 0 && errno == EINTR)
                    continue;
                break;
            }
            off += static_cast<std::size_t>(n);
        }
    }

    void closeSend() override
    {
        if (in_ >= 0) {
            close(in_);
            in_ = -1;
        }
    }

    int readLines(std::string &out) override
    {
        char buf[4096];
        const ssize_t n = read(out_, buf, sizeof(buf));
        if (n > 0) {
            out.append(buf, static_cast<std::size_t>(n));
            return static_cast<int>(n);
        }
        if (n < 0 && errno == EINTR)
            return -1;
        return 0; // EOF, or a hard read error == worker loss
    }

    void kill() override
    {
        if (pid_ > 0)
            ::kill(pid_, SIGKILL);
    }

    bool finishClean() override
    {
        closeSend();
        if (out_ >= 0) {
            close(out_);
            out_ = -1;
        }
        if (pid_ <= 0)
            return false;
        int status = 0;
        if (!waitpidRobust(&status))
            return false;
        return WIFEXITED(status) && WEXITSTATUS(status) == 0;
    }

  private:
    /**
     * waitpid with EINTR retry. ECHILD or any other error leaves the
     * exit status unknowable, so the caller must treat the worker as
     * unclean (re-dispatching its chunk) rather than counting an
     * unverified death as a clean quit.
     */
    bool waitpidRobust(int *status)
    {
        int local = 0;
        for (;;) {
            const pid_t r = waitpid(pid_, &local, 0);
            if (r == pid_) {
                pid_ = -1;
                if (status != nullptr)
                    *status = local;
                return true;
            }
            if (r < 0 && errno == EINTR)
                continue;
            pid_ = -1;
            return false;
        }
    }

    pid_t pid_;
    int in_;
    int out_;
};

class ProcessTransport final : public Transport
{
  public:
    explicit ProcessTransport(std::vector<std::string> cmd)
        : cmd_(std::move(cmd))
    {
    }

    const char *name() const override { return "pipe"; }

    std::unique_ptr<WorkerChannel>
    openWorker(const std::vector<std::string> &extraArgs,
               std::string *error) override
    {
        int toChild[2];
        int fromChild[2];
        if (pipe(toChild) != 0) {
            *error = "pipe() failed";
            return nullptr;
        }
        if (pipe(fromChild) != 0) {
            close(toChild[0]);
            close(toChild[1]);
            *error = "pipe() failed";
            return nullptr;
        }
        const pid_t pid = fork();
        if (pid < 0) {
            close(toChild[0]);
            close(toChild[1]);
            close(fromChild[0]);
            close(fromChild[1]);
            *error = "fork() failed";
            return nullptr;
        }
        if (pid == 0) {
            dup2(toChild[0], STDIN_FILENO);
            dup2(fromChild[1], STDOUT_FILENO);
            close(toChild[0]);
            close(toChild[1]);
            close(fromChild[0]);
            close(fromChild[1]);
            std::vector<std::string> argvS = cmd_;
            argvS.insert(argvS.end(), extraArgs.begin(), extraArgs.end());
            std::vector<char *> argv;
            argv.reserve(argvS.size() + 1);
            for (std::string &a : argvS)
                argv.push_back(a.data());
            argv.push_back(nullptr);
            execv(argv[0], argv.data());
            std::fprintf(stderr,
                         "campaign worker: execv(%s) failed: %s\n",
                         argv[0], std::strerror(errno));
            _exit(127);
        }
        close(toChild[0]);
        close(fromChild[1]);
        return std::make_unique<PipeChannel>(pid, toChild[1],
                                             fromChild[0]);
    }

  private:
    std::vector<std::string> cmd_;
};

// -----------------------------------------------------------------
// TCP transport — length-delimited frames over a connected socket.
// -----------------------------------------------------------------

class TcpChannel final : public WorkerChannel
{
  public:
    explicit TcpChannel(int fd) : fd_(fd) {}

    ~TcpChannel() override
    {
        if (fd_ >= 0)
            close(fd_);
    }

    int pollFd() const override { return fd_; }

    void sendLine(std::string_view line) override
    {
        if (fd_ < 0)
            return;
        const auto len = static_cast<std::uint32_t>(line.size());
        char frame[4];
        frame[0] = static_cast<char>((len >> 24) & 0xff);
        frame[1] = static_cast<char>((len >> 16) & 0xff);
        frame[2] = static_cast<char>((len >> 8) & 0xff);
        frame[3] = static_cast<char>(len & 0xff);
        std::string wire(frame, 4);
        wire.append(line);
        // MSG_NOSIGNAL: a dead peer must surface as EPIPE (ignored;
        // the read side reports the loss), never as a fatal SIGPIPE.
        std::size_t off = 0;
        while (off < wire.size()) {
            const ssize_t n = send(fd_, wire.data() + off,
                                   wire.size() - off, MSG_NOSIGNAL);
            if (n <= 0) {
                if (n < 0 && errno == EINTR)
                    continue;
                break;
            }
            off += static_cast<std::size_t>(n);
        }
    }

    void closeSend() override
    {
        if (fd_ >= 0)
            shutdown(fd_, SHUT_WR);
    }

    int readLines(std::string &out) override
    {
        char buf[4096];
        const ssize_t n = recv(fd_, buf, sizeof(buf), 0);
        if (n < 0)
            return errno == EINTR ? -1 : 0;
        if (n == 0)
            return 0;
        raw_.append(buf, static_cast<std::size_t>(n));
        // Decode every complete frame into a newline-terminated line
        // so the coordinator's parser sees pipe-identical bytes.
        int produced = 0;
        while (raw_.size() >= 4) {
            const std::uint32_t len =
                (static_cast<std::uint32_t>(
                     static_cast<unsigned char>(raw_[0]))
                 << 24) |
                (static_cast<std::uint32_t>(
                     static_cast<unsigned char>(raw_[1]))
                 << 16) |
                (static_cast<std::uint32_t>(
                     static_cast<unsigned char>(raw_[2]))
                 << 8) |
                static_cast<std::uint32_t>(
                    static_cast<unsigned char>(raw_[3]));
            if (len > kMaxFramePayload)
                return 0; // corrupt peer: treat as lost
            if (raw_.size() < 4 + static_cast<std::size_t>(len))
                break;
            out.append(raw_, 4, len);
            out += '\n';
            produced += static_cast<int>(len) + 1;
            raw_.erase(0, 4 + static_cast<std::size_t>(len));
        }
        return produced > 0 ? produced : -1;
    }

    void kill() override
    {
        // No process to signal; dropping the connection makes the
        // remote session die with its forked server process.
        if (fd_ >= 0) {
            close(fd_);
            fd_ = -1;
        }
    }

    bool finishClean() override
    {
        // Socket teardown carries no exit status; cleanliness is
        // judged by the coordinator's own protocol state (quit sent,
        // no chunk in flight).
        if (fd_ >= 0) {
            close(fd_);
            fd_ = -1;
        }
        return true;
    }

  private:
    int fd_;
    std::string raw_; ///< undecoded frame bytes
};

/** Connect to "host:port"; -1 on failure. */
int
connectTo(const std::string &endpoint)
{
    const std::size_t colon = endpoint.rfind(':');
    if (colon == std::string::npos || colon == 0 ||
        colon + 1 >= endpoint.size())
        return -1;
    const std::string host = endpoint.substr(0, colon);
    const std::string port = endpoint.substr(colon + 1);

    addrinfo hints = {};
    hints.ai_family = AF_UNSPEC;
    hints.ai_socktype = SOCK_STREAM;
    addrinfo *res = nullptr;
    if (getaddrinfo(host.c_str(), port.c_str(), &hints, &res) != 0)
        return -1;
    int fd = -1;
    for (addrinfo *ai = res; ai != nullptr; ai = ai->ai_next) {
        fd = socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
        if (fd < 0)
            continue;
        if (connect(fd, ai->ai_addr, ai->ai_addrlen) == 0)
            break;
        close(fd);
        fd = -1;
    }
    freeaddrinfo(res);
    return fd;
}

class TcpTransport final : public Transport
{
  public:
    explicit TcpTransport(std::vector<std::string> endpoints)
        : endpoints_(std::move(endpoints))
    {
    }

    const char *name() const override { return "tcp"; }

    std::unique_ptr<WorkerChannel>
    openWorker(const std::vector<std::string> &extraArgs,
               std::string *error) override
    {
        if (!extraArgs.empty()) {
            // Crash injection flags are argv-based and local-only.
            *error = "tcp transport cannot pass worker argv flags";
            return nullptr;
        }
        if (endpoints_.empty()) {
            *error = "no worker endpoints";
            return nullptr;
        }
        // Round-robin with a few short retries per endpoint, so a
        // worker that is still binding its listen socket is tolerated.
        constexpr int kAttemptsPerEndpoint = 20;
        const timespec backoff = {0, 50 * 1000 * 1000}; // 50 ms
        for (int attempt = 0;
             attempt < kAttemptsPerEndpoint *
                           static_cast<int>(endpoints_.size());
             ++attempt) {
            const std::string &ep = endpoints_[next_];
            next_ = (next_ + 1) % endpoints_.size();
            const int fd = connectTo(ep);
            if (fd >= 0)
                return std::make_unique<TcpChannel>(fd);
            nanosleep(&backoff, nullptr);
        }
        *error = "cannot connect to any worker endpoint (" +
                 endpoints_[0] +
                 (endpoints_.size() > 1 ? ", ..." : "") + ")";
        return nullptr;
    }

  private:
    std::vector<std::string> endpoints_;
    std::size_t next_ = 0;
};

} // namespace

std::unique_ptr<Transport>
makeProcessTransport(const std::vector<std::string> &workerCmd)
{
    return std::make_unique<ProcessTransport>(workerCmd);
}

std::unique_ptr<Transport>
makeTcpTransport(const std::vector<std::string> &endpoints)
{
    return std::make_unique<TcpTransport>(endpoints);
}

} // namespace aitax::sweep
