/**
 * @file
 * Worker transports for the campaign coordinator.
 *
 * PR 8's coordinator owned its pipe/fork plumbing directly; this file
 * factors that into a Transport abstraction so the same protocol state
 * machine (campaign.cc) drives local forked workers and remote socket
 * workers identically. Two implementations:
 *
 *  - makeProcessTransport: fork/exec one worker process per channel,
 *    newline-delimited text over a stdin/stdout pipe pair. kill() is
 *    SIGKILL; finishClean() reaps with waitpid (EINTR-retried; ECHILD
 *    or any wait error counts as *unclean* so the in-flight chunk is
 *    re-dispatched rather than silently dropped).
 *
 *  - makeTcpTransport: connect to `host:port` worker endpoints
 *    (`aitax_cli sweep-serve --listen` or the `aitax serve` daemon).
 *    The wire format is length-delimited frames — a 4-byte big-endian
 *    payload length followed by one protocol line without its '\n' —
 *    decoded back into newline-terminated lines on receipt, so the
 *    coordinator's line parser is transport-agnostic. kill() and
 *    closeSend() map to closing / shutting down the socket; a "respawn"
 *    is a fresh connection (a daemon serves each one in a fresh forked
 *    session, which is what makes crash re-dispatch byte-identical to
 *    the local case).
 *
 * Channels never interpret protocol lines; framing and process/socket
 * lifetime are the whole job. Byte-identity of campaignReportJson
 * across the two transports is enforced by tests/test_transport.cc.
 */

#ifndef AITAX_SWEEP_TRANSPORT_H
#define AITAX_SWEEP_TRANSPORT_H

#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace aitax::sweep {

/** One bidirectional line-oriented connection to a worker. */
class WorkerChannel
{
  public:
    virtual ~WorkerChannel() = default;

    /** Readable fd for poll(); -1 once the channel is torn down. */
    virtual int pollFd() const = 0;

    /**
     * Send one protocol line (no trailing '\n'; the channel frames
     * it). Best-effort: a write failure means the worker died, which
     * the read side reports as EOF — not an error here.
     */
    virtual void sendLine(std::string_view line) = 0;

    /** Half-close the command direction (worker sees end-of-input). */
    virtual void closeSend() = 0;

    /**
     * Drain readable bytes, appending complete decoded protocol text
     * (always '\n'-terminated lines plus possibly a trailing partial
     * line) to @p out.
     * @return >0 bytes appended; 0 on EOF/peer loss; -1 to retry
     *         (EINTR or an incomplete frame).
     */
    virtual int readLines(std::string &out) = 0;

    /** Forcibly terminate the worker (hung-worker deadline path). */
    virtual void kill() = 0;

    /**
     * Tear down and report whether the *worker endpoint* finished
     * cleanly (process: exited with status 0; socket: connection
     * closed). The coordinator still requires its own protocol state
     * (quit acknowledged, no chunk in flight) before trusting it.
     */
    virtual bool finishClean() = 0;
};

/** Factory for worker channels; one per shard slot. */
class Transport
{
  public:
    virtual ~Transport() = default;

    /** "pipe" or "tcp" — surfaced in summaries and BENCH artifacts. */
    virtual const char *name() const = 0;

    /**
     * Open one worker channel. @p extraArgs extends the worker argv
     * (process transport only; crash-injection flags). On failure
     * returns nullptr with @p error set.
     */
    virtual std::unique_ptr<WorkerChannel>
    openWorker(const std::vector<std::string> &extraArgs,
               std::string *error) = 0;
};

/** Local transport: fork/exec @p workerCmd, pipes for stdio. */
std::unique_ptr<Transport>
makeProcessTransport(const std::vector<std::string> &workerCmd);

/**
 * Remote transport: round-robin over @p endpoints ("host:port").
 * Endpoints may repeat to open several sessions against one daemon.
 */
std::unique_ptr<Transport>
makeTcpTransport(const std::vector<std::string> &endpoints);

} // namespace aitax::sweep

#endif // AITAX_SWEEP_TRANSPORT_H
