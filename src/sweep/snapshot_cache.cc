#include "sweep/snapshot_cache.h"

#include <map>
#include <utility>

#include "core/thread_annotations.h"

namespace aitax::sweep {

namespace {

struct CacheState
{
    core::Mutex mu;
    // std::map, not unordered: iteration order never reaches outputs
    // today, but a deterministic container costs nothing and keeps the
    // aitax-lint unordered-container rule trivially satisfied.
    std::map<std::string, std::shared_ptr<const void>> entries
        AITAX_GUARDED_BY(mu);
    SnapshotCacheStats stats AITAX_GUARDED_BY(mu);
};

CacheState &
cache()
{
    static CacheState state;
    return state;
}

} // namespace

std::shared_ptr<const void>
snapshotCacheLookup(const std::string &key)
{
    CacheState &c = cache();
    const core::MutexLock lock(c.mu);
    const auto it = c.entries.find(key);
    if (it == c.entries.end()) {
        ++c.stats.misses;
        return nullptr;
    }
    ++c.stats.hits;
    return it->second;
}

std::shared_ptr<const void>
snapshotCacheStore(const std::string &key,
                   std::shared_ptr<const void> value)
{
    CacheState &c = cache();
    const core::MutexLock lock(c.mu);
    const auto [it, inserted] = c.entries.emplace(key, std::move(value));
    if (inserted)
        ++c.stats.stores;
    else
        ++c.stats.raceDiscards;
    return it->second;
}

SnapshotCacheStats
snapshotCacheStatsNow()
{
    CacheState &c = cache();
    const core::MutexLock lock(c.mu);
    return c.stats;
}

void
snapshotCacheResetStats()
{
    CacheState &c = cache();
    const core::MutexLock lock(c.mu);
    c.stats = SnapshotCacheStats{};
}

void
snapshotCacheClearForTest()
{
    CacheState &c = cache();
    const core::MutexLock lock(c.mu);
    c.entries.clear();
    c.stats = SnapshotCacheStats{};
}

} // namespace aitax::sweep
