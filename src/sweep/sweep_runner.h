/**
 * @file
 * Parallel scenario-sweep engine.
 *
 * Every figure in the paper is a sweep — models x chipsets x
 * frameworks x harness modes x seeds — of *independent* simulations.
 * SweepRunner executes those scenarios on a work-stealing thread pool
 * while preserving the serial contract: results come back in
 * submission (index) order, and each job owns its whole world (a
 * private SocSystem, RNG and tracer constructed inside the job), so
 * output is byte-identical for --jobs 1 and --jobs N.
 *
 * Determinism contract: parallelism is *across* simulations, never
 * inside one. A job must not touch mutable global state; the shared
 * model-graph cache (models::cachedGraph) is safe because it is
 * immutable after its one-time call_once construction.
 */

#ifndef AITAX_SWEEP_SWEEP_RUNNER_H
#define AITAX_SWEEP_SWEEP_RUNNER_H

#include <cstddef>
#include <functional>
#include <optional>
#include <utility>
#include <vector>

namespace aitax::sweep {

/**
 * Resolve a worker-count request: values >= 1 pass through; 0 (the
 * "default" sentinel) falls back to the AITAX_JOBS environment
 * variable if set, else std::thread::hardware_concurrency().
 */
int effectiveJobs(int requested);

/**
 * Parse a `--jobs N` flag out of (argc, argv), removing it from the
 * vector. @return the resolved worker count (effectiveJobs applied).
 * Unknown arguments are left untouched for the caller.
 */
int consumeJobsFlag(int &argc, char **argv);

/**
 * Work-stealing pool for embarrassingly parallel scenario sweeps.
 *
 * Indices [0, count) are pre-partitioned into contiguous per-worker
 * runs; a worker drains its own run front-to-back and steals from the
 * back of the busiest victim when it runs dry. With jobs() == 1 the
 * sweep executes inline on the calling thread — no pool, identical
 * code path to the pre-parallel harnesses.
 */
class SweepRunner
{
  public:
    /** @param jobs worker count; <= 0 resolves via effectiveJobs(0). */
    explicit SweepRunner(int jobs = 0);

    int jobs() const { return jobs_; }

    /**
     * Run fn(0) .. fn(count-1), collecting results in index order.
     * The first exception thrown by any job is rethrown on the caller
     * after all workers stop.
     */
    template <typename R>
    std::vector<R>
    map(std::size_t count, const std::function<R(std::size_t)> &fn)
    {
        std::vector<std::optional<R>> slots(count);
        forEach(count,
                [&](std::size_t i) { slots[i].emplace(fn(i)); });
        std::vector<R> out;
        out.reserve(count);
        for (auto &s : slots)
            out.push_back(std::move(*s));
        return out;
    }

    /** Run fn over [0, count); completion only, no results. */
    void forEach(std::size_t count,
                 const std::function<void(std::size_t)> &fn);

  private:
    int jobs_;
};

} // namespace aitax::sweep

#endif // AITAX_SWEEP_SWEEP_RUNNER_H
