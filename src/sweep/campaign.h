/**
 * @file
 * Fleet-scale sweep campaigns: multiprocess sharded scenario sweeps
 * with streaming online aggregation and checkpoint/resume.
 *
 * A campaign runs a seeded scenario corpus of arbitrary size across
 * --shards worker *processes* (each running its scenarios on the
 * in-process SweepRunner pool with --jobs threads), one level above
 * the thread pool: "parallelism across simulations, never inside one"
 * extended across process boundaries.
 *
 * Topology and protocol (line-oriented text; newline-delimited over
 * pipes, length-delimited frames over TCP — see sweep/transport.h):
 *
 *   coordinator -> worker:  "spec <identity>" (v2) | "range <b> <e>"
 *                           | "quit"
 *   worker -> coordinator:  "aitax-sweep-worker-v2 ready"  (v1 accepted)
 *                           "spec-ok" | "spec-err <why>"   (v2)
 *                           "hb"                           (v2 liveness)
 *                           "r <index> <e2e_mean_ms> <events>"
 *                           "done <begin> <end> <cache h m s d>"
 *
 * v2 workers address their corpus *by spec*: the coordinator sends the
 * campaign identity line and the worker resolves it to a ScenarioFn
 * locally (sweep/serve.h SpecResolver), so remote workers never
 * receive scenario payloads and one daemon serves many campaigns. v1
 * workers (argv-bound corpora) remain fully supported over pipes.
 * Every number on the wire is formatted and parsed locale-independently
 * (stats/numfmt.h) — a comma-decimal LC_NUMERIC cannot corrupt it.
 *
 * The corpus is split into fixed-size chunks (the checkpoint and
 * streaming granularity). Workers pull contiguous chunks dynamically;
 * per-scenario result lines stream back in index order within each
 * chunk and fold into a per-chunk partial aggregate (a mergeable
 * stats::StreamingDistribution plus exact scalar tallies). Completed
 * chunks append one line to the checkpoint manifest, and partials are
 * merged into the campaign aggregate at a frontier that always
 * advances in ascending chunk order.
 *
 * Determinism contract, one level up from SweepRunner: chunk
 * boundaries depend only on (scenarios, chunk), never on the shard or
 * job count, and the aggregate merge order is canonicalized by chunk
 * index — so the final aggregate report is byte-identical at any
 * --shards N x --jobs M split, across worker crashes (the coordinator
 * re-dispatches lost chunks) and across kill-and-resume (partials are
 * serialized losslessly in the manifest). Wall-clock timings, shard
 * counts and snapshot-cache tallies are deliberately excluded from
 * the deterministic report and surfaced in CampaignSummary instead.
 */

#ifndef AITAX_SWEEP_CAMPAIGN_H
#define AITAX_SWEEP_CAMPAIGN_H

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "stats/streaming_distribution.h"
#include "sweep/snapshot_cache.h"

namespace aitax::sweep {

/** One scenario's contribution to the campaign aggregate. */
struct ScenarioOutcome
{
    /** End-to-end mean latency of the scenario's runs, in ms. */
    double e2eMeanMs = 0.0;
    /** Simulation events executed (the events/sec numerator). */
    std::uint64_t events = 0;
};

/**
 * Runs scenario @p index of the caller's corpus. Must be a pure
 * function of the index (the corpus seed is bound by the caller), and
 * safe to call from SweepRunner worker threads.
 */
using ScenarioFn = std::function<ScenarioOutcome(int index)>;

/**
 * Worker-side corpus addressing (protocol v2): resolve a campaign
 * spec line (the identity string) into a ScenarioFn, or return an
 * empty function with @p error set to refuse it ("spec-err" on the
 * wire). Must be deterministic: the same spec resolves to the same
 * corpus on every worker, or byte-identity across transports breaks.
 */
using SpecResolver =
    std::function<ScenarioFn(const std::string &spec,
                             std::string *error)>;

struct WorkerOptions
{
    /** Threads for the worker's in-process SweepRunner pool. */
    int jobs = 1;
    /**
     * Crash-injection hook for the resilience tests: the worker calls
     * std::exit(7) upon *receiving* its Nth range command (1-based),
     * losing the in-flight chunk. < 0 disables.
     */
    int exitAfterRanges = -1;
    /** Wire protocol to speak: 2 (default) or 1 (strict fallback). */
    int protocolVersion = 2;
};

/**
 * Serve sweep ranges over stdin/stdout until "quit" or EOF.
 * @param resolver optional spec-addressed corpus resolution; without
 *        it a "spec" command is acknowledged but @p fn stays bound.
 * @return process exit code (0 on a clean quit).
 */
int runWorker(const WorkerOptions &opts, const ScenarioFn &fn,
              const SpecResolver &resolver = {});

/** Mergeable aggregate state of a campaign (or one chunk of it). */
struct CampaignAggregate
{
    stats::StreamingDistribution latencyMs;
    /** Scenarios folded in. */
    std::uint64_t scenarios = 0;
    /** Total simulation events across those scenarios. */
    std::uint64_t events = 0;
    /**
     * Order-sensitive fingerprint: sum of per-scenario mean latencies
     * accumulated in ascending scenario index order. Any split that
     * reproduces the campaign byte-exactly reproduces this double
     * bit-exactly.
     */
    double checksumMs = 0.0;

    void addScenario(const ScenarioOutcome &o);
    /** Fold @p chunk in; call in ascending chunk order. */
    void merge(const CampaignAggregate &chunk);

    /** Lossless one-line text form for the checkpoint manifest. */
    std::string serialize() const;
    static bool deserialize(std::string_view text, CampaignAggregate &out,
                            std::string *error = nullptr);
};

struct CampaignConfig
{
    /** Corpus size: scenario indices [0, scenarios). */
    int scenarios = 0;
    /** Chunk size — checkpoint/streaming granularity. Chunk
     *  boundaries are a pure function of (scenarios, chunk), never of
     *  the shard count; changing it changes the aggregate's FP merge
     *  order, so resumes validate it via the manifest header. */
    int chunk = 32;
    /** Worker processes. */
    int shards = 1;
    /**
     * argv of one worker process (argv[0] = executable). The
     * coordinator appends nothing; bake seed/jobs/engine flags in.
     * Ignored when `workers` selects the TCP transport.
     */
    std::vector<std::string> workerCmd;
    /**
     * Remote worker endpoints ("host:port"), one session per entry
     * (repeat an endpoint for several sessions against one daemon).
     * Non-empty selects the TCP transport and overrides shards /
     * workerCmd. Remote workers must speak protocol v2 and resolve
     * `corpusSpec` themselves.
     */
    std::vector<std::string> workers;
    /**
     * Campaign spec sent to v2 workers ("spec <corpusSpec>") before
     * the first range; conventionally the identity string. Empty
     * skips the handshake (argv-bound corpora, pipe transport only).
     */
    std::string corpusSpec;
    /**
     * Hung-worker deadline, seconds. A worker with an assigned chunk
     * (or an unanswered handshake) that produces no protocol bytes
     * for this long is killed and its chunk re-dispatched, exactly
     * like a crashed worker. <= 0 disables (local default: a dead
     * process already reports EOF; the deadline is for remote workers
     * whose TCP peer can hang without closing).
     */
    double workerDeadlineSeconds = 0.0;
    /**
     * Campaign identity line, e.g. "corpus=fuzz seed=42 scenarios=256
     * chunk=32 faults=0 engine=fast". Written to the manifest header
     * and validated on resume: a checkpoint from a different campaign
     * is an error, not silent corruption.
     */
    std::string identity;
    /** Checkpoint manifest path; empty disables checkpointing. */
    std::string checkpointPath;
    /** Load completed chunks from the manifest before dispatching. */
    bool resume = false;
    /**
     * Interruption-injection hook for the resume tests: after this
     * many chunk completions in this session the coordinator stops
     * dispatching, drains its workers and reports Interrupted. < 0
     * disables.
     */
    int stopAfterChunks = -1;
    /** Crash-injection: worker 0 is launched with this --exit-after
     *  value appended to workerCmd. < 0 disables. */
    int killWorkerAfterRanges = -1;
};

enum class CampaignStatus
{
    Ok,
    Interrupted, ///< stopAfterChunks hit; manifest holds the progress
    Error,
};

struct CampaignSummary
{
    CampaignStatus status = CampaignStatus::Error;
    std::string error;

    /** The deterministic aggregate (merged in chunk order). */
    CampaignAggregate aggregate;

    // Observability — never part of the deterministic report.
    /** Snapshot-cache counters summed across all worker processes. */
    SnapshotCacheStats workerCache;
    double wallSeconds = 0.0;
    /** Aggregate throughput: events / wallSeconds. */
    double eventsPerSec = 0.0;
    int chunksTotal = 0;
    /** Chunks executed by workers this session. */
    int chunksRun = 0;
    /** Chunks restored from the manifest (--resume). */
    int chunksResumed = 0;
    /** Worker processes/sessions that died mid-campaign. */
    int workersLost = 0;
    /** Subset of workersLost killed by the liveness deadline. */
    int workersHung = 0;
    /** Chunks that had to be re-dispatched after a worker loss. */
    int chunksRedispatched = 0;
    /** Transport the campaign ran over: "pipe" or "tcp". */
    std::string transport;
};

/**
 * Drive a sharded campaign to completion (or checkpointed
 * interruption). Blocks until every worker has exited.
 */
CampaignSummary runCampaign(const CampaignConfig &cfg);

/**
 * The deterministic campaign report: identity + aggregate only, every
 * double as "%.17g" (locale-independent). Byte-identical at any
 * shard/job/transport split and across kill/resume — the artifact the
 * verify tier compares. The @p transport overload adds a single
 * `"transport"` line for the BENCH artifacts; strip it (or pass the
 * two-argument form) when byte-comparing across transports.
 */
std::string campaignReportJson(const std::string &identity,
                               const CampaignAggregate &agg);
std::string campaignReportJson(const std::string &identity,
                               const CampaignAggregate &agg,
                               const std::string &transport);

/** /proc/self/exe (fallback: @p argv0) — workers re-exec this binary. */
std::string selfExecutablePath(const char *argv0);

} // namespace aitax::sweep

#endif // AITAX_SWEEP_CAMPAIGN_H
