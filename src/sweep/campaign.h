/**
 * @file
 * Fleet-scale sweep campaigns: multiprocess sharded scenario sweeps
 * with streaming online aggregation and checkpoint/resume.
 *
 * A campaign runs a seeded scenario corpus of arbitrary size across
 * --shards worker *processes* (each running its scenarios on the
 * in-process SweepRunner pool with --jobs threads), one level above
 * the thread pool: "parallelism across simulations, never inside one"
 * extended across process boundaries.
 *
 * Topology and protocol (newline-delimited text over pipes):
 *
 *   coordinator --(stdin)--> worker:   "range <begin> <end>" | "quit"
 *   worker --(stdout)--> coordinator:  "aitax-sweep-worker-v1 ready"
 *                                      "r <index> <e2e_mean_ms> <events>"
 *                                      "done <begin> <end> <cache h m s d>"
 *
 * The corpus is split into fixed-size chunks (the checkpoint and
 * streaming granularity). Workers pull contiguous chunks dynamically;
 * per-scenario result lines stream back in index order within each
 * chunk and fold into a per-chunk partial aggregate (a mergeable
 * stats::StreamingDistribution plus exact scalar tallies). Completed
 * chunks append one line to the checkpoint manifest, and partials are
 * merged into the campaign aggregate at a frontier that always
 * advances in ascending chunk order.
 *
 * Determinism contract, one level up from SweepRunner: chunk
 * boundaries depend only on (scenarios, chunk), never on the shard or
 * job count, and the aggregate merge order is canonicalized by chunk
 * index — so the final aggregate report is byte-identical at any
 * --shards N x --jobs M split, across worker crashes (the coordinator
 * re-dispatches lost chunks) and across kill-and-resume (partials are
 * serialized losslessly in the manifest). Wall-clock timings, shard
 * counts and snapshot-cache tallies are deliberately excluded from
 * the deterministic report and surfaced in CampaignSummary instead.
 */

#ifndef AITAX_SWEEP_CAMPAIGN_H
#define AITAX_SWEEP_CAMPAIGN_H

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "stats/streaming_distribution.h"
#include "sweep/snapshot_cache.h"

namespace aitax::sweep {

/** One scenario's contribution to the campaign aggregate. */
struct ScenarioOutcome
{
    /** End-to-end mean latency of the scenario's runs, in ms. */
    double e2eMeanMs = 0.0;
    /** Simulation events executed (the events/sec numerator). */
    std::uint64_t events = 0;
};

/**
 * Runs scenario @p index of the caller's corpus. Must be a pure
 * function of the index (the corpus seed is bound by the caller), and
 * safe to call from SweepRunner worker threads.
 */
using ScenarioFn = std::function<ScenarioOutcome(int index)>;

struct WorkerOptions
{
    /** Threads for the worker's in-process SweepRunner pool. */
    int jobs = 1;
    /**
     * Crash-injection hook for the resilience tests: the worker calls
     * std::exit(7) upon *receiving* its Nth range command (1-based),
     * losing the in-flight chunk. < 0 disables.
     */
    int exitAfterRanges = -1;
};

/**
 * Serve sweep ranges over stdin/stdout until "quit" or EOF.
 * @return process exit code (0 on a clean quit).
 */
int runWorker(const WorkerOptions &opts, const ScenarioFn &fn);

/** Mergeable aggregate state of a campaign (or one chunk of it). */
struct CampaignAggregate
{
    stats::StreamingDistribution latencyMs;
    /** Scenarios folded in. */
    std::uint64_t scenarios = 0;
    /** Total simulation events across those scenarios. */
    std::uint64_t events = 0;
    /**
     * Order-sensitive fingerprint: sum of per-scenario mean latencies
     * accumulated in ascending scenario index order. Any split that
     * reproduces the campaign byte-exactly reproduces this double
     * bit-exactly.
     */
    double checksumMs = 0.0;

    void addScenario(const ScenarioOutcome &o);
    /** Fold @p chunk in; call in ascending chunk order. */
    void merge(const CampaignAggregate &chunk);

    /** Lossless one-line text form for the checkpoint manifest. */
    std::string serialize() const;
    static bool deserialize(std::string_view text, CampaignAggregate &out,
                            std::string *error = nullptr);
};

struct CampaignConfig
{
    /** Corpus size: scenario indices [0, scenarios). */
    int scenarios = 0;
    /** Chunk size — checkpoint/streaming granularity. Chunk
     *  boundaries are a pure function of (scenarios, chunk), never of
     *  the shard count; changing it changes the aggregate's FP merge
     *  order, so resumes validate it via the manifest header. */
    int chunk = 32;
    /** Worker processes. */
    int shards = 1;
    /**
     * argv of one worker process (argv[0] = executable). The
     * coordinator appends nothing; bake seed/jobs/engine flags in.
     */
    std::vector<std::string> workerCmd;
    /**
     * Campaign identity line, e.g. "corpus=fuzz seed=42 scenarios=256
     * chunk=32 faults=0 engine=fast". Written to the manifest header
     * and validated on resume: a checkpoint from a different campaign
     * is an error, not silent corruption.
     */
    std::string identity;
    /** Checkpoint manifest path; empty disables checkpointing. */
    std::string checkpointPath;
    /** Load completed chunks from the manifest before dispatching. */
    bool resume = false;
    /**
     * Interruption-injection hook for the resume tests: after this
     * many chunk completions in this session the coordinator stops
     * dispatching, drains its workers and reports Interrupted. < 0
     * disables.
     */
    int stopAfterChunks = -1;
    /** Crash-injection: worker 0 is launched with this --exit-after
     *  value appended to workerCmd. < 0 disables. */
    int killWorkerAfterRanges = -1;
};

enum class CampaignStatus
{
    Ok,
    Interrupted, ///< stopAfterChunks hit; manifest holds the progress
    Error,
};

struct CampaignSummary
{
    CampaignStatus status = CampaignStatus::Error;
    std::string error;

    /** The deterministic aggregate (merged in chunk order). */
    CampaignAggregate aggregate;

    // Observability — never part of the deterministic report.
    /** Snapshot-cache counters summed across all worker processes. */
    SnapshotCacheStats workerCache;
    double wallSeconds = 0.0;
    /** Aggregate throughput: events / wallSeconds. */
    double eventsPerSec = 0.0;
    int chunksTotal = 0;
    /** Chunks executed by workers this session. */
    int chunksRun = 0;
    /** Chunks restored from the manifest (--resume). */
    int chunksResumed = 0;
    /** Worker processes that died mid-campaign. */
    int workersLost = 0;
    /** Chunks that had to be re-dispatched after a worker loss. */
    int chunksRedispatched = 0;
};

/**
 * Drive a sharded campaign to completion (or checkpointed
 * interruption). Blocks until every worker has exited.
 */
CampaignSummary runCampaign(const CampaignConfig &cfg);

/**
 * The deterministic campaign report: identity + aggregate only, every
 * double as "%.17g". Byte-identical at any shard/job split and across
 * kill/resume — the artifact the verify tier compares.
 */
std::string campaignReportJson(const std::string &identity,
                               const CampaignAggregate &agg);

/** /proc/self/exe (fallback: @p argv0) — workers re-exec this binary. */
std::string selfExecutablePath(const char *argv0);

} // namespace aitax::sweep

#endif // AITAX_SWEEP_CAMPAIGN_H
