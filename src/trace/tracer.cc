#include "trace/tracer.h"

#include <algorithm>
#include <cassert>

namespace aitax::trace {

const std::vector<Interval> Tracer::emptyIntervals;
const std::vector<CounterSample> Tracer::emptyCounters;

void
Tracer::recordInterval(const std::string &track, std::string label,
                       sim::TimeNs begin, sim::TimeNs end)
{
    if (!enabled || end <= begin)
        return;
    tracks[track].push_back({std::move(label), begin, end});
}

void
Tracer::recordEvent(std::string kind, std::string detail, sim::TimeNs when)
{
    if (!enabled)
        return;
    events_.push_back({std::move(kind), std::move(detail), when});
}

void
Tracer::recordCounter(const std::string &counter, sim::TimeNs when,
                      double value)
{
    if (!enabled)
        return;
    counters[counter].push_back({when, value});
}

void
Tracer::clear()
{
    tracks.clear();
    events_.clear();
    counters.clear();
}

const std::vector<Interval> &
Tracer::intervals(const std::string &track) const
{
    auto it = tracks.find(track);
    return it == tracks.end() ? emptyIntervals : it->second;
}

const std::vector<CounterSample> &
Tracer::counter(const std::string &name) const
{
    auto it = counters.find(name);
    return it == counters.end() ? emptyCounters : it->second;
}

std::vector<std::string>
Tracer::trackNames() const
{
    std::vector<std::string> names;
    names.reserve(tracks.size());
    for (const auto &[name, ivs] : tracks)
        names.push_back(name);
    return names; // std::map iterates sorted
}

std::int64_t
Tracer::countEvents(const std::string &kind) const
{
    std::int64_t n = 0;
    for (const auto &e : events_)
        if (e.kind == kind)
            ++n;
    return n;
}

std::vector<double>
Tracer::utilization(const std::string &track, sim::TimeNs t0,
                    sim::TimeNs t1, std::size_t buckets) const
{
    assert(t1 > t0 && buckets > 0);
    std::vector<double> out(buckets, 0.0);
    const double span = static_cast<double>(t1 - t0);
    const double bucket_ns = span / static_cast<double>(buckets);

    for (const auto &iv : intervals(track)) {
        const sim::TimeNs b = std::max(iv.begin, t0);
        const sim::TimeNs e = std::min(iv.end, t1);
        if (e <= b)
            continue;
        auto first = static_cast<std::size_t>((b - t0) / bucket_ns);
        auto last = static_cast<std::size_t>((e - 1 - t0) / bucket_ns);
        first = std::min(first, buckets - 1);
        last = std::min(last, buckets - 1);
        for (std::size_t k = first; k <= last; ++k) {
            const double k0 = static_cast<double>(t0) + k * bucket_ns;
            const double k1 = k0 + bucket_ns;
            const double overlap = std::min<double>(e, k1) -
                                   std::max<double>(b, k0);
            if (overlap > 0)
                out[k] += overlap / bucket_ns;
        }
    }
    for (auto &u : out)
        u = std::min(u, 1.0);
    return out;
}

std::vector<double>
Tracer::counterRate(const std::string &name, sim::TimeNs t0,
                    sim::TimeNs t1, std::size_t buckets) const
{
    assert(t1 > t0 && buckets > 0);
    std::vector<double> out(buckets, 0.0);
    const double span = static_cast<double>(t1 - t0);
    const double bucket_ns = span / static_cast<double>(buckets);
    for (const auto &s : counter(name)) {
        if (s.when < t0 || s.when >= t1)
            continue;
        auto k = static_cast<std::size_t>((s.when - t0) / bucket_ns);
        k = std::min(k, buckets - 1);
        out[k] += s.value;
    }
    return out;
}

} // namespace aitax::trace
