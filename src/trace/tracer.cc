#include "trace/tracer.h"

#include <algorithm>
#include <cassert>

namespace aitax::trace {

std::uint32_t
Tracer::intern(InternMap &map, std::vector<std::string> &names,
               std::string_view name)
{
    if (auto it = map.find(name); it != map.end())
        return it->second;
    const auto id = static_cast<std::uint32_t>(names.size());
    names.emplace_back(name);
    map.emplace(names.back(), id);
    return id;
}

std::uint32_t
Tracer::find(const InternMap &map, std::string_view name)
{
    const auto it = map.find(name);
    return it == map.end() ? kInvalidTraceId : it->second;
}

TrackId
Tracer::internTrack(std::string_view name)
{
    AITAX_AUDIT_OWNER(owner_, "Tracer");
    const std::uint32_t id = intern(trackIds_, trackNames_, name);
    if (id == tracks_.size()) {
        tracks_.emplace_back(arena_);
        // Keep tracksByName_ sorted; interning is construction-time
        // rare, so an ordered insert is fine.
        const auto pos = std::lower_bound(
            tracksByName_.begin(), tracksByName_.end(), name,
            [this](TrackId t, std::string_view n) {
                return trackNames_[t.value] < n;
            });
        tracksByName_.insert(pos, TrackId{id});
    }
    return TrackId{id};
}

LabelId
Tracer::internLabel(std::string_view name)
{
    AITAX_AUDIT_OWNER(owner_, "Tracer");
    return LabelId{intern(labelIds_, labelNames_, name)};
}

EventKindId
Tracer::internEventKind(std::string_view kind)
{
    AITAX_AUDIT_OWNER(owner_, "Tracer");
    const std::uint32_t id = intern(kindIds_, kindNames_, kind);
    if (id == kindCounts_.size())
        kindCounts_.push_back(0);
    return EventKindId{id};
}

CounterId
Tracer::internCounter(std::string_view name)
{
    AITAX_AUDIT_OWNER(owner_, "Tracer");
    const std::uint32_t id = intern(counterIds_, counterNames_, name);
    if (id == counters_.size())
        counters_.emplace_back(arena_);
    return CounterId{id};
}

TrackId
Tracer::findTrack(std::string_view name) const
{
    return TrackId{find(trackIds_, name)};
}

CounterId
Tracer::findCounter(std::string_view name) const
{
    return CounterId{find(counterIds_, name)};
}

EventKindId
Tracer::findEventKind(std::string_view kind) const
{
    return EventKindId{find(kindIds_, kind)};
}

void
Tracer::clear()
{
    for (auto &t : tracks_) {
        t.labels.clear();
        t.begins.clear();
        t.ends.clear();
    }
    events_.kinds.clear();
    events_.details.clear();
    events_.whens.clear();
    std::fill(kindCounts_.begin(), kindCounts_.end(), 0);
    for (auto &c : counters_) {
        c.whens.clear();
        c.values.clear();
    }
}

void
Tracer::cloneFrom(const Tracer &src)
{
    AITAX_AUDIT_OWNER(owner_, "Tracer");
    enabled = src.enabled;
    // Stores are assigned element-wise so existing (and newly grown)
    // entries keep THIS tracer's allocator: cloning an arena-backed
    // tracer from a heap snapshot must land the data back in the
    // arena, and a heap snapshot cloning from an arena-backed tracer
    // must not capture arena pointers that die at the next reset.
    while (tracks_.size() < src.tracks_.size())
        tracks_.emplace_back(arena_);
    tracks_.resize(src.tracks_.size());
    for (std::size_t i = 0; i < tracks_.size(); ++i)
        tracks_[i] = src.tracks_[i];
    trackNames_ = src.trackNames_;
    tracksByName_ = src.tracksByName_;
    trackIds_ = src.trackIds_;
    labelNames_ = src.labelNames_;
    labelIds_ = src.labelIds_;
    events_ = src.events_;
    kindNames_ = src.kindNames_;
    kindCounts_ = src.kindCounts_;
    kindIds_ = src.kindIds_;
    while (counters_.size() < src.counters_.size())
        counters_.emplace_back(arena_);
    counters_.resize(src.counters_.size());
    for (std::size_t i = 0; i < counters_.size(); ++i)
        counters_[i] = src.counters_[i];
    counterNames_ = src.counterNames_;
    counterIds_ = src.counterIds_;
}

std::vector<TrackId>
Tracer::sortedNonEmptyTracks() const
{
    std::vector<TrackId> out;
    out.reserve(tracksByName_.size());
    for (TrackId id : tracksByName_)
        if (!tracks_[id.value].empty())
            out.push_back(id);
    return out;
}

std::size_t
Tracer::intervalCount() const
{
    std::size_t n = 0;
    for (const auto &t : tracks_)
        n += t.size();
    return n;
}

std::size_t
Tracer::counterSampleCount() const
{
    std::size_t n = 0;
    for (const auto &c : counters_)
        n += c.size();
    return n;
}

std::vector<Interval>
Tracer::intervals(std::string_view track) const
{
    std::vector<Interval> out;
    const TrackId id = findTrack(track);
    if (!id.valid())
        return out;
    const TrackStore &t = tracks_[id.value];
    out.reserve(t.size());
    for (std::size_t i = 0; i < t.size(); ++i)
        out.push_back(
            {labelNames_[t.labels[i].value], t.begins[i], t.ends[i]});
    return out;
}

std::vector<PointEvent>
Tracer::events() const
{
    std::vector<PointEvent> out;
    out.reserve(events_.size());
    for (std::size_t i = 0; i < events_.size(); ++i)
        out.push_back({kindNames_[events_.kinds[i].value],
                       labelNames_[events_.details[i].value],
                       events_.whens[i]});
    return out;
}

std::vector<CounterSample>
Tracer::counter(std::string_view name) const
{
    std::vector<CounterSample> out;
    const CounterId id = findCounter(name);
    if (!id.valid())
        return out;
    const CounterStore &c = counters_[id.value];
    out.reserve(c.size());
    for (std::size_t i = 0; i < c.size(); ++i)
        out.push_back({c.whens[i], c.values[i]});
    return out;
}

std::vector<std::string>
Tracer::trackNames() const
{
    std::vector<std::string> names;
    const auto ids = sortedNonEmptyTracks();
    names.reserve(ids.size());
    for (TrackId id : ids)
        names.push_back(trackNames_[id.value]);
    return names;
}

std::int64_t
Tracer::countEvents(std::string_view kind) const
{
    const EventKindId id = findEventKind(kind);
    return id.valid() ? kindCounts_[id.value] : 0;
}

std::vector<double>
Tracer::utilization(std::string_view track, sim::TimeNs t0,
                    sim::TimeNs t1, std::size_t buckets) const
{
    assert(t1 > t0 && buckets > 0);
    std::vector<double> out(buckets, 0.0);
    const TrackId id = findTrack(track);
    if (!id.valid())
        return out;
    const TrackStore &ts = tracks_[id.value];

    const double span = static_cast<double>(t1 - t0);
    const double bucket_ns = span / static_cast<double>(buckets);
    const double t0d = static_cast<double>(t0);

    // Partial coverage of an interval's first/last bucket is added
    // directly; the fully covered buckets between them contribute
    // exactly 1.0 each, accumulated as a difference array and resolved
    // with one prefix-sum pass. O(1) per interval instead of the old
    // O(buckets-spanned) inner overlap loop.
    std::vector<double> full(buckets + 1, 0.0);
    for (std::size_t i = 0; i < ts.size(); ++i) {
        const sim::TimeNs b = std::max(ts.begins[i], t0);
        const sim::TimeNs e = std::min(ts.ends[i], t1);
        if (e <= b)
            continue;
        auto first = static_cast<std::size_t>(
            static_cast<double>(b - t0) / bucket_ns);
        auto last = static_cast<std::size_t>(
            static_cast<double>(e - 1 - t0) / bucket_ns);
        first = std::min(first, buckets - 1);
        last = std::min(last, buckets - 1);
        if (first == last) {
            out[first] += static_cast<double>(e - b) / bucket_ns;
            continue;
        }
        const double first_end =
            t0d + static_cast<double>(first + 1) * bucket_ns;
        out[first] += (first_end - static_cast<double>(b)) / bucket_ns;
        const double last_begin =
            t0d + static_cast<double>(last) * bucket_ns;
        out[last] += (static_cast<double>(e) - last_begin) / bucket_ns;
        if (last > first + 1) {
            full[first + 1] += 1.0;
            full[last] -= 1.0;
        }
    }
    double covered = 0.0;
    for (std::size_t k = 0; k < buckets; ++k) {
        covered += full[k];
        out[k] = std::min(out[k] + covered, 1.0);
    }
    return out;
}

std::vector<double>
Tracer::counterRate(std::string_view name, sim::TimeNs t0,
                    sim::TimeNs t1, std::size_t buckets) const
{
    assert(t1 > t0 && buckets > 0);
    std::vector<double> out(buckets, 0.0);
    const CounterId id = findCounter(name);
    if (!id.valid())
        return out;
    const CounterStore &c = counters_[id.value];

    const double span = static_cast<double>(t1 - t0);
    const double bucket_ns = span / static_cast<double>(buckets);
    for (std::size_t i = 0; i < c.size(); ++i) {
        const sim::TimeNs when = c.whens[i];
        if (when < t0 || when >= t1)
            continue;
        auto k = static_cast<std::size_t>(
            static_cast<double>(when - t0) / bucket_ns);
        k = std::min(k, buckets - 1);
        out[k] += c.values[i];
    }
    return out;
}

} // namespace aitax::trace
