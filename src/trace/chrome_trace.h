/**
 * @file
 * Chrome trace-event export.
 *
 * Writes the tracer's intervals and point events in the Trace Event
 * JSON format, loadable in chrome://tracing or Perfetto — the closest
 * open equivalent to browsing a Snapdragon Profiler capture.
 */

#ifndef AITAX_TRACE_CHROME_TRACE_H
#define AITAX_TRACE_CHROME_TRACE_H

#include <ostream>

#include "trace/tracer.h"

namespace aitax::trace {

/**
 * Write a complete-event ("ph":"X") JSON array for every interval,
 * one "thread" per track, plus instant events for context switches
 * and migrations. Timestamps are microseconds, as the format requires.
 */
void writeChromeTrace(std::ostream &os, const Tracer &tracer);

} // namespace aitax::trace

#endif // AITAX_TRACE_CHROME_TRACE_H
