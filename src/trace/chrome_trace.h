/**
 * @file
 * Chrome trace-event export.
 *
 * Writes the tracer's intervals and point events in the Trace Event
 * JSON format, loadable in chrome://tracing or Perfetto — the closest
 * open equivalent to browsing a Snapdragon Profiler capture.
 *
 * Serialization streams the columnar store into one output buffer —
 * no per-field temporaries — and is byte-identical to the legacy
 * string-concatenating writer (the golden traces depend on that).
 */

#ifndef AITAX_TRACE_CHROME_TRACE_H
#define AITAX_TRACE_CHROME_TRACE_H

#include <ostream>
#include <string>

#include "trace/tracer.h"

namespace aitax::trace {

/**
 * Serialize a complete-event ("ph":"X") JSON array for every
 * interval, one "thread" per track, plus instant events for context
 * switches and migrations. Timestamps are microseconds, as the format
 * requires.
 */
std::string chromeTraceString(const Tracer &tracer);

/** Stream the same JSON to an ostream. */
void writeChromeTrace(std::ostream &os, const Tracer &tracer);

} // namespace aitax::trace

#endif // AITAX_TRACE_CHROME_TRACE_H
