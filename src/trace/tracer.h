/**
 * @file
 * Execution timeline tracer — our stand-in for the Snapdragon
 * Profiler views in Fig 6 of the paper.
 *
 * Components record busy intervals on named tracks (CPU cores, GPU,
 * cDSP), byte counters (AXI traffic) and point events (context
 * switches, migrations). The trace can then be bucketed into
 * utilization series and rendered as text.
 *
 * Storage is interned and columnar: strings are resolved to ids once
 * (components do this at construction), and the steady-state record
 * path is three array appends — no string compares, no per-event
 * allocations once capacity has grown. The string-based record
 * overloads remain as thin wrappers over the interner, so the probe
 * effect of our own instrumentation stays negligible (Section III-D
 * is about exactly this failure mode).
 */

#ifndef AITAX_TRACE_TRACER_H
#define AITAX_TRACE_TRACER_H

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "sim/arena.h"
#include "sim/audit.h"
#include "sim/time.h"
#include "trace/ids.h"

namespace aitax::trace {

/** A busy interval on a track (materialized legacy view). */
struct Interval
{
    std::string label; ///< task/job name
    sim::TimeNs begin = 0;
    sim::TimeNs end = 0;
};

/** A timestamped point event (materialized legacy view). */
struct PointEvent
{
    std::string kind; ///< e.g. "context_switch", "migration"
    std::string detail;
    sim::TimeNs when = 0;
};

/** A timestamped counter increment (e.g. bytes moved on AXI). */
struct CounterSample
{
    sim::TimeNs when = 0;
    double value = 0.0;
};

/**
 * Collects intervals/events/counters during a simulation run.
 *
 * Column growth is arena-routable: constructed with a sim::Arena the
 * store columns bump-allocate from it (zero heap traffic even while
 * capacity grows — asserted by tests/test_trace_alloc.cc), and with no
 * arena they fall back to the heap. Copying a store always produces a
 * heap-backed copy, and assignment keeps the destination's allocator,
 * so warm-up snapshots (heap-owned, outliving every per-run arena)
 * never capture a pointer into an arena about to be reset.
 */
class Tracer
{
  public:
    /** Arena-routable column type (heap fallback on null arena). */
    template <typename T>
    using Column = std::vector<T, sim::ArenaAllocator<T>>;

    /** Columnar (SoA) interval storage for one track. */
    struct TrackStore
    {
        Column<LabelId> labels;
        Column<sim::TimeNs> begins;
        Column<sim::TimeNs> ends;

        TrackStore() = default;
        explicit TrackStore(sim::Arena *arena)
            : labels(sim::ArenaAllocator<LabelId>(arena)),
              begins(sim::ArenaAllocator<sim::TimeNs>(arena)),
              ends(sim::ArenaAllocator<sim::TimeNs>(arena))
        {
        }
        /** Copies are heap-backed: they may outlive the source arena. */
        TrackStore(const TrackStore &o) : TrackStore() { *this = o; }
        /** Keeps this store's own allocator (POCCA is false). */
        TrackStore &operator=(const TrackStore &) = default;
        TrackStore(TrackStore &&) noexcept = default;
        TrackStore &operator=(TrackStore &&) = default;

        std::size_t size() const { return begins.size(); }
        bool empty() const { return begins.empty(); }
    };

    /** Columnar point-event storage. */
    struct EventStore
    {
        Column<EventKindId> kinds;
        Column<LabelId> details;
        Column<sim::TimeNs> whens;

        EventStore() = default;
        explicit EventStore(sim::Arena *arena)
            : kinds(sim::ArenaAllocator<EventKindId>(arena)),
              details(sim::ArenaAllocator<LabelId>(arena)),
              whens(sim::ArenaAllocator<sim::TimeNs>(arena))
        {
        }
        EventStore(const EventStore &o) : EventStore() { *this = o; }
        EventStore &operator=(const EventStore &) = default;
        EventStore(EventStore &&) noexcept = default;
        EventStore &operator=(EventStore &&) = default;

        std::size_t size() const { return whens.size(); }
        bool empty() const { return whens.empty(); }
    };

    /** Columnar counter-sample storage for one counter. */
    struct CounterStore
    {
        Column<sim::TimeNs> whens;
        Column<double> values;

        CounterStore() = default;
        explicit CounterStore(sim::Arena *arena)
            : whens(sim::ArenaAllocator<sim::TimeNs>(arena)),
              values(sim::ArenaAllocator<double>(arena))
        {
        }
        CounterStore(const CounterStore &o) : CounterStore() { *this = o; }
        CounterStore &operator=(const CounterStore &) = default;
        CounterStore(CounterStore &&) noexcept = default;
        CounterStore &operator=(CounterStore &&) = default;

        std::size_t size() const { return whens.size(); }
        bool empty() const { return whens.empty(); }
    };

    /** @param arena backs column growth; nullptr = plain heap. */
    explicit Tracer(sim::Arena *arena = nullptr)
        : arena_(arena), events_(arena)
    {
    }

    /** Enable/disable collection (disabled tracing is free). */
    void setEnabled(bool on) { enabled = on; }
    bool isEnabled() const { return enabled; }

    // --- Interning ---------------------------------------------------
    // Resolve a string to an id, creating it on first sight. Interning
    // works regardless of the enabled flag so components can resolve
    // ids at construction; steady-state re-interning of a known string
    // is a hash lookup with no allocation.

    TrackId internTrack(std::string_view name);
    LabelId internLabel(std::string_view name);
    EventKindId internEventKind(std::string_view kind);
    CounterId internCounter(std::string_view name);

    /** Lookup without creating; invalid id if never interned. */
    TrackId findTrack(std::string_view name) const;
    CounterId findCounter(std::string_view name) const;
    EventKindId findEventKind(std::string_view kind) const;

    // --- Zero-allocation record path ---------------------------------
    // Steady state (capacity grown) performs no heap allocation and no
    // string compares; asserted by tests/test_trace_alloc.cc.

    void
    recordInterval(TrackId track, LabelId label, sim::TimeNs begin,
                   sim::TimeNs end)
    {
        AITAX_AUDIT_OWNER(owner_, "Tracer");
        if (!enabled || end <= begin)
            return;
        TrackStore &t = tracks_[track.value];
        t.labels.push_back(label);
        t.begins.push_back(begin);
        t.ends.push_back(end);
    }

    void
    recordEvent(EventKindId kind, LabelId detail, sim::TimeNs when)
    {
        AITAX_AUDIT_OWNER(owner_, "Tracer");
        if (!enabled)
            return;
        events_.kinds.push_back(kind);
        events_.details.push_back(detail);
        events_.whens.push_back(when);
        ++kindCounts_[kind.value];
    }

    void
    recordCounter(CounterId counter, sim::TimeNs when, double value)
    {
        AITAX_AUDIT_OWNER(owner_, "Tracer");
        if (!enabled)
            return;
        CounterStore &c = counters_[counter.value];
        c.whens.push_back(when);
        c.values.push_back(value);
    }

    // --- Legacy string record API (thin wrappers over interning) -----

    void
    recordInterval(std::string_view track, std::string_view label,
                   sim::TimeNs begin, sim::TimeNs end)
    {
        if (!enabled || end <= begin)
            return;
        recordInterval(internTrack(track), internLabel(label), begin,
                       end);
    }

    void
    recordEvent(std::string_view kind, std::string_view detail,
                sim::TimeNs when)
    {
        if (!enabled)
            return;
        recordEvent(internEventKind(kind), internLabel(detail), when);
    }

    void
    recordCounter(std::string_view counter, sim::TimeNs when,
                  double value)
    {
        if (!enabled)
            return;
        recordCounter(internCounter(counter), when, value);
    }

    /**
     * Drop all recorded data but keep interned ids valid and retain
     * vector capacity, so a cleared tracer records without
     * reallocating.
     */
    void clear();

    /**
     * Replace this tracer's entire contents — interner tables, ids
     * and recorded data — with a copy of @p src, so recording resumes
     * exactly where @p src left off. Used by warm-up prefix snapshots:
     * a restored run's trace must be byte-identical to one that
     * executed the warm-up itself, which requires identical intern id
     * assignment, not just identical events. Thread ownership is NOT
     * copied; this tracer stays bound to its own thread.
     */
    void cloneFrom(const Tracer &src);

    /**
     * Release thread ownership (audited builds): the next audited
     * record/intern rebinds the tracer to its new owning thread. Only
     * for deliberate handoffs between construction and use.
     */
    void auditReleaseOwner() { owner_.release(); }

    // --- Columnar read API (writers, renderers, benchmarks) ----------

    std::size_t trackCount() const { return tracks_.size(); }
    const TrackStore &track(TrackId id) const { return tracks_[id.value]; }
    const std::string &trackName(TrackId id) const
    {
        return trackNames_[id.value];
    }
    /** Ids of tracks with >= 1 interval, sorted by track name. */
    std::vector<TrackId> sortedNonEmptyTracks() const;

    const EventStore &eventStore() const { return events_; }
    const std::string &labelName(LabelId id) const
    {
        return labelNames_[id.value];
    }
    const std::string &eventKindName(EventKindId id) const
    {
        return kindNames_[id.value];
    }
    const CounterStore &counterStore(CounterId id) const
    {
        return counters_[id.value];
    }
    const std::string &counterName(CounterId id) const
    {
        return counterNames_[id.value];
    }

    /** Totals across all tracks/counters (diagnostics, benchmarks). */
    std::size_t intervalCount() const;
    std::size_t eventCount() const { return events_.size(); }
    std::size_t counterSampleCount() const;

    // --- Legacy read API (materializing; test/render convenience) ----

    /** Intervals of a track with labels resolved; empty if unknown. */
    std::vector<Interval> intervals(std::string_view track) const;
    /** All point events with kind/detail resolved. */
    std::vector<PointEvent> events() const;
    /** Samples of a counter; empty if unknown. */
    std::vector<CounterSample> counter(std::string_view name) const;

    /** Names of all tracks with recorded intervals, sorted. */
    std::vector<std::string> trackNames() const;

    /** Count events of a given kind (maintained at record time). */
    std::int64_t countEvents(std::string_view kind) const;

    /**
     * Fraction of [t0, t1) each bucket of a track spends busy.
     * Full-bucket coverage is accumulated in closed form (O(1) per
     * interval plus one prefix-sum pass), not per-bucket overlap.
     * @return one utilization value in [0,1] per bucket.
     */
    std::vector<double> utilization(std::string_view track,
                                    sim::TimeNs t0, sim::TimeNs t1,
                                    std::size_t buckets) const;

    /** Sum of a counter per bucket over [t0, t1). */
    std::vector<double> counterRate(std::string_view name,
                                    sim::TimeNs t0, sim::TimeNs t1,
                                    std::size_t buckets) const;

  private:
    /** Heterogeneous string_view lookup into string-keyed maps. */
    struct SvHash
    {
        using is_transparent = void;
        std::size_t
        operator()(std::string_view s) const noexcept
        {
            return std::hash<std::string_view>{}(s);
        }
    };
    // The interner is lookup-only: nothing ever iterates it, so its
    // hash order cannot reach a trace or report. All ordered reads go
    // through the dense name vectors / tracksByName_ (sorted).
    using InternMap = // aitax-lint: allow(unordered-container)
        std::unordered_map<std::string, std::uint32_t, SvHash,
                           std::equal_to<>>;

    static std::uint32_t intern(InternMap &map,
                                std::vector<std::string> &names,
                                std::string_view name);
    static std::uint32_t find(const InternMap &map,
                              std::string_view name);

    bool enabled = true;

    /** Thread-ownership sentinel; checks compiled in audited builds. */
    sim::OwnershipSentinel owner_;

    /** Backs column growth for every store; nullptr = heap. */
    sim::Arena *arena_ = nullptr;

    std::vector<TrackStore> tracks_;
    std::vector<std::string> trackNames_;
    /** All track ids, kept sorted by name (updated on intern). */
    std::vector<TrackId> tracksByName_;
    InternMap trackIds_;

    std::vector<std::string> labelNames_;
    InternMap labelIds_;

    EventStore events_;
    std::vector<std::string> kindNames_;
    std::vector<std::int64_t> kindCounts_;
    InternMap kindIds_;

    std::vector<CounterStore> counters_;
    std::vector<std::string> counterNames_;
    InternMap counterIds_;
};

} // namespace aitax::trace

#endif // AITAX_TRACE_TRACER_H
