/**
 * @file
 * Execution timeline tracer — our stand-in for the Snapdragon
 * Profiler views in Fig 6 of the paper.
 *
 * Components record busy intervals on named tracks (CPU cores, GPU,
 * cDSP), byte counters (AXI traffic) and point events (context
 * switches, migrations). The trace can then be bucketed into
 * utilization series and rendered as text.
 */

#ifndef AITAX_TRACE_TRACER_H
#define AITAX_TRACE_TRACER_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/time.h"

namespace aitax::trace {

/** A busy interval on a track. */
struct Interval
{
    std::string label; ///< task/job name
    sim::TimeNs begin = 0;
    sim::TimeNs end = 0;
};

/** A timestamped point event. */
struct PointEvent
{
    std::string kind; ///< e.g. "context_switch", "migration"
    std::string detail;
    sim::TimeNs when = 0;
};

/** A timestamped counter increment (e.g. bytes moved on AXI). */
struct CounterSample
{
    sim::TimeNs when = 0;
    double value = 0.0;
};

/**
 * Collects intervals/events/counters during a simulation run.
 */
class Tracer
{
  public:
    /** Enable/disable collection (disabled tracing is free). */
    void setEnabled(bool on) { enabled = on; }
    bool isEnabled() const { return enabled; }

    void recordInterval(const std::string &track, std::string label,
                        sim::TimeNs begin, sim::TimeNs end);
    void recordEvent(std::string kind, std::string detail,
                     sim::TimeNs when);
    void recordCounter(const std::string &counter, sim::TimeNs when,
                       double value);

    void clear();

    const std::vector<Interval> &intervals(const std::string &track) const;
    const std::vector<PointEvent> &events() const { return events_; }
    const std::vector<CounterSample> &
    counter(const std::string &name) const;

    /** All track names seen so far, sorted. */
    std::vector<std::string> trackNames() const;

    /** Count events of a given kind. */
    std::int64_t countEvents(const std::string &kind) const;

    /**
     * Fraction of [t0, t1) each bucket of a track spends busy.
     * @return one utilization value in [0,1] per bucket.
     */
    std::vector<double> utilization(const std::string &track,
                                    sim::TimeNs t0, sim::TimeNs t1,
                                    std::size_t buckets) const;

    /** Sum of a counter per bucket over [t0, t1). */
    std::vector<double> counterRate(const std::string &name,
                                    sim::TimeNs t0, sim::TimeNs t1,
                                    std::size_t buckets) const;

  private:
    bool enabled = true;
    std::map<std::string, std::vector<Interval>> tracks;
    std::vector<PointEvent> events_;
    std::map<std::string, std::vector<CounterSample>> counters;

    static const std::vector<Interval> emptyIntervals;
    static const std::vector<CounterSample> emptyCounters;
};

} // namespace aitax::trace

#endif // AITAX_TRACE_TRACER_H
