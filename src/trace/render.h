/**
 * @file
 * Text rendering of a trace — the profiler-style timeline output used
 * to reproduce Fig 6.
 */

#ifndef AITAX_TRACE_RENDER_H
#define AITAX_TRACE_RENDER_H

#include <ostream>
#include <string>
#include <vector>

#include "sim/time.h"
#include "trace/tracer.h"

namespace aitax::trace {

/** Options for renderTimeline. */
struct RenderOptions
{
    std::size_t buckets = 60;    ///< timeline columns
    bool showCounters = true;    ///< include counter rows (AXI etc.)
    bool showEventCounts = true; ///< context switches / migrations
};

/**
 * Render per-track utilization as rows of density glyphs
 * (' .:-=+*#%@' for 0..100%), one row per track, plus counter rates.
 */
void renderTimeline(std::ostream &os, const Tracer &tracer,
                    sim::TimeNs t0, sim::TimeNs t1,
                    const RenderOptions &opts = {});

/** Dump all intervals as CSV (track,label,begin_ns,end_ns). */
void renderIntervalsCsv(std::ostream &os, const Tracer &tracer);

} // namespace aitax::trace

#endif // AITAX_TRACE_RENDER_H
