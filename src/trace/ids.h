/**
 * @file
 * Interned identifiers for the tracing hot path.
 *
 * Components resolve strings (track names, task labels, event kinds,
 * counter names) to small integer ids once — at construction — and
 * record with ids from then on. The id-based record overloads are the
 * zero-allocation steady-state path (see docs/PERFORMANCE.md,
 * "Tracing hot path").
 *
 * Each id type is a distinct struct so a TrackId cannot be passed
 * where a LabelId is expected. Ids are only meaningful for the Tracer
 * that interned them.
 */

#ifndef AITAX_TRACE_IDS_H
#define AITAX_TRACE_IDS_H

#include <cstdint>

namespace aitax::trace {

/** Sentinel for "not interned yet". */
inline constexpr std::uint32_t kInvalidTraceId = 0xffffffffu;

/** A named timeline (CPU core, GPU, cDSP). */
struct TrackId
{
    std::uint32_t value = kInvalidTraceId;
    bool valid() const { return value != kInvalidTraceId; }
    friend bool operator==(TrackId a, TrackId b) = default;
};

/** An interval label or point-event detail (task/job name). */
struct LabelId
{
    std::uint32_t value = kInvalidTraceId;
    bool valid() const { return value != kInvalidTraceId; }
    friend bool operator==(LabelId a, LabelId b) = default;
};

/** A point-event kind ("context_switch", "migration"). */
struct EventKindId
{
    std::uint32_t value = kInvalidTraceId;
    bool valid() const { return value != kInvalidTraceId; }
    friend bool operator==(EventKindId a, EventKindId b) = default;
};

/** A counter name ("axi_bytes"). */
struct CounterId
{
    std::uint32_t value = kInvalidTraceId;
    bool valid() const { return value != kInvalidTraceId; }
    friend bool operator==(CounterId a, CounterId b) = default;
};

} // namespace aitax::trace

#endif // AITAX_TRACE_IDS_H
