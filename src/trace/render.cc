#include "trace/render.h"

#include <algorithm>
#include <cstdio>

namespace aitax::trace {

namespace {

char
densityGlyph(double u)
{
    static const char glyphs[] = " .:-=+*#%@";
    const int levels = static_cast<int>(sizeof(glyphs)) - 2;
    int idx = static_cast<int>(u * levels + 0.5);
    idx = std::clamp(idx, 0, levels);
    return glyphs[idx];
}

} // namespace

void
renderTimeline(std::ostream &os, const Tracer &tracer, sim::TimeNs t0,
               sim::TimeNs t1, const RenderOptions &opts)
{
    os << "timeline " << sim::formatDuration(t1 - t0) << " ("
       << opts.buckets << " buckets of "
       << sim::formatDuration((t1 - t0) /
                              static_cast<sim::DurationNs>(opts.buckets))
       << ")\n";

    const auto tracks = tracer.sortedNonEmptyTracks();
    std::size_t widest = 8;
    for (TrackId id : tracks)
        widest = std::max(widest, tracer.trackName(id).size());

    for (TrackId id : tracks) {
        const std::string &name = tracer.trackName(id);
        const auto util = tracer.utilization(name, t0, t1, opts.buckets);
        os << "  ";
        os << name;
        for (std::size_t p = name.size(); p < widest; ++p)
            os << ' ';
        os << " |";
        for (double u : util)
            os << densityGlyph(u);
        // Mean utilization for the row.
        double mean = 0.0;
        for (double u : util)
            mean += u;
        mean /= static_cast<double>(util.size());
        char buf[32];
        std::snprintf(buf, sizeof(buf), "| %5.1f%%", mean * 100.0);
        os << buf << "\n";
    }

    if (opts.showCounters) {
        for (const auto *counter_name : {"axi_bytes"}) {
            const auto rate =
                tracer.counterRate(counter_name, t0, t1, opts.buckets);
            const double peak =
                *std::max_element(rate.begin(), rate.end());
            if (peak <= 0.0)
                continue;
            os << "  ";
            std::string label = counter_name;
            os << label;
            for (std::size_t p = label.size(); p < widest; ++p)
                os << ' ';
            os << " |";
            for (double r : rate)
                os << densityGlyph(r / peak);
            char buf[48];
            std::snprintf(buf, sizeof(buf), "| peak %.1f MB/bucket",
                          peak / 1e6);
            os << buf << "\n";
        }
    }

    if (opts.showEventCounts) {
        os << "  context switches: "
           << tracer.countEvents("context_switch")
           << ", migrations: " << tracer.countEvents("migration")
           << "\n";
    }
}

void
renderIntervalsCsv(std::ostream &os, const Tracer &tracer)
{
    os << "track,label,begin_ns,end_ns\n";
    for (TrackId id : tracer.sortedNonEmptyTracks()) {
        const std::string &name = tracer.trackName(id);
        const Tracer::TrackStore &t = tracer.track(id);
        for (std::size_t j = 0; j < t.size(); ++j) {
            os << name << "," << tracer.labelName(t.labels[j]) << ","
               << t.begins[j] << "," << t.ends[j] << "\n";
        }
    }
}

} // namespace aitax::trace
