#include "trace/chrome_trace.h"

#include <map>

namespace aitax::trace {

namespace {

/** Escape a string for a JSON literal. */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          default:
            out += c;
        }
    }
    return out;
}

} // namespace

void
writeChromeTrace(std::ostream &os, const Tracer &tracer)
{
    os << "[\n";
    bool first = true;
    auto sep = [&] {
        if (!first)
            os << ",\n";
        first = false;
    };

    // Stable thread ids per track, plus name metadata events.
    std::map<std::string, int> tids;
    int next_tid = 1;
    for (const auto &track : tracer.trackNames()) {
        tids[track] = next_tid++;
        sep();
        os << R"({"name":"thread_name","ph":"M","pid":1,"tid":)"
           << tids[track] << R"(,"args":{"name":")"
           << jsonEscape(track) << R"("}})";
    }

    for (const auto &track : tracer.trackNames()) {
        const int tid = tids[track];
        for (const auto &iv : tracer.intervals(track)) {
            sep();
            os << R"({"name":")" << jsonEscape(iv.label)
               << R"(","ph":"X","pid":1,"tid":)" << tid << R"(,"ts":)"
               << static_cast<double>(iv.begin) / 1e3 << R"(,"dur":)"
               << static_cast<double>(iv.end - iv.begin) / 1e3 << "}";
        }
    }

    for (const auto &event : tracer.events()) {
        sep();
        os << R"({"name":")" << jsonEscape(event.kind)
           << R"(","ph":"i","s":"g","pid":1,"tid":0,"ts":)"
           << static_cast<double>(event.when) / 1e3 << R"(,"args":{)"
           << R"("detail":")" << jsonEscape(event.detail) << R"("}})";
    }

    os << "\n]\n";
}

} // namespace aitax::trace
