#include "trace/chrome_trace.h"

#include <cstdio>
#include <string_view>

namespace aitax::trace {

namespace {

/**
 * Append a string escaped for a JSON literal. Escapes the two
 * mandatory characters plus every control character < 0x20 (named
 * escapes where JSON has them, \u00XX otherwise) — a raw control
 * character in a task label must not produce invalid JSON.
 */
void
appendEscaped(std::string &out, std::string_view s)
{
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\b':
            out += "\\b";
            break;
          case '\f':
            out += "\\f";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
}

/**
 * Append a nanosecond timestamp as microseconds, formatted exactly as
 * the legacy `os << double` did (defaultfloat, precision 6 == %g).
 */
void
appendUs(std::string &out, sim::TimeNs ns)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%g",
                  static_cast<double>(ns) / 1e3);
    out += buf;
}

void
appendInt(std::string &out, long long v)
{
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%lld", v);
    out += buf;
}

} // namespace

std::string
chromeTraceString(const Tracer &tracer)
{
    std::string out;
    out += "[\n";
    bool first = true;
    auto sep = [&] {
        if (!first)
            out += ",\n";
        first = false;
    };

    // Stable thread ids per track (1..N in sorted-name order, matching
    // the std::map iteration the legacy writer relied on), plus name
    // metadata events.
    const std::vector<TrackId> tracks = tracer.sortedNonEmptyTracks();
    for (std::size_t i = 0; i < tracks.size(); ++i) {
        sep();
        out += R"({"name":"thread_name","ph":"M","pid":1,"tid":)";
        appendInt(out, static_cast<long long>(i + 1));
        out += R"(,"args":{"name":")";
        appendEscaped(out, tracer.trackName(tracks[i]));
        out += R"("}})";
    }

    for (std::size_t i = 0; i < tracks.size(); ++i) {
        const Tracer::TrackStore &t = tracer.track(tracks[i]);
        for (std::size_t j = 0; j < t.size(); ++j) {
            sep();
            out += R"({"name":")";
            appendEscaped(out, tracer.labelName(t.labels[j]));
            out += R"(","ph":"X","pid":1,"tid":)";
            appendInt(out, static_cast<long long>(i + 1));
            out += R"(,"ts":)";
            appendUs(out, t.begins[j]);
            out += R"(,"dur":)";
            appendUs(out, t.ends[j] - t.begins[j]);
            out += "}";
        }
    }

    const Tracer::EventStore &ev = tracer.eventStore();
    for (std::size_t j = 0; j < ev.size(); ++j) {
        sep();
        out += R"({"name":")";
        appendEscaped(out, tracer.eventKindName(ev.kinds[j]));
        out += R"(","ph":"i","s":"g","pid":1,"tid":0,"ts":)";
        appendUs(out, ev.whens[j]);
        out += R"(,"args":{"detail":")";
        appendEscaped(out, tracer.labelName(ev.details[j]));
        out += R"("}})";
    }

    out += "\n]\n";
    return out;
}

void
writeChromeTrace(std::ostream &os, const Tracer &tracer)
{
    const std::string s = chromeTraceString(tracer);
    os.write(s.data(), static_cast<std::streamsize>(s.size()));
}

} // namespace aitax::trace
