/**
 * @file
 * Per-run bump allocator backing scenario state.
 *
 * A scenario run constructs a SocSystem, an Application, their tasks
 * and the fault injector, then tears everything down again. With the
 * event loop itself fast (PR 6), that churn is a visible fraction of
 * short scenarios. An Arena turns it into one large block allocation
 * plus placement construction: objects are bump-allocated, destructors
 * registered by create<>() run in reverse order at reset(), and after
 * the first reset the arena coalesces to a single block sized to its
 * high-water mark so steady-state runs touch the heap zero times
 * (asserted by tests/test_sim_alloc.cc).
 *
 * Ownership contract: everything allocated from an arena must be dead
 * or destructor-registered before reset(). Sweep workers keep one
 * thread_local arena and reuse it across scenarios — see
 * src/verify/scenario.cc.
 */

#ifndef AITAX_SIM_ARENA_H
#define AITAX_SIM_ARENA_H

#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>

namespace aitax::sim {

class Arena
{
  public:
    Arena() = default;
    Arena(const Arena &) = delete;
    Arena &operator=(const Arena &) = delete;
    ~Arena();

    /** Bump-allocate @p bytes with @p align; never freed individually. */
    void *allocate(std::size_t bytes, std::size_t align);

    /**
     * Placement-construct a T in the arena. Non-trivially-destructible
     * types get a finalizer that reset() runs in reverse creation
     * order, so create SocSystem before Application before per-run
     * helpers and teardown order matches stack order.
     */
    template <typename T, typename... Args>
    T *
    create(Args &&...args)
    {
        void *mem = allocate(sizeof(T), alignof(T));
        // aitax-lint: allow(raw-new-delete) placement-new into the arena
        T *obj = ::new (mem) T(std::forward<Args>(args)...);
        if constexpr (!std::is_trivially_destructible_v<T>) {
            auto *fin = static_cast<Finalizer *>(
                allocate(sizeof(Finalizer), alignof(Finalizer)));
            fin->fn = [](void *p) { static_cast<T *>(p)->~T(); };
            fin->obj = obj;
            fin->next = finalizers_;
            finalizers_ = fin;
        }
        return obj;
    }

    /**
     * Run finalizers (reverse order), then recycle memory. If the run
     * spilled into multiple blocks — or had not yet allocated a block
     * big enough — the blocks are replaced by a single block sized to
     * the high-water mark, so subsequent equally-sized runs reuse one
     * block with zero heap traffic.
     */
    void reset();

    /** Blocks currently held (1 in steady state, 0 before first use). */
    std::size_t blockCount() const;
    /** Total heap block allocations over the arena's lifetime. */
    std::uint64_t blockAllocs() const { return blockAllocs_; }
    /** Bytes bump-allocated since the last reset. */
    std::size_t usedBytes() const;
    /** Largest usedBytes() observed at any reset so far. */
    std::size_t highWaterBytes() const { return highWater_; }

  private:
    struct Block
    {
        Block *next;
        std::size_t capacity; ///< payload bytes
        std::size_t used;     ///< payload bytes consumed
    };
    struct Finalizer
    {
        void (*fn)(void *);
        void *obj;
        Finalizer *next;
    };

    static constexpr std::size_t kMinBlockBytes = std::size_t{256} << 10;

    Block *newBlock(std::size_t payloadBytes);
    void freeBlocks();

    Block *head_ = nullptr; ///< current bump target; older blocks chained
    Finalizer *finalizers_ = nullptr;
    std::size_t highWater_ = 0;
    std::uint64_t blockAllocs_ = 0;
};

/**
 * Minimal std-allocator adapter over Arena. With a null arena it
 * degrades to plain heap allocation, so containers (e.g. Task's step
 * vector) work identically outside arena-backed runs. Deallocation
 * into an arena is a no-op — memory returns at reset().
 */
template <typename T>
class ArenaAllocator
{
  public:
    using value_type = T;

    ArenaAllocator() = default;
    explicit ArenaAllocator(Arena *arena) : arena_(arena) {}
    template <typename U>
    ArenaAllocator(const ArenaAllocator<U> &other) : arena_(other.arena())
    {
    }

    T *
    allocate(std::size_t n)
    {
        if (arena_ != nullptr)
            return static_cast<T *>(
                arena_->allocate(n * sizeof(T), alignof(T)));
        // aitax-lint: allow(raw-new-delete) heap fallback when no arena
        return static_cast<T *>(::operator new(n * sizeof(T)));
    }

    void
    deallocate(T *p, std::size_t) noexcept
    {
        if (arena_ == nullptr)
            ::operator delete(p); // aitax-lint: allow(raw-new-delete)
    }

    Arena *arena() const { return arena_; }

    friend bool
    operator==(const ArenaAllocator &a, const ArenaAllocator &b)
    {
        return a.arena_ == b.arena_;
    }
    friend bool
    operator!=(const ArenaAllocator &a, const ArenaAllocator &b)
    {
        return a.arena_ != b.arena_;
    }

  private:
    Arena *arena_ = nullptr;
};

/** Resets the arena when the scope unwinds (after the run's objects died). */
class ArenaResetGuard
{
  public:
    explicit ArenaResetGuard(Arena &arena) : arena_(arena) {}
    ArenaResetGuard(const ArenaResetGuard &) = delete;
    ArenaResetGuard &operator=(const ArenaResetGuard &) = delete;
    ~ArenaResetGuard() { arena_.reset(); }

  private:
    Arena &arena_;
};

} // namespace aitax::sim

#endif // AITAX_SIM_ARENA_H
