#include "sim/audit.h"

#include <cstdio>
#include <cstdlib>

namespace aitax::sim {

namespace {

void
defaultHandler(const char *what, const char *detail)
{
    std::fprintf(stderr, "aitax audit failure: %s: %s\n", what, detail);
    std::abort();
}

std::atomic<AuditHandler> g_handler{&defaultHandler};

} // namespace

AuditHandler
setAuditHandler(AuditHandler h)
{
    if (h == nullptr)
        h = &defaultHandler;
    return g_handler.exchange(h, std::memory_order_acq_rel);
}

void
auditFail(const char *what, const char *detail)
{
    g_handler.load(std::memory_order_acquire)(what, detail);
}

} // namespace aitax::sim
