#include "sim/random.h"

#include <cassert>
#include <cmath>

namespace aitax::sim {

namespace {

std::uint64_t
hashName(std::string_view name)
{
    // FNV-1a 64-bit.
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (char c : name) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ull;
    }
    return h;
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

std::uint64_t
RandomStream::splitMix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

RandomStream::RandomStream(std::uint64_t seed, std::string_view stream_name)
{
    std::uint64_t x = seed ^ hashName(stream_name);
    for (auto &s : state_)
        s = splitMix64(x);
}

std::uint64_t
RandomStream::nextU64()
{
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;

    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);

    return result;
}

double
RandomStream::nextDouble()
{
    // 53 high-quality bits into [0, 1).
    return static_cast<double>(nextU64() >> 11) * 0x1.0p-53;
}

double
RandomStream::uniform(double lo, double hi)
{
    return lo + (hi - lo) * nextDouble();
}

std::int64_t
RandomStream::uniformInt(std::int64_t lo, std::int64_t hi)
{
    assert(lo <= hi);
    const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    if (span == 0) // full 64-bit range
        return static_cast<std::int64_t>(nextU64());
    return lo + static_cast<std::int64_t>(nextU64() % span);
}

double
RandomStream::gaussian()
{
    // Box-Muller; we deliberately do not cache the second deviate so
    // the stream position is a pure function of the call count.
    double u1 = nextDouble();
    double u2 = nextDouble();
    while (u1 <= 0.0)
        u1 = nextDouble();
    return std::sqrt(-2.0 * std::log(u1)) *
           std::cos(2.0 * M_PI * u2);
}

double
RandomStream::gaussian(double mean, double stddev)
{
    return mean + stddev * gaussian();
}

double
RandomStream::lognormalFactor(double sigma)
{
    if (sigma <= 0.0)
        return 1.0;
    return std::exp(sigma * gaussian());
}

bool
RandomStream::bernoulli(double p)
{
    return nextDouble() < p;
}

double
RandomStream::exponential(double mean)
{
    double u = nextDouble();
    while (u <= 0.0)
        u = nextDouble();
    return -mean * std::log(u);
}

RandomStream
RandomStream::fork(std::string_view child_name)
{
    const std::uint64_t child_seed = nextU64();
    return RandomStream(child_seed, child_name);
}

} // namespace aitax::sim
