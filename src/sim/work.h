/**
 * @file
 * Device-independent work descriptor.
 *
 * Pipeline stages (pre-processing kernels, NN operators, post-
 * processing) describe their cost as arithmetic operations plus bytes
 * of memory traffic; a device model converts Work into virtual time
 * using its compute throughput and memory bandwidth (roofline style:
 * the slower of the two bounds applies).
 */

#ifndef AITAX_SIM_WORK_H
#define AITAX_SIM_WORK_H

namespace aitax::sim {

/** Cost of a unit of computation, device-independent. */
struct Work
{
    /** Arithmetic operations (FLOPs, or int ops for quantized code). */
    double flops = 0.0;
    /** Bytes read + written. */
    double bytes = 0.0;

    Work &
    operator+=(const Work &other)
    {
        flops += other.flops;
        bytes += other.bytes;
        return *this;
    }

    friend Work
    operator+(Work a, const Work &b)
    {
        a += b;
        return a;
    }

    friend Work
    operator*(Work a, double k)
    {
        a.flops *= k;
        a.bytes *= k;
        return a;
    }
};

} // namespace aitax::sim

#endif // AITAX_SIM_WORK_H
