/**
 * @file
 * The discrete-event simulator: a virtual clock plus an event queue.
 *
 * All SoC components (CPU scheduler, accelerator servers, FastRPC
 * channel, camera) schedule work against a shared Simulator instance.
 * Running the simulator to quiescence advances virtual time
 * deterministically.
 */

#ifndef AITAX_SIM_SIMULATOR_H
#define AITAX_SIM_SIMULATOR_H

#include <cstdint>
#include <utility>

#include "sim/audit.h"
#include "sim/engine_mode.h"
#include "sim/event_queue.h"
#include "sim/time.h"

namespace aitax::sim {

/**
 * Discrete-event simulation driver.
 *
 * Events fire in timestamp order (FIFO among ties); the clock never
 * moves backwards. The simulator is single-threaded by design —
 * determinism is a core requirement for reproducible experiments.
 *
 * Two engines share this interface (sim/engine_mode.h): the Reference
 * heap-only loop and the Fast front-cached, batch-inserting loop. Both
 * fire events in identical (timestamp, seq) order.
 */
class Simulator
{
  public:
    explicit Simulator(EngineMode mode = EngineMode::Fast)
        : queue(mode)
    {
    }

    Simulator(const Simulator &) = delete;
    Simulator &operator=(const Simulator &) = delete;

    /** Which inner event-loop engine this simulator runs. */
    EngineMode mode() const { return queue.mode(); }

    /** Current virtual time. */
    TimeNs now() const { return nowNs; }

    /** Schedule @p fn to run @p delay ns from now. Negative clamps to 0. */
    EventId
    scheduleIn(DurationNs delay, EventFn fn)
    {
        AITAX_AUDIT_OWNER(owner_, "Simulator");
        if (delay < 0)
            delay = 0;
        return queue.schedule(nowNs + delay, std::move(fn));
    }

    /** Schedule @p fn at absolute time @p when (>= now). */
    EventId
    scheduleAt(TimeNs when, EventFn fn)
    {
        AITAX_AUDIT_OWNER(owner_, "Simulator");
        if (when < nowNs)
            when = nowNs;
        return queue.schedule(when, std::move(fn));
    }

    /**
     * Reserve @p n consecutive FIFO seq numbers for scheduleAtSeq().
     * See EventQueue::reserveSeqs() for the intended use.
     */
    std::uint64_t reserveSeqs(std::uint64_t n)
    {
        return queue.reserveSeqs(n);
    }

    /** Schedule at @p when (>= now) with a reserved seq number. */
    EventId
    scheduleAtSeq(TimeNs when, std::uint64_t seq, EventFn fn)
    {
        AITAX_AUDIT_OWNER(owner_, "Simulator");
        if (when < nowNs)
            when = nowNs;
        return queue.scheduleWithSeq(when, seq, std::move(fn));
    }

    /** Cancel a previously scheduled event. */
    void
    cancel(EventId id)
    {
        AITAX_AUDIT_OWNER(owner_, "Simulator");
        queue.cancel(id);
    }

    /** True if no events are pending. */
    bool idle() const { return queue.empty(); }

    /**
     * Run until the event queue drains.
     * @return the final virtual time.
     */
    TimeNs run();

    /**
     * Run until the queue drains or virtual time would pass @p deadline.
     * Events at exactly @p deadline still fire.
     * @return the final virtual time.
     */
    TimeNs runUntil(TimeNs deadline);

    /**
     * Run until @p done() returns true (checked between events) or
     * the queue drains.
     * @return the final virtual time.
     */
    template <typename Pred>
    TimeNs
    runUntilCondition(Pred &&done)
    {
        AITAX_AUDIT_OWNER(owner_, "Simulator");
        while (!queue.empty() && !done()) {
            nowNs = queue.nextTime();
            queue.popAndRun();
            ++executed;
        }
        return nowNs;
    }

    /** Number of events executed so far (for tests/diagnostics). */
    std::uint64_t eventsExecuted() const { return executed; }

    /** Number of live (not cancelled) pending events. */
    std::size_t pendingEvents() const { return queue.size(); }

    /** Pops served by the queue's front cache (Fast engine only). */
    std::uint64_t frontCacheHits() const { return queue.frontCacheHits(); }

    /** Seq number the next schedule() will consume (snapshot keying). */
    std::uint64_t seqWatermark() const { return queue.seqWatermark(); }

    /**
     * Clock + ordering state for warm-up prefix snapshots: everything
     * the simulator itself must carry across a snapshot/restore so a
     * resumed run pops, audits and numbers events exactly like the
     * uninterrupted one. Pending event *contents* are deliberately not
     * part of this — snapshot eligibility requires the queue to hold
     * only re-creatable events (see soc::SocSystem::captureWarmup).
     */
    struct ClockState
    {
        TimeNs now = 0;
        std::uint64_t executed = 0;
        EventQueue::OrderState order;
    };

    ClockState
    clockState() const
    {
        return {nowNs, executed, queue.orderState()};
    }

    void
    setClockState(const ClockState &s)
    {
        nowNs = s.now;
        executed = s.executed;
        queue.setOrderState(s.order);
    }

    /**
     * Release thread ownership (audited builds): the next audited
     * touch rebinds the simulator to its new owning thread. Only for
     * deliberate handoffs between construction and use.
     */
    void auditReleaseOwner() { owner_.release(); }

  private:
    EventQueue queue;
    TimeNs nowNs = 0;
    std::uint64_t executed = 0;
    /** Thread-ownership sentinel; checks compiled in audited builds. */
    OwnershipSentinel owner_;
};

} // namespace aitax::sim

#endif // AITAX_SIM_SIMULATOR_H
