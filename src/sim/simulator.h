/**
 * @file
 * The discrete-event simulator: a virtual clock plus an event queue.
 *
 * All SoC components (CPU scheduler, accelerator servers, FastRPC
 * channel, camera) schedule work against a shared Simulator instance.
 * Running the simulator to quiescence advances virtual time
 * deterministically.
 */

#ifndef AITAX_SIM_SIMULATOR_H
#define AITAX_SIM_SIMULATOR_H

#include <cstdint>
#include <functional>

#include "sim/audit.h"
#include "sim/event_queue.h"
#include "sim/time.h"

namespace aitax::sim {

/**
 * Discrete-event simulation driver.
 *
 * Events fire in timestamp order (FIFO among ties); the clock never
 * moves backwards. The simulator is single-threaded by design —
 * determinism is a core requirement for reproducible experiments.
 */
class Simulator
{
  public:
    Simulator() = default;

    Simulator(const Simulator &) = delete;
    Simulator &operator=(const Simulator &) = delete;

    /** Current virtual time. */
    TimeNs now() const { return nowNs; }

    /** Schedule @p fn to run @p delay ns from now. Negative clamps to 0. */
    EventId
    scheduleIn(DurationNs delay, EventFn fn)
    {
        AITAX_AUDIT_OWNER(owner_, "Simulator");
        if (delay < 0)
            delay = 0;
        return queue.schedule(nowNs + delay, std::move(fn));
    }

    /** Schedule @p fn at absolute time @p when (>= now). */
    EventId
    scheduleAt(TimeNs when, EventFn fn)
    {
        AITAX_AUDIT_OWNER(owner_, "Simulator");
        if (when < nowNs)
            when = nowNs;
        return queue.schedule(when, std::move(fn));
    }

    /** Cancel a previously scheduled event. */
    void
    cancel(EventId id)
    {
        AITAX_AUDIT_OWNER(owner_, "Simulator");
        queue.cancel(id);
    }

    /** True if no events are pending. */
    bool idle() const { return queue.empty(); }

    /**
     * Run until the event queue drains.
     * @return the final virtual time.
     */
    TimeNs run();

    /**
     * Run until the queue drains or virtual time would pass @p deadline.
     * Events at exactly @p deadline still fire.
     * @return the final virtual time.
     */
    TimeNs runUntil(TimeNs deadline);

    /**
     * Run until @p done() returns true (checked after each event) or
     * the queue drains.
     * @return the final virtual time.
     */
    TimeNs runUntilCondition(const std::function<bool()> &done);

    /** Number of events executed so far (for tests/diagnostics). */
    std::uint64_t eventsExecuted() const { return executed; }

    /**
     * Release thread ownership (audited builds): the next audited
     * touch rebinds the simulator to its new owning thread. Only for
     * deliberate handoffs between construction and use.
     */
    void auditReleaseOwner() { owner_.release(); }

  private:
    EventQueue queue;
    TimeNs nowNs = 0;
    std::uint64_t executed = 0;
    /** Thread-ownership sentinel; checks compiled in audited builds. */
    OwnershipSentinel owner_;
};

} // namespace aitax::sim

#endif // AITAX_SIM_SIMULATOR_H
