/**
 * @file
 * Component-local event queue feeding the global heap lazily.
 *
 * A component that generates many future events (interference ticks,
 * accelerator completions) would otherwise park them all in the global
 * 4-ary heap, deepening every unrelated pop. A LocalEventQueue keeps
 * the component's entries in per-stream FIFO buffers and installs only
 * the earliest one in the global queue at a time; when it fires, the
 * next-earliest is installed *before* the callback runs, mirroring the
 * chain-before-submit order PR 6 established for interference.
 *
 * Ordering is exact, not approximate: every push reserves its global
 * FIFO seq at push time (reserveSeqs(1) — the same number a plain
 * schedule() call would have consumed), so pops interleave with the
 * rest of the simulation in the identical (when, seq) order the
 * Reference engine produces by pre-scheduling everything. In Reference
 * mode push() does exactly that — it forwards straight to the global
 * queue — so the two engines stay byte-comparable through one code
 * path. The differential tier proves it.
 *
 * Contract: pushes must be non-decreasing in time *per stream* (FIFO
 * streams), and entries are never cancelled individually — the queue
 * dies with its component and the simulator.
 */

#ifndef AITAX_SIM_LOCAL_QUEUE_H
#define AITAX_SIM_LOCAL_QUEUE_H

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/simulator.h"

namespace aitax::sim {

class LocalEventQueue
{
  public:
    /** @param streams number of independent FIFO streams. */
    LocalEventQueue(Simulator &sim, std::size_t streams);

    LocalEventQueue(const LocalEventQueue &) = delete;
    LocalEventQueue &operator=(const LocalEventQueue &) = delete;

    /**
     * Schedule @p fn at absolute time @p when on @p stream. Reserves
     * the global seq immediately; in Fast mode the entry is parked
     * locally until it is the component's earliest.
     */
    void push(std::size_t stream, TimeNs when, EventFn fn);

    /** Entries currently held (parked locally or resident in the heap). */
    std::size_t parked() const;

    // --- counters (cache-efficacy observability) ----------------------

    /** Total entries pushed. */
    std::uint64_t pushes() const { return pushes_; }
    /**
     * Entries handed to the global heap. In Reference mode this equals
     * pushes(); in Fast mode it counts resident installs, and
     * pushes() - heapInstalls() + residentSwaps() entries never cost a
     * heap insertion while non-earliest.
     */
    std::uint64_t heapInstalls() const { return installs_; }
    /** Resident entries displaced by an earlier push to another stream. */
    std::uint64_t residentSwaps() const { return swaps_; }

  private:
    struct Entry
    {
        TimeNs when;
        std::uint64_t seq;
        EventFn fn;
    };
    /** FIFO buffer with a consume cursor (storage reused per run). */
    struct Stream
    {
        std::vector<Entry> entries;
        std::size_t head = 0;

        bool hasHead() const { return head < entries.size(); }
        Entry &front() { return entries[head]; }
    };

    static constexpr std::size_t kNone = static_cast<std::size_t>(-1);

    void install(std::size_t stream);
    void installEarliest();
    void fire();

    Simulator &sim_;
    std::vector<Stream> streams_;
    std::size_t residentStream_ = kNone;
    EventId residentId_ = 0;
    std::uint64_t pushes_ = 0;
    std::uint64_t installs_ = 0;
    std::uint64_t swaps_ = 0;
};

} // namespace aitax::sim

#endif // AITAX_SIM_LOCAL_QUEUE_H
