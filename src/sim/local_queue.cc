#include "sim/local_queue.h"

#include <cassert>

namespace aitax::sim {

LocalEventQueue::LocalEventQueue(Simulator &sim, std::size_t streams)
    : sim_(sim), streams_(streams)
{
    assert(streams > 0);
}

void
LocalEventQueue::push(std::size_t stream, TimeNs when, EventFn fn)
{
    assert(stream < streams_.size());
    ++pushes_;
    // Claim the global FIFO seq now, exactly where a schedule() call
    // would have — parking must not change tie order.
    const std::uint64_t seq = sim_.reserveSeqs(1);
    if (sim_.mode() == EngineMode::Reference) {
        ++installs_;
        sim_.scheduleAtSeq(when, seq, std::move(fn));
        return;
    }

    Stream &st = streams_[stream];
    assert(!st.hasHead() || st.entries.back().when <= when);
    const bool was_empty = !st.hasHead();
    st.entries.push_back(Entry{when, seq, std::move(fn)});

    if (residentStream_ == kNone) {
        install(stream);
        return;
    }
    if (!was_empty || stream == residentStream_)
        return; // stream head unchanged; resident stays the minimum

    // A previously-empty stream grew a head: it may now be the
    // component's earliest entry.
    const Entry &cand = st.front();
    Entry &res = streams_[residentStream_].front();
    if (cand.when < res.when ||
        (cand.when == res.when && cand.seq < res.seq)) {
        sim_.cancel(residentId_);
        ++swaps_;
        residentStream_ = kNone;
        residentId_ = 0;
        install(stream);
    }
}

std::size_t
LocalEventQueue::parked() const
{
    std::size_t n = 0;
    for (const Stream &st : streams_)
        n += st.entries.size() - st.head;
    return n;
}

void
LocalEventQueue::install(std::size_t stream)
{
    Entry &e = streams_[stream].front();
    residentStream_ = stream;
    ++installs_;
    residentId_ = sim_.scheduleAtSeq(e.when, e.seq, [this] { fire(); });
}

void
LocalEventQueue::installEarliest()
{
    std::size_t best = kNone;
    for (std::size_t s = 0; s < streams_.size(); ++s) {
        Stream &st = streams_[s];
        if (!st.hasHead())
            continue;
        if (best == kNone) {
            best = s;
            continue;
        }
        const Entry &a = st.front();
        const Entry &b = streams_[best].front();
        if (a.when < b.when || (a.when == b.when && a.seq < b.seq))
            best = s;
    }
    if (best != kNone)
        install(best);
}

void
LocalEventQueue::fire()
{
    assert(residentStream_ != kNone);
    Stream &st = streams_[residentStream_];
    Entry e = std::move(st.front());
    ++st.head;
    if (st.head == st.entries.size()) {
        // Drained: recycle the buffer (capacity kept for reuse).
        st.entries.clear();
        st.head = 0;
    }
    residentStream_ = kNone;
    residentId_ = 0;
    // Install the successor *before* running the callback, matching
    // the chain-before-submit order the tie contract expects.
    installEarliest();
    e.fn();
}

} // namespace aitax::sim
