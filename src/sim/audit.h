/**
 * @file
 * Runtime determinism auditors — the dynamic companion to aitax-lint.
 *
 * Two sentinels back the "parallelism across simulations, never
 * inside one" contract at runtime:
 *
 *  - The EventQueue *tie auditor* (always on, two integer compares
 *    per pop) verifies that events leave the queue in strictly
 *    increasing (timestamp, seq) order, i.e. that every
 *    same-timestamp tie really is fixed by the seq tie-break. A
 *    violation means a seq collision or heap corruption — exactly the
 *    class of bug that would surface as a flaky golden diff.
 *
 *  - OwnershipSentinel asserts single-thread ownership of a
 *    Simulator/Tracer: the first audited touch binds the owning
 *    thread, any touch from another thread fires the audit handler.
 *    The per-touch atomic check is compiled into Simulator/Tracer
 *    only under AITAX_RUNTIME_AUDITS (on by default in Debug builds
 *    and in the sanitizer CI jobs) so release hot paths stay free.
 *
 * Violations route through a process-wide handler that defaults to
 * abort(); tests install a recording handler to prove the sentinels
 * fire (tests/test_audits.cc).
 */

#ifndef AITAX_SIM_AUDIT_H
#define AITAX_SIM_AUDIT_H

#include <atomic>
#include <thread>

/**
 * AITAX_RUNTIME_AUDITS compiles thread-ownership checks into the
 * Simulator/Tracer hot paths (one relaxed atomic compare per audited
 * call). Debug and sanitizer CI builds turn it on; release builds
 * leave the hot path untouched.
 */
#if AITAX_RUNTIME_AUDITS
#define AITAX_AUDIT_OWNER(sentinel, what) (sentinel).check(what)
#else
#define AITAX_AUDIT_OWNER(sentinel, what) ((void)0)
#endif

namespace aitax::sim {

/** Callback invoked on an audit violation. @p what names the
 *  sentinel, @p detail describes the violation. Must not return if
 *  the violation should stop the run (the default handler aborts). */
using AuditHandler = void (*)(const char *what, const char *detail);

/** Install @p h as the process-wide handler. @return the previous
 *  handler. Passing nullptr restores the default (stderr + abort). */
AuditHandler setAuditHandler(AuditHandler h);

/** Report a violation to the current handler. */
void auditFail(const char *what, const char *detail);

/**
 * Asserts that all audited touches of an object come from one thread.
 *
 * Ownership binds lazily on the first check() rather than at
 * construction, so an object may be built on one thread and handed to
 * a sweep worker before use — the worker then becomes the owner.
 */
class OwnershipSentinel
{
  public:
    /** Verify the calling thread owns this object (binding first). */
    void
    check(const char *what) const
    {
        const std::thread::id self = std::this_thread::get_id();
        std::thread::id owner = owner_.load(std::memory_order_relaxed);
        if (owner == std::thread::id()) {
            // First audited touch: claim ownership. compare_exchange
            // rather than store so two racing first touches cannot
            // both claim.
            if (owner_.compare_exchange_strong(
                    owner, self, std::memory_order_relaxed))
                return;
        }
        if (owner != self && owner != std::thread::id())
            auditFail(what,
                      "touched from a thread that does not own it "
                      "(each simulation world belongs to exactly one "
                      "sweep worker)");
    }

    /** Release ownership for a deliberate handoff; the next audited
     *  touch rebinds. */
    void
    release()
    {
        owner_.store(std::thread::id(), std::memory_order_relaxed);
    }

    /** True if some thread has claimed this object. */
    bool
    bound() const
    {
        return owner_.load(std::memory_order_relaxed) !=
               std::thread::id();
    }

  private:
    mutable std::atomic<std::thread::id> owner_{std::thread::id()};
};

} // namespace aitax::sim

#endif // AITAX_SIM_AUDIT_H
