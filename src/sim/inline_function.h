/**
 * @file
 * Small-buffer move-only callable for simulator events.
 *
 * The discrete-event hot path schedules millions of `void()` callbacks
 * per sweep. `std::function` only inline-stores tiny callables (one or
 * two pointers on mainstream ABIs), so the typical simulator lambda —
 * a `this` pointer plus a couple of captured ints or a moved-in
 * continuation — pays one heap allocation per event. EventFn widens the
 * inline buffer so every callback the simulator actually creates stays
 * in situ; oversized callables degrade gracefully to the heap.
 */

#ifndef AITAX_SIM_INLINE_FUNCTION_H
#define AITAX_SIM_INLINE_FUNCTION_H

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace aitax::sim {

/**
 * Move-only `void()` callable with a wide small-buffer optimization.
 *
 * Invariants: invoking an empty EventFn is undefined (the event queue
 * never stores empty callbacks); relocation is a move-construct plus
 * destroy of the source, so captured state moves exactly once.
 */
class EventFn
{
  public:
    /** Inline storage; sized for a capture of ~6 pointers. */
    static constexpr std::size_t kInlineSize = 48;

    EventFn() noexcept = default;

    template <typename F>
        requires(!std::is_same_v<std::remove_cvref_t<F>, EventFn> &&
                 std::is_invocable_r_v<void, std::remove_cvref_t<F> &>)
    EventFn(F &&f) // NOLINT: implicit by design, mirrors std::function
    {
        // EventFn *is* the sanctioned owner of placement-new here:
        // the whole point of this class is keeping the hot path free
        // of the heap, and the oversized-callable fallback is the one
        // deliberate allocation.
        using Fn = std::remove_cvref_t<F>;
        if constexpr (sizeof(Fn) <= kInlineSize &&
                      alignof(Fn) <= alignof(std::max_align_t)) {
            // aitax-lint: allow(raw-new-delete)
            ::new (static_cast<void *>(buf)) Fn(std::forward<F>(f));
            ops = &inlineOps<Fn>;
        } else {
            ::new (static_cast<void *>(buf))  // aitax-lint: allow(raw-new-delete)
                Fn *(new Fn(std::forward<F>(f))); // aitax-lint: allow(raw-new-delete)
            ops = &heapOps<Fn>;
        }
    }

    EventFn(EventFn &&other) noexcept { moveFrom(other); }

    EventFn &
    operator=(EventFn &&other) noexcept
    {
        if (this != &other) {
            reset();
            moveFrom(other);
        }
        return *this;
    }

    EventFn(const EventFn &) = delete;
    EventFn &operator=(const EventFn &) = delete;

    ~EventFn() { reset(); }

    explicit operator bool() const noexcept { return ops != nullptr; }

    void
    operator()()
    {
        ops->invoke(buf);
    }

    /** Destroy the held callable, leaving the EventFn empty. */
    void
    reset() noexcept
    {
        if (ops != nullptr) {
            ops->destroy(buf);
            ops = nullptr;
        }
    }

  private:
    struct Ops
    {
        void (*invoke)(void *);
        /** Move-construct dst from src, then destroy src. */
        void (*relocate)(void *dst, void *src) noexcept;
        void (*destroy)(void *) noexcept;
    };

    template <typename Fn>
    static constexpr Ops inlineOps = {
        [](void *p) { (*std::launder(reinterpret_cast<Fn *>(p)))(); },
        [](void *dst, void *src) noexcept {
            Fn *s = std::launder(reinterpret_cast<Fn *>(src));
            ::new (dst) Fn(std::move(*s)); // aitax-lint: allow(raw-new-delete)
            s->~Fn();
        },
        [](void *p) noexcept {
            std::launder(reinterpret_cast<Fn *>(p))->~Fn();
        },
    };

    template <typename Fn>
    static constexpr Ops heapOps = {
        [](void *p) { (**std::launder(reinterpret_cast<Fn **>(p)))(); },
        [](void *dst, void *src) noexcept {
            ::new (dst) // aitax-lint: allow(raw-new-delete)
                Fn *(*std::launder(reinterpret_cast<Fn **>(src)));
        },
        [](void *p) noexcept {
            delete *std::launder(reinterpret_cast<Fn **>(p)); // aitax-lint: allow(raw-new-delete)
        },
    };

    void
    moveFrom(EventFn &other) noexcept
    {
        if (other.ops != nullptr) {
            other.ops->relocate(buf, other.buf);
            ops = other.ops;
            other.ops = nullptr;
        }
    }

    alignas(std::max_align_t) unsigned char buf[kInlineSize];
    const Ops *ops = nullptr;
};

} // namespace aitax::sim

#endif // AITAX_SIM_INLINE_FUNCTION_H
